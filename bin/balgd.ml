(* balgd — the concurrent bag-database server.

   One process serves many clients over a newline-delimited TCP protocol
   (plus HTTP GET /metrics and /healthz on the same port): each connection
   is a session with its own budget limits, evaluation runs only on the
   worker domains behind the fuel-ceiling admission queue, writes go
   through the write-ahead log and survive kill -9 (replayed through the
   validating loader on restart).  See lib/server/server.mli for the wire
   protocol and DESIGN.md section 14 for the architecture.

   Process-exit discipline: as in balgi, no helper calls [exit] — the
   single [exit] lives in the Cmdliner dispatch at the bottom
   (scripts/lint.sh enforces this for both binaries). *)

open Balg
module Bagdb = Baglang.Bagdb
module Server = Balgserver.Server

let load_db = function
  | None -> Ok []
  | Some path -> (
      match Bagdb.load path with
      | db -> Ok db
      | exception Bagdb.Db_error e ->
          Error ("database error: " ^ Bagdb.error_to_string e))

let apply_faults fault fault_seed =
  match fault with
  | None -> Ok ()
  | Some spec -> (
      match Fault.configure ?seed:fault_seed spec with
      | Ok () -> Ok ()
      | Error e -> Error ("bad --fault spec: " ^ e))

let parse_follow = function
  | None -> Ok None
  | Some spec -> (
      match String.rindex_opt spec ':' with
      | None -> Error "bad --follow: expected HOST:PORT"
      | Some i -> (
          let host = String.sub spec 0 i in
          let port = String.sub spec (i + 1) (String.length spec - i - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && not (String.equal host "") ->
              Ok (Some (host, p))
          | _ -> Error "bad --follow: expected HOST:PORT"))

(* Written once, after the server has fully stopped — every session
   thread and worker domain has flushed its ring, so the trace is the
   complete request history of the run. *)
let write_trace path =
  match open_out path with
  | oc -> (
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Obs.Trace.to_chrome oc);
      let dropped = Obs.dropped () in
      if dropped > 0 then
        Printf.eprintf
          "balgd: trace ring overflowed: %d oldest events dropped\n" dropped;
      Ok ())
  | exception Sys_error msg -> Error msg

let run_serve host port store_dir db_path ceiling max_queue workers
    default_fuel engine optimize cache_capacity compact_bytes follow fault
    fault_seed trace_out log_json slow_log slow_ms =
  let ( let* ) r k =
    match r with
    | Ok v -> k v
    | Error msg ->
        Printf.eprintf "balgd: %s\n" msg;
        1
  in
  let* () = apply_faults fault fault_seed in
  let* seed_db = load_db db_path in
  let* follow = parse_follow follow in
  (* Tracing must be on before [Server.start]: the server pins the trace
     id for the process when it sees tracing enabled. *)
  if trace_out <> None then Obs.enable ();
  let cfg =
    {
      Server.host;
      port;
      store_dir;
      seed_db;
      ceiling;
      max_queue;
      workers;
      default_fuel;
      engine;
      optimize;
      cache_capacity;
      compact_bytes;
      follow;
      repl_params = Balgserver.Repl.default_params;
      access_log = log_json;
      slow_log;
      slow_ms;
    }
  in
  (* SIGINT/SIGTERM/SIGUSR1 handling: a deferred OCaml signal handler
     only runs at a safe point, and every server thread parks in a
     blocking C call (accept, cond-wait) — a Sys.Signal_handle would
     never fire.  Block the signals process-wide (spawned threads and
     domains inherit the mask) and take them synchronously on a
     dedicated waiter thread.  SIGUSR1 promotes a follower to primary
     and keeps waiting; SIGINT/SIGTERM stop the server. *)
  let signals = [ Sys.sigint; Sys.sigterm; Sys.sigusr1 ] in
  (try ignore (Thread.sigmask Unix.SIG_BLOCK signals)
   with Invalid_argument _ | Unix.Unix_error _ -> ());
  let* sv =
    match Server.start cfg with Ok sv -> Ok sv | Error msg -> Error msg
  in
  (* announce the bound (possibly ephemeral) port on stdout: scripts and
     the smoke test grep this line to learn where to connect *)
  Printf.printf "balgd listening on %s:%d%s\n%!" cfg.Server.host
    (Server.port sv)
    (match cfg.Server.follow with
    | None -> ""
    | Some (h, p) -> Printf.sprintf " (follower of %s:%d)" h p);
  let _waiter =
    Thread.create
      (fun () ->
        let rec wait () =
          match Thread.wait_signal signals with
          | s when s = Sys.sigusr1 ->
              (match Server.promote sv with
              | `Promoted -> Printf.printf "balgd: promoted to primary\n%!"
              | `Already_primary ->
                  Printf.printf "balgd: already primary\n%!");
              wait ()
          | _ -> Server.stop sv
          | exception Unix.Unix_error _ -> Server.stop sv
        in
        wait ())
      ()
  in
  Server.wait sv;
  Printf.printf "balgd: served %d sessions, bye\n%!" (Server.sessions_served sv);
  match trace_out with
  | None -> 0
  | Some path -> (
      match write_trace path with
      | Ok () -> 0
      | Error msg ->
          Printf.eprintf "balgd: cannot write trace %s: %s\n" path msg;
          1)

(* --- cmdliner wiring ------------------------------------------------------ *)

open Cmdliner

let host_arg =
  Arg.(
    value
    & opt string Server.default_config.Server.host
    & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")

let port_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.port
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"Listen port; $(b,0) picks an ephemeral port (announced on \
              stdout).")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Persistence directory (snapshot.bagdb + wal.log).  Created if \
           missing; recovered through the validating loader on start — a \
           torn WAL tail is truncated, the surviving prefix replayed.  \
           Without $(docv) the store is in-memory only.")

let db_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "d"; "db" ] ~docv:"FILE"
        ~doc:
          "A .bagdb file seeding a $(i,fresh) store (ignored when the \
           store directory already holds a snapshot or WAL).")

let ceiling_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.ceiling
    & info [ "ceiling" ] ~docv:"FUEL"
        ~doc:
          "Admission ceiling: maximum aggregate fuel weight of requests \
           evaluating at once.  Requests beyond it queue (strict FIFO) or \
           are rejected ($(b,err busy)).")

let max_queue_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.max_queue
    & info [ "max-queue" ] ~docv:"N" ~doc:"Admission queue bound.")

let workers_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.workers
    & info [ "w"; "workers" ] ~docv:"N" ~doc:"Evaluation worker domains.")

let default_fuel_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.default_fuel
    & info [ "default-fuel" ] ~docv:"N"
        ~doc:
          "Per-request fuel limit for sessions that never issue \
           $(b,set fuel=...); also the request's admission weight.")

let engine_arg =
  let engine_conv = Arg.enum [ ("tree", Veval.Tree); ("vec", Veval.Vec) ] in
  Arg.(
    value
    & opt engine_conv (Veval.default_engine ())
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Default execution engine for new sessions: $(b,tree) or \
           $(b,vec).  Sessions override with $(b,set engine=...).  \
           $(b,BALG_ENGINE) sets the default.")

let optimize_arg =
  let mode_conv =
    Arg.enum [ ("off", Opt.Off); ("rules", Opt.Rules); ("cost", Opt.Cost) ]
  in
  Arg.(
    value
    & opt mode_conv (Opt.default_mode ())
    & info [ "optimize" ] ~docv:"MODE"
        ~doc:
          "Default optimizer mode for new sessions: $(b,off), $(b,rules) \
           or $(b,cost).  Sessions override with $(b,set optimize=...).  \
           $(b,BALG_OPT) sets the default.")

let cache_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.cache_capacity
    & info [ "cache" ] ~docv:"N"
        ~doc:
          "Result-cache capacity (entries).  Keys are engine, optimizer \
           mode, query text and the hashes of the referenced relations; \
           entries are invalidated per relation on write.")

let compact_bytes_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.compact_bytes
    & info [ "compact-bytes" ] ~docv:"BYTES"
        ~doc:
          "Compact the WAL into the snapshot file once it grows past \
           $(docv) bytes (also available on demand via the $(b,compact) \
           command).")

let follow_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "follow" ] ~docv:"HOST:PORT"
        ~doc:
          "Start as a read-only follower replicating from the primary at \
           $(docv): bootstrap from its snapshot, apply its shipped WAL \
           records, reconnect with capped backoff.  Promote to a writable \
           primary with the $(b,promote) command or $(b,SIGUSR1).")

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "Arm fault-injection sites, e.g. \
           $(b,server.session:p=0.05,wal.append:n=3).  Server sites: \
           $(b,server.accept), $(b,server.session), $(b,server.worker), \
           $(b,wal.append), $(b,repl.ship), $(b,repl.connect), \
           $(b,repl.apply).  Overrides $(b,BALG_FAULT).")

let fault_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:"Seed for probabilistic fault triggers.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable request tracing and write the Chrome trace-event JSON to \
           $(docv) at shutdown (load in Perfetto or chrome://tracing).  \
           Every protocol command is a span on its session's lane, linked \
           by request id to its queue-wait, worker-evaluation and \
           WAL-commit sub-spans.  A live snapshot is also available via \
           the $(b,trace) wire command.")

let log_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-json" ] ~docv:"FILE"
        ~doc:
          "Append a JSONL access log to $(docv): one line per protocol \
           command with session id, request id, command word, duration in \
           microseconds and outcome.")

let slow_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slow-log" ] ~docv:"FILE"
        ~doc:
          "Append a JSONL slow-query log to $(docv): every eval at or \
           above the $(b,--slow-ms) threshold is recorded with its query \
           text, chosen plan, optimizer decisions, engine labels, cache \
           outcome, queue wait, fuel spent and verdict.")

let slow_ms_arg =
  Arg.(
    value
    & opt float Server.default_config.Server.slow_ms
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:"Slow-query threshold in milliseconds (default 100).")

let serve_term =
  Term.(
    const run_serve $ host_arg $ port_arg $ store_arg $ db_arg $ ceiling_arg
    $ max_queue_arg $ workers_arg $ default_fuel_arg $ engine_arg
    $ optimize_arg $ cache_arg $ compact_bytes_arg $ follow_arg $ fault_arg
    $ fault_seed_arg $ trace_out_arg $ log_json_arg $ slow_log_arg
    $ slow_ms_arg)

let main =
  Cmd.v
    (Cmd.info "balgd" ~version:"1.2.0"
       ~doc:
         "Concurrent bag-database server: many sessions over one shared, \
          write-ahead-logged store, with per-session budgets, fuel-ceiling \
          admission control, a shared result cache and a Prometheus \
          /metrics endpoint.")
    serve_term

let () =
  Fault.init_from_env ();
  exit (Cmd.eval' main)
