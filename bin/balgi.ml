(* balgi — the bag-algebra interpreter CLI.

   Subcommands:
     balgi eval      -d db.bagdb "pi[1](G * G)"     evaluate a query
     balgi analyze   -d db.bagdb "powerset(R)"      static complexity report
     balgi normalize -d db.bagdb "R /\ R"           rewrite to normal form
     balgi repl      -d db.bagdb                    interactive loop

   Evaluation runs under the Budget governor: --fuel / --max-support /
   --max-size / --max-count-digits / --max-fix-steps / --timeout set the
   limits, and exhaustion is reported as a located, structured verdict
   (exit code 2).  Ctrl-C cancels through the same channel: the SIGINT
   handler flips Budget.cancel, every domain unwinds at its next fuel
   charge, and the run reports a Cancelled verdict with the pool joined
   and partial telemetry printed.  --retry-degrade re-runs the normalized
   plan under a fresh budget (same limits) after a first exhaustion.
   --fault/--fault-seed (or BALG_FAULT/BALG_FAULT_SEED) arm the
   deterministic fault-injection sites.  --optimize off|rules|cost (or
   BALG_OPT) runs the plan optimizer between typechecking and evaluation;
   explain prints its decision log — every rewrite considered, with cost
   estimates, applied or rejected.  --stats prints the telemetry span
   tree and per-operator table (--stats-sort / --stats-top shape it);
   --trace adds time/allocation/memo columns.  --trace-out FILE records
   trace events and writes Chrome trace-event JSON (Perfetto-loadable),
   --log-json FILE the same events as structured JSONL, and --metrics
   prints the Prometheus-text metrics snapshot after the run — on every
   exit path, verdicts and faults included.

   Process-exit discipline: no helper or error path calls [exit] — every
   subcommand body returns its exit code and the single [exit] lives in
   the Cmdliner dispatch at the bottom (scripts/lint.sh enforces this).
   The REPL in particular survives any error: a bad line prints a
   diagnostic and the loop continues. *)

open Balg
module Parser = Baglang.Parser
module Lexer = Baglang.Lexer
module Bagdb = Baglang.Bagdb

let load_db = function
  | None -> Ok []
  | Some path -> (
      match Bagdb.load path with
      | db -> Ok db
      | exception Bagdb.Db_error e ->
          Error ("database error: " ^ Bagdb.error_to_string e))

let parse_query q =
  match Parser.expr_of_string q with
  | e -> Ok e
  | exception Parser.Parse_error (msg, pos) ->
      Error (Printf.sprintf "parse error at offset %d: %s" pos msg)
  | exception Lexer.Lex_error (msg, pos) ->
      Error (Printf.sprintf "lex error at offset %d: %s" pos msg)

let check db e =
  match Typecheck.infer (Bagdb.type_env db) e with
  | ty -> Ok ty
  | exception Typecheck.Type_error msg -> Error ("type error: " ^ msg)

(* Sequence result-returning steps; an [Error] prints and yields status 1. *)
let ( let* ) r k =
  match r with
  | Ok v -> k v
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      1

(* --- budget / telemetry / fault options ----------------------------------- *)

type opts = {
  limits : Budget.limits;
  engine : Veval.engine;  (** --engine: tree (default) or vec *)
  optimize : Opt.mode;  (** --optimize: off (default), rules or cost *)
  stats : bool;
  trace : bool;
  stats_sort : Telemetry.sort;  (** --stats-sort column *)
  stats_top : int;  (** rows of the per-operator table *)
  jobs : int;  (** evaluation domains; 1 = sequential *)
  fault : string option;  (** --fault spec, overrides BALG_FAULT *)
  fault_seed : int option;
  trace_out : string option;  (** Chrome trace-event JSON output file *)
  log_json : string option;  (** structured JSONL output file *)
  metrics : bool;  (** print the metrics snapshot after the run *)
}

let make_opts fuel max_support max_size max_count_digits max_fix_steps timeout
    engine optimize stats trace stats_sort stats_top jobs fault fault_seed
    trace_out log_json metrics =
  let d = Budget.default in
  let pick o dflt = Option.value o ~default:dflt in
  {
    limits =
      {
        Budget.fuel = pick fuel d.Budget.fuel;
        max_support = pick max_support d.Budget.max_support;
        max_size = pick max_size d.Budget.max_size;
        max_count_digits = pick max_count_digits d.Budget.max_count_digits;
        max_fix_steps = pick max_fix_steps d.Budget.max_fix_steps;
        deadline_s = timeout;
      };
    engine;
    optimize;
    stats;
    trace;
    stats_sort;
    stats_top = max 1 stats_top;
    jobs = max 1 jobs;
    fault;
    fault_seed;
    trace_out;
    log_json;
    metrics;
  }

let apply_faults opts =
  match opts.fault with
  | None -> Ok ()
  | Some spec -> (
      match Fault.configure ?seed:opts.fault_seed spec with
      | Ok () -> Ok ()
      | Error e -> Error ("bad --fault spec: " ^ e))

(* Cancel the budget on Ctrl-C for the duration of [f]: every domain of
   the evaluation observes the flag at its next fuel charge and unwinds
   into a structured Cancelled verdict — no dead domain, no leaked
   worker.  The previous handler is restored afterwards, so the REPL's
   prompt keeps its default interrupt behaviour between queries. *)
let with_sigint budget f =
  match
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> Budget.cancel budget))
  with
  | prev -> Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigint prev) f
  | exception (Invalid_argument _ | Sys_error _) -> f ()

let sort_label = function
  | Telemetry.By_steps -> "steps"
  | Telemetry.By_time -> "time"
  | Telemetry.By_alloc -> "alloc"

let print_stats opts budget telemetry =
  match telemetry with
  | Some t when opts.stats || opts.trace ->
      print_endline "--- telemetry span tree ---";
      print_string (Telemetry.to_string ~trace:opts.trace t);
      let rows = Telemetry.per_op ~sort:opts.stats_sort t in
      let shown = List.filteri (fun i _ -> i < opts.stats_top) rows in
      Printf.printf "--- per-operator totals (top %d by %s) ---\n"
        (List.length shown) (sort_label opts.stats_sort);
      List.iter
        (fun a ->
          Printf.printf
            "  %-12s nodes=%-3d calls=%-8d steps=%-10d time=%.3fms \
             alloc=%-10.0f peak support=%d"
            a.Telemetry.a_op a.Telemetry.a_spans a.Telemetry.a_invocations
            a.Telemetry.a_steps
            (a.Telemetry.a_time_s *. 1e3)
            a.Telemetry.a_alloc_words a.Telemetry.a_peak_support;
          if a.Telemetry.a_memo_hits + a.Telemetry.a_memo_misses > 0 then
            Printf.printf "  memo=%d/%d" a.Telemetry.a_memo_hits
              (a.Telemetry.a_memo_hits + a.Telemetry.a_memo_misses);
          print_newline ())
        shown;
      let omitted = List.length rows - List.length shown in
      if omitted > 0 then
        Printf.printf "  ... %d more operator families (raise --stats-top)\n"
          omitted;
      Printf.printf "total steps: %d  (governor fuel spent: %d)\n"
        (Telemetry.total_steps t)
        (Budget.fuel_spent budget)
  | _ -> ()

(* --- observability export -------------------------------------------------- *)

(* The exporters run on every exit path of [run_eval] — success, verdict
   status 2, evaluation error, even a bad query — so a faulted or
   cancelled run still leaves a loadable trace behind.  A file-write
   failure degrades the exit code to 1 but never masks an earlier
   non-zero status. *)

let obs_wanted opts = opts.trace_out <> None || opts.log_json <> None

let write_file path f =
  match open_out path with
  | oc ->
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc);
      Ok ()
  | exception Sys_error msg -> Error msg

let finish_obs opts code =
  let code = ref code in
  let export what path f =
    match write_file path f with
    | Ok () -> ()
    | Error msg ->
        Printf.eprintf "cannot write %s %s: %s\n" what path msg;
        if !code = 0 then code := 1
  in
  Option.iter
    (fun path ->
      export "trace" path Obs.Trace.to_chrome;
      let dropped = Obs.dropped () in
      if dropped > 0 then
        Printf.eprintf
          "trace ring overflowed: %d oldest events dropped (see \
           otherData.droppedEvents)\n"
          dropped)
    opts.trace_out;
  Option.iter (fun path -> export "log" path Obs.Log.to_jsonl) opts.log_json;
  if opts.metrics then print_string (Metrics.to_prometheus Metrics.default);
  !code

(* --- subcommand bodies --------------------------------------------------- *)

let db_vals db = List.map (fun (n, _ty, v) -> (n, v)) db

(* The planning step between [check] and evaluation: never raises, and
   with --optimize off it is the identity. *)
let plan db opts e =
  Opt.prepare ~vals:(db_vals db) ~engine:opts.engine opts.optimize
    (Bagdb.type_env db) e

(* One governed attempt: fresh budget over the same limits, pool created
   and shut down here (also on exceptions, via with_pool). *)
let eval_once db opts e =
  let budget = Budget.start opts.limits in
  let telemetry =
    if opts.stats || opts.trace then Some (Telemetry.create ()) else None
  in
  let result =
    with_sigint budget @@ fun () ->
    Pool.with_pool ~jobs:opts.jobs (fun pool ->
        Veval.run_engine opts.engine ~budget ?telemetry ?pool
          (Bagdb.value_env db) e)
  in
  (result, budget, telemetry)

let run_eval_body db_path opts retry_degrade query =
  let* () = apply_faults opts in
  let* db = load_db db_path in
  let* e = parse_query query in
  let* ty = check db e in
  let e = plan db opts e in
  let report_ok v budget telemetry =
    Printf.printf "%s : %s\n" (Value.to_string v) (Ty.to_string ty);
    print_stats opts budget telemetry;
    0
  in
  match eval_once db opts e with
  | exception Eval.Eval_error msg ->
      Printf.eprintf "evaluation error: %s\n" msg;
      1
  | Ok v, budget, telemetry -> report_ok v budget telemetry
  | Error x, budget, telemetry -> (
      print_stats opts budget telemetry;
      Printf.eprintf "%s\n" (Budget.exhaustion_to_string x);
      (* The degradation ladder: a cancelled run stays cancelled, but a
         resource exhaustion earns one more attempt on the normalized
         plan — the rewrite rules (selection pushdown, map fusion, ...)
         often shrink the intermediates that blew the account — under a
         fresh budget with the same limits, both attempts reported. *)
      let retryable = x.Budget.resource <> Budget.Cancelled in
      if not (retry_degrade && retryable) then 2
      else
        let e', applied = Rewrite.normalize (Bagdb.type_env db) e in
        Printf.eprintf "retry-degrade: re-running normalized plan%s\n"
          (match applied with
          | [] -> " (no rules applied)"
          | l -> " (rules: " ^ String.concat ", " l ^ ")");
        match eval_once db opts e' with
        | exception Eval.Eval_error msg ->
            Printf.eprintf "evaluation error: %s\n" msg;
            1
        | Ok v, budget2, telemetry2 ->
            Printf.eprintf
              "retry-degrade: normalized plan succeeded where the original \
               exhausted\n";
            report_ok v budget2 telemetry2
        | Error y, budget2, telemetry2 ->
            print_stats opts budget2 telemetry2;
            Printf.eprintf "%s\n" (Budget.exhaustion_to_string y);
            Printf.eprintf "retry-degrade: both attempts failed\n";
            2)

let run_eval db_path opts retry_degrade query =
  if obs_wanted opts then Obs.enable ();
  let code = run_eval_body db_path opts retry_degrade query in
  finish_obs opts code

let run_analyze db_path query =
  let* db = load_db db_path in
  let* e = parse_query query in
  let* _ty = check db e in
  let report = Analyze.analyze (Bagdb.type_env db) e in
  print_endline (Analyze.report_to_string report);
  0

let run_normalize db_path query =
  let* db = load_db db_path in
  let* e = parse_query query in
  let* _ty = check db e in
  let e', applied = Rewrite.normalize (Bagdb.type_env db) e in
  Printf.printf "%s\n" (Expr.to_string e');
  if applied <> [] then
    Printf.printf "# rules applied: %s\n" (String.concat ", " applied);
  0

let run_explain db_path engine optimize analyze calibration calibration_out
    query =
  let* db = load_db db_path in
  let* e = parse_query query in
  let* _ty = check db e in
  let* () =
    match calibration with
    | None -> Ok ()
    | Some path -> (
        match Calib.load path with
        | Ok c ->
            Calib.set_current (Some c);
            Ok ()
        | Error msg -> Error ("cannot load calibration " ^ path ^ ": " ^ msg))
  in
  (* Planning happens out loud here: explain shows every candidate the
     optimiser considered — chosen and rejected, with both cost
     estimates — before profiling the plan it settled on. *)
  let e =
    match
      Opt.optimize ~vals:(db_vals db) ~engine optimize (Bagdb.type_env db) e
    with
    | e', report ->
        print_string (Opt.report_to_string report);
        e'
    | exception exn ->
        Printf.eprintf "optimizer error (running unoptimized): %s\n"
          (Printexc.to_string exn);
        e
  in
  let explain () =
    if analyze then begin
      (* EXPLAIN ANALYZE: measured vs estimated rows per operator, and
         optionally the calibration table the comparison induces *)
      let v, an =
        Explain.analyze ~env:(Bagdb.value_env db) ~vals:(db_vals db)
          ~tenv:(Bagdb.type_env db) ~engine e
      in
      print_string (Explain.analysis_to_string an);
      (match calibration_out with
      | None -> ()
      | Some path -> (
          match Calib.save path (Explain.calibration_of an) with
          | Ok () -> Printf.printf "calibration written to %s\n" path
          | Error msg ->
              Printf.eprintf "cannot write calibration %s: %s\n" path msg));
      v
    end
    else
      match engine with
      | Veval.Tree ->
          let v, profile = Explain.run ~env:(Bagdb.value_env db) e in
          print_string (Explain.profile_to_string profile);
          v
      | Veval.Vec ->
          (* the vec engine's profile is its executed plan: which subtrees
             ran a columnar kernel and which fell back to the tree path *)
          let v, plan = Explain.run_vec ~env:(Bagdb.value_env db) e in
          print_string (Veval.plan_to_string plan);
          v
  in
  match explain () with
  | v ->
      Printf.printf "result: %s\n" (Value.to_string v);
      0
  | exception Eval.Eval_error msg ->
      Printf.eprintf "evaluation error: %s\n" msg;
      1
  | exception Eval.Resource_limit msg ->
      Printf.eprintf "tractability guard: %s\n" msg;
      2

let run_repl db_path opts =
  let* () = apply_faults opts in
  let* db = load_db db_path in
  List.iter
    (fun (n, ty, v) ->
      Printf.printf "loaded %s : %s (%s distinct elements)\n" n (Ty.to_string ty)
        (string_of_int (Value.support_size v)))
    db;
  print_endline "balgi repl — enter queries, :q to quit";
  (* Crash-proof by construction: every failure inside the loop body —
     parse, type, evaluation, budget verdict, injected fault, anything
     unanticipated — prints a diagnostic and the loop continues.  Only
     end-of-input or :q leaves it, by returning. *)
  let one_line line =
    match parse_query line with
    | Error msg -> print_endline msg
    | Ok e -> (
        match check db e with
        | Error msg -> print_endline msg
        | Ok ty -> (
            let e = plan db opts e in
            let budget = Budget.start opts.limits in
            with_sigint budget @@ fun () ->
            match
              Pool.with_pool ~jobs:opts.jobs (fun pool ->
                  Veval.run_engine opts.engine ~budget ?pool
                    (Bagdb.value_env db) e)
            with
            | Ok v ->
                Printf.printf "%s : %s\n" (Value.to_string v) (Ty.to_string ty)
            | Error x -> print_endline (Budget.exhaustion_to_string x)))
  in
  let rec loop () =
    print_string "balg> ";
    match In_channel.input_line stdin with
    | None | Some ":q" -> 0
    | Some "" -> loop ()
    | Some line ->
        (try one_line line with
        | Eval.Eval_error msg -> Printf.printf "evaluation error: %s\n" msg
        | e -> Printf.printf "internal error: %s\n" (Printexc.to_string e));
        loop ()
    | exception Sys_error _ -> loop () (* interrupted read: keep the session *)
  in
  loop ()

(* --- client subcommand ---------------------------------------------------- *)

(* A thin front-end over the balgd wire protocol (lib/server/client.ml):
   commands come from repeated -e flags or, absent those, one per stdin
   line — so `balgi client` composes with shell pipes.  Exit codes mirror
   `balgi eval`: 0 all ok, 2 a budget verdict came back, 1 a protocol
   error, a transport failure or a connect failure (1 dominates 2, like a
   failed eval dominates an exhausted one). *)

let classify_reply reply =
  if String.length reply >= 4 && String.equal (String.sub reply 0 4) "err " then
    `Err
  else if
    String.length reply >= 8 && String.equal (String.sub reply 0 8) "verdict "
  then `Verdict
  else `Ok

(* A reply worth retrying during a failover window: a follower that is
   not yet promoted answers [err readonly], an overloaded server answers
   [err busy] — both are transient in a way [err type] never is. *)
let retryable_reply reply =
  let has p =
    String.length reply >= String.length p
    && String.equal (String.sub reply 0 (String.length p)) p
  in
  has "err readonly" || has "err busy"

let run_client host port cmds http_path retries timeout =
  match http_path with
  | Some path -> (
      match
        Balgserver.Client.retrying ~attempts:retries (fun _ ->
            Balgserver.Client.http_get ?timeout_s:timeout ~host ~port path)
      with
      | Ok body ->
          print_string body;
          0
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          1)
  | None ->
      (* one logical stream over possibly many connections: a transport
         failure drops the connection and the next attempt redials, so a
         retrying client rides out a primary restart or a failover *)
      let conn = ref None in
      let get_conn () =
        match !conn with
        | Some c -> Ok c
        | None -> (
            match
              Balgserver.Client.connect ?timeout_s:timeout ~host ~port ()
            with
            | Ok c ->
                conn := Some c;
                Ok c
            | Error _ as e -> e)
      in
      let drop_conn () =
        match !conn with
        | Some c ->
            Balgserver.Client.close c;
            conn := None
        | None -> ()
      in
      let saw_err = ref false and saw_verdict = ref false in
      (* [`Reply]: the server answered, just unfavourably — the stream
         can continue; [`Transport]/[`Connect]: the wire itself failed *)
      let last_kind = ref `Transport in
      let send cmd =
        let attempt _k =
          match get_conn () with
          | Error msg ->
              last_kind := `Connect;
              Error msg
          | Ok c -> (
              match Balgserver.Client.request c cmd with
              | Error msg ->
                  last_kind := `Transport;
                  drop_conn ();
                  Error msg
              | Ok reply when retryable_reply reply ->
                  last_kind := `Reply;
                  Error reply
              | Ok reply -> Ok reply)
        in
        match Balgserver.Client.retrying ~attempts:retries attempt with
        | Ok reply -> (
            match classify_reply reply with
            | `Err ->
                saw_err := true;
                Printf.eprintf "%s\n" reply;
                true
            | `Verdict ->
                saw_verdict := true;
                print_endline reply;
                true
            | `Ok ->
                print_endline reply;
                true)
        | Error msg -> (
            saw_err := true;
            Printf.eprintf "%s\n" msg;
            match !last_kind with
            | `Reply -> true (* the connection is fine; keep going *)
            | `Transport | `Connect -> false (* wire gone: stop the stream *))
      in
      let rec stdin_loop () =
        match In_channel.input_line stdin with
        | None -> ()
        | Some "" -> stdin_loop ()
        | Some line -> if send line then stdin_loop ()
      in
      (match cmds with
      | [] -> stdin_loop ()
      | cmds -> ignore (List.for_all send cmds));
      drop_conn ();
      if !saw_err then 1 else if !saw_verdict then 2 else 0

(* --- cmdliner wiring ------------------------------------------------------ *)

open Cmdliner

let db_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "d"; "db" ] ~docv:"FILE" ~doc:"A .bagdb database file to load.")

let query_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:"Step-fuel budget (closure invocations + materialised support).")

let max_support_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-support" ] ~docv:"N"
        ~doc:"Bound on distinct elements of any intermediate bag.")

let max_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-size" ] ~docv:"N"
        ~doc:"Bound on the encoded size of any intermediate value.")

let max_count_digits_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-count-digits" ] ~docv:"N"
        ~doc:"Bound on decimal digits of any multiplicity.")

let max_fix_steps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-fix-steps" ] ~docv:"N"
        ~doc:"Bound on fixpoint iterations.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Wall-clock deadline for the evaluation.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the telemetry span tree and per-operator totals.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Like --stats, with inclusive time, allocation and memo columns \
           per span.")

let stats_sort_arg =
  let sort_conv =
    Arg.enum
      [
        ("steps", Telemetry.By_steps);
        ("time", Telemetry.By_time);
        ("alloc", Telemetry.By_alloc);
      ]
  in
  Arg.(
    value
    & opt sort_conv Telemetry.By_steps
    & info [ "stats-sort" ] ~docv:"COLUMN"
        ~doc:
          "Sort the per-operator totals table by $(docv): $(b,steps) \
           (default), $(b,time) or $(b,alloc).")

let stats_top_arg =
  Arg.(
    value & opt int 10
    & info [ "stats-top" ] ~docv:"N"
        ~doc:"Show the top $(docv) operator families in the totals table.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record trace events during evaluation and write them to $(docv) \
           in Chrome trace-event JSON (load in Perfetto or \
           chrome://tracing).")

let log_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-json" ] ~docv:"FILE"
        ~doc:
          "Record trace events during evaluation and write them to $(docv) \
           as structured JSONL (one event object per line).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "After the run — including exhaustion, cancellation and injected \
           faults — print the metrics registry (counters, gauges, latency \
           histograms with p50/p90/p99) in Prometheus text format.")

let engine_arg =
  let engine_conv = Arg.enum [ ("tree", Veval.Tree); ("vec", Veval.Vec) ] in
  Arg.(
    value
    & opt engine_conv (Veval.default_engine ())
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,tree) (the structural evaluator, default) \
           or $(b,vec) (columnar kernels over segmented flat vectors, \
           falling back to the tree path per subtree for powerset and \
           fixpoint nodes).  Results are bit-identical.  The default can \
           also be set with $(b,BALG_ENGINE).")

let optimize_arg =
  let mode_conv =
    Arg.enum [ ("off", Opt.Off); ("rules", Opt.Rules); ("cost", Opt.Cost) ]
  in
  Arg.(
    value
    & opt mode_conv (Opt.default_mode ())
    & info [ "optimize" ] ~docv:"MODE"
        ~doc:
          "Plan optimization before evaluation: $(b,off) (default), \
           $(b,rules) (apply the rewrite families unconditionally) or \
           $(b,cost) (gate every rewrite on the property-driven cost \
           model).  Optimized plans produce bit-identical results on both \
           engines.  The default can also be set with $(b,BALG_OPT).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Evaluate on $(docv) domains.  Large kernels chunk their support \
           across the pool and independent operands of binary operators run \
           in parallel; results are identical to sequential evaluation.")

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "Arm fault-injection sites, e.g. \
           $(b,pool.task:p=0.05,bag.alloc:n=3).  Triggers: $(b,always), \
           $(b,n=K) (K-th hit), $(b,every=K), $(b,p=F).  Overrides \
           $(b,BALG_FAULT).")

let fault_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:
          "Seed for probabilistic fault triggers; the same seed replays \
           the same failure.")

let retry_degrade_arg =
  Arg.(
    value & flag
    & info [ "retry-degrade" ]
        ~doc:
          "On budget exhaustion, re-run the normalized (rewritten) plan \
           under a fresh budget with the same limits before giving up, \
           reporting both attempts.")

let opts_term =
  Term.(
    const make_opts $ fuel_arg $ max_support_arg $ max_size_arg
    $ max_count_digits_arg $ max_fix_steps_arg $ timeout_arg $ engine_arg
    $ optimize_arg $ stats_arg $ trace_arg $ stats_sort_arg $ stats_top_arg
    $ jobs_arg $ fault_arg $ fault_seed_arg $ trace_out_arg $ log_json_arg
    $ metrics_arg)

let eval_cmd =
  Cmd.v
    (Cmd.info "eval"
       ~doc:
         "Typecheck and evaluate a query against a database, under the \
          resource governor.")
    Term.(const run_eval $ db_arg $ opts_term $ retry_degrade_arg $ query_arg)

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Report bag nesting, power nesting and the complexity class the \
          paper's theorems assign to the query.")
    Term.(const run_analyze $ db_arg $ query_arg)

let normalize_cmd =
  Cmd.v
    (Cmd.info "normalize" ~doc:"Apply the bag-sound rewrite rules.")
    Term.(const run_normalize $ db_arg $ query_arg)

let analyze_flag_arg =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "EXPLAIN ANALYZE: annotate every operator with its measured \
           output cardinality next to the cost model's estimate, and \
           print the estimation-error (q-error) table.  Works under both \
           engines; results are bit-identical.")

let calibration_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "calibration" ] ~docv:"FILE"
        ~doc:
          "Load per-operator correction factors from $(docv) (written by \
           $(b,--calibration-out)) before planning: the cost model \
           multiplies its heuristic row estimates by them.  $(b,eval) \
           consumes the same file via $(b,BALG_CALIB).")

let calibration_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "calibration-out" ] ~docv:"FILE"
        ~doc:
          "With $(b,--analyze): write the calibration table induced by \
           the measured-vs-estimated comparison to $(docv).")

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Evaluate with profiling: per-operator call counts and largest \
          intermediate bag sizes ($(b,--engine tree)), or the executed \
          engine plan ($(b,--engine vec)).  $(b,--analyze) adds measured \
          vs estimated rows per operator and can emit a calibration file \
          ($(b,--calibration-out)) that feeds the cost model back \
          ($(b,--calibration) / $(b,BALG_CALIB)).")
    Term.(
      const run_explain $ db_arg $ engine_arg $ optimize_arg
      $ analyze_flag_arg $ calibration_arg $ calibration_out_arg $ query_arg)

let repl_cmd =
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive query loop.")
    Term.(const run_repl $ db_arg $ opts_term)

let client_host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")

let client_port_arg =
  Arg.(
    value & opt int 7421
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")

let client_exec_arg =
  Arg.(
    value & opt_all string []
    & info [ "e"; "exec" ] ~docv:"CMD"
        ~doc:
          "A protocol command to send (repeatable, sent in order), e.g. \
           $(b,-e 'eval R * R' -e metrics).  Without $(b,-e), commands are \
           read from stdin, one per line.")

let client_retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry a failed command up to $(docv) times with capped \
           exponential backoff.  Retried failures: connect errors, \
           transport errors (the client reconnects), and the transient \
           replies $(b,err readonly) (a follower awaiting promotion) and \
           $(b,err busy) (admission rejection).")

let client_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Connect and read timeout per attempt; without it the client \
           blocks indefinitely on a stalled server.")

let client_http_get_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "http-get" ] ~docv:"PATH"
        ~doc:
          "Instead of the line protocol, issue one HTTP GET for $(docv) \
           (e.g. $(b,/metrics)) and print the body.")

let client_cmd =
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running balgd server.  Exit codes mirror $(b,eval): 0 \
          all commands succeeded, 2 a budget verdict came back, 1 a \
          protocol error or connection failure.")
    Term.(
      const run_client $ client_host_arg $ client_port_arg $ client_exec_arg
      $ client_http_get_arg $ client_retries_arg $ client_timeout_arg)

let main =
  Cmd.group
    (Cmd.info "balgi" ~version:"1.2.0"
       ~doc:"Interpreter for the Grumbach–Milo nested bag algebra (BALG).")
    [ eval_cmd; analyze_cmd; normalize_cmd; explain_cmd; repl_cmd; client_cmd ]

let () =
  Fault.init_from_env ();
  exit (Cmd.eval' main)
