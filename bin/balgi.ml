(* balgi — the bag-algebra interpreter CLI.

   Subcommands:
     balgi eval      -d db.bagdb "pi[1](G * G)"     evaluate a query
     balgi analyze   -d db.bagdb "powerset(R)"      static complexity report
     balgi normalize -d db.bagdb "R /\ R"           rewrite to normal form
     balgi repl      -d db.bagdb                    interactive loop

   Evaluation runs under the Budget governor: --fuel / --max-support /
   --max-size / --max-count-digits / --max-fix-steps / --timeout set the
   limits, and exhaustion is reported as a located, structured verdict
   (exit code 2).  --stats prints the telemetry span tree and per-operator
   table; --trace adds time/allocation/memo columns per span. *)

open Balg
module Parser = Baglang.Parser
module Lexer = Baglang.Lexer
module Bagdb = Baglang.Bagdb

let load_db = function
  | None -> []
  | Some path -> Bagdb.load path

let parse_query q =
  try Parser.expr_of_string q with
  | Parser.Parse_error (msg, pos) ->
      Printf.eprintf "parse error at offset %d: %s\n" pos msg;
      exit 1
  | Lexer.Lex_error (msg, pos) ->
      Printf.eprintf "lex error at offset %d: %s\n" pos msg;
      exit 1

let check db e =
  try Typecheck.infer (Bagdb.type_env db) e with
  | Typecheck.Type_error msg ->
      Printf.eprintf "type error: %s\n" msg;
      exit 1

(* --- budget / telemetry options ------------------------------------------ *)

type opts = {
  limits : Budget.limits;
  stats : bool;
  trace : bool;
  jobs : int;  (** evaluation domains; 1 = sequential *)
}

let make_opts fuel max_support max_size max_count_digits max_fix_steps timeout
    stats trace jobs =
  let d = Budget.default in
  let pick o dflt = Option.value o ~default:dflt in
  {
    limits =
      {
        Budget.fuel = pick fuel d.Budget.fuel;
        max_support = pick max_support d.Budget.max_support;
        max_size = pick max_size d.Budget.max_size;
        max_count_digits = pick max_count_digits d.Budget.max_count_digits;
        max_fix_steps = pick max_fix_steps d.Budget.max_fix_steps;
        deadline_s = timeout;
      };
    stats;
    trace;
    jobs = max 1 jobs;
  }

let print_stats opts budget telemetry =
  match telemetry with
  | Some t when opts.stats || opts.trace ->
      print_endline "--- telemetry span tree ---";
      print_string (Telemetry.to_string ~trace:opts.trace t);
      print_endline "--- per-operator totals ---";
      List.iter
        (fun a ->
          Printf.printf "  %-12s nodes=%-3d calls=%-8d steps=%-10d peak support=%d"
            a.Telemetry.a_op a.Telemetry.a_spans a.Telemetry.a_invocations
            a.Telemetry.a_steps a.Telemetry.a_peak_support;
          if a.Telemetry.a_memo_hits + a.Telemetry.a_memo_misses > 0 then
            Printf.printf "  memo=%d/%d" a.Telemetry.a_memo_hits
              (a.Telemetry.a_memo_hits + a.Telemetry.a_memo_misses);
          print_newline ())
        (Telemetry.per_op t);
      Printf.printf "total steps: %d  (governor fuel spent: %d)\n"
        (Telemetry.total_steps t)
        (Budget.fuel_spent budget)
  | _ -> ()

(* --- subcommand bodies --------------------------------------------------- *)

let run_eval db_path opts query =
  let db = load_db db_path in
  let e = parse_query query in
  let ty = check db e in
  let budget = Budget.start opts.limits in
  let telemetry =
    if opts.stats || opts.trace then Some (Telemetry.create ()) else None
  in
  let pool = if opts.jobs > 1 then Some (Pool.create ~jobs:opts.jobs ()) else None in
  let finish () = Option.iter Pool.shutdown pool in
  match Eval.run ~budget ?telemetry ?pool (Bagdb.value_env db) e with
  | Ok v ->
      finish ();
      Printf.printf "%s : %s\n" (Value.to_string v) (Ty.to_string ty);
      print_stats opts budget telemetry
  | Error x ->
      finish ();
      print_stats opts budget telemetry;
      Printf.eprintf "%s\n" (Budget.exhaustion_to_string x);
      exit 2
  | exception Eval.Eval_error msg ->
      finish ();
      Printf.eprintf "evaluation error: %s\n" msg;
      exit 1

let run_analyze db_path query =
  let db = load_db db_path in
  let e = parse_query query in
  ignore (check db e);
  let report = Analyze.analyze (Bagdb.type_env db) e in
  print_endline (Analyze.report_to_string report)

let run_normalize db_path query =
  let db = load_db db_path in
  let e = parse_query query in
  ignore (check db e);
  let e', applied = Rewrite.normalize (Bagdb.type_env db) e in
  Printf.printf "%s\n" (Expr.to_string e');
  if applied <> [] then
    Printf.printf "# rules applied: %s\n" (String.concat ", " applied)

let run_explain db_path query =
  let db = load_db db_path in
  let e = parse_query query in
  ignore (check db e);
  (try
     let v, profile = Explain.run ~env:(Bagdb.value_env db) e in
     print_string (Explain.profile_to_string profile);
     Printf.printf "result: %s\n" (Value.to_string v)
   with
  | Eval.Eval_error msg ->
      Printf.eprintf "evaluation error: %s\n" msg;
      exit 1
  | Eval.Resource_limit msg | Bag.Too_large msg ->
      Printf.eprintf "tractability guard: %s\n" msg;
      exit 2)

let run_repl db_path opts =
  let db = load_db db_path in
  List.iter
    (fun (n, ty, v) ->
      Printf.printf "loaded %s : %s (%s distinct elements)\n" n (Ty.to_string ty)
        (string_of_int (Value.support_size v)))
    db;
  print_endline "balgi repl — enter queries, :q to quit";
  let rec loop () =
    print_string "balg> ";
    match In_channel.input_line stdin with
    | None | Some ":q" -> ()
    | Some "" -> loop ()
    | Some line ->
        (try
           let e = Parser.expr_of_string line in
           let ty = Typecheck.infer (Bagdb.type_env db) e in
           let budget = Budget.start opts.limits in
           match Eval.run ~budget (Bagdb.value_env db) e with
           | Ok v -> Printf.printf "%s : %s\n" (Value.to_string v) (Ty.to_string ty)
           | Error x -> Printf.printf "%s\n" (Budget.exhaustion_to_string x)
         with
        | Parser.Parse_error (msg, pos) ->
            Printf.printf "parse error at offset %d: %s\n" pos msg
        | Lexer.Lex_error (msg, pos) ->
            Printf.printf "lex error at offset %d: %s\n" pos msg
        | Typecheck.Type_error msg -> Printf.printf "type error: %s\n" msg
        | Eval.Eval_error msg -> Printf.printf "evaluation error: %s\n" msg);
        loop ()
  in
  loop ()

(* --- cmdliner wiring ------------------------------------------------------ *)

open Cmdliner

let db_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "d"; "db" ] ~docv:"FILE" ~doc:"A .bagdb database file to load.")

let query_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:"Step-fuel budget (closure invocations + materialised support).")

let max_support_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-support" ] ~docv:"N"
        ~doc:"Bound on distinct elements of any intermediate bag.")

let max_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-size" ] ~docv:"N"
        ~doc:"Bound on the encoded size of any intermediate value.")

let max_count_digits_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-count-digits" ] ~docv:"N"
        ~doc:"Bound on decimal digits of any multiplicity.")

let max_fix_steps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-fix-steps" ] ~docv:"N"
        ~doc:"Bound on fixpoint iterations.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Wall-clock deadline for the evaluation.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the telemetry span tree and per-operator totals.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Like --stats, with inclusive time, allocation and memo columns \
           per span.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Evaluate on $(docv) domains.  Large kernels chunk their support \
           across the pool and independent operands of binary operators run \
           in parallel; results are identical to sequential evaluation.")

let opts_term =
  Term.(
    const make_opts $ fuel_arg $ max_support_arg $ max_size_arg
    $ max_count_digits_arg $ max_fix_steps_arg $ timeout_arg $ stats_arg
    $ trace_arg $ jobs_arg)

let eval_cmd =
  Cmd.v
    (Cmd.info "eval"
       ~doc:
         "Typecheck and evaluate a query against a database, under the \
          resource governor.")
    Term.(const run_eval $ db_arg $ opts_term $ query_arg)

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Report bag nesting, power nesting and the complexity class the \
          paper's theorems assign to the query.")
    Term.(const run_analyze $ db_arg $ query_arg)

let normalize_cmd =
  Cmd.v
    (Cmd.info "normalize" ~doc:"Apply the bag-sound rewrite rules.")
    Term.(const run_normalize $ db_arg $ query_arg)

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Evaluate with profiling: per-operator call counts and largest \
          intermediate bag sizes.")
    Term.(const run_explain $ db_arg $ query_arg)

let repl_cmd =
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive query loop.")
    Term.(const run_repl $ db_arg $ opts_term)

let main =
  Cmd.group
    (Cmd.info "balgi" ~version:"1.1.0"
       ~doc:"Interpreter for the Grumbach–Milo nested bag algebra (BALG).")
    [ eval_cmd; analyze_cmd; normalize_cmd; explain_cmd; repl_cmd ]

let () = exit (Cmd.eval main)
