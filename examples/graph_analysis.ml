(* Graph analytics in BALG^1 (+ bounded fixpoint): the paper's Example 4.1
   (in-degree vs out-degree — not expressible in the infinitary logic
   L^omega_{inf,omega}!) and transitive closure via the bounded fixpoint of
   §6, on a small flight network.

   Run with:  dune exec examples/graph_analysis.exe *)

open Balg

let edge a b = Value.tuple [ Value.atom a; Value.atom b ]

(* A hub-and-spoke flight network: many flights into hub, fewer out. *)
let flights =
  Value.bag_of_list
    [
      edge "lyon" "paris";
      edge "nice" "paris";
      edge "brest" "paris";
      edge "paris" "lyon";
      edge "paris" "telaviv";
      edge "telaviv" "eilat";
    ]

let env = Eval.env_of_list [ ("F", flights) ]
let eval e = Eval.eval env e
let g = Expr.Var "F"

let () =
  print_endline "== graph analysis with the bag algebra ==\n";
  Printf.printf "flights: %s\n\n" (Value.to_string flights);

  (* Example 4.1: is the in-degree of a node bigger than its out-degree?
     The duplicates produced by the projections are exactly what makes the
     comparison work. *)
  List.iter
    (fun city ->
      let q = Derived.indeg_gt_outdeg g (Expr.atom city) in
      Printf.printf "more arrivals than departures at %-8s : %b\n" city
        (Eval.truthy (eval q)))
    [ "paris"; "lyon"; "telaviv" ];
  print_newline ();

  (* Reachability: transitive closure through the bounded fixpoint. *)
  let tc = eval (Derived.transitive_closure g) in
  Printf.printf "reachability relation (%d pairs):\n  %s\n\n"
    (Value.support_size tc) (Value.to_string tc);
  Printf.printf "can you fly brest ~> eilat (with stops)? %b\n"
    (Eval.truthy
       (eval
          (Derived.mem_expr
             (Expr.Tuple [ Expr.atom "brest"; Expr.atom "eilat" ])
             (Derived.transitive_closure g))));

  (* Static analysis: Example 4.1 stays in LOGSPACE (Thm 4.4); transitive
     closure needs the bounded fixpoint. *)
  let tenv = Typecheck.env_of_list [ ("F", Ty.relation 2) ] in
  print_newline ();
  print_endline "analysis of the degree query:";
  print_endline
    (Analyze.report_to_string
       (Analyze.analyze tenv (Derived.indeg_gt_outdeg g (Expr.atom "paris"))));
  print_newline ();
  print_endline "analysis of transitive closure:";
  print_endline
    (Analyze.report_to_string (Analyze.analyze tenv (Derived.transitive_closure g)))
