(* SQL over bags, compiled to the algebra.

   The paper opens with the observation that real systems implement
   relations as bags "often to save the cost of duplicate elimination", and
   that SQL's COUNT/SUM/AVG are duplicate-sensitive.  This demo runs a small
   SQL workload through the Sqlish compiler and shows the generated BALG
   expressions.

   Run with:  dune exec examples/sql_demo.exe *)

open Balg
module Sql = Baglang.Sqlish

let row c p q = Value.tuple [ Value.atom c; Value.atom p; Value.nat q ]

let orders =
  Value.bag_of_assoc
    [
      (row "ada" "widget" 5, Bignat.of_int 2);
      (row "ada" "gadget" 1, Bignat.one);
      (row "bob" "widget" 7, Bignat.one);
      (row "cleo" "gadget" 2, Bignat.of_int 3);
    ]

let tables =
  [
    Sql.table "Orders"
      [ ("customer", Ty.Atom); ("product", Ty.Atom); ("qty", Ty.nat) ];
  ]

let env = Eval.env_of_list [ ("Orders", orders) ]

let show title q =
  let e = Sql.compile ~tables q in
  let v = Eval.eval env e in
  Printf.printf "%s\n  algebra: %s\n  result : %s\n\n" title (Expr.to_string e)
    (Value.to_string v)

let () =
  print_endline "== SQL on bags ==\n";
  Printf.printf "Orders: %s\n\n" (Value.to_string orders);

  show "SELECT customer FROM Orders          -- duplicates survive"
    (Sql.select [ Sql.Column ("o", "customer") ] ~from:[ ("Orders", "o") ] ());

  show "SELECT DISTINCT customer FROM Orders"
    (Sql.select ~distinct:true
       [ Sql.Column ("o", "customer") ]
       ~from:[ ("Orders", "o") ] ());

  show "SELECT COUNT(*) FROM Orders"
    (Sql.select [ Sql.Count_star ] ~from:[ ("Orders", "o") ] ());

  show "SELECT SUM(qty) FROM Orders"
    (Sql.select [ Sql.Sum_of ("o", "qty") ] ~from:[ ("Orders", "o") ] ());

  show "SELECT customer, COUNT(*), SUM(qty) FROM Orders GROUP BY customer"
    (Sql.select
       [ Sql.Column ("o", "customer"); Sql.Count_star; Sql.Sum_of ("o", "qty") ]
       ~from:[ ("Orders", "o") ]
       ~group_by:[ ("o", "customer") ]
       ());

  print_endline
    "note the GROUP BY compiles to the §7 nest operator, and the aggregates\n\
     to the paper's integer-as-bag encodings — the entire SQL fragment lives\n\
     in BALG^2."
