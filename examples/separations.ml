(* The separation results of §4, demonstrated on data:

   - cardinality comparison (Example 4.2) — expressible in BALG^1, not in
     the relational algebra, and the reason no 0-1 law holds;
   - parity of a relation in the presence of an order;
   - the Prop 4.1/4.5 polynomial abstraction: why bag-even and duplicate
     elimination are NOT expressible in BALG^1.

   Run with:  dune exec examples/separations.exe *)

open Balg

let rel1 l = Value.bag_of_list (List.map (fun x -> Value.tuple [ Value.atom x ]) l)

let () =
  print_endline "== separations between BALG^1 and the relational algebra ==\n";

  (* Example 4.2: |R| > |S|. *)
  let r = Expr.lit (rel1 [ "a"; "b"; "c" ]) (Ty.relation 1) in
  let s = Expr.lit (rel1 [ "x"; "y" ]) (Ty.relation 1) in
  let q = Derived.card_gt_paper r s in
  Printf.printf "|R|=3 > |S|=2 via pi1(RxR) -- pi1(RxS):  %b\n"
    (Eval.truthy (Eval.eval (Eval.env_of_list []) q));
  Printf.printf "(the same query under set semantics cannot count: the \
                 relational\n algebra has an AC0 upper bound and MAJORITY is \
                 not in AC0)\n\n";

  (* Parity with an order (§4): even iff some element splits R in half. *)
  print_endline "parity of |R| given a total order (the paper's median trick):";
  List.iter
    (fun names ->
      let rv = rel1 names in
      let leq = Baggen.Genval.leq_relation rv in
      let q =
        Derived.parity_even
          (Expr.lit rv (Ty.relation 1))
          (Expr.lit leq (Ty.relation 2))
      in
      Printf.printf "  |R| = %d  ->  %s\n" (List.length names)
        (if Eval.truthy (Eval.eval (Eval.env_of_list []) q) then "even" else "odd"))
    [ [ "a" ]; [ "a"; "b" ]; [ "a"; "b"; "c" ]; [ "a"; "b"; "c"; "d" ] ];
  print_newline ();

  (* Prop 4.1 / 4.5 mechanised: abstract-interpret BALG^1 expressions into
     occurrence-count polynomials on the family B_n = {{<a>:n}}. *)
  print_endline "polynomial abstraction on B_n = {{<a>:n}} (Prop 4.1):";
  let show_poly name e =
    let a = Polyab.analyze ~input:"B" e in
    List.iter
      (fun (t, p) ->
        Printf.printf "  %-28s count(%s) = %s   (valid for n > %d)\n" name
          (Value.to_string t) (Poly.to_string p) a.Polyab.threshold)
      a.Polyab.entries
  in
  show_poly "B" (Expr.Var "B");
  show_poly "B ++ B" Expr.(Var "B" ++ Var "B");
  show_poly "pi1(B x B)" (Expr.proj_attrs [ 1 ] Expr.(Var "B" *** Var "B"));
  show_poly "dedup(B)" (Expr.Dedup (Expr.Var "B"));
  show_poly "pi1(BxB) -- B"
    Expr.(Expr.proj_attrs [ 1 ] (Var "B" *** Var "B") -- Var "B");
  print_newline ();
  print_endline
    "every BALG^1 expression yields such polynomials, and polynomials are\n\
     eventually monotone — so no BALG^1 expression alternates forever with n.\n\
     That is exactly why bag-even is not expressible (Prop 4.5), and why\n\
     dedup and monus need the powerset (Prop 4.1 with the nesting increase\n\
     of §3).";
  print_newline ();

  (* No 0-1 law: |R| > |S| on random unary relations tends to probability
     1/2 (Example 4.2 / [FGT93]). *)
  print_endline "Monte-Carlo estimate of mu_n(|R| > |S|) (no 0-1 law for BALG^1):";
  let rng = Random.State.make [| 2026 |] in
  List.iter
    (fun n ->
      let p, se =
        Baggen.Stats.bernoulli ~trials:2000 rng (fun rng ->
            let r = Baggen.Genval.unary_relation rng ~n_atoms:n ~p:0.5 in
            let s = Baggen.Genval.unary_relation rng ~n_atoms:n ~p:0.5 in
            Eval.truthy
              (Eval.eval (Eval.env_of_list [])
                 (Derived.card_gt
                    (Expr.lit r (Ty.relation 1))
                    (Expr.lit s (Ty.relation 1)))))
      in
      Printf.printf "  n = %3d : mu = %.3f +- %.3f\n" n p se)
    [ 4; 16; 64 ];
  print_endline "  (a first-order property would tend to 0 or 1; this tends to 1/2)"
