(* Aggregates over bags — the paper's §1 motivation: "in practical query
   languages (e.g. SQL), some operations (e.g. aggregate functions such as
   COUNT, AVG) are sensitive to the number of duplicates".

   Scenario: a sales ledger where each line item is a tuple
   <customer, product>.  The same line can legitimately occur many times —
   duplicate elimination would corrupt every aggregate below.

   Run with:  dune exec examples/aggregates.exe *)

open Balg

let line c p = Value.tuple [ Value.atom c; Value.atom p ]

let ledger =
  Value.bag_of_assoc
    [
      (line "ada" "widget", Bignat.of_int 3);
      (line "ada" "gadget", Bignat.of_int 1);
      (line "bob" "widget", Bignat.of_int 2);
      (line "bob" "gadget", Bignat.of_int 4);
      (line "cleo" "widget", Bignat.of_int 2);
    ]

let env = Eval.env_of_list [ ("Sales", ledger) ]
let eval e = Eval.eval env e
let nat_of e = Bignat.to_int_exn (Value.nat_value (eval e))

let () =
  print_endline "== aggregates over a sales ledger ==\n";
  Printf.printf "ledger: %s\n\n" (Value.to_string ledger);

  (* COUNT(*) — the paper's count(B) = pi1({{<a>}} x B). *)
  Printf.printf "COUNT(*)                          = %d\n"
    (nat_of (Derived.count (Expr.Var "Sales")));

  (* COUNT(DISTINCT *) — dedup first; this is where set semantics and bag
     semantics disagree. *)
  Printf.printf "COUNT(DISTINCT *)                 = %d\n"
    (nat_of (Derived.count (Expr.Dedup (Expr.Var "Sales"))));

  (* COUNT per customer, demonstrated for one customer: a selection before
     the count. *)
  let per_customer who =
    Derived.count
      (Expr.select "x" (Expr.Proj (1, Expr.Var "x")) (Expr.atom who)
         (Expr.Var "Sales"))
  in
  List.iter
    (fun who -> Printf.printf "COUNT where customer = %-5s       = %d\n" who
        (nat_of (per_customer who)))
    [ "ada"; "bob"; "cleo" ];
  print_newline ();

  (* SUM and AVG over a bag of integers, built as integer-bags: how many
     items did each customer buy? *)
  let counts_per_customer =
    (* a bag of integer-bags: {{ count(ada), count(bob), count(cleo) }} *)
    Value.bag_of_list (List.map (fun who -> eval (per_customer who)) [ "ada"; "bob"; "cleo" ])
  in
  let nums = Expr.lit counts_per_customer (Ty.Bag Ty.nat) in
  Printf.printf "per-customer item counts          = {{4, 6, 2}} (as bags)\n";
  Printf.printf "SUM(items)  via delta             = %d\n"
    (Bignat.to_int_exn (Value.nat_value (eval (Derived.sum nums))));
  Printf.printf "AVG(items)  via powerset select   = %d\n"
    (Bignat.to_int_exn (Value.nat_value (eval (Derived.average nums))));
  Printf.printf "FLOOR-AVG on a non-divisible bag  = %d\n"
    (Bignat.to_int_exn
       (Value.nat_value
          (eval
             (Derived.floor_average
                (Expr.lit
                   (Value.bag_of_list [ Value.nat 1; Value.nat 2 ])
                   (Ty.Bag Ty.nat))))));
  print_newline ();

  (* Cardinality comparison (Example 4.2): did bob buy more than ada? *)
  let bought who =
    Expr.select "x" (Expr.Proj (1, Expr.Var "x")) (Expr.atom who) (Expr.Var "Sales")
  in
  Printf.printf "bob bought more than ada?         = %b\n"
    (Eval.truthy (eval (Derived.card_gt (bought "bob") (bought "ada"))));
  Printf.printf "ada bought more than bob?         = %b\n"
    (Eval.truthy (eval (Derived.card_gt (bought "ada") (bought "bob"))));

  (* The CV93 trap: a set-semantics optimiser would erase the dedup below
     and corrupt COUNT(DISTINCT). *)
  let q = Expr.Dedup (Expr.proj_attrs [ 2 ] (Expr.Var "Sales")) in
  Printf.printf "\ndistinct products                 = %s\n"
    (Value.to_string (eval q));
  Printf.printf "same query, dedup dropped (WRONG under bags) = %s\n"
    (Value.to_string (eval (Expr.proj_attrs [ 2 ] (Expr.Var "Sales"))))
