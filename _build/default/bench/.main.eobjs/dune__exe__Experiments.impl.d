bench/experiments.ml: Analyze Bag Baggen Balg Bignat Derived Encodings Eval Expr Format Fun List Pebble Poly Polyab Printf Ralg Random Rewrite String Turing Ty Typecheck Value
