bench/main.mli:
