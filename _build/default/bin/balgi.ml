(* balgi — the bag-algebra interpreter CLI.

   Subcommands:
     balgi eval      -d db.bagdb "pi[1](G * G)"     evaluate a query
     balgi analyze   -d db.bagdb "powerset(R)"      static complexity report
     balgi normalize -d db.bagdb "R /\ R"           rewrite to normal form
     balgi repl      -d db.bagdb                    interactive loop *)

open Balg
module Parser = Baglang.Parser
module Lexer = Baglang.Lexer
module Bagdb = Baglang.Bagdb

let load_db = function
  | None -> []
  | Some path -> Bagdb.load path

let parse_query q =
  try Parser.expr_of_string q with
  | Parser.Parse_error (msg, pos) ->
      Printf.eprintf "parse error at offset %d: %s\n" pos msg;
      exit 1
  | Lexer.Lex_error (msg, pos) ->
      Printf.eprintf "lex error at offset %d: %s\n" pos msg;
      exit 1

let check db e =
  try Typecheck.infer (Bagdb.type_env db) e with
  | Typecheck.Type_error msg ->
      Printf.eprintf "type error: %s\n" msg;
      exit 1

let eval_checked db e =
  try Eval.eval (Bagdb.value_env db) e with
  | Eval.Eval_error msg ->
      Printf.eprintf "evaluation error: %s\n" msg;
      exit 1
  | Eval.Resource_limit msg | Bag.Too_large msg ->
      Printf.eprintf "tractability guard: %s\n" msg;
      exit 2

(* --- subcommand bodies --------------------------------------------------- *)

let run_eval db_path query =
  let db = load_db db_path in
  let e = parse_query query in
  let ty = check db e in
  let v = eval_checked db e in
  Printf.printf "%s : %s\n" (Value.to_string v) (Ty.to_string ty)

let run_analyze db_path query =
  let db = load_db db_path in
  let e = parse_query query in
  ignore (check db e);
  let report = Analyze.analyze (Bagdb.type_env db) e in
  print_endline (Analyze.report_to_string report)

let run_normalize db_path query =
  let db = load_db db_path in
  let e = parse_query query in
  ignore (check db e);
  let e', applied = Rewrite.normalize (Bagdb.type_env db) e in
  Printf.printf "%s\n" (Expr.to_string e');
  if applied <> [] then
    Printf.printf "# rules applied: %s\n" (String.concat ", " applied)

let run_explain db_path query =
  let db = load_db db_path in
  let e = parse_query query in
  ignore (check db e);
  (try
     let v, profile = Explain.run ~env:(Bagdb.value_env db) e in
     print_string (Explain.profile_to_string profile);
     Printf.printf "result: %s\n" (Value.to_string v)
   with
  | Eval.Eval_error msg ->
      Printf.eprintf "evaluation error: %s\n" msg;
      exit 1
  | Eval.Resource_limit msg | Bag.Too_large msg ->
      Printf.eprintf "tractability guard: %s\n" msg;
      exit 2)

let run_repl db_path =
  let db = load_db db_path in
  List.iter
    (fun (n, ty, v) ->
      Printf.printf "loaded %s : %s (%s distinct elements)\n" n (Ty.to_string ty)
        (string_of_int (Value.support_size v)))
    db;
  print_endline "balgi repl — enter queries, :q to quit";
  let rec loop () =
    print_string "balg> ";
    match In_channel.input_line stdin with
    | None | Some ":q" -> ()
    | Some "" -> loop ()
    | Some line ->
        (try
           let e = Parser.expr_of_string line in
           let ty = Typecheck.infer (Bagdb.type_env db) e in
           let v = Eval.eval (Bagdb.value_env db) e in
           Printf.printf "%s : %s\n" (Value.to_string v) (Ty.to_string ty)
         with
        | Parser.Parse_error (msg, pos) ->
            Printf.printf "parse error at offset %d: %s\n" pos msg
        | Lexer.Lex_error (msg, pos) ->
            Printf.printf "lex error at offset %d: %s\n" pos msg
        | Typecheck.Type_error msg -> Printf.printf "type error: %s\n" msg
        | Eval.Eval_error msg -> Printf.printf "evaluation error: %s\n" msg
        | Eval.Resource_limit msg | Bag.Too_large msg ->
            Printf.printf "tractability guard: %s\n" msg);
        loop ()
  in
  loop ()

(* --- cmdliner wiring ------------------------------------------------------ *)

open Cmdliner

let db_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "d"; "db" ] ~docv:"FILE" ~doc:"A .bagdb database file to load.")

let query_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY")

let eval_cmd =
  Cmd.v
    (Cmd.info "eval" ~doc:"Typecheck and evaluate a query against a database.")
    Term.(const run_eval $ db_arg $ query_arg)

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Report bag nesting, power nesting and the complexity class the \
          paper's theorems assign to the query.")
    Term.(const run_analyze $ db_arg $ query_arg)

let normalize_cmd =
  Cmd.v
    (Cmd.info "normalize" ~doc:"Apply the bag-sound rewrite rules.")
    Term.(const run_normalize $ db_arg $ query_arg)

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Evaluate with profiling: per-operator call counts and largest \
          intermediate bag sizes.")
    Term.(const run_explain $ db_arg $ query_arg)

let repl_cmd =
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive query loop.")
    Term.(const run_repl $ db_arg)

let main =
  Cmd.group
    (Cmd.info "balgi" ~version:"1.0.0"
       ~doc:"Interpreter for the Grumbach–Milo nested bag algebra (BALG).")
    [ eval_cmd; analyze_cmd; normalize_cmd; explain_cmd; repl_cmd ]

let () = exit (Cmd.eval main)
