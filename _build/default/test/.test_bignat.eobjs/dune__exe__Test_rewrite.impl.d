test/test_rewrite.ml: Alcotest Baggen Balg Eval Expr Fun Gen List QCheck QCheck_alcotest Ralg Random Rewrite Stdlib Ty Typecheck Value
