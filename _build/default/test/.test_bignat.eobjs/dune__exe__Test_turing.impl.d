test/test_turing.ml: Alcotest List Printf Turing
