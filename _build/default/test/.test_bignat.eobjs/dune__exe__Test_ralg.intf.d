test/test_ralg.mli:
