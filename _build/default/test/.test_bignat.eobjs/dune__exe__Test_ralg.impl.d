test/test_ralg.ml: Alcotest Bag Baggen Balg Bignat Derived Eval Expr Gen List QCheck QCheck_alcotest Ralg Random Value
