test/test_mset.ml: Alcotest Bignat Int List Mset Printf QCheck QCheck_alcotest String
