test/test_fuzz.ml: Alcotest Analyze Bag Baggen Baglang Balg Eval Expr Gen List QCheck QCheck_alcotest Random Rewrite Stdlib Typecheck Value
