test/test_calc.ml: Alcotest Balg Derived Expr Fun List Ralg Value
