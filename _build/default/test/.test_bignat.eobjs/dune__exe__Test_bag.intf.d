test/test_bag.mli:
