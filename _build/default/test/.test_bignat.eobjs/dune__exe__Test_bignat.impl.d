test/test_bignat.ml: Alcotest Bignat List QCheck QCheck_alcotest
