test/test_lang.ml: Alcotest Baggen Baglang Balg Bignat Derived Eval Expr Gen List QCheck QCheck_alcotest Random Stdlib Ty Typecheck Value
