test/test_eval.ml: Alcotest Baggen Balg Bignat Derived Eval Expr Gen List QCheck QCheck_alcotest Random Ty Typecheck Value
