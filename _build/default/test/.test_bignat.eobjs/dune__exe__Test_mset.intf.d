test/test_mset.mli:
