test/test_turing.mli:
