test/test_encodings.ml: Alcotest Analyze Balg Bignat Derived Encodings Eval List Printf QCheck QCheck_alcotest Turing Ty Typecheck Value
