test/test_analyze.ml: Alcotest Analyze Balg Derived Expr String Ty Typecheck
