test/test_laws.ml: Alcotest Bag Baggen Balg Bignat List QCheck QCheck_alcotest Random Ty Value
