test/test_value.ml: Alcotest Baggen Balg Bignat Gen List QCheck QCheck_alcotest Random Stdlib Ty Value
