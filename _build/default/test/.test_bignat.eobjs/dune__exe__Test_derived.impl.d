test/test_derived.ml: Alcotest Bag Baggen Balg Bignat Derived Eval Expr Gen List Printf QCheck QCheck_alcotest Random Ty Value
