test/test_sqlish.mli:
