test/test_explain.ml: Alcotest Bag Balg Derived Eval Explain Expr List Option String Value
