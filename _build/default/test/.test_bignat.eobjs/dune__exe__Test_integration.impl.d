test/test_integration.ml: Alcotest Analyze Bag Baglang Balg Bignat Derived Eval Expr Filename List Printf Rewrite Sys Ty Typecheck Value
