test/test_calc.mli:
