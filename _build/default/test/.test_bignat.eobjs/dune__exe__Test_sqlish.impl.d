test/test_sqlish.ml: Alcotest Bag Baglang Balg Bignat Eval Ty Typecheck Value
