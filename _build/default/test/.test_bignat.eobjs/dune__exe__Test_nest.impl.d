test/test_nest.ml: Alcotest Analyze Baggen Baglang Balg Bignat Derived Eval Expr Gen List QCheck QCheck_alcotest Ralg Random Rewrite Stdlib Ty Typecheck Value
