test/test_pebble.ml: Alcotest Balg Eval Format List Pebble Printf String Typecheck
