test/test_polyab.ml: Alcotest Array Baggen Balg Bigint Derived Expr Gen List Poly Polyab Printf QCheck QCheck_alcotest Random Ty Typecheck Value
