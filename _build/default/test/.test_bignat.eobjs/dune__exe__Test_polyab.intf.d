test/test_polyab.mli:
