test/test_bag.ml: Alcotest Bag Baggen Balg Bignat List Mset Printf QCheck QCheck_alcotest Random Value
