(* Tests for the Turing machine substrate. *)

module Tm = Turing.Tm

let test_parity_machine () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "parity accepts %d iff even" n)
        (n mod 2 = 0)
        (Tm.accepts Tm.parity_even (Tm.unary n)))
    [ 0; 1; 2; 3; 4; 5; 8; 9 ]

let test_successor_machine () =
  List.iter
    (fun n ->
      match Tm.run ~space:(n + 3) Tm.unary_successor (Tm.unary n) with
      | Tm.Accepted c ->
          Alcotest.(check int)
            (Printf.sprintf "successor of %d" n)
            (n + 1) (Tm.ones_on_tape c)
      | Tm.Halted _ | Tm.Ran_out_of_fuel -> Alcotest.fail "expected acceptance")
    [ 0; 1; 2; 5 ]

let test_bouncer () =
  Alcotest.(check bool) "bouncer accepts nonempty" true
    (Tm.accepts Tm.bouncer (Tm.unary 3));
  (* ends on the last 1: head = n+1 after the final Right move *)
  match Tm.run Tm.bouncer (Tm.unary 3) with
  | Tm.Accepted c -> Alcotest.(check int) "head position" 4 c.Tm.head
  | _ -> Alcotest.fail "expected acceptance"

let test_tiny_step () =
  Alcotest.(check bool) "tiny accepts" true
    (Tm.accepts ~space:2 Tm.tiny_step [ "1"; "1" ])

let test_binary_increment () =
  List.iter
    (fun n ->
      match Tm.run Tm.binary_increment (Tm.to_binary n) with
      | Tm.Accepted c ->
          Alcotest.(check int)
            (Printf.sprintf "increment of %d" n)
            (n + 1) (Tm.of_binary_tape c)
      | _ -> Alcotest.fail "expected acceptance")
    [ 0; 1; 2; 3; 7; 12; 255 ]

let test_trace () =
  let tr = Tm.trace ~space:4 Tm.parity_even (Tm.unary 2) in
  Alcotest.(check int) "3 steps + initial" 4 (List.length tr);
  let first = List.hd tr in
  Alcotest.(check string) "starts in start state" "qe" first.Tm.state;
  Alcotest.(check int) "head starts at 1" 1 first.Tm.head

let test_fuel () =
  let spin =
    {
      Tm.name = "spin";
      blank = "_";
      start = "q";
      accept = "qa";
      states = [ "q"; "qa" ];
      alphabet = [ "_" ];
      delta =
        (function "q", "_" -> Some ("q", "_", Right) | _ -> None);
    }
  in
  match Tm.run ~fuel:10 ~space:100 spin [] with
  | Tm.Ran_out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_out_of_space () =
  (* moving left from cell 1 must raise *)
  let lefty =
    {
      Tm.name = "lefty";
      blank = "_";
      start = "q";
      accept = "qa";
      states = [ "q"; "qa" ];
      alphabet = [ "_" ];
      delta = (function "q", "_" -> Some ("q", "_", Tm.Left) | _ -> None);
    }
  in
  match Tm.run ~space:3 lefty [] with
  | exception Tm.Out_of_space -> ()
  | _ -> Alcotest.fail "expected Out_of_space"

let () =
  Alcotest.run "turing"
    [
      ( "machines",
        [
          Alcotest.test_case "parity" `Quick test_parity_machine;
          Alcotest.test_case "successor" `Quick test_successor_machine;
          Alcotest.test_case "bouncer (left moves)" `Quick test_bouncer;
          Alcotest.test_case "tiny step" `Quick test_tiny_step;
          Alcotest.test_case "binary increment" `Quick test_binary_increment;
          Alcotest.test_case "trace" `Quick test_trace;
          Alcotest.test_case "fuel" `Quick test_fuel;
          Alcotest.test_case "out of space" `Quick test_out_of_space;
        ] );
    ]
