(* Property tests for the algebraic laws stated in §3 ("the operations
   satisfy some algebraic properties, such as associativity, commutativity,
   etc.") and the structural laws the rewriting engine relies on.  These are
   laws of the *interpreter*, checked on random nested values. *)

open Balg
module B = Bignat

let gen_flat =
  QCheck.Gen.map
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      Baggen.Genval.flat_bag rng ~n_atoms:4 ~arity:2 ~size:5 ~max_count:4)
    QCheck.Gen.int

let arb = QCheck.make ~print:Value.to_string gen_flat

let gen_nested =
  QCheck.Gen.map
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      Baggen.Genval.of_type rng ~n_atoms:3 ~width:3 ~max_count:3
        (Ty.Bag (Ty.Bag Ty.Atom)))
    QCheck.Gen.int

let arb_nested = QCheck.make ~print:Value.to_string gen_nested

let t name count arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let pair2 = QCheck.pair arb arb
let triple3 = QCheck.triple arb arb arb

let laws_binary =
  [
    t "∪+ commutative" 300 pair2 (fun (a, b) ->
        Value.equal (Bag.union_add a b) (Bag.union_add b a));
    t "∪+ associative" 300 triple3 (fun (a, b, c) ->
        Value.equal
          (Bag.union_add a (Bag.union_add b c))
          (Bag.union_add (Bag.union_add a b) c));
    t "∪max commutative" 300 pair2 (fun (a, b) ->
        Value.equal (Bag.union_max a b) (Bag.union_max b a));
    t "∪max associative" 300 triple3 (fun (a, b, c) ->
        Value.equal
          (Bag.union_max a (Bag.union_max b c))
          (Bag.union_max (Bag.union_max a b) c));
    t "∩ commutative" 300 pair2 (fun (a, b) ->
        Value.equal (Bag.inter a b) (Bag.inter b a));
    t "∩ associative" 300 triple3 (fun (a, b, c) ->
        Value.equal (Bag.inter a (Bag.inter b c)) (Bag.inter (Bag.inter a b) c));
    t "∩ distributes over ∪max" 300 triple3 (fun (a, b, c) ->
        Value.equal
          (Bag.inter a (Bag.union_max b c))
          (Bag.union_max (Bag.inter a b) (Bag.inter a c)));
    t "∪max distributes over ∩" 300 triple3 (fun (a, b, c) ->
        Value.equal
          (Bag.union_max a (Bag.inter b c))
          (Bag.inter (Bag.union_max a b) (Bag.union_max a c)));
    t "monus galois: (a−b)+b∩a = a ... (a−b) = a−(a∩b)" 300 pair2 (fun (a, b) ->
        Value.equal (Bag.diff a b) (Bag.diff a (Bag.inter a b)));
    t "a = (a−b) ∪+ (a∩b)" 300 pair2 (fun (a, b) ->
        Value.equal a (Bag.union_add (Bag.diff a b) (Bag.inter a b)));
    t "∪+ = ∪max + ∩ (counts)" 300 pair2 (fun (a, b) ->
        Value.equal (Bag.union_add a b)
          (Bag.union_add (Bag.union_max a b) (Bag.inter a b)));
  ]

let laws_product =
  [
    t "× distributes over ∪+ (left)" 200 triple3 (fun (a, b, c) ->
        Value.equal
          (Bag.product a (Bag.union_add b c))
          (Bag.union_add (Bag.product a b) (Bag.product a c)));
    t "× with empty annihilates" 200 arb (fun a ->
        Value.equal (Bag.product a Value.empty_bag) Value.empty_bag);
    t "card(a×b) = card a · card b" 200 pair2 (fun (a, b) ->
        B.equal
          (Value.cardinal (Bag.product a b))
          (B.mul (Value.cardinal a) (Value.cardinal b)));
  ]

let laws_structure =
  [
    t "ε idempotent" 300 arb (fun a -> Value.equal (Bag.dedup (Bag.dedup a)) (Bag.dedup a));
    t "ε distributes over ∪max" 300 pair2 (fun (a, b) ->
        Value.equal
          (Bag.dedup (Bag.union_max a b))
          (Bag.union_max (Bag.dedup a) (Bag.dedup b)));
    t "subbag is a partial order (antisym)" 300 pair2 (fun (a, b) ->
        if Bag.subbag a b && Bag.subbag b a then Value.equal a b else true);
    t "∩ is the meet" 300 pair2 (fun (a, b) ->
        Bag.subbag (Bag.inter a b) a && Bag.subbag (Bag.inter a b) b);
    t "∪max is the join" 300 pair2 (fun (a, b) ->
        Bag.subbag a (Bag.union_max a b) && Bag.subbag b (Bag.union_max a b));
    t "scale(k) multiplies cardinality" 200 arb (fun a ->
        B.equal
          (Value.cardinal (Bag.scale (B.of_int 3) a))
          (B.mul (B.of_int 3) (Value.cardinal a)));
  ]

let laws_nested =
  [
    t "δ is additive: δ(x ∪+ y) = δx ∪+ δy" 200
      (QCheck.pair arb_nested arb_nested)
      (fun (a, b) ->
        Value.equal
          (Bag.destroy (Bag.union_add a b))
          (Bag.union_add (Bag.destroy a) (Bag.destroy b)));
    t "every member of P(b) is a subbag" 100 arb (fun a ->
        QCheck.assume (Value.support_size a <= 4);
        List.for_all (fun (s, _) -> Bag.subbag s a) (Value.as_bag (Bag.powerset a)));
    t "P(b) has card prod(m_i+1)" 100 arb (fun a ->
        QCheck.assume (Value.support_size a <= 4);
        let expected =
          List.fold_left
            (fun acc (_, c) -> B.mul acc (B.succ c))
            B.one (Value.as_bag a)
        in
        B.equal (Value.cardinal (Bag.powerset a)) expected);
    t "card Pb(b) = 2^card b" 100 arb (fun a ->
        QCheck.assume (Value.support_size a <= 4);
        match B.to_int_opt (Value.cardinal a) with
        | Some n when n <= 16 ->
            B.equal (Value.cardinal (Bag.powerbag a)) (B.pow2 n)
        | _ -> true);
    t "P(b) refines Pb(b): same support" 100 arb (fun a ->
        QCheck.assume (Value.support_size a <= 4);
        Value.equal (Bag.dedup (Bag.powerbag a)) (Bag.powerset a));
    t "nest then unnest is the identity" 200 arb (fun a ->
        QCheck.assume (not (Value.is_empty_bag a));
        Value.equal (Bag.unnest 2 (Bag.nest [ 1 ] a)) a);
  ]

let () =
  Alcotest.run "laws"
    [
      ("binary operators (§3)", laws_binary);
      ("product", laws_product);
      ("structure", laws_structure);
      ("nested operators", laws_nested);
    ]
