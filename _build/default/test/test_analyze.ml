(* Tests for the static complexity analyzer (power nesting, classification
   per Thm 4.4 / 5.1 / 6.2, Prop 6.4, Thm 6.6). *)

open Balg

let env1 = Typecheck.env_of_list [ ("R", Ty.relation 1); ("G", Ty.relation 2) ]

let cclass = Alcotest.testable Analyze.pp_cclass (fun a b -> a = b)

let test_power_nesting () =
  Alcotest.(check int) "no powerset" 0
    (Analyze.power_nesting (Derived.selfjoin (Expr.Var "G")));
  Alcotest.(check int) "single" 1
    (Analyze.power_nesting (Expr.Powerset (Expr.Var "R")));
  Alcotest.(check int) "nested" 2
    (Analyze.power_nesting (Expr.Powerset (Expr.Destroy (Expr.Powerset (Expr.Var "R")))));
  (* parallel powersets on different branches do not nest *)
  Alcotest.(check int) "parallel branches" 1
    (Analyze.power_nesting
       Expr.(Destroy (Powerset (Var "R")) ++ Destroy (Powerset (Var "R"))));
  Alcotest.(check int) "powerbag counts too" 2
    (Analyze.power_nesting (Expr.Powerbag (Expr.Destroy (Expr.Powerset (Expr.Var "R")))))

let classify e = (Analyze.analyze env1 e).Analyze.cclass

let test_classification () =
  Alcotest.check cclass "flat query is LOGSPACE" Analyze.Logspace
    (classify (Derived.selfjoin (Expr.Var "G")));
  Alcotest.check cclass "Example 4.1 is LOGSPACE" Analyze.Logspace
    (classify (Derived.indeg_gt_outdeg (Expr.Var "G") (Expr.atom "a")));
  Alcotest.check cclass "one powerset level is PSPACE" Analyze.Pspace
    (classify (Expr.Destroy (Expr.Powerset (Expr.Var "R"))));
  Alcotest.check cclass "diff-via-powerset is PSPACE" Analyze.Pspace
    (classify (Derived.diff_via_powerset (Expr.Var "R") (Expr.Var "R")));
  Alcotest.check cclass "TC via bfix" Analyze.Ptime_bounded_fix
    (classify (Derived.transitive_closure (Expr.Var "G")));
  Alcotest.check cclass "IFP is Turing-complete territory" Analyze.Turing_complete
    (classify (Expr.Fix ("X", Expr.Var "X", Expr.Var "G")))

let test_hyper_classification () =
  (* nesting 3: P applied to a bag of bags *)
  let pp3 = Expr.Powerset (Expr.Powerset (Expr.Var "R")) in
  let r3 = Analyze.analyze env1 pp3 in
  Alcotest.(check int) "bag nesting 3" 3 r3.Analyze.bag_nesting;
  Alcotest.(check int) "power nesting 2" 2 r3.Analyze.power_nesting;
  Alcotest.check cclass "hyper(1)-SPACE" (Analyze.Hyper_space 1) r3.Analyze.cclass;
  (* ddPP twice: power nesting 4 -> hyper(2) *)
  let ddpp e = Expr.Destroy (Expr.Destroy (Expr.Powerset (Expr.Powerset e))) in
  let e4 = ddpp (ddpp (Expr.Var "R")) in
  Alcotest.check cclass "hyper(2)-SPACE" (Analyze.Hyper_space 2) (classify e4);
  (* powerbag at nesting 2 escapes PSPACE *)
  let pb = Expr.Destroy (Expr.Powerbag (Expr.Var "R")) in
  Alcotest.check cclass "Pb at nesting 2" (Analyze.Hyper_space 0) (classify pb)

let test_flags_census () =
  let e = Expr.Destroy (Expr.Powerbag (Expr.Var "R")) in
  let r = Analyze.analyze env1 e in
  Alcotest.(check bool) "powerbag flag" true r.Analyze.powerbag;
  Alcotest.(check bool) "no fix" false r.Analyze.fix;
  Alcotest.(check (list (pair string int))) "census"
    [ ("destroy", 1); ("powerbag", 1); ("var", 1) ]
    r.Analyze.census;
  (* report renders *)
  Alcotest.(check bool) "report mentions class" true
    (String.length (Analyze.report_to_string r) > 0)

let () =
  Alcotest.run "analyze"
    [
      ( "analysis",
        [
          Alcotest.test_case "power nesting" `Quick test_power_nesting;
          Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "hyper hierarchy" `Quick test_hyper_classification;
          Alcotest.test_case "flags and census" `Quick test_flags_census;
        ] );
    ]
