(* Tests for the generic multiset functor. *)

module MS = Mset.Multiset.Make (Int)
module B = Bignat

let nat = Alcotest.testable B.pp B.equal

let ms_of l = MS.of_list l

let test_basics () =
  Alcotest.(check bool) "empty" true (MS.is_empty MS.empty);
  let b = ms_of [ 1; 2; 2; 3 ] in
  Alcotest.(check bool) "nonempty" false (MS.is_empty b);
  Alcotest.check nat "count 2" (B.of_int 2) (MS.count 2 b);
  Alcotest.check nat "count absent" B.zero (MS.count 9 b);
  Alcotest.(check bool) "mem" true (MS.mem 3 b);
  Alcotest.(check bool) "not mem" false (MS.mem 9 b);
  Alcotest.(check (list int)) "support" [ 1; 2; 3 ] (MS.support b);
  Alcotest.(check int) "support size" 3 (MS.support_size b);
  Alcotest.check nat "cardinal" (B.of_int 4) (MS.cardinal b)

let test_add_zero () =
  let b = MS.add ~count:B.zero 5 MS.empty in
  Alcotest.(check bool) "adding zero count is identity" true (MS.is_empty b)

let test_ops () =
  let a = ms_of [ 1; 1; 2 ] and b = ms_of [ 1; 2; 2; 3 ] in
  Alcotest.(check bool) "union_add" true
    (MS.equal (MS.union_add a b) (ms_of [ 1; 1; 1; 2; 2; 2; 3 ]));
  Alcotest.(check bool) "union_max" true
    (MS.equal (MS.union_max a b) (ms_of [ 1; 1; 2; 2; 3 ]));
  Alcotest.(check bool) "inter" true (MS.equal (MS.inter a b) (ms_of [ 1; 2 ]));
  Alcotest.(check bool) "diff" true (MS.equal (MS.diff a b) (ms_of [ 1 ]));
  Alcotest.(check bool) "diff other way" true
    (MS.equal (MS.diff b a) (ms_of [ 2; 3 ]));
  Alcotest.(check bool) "dedup" true (MS.equal (MS.dedup a) (ms_of [ 1; 2 ]))

let test_subbag () =
  let a = ms_of [ 1; 1 ] and b = ms_of [ 1; 1; 2 ] in
  Alcotest.(check bool) "subbag" true (MS.subbag a b);
  Alcotest.(check bool) "not subbag" false (MS.subbag b a);
  Alcotest.(check bool) "empty subbag" true (MS.subbag MS.empty a)

let test_map_filter () =
  let a = ms_of [ 1; 2; 3; 4 ] in
  (* map coalesces additively *)
  let halved = MS.map (fun x -> x / 2) a in
  Alcotest.check nat "1/2 and 2/2 hit 0 and 1" (B.of_int 1) (MS.count 0 halved);
  Alcotest.check nat "coalesce" (B.of_int 2) (MS.count 1 halved);
  let evens = MS.filter (fun x -> x mod 2 = 0) a in
  Alcotest.(check (list int)) "filter" [ 2; 4 ] (MS.support evens)

let test_extensions () =
  let b = ms_of [ 1; 1; 2; 3 ] in
  Alcotest.(check bool) "for_all" true (MS.for_all (fun _ c -> B.compare c B.zero > 0) b);
  Alcotest.(check bool) "exists" true (MS.exists (fun x _ -> x = 3) b);
  let evens, odds = MS.partition (fun x -> x mod 2 = 0) b in
  Alcotest.(check (list int)) "partition evens" [ 2 ] (MS.support evens);
  Alcotest.(check (list int)) "partition odds" [ 1; 3 ] (MS.support odds);
  Alcotest.check nat "scale" (B.of_int 8) (MS.cardinal (MS.scale (B.of_int 2) b));
  Alcotest.(check bool) "scale by zero" true (MS.is_empty (MS.scale B.zero b));
  let b' = MS.remove 1 b in
  Alcotest.check nat "remove one occurrence" B.one (MS.count 1 b');
  Alcotest.(check bool) "remove all" false (MS.mem 1 (MS.remove ~count:(B.of_int 5) 1 b));
  (match MS.choose_opt b with
  | Some (1, c) -> Alcotest.check nat "choose smallest" (B.of_int 2) c
  | _ -> Alcotest.fail "expected smallest element 1");
  Alcotest.(check (option (pair int (testable B.pp B.equal)))) "choose empty" None
    (MS.choose_opt MS.empty)

let gen_mset =
  QCheck.Gen.(map ms_of (list_size (int_bound 12) (int_bound 5)))

let arb_mset =
  QCheck.make
    ~print:(fun b ->
      String.concat ","
        (List.map
           (fun (x, c) -> Printf.sprintf "%d:%s" x (B.to_string c))
           (MS.to_list b)))
    gen_mset

let prop_lattice =
  QCheck.Test.make ~name:"inter/union_max form a lattice" ~count:300
    QCheck.(pair arb_mset arb_mset)
    (fun (a, b) ->
      MS.subbag (MS.inter a b) a
      && MS.subbag (MS.inter a b) b
      && MS.subbag a (MS.union_max a b)
      && MS.subbag b (MS.union_max a b))

let prop_inclusion_exclusion =
  QCheck.Test.make ~name:"inter + union_max counts = add counts" ~count:300
    QCheck.(pair arb_mset arb_mset)
    (fun (a, b) ->
      MS.equal
        (MS.union_add (MS.inter a b) (MS.union_max a b))
        (MS.union_add a b))

let prop_diff_galois =
  QCheck.Test.make ~name:"diff then add recovers union_max" ~count:300
    QCheck.(pair arb_mset arb_mset)
    (fun (a, b) -> MS.equal (MS.union_add (MS.diff a b) (MS.inter a b)) a)

let props = List.map QCheck_alcotest.to_alcotest
  [ prop_lattice; prop_inclusion_exclusion; prop_diff_galois ]

let () =
  Alcotest.run "mset"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "add zero" `Quick test_add_zero;
          Alcotest.test_case "binary ops" `Quick test_ops;
          Alcotest.test_case "subbag" `Quick test_subbag;
          Alcotest.test_case "map/filter" `Quick test_map_filter;
          Alcotest.test_case "extensions" `Quick test_extensions;
        ] );
      ("properties", props);
    ]
