(* Tests for the Lemma 5.4 construction and the pebble game engines. *)

open Balg
module C = Pebble.Construction
module G = Pebble.Game

let test_in_out_construction () =
  List.iter
    (fun n ->
      let inn, out = C.in_out n in
      Alcotest.(check int)
        (Printf.sprintf "|In_%d| = 2^(n/2-1)" n)
        (1 lsl ((n / 2) - 1))
        (List.length inn);
      Alcotest.(check int) "families have equal size" (List.length inn)
        (List.length out);
      (* all members have cardinality n/2 *)
      List.iter
        (fun s -> Alcotest.(check int) "half-size subset" (n / 2) (C.set_cardinal s))
        (inn @ out);
      (* disjoint families, no duplicates *)
      let all = List.sort_uniq compare (inn @ out) in
      Alcotest.(check int) "disjoint and duplicate-free"
        (List.length inn + List.length out)
        (List.length all))
    [ 4; 6; 8; 10 ]

let test_property_one () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "Property (1) at n=%d" n)
        true (C.property_one n))
    [ 4; 6; 8; 10; 12 ]

let test_graph_degrees () =
  let g = C.g_balanced 6 and g' = C.g_flipped 6 in
  Alcotest.(check int) "G: indeg alpha = |In|" 4 (C.in_degree g g.C.alpha);
  Alcotest.(check int) "G: outdeg alpha = |Out|" 4 (C.out_degree g g.C.alpha);
  Alcotest.(check int) "G': indeg alpha grows" 5 (C.in_degree g' g'.C.alpha);
  Alcotest.(check int) "G': outdeg alpha shrinks" 3 (C.out_degree g' g'.C.alpha);
  Alcotest.(check int) "same node count" (List.length (C.nodes g))
    (List.length (C.nodes g'))

(* Theorem 5.2: the BALG^2 query distinguishes G from G'. *)
let test_phi_distinguishes () =
  List.iter
    (fun n ->
      let g = C.g_balanced n and g' = C.g_flipped n in
      let run graph =
        let env = Eval.env_of_list [ ("G", C.edges_value graph) ] in
        Eval.truthy (Eval.eval env (C.phi_query graph))
      in
      (* also check the query typechecks at bag nesting 2 *)
      let tenv = Typecheck.env_of_list [ ("G", C.edge_ty) ] in
      Alcotest.(check int)
        (Printf.sprintf "nesting 2 at n=%d" n)
        2
        (Typecheck.max_nesting tenv (C.phi_query g));
      Alcotest.(check bool) "balanced: false" false (run g);
      Alcotest.(check bool) "flipped: true" true (run g'))
    [ 4; 6 ]

(* The permutation machinery. *)
let test_perms () =
  let perms = G.all_perms 3 in
  Alcotest.(check int) "3! permutations" 6 (List.length perms);
  let pi = [| 2; 3; 1 |] in
  Alcotest.(check int) "mask image" 0b110 (G.apply_mask pi 0b011);
  let inv = G.invert pi in
  Alcotest.(check int) "inverse" 0b011 (G.apply_mask inv 0b110)

let test_partial_iso () =
  let g = C.g_balanced 4 and g' = C.g_flipped 4 in
  (* picking alpha in both: fine *)
  let p0 = [ (G.OSet g.C.alpha, G.OSet g'.C.alpha) ] in
  Alcotest.(check bool) "alpha-alpha ok" true (G.partial_iso g g' p0);
  (* flipped edge witnessed: alpha plus the flipped out-node *)
  let o = List.hd g.C.out_nodes in
  let bad = (G.OSet o, G.OSet o) :: p0 in
  Alcotest.(check bool) "edge direction mismatch detected" false
    (G.partial_iso g g' bad);
  (* kind mismatch *)
  Alcotest.(check bool) "atom vs set rejected" false
    (G.partial_iso g g' [ (G.OAtom 1, G.OSet 0b0011) ])

(* Ground truth on small instances: the duplicator wins the 1-move game on
   G_4 vs G'_4 (n = 4 > 2^1). *)
let test_exhaustive_k1 () =
  let g = C.g_balanced 4 and g' = C.g_flipped 4 in
  Alcotest.(check bool) "duplicator wins k=1, n=4" true
    (G.duplicator_wins_exhaustive ~k:1 g g')

(* A trivially distinguishable pair: G_4 against itself with all edges
   removed; two moves let the spoiler exhibit an edge. *)
let test_exhaustive_spoiler_wins () =
  let g = C.g_balanced 4 in
  let empty = { g with C.edges = [] } in
  Alcotest.(check bool) "spoiler wins against edgeless twin" false
    (G.duplicator_wins_exhaustive ~k:2 g empty);
  Alcotest.(check bool) "structure vs itself: duplicator wins" true
    (G.duplicator_wins_exhaustive ~k:2 g g)

(* The proof's strategy agrees with the exhaustive engine where both run. *)
let test_strategy_matches_exhaustive () =
  let g = C.g_balanced 4 and g' = C.g_flipped 4 in
  Alcotest.(check bool) "strategy wins k=1, n=4" true
    (G.duplicator_strategy_wins ~k:1 g g')

(* Lemma 5.4's quantitative content: duplicator survives k moves when
   n > 2^k.  (k=2, n=6 is the slow case; keep it quick enough.) *)
let test_strategy_k2_n6 () =
  let g = C.g_balanced 6 and g' = C.g_flipped 6 in
  Alcotest.(check bool) "strategy wins k=2, n=6" true
    (G.duplicator_strategy_wins ~k:2 g g')

let test_figure_renders () =
  let g = C.g_balanced 6 in
  let s = Format.asprintf "%a" C.render_figure g in
  Alcotest.(check bool) "mentions alpha" true
    (String.length s > 0
    && String.length (List.nth (String.split_on_char '\n' s) 0) > 0)

let () =
  Alcotest.run "pebble"
    [
      ( "construction",
        [
          Alcotest.test_case "In/Out families" `Quick test_in_out_construction;
          Alcotest.test_case "Property (1)" `Quick test_property_one;
          Alcotest.test_case "degrees" `Quick test_graph_degrees;
          Alcotest.test_case "query distinguishes (Thm 5.2)" `Quick
            test_phi_distinguishes;
          Alcotest.test_case "Fig. 1 renders" `Quick test_figure_renders;
        ] );
      ( "game",
        [
          Alcotest.test_case "permutations" `Quick test_perms;
          Alcotest.test_case "partial isomorphism" `Quick test_partial_iso;
          Alcotest.test_case "exhaustive k=1" `Quick test_exhaustive_k1;
          Alcotest.test_case "spoiler wins when distinguishable" `Quick
            test_exhaustive_spoiler_wins;
          Alcotest.test_case "strategy matches exhaustive" `Quick
            test_strategy_matches_exhaustive;
          Alcotest.test_case "strategy k=2 n=6 (Lemma 5.4)" `Slow
            test_strategy_k2_n6;
        ] );
    ]
