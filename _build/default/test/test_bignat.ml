(* Unit and property tests for the Bignat substrate. *)

module B = Bignat

let nat = Alcotest.testable B.pp B.equal

let check_nat = Alcotest.check nat
let bi = B.of_int

(* --- unit tests ------------------------------------------------------- *)

let test_constants () =
  check_nat "zero" (bi 0) B.zero;
  check_nat "one" (bi 1) B.one;
  check_nat "two" (bi 2) B.two;
  Alcotest.(check bool) "is_zero" true (B.is_zero B.zero);
  Alcotest.(check bool) "is_one" true (B.is_one B.one);
  Alcotest.(check bool) "one not zero" false (B.is_zero B.one)

let test_of_to_string () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    [ "0"; "1"; "999999999"; "1000000000"; "123456789012345678901234567890" ];
  Alcotest.(check string) "underscores" "1234567"
    (B.to_string (B.of_string "1_234_567"));
  Alcotest.(check string) "plus sign" "42" (B.to_string (B.of_string "+42"));
  Alcotest.check_raises "empty" (Invalid_argument "Bignat.of_string: empty")
    (fun () -> ignore (B.of_string ""));
  Alcotest.check_raises "garbage"
    (Invalid_argument "Bignat.of_string: not a digit") (fun () ->
      ignore (B.of_string "12x"))

let test_of_int_bounds () =
  Alcotest.check_raises "negative" (Invalid_argument "Bignat.of_int: negative")
    (fun () -> ignore (bi (-1)));
  check_nat "max-ish"
    (B.of_string (string_of_int max_int))
    (bi max_int)

let test_add_carry () =
  check_nat "carry across limb"
    (B.of_string "1000000000")
    (B.add (bi 999_999_999) B.one);
  check_nat "big add"
    (B.of_string "2000000000000000000000")
    (B.add (B.of_string "1999999999999999999999") B.one)

let test_sub () =
  check_nat "exact" (bi 5) (B.sub_exn (bi 12) (bi 7));
  check_nat "monus floor" B.zero (B.monus (bi 7) (bi 12));
  check_nat "monus exact" (bi 5) (B.monus (bi 12) (bi 7));
  Alcotest.check_raises "underflow"
    (Invalid_argument "Bignat.sub_exn: negative result") (fun () ->
      ignore (B.sub_exn (bi 7) (bi 12)));
  check_nat "borrow chain" (bi 1)
    (B.sub_exn (B.of_string "1000000000000000000") (B.of_string "999999999999999999"))

let test_mul () =
  check_nat "zero" B.zero (B.mul (bi 12345) B.zero);
  check_nat "identity" (bi 12345) (B.mul (bi 12345) B.one);
  check_nat "big square"
    (B.of_string "15241578750190521")
    (B.mul (bi 123456789) (bi 123456789));
  check_nat "cross-limb"
    (B.of_string "999999998000000001")
    (B.mul (bi 999999999) (bi 999999999))

let test_divmod () =
  let q, r = B.divmod (bi 17) (bi 5) in
  check_nat "q" (bi 3) q;
  check_nat "r" (bi 2) r;
  let q, r = B.divmod (B.of_string "123456789012345678901234567890") (bi 997) in
  check_nat "big q" (B.of_string "123828273833847220562923337") q;
  check_nat "big r" (bi 901) r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod (bi 1) B.zero));
  let q, r = B.divmod (bi 3) (bi 10) in
  check_nat "small / large q" B.zero q;
  check_nat "small / large r" (bi 3) r

let test_pow () =
  check_nat "2^10" (bi 1024) (B.pow B.two 10);
  check_nat "2^0" B.one (B.pow B.two 0);
  check_nat "pow2" (B.of_string "1267650600228229401496703205376") (B.pow2 100);
  check_nat "10^30"
    (B.of_string "1000000000000000000000000000000")
    (B.pow (bi 10) 30)

let test_hyper () =
  check_nat "hyper 0" (bi 7) (B.hyper 0 7);
  check_nat "hyper 1" (bi 128) (B.hyper 1 7);
  check_nat "hyper 2 of 2" (bi 16) (B.hyper 2 2);
  check_nat "hyper 3 of 1" (bi 16) (B.hyper 3 1);
  check_nat "hyper 2 of 3" (bi 256) (B.hyper 2 3)

let test_binomial () =
  check_nat "C(5,2)" (bi 10) (B.binomial 5 2);
  check_nat "C(n,0)" B.one (B.binomial 9 0);
  check_nat "C(n,n)" B.one (B.binomial 9 9);
  check_nat "out of range" B.zero (B.binomial 5 7);
  check_nat "negative k" B.zero (B.binomial 5 (-1));
  check_nat "C(50,25)" (B.of_string "126410606437752") (B.binomial 50 25)

let test_parity () =
  Alcotest.(check bool) "0 even" true (B.is_even B.zero);
  Alcotest.(check bool) "1 odd" false (B.is_even B.one);
  Alcotest.(check bool) "10^9 even" true (B.is_even (bi 1_000_000_000));
  Alcotest.(check bool) "10^9+1 odd" false (B.is_even (bi 1_000_000_001))

let test_to_int () =
  Alcotest.(check (option int)) "roundtrip" (Some 123456) (B.to_int_opt (bi 123456));
  Alcotest.(check (option int)) "overflow" None (B.to_int_opt (B.pow2 80));
  Alcotest.(check int) "exn ok" 7 (B.to_int_exn (bi 7))

let test_gcd_lcm_factorial () =
  check_nat "gcd" (bi 6) (B.gcd (bi 54) (bi 24));
  check_nat "gcd with zero" (bi 7) (B.gcd B.zero (bi 7));
  check_nat "gcd coprime" B.one (B.gcd (bi 35) (bi 64));
  check_nat "big gcd"
    (bi 9)
    (B.gcd (B.of_string "123456789000000009") (bi 9));
  check_nat "lcm" (bi 36) (B.lcm (bi 12) (bi 18));
  check_nat "lcm with zero" B.zero (B.lcm B.zero (bi 5));
  check_nat "0!" B.one (B.factorial 0);
  check_nat "5!" (bi 120) (B.factorial 5);
  check_nat "20!" (B.of_string "2432902008176640000") (B.factorial 20);
  Alcotest.check_raises "negative factorial"
    (Invalid_argument "Bignat.factorial: negative") (fun () ->
      ignore (B.factorial (-1)))

let test_misc () =
  Alcotest.(check int) "digits 0" 1 (B.digits B.zero);
  Alcotest.(check int) "digits" 4 (B.digits (bi 1234));
  check_nat "min" (bi 3) (B.min (bi 3) (bi 8));
  check_nat "max" (bi 8) (B.max (bi 3) (bi 8));
  check_nat "sum" (bi 6) (B.sum [ bi 1; bi 2; bi 3 ]);
  Alcotest.(check bool) "to_float" true (abs_float (B.to_float (bi 1000) -. 1000.) < 0.5)

(* --- properties ------------------------------------------------------- *)

let gen_small = QCheck.Gen.int_bound 1_000_000

(* Random numbers spanning several limbs. *)
let gen_big =
  QCheck.Gen.(
    map3
      (fun a b c ->
        B.add
          (B.mul (B.add (B.mul (B.of_int a) (B.pow2 62)) (B.of_int b)) (B.pow2 62))
          (B.of_int c))
      (int_bound max_int) (int_bound max_int) (int_bound max_int))

let arb_big = QCheck.make ~print:B.to_string gen_big

let prop_add_matches_int =
  QCheck.Test.make ~name:"add matches int semantics" ~count:500
    QCheck.(pair (make gen_small) (make gen_small))
    (fun (a, b) -> B.equal (B.add (bi a) (bi b)) (bi (a + b)))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"mul matches int semantics" ~count:500
    QCheck.(pair (make gen_small) (make gen_small))
    (fun (a, b) -> B.equal (B.mul (bi a) (bi b)) (bi (a * b)))

let prop_monus_matches_int =
  QCheck.Test.make ~name:"monus matches int semantics" ~count:500
    QCheck.(pair (make gen_small) (make gen_small))
    (fun (a, b) -> B.equal (B.monus (bi a) (bi b)) (bi (max 0 (a - b))))

let prop_divmod_invariant =
  QCheck.Test.make ~name:"divmod: a = q*b + r with r < b" ~count:200
    QCheck.(pair arb_big arb_big)
    (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r) && B.compare r b < 0)

let prop_add_comm_assoc =
  QCheck.Test.make ~name:"add is commutative and associative" ~count:200
    QCheck.(triple arb_big arb_big arb_big)
    (fun (a, b, c) ->
      B.equal (B.add a b) (B.add b a)
      && B.equal (B.add a (B.add b c)) (B.add (B.add a b) c))

let prop_mul_distributes =
  QCheck.Test.make ~name:"mul distributes over add" ~count:200
    QCheck.(triple arb_big arb_big arb_big)
    (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"to_string / of_string roundtrip" ~count:200 arb_big
    (fun a -> B.equal a (B.of_string (B.to_string a)))

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare consistent with subtraction" ~count:200
    QCheck.(pair arb_big arb_big)
    (fun (a, b) ->
      match B.compare a b with
      | 0 -> B.equal a b
      | c when c < 0 -> B.is_zero (B.monus a b) && not (B.is_zero (B.monus b a))
      | _ -> B.is_zero (B.monus b a) && not (B.is_zero (B.monus a b)))

let prop_pascal =
  QCheck.Test.make ~name:"binomial satisfies Pascal's rule" ~count:200
    QCheck.(pair (int_range 1 60) (int_range 0 60))
    (fun (n, k) ->
      QCheck.assume (k <= n);
      B.equal (B.binomial n k)
        (B.add (B.binomial (n - 1) k) (B.binomial (n - 1) (k - 1))))

let prop_gcd =
  QCheck.Test.make ~name:"gcd divides both and is maximal-ish" ~count:200
    QCheck.(pair (make gen_small) (make gen_small))
    (fun (a, b) ->
      QCheck.assume (a > 0 && b > 0);
      let g = B.gcd (bi a) (bi b) in
      B.is_zero (B.rem (bi a) g) && B.is_zero (B.rem (bi b) g)
      && B.equal (B.mul g (B.lcm (bi a) (bi b))) (B.mul (bi a) (bi b)))

let props = List.map QCheck_alcotest.to_alcotest
  [
    prop_gcd;
    prop_add_matches_int;
    prop_mul_matches_int;
    prop_monus_matches_int;
    prop_divmod_invariant;
    prop_add_comm_assoc;
    prop_mul_distributes;
    prop_string_roundtrip;
    prop_compare_total_order;
    prop_pascal;
  ]

let () =
  Alcotest.run "bignat"
    [
      ( "unit",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "of/to string" `Quick test_of_to_string;
          Alcotest.test_case "of_int bounds" `Quick test_of_int_bounds;
          Alcotest.test_case "add carries" `Quick test_add_carry;
          Alcotest.test_case "sub and monus" `Quick test_sub;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "hyper" `Quick test_hyper;
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "to_int" `Quick test_to_int;
          Alcotest.test_case "gcd/lcm/factorial" `Quick test_gcd_lcm_factorial;
          Alcotest.test_case "misc" `Quick test_misc;
        ] );
      ("properties", props);
    ]
