(** Typing of algebra expressions, and the BALG{^k} nesting measure.

    The paper assumes polymorphic typing with input restrictions that keep
    output bags homogeneous (§3); {!infer} makes those restrictions explicit
    and {!max_nesting} computes the [k] of the smallest BALG{^k} the
    expression lives in. *)

exception Type_error of string

module Env : Map.S with type key = string

type env = Ty.t Env.t

val env_of_list : (string * Ty.t) list -> env

val infer : env -> Expr.t -> Ty.t
(** @raise Type_error with a descriptive message. *)

val infer_all : env -> Expr.t -> Ty.t * Ty.t list
(** Result type together with the types of all subexpressions (used for
    nesting analysis). *)

val max_nesting : env -> Expr.t -> int
(** Maximal bag nesting over every intermediate type. *)

val check_nesting : int -> env -> Expr.t -> unit
(** Enforce the BALG{^k} restriction.  @raise Type_error on violation. *)

val well_typed : env -> Expr.t -> bool
