lib/core/explain.mli: Bignat Eval Expr Format Value
