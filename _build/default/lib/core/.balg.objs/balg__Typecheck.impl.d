lib/core/typecheck.ml: Expr Format List Map String Ty Value
