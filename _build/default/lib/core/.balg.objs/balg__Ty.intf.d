lib/core/ty.mli: Format
