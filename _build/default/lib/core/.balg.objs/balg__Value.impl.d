lib/core/value.ml: Bignat Format List Option Set String Ty
