lib/core/bag.mli: Bignat Value
