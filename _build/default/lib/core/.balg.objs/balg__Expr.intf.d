lib/core/expr.mli: Format Set Ty Value
