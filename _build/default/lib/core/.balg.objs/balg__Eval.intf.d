lib/core/eval.mli: Bignat Expr Map Value
