lib/core/expr.ml: Format List Printf Set String Ty Value
