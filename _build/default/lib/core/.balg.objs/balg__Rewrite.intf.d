lib/core/rewrite.mli: Expr Typecheck
