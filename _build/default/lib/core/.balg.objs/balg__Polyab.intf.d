lib/core/polyab.mli: Bignat Expr Poly Value
