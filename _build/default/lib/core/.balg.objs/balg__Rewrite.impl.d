lib/core/rewrite.ml: Expr List Stdlib String Ty Typecheck Value
