lib/core/ty.ml: Format List
