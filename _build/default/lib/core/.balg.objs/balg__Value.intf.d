lib/core/value.mli: Bignat Format Ty
