lib/core/analyze.ml: Expr Format Hashtbl List Option Printf String Typecheck
