lib/core/typecheck.mli: Expr Map Ty
