lib/core/poly.ml: Array Bigint Bignat Format
