lib/core/poly.mli: Bigint Bignat Format
