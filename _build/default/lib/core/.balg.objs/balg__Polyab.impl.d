lib/core/polyab.ml: Bigint Bignat Eval Expr Format List Option Poly String Value
