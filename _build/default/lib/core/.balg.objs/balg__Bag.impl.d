lib/core/bag.ml: Bignat Hashtbl List Printf Value
