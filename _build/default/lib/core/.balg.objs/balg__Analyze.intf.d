lib/core/analyze.mli: Expr Format Typecheck
