lib/core/derived.ml: Bignat Expr List Option Ty Value
