lib/core/eval.ml: Bag Bignat Expr Format List Map Printf String Value
