lib/core/explain.ml: Bag Bignat Eval Expr Format List Option Printf String Value
