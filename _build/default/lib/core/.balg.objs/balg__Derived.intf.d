lib/core/derived.mli: Expr Ty Value
