(** Types of complex objects (§2).

    Types are built from the atomic type [U] with the tuple and bag
    constructors.  The {e bag nesting} of a type — the maximal number of bag
    nodes on a path from the root to a leaf — is the parameter defining the
    restricted algebras BALG{^ k} studied in §4–6. *)

type t =
  | Atom  (** the atomic type [U] *)
  | Tuple of t list  (** tuple type [<T1, ..., Tk>] *)
  | Bag of t  (** bag type [{{T}}] *)

val equal : t -> t -> bool
val compare : t -> t -> int

val bag_nesting : t -> int
(** Maximal number of bag constructors on a root-to-leaf path. *)

val is_unnested : t -> bool
(** The BALG{^1} types: [U{^k}] and [{{U{^k}}}] (§4). *)

(** {1 Common shapes} *)

val atom : t
val tuple : t list -> t
val bag : t -> t

val nat : t
(** The integer-as-bag type [{{<U>}}] (§3). *)

val relation : int -> t
(** [relation k] is the flat relation type [{{<U, ..., U>}}] of arity [k]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
