(** Types of complex objects (§2 of the paper).

    Types are built from the atomic type [U] with the tuple and bag
    constructors.  The {e bag nesting} of a type is the maximal number of bag
    nodes on a path from the root to a leaf; it is the parameter that defines
    the restricted algebras [BALG]{^ k}. *)

type t =
  | Atom  (** the atomic type [U] *)
  | Tuple of t list  (** tuple type [T1, ..., Tk] *)
  | Bag of t  (** bag type [{{T}}] *)

let rec equal a b =
  match (a, b) with
  | Atom, Atom -> true
  | Tuple ts, Tuple us ->
      List.length ts = List.length us && List.for_all2 equal ts us
  | Bag t, Bag u -> equal t u
  | (Atom | Tuple _ | Bag _), _ -> false

let rec compare a b =
  match (a, b) with
  | Atom, Atom -> 0
  | Atom, (Tuple _ | Bag _) -> -1
  | Tuple _, Atom -> 1
  | Tuple ts, Tuple us -> List.compare compare ts us
  | Tuple _, Bag _ -> -1
  | Bag t, Bag u -> compare t u
  | Bag _, (Atom | Tuple _) -> 1

(** Maximal number of bag constructors on a root-to-leaf path. *)
let rec bag_nesting = function
  | Atom -> 0
  | Tuple ts -> List.fold_left (fun acc t -> max acc (bag_nesting t)) 0 ts
  | Bag t -> 1 + bag_nesting t

(** [BALG]{^ 1} types: [U]{^ k} and [{{U{^ k}}}] (§4). *)
let is_unnested = function
  | Atom -> true
  | Tuple ts -> List.for_all (fun t -> equal t Atom) ts
  | Bag Atom -> true
  | Bag (Tuple ts) -> List.for_all (fun t -> equal t Atom) ts
  | Bag (Bag _) -> false

(** Standard shapes used throughout the reproduction. *)

let atom = Atom
let tuple ts = Tuple ts
let bag t = Bag t

(** The type of integers-as-bags: [{{<U>}}] (a bag of unary tuples, §3). *)
let nat = Bag (Tuple [ Atom ])

(** Flat relation of arity [k]: [{{<U, ..., U>}}]. *)
let relation k = Bag (Tuple (List.init k (fun _ -> Atom)))

let rec pp ppf = function
  | Atom -> Format.pp_print_string ppf "U"
  | Tuple ts ->
      Format.fprintf ppf "<%a>"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        ts
  | Bag t -> Format.fprintf ppf "{{%a}}" pp t

let to_string t = Format.asprintf "%a" pp t
