(** Derived operators: the paper's worked encodings, as expression
    builders.

    Each function assembles a {!Expr.t}; nothing here extends the algebra —
    these are the constructions the paper gives in prose to demonstrate its
    expressive power. *)

(** {1 Integers as bags (§3)} *)

val nat_ty : Ty.t
(** [{{<U>}}]. *)

val nat_lit : ?on:string -> int -> Expr.t
(** The integer [n] as a bag of [n] copies of [<a>]. *)

val ones : ?on:string -> Expr.t -> Expr.t
(** Cardinality as an integer-bag, for bags of any element type. *)

val count : Expr.t -> Expr.t
(** The paper's [count(B) = π1({{<a>}} × B)] (tuple bags only). *)

val sum : Expr.t -> Expr.t
(** [sum(B) = δ(B)] on a bag of integer-bags. *)

val average : Expr.t -> Expr.t
(** Exact average via powerset candidate selection; the empty bag when the
    division is inexact. *)

val floor_average : Expr.t -> Expr.t
(** Rounds down; total on nonempty and empty inputs. *)

(** {1 The data definition language (§3)} *)

val value_expr : Value.t -> Expr.t
(** An expression denoting the value, built from atom literals with
    tupling, bagging and additive union only (§3's data definition
    language); multiplicities are assembled by doubling.  Empty bags fall
    back to a typed literal. *)

(** {1 Cardinality comparison and quantifiers (§4)} *)

val card_gt_paper : Expr.t -> Expr.t -> Expr.t
(** Example 4.2 verbatim: [π1(R×R) − π1(R×S)], nonempty iff [|R| > |S|]
    (unary inputs). *)

val card_gt : Expr.t -> Expr.t -> Expr.t
(** Any element type; nonempty iff [card r > card s]. *)

val card_neq : Expr.t -> Expr.t -> Expr.t
(** Empty iff equal cardinalities (negated Härtig quantifier). *)

val has_at_least : int -> Expr.t -> Expr.t
(** Counting quantifier [∃≥k].  @raise Invalid_argument if [k <= 0]. *)

val indeg_gt_outdeg : Expr.t -> Expr.t -> Expr.t
(** Example 4.1 verbatim, over a binary edge bag and a node expression. *)

val parity_even : Expr.t -> Expr.t -> Expr.t
(** §4: nonempty iff the unary set [r] has even positive cardinality, given
    the reflexive total order [leq] on its elements as a binary relation. *)

(** {1 Operator inter-definability (§3, Prop 3.1)} *)

val unionadd_via_max : arity:int -> Expr.t -> Expr.t -> Expr.t
val diff_via_powerset : Expr.t -> Expr.t -> Expr.t
val dedup_via_powerset_flat : Expr.t -> Expr.t
val dedup_via_powerset_nested : Expr.t -> Expr.t

(** {1 Exponentiation and quantification domains (§5–6)} *)

val exp2_via_powerset : Expr.t -> Expr.t
(** Cardinality [2{^(n+1)}] — the Thm 6.1 doubling [E(B)]. *)

val exp2_via_powerbag : Expr.t -> Expr.t
(** Exactly [2{^n}] — the Lemma 5.7 powerbag variant. *)

val iter_expr : int -> (Expr.t -> Expr.t) -> Expr.t -> Expr.t

val domain : ?via_powerbag:bool -> int -> Expr.t -> Expr.t
(** [D(B) = P(E{^i}(B))]: the bag of integer-bags [0..E{^i}(card B)]. *)

(** {1 Query builders} *)

val mem_expr : Expr.t -> Expr.t -> Expr.t
(** Nonempty iff the (closed) first argument occurs in the bag. *)

val selfjoin : Expr.t -> Expr.t
(** The §4 example [Q(B) = π{_1,4}(σ{_2=3}(B×B))]. *)

val graph_nodes : Expr.t -> Expr.t
val compose : Expr.t -> Expr.t -> Expr.t

(** {1 Nesting (§7)} *)

val nest_via_map : int list -> arity:int -> Expr.t -> Expr.t
(** The nest operator expressed with MAP/σ/ε only — §7's point that nest is
    weaker than the powerset.  Oracle for {!Expr.Nest}. *)

val group_count : int list -> Expr.t -> Expr.t
(** SQL GROUP-BY/COUNT: each group key paired with its group size as an
    integer-bag. *)

val group_sum : int list -> of_:int -> arity:int -> Expr.t -> Expr.t
(** SQL GROUP-BY/SUM over an integer-bag-valued attribute.
    @raise Invalid_argument if [of_] is a grouping key or out of range. *)

val transitive_closure : Expr.t -> Expr.t
(** Via the bounded fixpoint (§6 end): BALG{^1} + bfix. *)
