(** Complex-object values: atoms, tuples, and bags with {!Bignat.t}
    multiplicities.

    Bags are kept in a canonical form — elements sorted by {!compare},
    strictly positive coalesced counts — so that structural operations on the
    representation implement bag equality and the subbag order directly.  An
    element [o] {e n-belongs} to a bag when its stored count is [n] (§2). *)

type t =
  | Atom of string
  | Tuple of t list
  | Bag of (t * Bignat.t) list
      (** invariant: strictly increasing in {!compare}, counts > 0 *)

let rec compare a b =
  match (a, b) with
  | Atom x, Atom y -> String.compare x y
  | Atom _, (Tuple _ | Bag _) -> -1
  | Tuple _, Atom _ -> 1
  | Tuple xs, Tuple ys -> List.compare compare xs ys
  | Tuple _, Bag _ -> -1
  | Bag xs, Bag ys ->
      List.compare
        (fun (v, c) (w, d) ->
          let cv = compare v w in
          if cv <> 0 then cv else Bignat.compare c d)
        xs ys
  | Bag _, (Atom _ | Tuple _) -> 1

let equal a b = compare a b = 0

(** {1 Constructors} *)

let atom s = Atom s
let tuple vs = Tuple vs

(* Canonicalise an arbitrary association list into a bag: sort, coalesce
   counts additively, drop zeros. *)
let bag_of_assoc (pairs : (t * Bignat.t) list) : t =
  let sorted =
    List.sort (fun (v, _) (w, _) -> compare v w)
      (List.filter (fun (_, c) -> not (Bignat.is_zero c)) pairs)
  in
  let rec coalesce = function
    | [] -> []
    | [ p ] -> [ p ]
    | (v, c) :: (w, d) :: rest when compare v w = 0 ->
        coalesce ((v, Bignat.add c d) :: rest)
    | p :: rest -> p :: coalesce rest
  in
  Bag (coalesce sorted)

let bag_of_list vs = bag_of_assoc (List.map (fun v -> (v, Bignat.one)) vs)
let empty_bag = Bag []

(** The bag [B{^t}{_i}]: exactly [i] occurrences of [t] and nothing else. *)
let replicate count v = if Bignat.is_zero count then Bag [] else Bag [ (v, count) ]

(** Integer-as-bag encoding of §3: [n] occurrences of the unary tuple
    [<a>]. *)
let nat ?(on = "a") n = replicate (Bignat.of_int n) (Tuple [ Atom on ])

(** {1 Accessors} *)

let as_bag = function
  | Bag pairs -> pairs
  | Atom _ | Tuple _ -> invalid_arg "Value.as_bag: not a bag"

let as_tuple = function
  | Tuple vs -> vs
  | Atom _ | Bag _ -> invalid_arg "Value.as_tuple: not a tuple"

let is_bag = function Bag _ -> true | Atom _ | Tuple _ -> false
let is_empty_bag = function Bag [] -> true | _ -> false

(** Multiplicity with which [v] belongs to bag [b] (zero if absent). *)
let count_in v b =
  match List.assoc_opt v (as_bag b) with None -> Bignat.zero | Some c -> c

(** Total number of occurrences — the paper's size of a bag. *)
let cardinal b =
  List.fold_left (fun acc (_, c) -> Bignat.add acc c) Bignat.zero (as_bag b)

let support b = List.map fst (as_bag b)
let support_size b = List.length (as_bag b)

(** {1 Structure measures} *)

let rec bag_nesting = function
  | Atom _ -> 0
  | Tuple vs -> List.fold_left (fun acc v -> max acc (bag_nesting v)) 0 vs
  | Bag pairs ->
      1 + List.fold_left (fun acc (v, _) -> max acc (bag_nesting v)) 0 pairs

(** Size of the standard encoding (§2): duplicates are counted explicitly.
    Returned as a {!Bignat.t} because sizes can themselves explode. *)
let rec encoded_size = function
  | Atom _ -> Bignat.one
  | Tuple vs ->
      List.fold_left (fun acc v -> Bignat.add acc (encoded_size v)) Bignat.one vs
  | Bag pairs ->
      List.fold_left
        (fun acc (v, c) -> Bignat.add acc (Bignat.mul c (encoded_size v)))
        Bignat.one pairs

(** All atomic constants occurring in a value. *)
let atoms v =
  let module S = Set.Make (String) in
  let rec go acc = function
    | Atom s -> S.add s acc
    | Tuple vs -> List.fold_left go acc vs
    | Bag pairs -> List.fold_left (fun acc (v, _) -> go acc v) acc pairs
  in
  S.elements (go S.empty v)

(** {1 Typing} *)

(** [has_type ty v] checks [v] against [ty]; an empty bag inhabits every bag
    type. *)
let rec has_type ty v =
  match (ty, v) with
  | Ty.Atom, Atom _ -> true
  | Ty.Tuple ts, Tuple vs ->
      List.length ts = List.length vs && List.for_all2 has_type ts vs
  | Ty.Bag t, Bag pairs -> List.for_all (fun (v, _) -> has_type t v) pairs
  | (Ty.Atom | Ty.Tuple _ | Ty.Bag _), _ -> false

(** Best-effort type inference.  Returns [None] for heterogeneous bags; an
    empty bag infers as a bag of atoms (the least informative choice —
    prefer {!has_type} when a type is known). *)
let rec infer = function
  | Atom _ -> Some Ty.Atom
  | Tuple vs ->
      let tys = List.map infer vs in
      if List.exists Option.is_none tys then None
      else Some (Ty.Tuple (List.map Option.get tys))
  | Bag [] -> Some (Ty.Bag Ty.Atom)
  | Bag ((v0, _) :: rest) -> (
      match infer v0 with
      | None -> None
      | Some t ->
          if List.for_all (fun (v, _) -> has_type t v) rest then Some (Ty.Bag t)
          else None)

(** {1 Rendering} *)

let rec pp ppf = function
  | Atom s -> Format.fprintf ppf "'%s" s
  | Tuple vs ->
      Format.fprintf ppf "<%a>"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        vs
  | Bag pairs ->
      let pp_pair ppf (v, c) =
        if Bignat.is_one c then pp ppf v
        else Format.fprintf ppf "%a:%a" pp v Bignat.pp c
      in
      Format.fprintf ppf "{{%a}}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_pair)
        pairs

let to_string v = Format.asprintf "%a" pp v

(** Decode an integer-as-bag value back to its count (total cardinality). *)
let nat_value b = cardinal b
