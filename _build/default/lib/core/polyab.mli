(** The polynomial abstract interpreter of Propositions 4.1 and 4.5.

    For every BALG{^1}(+ε) expression over a bag variable [B] and every
    output tuple [t], there are a polynomial [P{_t}] and a threshold
    [N{_t}] such that on the input family [B{_n}] = {{<a>:n}} the
    multiplicity of [t] in the result is exactly [P{_t}(n)] for all
    [n > N{_t}].  This module computes those polynomials by following the
    proof's induction case by case; polynomials are eventually monotone,
    which is the paper's argument that [bag-even], [ε] and [−] are not
    expressible in BALG{^1}. *)

exception Unsupported of string
(** Raised on operators outside the BALG{^1}+ε fragment (powerset, bagging,
    destroy, nest, fixpoints) or on λ bodies that are not object-level. *)

type entries = (Value.t * Poly.t) list
(** tuple ↦ occurrence-count polynomial; zero polynomials are not stored *)

type analysis = { entries : entries; threshold : int }

val input_tuple : Value.t
(** The element of the input family: the unary tuple [<a>]. *)

val analyze : input:Expr.var -> Expr.t -> analysis
(** Interpret [e] abstractly over [B{_n}] named by [input].
    @raise Unsupported outside the fragment. *)

val predicted_count : analysis -> Value.t -> n:int -> Bignat.t
(** Valid for [n > threshold]. *)

val agrees_with_eval : input:Expr.var -> Expr.t -> analysis -> n:int -> bool
(** Compare the full predicted bag against the concrete evaluator on
    [B{_n}]; sound only beyond the threshold. *)

val polynomial_of : analysis -> Value.t -> Poly.t option
