(** Univariate polynomials with arbitrary-precision integer coefficients.

    These are the objects manipulated by the proof of Proposition 4.1: for
    every BALG{^1} expression [e] and output tuple [t] there is a polynomial
    [P{_t}] and a threshold [N{_t}] such that on the input family
    [B{_n} = {{<a>:n}}], the multiplicity of [t] in [e(B{_n})] equals
    [P{_t}(n)] for all [n > N{_t}].  {!Polyab} computes these polynomials;
    this module supplies their arithmetic, evaluation, and the eventual-sign
    analysis (via a Cauchy root bound) that drives the thresholds. *)

type t = Bigint.t array
(** coefficient of [n^i] at index [i]; canonical: no trailing zero
    coefficients, the zero polynomial is [[||]] *)

let normalize (a : Bigint.t array) : t =
  let k = ref (Array.length a) in
  while !k > 0 && Bigint.is_zero a.(!k - 1) do
    decr k
  done;
  if !k = Array.length a then a else Array.sub a 0 !k

let zero : t = [||]
let const c = normalize [| c |]
let one = const Bigint.one
let of_int n = const (Bigint.of_int n)

(** The monomial [n]. *)
let x : t = [| Bigint.zero; Bigint.one |]

let is_zero p = Array.length p = 0
let degree p = Array.length p - 1
let coeff p i = if i < Array.length p then p.(i) else Bigint.zero

let equal p q =
  Array.length p = Array.length q
  && Array.for_all2 (fun a b -> Bigint.equal a b) p q

let map2 f p q =
  let l = max (Array.length p) (Array.length q) in
  normalize (Array.init l (fun i -> f (coeff p i) (coeff q i)))

let add p q = map2 Bigint.add p q
let sub p q = map2 Bigint.sub p q
let neg p = Array.map Bigint.neg p

let mul p q =
  if is_zero p || is_zero q then zero
  else begin
    let r = Array.make (Array.length p + Array.length q - 1) Bigint.zero in
    Array.iteri
      (fun i pi ->
        Array.iteri (fun j qj -> r.(i + j) <- Bigint.add r.(i + j) (Bigint.mul pi qj)) q)
      p;
    normalize r
  end

let scale c p = normalize (Array.map (Bigint.mul c) p)

(** Horner evaluation at a natural argument. *)
let eval p (n : Bignat.t) =
  let nz = Bigint.of_bignat n in
  Array.fold_right (fun c acc -> Bigint.add c (Bigint.mul acc nz)) p Bigint.zero

let eval_int p n = eval p (Bignat.of_int n)

(** Sign of [P(n)] as [n → ∞]: the sign of the leading coefficient (0 for
    the zero polynomial). *)
let limit_sign p =
  if is_zero p then 0 else Bigint.sign p.(Array.length p - 1)

(** A threshold [N] beyond which the sign of [P(n)] equals {!limit_sign}:
    the Cauchy bound [1 + max|a{_i}| / |a{_d}|] dominates every real root.
    Returns 0 for constants. *)
let sign_stable_from p =
  if Array.length p <= 1 then 0
  else begin
    let lead = Bigint.abs p.(Array.length p - 1) in
    let maxc =
      Array.fold_left (fun acc c -> Bignat.max acc (Bigint.abs c)) Bignat.zero
        (Array.sub p 0 (Array.length p - 1))
    in
    let q, r = Bignat.divmod maxc lead in
    let bound = Bignat.add q (if Bignat.is_zero r then Bignat.one else Bignat.two) in
    match Bignat.to_int_opt bound with
    | Some b -> b
    | None -> failwith "Poly.sign_stable_from: bound exceeds int range"
  end

(** Eventual comparison: the sign of [P(n) − Q(n)] for all large [n],
    together with a threshold from which it is valid. *)
let compare_eventually p q =
  let d = sub p q in
  (limit_sign d, sign_stable_from d)

let pp ppf p =
  if is_zero p then Format.pp_print_string ppf "0"
  else begin
    let first = ref true in
    for i = Array.length p - 1 downto 0 do
      let c = p.(i) in
      if not (Bigint.is_zero c) then begin
        if !first then first := false else Format.pp_print_string ppf " + ";
        match i with
        | 0 -> Bigint.pp ppf c
        | 1 ->
            if Bigint.equal c Bigint.one then Format.pp_print_string ppf "n"
            else Format.fprintf ppf "%a*n" Bigint.pp c
        | _ ->
            if Bigint.equal c Bigint.one then Format.fprintf ppf "n^%d" i
            else Format.fprintf ppf "%a*n^%d" Bigint.pp c i
      end
    done
  end

let to_string p = Format.asprintf "%a" pp p
