exception Too_large of string

let pairs = Value.as_bag

(* Merge two sorted association lists, combining multiplicities with [f]
   (absent elements count zero) and dropping zero results.  Both inputs are
   canonical, so the output is too. *)
let merge f a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], [] -> []
    | (v, c) :: xs', [] -> cons v (f c Bignat.zero) xs' []
    | [], (w, d) :: ys' -> cons w (f Bignat.zero d) [] ys'
    | (v, c) :: xs', (w, d) :: ys' ->
        let cv = Value.compare v w in
        if cv < 0 then cons v (f c Bignat.zero) xs' ys
        else if cv > 0 then cons w (f Bignat.zero d) xs ys'
        else cons v (f c d) xs' ys'
  and cons v c xs ys =
    if Bignat.is_zero c then go xs ys else (v, c) :: go xs ys
  in
  Value.Bag (go (pairs a) (pairs b))

let union_add a b = merge Bignat.add a b
let diff a b = merge Bignat.monus a b
let union_max a b = merge Bignat.max a b
let inter a b = merge Bignat.min a b

let subbag a b =
  List.for_all
    (fun (v, c) -> Bignat.compare c (Value.count_in v b) <= 0)
    (pairs a)

let product a b =
  let bs = pairs b in
  let combined =
    List.concat_map
      (fun (v, c) ->
        let vt = Value.as_tuple v in
        List.map
          (fun (w, d) -> (Value.Tuple (vt @ Value.as_tuple w), Bignat.mul c d))
          bs)
      (pairs a)
  in
  Value.bag_of_assoc combined

let scale k b =
  if Bignat.is_zero k then Value.Bag []
  else Value.Bag (List.map (fun (v, c) -> (v, Bignat.mul k c)) (pairs b))

let destroy b =
  List.fold_left
    (fun acc (inner, c) -> union_add acc (scale c inner))
    (Value.Bag []) (pairs b)

let dedup b = Value.Bag (List.map (fun (v, _) -> (v, Bignat.one)) (pairs b))

let map f b =
  Value.bag_of_assoc (List.map (fun (v, c) -> (f v, c)) (pairs b))

let select p b = Value.Bag (List.filter (fun (v, _) -> p v) (pairs b))

(* Nest: group by the listed attributes; the remaining attributes keep
   their multiplicities inside the per-group bag, each group occurs once. *)
let nest ixs b =
  let split v =
    let vs = Value.as_tuple v in
    let keep = List.map (fun i -> List.nth vs (i - 1)) ixs in
    let rest = List.filteri (fun j _ -> not (List.mem (j + 1) ixs)) vs in
    (keep, Value.Tuple rest)
  in
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (v, c) ->
      let keep, rest = split v in
      (match Hashtbl.find_opt groups keep with
      | None ->
          order := keep :: !order;
          Hashtbl.replace groups keep [ (rest, c) ]
      | Some members -> Hashtbl.replace groups keep ((rest, c) :: members)))
    (pairs b);
  Value.bag_of_assoc
    (List.map
       (fun keep ->
         let members = Hashtbl.find groups keep in
         (Value.Tuple (keep @ [ Value.bag_of_assoc members ]), Bignat.one))
       !order)

(* Unnest: expand the bag-valued attribute [i] in place, multiplying
   multiplicities. *)
let unnest i b =
  let expanded =
    List.concat_map
      (fun (v, c) ->
        let vs = Value.as_tuple v in
        let prefix = List.filteri (fun j _ -> j < i - 1) vs in
        let suffix = List.filteri (fun j _ -> j > i - 1) vs in
        List.map
          (fun (member, d) ->
            ( Value.Tuple (prefix @ Value.as_tuple member @ suffix),
              Bignat.mul c d ))
          (pairs (List.nth vs (i - 1))))
      (pairs b)
  in
  Value.bag_of_assoc expanded

let max_count b =
  List.fold_left (fun acc (_, c) -> Bignat.max acc c) Bignat.zero (pairs b)

(* Enumerate sub-multisets.  For every distinct element with multiplicity m
   there are m+1 choices; the total number of subbags is prod (m_i + 1),
   which we bound before materialising anything. *)
let check_budget op max_support b =
  let budget =
    List.fold_left
      (fun acc (_, c) ->
        match Bignat.to_int_opt c with
        | None -> raise (Too_large (op ^ ": multiplicity exceeds int range"))
        | Some m ->
            let acc = acc * (m + 1) in
            if acc > max_support || acc < 0 then
              raise
                (Too_large
                   (Printf.sprintf "%s: more than %d subbags" op max_support))
            else acc)
      1 (pairs b)
  in
  ignore budget

(* All ways to keep 0..m_i copies of each element, in one pass.  [weight]
   computes the multiplicity contributed by keeping k of m copies: 1 for the
   powerset, C(m, k) for the powerbag. *)
let enumerate_subbags weight b =
  let rec go = function
    | [] -> [ ([], Bignat.one) ]
    | (v, c) :: rest ->
        let tails = go rest in
        let m = Bignat.to_int_exn c in
        List.concat_map
          (fun (tail, w) ->
            List.init (m + 1) (fun k ->
                let w' = Bignat.mul w (weight m k) in
                if k = 0 then (tail, w')
                else ((v, Bignat.of_int k) :: tail, w')))
          tails
  in
  Value.bag_of_assoc
    (List.map (fun (content, w) -> (Value.Bag content, w)) (go (pairs b)))

let powerset ?(max_support = 1_000_000) b =
  check_budget "powerset" max_support b;
  enumerate_subbags (fun _ _ -> Bignat.one) b

let powerbag ?(max_support = 1_000_000) b =
  check_budget "powerbag" max_support b;
  enumerate_subbags (fun m k -> Bignat.binomial m k) b
