(** Static complexity analysis: places an expression in the complexity
    class assigned by the paper's theorems.

    - BALG{^1} ⊆ LOGSPACE (Thm 4.4);
    - BALG{^2} ⊆ PSPACE (Thm 5.1);
    - BALG{^3}{_i} ⊆ hyper(⌊i/2⌋)-SPACE and the BALG{^k} generalisation
      (Thm 6.2, Prop 6.3);
    - with the powerbag, hyper(i−1)-SPACE (Prop 6.4);
    - with IFP, Turing complete (Thm 6.6). *)

type cclass =
  | Logspace
  | Ptime_bounded_fix
      (** bounded fixpoint over BALG{^1} (§6 end; transitive closure) *)
  | Pspace
  | Hyper_space of int  (** contained in hyper(i)-SPACE *)
  | Elementary
  | Turing_complete
      (** IFP present: no elementary bound guaranteed (completeness proven
          for bag nesting ≥ 2) *)

val pp_cclass : Format.formatter -> cclass -> unit
val cclass_to_string : cclass -> string

val power_nesting : Expr.t -> int
(** Maximal number of [P]/[Pb] operators on a root-to-leaf path (§6). *)

val uses_powerbag : Expr.t -> bool
val uses_fix : Expr.t -> bool
val uses_bfix : Expr.t -> bool

val op_census : Expr.t -> (string * int) list
(** Occurrences of each operator family, sorted by name. *)

type report = {
  bag_nesting : int;
  power_nesting : int;
  powerbag : bool;
  fix : bool;
  bfix : bool;
  cclass : cclass;
  census : (string * int) list;
}

val classify :
  bag_nesting:int ->
  power_nesting:int ->
  powerbag:bool ->
  fix:bool ->
  bfix:bool ->
  cclass

val analyze : Typecheck.env -> Expr.t -> report
val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string
