(** The reference interpreter for BALG.

    Evaluation is exact: multiplicities are {!Bignat.t}s and every operator
    follows the §3 semantics literally.  Because the algebra can express
    queries of arbitrarily high hyper-exponential complexity (Prop 3.2,
    Thm 5.5), the evaluator runs under a {e tractability guard}: a
    configurable bound on the number of distinct elements and on the decimal
    size of multiplicities, raising {!Resource_limit} instead of diverging.

    The evaluator also carries {e meters} recording the largest intermediate
    bag support and multiplicity seen; the complexity experiments (E10, E11,
    E15) read the growth shapes claimed by Theorems 4.4, 5.1 and 6.2 off
    these meters. *)

exception Eval_error of string
exception Resource_limit of string

let error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

type config = {
  max_support : int;  (** bound on distinct elements per bag *)
  max_count_digits : int;  (** bound on decimal digits of any multiplicity *)
  max_fix_steps : int;  (** bound on fixpoint iterations *)
}

let default_config =
  { max_support = 2_000_000; max_count_digits = 10_000; max_fix_steps = 100_000 }

type meters = {
  mutable max_support_seen : int;
  mutable max_count_seen : Bignat.t;
  mutable max_cardinal_seen : Bignat.t;
  mutable ops : int;
}

let fresh_meters () =
  {
    max_support_seen = 0;
    max_count_seen = Bignat.zero;
    max_cardinal_seen = Bignat.zero;
    ops = 0;
  }

module Env = Map.Make (String)

type env = Value.t Env.t

let env_of_list l = List.fold_left (fun m (x, v) -> Env.add x v m) Env.empty l

let observe config meters v =
  meters.ops <- meters.ops + 1;
  (match v with
  | Value.Bag pairs ->
      let support = List.length pairs in
      if support > meters.max_support_seen then
        meters.max_support_seen <- support;
      if support > config.max_support then
        raise
          (Resource_limit
             (Printf.sprintf "bag support %d exceeds limit %d" support
                config.max_support));
      let mc = Bag.max_count v in
      if Bignat.compare mc meters.max_count_seen > 0 then begin
        meters.max_count_seen <- mc;
        if Bignat.digits mc > config.max_count_digits then
          raise
            (Resource_limit
               (Printf.sprintf "multiplicity with %d digits exceeds limit %d"
                  (Bignat.digits mc) config.max_count_digits))
      end;
      let card = Value.cardinal v in
      if Bignat.compare card meters.max_cardinal_seen > 0 then
        meters.max_cardinal_seen <- card
  | Value.Atom _ | Value.Tuple _ -> ());
  v

let rec eval_rec config meters env e =
  let eval env e = eval_rec config meters env e in
  let result =
    match e with
    | Expr.Var x -> (
        match Env.find_opt x env with
        | Some v -> v
        | None -> error "unbound variable %s" x)
    | Expr.Lit (v, _) -> v
    | Expr.Tuple es -> Value.Tuple (List.map (eval env) es)
    | Expr.Proj (i, e) -> (
        match eval env e with
        | Value.Tuple vs when i >= 1 && i <= List.length vs -> List.nth vs (i - 1)
        | v -> error "cannot project attribute %d of %s" i (Value.to_string v))
    | Expr.Sing e -> Value.Bag [ (eval env e, Bignat.one) ]
    | Expr.UnionAdd (a, b) -> Bag.union_add (eval env a) (eval env b)
    | Expr.Diff (a, b) -> Bag.diff (eval env a) (eval env b)
    | Expr.UnionMax (a, b) -> Bag.union_max (eval env a) (eval env b)
    | Expr.Inter (a, b) -> Bag.inter (eval env a) (eval env b)
    | Expr.Product (a, b) -> Bag.product (eval env a) (eval env b)
    | Expr.Powerset e ->
        Bag.powerset ~max_support:config.max_support (eval env e)
    | Expr.Powerbag e ->
        Bag.powerbag ~max_support:config.max_support (eval env e)
    | Expr.Destroy e -> Bag.destroy (eval env e)
    | Expr.Map (x, body, e) ->
        Bag.map (fun v -> eval (Env.add x v env) body) (eval env e)
    | Expr.Select (x, l, r, e) ->
        Bag.select
          (fun v ->
            let env' = Env.add x v env in
            Value.equal (eval env' l) (eval env' r))
          (eval env e)
    | Expr.Dedup e -> Bag.dedup (eval env e)
    | Expr.Nest (ixs, e) -> Bag.nest ixs (eval env e)
    | Expr.Unnest (i, e) -> Bag.unnest i (eval env e)
    | Expr.Let (x, e, body) -> eval (Env.add x (eval env e) env) body
    | Expr.Fix (x, body, seed) ->
        iterate config meters env ~x ~body ~bound:None (eval env seed)
    | Expr.BFix (bound, x, body, seed) ->
        let bound = eval env bound in
        iterate config meters env ~x ~body ~bound:(Some bound) (eval env seed)
  in
  observe config meters result

(* Inflationary iteration: X ↦ (body(X) ∪ X) [∩ bound].  With a bound the
   chain is increasing and bounded, hence terminating; without one the step
   limit applies (BALG + IFP is Turing complete, Thm 6.6). *)
and iterate config meters env ~x ~body ~bound current =
  let clamp v = match bound with None -> v | Some b -> Bag.inter v b in
  let rec go steps current =
    if steps > config.max_fix_steps then
      raise
        (Resource_limit
           (Printf.sprintf "fixpoint did not converge within %d steps"
              config.max_fix_steps));
    let stepped = eval_rec config meters (Env.add x current env) body in
    let next = clamp (Bag.union_max stepped current) in
    if Value.equal next current then current else go (steps + 1) next
  in
  go 0 (clamp current)

let eval ?(config = default_config) ?meters env e =
  let meters = match meters with Some m -> m | None -> fresh_meters () in
  eval_rec config meters env e

(** Boolean convention for queries: a result is true when the output bag is
    nonempty (cf. Example 4.1's [≠ ∅] tests). *)
let truthy = function
  | Value.Bag [] -> false
  | Value.Bag _ -> true
  | v -> error "truthiness of a non-bag value %s" (Value.to_string v)
