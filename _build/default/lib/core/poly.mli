(** Univariate polynomials with arbitrary-precision integer coefficients —
    the objects of the Prop 4.1 occurrence-count analysis.

    Canonical representation: coefficient of [n{^i}] at index [i], no
    trailing zeros, the zero polynomial is the empty array. *)

type t = Bigint.t array

val zero : t
val one : t
val const : Bigint.t -> t
val of_int : int -> t

val x : t
(** The monomial [n]. *)

val is_zero : t -> bool

val degree : t -> int
(** [-1] for the zero polynomial. *)

val coeff : t -> int -> Bigint.t
val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val scale : Bigint.t -> t -> t

val eval : t -> Bignat.t -> Bigint.t
(** Horner evaluation at a natural argument. *)

val eval_int : t -> int -> Bigint.t

val limit_sign : t -> int
(** Sign of [P(n)] as [n → ∞] (the leading coefficient's sign; 0 for the
    zero polynomial). *)

val sign_stable_from : t -> int
(** A threshold beyond which the sign of [P(n)] equals {!limit_sign}
    (Cauchy root bound). *)

val compare_eventually : t -> t -> int * int
(** [(sign, threshold)]: the eventual sign of [P − Q] and a bound from
    which it holds. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val normalize : Bigint.t array -> t
(** Strip trailing zero coefficients (for building values directly). *)
