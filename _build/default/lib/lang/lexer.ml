(** Hand-rolled lexer for the BALG surface syntax.

    Tokens cover expressions ([map(x -> e, e)], [e ++ e], [pi[1,4](e)], ...),
    values ([{{ <'a,'b>:3 }}]) and types ([{{<U,U>}}]).  Because [--] is the
    bag-subtraction operator, line comments use [#] instead. *)

type token =
  | IDENT of string
  | ATOM of string  (** ['name] *)
  | INT of string  (** kept as a string: counts may exceed [int] *)
  | LBAG  (** [{{] *)
  | RBAG  (** [}}] *)
  | LANGLE
  | RANGLE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | DOT
  | ARROW  (** [->] *)
  | EQEQ  (** [==] *)
  | EQUAL  (** [=] *)
  | STAR
  | PLUSPLUS  (** [++] *)
  | MINUSMINUS  (** [--] *)
  | WEDGE  (** [/\ ] *)
  | VEE  (** [\/] *)
  | EOF

exception Lex_error of string * int  (** message, offset *)

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '%'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | ATOM s -> Printf.sprintf "atom '%s" s
  | INT s -> Printf.sprintf "integer %s" s
  | LBAG -> "'{{'"
  | RBAG -> "'}}'"
  | LANGLE -> "'<'"
  | RANGLE -> "'>'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | COLON -> "':'"
  | DOT -> "'.'"
  | ARROW -> "'->'"
  | EQEQ -> "'=='"
  | EQUAL -> "'='"
  | STAR -> "'*'"
  | PLUSPLUS -> "'++'"
  | MINUSMINUS -> "'--'"
  | WEDGE -> "'/\\'"
  | VEE -> "'\\/'"
  | EOF -> "end of input"

(** Tokenise a whole string.  [#] starts a line comment. *)
let tokenize (s : string) : (token * int) list =
  let n = String.length s in
  let toks = ref [] in
  let emit t pos = toks := (t, pos) :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some s.[!i + k] else None in
  while !i < n do
    let c = s.[!i] and pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && s.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '{' && peek 1 = Some '{' then begin
      emit LBAG pos;
      i := !i + 2
    end
    else if c = '}' && peek 1 = Some '}' then begin
      emit RBAG pos;
      i := !i + 2
    end
    else if c = '-' && peek 1 = Some '>' then begin
      emit ARROW pos;
      i := !i + 2
    end
    else if c = '-' && peek 1 = Some '-' then begin
      emit MINUSMINUS pos;
      i := !i + 2
    end
    else if c = '+' && peek 1 = Some '+' then begin
      emit PLUSPLUS pos;
      i := !i + 2
    end
    else if c = '=' && peek 1 = Some '=' then begin
      emit EQEQ pos;
      i := !i + 2
    end
    else if c = '/' && peek 1 = Some '\\' then begin
      emit WEDGE pos;
      i := !i + 2
    end
    else if c = '\\' && peek 1 = Some '/' then begin
      emit VEE pos;
      i := !i + 2
    end
    else if c = '=' then begin
      emit EQUAL pos;
      incr i
    end
    else if c = '<' then begin
      emit LANGLE pos;
      incr i
    end
    else if c = '>' then begin
      emit RANGLE pos;
      incr i
    end
    else if c = '(' then begin
      emit LPAREN pos;
      incr i
    end
    else if c = ')' then begin
      emit RPAREN pos;
      incr i
    end
    else if c = '[' then begin
      emit LBRACKET pos;
      incr i
    end
    else if c = ']' then begin
      emit RBRACKET pos;
      incr i
    end
    else if c = ',' then begin
      emit COMMA pos;
      incr i
    end
    else if c = ':' then begin
      emit COLON pos;
      incr i
    end
    else if c = '.' then begin
      emit DOT pos;
      incr i
    end
    else if c = '*' then begin
      emit STAR pos;
      incr i
    end
    else if c = '\'' then begin
      incr i;
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      if !i = start then raise (Lex_error ("empty atom name", pos));
      emit (ATOM (String.sub s start (!i - start))) pos
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit s.[!i] do
        incr i
      done;
      emit (INT (String.sub s start (!i - start))) pos
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      emit (IDENT (String.sub s start (!i - start))) pos
    end
    else raise (Lex_error (Printf.sprintf "unexpected character %C" c, pos))
  done;
  emit EOF n;
  List.rev !toks
