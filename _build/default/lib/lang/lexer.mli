(** Hand-rolled lexer for the BALG surface syntax.

    [#] starts a line comment.  Identifiers may contain [%] (so the
    pretty-printer's fresh binder names round-trip) and ['] (OCaml-style
    primes); atoms are written ['name]. *)

type token =
  | IDENT of string
  | ATOM of string
  | INT of string  (** kept textual: counts may exceed [int] *)
  | LBAG  (** [{{] *)
  | RBAG  (** [}}] *)
  | LANGLE
  | RANGLE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | DOT
  | ARROW  (** [->] *)
  | EQEQ  (** [==] *)
  | EQUAL
  | STAR
  | PLUSPLUS  (** [++] *)
  | MINUSMINUS  (** [--] *)
  | WEDGE  (** the intersection operator, slash-backslash *)
  | VEE  (** the maximal union operator, backslash-slash *)
  | EOF

exception Lex_error of string * int  (** message, byte offset *)

val token_to_string : token -> string

val tokenize : string -> (token * int) list
(** Tokens with their byte offsets; always ends with [EOF]. *)
