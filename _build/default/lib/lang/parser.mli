(** Recursive-descent parser for the BALG surface syntax.

    The grammar is documented in the implementation; the printed form of
    {!Balg.Expr.pp} is exactly this syntax, so print/parse round-trips.
    Bag literals in expressions must have an inferable type; write
    [empty({{T}})] for typed empty bags. *)

open Balg

exception Parse_error of string * int
(** message, byte offset *)

type stream = { mutable toks : (Lexer.token * int) list }

(** {1 Stream primitives} (exposed for the [.bagdb] loader) *)

val peek : stream -> Lexer.token * int
val advance : stream -> unit
val expect : stream -> Lexer.token -> unit
val expect_ident : stream -> string
val expect_int : stream -> string

val parse_ty : stream -> Ty.t
val parse_value : stream -> Value.t
val parse_expr : stream -> Expr.t

(** {1 Whole-string entry points} *)

val expr_of_string : string -> Expr.t
val value_of_string : string -> Value.t
val ty_of_string : string -> Ty.t
