(** A miniature SQL frontend compiled onto the bag algebra.

    The paper's opening observation made executable: SQL evaluates over
    bags, so projections keep duplicates, DISTINCT is [ε], and
    COUNT/SUM/AVG are duplicate-sensitive.  FROM compiles to products,
    WHERE to selections, GROUP BY to the §7 nest operator, and the
    aggregates to the paper's integer-as-bag encodings. *)

open Balg

exception Sql_error of string

type table = { tname : string; columns : string list; col_types : Ty.t list }

val table : string -> (string * Ty.t) list -> table

type col = string * string
(** (alias, column) *)

type item =
  | Column of col
  | Count_star  (** group size, duplicates included *)
  | Sum_of of col  (** SUM over an integer-bag-typed column *)
  | Avg_of of col  (** floor AVG over an integer-bag-typed column *)

type cond = Col_eq of col * col | Const_eq of col * Value.t

type query = {
  select : item list;
  distinct : bool;
  from : (string * string) list;  (** (table name, alias) *)
  where : cond list;
  group_by : col list;
}

val select :
  ?distinct:bool ->
  item list ->
  from:(string * string) list ->
  ?where:cond list ->
  ?group_by:col list ->
  unit ->
  query

val compile : tables:table list -> query -> Expr.t
(** @raise Sql_error on unknown tables/columns, aggregates over
    non-integer columns, bare columns outside GROUP BY, etc. *)

val type_env : table list -> Typecheck.env
