(** The [.bagdb] database file format: named, typed bags.

    {v
    # comment
    bag G : {{<U, U>}} = {{ <'a,'b>, <'b,'a>:2 }}
    v} *)

open Balg

exception Db_error of string

type t = (string * Ty.t * Value.t) list

val parse : string -> t
(** Values are checked against their declared types; duplicate bag names
    are rejected.  @raise Db_error. *)

val load : string -> t
(** Read and {!parse} a file. *)

val type_env : t -> Typecheck.env
val value_env : t -> Eval.env

val render : t -> string
(** Re-parseable textual form. *)
