(** A miniature SQL frontend over the bag algebra.

    The paper's opening motivation is that SQL evaluates over bags: without
    DISTINCT, projections keep duplicates and COUNT/SUM/AVG are sensitive to
    them.  This module compiles a SELECT / FROM / WHERE / GROUP BY fragment
    to BALG expressions, making that connection executable:

    - FROM is a Cartesian product,
    - WHERE equality predicates are selections,
    - plain SELECT is a MAP (bag projection: duplicates survive),
    - DISTINCT is [ε],
    - GROUP BY is the §7 nest operator, with COUNT/SUM/AVG computed from
      the per-group bag using the paper's integer-as-bag aggregates. *)

open Balg

exception Sql_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Sql_error s)) fmt

type table = {
  tname : string;
  columns : string list;
  col_types : Ty.t list;
}

let table tname cols = { tname; columns = List.map fst cols; col_types = List.map snd cols }

type col = string * string
(** (alias, column) *)

type item =
  | Column of col
  | Count_star  (** COUNT-star: group size, duplicates included *)
  | Sum_of of col  (** SUM over an integer-bag-typed column *)
  | Avg_of of col  (** AVG (floor) over an integer-bag-typed column *)

type cond =
  | Col_eq of col * col
  | Const_eq of col * Value.t

type query = {
  select : item list;
  distinct : bool;
  from : (string * string) list;  (** (table name, alias) *)
  where : cond list;
  group_by : col list;
}

let select ?(distinct = false) items ~from ?(where = []) ?(group_by = []) () =
  { select = items; distinct; from; where; group_by }

(* Column resolution: FROM builds one wide tuple; [layout] maps
   (alias, column) to its 1-based position and type. *)
let layout tables from =
  let find_table name =
    match List.find_opt (fun t -> String.equal t.tname name) tables with
    | Some t -> t
    | None -> err "unknown table %s" name
  in
  let _, positions, types =
    List.fold_left
      (fun (offset, positions, types) (tn, alias) ->
        let t = find_table tn in
        let cols =
          List.mapi (fun i c -> ((alias, c), offset + i + 1)) t.columns
        in
        (offset + List.length t.columns, positions @ cols, types @ t.col_types))
      (0, [], []) from
  in
  (positions, types)

let resolve positions (alias, c) =
  match List.assoc_opt (alias, c) positions with
  | Some i -> i
  | None -> err "unknown column %s.%s" alias c

(** Compile a query to a BALG expression over variables named by the FROM
    tables. *)
let compile ~tables (q : query) : Expr.t =
  if q.from = [] then err "empty FROM clause";
  let positions, types = layout tables q.from in
  let width = List.length types in
  (* FROM: product of the table variables *)
  let from_expr =
    match q.from with
    | [] -> assert false
    | (t0, _) :: rest ->
        List.fold_left
          (fun acc (t, _) -> Expr.Product (acc, Expr.Var t))
          (Expr.Var t0) rest
  in
  (* WHERE: a selection per condition *)
  let where_expr =
    List.fold_left
      (fun acc cond ->
        let x = Expr.fresh_var "sql_w" in
        match cond with
        | Col_eq (c1, c2) ->
            Expr.Select
              ( x,
                Expr.Proj (resolve positions c1, Expr.Var x),
                Expr.Proj (resolve positions c2, Expr.Var x),
                acc )
        | Const_eq (c, v) ->
            let ty = List.nth types (resolve positions c - 1) in
            Expr.Select
              (x, Expr.Proj (resolve positions c, Expr.Var x), Expr.Lit (v, ty), acc))
      from_expr q.where
  in
  let aggregates_present =
    List.exists
      (function Count_star | Sum_of _ | Avg_of _ -> true | Column _ -> false)
      q.select
  in
  let check_nat_col what c =
    let ty = List.nth types (resolve positions c - 1) in
    if not (Ty.equal ty Ty.nat) then
      err "%s needs an integer-bag column, %s.%s : %s" what (fst c) (snd c)
        (Ty.to_string ty)
  in
  let body =
    if q.group_by = [] then
      if aggregates_present then begin
        (* whole-bag aggregates: nest on nothing is not allowed, so compute
           directly from the selected rows *)
        match q.select with
        | [ Count_star ] -> Derived.ones where_expr
        | [ Sum_of c ] ->
            check_nat_col "SUM" c;
            let y = Expr.fresh_var "sql_s" in
            Expr.Destroy
              (Expr.Map (y, Expr.Proj (resolve positions c, Expr.Var y), where_expr))
        | [ Avg_of c ] ->
            check_nat_col "AVG" c;
            let y = Expr.fresh_var "sql_a" in
            Derived.floor_average
              (Expr.Map (y, Expr.Proj (resolve positions c, Expr.Var y), where_expr))
        | _ -> err "ungrouped aggregates must be the only SELECT item"
      end
      else begin
        let x = Expr.fresh_var "sql_p" in
        let project = function
          | Column c -> Expr.Proj (resolve positions c, Expr.Var x)
          | Count_star | Sum_of _ | Avg_of _ -> assert false
        in
        Expr.Map (x, Expr.Tuple (List.map project q.select), where_expr)
      end
    else begin
      (* GROUP BY: nest on the key positions, then map each group *)
      let key_positions = List.map (resolve positions) q.group_by in
      if List.length (List.sort_uniq compare key_positions) <> List.length key_positions
      then err "duplicate GROUP BY column";
      let nested = Expr.Nest (key_positions, where_expr) in
      let g = Expr.fresh_var "sql_g" in
      let group_bag = Expr.Proj (List.length key_positions + 1, Expr.Var g) in
      (* position of a column inside the group's residual tuple *)
      let residual =
        List.filter
          (fun i -> not (List.mem i key_positions))
          (List.init width (fun i -> i + 1))
      in
      let in_group c =
        let p = resolve positions c in
        match List.find_index (fun i -> i = p) residual with
        | Some j -> j + 1
        | None -> err "column %s.%s is a GROUP BY key, not aggregable" (fst c) (snd c)
      in
      let project = function
        | Column c -> (
            let p = resolve positions c in
            match List.find_index (fun i -> i = p) key_positions with
            | Some j -> Expr.Proj (j + 1, Expr.Var g)
            | None ->
                err "column %s.%s must appear in GROUP BY or an aggregate"
                  (fst c) (snd c))
        | Count_star -> Derived.ones group_bag
        | Sum_of c ->
            check_nat_col "SUM" c;
            let y = Expr.fresh_var "sql_gs" in
            Expr.Destroy (Expr.Map (y, Expr.Proj (in_group c, Expr.Var y), group_bag))
        | Avg_of c ->
            check_nat_col "AVG" c;
            let y = Expr.fresh_var "sql_ga" in
            Derived.floor_average
              (Expr.Map (y, Expr.Proj (in_group c, Expr.Var y), group_bag))
      in
      Expr.Map (g, Expr.Tuple (List.map project q.select), nested)
    end
  in
  if q.distinct then Expr.Dedup body else body

(** Typing environment induced by a table list. *)
let type_env tables =
  Typecheck.env_of_list
    (List.map (fun t -> (t.tname, Ty.Bag (Ty.Tuple t.col_types))) tables)
