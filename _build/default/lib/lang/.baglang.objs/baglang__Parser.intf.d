lib/lang/parser.mli: Balg Expr Lexer Ty Value
