lib/lang/parser.ml: Balg Bignat Expr Lexer List Printf Ty Value
