lib/lang/lexer.mli:
