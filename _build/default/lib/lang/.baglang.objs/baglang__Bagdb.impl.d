lib/lang/bagdb.ml: Balg Eval Lexer List Parser Printf String Ty Typecheck Value
