lib/lang/sqlish.mli: Balg Expr Ty Typecheck Value
