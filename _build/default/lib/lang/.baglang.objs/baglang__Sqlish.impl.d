lib/lang/sqlish.ml: Balg Derived Expr List Printf String Ty Typecheck Value
