lib/lang/bagdb.mli: Balg Eval Ty Typecheck Value
