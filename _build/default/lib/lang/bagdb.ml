(** The [.bagdb] database file format.

    A database is a sequence of named, typed bags:
    {v
    # edges of a small graph, with a duplicate
    bag G : {{<U, U>}} = {{ <'a,'b>, <'b,'a>:2 }}
    bag R : {{<U>}}    = {{ <'a>, <'b>, <'c> }}
    v}

    [#] starts a line comment.  Every declared value is checked against its
    declared type at load time. *)

open Balg

exception Db_error of string

type t = (string * Ty.t * Value.t) list

let parse (source : string) : t =
  let st = { Parser.toks = Lexer.tokenize source } in
  let rec decls acc =
    match Parser.peek st with
    | Lexer.EOF, _ -> List.rev acc
    | Lexer.IDENT "bag", _ ->
        Parser.advance st;
        let name = Parser.expect_ident st in
        Parser.expect st Lexer.COLON;
        let ty = Parser.parse_ty st in
        Parser.expect st Lexer.EQUAL;
        let v = Parser.parse_value st in
        if not (Value.has_type ty v) then
          raise
            (Db_error
               (Printf.sprintf "bag %s: value %s does not have declared type %s"
                  name (Value.to_string v) (Ty.to_string ty)));
        decls ((name, ty, v) :: acc)
    | t, _ ->
        raise
          (Db_error
             (Printf.sprintf "expected 'bag', found %s" (Lexer.token_to_string t)))
  in
  let db = decls [] in
  let names = List.map (fun (n, _, _) -> n) db in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    raise (Db_error "duplicate bag names in database");
  db

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  parse content

let type_env (db : t) = Typecheck.env_of_list (List.map (fun (n, ty, _) -> (n, ty)) db)
let value_env (db : t) = Eval.env_of_list (List.map (fun (n, _, v) -> (n, v)) db)

let render (db : t) =
  String.concat "\n"
    (List.map
       (fun (n, ty, v) ->
         Printf.sprintf "bag %s : %s = %s" n (Ty.to_string ty) (Value.to_string v))
       db)
