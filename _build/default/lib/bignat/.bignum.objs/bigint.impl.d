lib/bignat/bigint.ml: Bignat Format String
