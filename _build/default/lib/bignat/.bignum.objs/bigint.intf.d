lib/bignat/bigint.mli: Bignat Format
