(* Sign/magnitude representation; the canonical zero is [Pos Bignat.zero],
   enforced by the smart constructor so equality is structural. *)

type t = { negative : bool; mag : Bignat.t }

let make negative mag =
  if Bignat.is_zero mag then { negative = false; mag } else { negative; mag }

let zero = make false Bignat.zero
let one = make false Bignat.one
let minus_one = make true Bignat.one
let of_bignat m = make false m

let of_int n =
  if n >= 0 then make false (Bignat.of_int n) else make true (Bignat.of_int (-n))

let to_bignat_opt x = if x.negative then None else Some x.mag
let neg x = make (not x.negative) x.mag
let abs x = x.mag
let is_zero x = Bignat.is_zero x.mag

let sign x = if Bignat.is_zero x.mag then 0 else if x.negative then -1 else 1

let add a b =
  match (a.negative, b.negative) with
  | false, false -> make false (Bignat.add a.mag b.mag)
  | true, true -> make true (Bignat.add a.mag b.mag)
  | false, true ->
      if Bignat.compare a.mag b.mag >= 0 then make false (Bignat.sub_exn a.mag b.mag)
      else make true (Bignat.sub_exn b.mag a.mag)
  | true, false ->
      if Bignat.compare b.mag a.mag >= 0 then make false (Bignat.sub_exn b.mag a.mag)
      else make true (Bignat.sub_exn a.mag b.mag)

let sub a b = add a (neg b)
let mul a b = make (a.negative <> b.negative) (Bignat.mul a.mag b.mag)

let compare a b =
  match (a.negative, b.negative) with
  | false, true -> if is_zero a && is_zero b then 0 else 1
  | true, false -> if is_zero a && is_zero b then 0 else -1
  | false, false -> Bignat.compare a.mag b.mag
  | true, true -> Bignat.compare b.mag a.mag

let equal a b = compare a b = 0

let to_string x =
  if x.negative then "-" ^ Bignat.to_string x.mag else Bignat.to_string x.mag

let of_string s =
  if String.length s > 0 && s.[0] = '-' then
    make true (Bignat.of_string (String.sub s 1 (String.length s - 1)))
  else make false (Bignat.of_string s)

let pp ppf x = Format.pp_print_string ppf (to_string x)
