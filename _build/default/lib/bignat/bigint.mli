(** Signed arbitrary-precision integers, as a thin sign/magnitude layer over
    {!Bignat}.

    Needed by the polynomial abstract interpreter (Prop 4.1 / 4.5): the
    difference of two occurrence-count polynomials has integer coefficients
    of either sign. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val of_bignat : Bignat.t -> t
val to_bignat_opt : t -> Bignat.t option
(** [Some] magnitude when nonnegative. *)

val of_string : string -> t
val to_string : t -> string

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val abs : t -> Bignat.t

val sign : t -> int
(** -1, 0 or 1. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val pp : Format.formatter -> t -> unit
