(** Arbitrary-precision natural numbers.

    Duplicate multiplicities in the bag algebra grow hyper-exponentially
    (Proposition 3.2 of Grumbach & Milo: two nested powersets followed by two
    bag-destroys already yield [2^((m+1)^k - 2) * (m+1)^k * m] occurrences),
    so bag counts cannot be machine integers.  The sealed build environment
    has no [zarith]; this module provides the subset of big-natural
    arithmetic the interpreter needs, implemented with base-[10^9] limbs.

    All values are immutable and canonical (no leading zero limbs), so
    structural equality coincides with numeric equality. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t

(** {1 Construction and destruction} *)

val of_int : int -> t
(** [of_int n] is the natural number [n].
    @raise Invalid_argument if [n < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in an OCaml [int]. *)

val to_int_exn : t -> int
(** Like {!to_int_opt} but raises [Failure] on overflow. *)

val of_string : string -> t
(** Parses a decimal numeral (optional leading [+], underscores allowed).
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal rendering without separators. *)

val to_float : t -> float
(** Approximate magnitude; [infinity] when out of float range. *)

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_one : t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Arithmetic} *)

val add : t -> t -> t
val succ : t -> t

val monus : t -> t -> t
(** Truncated subtraction: [monus a b = max 0 (a - b)].  This is exactly the
    paper's bag-subtraction semantics on counts ([sup (0, p - q)]). *)

val sub_exn : t -> t -> t
(** Exact subtraction. @raise Invalid_argument if the result would be
    negative. *)

val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]. @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val pow : t -> int -> t
(** [pow b e] is [b{^e}]. @raise Invalid_argument if [e < 0]. *)

val pow2 : int -> t
(** [pow2 k] is [2{^k}]. *)

val hyper : int -> int -> t
(** [hyper i n] is the height-[i] tower of exponentials used as the paper's
    complexity yardstick: [hyper 0 n = n] and
    [hyper (i+1) n = 2 ^ hyper i n].
    @raise Invalid_argument if an intermediate exponent exceeds [int]
    capacity (the value would not be representable in memory anyway). *)

val binomial : int -> int -> t
(** [binomial n k] is the exact binomial coefficient [C(n, k)] ([zero] when
    [k < 0] or [k > n]).  Used for powerbag multiplicities. *)

val is_even : t -> bool

val gcd : t -> t -> t
(** Greatest common divisor ([gcd 0 n = n]). *)

val lcm : t -> t -> t
(** Least common multiple ([lcm] with zero is zero). *)

val factorial : int -> t
(** [factorial n] is [n!]. @raise Invalid_argument if [n < 0]. *)

val sum : t list -> t

(** {1 Size probes} *)

val digits : t -> int
(** Number of decimal digits (1 for zero). *)

val bits_upper : t -> int
(** An upper bound on the binary length, cheap to compute; used by the
    evaluator's resource guard. *)

(** {1 Pretty printing} *)

val pp : Format.formatter -> t -> unit
