lib/mset/multiset.mli: Bignat
