lib/mset/multiset.ml: Bignat List Map Option
