(** Deterministic single-tape Turing machines — the reference semantics for
    the paper's simulation theorems (6.1 and 6.6). *)

type move = Left | Right
type symbol = string
type state = string

type t = {
  name : string;
  blank : symbol;
  delta : state * symbol -> (state * symbol * move) option;
      (** [None] halts the machine *)
  start : state;
  accept : state;
  states : state list;  (** all states, for the algebraic encodings *)
  alphabet : symbol list;  (** all tape symbols, including the blank *)
}

type config = { tape : symbol array; head : int (** 1-based *); state : state }

exception Out_of_space
(** Raised when the head leaves the allocated tape window. *)

val initial : ?space:int -> t -> symbol list -> config
(** Tape window of at least [input length + 2] cells. *)

val step : t -> config -> config option

type outcome = Accepted of config | Halted of config | Ran_out_of_fuel

val run : ?fuel:int -> ?space:int -> t -> symbol list -> outcome
val accepts : ?fuel:int -> ?space:int -> t -> symbol list -> bool

val trace : ?fuel:int -> ?space:int -> t -> symbol list -> config list
(** All configurations, initial first. *)

(** {1 Example machines} *)

val parity_even : t
(** Accepts unary inputs of even length. *)

val unary_successor : t
(** Halts accepting with [n+1] ones on the tape. *)

val tiny_step : t
(** One move over a single-symbol alphabet; small enough for the full
    Theorem 6.1 powerset encoding to be evaluated exactly. *)

val bouncer : t
(** Exercises Left moves; requires a nonempty unary input. *)

val binary_increment : t
(** Binary increment (MSB first); the input needs a leading [0] padding
    bit. *)

val unary : int -> symbol list

val to_binary : int -> symbol list
(** MSB-first with the padding bit. *)

val of_binary_tape : config -> int
(** Decode the binary number left on the tape (blanks ignored). *)

val ones_on_tape : config -> int
