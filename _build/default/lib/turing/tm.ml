(** Deterministic single-tape Turing machines.

    This is the reference operational semantics for the paper's
    machine-simulation theorems: Theorem 6.1 encodes runs of such machines
    into BALG{^3} expressions, Theorem 6.6 into BALG + IFP; the encodings are
    validated against {!run}. *)

type move = Left | Right

type symbol = string
type state = string

type t = {
  name : string;
  blank : symbol;
  delta : (state * symbol) -> (state * symbol * move) option;
      (** [None] halts the machine *)
  start : state;
  accept : state;
  states : state list;  (** all states, for the algebraic encodings *)
  alphabet : symbol list;  (** all tape symbols, including the blank *)
}

(** A configuration: a finite window of tape, 1-based head position and
    current state.  The tape array is as long as the space the run may
    touch. *)
type config = { tape : symbol array; head : int; state : state }

let initial ?(space = 0) tm input =
  let space = max space (List.length input + 2) in
  let tape = Array.make space tm.blank in
  List.iteri (fun i s -> tape.(i) <- s) input;
  { tape; head = 1; state = tm.start }

exception Out_of_space

(** One transition; [None] when the machine has halted. *)
let step tm (c : config) : config option =
  match tm.delta (c.state, c.tape.(c.head - 1)) with
  | None -> None
  | Some (q', s', mv) ->
      let tape = Array.copy c.tape in
      tape.(c.head - 1) <- s';
      let head = match mv with Left -> c.head - 1 | Right -> c.head + 1 in
      if head < 1 || head > Array.length tape then raise Out_of_space;
      Some { tape; head; state = q' }

type outcome = Accepted of config | Halted of config | Ran_out_of_fuel

(** Run to halting (at most [fuel] steps). *)
let run ?(fuel = 10_000) ?space tm input =
  let rec go fuel c =
    if fuel = 0 then Ran_out_of_fuel
    else
      match step tm c with
      | None -> if c.state = tm.accept then Accepted c else Halted c
      | Some c' -> go (fuel - 1) c'
  in
  go fuel (initial ?space tm input)

let accepts ?fuel ?space tm input =
  match run ?fuel ?space tm input with
  | Accepted _ -> true
  | Halted _ | Ran_out_of_fuel -> false

(** The whole run as a list of configurations (initial one first). *)
let trace ?(fuel = 10_000) ?space tm input =
  let rec go fuel c acc =
    if fuel = 0 then List.rev acc
    else
      match step tm c with
      | None -> List.rev acc
      | Some c' -> go (fuel - 1) c' (c' :: acc)
  in
  let c0 = initial ?space tm input in
  go fuel c0 [ c0 ]

(** {1 Example machines} *)

(** Accepts unary strings (of [1]s) of even length: scans right flipping
    between two states, accepts on the blank in the even state. *)
let parity_even =
  {
    name = "unary-parity";
    blank = "_";
    start = "qe";
    accept = "qa";
    states = [ "qe"; "qo"; "qa" ];
    alphabet = [ "1"; "_" ];
    delta =
      (function
      | "qe", "1" -> Some ("qo", "1", Right)
      | "qo", "1" -> Some ("qe", "1", Right)
      | "qe", "_" -> Some ("qa", "_", Right)
      | _ -> None);
  }

(** Unary successor: scans to the first blank, writes a [1], accepts.  The
    output tape holds n+1 ones. *)
let unary_successor =
  {
    name = "unary-successor";
    blank = "_";
    start = "qs";
    accept = "qa";
    states = [ "qs"; "qa" ];
    alphabet = [ "1"; "_" ];
    delta =
      (function
      | "qs", "1" -> Some ("qs", "1", Right)
      | "qs", "_" -> Some ("qa", "1", Right)
      | _ -> None);
  }

(** A one-move machine over the single-symbol alphabet [1]: reads a [1] and
    accepts one cell to the right.  Small enough for the full Theorem 6.1
    powerset encoding to be evaluated exactly. *)
let tiny_step =
  {
    name = "tiny-step";
    blank = "1";
    start = "q0";
    accept = "qf";
    states = [ "q0"; "qf" ];
    alphabet = [ "1" ];
    delta =
      (function "q0", "1" -> Some ("qf", "1", Right) | _ -> None);
  }

(** Exercises Left moves: walks right to the first blank, steps back onto
    the last [1] and accepts there.  Requires a nonempty unary input. *)
let bouncer =
  {
    name = "bouncer";
    blank = "_";
    start = "qr";
    accept = "qa";
    states = [ "qr"; "ql"; "qa" ];
    alphabet = [ "1"; "_" ];
    delta =
      (function
      | "qr", "1" -> Some ("qr", "1", Right)
      | "qr", "_" -> Some ("ql", "_", Left)
      | "ql", "1" -> Some ("qa", "1", Right)
      | _ -> None);
  }

(** Binary increment, most-significant bit first.  The input must start
    with a [0] (a padding bit) so the carry never falls off the left end:
    e.g. [0;1;1] (= 3) becomes [1;0;0] (= 4). *)
let binary_increment =
  {
    name = "binary-increment";
    blank = "_";
    start = "qr";
    accept = "qa";
    states = [ "qr"; "qc"; "qa" ];
    alphabet = [ "0"; "1"; "_" ];
    delta =
      (function
      | "qr", "0" -> Some ("qr", "0", Right)
      | "qr", "1" -> Some ("qr", "1", Right)
      | "qr", "_" -> Some ("qc", "_", Left)
      | "qc", "1" -> Some ("qc", "0", Left)
      | "qc", "0" -> Some ("qa", "1", Right)
      | _ -> None);
  }

let unary n = List.init n (fun _ -> "1")

(** Binary encoding/decoding, MSB first, with the padding bit required by
    {!binary_increment}. *)
let to_binary n =
  let rec bits n = if n = 0 then [] else (string_of_int (n land 1)) :: bits (n lsr 1) in
  "0" :: List.rev (bits n)

let of_binary_tape (c : config) =
  Array.fold_left
    (fun acc s ->
      match s with
      | "0" -> acc * 2
      | "1" -> (acc * 2) + 1
      | _ -> acc)
    0 c.tape

(** Number of [1]s left on the tape. *)
let ones_on_tape (c : config) =
  Array.fold_left (fun acc s -> if s = "1" then acc + 1 else acc) 0 c.tape
