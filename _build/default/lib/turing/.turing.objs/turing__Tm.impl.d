lib/turing/tm.ml: Array List
