lib/turing/tm.mli:
