(** The [GV90] object pebble game (Theorem 5.3), specialised to the
    Lemma 5.4 structures.

    Objects are atoms or sets of atoms (the completion domain for
    T = [{U, {U}}]).  The duplicator wins the [k]-move game when the chosen
    pairs always induce a partial isomorphism (equality, atom–set
    membership, and the edge relation). *)

type obj = OAtom of int | OSet of Construction.mask

val pp_obj : int -> Format.formatter -> obj -> unit

val partial_iso :
  Construction.graph -> Construction.graph -> (obj * obj) list -> bool
(** Pairs are [(object in A, object in B)]. *)

val all_objects : int -> obj list
(** The full completion domain: all atoms and all sets of atoms. *)

val duplicator_wins_exhaustive :
  k:int -> Construction.graph -> Construction.graph -> bool
(** Ground-truth minimax over the whole domain; exponential — use for tiny
    [n] and [k] only. *)

(** {1 The proof's permutation strategy} *)

val all_perms : int -> int array list
val apply_mask : int array -> Construction.mask -> Construction.mask
val apply_obj : int array -> obj -> obj
val invert : int array -> int array

val duplicator_strategy_wins :
  k:int -> Construction.graph -> Construction.graph -> bool
(** The duplicator answers with images under atom permutations consistent
    with the play so far (memberships and equalities are then preserved for
    free; edge consistency filters candidates, with backtracking).
    Lemma 5.4: survives every spoiler play when [n > 2^k]. *)
