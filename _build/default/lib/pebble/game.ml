(** The object pebble game of [GV90] (Theorem 5.3), specialised to the
    Lemma 5.4 structures.

    Objects are either atoms or sets of atoms — the completion domain for
    the type set T = [{U, {U}}].  The spoiler picks an object in either
    structure; the duplicator answers in the other; the duplicator wins the
    [k]-move game if the chosen pairs always induce a partial isomorphism
    (equality, atom–set membership, and the edge relation must all be
    preserved).

    Two engines are provided:

    - {!duplicator_wins_exhaustive}: full minimax search over every object
      (feasible only for tiny [n]); the ground truth.
    - {!duplicator_strategy_wins}: the proof's strategy — the duplicator
      maintains the set of atom permutations consistent with the pairs
      chosen so far and always answers with a permutation image, which
      preserves memberships and equalities for free; only edge consistency
      filters candidates.  Property (1) guarantees survival for [n > 2^k]. *)

type obj = OAtom of int | OSet of Construction.mask

let pp_obj n ppf = function
  | OAtom i -> Format.fprintf ppf "atom %d" i
  | OSet s ->
      Format.fprintf ppf "{%s}"
        (String.concat ","
           (List.map string_of_int (Construction.atoms_of_mask n s)))

let has_edge (g : Construction.graph) x y = List.mem (x, y) g.Construction.edges

(* The pairs are stored as (object in A, object in B). *)
let partial_iso ga gb pairs =
  let ok_pair (o1, o1') (o2, o2') =
    match ((o1, o1'), (o2, o2')) with
    | (OAtom a, OAtom a'), (OAtom b, OAtom b') -> (a = b) = (a' = b')
    | (OAtom a, OAtom a'), (OSet s, OSet s')
    | (OSet s, OSet s'), (OAtom a, OAtom a') ->
        Construction.mem_atom a s = Construction.mem_atom a' s'
    | (OSet s, OSet s'), (OSet t, OSet t') ->
        (s = t) = (s' = t')
        && has_edge ga s t = has_edge gb s' t'
        && has_edge ga t s = has_edge gb t' s'
    | (OAtom _, OSet _), _
    | (OSet _, OAtom _), _
    | _, (OAtom _, OSet _)
    | _, (OSet _, OAtom _) ->
        false (* kind mismatch within a pair *)
  in
  let rec go = function
    | [] -> true
    | p :: rest -> List.for_all (ok_pair p) (p :: rest) && go rest
  in
  go pairs

(** Every object of the completion domain: all atoms and all sets of
    atoms. *)
let all_objects n =
  List.init n (fun i -> OAtom (i + 1))
  @ List.init (1 lsl n) (fun s -> OSet s)

(** {1 Exhaustive minimax} *)

let duplicator_wins_exhaustive ~k ga gb =
  let domain_a = all_objects ga.Construction.n
  and domain_b = all_objects gb.Construction.n in
  let rec dup_wins k pairs =
    if k = 0 then true
    else
      List.for_all
        (fun (in_a, o) ->
          let answers = if in_a then domain_b else domain_a in
          List.exists
            (fun o' ->
              let pair = if in_a then (o, o') else (o', o) in
              partial_iso ga gb (pair :: pairs) && dup_wins (k - 1) (pair :: pairs))
            answers)
        (List.map (fun o -> (true, o)) domain_a
        @ List.map (fun o -> (false, o)) domain_b)
  in
  dup_wins k []

(** {1 The permutation strategy of the Lemma 5.4 proof} *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
        l

(* A permutation as an array: pi.(i-1) is the image of atom i. *)
let all_perms n =
  List.map Array.of_list (permutations (List.init n (fun i -> i + 1)))

let apply_mask pi s =
  let r = ref 0 in
  Array.iteri (fun i img -> if s land (1 lsl i) <> 0 then r := !r lor (1 lsl (img - 1))) pi;
  !r

let apply_obj pi = function
  | OAtom a -> OAtom pi.(a - 1)
  | OSet s -> OSet (apply_mask pi s)

let invert pi =
  let inv = Array.make (Array.length pi) 0 in
  Array.iteri (fun i img -> inv.(img - 1) <- i + 1) pi;
  inv

(* Group live permutations by the answer they propose for [o] (forward
   image when the spoiler played in A, preimage otherwise). *)
let buckets perms ~in_a o =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun pi ->
      let answer = if in_a then apply_obj pi o else apply_obj (invert pi) o in
      let existing = Option.value ~default:[] (Hashtbl.find_opt tbl answer) in
      Hashtbl.replace tbl answer (pi :: existing))
    perms;
  Hashtbl.fold (fun answer ps acc -> (answer, ps) :: acc) tbl []

(** Play the [k]-move game with the duplicator following the permutation
    strategy (answer with the image under a consistent permutation, pick the
    candidate with the most surviving permutations among the
    edge-consistent ones).  Returns [true] when the strategy survives every
    spoiler play. *)
let duplicator_strategy_wins ~k ga gb =
  let n = ga.Construction.n in
  let domain = all_objects n in
  let moves =
    List.map (fun o -> (true, o)) domain @ List.map (fun o -> (false, o)) domain
  in
  let rec survive k pairs perms =
    if k = 0 then true
    else
      List.for_all
        (fun (in_a, o) ->
          let candidates = buckets perms ~in_a o in
          let valid =
            List.filter
              (fun (answer, _) ->
                let pair = if in_a then (o, answer) else (answer, o) in
                partial_iso ga gb (pair :: pairs))
              candidates
          in
          let sorted =
            List.sort
              (fun (_, p1) (_, p2) -> compare (List.length p2) (List.length p1))
              valid
          in
          (* try the candidate keeping the most permutations alive first,
             backtracking over the other permutation-consistent answers *)
          List.exists
            (fun (answer, live) ->
              let pair = if in_a then (o, answer) else (answer, o) in
              survive (k - 1) (pair :: pairs) live)
            sorted)
        moves
  in
  survive k [] (all_perms n)
