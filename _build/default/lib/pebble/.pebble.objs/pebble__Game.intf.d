lib/pebble/game.mli: Construction Format
