lib/pebble/construction.mli: Balg Expr Format Ty Value
