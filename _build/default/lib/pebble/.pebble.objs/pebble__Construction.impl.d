lib/pebble/construction.ml: Balg Derived Expr Format List Printf String Ty Value
