lib/pebble/game.ml: Array Construction Format Hashtbl List Option String
