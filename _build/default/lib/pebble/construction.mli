(** The Lemma 5.4 construction: the Fig. 1 star graphs whose nodes are sets
    of atomic constants, with the inductive [In{_n}]/[Out{_n}] families. *)

type mask = int
(** a set of atoms [1..n] as a bit mask *)

val full_mask : int -> mask
val mem_atom : int -> mask -> bool
val set_cardinal : mask -> int
val atoms_of_mask : int -> mask -> int list

val in_out : int -> mask list * mask list
(** [(In{_n}, Out{_n})] for even [n >= 4]: disjoint families of
    (n/2)-subsets, [2^(n/2−1)] members each.
    @raise Invalid_argument on odd or small [n]. *)

val property_one : int -> bool
(** Property (1): every atom lies in exactly half of each family. *)

type graph = {
  n : int;
  alpha : mask;  (** the central node: the full set *)
  in_nodes : mask list;
  out_nodes : mask list;
  edges : (mask * mask) list;
}

val g_balanced : int -> graph
(** [G{_n}]: every [In] node points at [α], [α] points at every [Out]
    node — in-degree equals out-degree at [α]. *)

val g_flipped : int -> graph
(** [G'{_n}]: one [α → o] edge inverted. *)

val nodes : graph -> mask list
val in_degree : graph -> mask -> int
val out_degree : graph -> mask -> int

(** {1 Conversion to a nested-bag database (Theorem 5.2)} *)

open Balg

val atom_value : int -> Value.t
val node_value : int -> mask -> Value.t

val edge_ty : Ty.t
(** [{{< {{U}}, {{U}} >}}] — bag nesting two. *)

val edges_value : graph -> Value.t

val phi_query : graph -> Expr.t
(** The separating BALG{^2} query: in-degree of [α] exceeds its
    out-degree (over the variable [G]). *)

val render_figure : Format.formatter -> graph -> unit
(** ASCII rendering of Fig. 1. *)
