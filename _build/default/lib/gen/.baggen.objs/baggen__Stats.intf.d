lib/gen/stats.mli: Random
