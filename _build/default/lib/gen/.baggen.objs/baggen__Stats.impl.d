lib/gen/stats.ml: List
