lib/gen/genval.mli: Balg Random Ty Value
