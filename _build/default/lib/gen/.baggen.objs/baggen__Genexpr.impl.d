lib/gen/genexpr.ml: Balg Expr Genval List Random Ty Value
