lib/gen/genval.ml: Array Balg Bignat List Printf Random Set Ty Value
