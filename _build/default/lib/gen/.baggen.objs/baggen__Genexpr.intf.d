lib/gen/genexpr.mli: Balg Expr Random Ty Value
