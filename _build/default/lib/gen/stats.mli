(** Monte-Carlo helpers for the asymptotic-probability experiments (E8). *)

val mean : float list -> float
val variance : float list -> float
val stderr : float list -> float

val bernoulli :
  trials:int -> Random.State.t -> (Random.State.t -> bool) -> float * float
(** Estimated probability with its standard error. *)
