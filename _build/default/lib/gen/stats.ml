(** Small statistics helpers for the Monte-Carlo experiments (E8: the
    asymptotic probability of cardinality comparison is 1/2, so BALG{^1}
    admits no 0–1 law). *)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs /. (n -. 1.)

let stderr xs =
  match xs with
  | [] -> nan
  | _ -> sqrt (variance xs /. float_of_int (List.length xs))

(** [bernoulli ~trials rng f] estimates [P(f rng = true)] with its standard
    error. *)
let bernoulli ~trials rng f =
  let hits = ref 0 in
  for _ = 1 to trials do
    if f rng then incr hits
  done;
  let p = float_of_int !hits /. float_of_int trials in
  let se = sqrt (p *. (1. -. p) /. float_of_int trials) in
  (p, se)
