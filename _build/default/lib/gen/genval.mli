(** Reproducible random nested-bag databases and workloads.  Every
    generator is a deterministic function of the given [Random.State.t]. *)

open Balg

val atom_name : int -> string
val atom : Random.State.t -> n_atoms:int -> Value.t
val flat_tuple : Random.State.t -> n_atoms:int -> arity:int -> Value.t

val flat_bag :
  Random.State.t -> n_atoms:int -> arity:int -> size:int -> max_count:int -> Value.t
(** [size] random tuples with multiplicities in [1..max_count]. *)

val of_type :
  Random.State.t -> n_atoms:int -> width:int -> max_count:int -> Ty.t -> Value.t
(** A random value of an arbitrary type (bag supports at most [width]). *)

val graph : Random.State.t -> n:int -> p:float -> Value.t
(** Random directed graph as a binary relation (set), edge probability [p]. *)

val unary_relation : Random.State.t -> n_atoms:int -> p:float -> Value.t

val leq_relation : Value.t -> Value.t
(** The reflexive total order on the members of a unary relation, as a
    binary relation — the order assumed by the §4 parity query. *)

val transitive_closure_ref : Value.t -> Value.t
(** Reference transitive closure (set semantics); the oracle for the
    algebra's bounded-fixpoint TC. *)
