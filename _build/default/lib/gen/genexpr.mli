(** Type-directed random BALG{^1} expression generation, for the Prop 4.2
    simulation test and the rewriting soundness properties. *)

open Balg

type env_spec = (string * int) list
(** database bag names with their tuple arities *)

val flat :
  ?allow_diff:bool ->
  ?allow_dedup:bool ->
  Random.State.t ->
  env_spec ->
  int ->
  int ->
  Expr.t
(** [flat rng env depth arity]: a BALG{^1} expression of type
    [{{U{^arity}}}] over [env]; always well-typed. *)

val nested : Random.State.t -> env_spec -> int -> int -> Expr.t
(** Like {!flat} but allowed to detour through one level of bag nesting
    (powerset-destroy, nest-unnest, singleton-destroy) — a BALG{^2}
    fuzzing generator with flat input/output type. *)

val env_types : env_spec -> (string * Ty.t) list

val instance :
  Random.State.t ->
  ?n_atoms:int ->
  ?size:int ->
  ?max_count:int ->
  env_spec ->
  (string * Value.t) list
(** A random database instance matching the spec. *)
