lib/ralg/rel.mli: Balg Value
