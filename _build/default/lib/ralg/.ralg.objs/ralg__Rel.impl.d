lib/ralg/rel.ml: Balg Bignat List Value
