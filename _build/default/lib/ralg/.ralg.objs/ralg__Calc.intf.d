lib/ralg/calc.mli: Balg Format Rel Value
