lib/ralg/reval.ml: Bag Balg Expr Format List Map Rel String Value
