lib/ralg/calc.ml: Bag Balg Bignat Format List Printf Rel String Value
