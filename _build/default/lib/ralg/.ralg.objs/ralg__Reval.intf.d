lib/ralg/reval.mli: Balg Expr Map Value
