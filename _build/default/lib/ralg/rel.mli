(** Nested relations: the set-semantics baseline (RALG / RALG{^k}).

    A relation is a finite set of complex objects, represented as a strictly
    increasing {!Balg.Value.t} list.  All operations are genuine set
    operations, implemented independently of the bag interpreter so the
    baseline comparisons of Prop 4.2 / Thm 5.2 are between two real
    implementations. *)

open Balg

type t = Value.t list
(** strictly increasing in [Value.compare] *)

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val empty : t
val is_empty : t -> bool
val mem : Value.t -> t -> bool
val cardinal : t -> int

val set_value_of : Value.t -> Value.t
(** Deep conversion: forgets multiplicities at every level. *)

val of_value : Value.t -> t
(** Support of a bag value, deeply converted to sets. *)

val to_value : t -> Value.t
(** As a bag value with all multiplicities one. *)

val is_set_value : Value.t -> bool
(** The recursive all-multiplicities-one invariant. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool

val product : t -> t -> t
(** Tuple concatenation on sets of tuples. *)

val map : (Value.t -> Value.t) -> t -> t
(** Image set (no multiplicities to coalesce). *)

val select : (Value.t -> bool) -> t -> t

val powerset : t -> t
(** All subsets, as set values. *)

val destroy : t -> t
(** Set-flatten a set of sets. *)
