(** CALC{_1}: the calculus with quantification over sets of tuples of atoms
    (§5, after [HS91] and [AB87]) — the logic Theorem 5.3 ties to the pebble
    game and to RALG{^2}.

    Typed variables range, under {e active-domain} semantics, over the
    objects of their type built from the input's atomic constants; set
    domains are exponential, which is the PSPACE of Theorem 5.1 made
    concrete. *)

open Balg

exception Calc_error of string

type vty = VAtom | VTuple of int | VSet of int

val pp_vty : Format.formatter -> vty -> unit

type term =
  | TVar of string
  | TConst of string
  | TComp of term * int  (** tuple component, 1-based *)

type formula =
  | Rel of string * term  (** membership in a named database set *)
  | Eq of term * term
  | Mem of term * term  (** [t ∈ S] *)
  | Sub of term * term  (** [S ⊆ S'] *)
  | True
  | And of formula * formula
  | Or of formula * formula
  | Not of formula
  | Exists of string * vty * formula
  | Forall of string * vty * formula

type structure = (string * Rel.t) list
(** named sets of flat tuples *)

val active_atoms : structure -> Value.t list

val domain_of : structure -> vty -> Value.t list
(** [dom(T, A)].  @raise Calc_error when a set domain would need more than
    20 base tuples (2{^20}+ objects). *)

type env = (string * Value.t) list

val eval_term : env -> term -> Value.t
val holds : structure -> env -> formula -> bool

val query : structure -> string * vty -> formula -> Rel.t
(** The objects of the given type satisfying the formula with one free
    variable. *)

val sentence : structure -> formula -> bool

val pp_term : Format.formatter -> term -> unit
val pp : Format.formatter -> formula -> unit
