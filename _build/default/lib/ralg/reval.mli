(** Set-semantics (nested relational algebra) evaluation of BALG syntax —
    the other side of Proposition 4.2 and the separation theorems.

    [∪+] and [∪] both become set union, [−]/[∩]/[×]/[P]/[σ]/MAP their set
    versions, [ε] is the identity, [nest] groups into sets, and [Pb] is
    rejected (duplicates are meaningless on sets). *)

open Balg

exception Ralg_error of string

module Env : Map.S with type key = string

type env = Value.t Env.t

val env_of_list : (string * Value.t) list -> env
(** Inputs are deeply converted to sets on entry. *)

val eval : env -> Expr.t -> Value.t
(** The result is always a set value.  @raise Ralg_error on [Pb], dynamic
    type errors, or unbound variables. *)

val member : env -> Expr.t -> Value.t -> bool
(** Membership in the set result (the Prop 4.2 observable). *)
