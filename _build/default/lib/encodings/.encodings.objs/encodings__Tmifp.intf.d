lib/encodings/tmifp.mli: Balg Eval Expr Turing Ty Typecheck Value
