lib/encodings/tmifp.ml: Balg Bignat Derived Eval Expr List Turing Ty Typecheck Value
