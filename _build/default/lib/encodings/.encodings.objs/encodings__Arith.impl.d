lib/encodings/arith.ml: Balg Derived Eval Expr Fun List Ty Value
