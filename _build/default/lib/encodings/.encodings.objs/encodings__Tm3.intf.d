lib/encodings/tm3.mli: Balg Eval Expr Turing Ty
