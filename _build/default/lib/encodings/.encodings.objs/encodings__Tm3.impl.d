lib/encodings/tm3.ml: Balg Derived Eval Expr List Turing Ty Value
