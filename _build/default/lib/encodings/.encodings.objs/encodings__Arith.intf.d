lib/encodings/arith.mli: Balg Eval Expr
