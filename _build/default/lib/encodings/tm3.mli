(** Theorem 6.1: Turing machine acceptance as a single BALG{^3}
    powerset-selection expression.

    The expression powersets the candidate-cell space [P(D × D × A × Q)] and
    filters with the proof's selections: φ1 (the time-1 layer is the encoded
    input), φ2 (consecutive layers differ by a move window from [M(B)]),
    contiguity, and φ3 (the accepting state appears).  The index domain is a
    parameter: the literal domain [1..m] makes a one-move machine evaluable
    end-to-end; {!paper_domain} is the verbatim hyper-exponential
    [D(B) = P(E{^i}(B))] shape for static analysis. *)

open Balg

val marker : string
val window_ty : Ty.t

val literal_domain : int -> Expr.t
(** Integer-bags [1..m], wrapped in 1-tuples. *)

val paper_domain : int -> Expr.t -> Expr.t
(** [paper_domain i b]: the Thm 6.1 domain [P(E{^i}(b))], wrapped. *)

val space_expr : domain:Expr.t -> Turing.Tm.t -> Expr.t
(** The candidate-cell bag [D × D × A × (Q ∪ {g})]. *)

val enc_value : Turing.Tm.t -> space:int -> Turing.Tm.symbol list -> Expr.t
(** [enc(B)]: the bag containing the single legal initial tape. *)

val move_windows : domain:Expr.t -> Turing.Tm.t -> Expr.t
(** [M(B)]: one [<before-window, after-window>] pair per move and position,
    built by MAPping over the domain as in the proof. *)

val tm_expr :
  domain:Expr.t -> Turing.Tm.t -> space:int -> Turing.Tm.symbol list -> Expr.t
(** The full expression; nonempty iff an accepting run exists within the
    domain bounds. *)

val tm_expr_literal : Turing.Tm.t -> space:int -> Turing.Tm.symbol list -> Expr.t

val tm_expr_paper :
  i:int -> Turing.Tm.t -> space:int -> Turing.Tm.symbol list -> Expr.t
(** Verbatim paper shape over a free input bag [B]; for analysis only. *)

val accepts :
  ?config:Eval.config -> Turing.Tm.t -> space:int -> Turing.Tm.symbol list -> bool
(** Evaluates the literal-domain expression. *)
