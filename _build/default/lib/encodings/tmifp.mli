(** Theorem 6.6, executably: BALG{^2} + IFP simulates Turing machines.

    Configuration histories are bags of [<time, cell, symbol, state-or-g>]
    tuples with integer-bag time and cell indices; the inflationary fixpoint
    derives one time layer per iteration and stabilises exactly when the
    machine halts. *)

open Balg

val marker : string
(** The [g] marker for cells not under the head. *)

val cell_ty : Ty.t
val conf_ty : Ty.t

val seed_value : Turing.Tm.t -> space:int -> Turing.Tm.symbol list -> Value.t
(** The literal time-1 configuration: input written from cell 1, blanks up
    to [space], head on cell 1 in the start state. *)

val step_expr : Turing.Tm.t -> Expr.t -> Expr.t
(** The fixpoint body: all applicable move rules of the machine applied to
    the history [x]. *)

val history_expr : Turing.Tm.t -> Expr.t
(** The full computation history as one IFP expression over the seed
    variable [B0]. *)

val accept_expr : Turing.Tm.t -> Expr.t
(** Nonempty iff the machine reaches its accepting state. *)

val final_tape_expr : Turing.Tm.t -> Expr.t
(** The fixpoint time layer, projected to [<cell, symbol, state>] — the
    output-decoding step of the proof. *)

val ones_output_expr : Turing.Tm.t -> Expr.t
(** Number of [1] symbols on the final tape, as an integer-bag. *)

val simulate :
  ?config:Eval.config -> Turing.Tm.t -> space:int -> Turing.Tm.symbol list -> Value.t

val accepts :
  ?config:Eval.config -> Turing.Tm.t -> space:int -> Turing.Tm.symbol list -> bool

val output_ones :
  ?config:Eval.config -> Turing.Tm.t -> space:int -> Turing.Tm.symbol list -> int

val type_env : Typecheck.env
(** Binds [B0 : conf_ty]. *)
