(** Lemma 5.7: bounded arithmetic compiled into the bag algebra.

    Integers are bags, addition is [∪+], multiplication is a product
    followed by restructuring, and bounded quantifiers range over a domain
    bag of integer-bags.  A sentence compiles to a bag of empty tuples,
    nonempty iff the sentence holds under the bounded semantics of
    Definition 5.2. *)

open Balg

type term =
  | TVar of int  (** 1-based, outermost quantifier first *)
  | TConst of int
  | TInput  (** the input integer [n] (the bag [b{_n}]) *)
  | TAdd of term * term
  | TMul of term * term

type formula =
  | Eq of term * term
  | Le of term * term
  | And of formula * formula
  | Or of formula * formula
  | Not of formula
  | Exists of formula  (** binds variable [depth+1] *)
  | Forall of formula

(** {1 Reference semantics} *)

val eval_term : int list -> input:int -> term -> int

val eval_formula : ?env:int list -> bound:int -> input:int -> formula -> bool
(** Quantifiers range over [0..bound]. *)

(** {1 Compilation} *)

val depth_of : formula -> int

val compile : domain1:Expr.t -> input:Expr.t -> depth:int -> formula -> Expr.t
(** The bag of satisfying assignments (a subbag of [D{^depth}], duplicate
    free); [domain1] is a bag of 1-tuples of integer-bags. *)

val compile_sentence : domain1:Expr.t -> input:Expr.t -> formula -> Expr.t
(** @raise Invalid_argument on open formulas. *)

val literal_domain1 : int -> Expr.t
(** The quantification domain [0..bound] as a literal. *)

val paper_domain1 : i:int -> Expr.t -> Expr.t
(** The paper's [D(b) = P(E{^i}(b))] with the powerbag doubling. *)

val holds_via_algebra :
  ?config:Eval.config -> bound:int -> input:int -> formula -> bool
