(* The Theorem 5.2 separation, end to end: build the Lemma 5.4 star graphs
   (Fig. 1), distinguish them with one BALG^2 query, and verify that the
   duplicator wins the pebble game — i.e. that no fixed nested relational
   calculus sentence can make the same distinction for all n.

   Run with:  dune exec examples/pebble_demo.exe *)

module C = Pebble.Construction
module G = Pebble.Game
open Balg

let () =
  print_endline "== the BALG^2 / RALG^2 separation (Theorem 5.2) ==\n";

  (* Fig. 1 *)
  let g6 = C.g_balanced 6 and g6' = C.g_flipped 6 in
  Format.printf "%a\n" C.render_figure g6;
  Printf.printf "Property (1) holds for n = 4..12: %b\n\n"
    (List.for_all C.property_one [ 4; 6; 8; 10; 12 ]);

  (* the distinguishing bag query *)
  let run graph =
    Eval.truthy
      (Eval.eval
         (Eval.env_of_list [ ("G", C.edges_value graph) ])
         (C.phi_query graph))
  in
  Printf.printf "BALG^2 query 'indeg(alpha) > outdeg(alpha)':\n";
  Printf.printf "  on G  (balanced): %b\n" (run g6);
  Printf.printf "  on G' (one edge flipped): %b\n\n" (run g6');

  (* the game: the duplicator survives k moves when n > 2^k *)
  let g4 = C.g_balanced 4 and g4' = C.g_flipped 4 in
  Printf.printf "pebble game (duplicator wins = sets cannot distinguish):\n";
  Printf.printf "  exhaustive search, k=1, n=4: %b\n"
    (G.duplicator_wins_exhaustive ~k:1 g4 g4');
  Printf.printf "  proof strategy,   k=1, n=4: %b\n"
    (G.duplicator_strategy_wins ~k:1 g4 g4');
  Printf.printf "  proof strategy,   k=2, n=6: %b\n"
    (G.duplicator_strategy_wins ~k:2 g6 g6');
  print_newline ();

  print_endline
    "so for every quantifier depth k there are graphs (n > 2^k) that no\n\
     CALC1/RALG^2 sentence of that depth separates — while the single bag\n\
     query above separates all of them.  Counting duplicates is real power."
