(* Quickstart: build nested-bag values, write algebra queries three ways
   (constructors, derived builders, surface syntax), and evaluate them.

   Run with:  dune exec examples/quickstart.exe *)

open Balg

let show name e v = Printf.printf "%-14s %s  =  %s\n" name e (Value.to_string v)

let () =
  print_endline "== balg quickstart ==\n";

  (* 1. Values: bags keep duplicates, with exact multiplicities. *)
  let fruit =
    Value.bag_of_list
      (List.map Value.atom [ "apple"; "apple"; "pear"; "apple"; "kiwi" ])
  in
  Printf.printf "a bag of fruit:      %s\n" (Value.to_string fruit);
  Printf.printf "cardinality:         %s\n" (Bignat.to_string (Value.cardinal fruit));
  Printf.printf "apples:              %s\n\n"
    (Bignat.to_string (Value.count_in (Value.atom "apple") fruit));

  (* 2. Queries via the AST.  The database binds variable names to bags. *)
  let db = [ ("Fruit", fruit) ] in
  let env = Eval.env_of_list db in
  let eval e = Eval.eval env e in

  show "dedup" "dedup(Fruit)" (eval (Expr.Dedup (Expr.Var "Fruit")));
  show "self-union" "Fruit ++ Fruit" (eval Expr.(Var "Fruit" ++ Var "Fruit"));
  show "monus" "Fruit -- dedup(Fruit)"
    (eval Expr.(Var "Fruit" -- Dedup (Var "Fruit")));

  (* 3. The powerset: one occurrence of every subbag. *)
  let tiny = Value.bag_of_list [ Value.atom "x"; Value.atom "x" ] in
  show "powerset" "powerset({{'x,'x}})"
    (Eval.eval (Eval.env_of_list [ ("T", tiny) ]) (Expr.Powerset (Expr.Var "T")));
  show "powerbag" "powerbag({{'x,'x}})"
    (Eval.eval (Eval.env_of_list [ ("T", tiny) ]) (Expr.Powerbag (Expr.Var "T")));
  print_newline ();

  (* 4. The same pipeline through the surface syntax. *)
  let query = "map(x -> <x>, Fruit) -- {{ <'apple>:2 }}" in
  let e = Baglang.Parser.expr_of_string query in
  let ty = Typecheck.infer (Typecheck.env_of_list [ ("Fruit", Ty.Bag Ty.Atom) ]) e in
  Printf.printf "parsed   : %s\n" (Expr.to_string e);
  Printf.printf "type     : %s\n" (Ty.to_string ty);
  Printf.printf "result   : %s\n\n" (Value.to_string (eval e));

  (* 5. Static analysis: where does a query sit in the paper's hierarchy? *)
  let report =
    Analyze.analyze
      (Typecheck.env_of_list [ ("Fruit", Ty.Bag Ty.Atom) ])
      (Expr.Destroy (Expr.Powerset (Expr.Var "Fruit")))
  in
  print_endline "analysis of destroy(powerset(Fruit)):";
  print_endline (Analyze.report_to_string report)
