examples/turing_demo.ml: Analyze Balg Encodings Expr List Printf String Turing Ty Typecheck
