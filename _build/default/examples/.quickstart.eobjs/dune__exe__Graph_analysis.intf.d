examples/graph_analysis.mli:
