examples/quickstart.mli:
