examples/aggregates.mli:
