examples/pebble_demo.mli:
