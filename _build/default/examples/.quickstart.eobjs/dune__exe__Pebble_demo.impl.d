examples/pebble_demo.ml: Balg Eval Format List Pebble Printf
