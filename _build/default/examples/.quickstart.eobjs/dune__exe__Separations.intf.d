examples/separations.mli:
