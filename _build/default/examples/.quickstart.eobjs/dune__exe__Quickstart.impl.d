examples/quickstart.ml: Analyze Baglang Balg Bignat Eval Expr List Printf Ty Typecheck Value
