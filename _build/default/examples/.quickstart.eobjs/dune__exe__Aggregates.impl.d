examples/aggregates.ml: Balg Bignat Derived Eval Expr List Printf Ty Value
