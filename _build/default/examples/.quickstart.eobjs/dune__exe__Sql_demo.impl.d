examples/sql_demo.ml: Baglang Balg Bignat Eval Expr Printf Ty Value
