examples/graph_analysis.ml: Analyze Balg Derived Eval Expr List Printf Ty Typecheck Value
