examples/separations.ml: Baggen Balg Derived Eval Expr List Poly Polyab Printf Random Ty Value
