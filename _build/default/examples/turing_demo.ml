(* Turing machines inside the algebra: the constructive content of
   Theorems 6.1 and 6.6.

   - Theorem 6.6: BALG + inflationary fixpoint runs a machine by growing the
     configuration history one time layer per iteration.  We simulate the
     unary parity decider and the unary successor, reading the successor's
     output off the final tape — a Turing computation performed entirely by
     bag operations.

   - Theorem 6.1: for a one-move machine the full powerset encoding (select
     the accepting runs out of P(D x D x A x Q)) is small enough to evaluate
     exactly.

   Run with:  dune exec examples/turing_demo.exe *)

open Balg
module Tm = Turing.Tm
module Tmifp = Encodings.Tmifp
module Tm3 = Encodings.Tm3

let () =
  print_endline "== Theorem 6.6: machines via the inflationary fixpoint ==\n";

  Printf.printf "unary parity through the algebra:\n";
  List.iter
    (fun n ->
      Printf.printf "  |input| = %d  ->  %s\n" n
        (if Tmifp.accepts Tm.parity_even ~space:(n + 2) (Tm.unary n) then
           "accepted (even)"
         else "rejected (odd)"))
    [ 0; 1; 2; 3; 4; 5 ];
  print_newline ();

  Printf.printf "unary successor through the algebra (output read from the \
                 final tape):\n";
  List.iter
    (fun n ->
      Printf.printf "  succ(%d) = %d\n" n
        (Tmifp.output_ones Tm.unary_successor ~space:(n + 2) (Tm.unary n)))
    [ 0; 2; 4 ];
  print_newline ();

  (* The expression itself is ordinary algebra: print a prefix of it. *)
  let e = Tmifp.accept_expr Tm.parity_even in
  let s = Expr.to_string e in
  Printf.printf "the accepting query is a single BALG+IFP expression of %d \
                 AST nodes;\nits first 200 characters:\n  %s...\n\n"
    (Expr.size e)
    (String.sub s 0 (min 200 (String.length s)));

  print_endline "== Theorem 6.1: machines via the powerset ==\n";
  Printf.printf "tiny one-move machine, input '1 1':\n";
  Printf.printf "  accepting run found by selecting over P(DxDxAxQ): %b\n"
    (Tm3.accepts Tm.tiny_step ~space:2 [ "1"; "1" ]);
  let stuck = { Tm.tiny_step with Tm.delta = (fun _ -> None) } in
  Printf.printf "  same space, machine with no moves: %b\n\n"
    (Tm3.accepts stuck ~space:2 [ "1"; "1" ]);

  (* The verbatim paper shape with D(B) = P(E^i(B)) is hyper-exponential; we
     typecheck and classify it instead of running it. *)
  let paper = Tm3.tm_expr_paper ~i:1 Tm.tiny_step ~space:2 [ "1"; "1" ] in
  let env = Typecheck.env_of_list [ ("B", Ty.nat) ] in
  Printf.printf "verbatim Thm 6.1 expression over D(B) = P(E^1(B)):\n";
  print_endline (Analyze.report_to_string (Analyze.analyze env paper))
