(** The admission-controlled evaluation executor.

    Requests are evaluated on a fixed set of dedicated worker {e domains}
    — never on the session I/O threads, whose shared domain-local state
    (the evaluator's memo tables, the trace ring) assumes one evaluation
    at a time per domain.  A submitted job waits in a strict-FIFO queue; a
    worker takes the head job only when the job's {e fuel weight} fits
    under the configured ceiling alongside everything already in flight,
    so aggregate admitted fuel never exceeds the ceiling.  Over-budget
    requests are observably {e queued} (they wait) or {e rejected} (their
    weight alone exceeds the ceiling, or the queue is full) — never
    evaluated past the ceiling.

    The waiting request's {!Balg.Budget} account is created by the caller
    {e unarmed}: the worker {!Balg.Budget.arm}s it at dequeue, so queue
    wait never burns the request's wall-clock deadline (the admission /
    deadline seam this module exists to keep honest).

    The [server.worker] {!Balg.Fault} site simulates worker death at job
    pickup: the job fails with a structured error, the dying worker spawns
    its own replacement (supervised restart), and the queue keeps
    draining. *)

open Balg

type outcome =
  [ `Ok of Value.t * Ty.t  (** evaluated result and its type *)
  | `Verdict of Budget.exhaustion  (** structured budget verdict *)
  | `Fail of string  (** category-prefixed error, e.g. ["eval: ..."] *) ]

type stats = {
  s_queue_us : int;  (** admission-queue wait, submit to dequeue *)
  s_enq_us : float;  (** enqueue instant on the {!Balg.Obs.now_us} clock *)
  s_arm_us : float;  (** dequeue/arm instant on the same clock *)
}
(** Queue accounting for a completed job, so the session thread can
    retro-date a queue-wait span ([emit ~ts_us]) and the slow-query log
    can attribute latency. *)

type t

val create : ceiling:int -> max_queue:int -> workers:int -> unit -> t
(** Spawn [workers] (>= 1) evaluation domains.  [ceiling] is the maximum
    aggregate fuel weight in flight; [max_queue] bounds the waiting
    line. *)

val submit :
  t ->
  weight:int ->
  budget:Budget.t ->
  run:(unit -> outcome) ->
  (outcome * stats, string) result
(** Enqueue a job and block the calling (session) thread until a worker
    completes it.  [budget] must be {e unarmed} ({!Balg.Budget.create});
    the worker arms it at dequeue, immediately before calling [run] on
    its own domain.  [Error] is an admission rejection (weight above the
    ceiling, queue full, shutdown) or an injected worker death — the job
    was not, or not fully, evaluated, and no queue accounting exists. *)

val inflight : t -> int
(** Aggregate fuel weight of currently running jobs. *)

val queue_depth : t -> int
val worker_deaths : t -> int

val shutdown : t -> unit
(** Stop taking work, fail queued jobs with a shutdown error, join every
    worker domain (including respawned ones). *)
