(** The shared bag store behind [balgd]: copy-on-write reads, a
    write-ahead log, periodic snapshot compaction.

    {b Reads are snapshot-isolated for free.}  The store's contents are an
    immutable {!Baglang.Bagdb.t}; {!snapshot} hands out the current list
    and a writer {e publishes} a fresh list — a request that captured a
    snapshot keeps evaluating against it no matter how many writes land
    meanwhile.

    {b Writes are logged before they are visible.}  {!apply} renders the
    operation as one WAL record (a single [.bagdb] declaration line, or a
    [drop NAME] line), appends and flushes it, and only then publishes the
    new contents.  Recovery replays the snapshot file through the
    validating loader and then the WAL record by record with the same
    parser — a torn or corrupted record surfaces as a located
    {!Baglang.Bagdb.Db_error}, replay stops there, and the file is
    truncated back to the surviving prefix, so a killed server restarts
    into exactly the state the surviving WAL prefix describes.

    {b Failure model.}  The [wal.append] {!Balg.Fault} site fires inside
    {!apply}: an injected fault writes a deliberately torn record (a
    deterministic prefix of the real one), the operation reports an error
    without publishing, and the store goes {e read-only} until restart —
    the same degradation a production log takes on an I/O error.  Recovery
    then drops the torn record, landing on the pre-fault state. *)

open Balg
module Bagdb = Baglang.Bagdb

type op =
  | Def of string * Ty.t * Value.t
      (** define or replace one named, typed bag *)
  | Drop of string  (** remove a bag; an error if the name is unknown *)

type t

val open_store :
  ?compact_bytes:int -> ?seed:Bagdb.t -> dir:string option -> unit -> t
(** [dir = None] is a purely in-memory store (no WAL, no snapshot).  With
    a directory: load [snapshot.bagdb] if present (else start from
    [seed], writing it as the initial snapshot), replay [wal.log], and
    truncate any torn tail.  [compact_bytes] (default 1 MiB) is the WAL
    size that triggers compaction after an append.
    @raise Bagdb.Db_error when the snapshot file itself is corrupt —
    recovery is validating, not best-effort, for the part that must be
    intact.  WAL corruption never raises: the prefix survives. *)

val snapshot : t -> Bagdb.t
(** The current contents — an immutable value, safe to evaluate against
    from any thread or domain while writes continue. *)

val revision : t -> int
(** Bumped by every applied write (0 after open). *)

val recovered_records : t -> int
(** WAL records replayed by {!open_store}. *)

val truncated_bytes : t -> int
(** Bytes of torn/corrupt WAL tail dropped by {!open_store}. *)

val read_only : t -> bool
(** True once a WAL append has failed (injected or real); every later
    {!apply} is rejected until restart. *)

val apply : t -> op -> (unit, string) result
(** Validate, log, publish — in that order, serialized across sessions.
    [Error] leaves the published contents unchanged. *)

val compact : t -> (unit, string) result
(** Write the current contents as the snapshot file (atomic rename) and
    start a fresh, empty WAL.  A no-op for in-memory stores. *)

val wal_size : t -> int
(** Bytes in the current WAL (0 for in-memory stores). *)

val close : t -> unit
(** Flush and close the WAL channel.  The store must not be used after. *)
