(** The shared bag store behind [balgd]: copy-on-write reads, a
    checksummed write-ahead log, periodic snapshot compaction, and the
    tail API replication ships from.

    {b Reads are snapshot-isolated for free.}  The store's contents are an
    immutable {!Baglang.Bagdb.t}; {!snapshot} hands out the current list
    and a writer {e publishes} a fresh list — a request that captured a
    snapshot keeps evaluating against it no matter how many writes land
    meanwhile.

    {b Writes are logged before they are visible.}  {!apply} renders the
    operation as one WAL record (a single [.bagdb] declaration line, or a
    [drop NAME] line), frames it with its {e global log offset}, byte
    length and CRC-32 (see {!Frame}), appends and flushes it, and only
    then publishes the new contents.  The log offset is a 1-based record
    sequence number, monotone across compactions: [wal.base] in the store
    directory records the offset the snapshot covers, so recovery and
    followers agree on positions no matter how often either end compacts.

    {b Recovery is validating, and tells torn from corrupt.}  Restart
    loads [snapshot.bagdb], then replays [wal.log] frame by frame: each
    frame's length and CRC are verified and its offset must extend the
    sequence (frames at or below the snapshot's base are skipped — they
    are stale leftovers of a crash between compaction's base update and
    its WAL truncate, and idempotent to ignore).  A final unterminated
    line is a {e torn tail} (normal: a crash cut an append); a terminated
    frame that fails any check is {e detected corruption}
    ({!corruption_detected}).  Either way replay stops there and the file
    is truncated back to the surviving prefix.

    {b Failure model.}  The [wal.append] {!Balg.Fault} site fires inside
    {!apply}: an injected fault writes a deliberately torn record (a
    deterministic prefix of the real one), the operation reports an error
    without publishing, and the store goes {e read-only} until restart —
    the same degradation a production log takes on an I/O error. *)

open Balg
module Bagdb = Baglang.Bagdb

type op =
  | Def of string * Ty.t * Value.t
      (** define or replace one named, typed bag *)
  | Drop of string  (** remove a bag; an error if the name is unknown *)

type t

val open_store :
  ?compact_bytes:int -> ?seed:Bagdb.t -> dir:string option -> unit -> t
(** [dir = None] is a purely in-memory store (no WAL, no snapshot; the
    log offset and tail still advance, so a primary can serve followers
    from memory).  With a directory: load [snapshot.bagdb] if present
    (else start from [seed], writing it as the initial snapshot), replay
    [wal.log], and truncate any torn or corrupt tail.  [compact_bytes]
    (default 1 MiB) is the WAL size that triggers compaction after an
    append.
    @raise Bagdb.Db_error when the snapshot or [wal.base] file itself is
    corrupt — recovery is validating, not best-effort, for the part that
    must be intact.  WAL corruption never raises: the prefix survives. *)

val snapshot : t -> Bagdb.t
(** The current contents — an immutable value, safe to evaluate against
    from any thread or domain while writes continue. *)

val state : t -> Bagdb.t * int
(** Contents and log offset, captured atomically — the pair a follower
    bootstrap needs. *)

val revision : t -> int
(** Bumped by every applied write (0 after open). *)

val log_seq : t -> int
(** The durable log offset: the global sequence number of the last
    record appended and flushed.  Monotone across compactions and
    restarts. *)

val base_seq : t -> int
(** The offset the current snapshot covers; records at or below it are
    no longer in the WAL (or the in-memory tail). *)

val recovered_records : t -> int
(** WAL records replayed by {!open_store}. *)

val truncated_bytes : t -> int
(** Bytes of torn/corrupt WAL tail dropped by {!open_store}. *)

val corruption_detected : t -> bool
(** True when recovery stopped at a terminated frame that failed its
    CRC, length, header or sequence check — silent corruption, as
    opposed to the clean torn tail of an interrupted append. *)

val read_only : t -> bool
(** True once a WAL append has failed (injected or real); every later
    write is rejected until restart. *)

val apply : t -> op -> (unit, string) result
(** Validate, log, publish — in that order, serialized across sessions.
    [Error] leaves the published contents unchanged. *)

val op_of_payload : string -> (op, string) result
(** Parse one WAL record payload (the framed line's body) through the
    validating loader — the follower-side gate for shipped records. *)

val apply_replicated : t -> seq:int -> op -> (unit, string) result
(** Apply a record shipped from a primary at log offset [seq].  A
    duplicate delivery ([seq] at or below {!log_seq}) is [Ok] and a
    no-op; a sequence gap is an [Error] (the follower must resync).
    The record is framed, appended and flushed exactly like a local
    write, so the follower's log is byte-compatible with the primary's
    at every shared offset. *)

val install_snapshot : t -> Bagdb.t -> seq:int -> (unit, string) result
(** Replace the whole store with a bootstrap snapshot taken at log
    offset [seq]: persist it, seal the WAL (fresh, empty, based at
    [seq]) and publish.  The follower-side entry point of replication. *)

val read_from :
  ?synced:bool ->
  t ->
  after:int ->
  [ `Records of (int * string) list | `Snapshot of Bagdb.t * int ]
(** The replication tail: every record with offset strictly greater than
    [after], in order, as [(offset, payload)] pairs — or [`Snapshot] when
    the follower must bootstrap from current state instead: [after]
    predates {!base_seq} (compaction already folded those records away),
    or [after = 0] on a follower's initial request ([synced = false], the
    default — the log's records apply on top of the offset-0 state, which
    is the seed snapshot, not the empty database).  Pass [synced:true]
    once the follower holds a shipped snapshot: then only [after < base]
    forces a bootstrap, so a ship loop resumed at offset 0 streams the
    tail instead of re-shipping snapshots forever. *)

val wait_change : t -> seen:int -> timeout_s:float -> bool
(** Block until {!log_seq} exceeds [seen] (true) or the timeout lapses
    (false) — the ship loop's subscription point.  (Polling under the
    hood: the stdlib [Condition] has no timed wait.) *)

val compact : t -> (unit, string) result
(** Write the current contents as the snapshot file (atomic rename,
    directory fsynced), record the covered offset in [wal.base] and
    start a fresh, empty WAL.  For in-memory stores this just trims the
    replication tail. *)

val wal_size : t -> int
(** Bytes in the current WAL (0 for in-memory stores). *)

val close : t -> unit
(** Flush and close the WAL channel.  The store must not be used after. *)
