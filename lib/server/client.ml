(* The balgd wire-protocol client; see client.mli. *)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> raise Not_found
    | h -> h.Unix.h_addr_list.(0))

let connect ~host ~port =
  match
    let addr = resolve host in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (addr, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    {
      fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      closed = false;
    }
  with
  | c -> Ok c
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s:%d: %s" host port
           (Unix.error_message e))
  | exception Not_found -> Error (Printf.sprintf "unknown host %s" host)

(* Multi-line responses are decided by the command, not sniffed from the
   reply: only [metrics] and [dump] answer with a "."-terminated block. *)
let multi_line cmd =
  let head =
    match String.index_opt cmd ' ' with
    | Some i -> String.sub cmd 0 i
    | None -> cmd
  in
  String.equal head "metrics" || String.equal head "dump"

let request c cmd =
  if c.closed then Error "connection closed"
  else
    match
      output_string c.oc cmd;
      output_char c.oc '\n';
      flush c.oc;
      if multi_line (String.trim cmd) then begin
        let b = Buffer.create 256 in
        let rec read_block first =
          let line = strip_cr (input_line c.ic) in
          if String.equal line "." then ()
          else begin
            if not first then Buffer.add_char b '\n';
            Buffer.add_string b line;
            read_block false
          end
        in
        read_block true;
        Buffer.contents b
      end
      else strip_cr (input_line c.ic)
    with
    | reply -> Ok reply
    | exception End_of_file -> Error "connection closed by server"
    | exception Sys_error msg -> Error msg
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let close c =
  if not c.closed then begin
    c.closed <- true;
    (try
       output_string c.oc "quit\n";
       flush c.oc
     with Sys_error _ | Unix.Unix_error _ -> ());
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let http_get ~host ~port path =
  match connect ~host ~port with
  | Error _ as e -> e
  | Ok c -> (
      match
        output_string c.oc
          (Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n" path host);
        flush c.oc;
        let status = strip_cr (input_line c.ic) in
        (* headers until the blank line, then the body to EOF *)
        (try
           while not (String.equal (strip_cr (input_line c.ic)) "") do
             ()
           done
         with End_of_file -> ());
        let b = Buffer.create 1024 in
        (try
           while true do
             Buffer.add_channel b c.ic 1
           done
         with End_of_file -> ());
        (status, Buffer.contents b)
      with
      | status, body ->
          c.closed <- true;
          (try Unix.close c.fd with Unix.Unix_error _ -> ());
          if
            String.length status >= 12
            && String.equal (String.sub status 9 3) "200"
          then Ok body
          else Error ("http: " ^ status)
      | exception End_of_file ->
          close c;
          Error "connection closed by server"
      | exception Sys_error msg ->
          close c;
          Error msg
      | exception Unix.Unix_error (e, _, _) ->
          close c;
          Error (Unix.error_message e))
