(* The balgd wire-protocol client; see client.mli. *)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> raise Not_found
    | h -> h.Unix.h_addr_list.(0))

(* A timed connect: non-blocking connect, poll writability with select,
   then read SO_ERROR for the real outcome — the portable shape of
   "connect with a deadline". *)
let timed_connect fd addr timeout_s =
  Unix.set_nonblock fd;
  (try Unix.connect fd addr with
  | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
      match Unix.select [] [ fd ] [] timeout_s with
      | _, [], _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
      | _ -> (
          match Unix.getsockopt_error fd with
          | None -> ()
          | Some e -> raise (Unix.Unix_error (e, "connect", "")))));
  Unix.clear_nonblock fd

let connect ?timeout_s ~host ~port () =
  match
    let addr = resolve host in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       (match timeout_s with
       | None -> Unix.connect fd (Unix.ADDR_INET (addr, port))
       | Some s ->
           timed_connect fd (Unix.ADDR_INET (addr, port)) s;
           (* reads and writes inherit the same deadline: a stalled
              server surfaces as a timeout error, never a hung client *)
           Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
           Unix.setsockopt_float fd Unix.SO_SNDTIMEO s)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    {
      fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      closed = false;
    }
  with
  | c -> Ok c
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s:%d: %s" host port
           (Unix.error_message e))
  | exception Not_found -> Error (Printf.sprintf "unknown host %s" host)

(* Multi-line responses are decided by the command, not sniffed from the
   reply: only [metrics] and [dump] answer with a "."-terminated block. *)
let multi_line cmd =
  let head =
    match String.index_opt cmd ' ' with
    | Some i -> String.sub cmd 0 i
    | None -> cmd
  in
  String.equal head "metrics" || String.equal head "dump"

let request c cmd =
  if c.closed then Error "connection closed"
  else
    match
      output_string c.oc cmd;
      output_char c.oc '\n';
      flush c.oc;
      if multi_line (String.trim cmd) then begin
        let b = Buffer.create 256 in
        let rec read_block first =
          let line = strip_cr (input_line c.ic) in
          if String.equal line "." then ()
          else begin
            if not first then Buffer.add_char b '\n';
            Buffer.add_string b line;
            read_block false
          end
        in
        read_block true;
        Buffer.contents b
      end
      else strip_cr (input_line c.ic)
    with
    | reply -> Ok reply
    | exception End_of_file -> Error "connection closed by server"
    | exception Sys_error msg -> Error msg
    (* SO_RCVTIMEO expiring surfaces as EAGAIN from the read; channel
       reads report it as Sys_blocked_io *)
    | exception Sys_blocked_io -> Error "read timed out"
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error "read timed out"
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let raw c = (c.ic, c.oc)

let shutdown c =
  try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let close c =
  if not c.closed then begin
    c.closed <- true;
    (try
       output_string c.oc "quit\n";
       flush c.oc
     with Sys_error _ | Unix.Unix_error _ -> ());
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let http_get ?timeout_s ~host ~port path =
  match connect ?timeout_s ~host ~port () with
  | Error _ as e -> e
  | Ok c -> (
      match
        output_string c.oc
          (Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n" path host);
        flush c.oc;
        let status = strip_cr (input_line c.ic) in
        (* headers until the blank line, then the body to EOF *)
        (try
           while not (String.equal (strip_cr (input_line c.ic)) "") do
             ()
           done
         with End_of_file -> ());
        (* chunked body reads: a /metrics scrape is kilobytes, and a
           byte-at-a-time channel refill costs a buffer-management pass
           per byte — read in 8 KiB slabs instead *)
        let b = Buffer.create 1024 in
        let chunk = Bytes.create 8192 in
        let rec drain () =
          let n = input c.ic chunk 0 (Bytes.length chunk) in
          if n > 0 then begin
            Buffer.add_subbytes b chunk 0 n;
            drain ()
          end
        in
        (try drain () with End_of_file -> ());
        (status, Buffer.contents b)
      with
      | status, body ->
          c.closed <- true;
          (try Unix.close c.fd with Unix.Unix_error _ -> ());
          if
            String.length status >= 12
            && String.equal (String.sub status 9 3) "200"
          then Ok body
          else Error ("http: " ^ status)
      | exception End_of_file ->
          close c;
          Error "connection closed by server"
      | exception Sys_error msg ->
          close c;
          Error msg
      | exception Sys_blocked_io ->
          close c;
          Error "read timed out"
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          close c;
          Error "read timed out"
      | exception Unix.Unix_error (e, _, _) ->
          close c;
          Error (Unix.error_message e))

(* --- retry policy ---------------------------------------------------------- *)

(* Deterministic jitter in [0.5, 1.0]: a pure hash of the attempt number
   alone, so the same retry sequence replays the same delays (the test
   and chaos-replay posture the Fault module takes, applied to time). *)
let jitter attempt =
  let h = Hashtbl.hash (attempt * 2654435761) land 0xFFFF in
  0.5 +. (0.5 *. float_of_int h /. 65536.)

let backoff_delay ?(base_s = 0.1) ?(cap_s = 5.0) ~attempt () =
  let exp = base_s *. (2. ** float_of_int (min (max 0 (attempt - 1)) 16)) in
  Float.min cap_s exp *. jitter attempt

let retrying ~attempts ?base_s ?cap_s ?(sleep = Unix.sleepf) f =
  let rec go k =
    match f k with
    | Ok _ as ok -> ok
    | Error _ as e ->
        if k >= attempts then e
        else begin
          sleep (backoff_delay ?base_s ?cap_s ~attempt:(k + 1) ());
          go (k + 1)
        end
  in
  go 0
