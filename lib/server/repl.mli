(** WAL-shipping replication: the primary's ship loop and the follower's
    catch-up/apply loop, connected by the wire protocol's [sync] command.

    {b Model.}  The unit of replication is the framed WAL record
    (see {!Frame}): the line a primary appends to its log is the line it
    ships, and the line a follower appends to {e its} log — the two logs
    are byte-compatible at every shared offset, so a promoted follower's
    WAL needs no rewriting.  Positions are global record sequence
    numbers, monotone across compactions on either side.

    {b Wire shape.}  A follower connects like any client and sends
    [sync <offset>] with its own durable offset.  The primary answers
    [ok <current-offset>] and then streams lines, each one of:
    {v
    @<seq> <len> <crc32> <payload>     a framed record (disk format)
    hb <seq>                           heartbeat: alive and caught up
    snapshot <seq>                     bootstrap block: the rendered
    <declaration lines...>             store follows, terminated by a
    .                                  lone "." — offset [seq] inclusive
    v}
    A [snapshot] block is sent whenever the follower's position predates
    what the primary's WAL still covers (fresh follower, or the primary
    compacted past it) — including mid-stream.

    {b Failure model.}  Three {!Balg.Fault} sites: [repl.ship] (the
    primary cuts the feed before a batch), [repl.connect] (a follower
    connect attempt fails), [repl.apply] (a follower apply fails and
    forces a resync).  The follower reconnects forever with capped
    exponential backoff and deterministic jitter
    ({!Client.backoff_delay}); after [lost_after] consecutive failures
    {!status} reports it {e lost}, which the server surfaces as a 503 on
    [/healthz]. *)

type params = {
  backoff_min_s : float;  (** reconnect backoff floor (default 0.1) *)
  backoff_max_s : float;  (** reconnect backoff cap (default 5.0) *)
  lost_after : int;
      (** consecutive failures before the follower reports itself lost
          (default 8) *)
  read_timeout_s : float;
      (** follower-side socket timeout; with heartbeats every
          [hb_interval_s] a healthy feed never trips it (default 3.0) *)
  hb_interval_s : float;  (** primary heartbeat period when idle (default 0.5) *)
}

val default_params : params

val serve_sync :
  store:Store.t ->
  params:params ->
  stopping:(unit -> bool) ->
  after:int ->
  out_channel ->
  unit
(** The primary side: stream the log tail to one follower, starting
    after offset [after], until the connection drops, [stopping] turns
    true, or the [repl.ship] fault cuts the feed.  Runs on the session's
    own thread; the caller closes the connection when this returns. *)

type follower

type status = {
  connected : bool;  (** a sync stream is currently up *)
  applied_seq : int;  (** the follower store's durable offset *)
  primary_seq : int;  (** last offset heard from the primary (frame or hb) *)
  lag : int;  (** [primary_seq - applied_seq], never negative *)
  reconnects : int;  (** connection attempts after the first *)
  failures : int;  (** consecutive failed attempts right now *)
  lost : bool;  (** [failures >= lost_after]: past the backoff horizon *)
}

val start : store:Store.t -> host:string -> port:int -> params:params -> follower
(** Spawn the follower thread: connect, sync, apply shipped records
    through the validating loader into [store], reconnect with backoff
    forever.  Never writes to [store] except via
    {!Store.apply_replicated} / {!Store.install_snapshot}. *)

val status : follower -> status

val stop : follower -> unit
(** Stop the loop and join the thread: wakes a blocked read by shutting
    the connection down.  Idempotent.  This is the first half of
    promotion; the server then seals the store and flips its role. *)
