(* Checksummed WAL record framing; see frame.mli for the format. *)

(* IEEE CRC-32, table-driven.  OCaml's native ints are 63-bit on every
   platform we build for, so the 32-bit arithmetic fits without Int32
   boxing. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

type record = { seq : int; payload : string }

let encode ~seq payload =
  if String.contains payload '\n' then
    invalid_arg "Frame.encode: payload contains a newline";
  Printf.sprintf "@%d %d %08x %s\n" seq (String.length payload) (crc32 payload)
    payload

let decode_line line =
  match
    Scanf.sscanf line "@%d %d %x %n" (fun seq len crc pos -> (seq, len, crc, pos))
  with
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
      Error "bad frame header"
  | seq, len, crc, pos ->
      let payload = String.sub line pos (String.length line - pos) in
      if String.length payload <> len then
        Error
          (Printf.sprintf "length mismatch: header says %d, payload is %d" len
             (String.length payload))
      else if crc32 payload <> crc then
        Error
          (Printf.sprintf "crc mismatch: header says %08x, payload is %08x" crc
             (crc32 payload))
      else if seq <= 0 then Error "non-positive sequence number"
      else Ok { seq; payload }

let decode_at content ~pos =
  match String.index_from_opt content pos '\n' with
  | None -> Error `Torn
  | Some nl -> (
      match decode_line (String.sub content pos (nl - pos)) with
      | Ok r -> Ok (r, nl + 1)
      | Error why -> Error (`Corrupt why))
