(* The shared cross-query result cache; see cache.mli for the model. *)

open Balg
module Bagdb = Baglang.Bagdb

let m_hits =
  Metrics.counter Metrics.default "balg_server_cache_hits_total"
    ~help:"Result-cache lookups answered without evaluation"

let m_misses =
  Metrics.counter Metrics.default "balg_server_cache_misses_total"
    ~help:"Result-cache lookups that fell through to evaluation"

let m_invalidations =
  Metrics.counter Metrics.default "balg_server_cache_invalidations_total"
    ~help:"Result-cache entries dropped by per-relation invalidation"

let m_evictions =
  Metrics.counter Metrics.default "balg_server_cache_evictions_total"
    ~help:"Result-cache entries evicted by the capacity bound"

let g_entries =
  Metrics.gauge Metrics.default "balg_server_cache_entries"
    ~help:"Result-cache entries currently held"

let g_hit_rate =
  Metrics.gauge Metrics.default "balg_server_cache_hit_rate"
    ~help:"Result-cache hits / lookups since start (0 when no lookups)"

(* Per-relation invalidation counters surface in the registry lazily —
   relation names are client data, so the instruments are created on
   first invalidation of each relation (find-or-create is idempotent). *)
let sanitize_label s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    s

let m_rel_invalidations rel =
  Metrics.counter Metrics.default
    ("balg_server_cache_rel_invalidations_total_" ^ sanitize_label rel)
    ~help:("Result-cache entries invalidated by writes to " ^ rel)

type entry = {
  e_rels : (string * Value.t) list;  (* referenced relations at fill time *)
  e_value : Value.t;
  e_ty : Ty.t;
}

type t = {
  capacity : int;
  mu : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  by_rel : (string, string list ref) Hashtbl.t;  (* relation -> keys *)
  inval_by_rel : (string, int ref) Hashtbl.t;  (* relation -> entries dropped *)
  fifo : string Queue.t;  (* insertion order, for eviction *)
}

let create ?(capacity = 512) () =
  {
    capacity = max 1 capacity;
    mu = Mutex.create ();
    tbl = Hashtbl.create 64;
    by_rel = Hashtbl.create 64;
    inval_by_rel = Hashtbl.create 16;
    fifo = Queue.create ();
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let key ~engine ~mode ~db e =
  let fv = Expr.free_vars e in
  let rels =
    List.filter_map
      (fun (n, _ty, v) -> if Expr.Vars.mem n fv then Some (n, v) else None)
      db
  in
  let b = Buffer.create 128 in
  Buffer.add_string b (Veval.engine_to_string engine);
  Buffer.add_char b '|';
  Buffer.add_string b (Opt.mode_to_string mode);
  Buffer.add_char b '|';
  Buffer.add_string b (Expr.to_string e);
  List.iter
    (fun (n, v) ->
      Buffer.add_string b
        (Printf.sprintf "|%s#%d#%d" n (Value.hash v) (Value.size_tag v)))
    rels;
  (Buffer.contents b, rels)

let rels_match stored current =
  List.length stored = List.length current
  && List.for_all2
       (fun (n, v) (m, w) -> String.equal n m && Value.equal v w)
       stored current

let find t ~key ~rels =
  let r =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some e when rels_match e.e_rels rels -> Some (e.e_value, e.e_ty)
        | _ -> None)
  in
  Metrics.incr (match r with Some _ -> m_hits | None -> m_misses);
  let hits = float_of_int (Metrics.counter_value m_hits) in
  let total = hits +. float_of_int (Metrics.counter_value m_misses) in
  Metrics.set_gauge g_hit_rate (if total > 0. then hits /. total else 0.);
  r

(* Called with the mutex held. *)
let drop_key_locked t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.tbl k;
      List.iter
        (fun (n, _) ->
          match Hashtbl.find_opt t.by_rel n with
          | None -> ()
          | Some keys -> (
              keys := List.filter (fun k' -> not (String.equal k' k)) !keys;
              match !keys with
              | [] -> Hashtbl.remove t.by_rel n
              | _ -> ()))
        e.e_rels

let add t ~key ~rels v ty =
  locked t (fun () ->
      if not (Hashtbl.mem t.tbl key) then begin
        while Hashtbl.length t.tbl >= t.capacity do
          match Queue.take_opt t.fifo with
          | None -> Hashtbl.reset t.tbl (* unreachable: fifo mirrors tbl *)
          | Some old ->
              if Hashtbl.mem t.tbl old then begin
                drop_key_locked t old;
                Metrics.incr m_evictions
              end
        done;
        Hashtbl.add t.tbl key { e_rels = rels; e_value = v; e_ty = ty };
        Queue.push key t.fifo;
        List.iter
          (fun (n, _) ->
            match Hashtbl.find_opt t.by_rel n with
            | Some keys -> keys := key :: !keys
            | None -> Hashtbl.add t.by_rel n (ref [ key ]))
          rels;
        Metrics.set_gauge g_entries (float_of_int (Hashtbl.length t.tbl))
      end)

let invalidate t rel =
  locked t (fun () ->
      match Hashtbl.find_opt t.by_rel rel with
      | None -> ()
      | Some keys ->
          let ks = !keys in
          List.iter (drop_key_locked t) ks;
          let n = List.length ks in
          Metrics.incr ~by:n m_invalidations;
          (match Hashtbl.find_opt t.inval_by_rel rel with
          | Some c -> c := !c + n
          | None -> Hashtbl.add t.inval_by_rel rel (ref n));
          Metrics.incr ~by:n (m_rel_invalidations rel);
          Metrics.set_gauge g_entries (float_of_int (Hashtbl.length t.tbl)))

let invalidations_by_rel t =
  locked t (fun () ->
      Hashtbl.fold (fun rel c acc -> (rel, !c) :: acc) t.inval_by_rel []
      |> List.sort compare)

let length t = locked t (fun () -> Hashtbl.length t.tbl)
