(* The concurrent bag-database server; see server.mli for the model. *)

open Balg
module Parser = Baglang.Parser
module Lexer = Baglang.Lexer
module Bagdb = Baglang.Bagdb

(* Injection sites.  [server.accept]: the freshly accepted connection is
   dropped on the floor (a transient accept failure); [server.session]:
   the session dies before serving its next request (a crashed
   per-connection handler) — every other session must keep working. *)
let accept_site = Fault.register "server.accept"
let session_site = Fault.register "server.session"

let m_sessions =
  Metrics.counter Metrics.default "balg_server_sessions_total"
    ~help:"Client connections accepted"

let m_session_faults =
  Metrics.counter Metrics.default "balg_server_session_faults_total"
    ~help:"Sessions killed by the server.accept/server.session fault sites"

let m_requests =
  Metrics.counter Metrics.default "balg_server_requests_total"
    ~help:"Protocol requests served (all commands)"

let m_evals =
  Metrics.counter Metrics.default "balg_server_evals_total"
    ~help:"eval requests that reached evaluation (cache misses)"

let m_http =
  Metrics.counter Metrics.default "balg_server_http_requests_total"
    ~help:"HTTP requests served (metrics scrapes, health checks)"

let h_request_ns =
  Metrics.histogram Metrics.default "balg_server_request_ns"
    ~help:"Wall-clock time of evaluated requests (nanoseconds)"

let g_open_sessions =
  Metrics.gauge Metrics.default "balg_server_open_sessions"
    ~help:"Client connections currently open"

let g_role =
  Metrics.gauge Metrics.default "balg_server_role"
    ~help:"Replication role: 1 primary (writable), 0 follower (read-only)"

type config = {
  host : string;
  port : int;
  store_dir : string option;
  seed_db : Bagdb.t;
  ceiling : int;
  max_queue : int;
  workers : int;
  default_fuel : int;
  engine : Veval.engine;
  optimize : Opt.mode;
  cache_capacity : int;
  compact_bytes : int;
  follow : (string * int) option;
  repl_params : Repl.params;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7421;
    store_dir = None;
    seed_db = [];
    ceiling = 32_000_000;
    max_queue = 64;
    workers = 4;
    default_fuel = 4_000_000;
    engine = Veval.Tree;
    optimize = Opt.Off;
    cache_capacity = 512;
    compact_bytes = 1 lsl 20;
    follow = None;
    repl_params = Repl.default_params;
  }

type session = {
  s_id : int;
  mutable s_limits : Budget.limits;
  mutable s_engine : Veval.engine;
  mutable s_mode : Opt.mode;
}

type t = {
  cfg : config;
  store : Store.t;
  cache : Cache.t;
  exec : Exec.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  mutable accept_thread : Thread.t option;
  reg_mu : Mutex.t;
  reg : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  mutable next_id : int;
  mutable stopping : bool;
  mutable stopped : bool;
  stop_mu : Mutex.t;
  stop_cv : Condition.t;
  role_mu : Mutex.t;
  mutable role : [ `Primary | `Follower ];
  mutable follower : Repl.follower option;
}

(* --- small helpers --------------------------------------------------------- *)

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let after prefix s =
  String.sub s (String.length prefix) (String.length s - String.length prefix)

(* Exactly-once close through the registry: both a session's own exit and
   a server-wide [stop] funnel here, so a file descriptor is never closed
   twice (and never closed while the other party still believes it owns
   it). *)
let registry_close sv id =
  Mutex.lock sv.reg_mu;
  let entry = Hashtbl.find_opt sv.reg id in
  Hashtbl.remove sv.reg id;
  Mutex.unlock sv.reg_mu;
  match entry with
  | None -> ()
  | Some (fd, _) ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Metrics.set_gauge g_open_sessions
        (float_of_int
           (Mutex.lock sv.reg_mu;
            let n = Hashtbl.length sv.reg in
            Mutex.unlock sv.reg_mu;
            n))

(* --- roles ------------------------------------------------------------------ *)

let follower_status sv =
  Mutex.lock sv.role_mu;
  let f = sv.follower in
  Mutex.unlock sv.role_mu;
  Option.map Repl.status f

(* [Some err] when this node must reject writes: a follower serves reads
   only until it is promoted.  (A WAL failure is a different rejection —
   the store itself answers that one.) *)
let follower_guard sv =
  Mutex.lock sv.role_mu;
  let r = sv.role in
  Mutex.unlock sv.role_mu;
  match r with
  | `Primary -> None
  | `Follower -> Some "err readonly: follower (promote to accept writes)"

(* Promotion: stop the catch-up loop, seal the replicated log into a
   snapshot, flip the role.  The seal is best-effort — the WAL is intact
   and replayable either way, and a new primary that cannot compact is
   still better than no primary at all. *)
let promote sv =
  Mutex.lock sv.role_mu;
  match sv.role with
  | `Primary ->
      Mutex.unlock sv.role_mu;
      `Already_primary
  | `Follower ->
      let f = sv.follower in
      sv.follower <- None;
      sv.role <- `Primary;
      Mutex.unlock sv.role_mu;
      Option.iter Repl.stop f;
      ignore (Store.compact sv.store);
      Metrics.set_gauge g_role 1.;
      if Obs.on () then Obs.emit Obs.I ~cat:"repl" ~name:"repl.promote" ~args:[ ("offset", Obs.Int (Store.log_seq sv.store)) ];
      `Promoted

let role_line sv =
  match follower_status sv with
  | Some st ->
      Printf.sprintf "ok follower offset=%d lag=%d %s" st.Repl.applied_seq
        st.Repl.lag
        (if st.Repl.lost then "lost"
         else if st.Repl.connected then "connected"
         else "connecting")
  | None -> Printf.sprintf "ok primary offset=%d" (Store.log_seq sv.store)

(* --- the eval path --------------------------------------------------------- *)

let db_vals db = List.map (fun (n, _ty, v) -> (n, v)) db

let handle_eval sv sess q =
  match Parser.expr_of_string q with
  | exception Parser.Parse_error (msg, pos) ->
      Printf.sprintf "err parse: offset %d: %s" pos msg
  | exception Lexer.Lex_error (msg, pos) ->
      Printf.sprintf "err parse: lex error at offset %d: %s" pos msg
  | e -> (
      (* snapshot isolation: this request evaluates against the store as
         of now, no matter how many writes land while it waits or runs *)
      let db = Store.snapshot sv.store in
      match Typecheck.infer (Bagdb.type_env db) e with
      | exception Typecheck.Type_error msg -> "err type: " ^ msg
      | ty -> (
          let ckey, rels =
            Cache.key ~engine:sess.s_engine ~mode:sess.s_mode ~db e
          in
          match Cache.find sv.cache ~key:ckey ~rels with
          | Some (v, ty') ->
              Printf.sprintf "ok %s : %s" (Value.to_string v)
                (Ty.to_string ty')
          | None -> (
              Metrics.incr m_evals;
              let budget = Budget.create sess.s_limits in
              let weight = sess.s_limits.Budget.fuel in
              let engine = sess.s_engine and mode = sess.s_mode in
              let sid = sess.s_id in
              let run () =
                (* worker domain: plan, then evaluate under the armed
                   budget; the request span lands in the worker's own
                   trace ring *)
                if Obs.on () then Obs.emit Obs.B ~cat:"server" ~name:"request" ~args:[ ("session", Obs.Int sid); ("engine", Obs.Str (Veval.engine_to_string engine)) ];
                let t0 = Unix.gettimeofday () in
                let plan =
                  Opt.prepare ~vals:(db_vals db) ~engine mode
                    (Bagdb.type_env db) e
                in
                let outcome =
                  match
                    Veval.run_engine engine ~budget (Bagdb.value_env db) plan
                  with
                  | Ok v -> `Ok (v, ty)
                  | Error x -> `Verdict x
                  | exception Eval.Eval_error msg ->
                      `Fail ("eval: " ^ msg)
                in
                Metrics.observe h_request_ns
                  (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
                let label =
                  match outcome with
                  | `Ok _ -> "ok"
                  | `Verdict x -> Budget.resource_to_string x.Budget.resource
                  | `Fail _ -> "error"
                in
                if Obs.on () then Obs.emit Obs.E ~cat:"server" ~name:"request" ~args:[ ("session", Obs.Int sid); ("outcome", Obs.Str label) ];
                outcome
              in
              match Exec.submit sv.exec ~weight ~budget ~run with
              | Error msg -> "err busy: " ^ msg
              | Ok (`Ok (v, ty)) ->
                  Cache.add sv.cache ~key:ckey ~rels v ty;
                  Printf.sprintf "ok %s : %s" (Value.to_string v)
                    (Ty.to_string ty)
              | Ok (`Verdict x) ->
                  "verdict " ^ Budget.exhaustion_to_string x
              | Ok (`Fail msg) -> "err " ^ msg)))

(* --- writes ---------------------------------------------------------------- *)

let handle_def sv rest =
  match Bagdb.parse rest with
  | exception Bagdb.Db_error e -> "err db: " ^ Bagdb.error_to_string e
  | [] -> "err proto: def expects a declaration: def bag NAME : TYPE = VALUE"
  | _ :: _ :: _ -> "err proto: def takes exactly one declaration"
  | [ (n, ty, v) ] -> (
      match Store.apply sv.store (Store.Def (n, ty, v)) with
      | Ok () ->
          Cache.invalidate sv.cache n;
          "ok defined " ^ n
      | Error msg -> "err wal: " ^ msg)

let handle_drop sv name =
  let name = String.trim name in
  if String.equal name "" then "err proto: drop expects a relation name"
  else if
    (* a validation failure is a db error, not a WAL one; Store.apply
       re-validates under its own lock, so a racing drop still fails
       safely — just with the coarser label *)
    not
      (List.exists
         (fun (m, _, _) -> String.equal m name)
         (Store.snapshot sv.store))
  then "err db: no such relation " ^ name
  else
    match Store.apply sv.store (Store.Drop name) with
    | Ok () ->
        Cache.invalidate sv.cache name;
        "ok dropped " ^ name
    | Error msg -> "err wal: " ^ msg

(* --- session limits -------------------------------------------------------- *)

let handle_set sess args =
  let toks =
    List.filter (fun s -> not (String.equal s "")) (String.split_on_char ' ' args)
  in
  let set_one acc tok =
    match acc with
    | Error _ as e -> e
    | Ok () -> (
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "err proto: set expects key=value, got %s" tok)
        | Some i -> (
            let k = String.sub tok 0 i in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            let int_field f =
              match int_of_string_opt v with
              | Some n when n > 0 ->
                  sess.s_limits <- f sess.s_limits n;
                  Ok ()
              | _ -> Error (Printf.sprintf "err proto: %s expects a positive integer" k)
            in
            match k with
            | "fuel" -> int_field (fun l n -> { l with Budget.fuel = n })
            | "max-support" ->
                int_field (fun l n -> { l with Budget.max_support = n })
            | "max-size" -> int_field (fun l n -> { l with Budget.max_size = n })
            | "max-count-digits" ->
                int_field (fun l n -> { l with Budget.max_count_digits = n })
            | "max-fix-steps" ->
                int_field (fun l n -> { l with Budget.max_fix_steps = n })
            | "timeout" -> (
                match float_of_string_opt v with
                | Some s when s > 0. ->
                    sess.s_limits <- { sess.s_limits with Budget.deadline_s = Some s };
                    Ok ()
                | Some 0. ->
                    sess.s_limits <- { sess.s_limits with Budget.deadline_s = None };
                    Ok ()
                | _ -> Error "err proto: timeout expects seconds (0 clears)")
            | "engine" -> (
                match Veval.engine_of_string v with
                | Some e ->
                    sess.s_engine <- e;
                    Ok ()
                | None -> Error "err proto: engine expects tree or vec")
            | "optimize" -> (
                match Opt.mode_of_string v with
                | Some m ->
                    sess.s_mode <- m;
                    Ok ()
                | None -> Error "err proto: optimize expects off, rules or cost")
            | _ -> Error ("err proto: unknown setting " ^ k)))
  in
  match List.fold_left set_one (Ok ()) toks with
  | Ok () when toks = [] -> "err proto: set expects key=value pairs"
  | Ok () -> "ok"
  | Error msg -> msg

(* --- request dispatch ------------------------------------------------------ *)

(* [None] means: close the session.  Multi-line responses are terminated
   by a lone "." line (their payload lines never start with a dot). *)
let respond sv sess line =
  Metrics.incr m_requests;
  let line = strip_cr line in
  if String.equal (String.trim line) "" then Some ""
  else if String.equal line "quit" then None
  else if String.equal line "ping" then Some "ok pong"
  else if String.equal line "list" then
    Some
      ("ok "
      ^ String.concat " "
          (List.map (fun (n, _, _) -> n) (Store.snapshot sv.store)))
  else if String.equal line "metrics" then
    Some (Metrics.to_prometheus Metrics.default ^ ".")
  else if String.equal line "dump" then
    let body = Bagdb.render (Store.snapshot sv.store) in
    Some (if String.equal body "" then "." else body ^ "\n.")
  else if String.equal line "role" then Some (role_line sv)
  else if String.equal line "promote" then
    Some
      (match promote sv with
      | `Promoted -> "ok promoted"
      | `Already_primary -> "ok already primary")
  else if String.equal line "compact" then
    Some
      (match follower_guard sv with
      | Some err -> err
      | None -> (
          match Store.compact sv.store with
          | Ok () -> "ok compacted"
          | Error msg -> "err wal: " ^ one_line msg))
  else if starts_with "eval " line then
    Some (one_line (handle_eval sv sess (after "eval " line)))
  else if starts_with "def " line then
    Some
      (match follower_guard sv with
      | Some err -> err
      | None -> one_line (handle_def sv (after "def " line)))
  else if starts_with "drop " line then
    Some
      (match follower_guard sv with
      | Some err -> err
      | None -> one_line (handle_drop sv (after "drop " line)))
  else if starts_with "set " line then
    Some (one_line (handle_set sess (after "set " line)))
  else Some ("err proto: unknown command " ^ one_line line)

(* --- HTTP ------------------------------------------------------------------ *)

let http_response oc status content_type body =
  output_string oc
    (Printf.sprintf
       "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
        close\r\n\r\n"
       status content_type (String.length body));
  output_string oc body;
  flush oc

(* Health is role-aware and degradation-aware: a store that went
   read-only (wal.append fault, ENOSPC) or a follower past its backoff
   horizon answers 503 so a load balancer stops routing here, while the
   body says which degradation it is. *)
let healthz_body sv =
  if Store.read_only sv.store then
    ("503 Service Unavailable", "degraded: store read-only (write-ahead log failed)\n")
  else
    match follower_status sv with
    | Some st when st.Repl.lost ->
        ( "503 Service Unavailable",
          Printf.sprintf
            "degraded: replication lost (%d consecutive failures)\n"
            st.Repl.failures )
    | Some st ->
        ( "200 OK",
          Printf.sprintf "ok role=follower offset=%d lag=%d\n"
            st.Repl.applied_seq st.Repl.lag )
    | None ->
        ( "200 OK",
          Printf.sprintf "ok role=primary offset=%d\n"
            (Store.log_seq sv.store) )

let handle_http sv request_line ic oc =
  Metrics.incr m_http;
  (* drain the header block; we answer from the request line alone *)
  (try
     while not (String.equal (String.trim (input_line ic)) "") do
       ()
     done
   with End_of_file | Sys_error _ -> ());
  match String.split_on_char ' ' (strip_cr request_line) with
  | meth :: path :: _ when String.equal meth "GET" || String.equal meth "HEAD"
    -> (
      match path with
      | "/metrics" ->
          http_response oc "200 OK" "text/plain; version=0.0.4"
            (Metrics.to_prometheus Metrics.default)
      | "/healthz" ->
          let status, body = healthz_body sv in
          http_response oc status "text/plain" body
      | _ -> http_response oc "404 Not Found" "text/plain" "not found\n")
  | _ -> http_response oc "400 Bad Request" "text/plain" "bad request\n"

(* --- sessions -------------------------------------------------------------- *)

let session_loop sv sess ic oc first_line =
  let rec loop line =
    (* the [server.session] chaos site: this session dies here — its
       socket closes, the rest of the server keeps serving *)
    if Fault.fire session_site then Metrics.incr m_session_faults
    else if starts_with "sync " (strip_cr line) then begin
      (* [sync] takes over the connection: the session becomes a
         replication feed and never returns to request/response *)
      Metrics.incr m_requests;
      match int_of_string_opt (String.trim (after "sync " (strip_cr line))) with
      | Some a when a >= 0 ->
          Repl.serve_sync ~store:sv.store ~params:sv.cfg.repl_params
            ~stopping:(fun () -> sv.stopping)
            ~after:a oc
      | _ ->
          output_string oc "err proto: sync expects a non-negative log offset\n";
          flush oc;
          loop (input_line ic)
    end
    else
      match respond sv sess line with
      | None ->
          output_string oc "ok bye\n";
          flush oc
      | Some reply ->
          output_string oc reply;
          output_string oc "\n";
          flush oc;
          loop (input_line ic)
  in
  loop first_line

let handle_conn sv id fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let sess =
    {
      s_id = id;
      s_limits = { Budget.default with Budget.fuel = sv.cfg.default_fuel };
      s_engine = sv.cfg.engine;
      s_mode = sv.cfg.optimize;
    }
  in
  (try
     let first = input_line ic in
     if
       starts_with "GET " first || starts_with "HEAD " first
       || starts_with "POST " first
     then handle_http sv first ic oc
     else session_loop sv sess ic oc first
   with
  | End_of_file | Sys_error _ -> ()
  | Unix.Unix_error _ -> ());
  registry_close sv id

(* --- accept loop / lifecycle ----------------------------------------------- *)

let accept_loop sv =
  while not sv.stopping do
    match Unix.accept sv.listen_fd with
    | fd, _ ->
        if Fault.fire accept_site then begin
          (* injected accept failure: drop the connection on the floor *)
          Metrics.incr m_session_faults;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          Metrics.incr m_sessions;
          Mutex.lock sv.reg_mu;
          let id = sv.next_id in
          sv.next_id <- id + 1;
          (* registered before the thread starts so [stop] always sees it *)
          let th = Thread.create (fun () -> handle_conn sv id fd) () in
          Hashtbl.replace sv.reg id (fd, th);
          Metrics.set_gauge g_open_sessions
            (float_of_int (Hashtbl.length sv.reg));
          Mutex.unlock sv.reg_mu
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        (* the listener was closed under us (stop), or a transient accept
           failure: spin once more — the loop condition decides *)
        if not sv.stopping then Thread.yield ()
  done

let start cfg =
  match
    let store =
      Store.open_store ~compact_bytes:cfg.compact_bytes ~seed:cfg.seed_db
        ~dir:cfg.store_dir ()
    in
    (* a client that vanishes mid-response must surface as EPIPE on the
       write, not kill the process *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
       Unix.listen fd 64
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       Store.close store;
       raise e);
    let bound_port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> cfg.port
    in
    let sv =
      {
        cfg;
        store;
        cache = Cache.create ~capacity:cfg.cache_capacity ();
        exec =
          Exec.create ~ceiling:cfg.ceiling ~max_queue:cfg.max_queue
            ~workers:cfg.workers ();
        listen_fd = fd;
        bound_port;
        accept_thread = None;
        reg_mu = Mutex.create ();
        reg = Hashtbl.create 32;
        next_id = 1;
        stopping = false;
        stopped = false;
        stop_mu = Mutex.create ();
        stop_cv = Condition.create ();
        role_mu = Mutex.create ();
        role = (match cfg.follow with None -> `Primary | Some _ -> `Follower);
        follower = None;
      }
    in
    (match cfg.follow with
    | None -> Metrics.set_gauge g_role 1.
    | Some (h, p) ->
        Metrics.set_gauge g_role 0.;
        sv.follower <-
          Some (Repl.start ~store ~host:h ~port:p ~params:cfg.repl_params));
    sv.accept_thread <- Some (Thread.create (fun () -> accept_loop sv) ());
    sv
  with
  | sv -> Ok sv
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Bagdb.Db_error e ->
      Error ("store recovery failed: " ^ Bagdb.error_to_string e)
  | exception Sys_error msg -> Error msg

let port sv = sv.bound_port
let store sv = sv.store

let sessions_served sv =
  Mutex.lock sv.reg_mu;
  let n = sv.next_id - 1 in
  Mutex.unlock sv.reg_mu;
  n

let stop sv =
  Mutex.lock sv.stop_mu;
  let already = sv.stopped || sv.stopping in
  sv.stopping <- true;
  Mutex.unlock sv.stop_mu;
  if not already then begin
    (* wake the accept loop: on Linux a close alone does NOT interrupt a
       thread blocked in accept(2) — shutdown on the listening socket
       does, making the blocked accept return EINVAL *)
    (try Unix.shutdown sv.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close sv.listen_fd with Unix.Unix_error _ -> ());
    Option.iter Thread.join sv.accept_thread;
    (* close every client socket: blocked session reads fail, blocked
       submits drain through the executor shutdown below *)
    Mutex.lock sv.reg_mu;
    let ids = Hashtbl.fold (fun id _ acc -> id :: acc) sv.reg [] in
    let threads = Hashtbl.fold (fun _ (_, th) acc -> th :: acc) sv.reg [] in
    Mutex.unlock sv.reg_mu;
    List.iter (registry_close sv) ids;
    (* stop the follower before the store it writes into goes away *)
    Mutex.lock sv.role_mu;
    let f = sv.follower in
    sv.follower <- None;
    Mutex.unlock sv.role_mu;
    Option.iter Repl.stop f;
    Exec.shutdown sv.exec;
    List.iter Thread.join threads;
    Store.close sv.store;
    Mutex.lock sv.stop_mu;
    sv.stopped <- true;
    Condition.broadcast sv.stop_cv;
    Mutex.unlock sv.stop_mu
  end

let wait sv =
  Mutex.lock sv.stop_mu;
  while not sv.stopped do
    Condition.wait sv.stop_cv sv.stop_mu
  done;
  Mutex.unlock sv.stop_mu
