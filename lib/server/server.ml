(* The concurrent bag-database server; see server.mli for the model. *)

open Balg
module Parser = Baglang.Parser
module Lexer = Baglang.Lexer
module Bagdb = Baglang.Bagdb

(* Injection sites.  [server.accept]: the freshly accepted connection is
   dropped on the floor (a transient accept failure); [server.session]:
   the session dies before serving its next request (a crashed
   per-connection handler) — every other session must keep working. *)
let accept_site = Fault.register "server.accept"
let session_site = Fault.register "server.session"

let m_sessions =
  Metrics.counter Metrics.default "balg_server_sessions_total"
    ~help:"Client connections accepted"

let m_session_faults =
  Metrics.counter Metrics.default "balg_server_session_faults_total"
    ~help:"Sessions killed by the server.accept/server.session fault sites"

let m_requests =
  Metrics.counter Metrics.default "balg_server_requests_total"
    ~help:"Protocol requests served (all commands)"

let m_evals =
  Metrics.counter Metrics.default "balg_server_evals_total"
    ~help:"eval requests that reached evaluation (cache misses)"

let m_http =
  Metrics.counter Metrics.default "balg_server_http_requests_total"
    ~help:"HTTP requests served (metrics scrapes, health checks)"

let h_request_ns =
  Metrics.histogram Metrics.default "balg_server_request_ns"
    ~help:"Wall-clock time of evaluated requests (nanoseconds)"

(* Per-command latency, one histogram per command kind (the registry is
   label-free): eval covers the whole session-side request including
   queue wait, def/drop cover parse+WAL+publish, other is the cheap
   introspection tail (ping/list/role/...). *)
let h_cmd_eval_ns =
  Metrics.histogram Metrics.default "balg_server_cmd_eval_ns"
    ~help:"Latency of eval commands, session-side (nanoseconds)"

let h_cmd_def_ns =
  Metrics.histogram Metrics.default "balg_server_cmd_def_ns"
    ~help:"Latency of def commands (nanoseconds)"

let h_cmd_drop_ns =
  Metrics.histogram Metrics.default "balg_server_cmd_drop_ns"
    ~help:"Latency of drop commands (nanoseconds)"

let h_cmd_other_ns =
  Metrics.histogram Metrics.default "balg_server_cmd_other_ns"
    ~help:"Latency of all other protocol commands (nanoseconds)"

let g_open_sessions =
  Metrics.gauge Metrics.default "balg_server_open_sessions"
    ~help:"Client connections currently open"

let g_role =
  Metrics.gauge Metrics.default "balg_server_role"
    ~help:"Replication role: 1 primary (writable), 0 follower (read-only)"

type config = {
  host : string;
  port : int;
  store_dir : string option;
  seed_db : Bagdb.t;
  ceiling : int;
  max_queue : int;
  workers : int;
  default_fuel : int;
  engine : Veval.engine;
  optimize : Opt.mode;
  cache_capacity : int;
  compact_bytes : int;
  follow : (string * int) option;
  repl_params : Repl.params;
  access_log : string option;
  slow_log : string option;
  slow_ms : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7421;
    store_dir = None;
    seed_db = [];
    ceiling = 32_000_000;
    max_queue = 64;
    workers = 4;
    default_fuel = 4_000_000;
    engine = Veval.Tree;
    optimize = Opt.Off;
    cache_capacity = 512;
    compact_bytes = 1 lsl 20;
    follow = None;
    repl_params = Repl.default_params;
    access_log = None;
    slow_log = None;
    slow_ms = 100.;
  }

type session = {
  s_id : int;
  mutable s_limits : Budget.limits;
  mutable s_engine : Veval.engine;
  mutable s_mode : Opt.mode;
}

type t = {
  cfg : config;
  store : Store.t;
  cache : Cache.t;
  exec : Exec.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  mutable accept_thread : Thread.t option;
  reg_mu : Mutex.t;
  reg : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  mutable next_id : int;
  mutable stopping : bool;
  mutable stopped : bool;
  stop_mu : Mutex.t;
  stop_cv : Condition.t;
  role_mu : Mutex.t;
  mutable role : [ `Primary | `Follower ];
  mutable follower : Repl.follower option;
  next_req : int Atomic.t;  (* request ids, minted per protocol command *)
  log_mu : Mutex.t;  (* serializes the access/slow JSONL channels *)
  access_oc : out_channel option;
  slow_oc : out_channel option;
}

(* --- small helpers --------------------------------------------------------- *)

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let after prefix s =
  String.sub s (String.length prefix) (String.length s - String.length prefix)

(* --- structured logs -------------------------------------------------------- *)

let json_str s = "\"" ^ Obs.json_escape s ^ "\""

(* One flat JSON object per line (Obs.Log conventions), mutex-serialized
   and flushed per line so every completed command survives any exit
   path — a crash loses at most the line being written. *)
let log_line sv oc line =
  Mutex.lock sv.log_mu;
  (try
     output_string oc line;
     output_char oc '\n';
     flush oc
   with Sys_error _ -> ());
  Mutex.unlock sv.log_mu

let access_line sv ~sid ~req ~cmd ~dur_us ~outcome =
  match sv.access_oc with
  | None -> ()
  | Some oc ->
      log_line sv oc
        (Printf.sprintf
           "{\"ts\":%.6f,\"session\":%d,\"req\":%d,\"cmd\":%s,\"dur_us\":%d,\"outcome\":%s}"
           (Unix.gettimeofday ()) sid req (json_str cmd) dur_us
           (json_str outcome))

let cmd_word line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> if String.equal line "" then "empty" else line
  | Some i -> String.sub line 0 i

let outcome_of_reply = function
  | None -> "bye"
  | Some r ->
      if starts_with "err busy" r then "busy"
      else if starts_with "err" r then "error"
      else if starts_with "verdict" r then "verdict"
      else "ok"

(* Exactly-once close through the registry: both a session's own exit and
   a server-wide [stop] funnel here, so a file descriptor is never closed
   twice (and never closed while the other party still believes it owns
   it). *)
let registry_close sv id =
  Mutex.lock sv.reg_mu;
  let entry = Hashtbl.find_opt sv.reg id in
  Hashtbl.remove sv.reg id;
  Mutex.unlock sv.reg_mu;
  match entry with
  | None -> ()
  | Some (fd, _) ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Metrics.set_gauge g_open_sessions
        (float_of_int
           (Mutex.lock sv.reg_mu;
            let n = Hashtbl.length sv.reg in
            Mutex.unlock sv.reg_mu;
            n))

(* --- roles ------------------------------------------------------------------ *)

let follower_status sv =
  Mutex.lock sv.role_mu;
  let f = sv.follower in
  Mutex.unlock sv.role_mu;
  Option.map Repl.status f

(* [Some err] when this node must reject writes: a follower serves reads
   only until it is promoted.  (A WAL failure is a different rejection —
   the store itself answers that one.) *)
let follower_guard sv =
  Mutex.lock sv.role_mu;
  let r = sv.role in
  Mutex.unlock sv.role_mu;
  match r with
  | `Primary -> None
  | `Follower -> Some "err readonly: follower (promote to accept writes)"

(* Promotion: stop the catch-up loop, seal the replicated log into a
   snapshot, flip the role.  The seal is best-effort — the WAL is intact
   and replayable either way, and a new primary that cannot compact is
   still better than no primary at all. *)
let promote sv =
  Mutex.lock sv.role_mu;
  match sv.role with
  | `Primary ->
      Mutex.unlock sv.role_mu;
      `Already_primary
  | `Follower ->
      let f = sv.follower in
      sv.follower <- None;
      sv.role <- `Primary;
      Mutex.unlock sv.role_mu;
      Option.iter Repl.stop f;
      ignore (Store.compact sv.store);
      Metrics.set_gauge g_role 1.;
      if Obs.on () then Obs.emit Obs.I ~cat:"repl" ~name:"repl.promote" ~args:[ ("offset", Obs.Int (Store.log_seq sv.store)) ];
      `Promoted

let role_line sv =
  match follower_status sv with
  | Some st ->
      Printf.sprintf "ok follower offset=%d lag=%d %s" st.Repl.applied_seq
        st.Repl.lag
        (if st.Repl.lost then "lost"
         else if st.Repl.connected then "connected"
         else "connecting")
  | None -> Printf.sprintf "ok primary offset=%d" (Store.log_seq sv.store)

(* --- the eval path --------------------------------------------------------- *)

let db_vals db = List.map (fun (n, _ty, v) -> (n, v)) db

let handle_eval sv sess ~req q =
  let lane = Obs.lane_session sess.s_id in
  let t_start = Unix.gettimeofday () in
  (* The slow-query log: one JSONL line per eval at or above the
     threshold, carrying everything needed to understand the latency
     without re-running the query. *)
  let slow ~outcome ~cache ~plan ~decisions ~engines ~queue_us ~fuel =
    match sv.slow_oc with
    | None -> ()
    | Some oc ->
        let dur_ms = (Unix.gettimeofday () -. t_start) *. 1e3 in
        if dur_ms >= sv.cfg.slow_ms then
          log_line sv oc
            (Printf.sprintf
               "{\"ts\":%.6f,\"session\":%d,\"req\":%d,\"dur_ms\":%.3f,\"query\":%s,\"plan\":%s,\"decisions\":%s,\"engine\":%s,\"cache\":%s,\"queue_us\":%d,\"fuel\":%d,\"outcome\":%s}"
               (Unix.gettimeofday ()) sess.s_id req dur_ms (json_str q)
               (json_str plan) (json_str decisions) (json_str engines)
               (json_str cache) queue_us fuel (json_str outcome))
  in
  match Parser.expr_of_string q with
  | exception Parser.Parse_error (msg, pos) ->
      Printf.sprintf "err parse: offset %d: %s" pos msg
  | exception Lexer.Lex_error (msg, pos) ->
      Printf.sprintf "err parse: lex error at offset %d: %s" pos msg
  | e -> (
      (* snapshot isolation: this request evaluates against the store as
         of now, no matter how many writes land while it waits or runs *)
      let db = Store.snapshot sv.store in
      match Typecheck.infer (Bagdb.type_env db) e with
      | exception Typecheck.Type_error msg -> "err type: " ^ msg
      | ty -> (
          let ckey, rels =
            Cache.key ~engine:sess.s_engine ~mode:sess.s_mode ~db e
          in
          match Cache.find sv.cache ~key:ckey ~rels with
          | Some (v, ty') ->
              slow ~outcome:"ok" ~cache:"hit" ~plan:"(cached)" ~decisions:""
                ~engines:(Veval.engine_to_string sess.s_engine) ~queue_us:0
                ~fuel:0;
              Printf.sprintf "ok %s : %s" (Value.to_string v)
                (Ty.to_string ty')
          | None -> (
              Metrics.incr m_evals;
              let budget = Budget.create sess.s_limits in
              let weight = sess.s_limits.Budget.fuel in
              let engine = sess.s_engine and mode = sess.s_mode in
              let sid = sess.s_id in
              (* plan analytics escape the worker closure through a ref:
                 the executor's result handoff (j_mu/j_cv) orders the
                 worker's write before this thread's read *)
              let details = ref ("", "", "") in
              let run () =
                (* worker domain: plan, then evaluate under the armed
                   budget; the request span lands in the worker's own
                   trace ring, tied to the session span by the req id *)
                if Obs.on () then Obs.emit Obs.B ~cat:"worker" ~name:"request" ~args:[ ("req", Obs.Int req); ("session", Obs.Int sid); ("engine", Obs.Str (Veval.engine_to_string engine)) ];
                let t0 = Unix.gettimeofday () in
                let label = ref "error" in
                Fun.protect
                  ~finally:(fun () ->
                    Metrics.observe h_request_ns
                      (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
                    if Obs.on () then Obs.emit Obs.E ~cat:"worker" ~name:"request" ~args:[ ("req", Obs.Int req); ("session", Obs.Int sid); ("outcome", Obs.Str !label) ])
                  (fun () ->
                    let plan, dec_s =
                      match
                        Opt.optimize ~vals:(db_vals db) ~engine mode
                          (Bagdb.type_env db) e
                      with
                      | p, rep ->
                          ( p,
                            String.concat " "
                              (List.map
                                 (fun d ->
                                   d.Opt.d_rule
                                   ^ if d.Opt.d_accepted then "+" else "-")
                                 rep.Opt.r_decisions) )
                      | exception _ -> (e, "planning-failed")
                    in
                    let labels = ref (Veval.engine_to_string engine) in
                    let env = Bagdb.value_env db in
                    let outcome =
                      match
                        match engine with
                        | Veval.Tree ->
                            Veval.run_engine Veval.Tree ~budget env plan
                        | Veval.Vec ->
                            Veval.run ~budget
                              ~report:(fun p ->
                                labels := one_line (Veval.plan_to_string p))
                              env plan
                      with
                      | Ok v -> `Ok (v, ty)
                      | Error x -> `Verdict x
                      | exception Eval.Eval_error msg ->
                          `Fail ("eval: " ^ msg)
                    in
                    details := (Expr.to_string plan, dec_s, !labels);
                    (label :=
                       match outcome with
                       | `Ok _ -> "ok"
                       | `Verdict x ->
                           Budget.resource_to_string x.Budget.resource
                       | `Fail _ -> "error");
                    outcome)
              in
              match Exec.submit sv.exec ~weight ~budget ~run with
              | Error msg ->
                  slow ~outcome:"busy" ~cache:"miss" ~plan:"" ~decisions:""
                    ~engines:"" ~queue_us:0 ~fuel:0;
                  "err busy: " ^ msg
              | Ok (outcome, st) -> (
                  (* retro-dated queue-wait span: this thread emitted
                     nothing since the session-request B, and
                     enq <= arm <= now, so per-lane monotonicity holds
                     (the ring clamp only ever raises both ends
                     together) *)
                  if Obs.on () then Obs.emit Obs.B ~tid:lane ~ts_us:st.Exec.s_enq_us ~cat:"queue" ~name:"wait" ~args:[ ("req", Obs.Int req) ];
                  if Obs.on () then Obs.emit Obs.E ~tid:lane ~ts_us:st.Exec.s_arm_us ~cat:"queue" ~name:"wait" ~args:[ ("req", Obs.Int req); ("wait_us", Obs.Int st.Exec.s_queue_us) ];
                  let plan_s, dec_s, eng_s = !details in
                  let queue_us = st.Exec.s_queue_us in
                  let fuel = Budget.fuel_spent budget in
                  match outcome with
                  | `Ok (v, ty) ->
                      Cache.add sv.cache ~key:ckey ~rels v ty;
                      slow ~outcome:"ok" ~cache:"miss" ~plan:plan_s
                        ~decisions:dec_s ~engines:eng_s ~queue_us ~fuel;
                      Printf.sprintf "ok %s : %s" (Value.to_string v)
                        (Ty.to_string ty)
                  | `Verdict x ->
                      slow
                        ~outcome:(Budget.resource_to_string x.Budget.resource)
                        ~cache:"miss" ~plan:plan_s ~decisions:dec_s
                        ~engines:eng_s ~queue_us ~fuel;
                      "verdict " ^ Budget.exhaustion_to_string x
                  | `Fail msg ->
                      slow ~outcome:"error" ~cache:"miss" ~plan:plan_s
                        ~decisions:dec_s ~engines:eng_s ~queue_us ~fuel;
                      "err " ^ msg))))

(* --- writes ---------------------------------------------------------------- *)

(* A write's WAL append + publish, wrapped in a wal-category span on the
   session's lane so the flush shows up inside the request span. *)
let apply_traced sv sess ~req ~rel op =
  let lane = Obs.lane_session sess.s_id in
  if Obs.on () then Obs.emit Obs.B ~tid:lane ~cat:"wal" ~name:"commit" ~args:[ ("req", Obs.Int req); ("rel", Obs.Str rel) ];
  let r = Store.apply sv.store op in
  if Obs.on () then Obs.emit Obs.E ~tid:lane ~cat:"wal" ~name:"commit" ~args:[ ("req", Obs.Int req); ("outcome", Obs.Str (match r with Ok () -> "ok" | Error _ -> "error")) ];
  r

let handle_def sv sess ~req rest =
  match Bagdb.parse rest with
  | exception Bagdb.Db_error e -> "err db: " ^ Bagdb.error_to_string e
  | [] -> "err proto: def expects a declaration: def bag NAME : TYPE = VALUE"
  | _ :: _ :: _ -> "err proto: def takes exactly one declaration"
  | [ (n, ty, v) ] -> (
      match apply_traced sv sess ~req ~rel:n (Store.Def (n, ty, v)) with
      | Ok () ->
          Cache.invalidate sv.cache n;
          "ok defined " ^ n
      | Error msg -> "err wal: " ^ msg)

let handle_drop sv sess ~req name =
  let name = String.trim name in
  if String.equal name "" then "err proto: drop expects a relation name"
  else if
    (* a validation failure is a db error, not a WAL one; Store.apply
       re-validates under its own lock, so a racing drop still fails
       safely — just with the coarser label *)
    not
      (List.exists
         (fun (m, _, _) -> String.equal m name)
         (Store.snapshot sv.store))
  then "err db: no such relation " ^ name
  else
    match apply_traced sv sess ~req ~rel:name (Store.Drop name) with
    | Ok () ->
        Cache.invalidate sv.cache name;
        "ok dropped " ^ name
    | Error msg -> "err wal: " ^ msg

(* --- session limits -------------------------------------------------------- *)

let handle_set sess args =
  let toks =
    List.filter (fun s -> not (String.equal s "")) (String.split_on_char ' ' args)
  in
  let set_one acc tok =
    match acc with
    | Error _ as e -> e
    | Ok () -> (
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "err proto: set expects key=value, got %s" tok)
        | Some i -> (
            let k = String.sub tok 0 i in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            let int_field f =
              match int_of_string_opt v with
              | Some n when n > 0 ->
                  sess.s_limits <- f sess.s_limits n;
                  Ok ()
              | _ -> Error (Printf.sprintf "err proto: %s expects a positive integer" k)
            in
            match k with
            | "fuel" -> int_field (fun l n -> { l with Budget.fuel = n })
            | "max-support" ->
                int_field (fun l n -> { l with Budget.max_support = n })
            | "max-size" -> int_field (fun l n -> { l with Budget.max_size = n })
            | "max-count-digits" ->
                int_field (fun l n -> { l with Budget.max_count_digits = n })
            | "max-fix-steps" ->
                int_field (fun l n -> { l with Budget.max_fix_steps = n })
            | "timeout" -> (
                match float_of_string_opt v with
                | Some s when s > 0. ->
                    sess.s_limits <- { sess.s_limits with Budget.deadline_s = Some s };
                    Ok ()
                | Some 0. ->
                    sess.s_limits <- { sess.s_limits with Budget.deadline_s = None };
                    Ok ()
                | _ -> Error "err proto: timeout expects seconds (0 clears)")
            | "engine" -> (
                match Veval.engine_of_string v with
                | Some e ->
                    sess.s_engine <- e;
                    Ok ()
                | None -> Error "err proto: engine expects tree or vec")
            | "optimize" -> (
                match Opt.mode_of_string v with
                | Some m ->
                    sess.s_mode <- m;
                    Ok ()
                | None -> Error "err proto: optimize expects off, rules or cost")
            | _ -> Error ("err proto: unknown setting " ^ k)))
  in
  match List.fold_left set_one (Ok ()) toks with
  | Ok () when toks = [] -> "err proto: set expects key=value pairs"
  | Ok () -> "ok"
  | Error msg -> msg

(* --- request dispatch ------------------------------------------------------ *)

(* [None] means: close the session.  Multi-line responses are terminated
   by a lone "." line (their payload lines never start with a dot). *)
let dispatch sv sess ~req line =
  if String.equal (String.trim line) "" then Some ""
  else if String.equal line "quit" then None
  else if String.equal line "ping" then Some "ok pong"
  else if String.equal line "list" then
    Some
      ("ok "
      ^ String.concat " "
          (List.map (fun (n, _, _) -> n) (Store.snapshot sv.store)))
  else if String.equal line "metrics" then
    Some (Metrics.to_prometheus Metrics.default ^ ".")
  else if String.equal line "trace" then
    (* a live snapshot of the rings: reading while workers still emit is
       safe but can see a torn tail — the authoritative artifact is the
       file balgd writes at shutdown (--trace-out) *)
    Some
      (if Obs.on () then Obs.Trace.to_chrome_json () ^ "."
       else
         "err unavailable: tracing disabled (start balgd with --trace-out)")
  else if String.equal line "dump" then
    let body = Bagdb.render (Store.snapshot sv.store) in
    Some (if String.equal body "" then "." else body ^ "\n.")
  else if String.equal line "role" then Some (role_line sv)
  else if String.equal line "promote" then
    Some
      (match promote sv with
      | `Promoted -> "ok promoted"
      | `Already_primary -> "ok already primary")
  else if String.equal line "compact" then
    Some
      (match follower_guard sv with
      | Some err -> err
      | None -> (
          match Store.compact sv.store with
          | Ok () -> "ok compacted"
          | Error msg -> "err wal: " ^ one_line msg))
  else if starts_with "eval " line then
    Some (one_line (handle_eval sv sess ~req (after "eval " line)))
  else if starts_with "def " line then
    Some
      (match follower_guard sv with
      | Some err -> err
      | None -> one_line (handle_def sv sess ~req (after "def " line)))
  else if starts_with "drop " line then
    Some
      (match follower_guard sv with
      | Some err -> err
      | None -> one_line (handle_drop sv sess ~req (after "drop " line)))
  else if starts_with "set " line then
    Some (one_line (handle_set sess (after "set " line)))
  else Some ("err proto: unknown command " ^ one_line line)

let cmd_hist cmd =
  match cmd with
  | "eval" -> h_cmd_eval_ns
  | "def" -> h_cmd_def_ns
  | "drop" -> h_cmd_drop_ns
  | _ -> h_cmd_other_ns

(* The request wrapper: mint the id, open the session-lane span, run the
   command, then close the span, record per-command latency and write
   the access-log line — on the exception path too, so a dying session
   never leaves an unbalanced span or an unlogged command. *)
let respond sv sess line =
  Metrics.incr m_requests;
  let line = strip_cr line in
  let req = Atomic.fetch_and_add sv.next_req 1 in
  let cmd = cmd_word line in
  let lane = Obs.lane_session sess.s_id in
  let t0 = Unix.gettimeofday () in
  if Obs.on () then Obs.emit Obs.B ~tid:lane ~cat:"session" ~name:"request" ~args:[ ("req", Obs.Int req); ("session", Obs.Int sess.s_id); ("cmd", Obs.Str cmd) ];
  let finish outcome =
    let dur_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    if Obs.on () then Obs.emit Obs.E ~tid:lane ~cat:"session" ~name:"request" ~args:[ ("req", Obs.Int req); ("outcome", Obs.Str outcome); ("dur_us", Obs.Int dur_us) ];
    Metrics.observe (cmd_hist cmd) (dur_us * 1000);
    access_line sv ~sid:sess.s_id ~req ~cmd ~dur_us ~outcome
  in
  match dispatch sv sess ~req line with
  | reply ->
      finish (outcome_of_reply reply);
      reply
  | exception exn ->
      finish "exception";
      raise exn

(* --- HTTP ------------------------------------------------------------------ *)

let http_response oc status content_type body =
  output_string oc
    (Printf.sprintf
       "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
        close\r\n\r\n"
       status content_type (String.length body));
  output_string oc body;
  flush oc

(* Health is role-aware and degradation-aware: a store that went
   read-only (wal.append fault, ENOSPC) or a follower past its backoff
   horizon answers 503 so a load balancer stops routing here, while the
   body says which degradation it is. *)
let healthz_body sv =
  if Store.read_only sv.store then
    ("503 Service Unavailable", "degraded: store read-only (write-ahead log failed)\n")
  else
    match follower_status sv with
    | Some st when st.Repl.lost ->
        ( "503 Service Unavailable",
          Printf.sprintf
            "degraded: replication lost (%d consecutive failures)\n"
            st.Repl.failures )
    | Some st ->
        ( "200 OK",
          Printf.sprintf "ok role=follower offset=%d lag=%d wal_bytes=%d\n"
            st.Repl.applied_seq st.Repl.lag (Store.wal_size sv.store) )
    | None ->
        ( "200 OK",
          Printf.sprintf "ok role=primary offset=%d lag=0 wal_bytes=%d\n"
            (Store.log_seq sv.store) (Store.wal_size sv.store) )

let handle_http sv request_line ic oc =
  Metrics.incr m_http;
  (* drain the header block; we answer from the request line alone *)
  (try
     while not (String.equal (String.trim (input_line ic)) "") do
       ()
     done
   with End_of_file | Sys_error _ -> ());
  match String.split_on_char ' ' (strip_cr request_line) with
  | meth :: path :: _ when String.equal meth "GET" || String.equal meth "HEAD"
    -> (
      match path with
      | "/metrics" ->
          http_response oc "200 OK" "text/plain; version=0.0.4"
            (Metrics.to_prometheus Metrics.default)
      | "/healthz" ->
          let status, body = healthz_body sv in
          http_response oc status "text/plain" body
      | _ -> http_response oc "404 Not Found" "text/plain" "not found\n")
  | _ -> http_response oc "400 Bad Request" "text/plain" "bad request\n"

(* --- sessions -------------------------------------------------------------- *)

let session_loop sv sess ic oc first_line =
  let rec loop line =
    (* the [server.session] chaos site: this session dies here — its
       socket closes, the rest of the server keeps serving *)
    if Fault.fire session_site then Metrics.incr m_session_faults
    else if starts_with "sync " (strip_cr line) then begin
      (* [sync] takes over the connection: the session becomes a
         replication feed and never returns to request/response *)
      Metrics.incr m_requests;
      match int_of_string_opt (String.trim (after "sync " (strip_cr line))) with
      | Some a when a >= 0 ->
          (* the session becomes a long-lived feed: log the takeover now,
             since this command never "completes" in the access-log
             sense (no span either — it would stay open for the feed's
             whole life) *)
          access_line sv ~sid:sess.s_id
            ~req:(Atomic.fetch_and_add sv.next_req 1)
            ~cmd:"sync" ~dur_us:0 ~outcome:"ok";
          Repl.serve_sync ~store:sv.store ~params:sv.cfg.repl_params
            ~stopping:(fun () -> sv.stopping)
            ~after:a oc
      | _ ->
          output_string oc "err proto: sync expects a non-negative log offset\n";
          flush oc;
          loop (input_line ic)
    end
    else
      match respond sv sess line with
      | None ->
          output_string oc "ok bye\n";
          flush oc
      | Some reply ->
          output_string oc reply;
          output_string oc "\n";
          flush oc;
          loop (input_line ic)
  in
  loop first_line

let handle_conn sv id fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let sess =
    {
      s_id = id;
      s_limits = { Budget.default with Budget.fuel = sv.cfg.default_fuel };
      s_engine = sv.cfg.engine;
      s_mode = sv.cfg.optimize;
    }
  in
  (try
     let first = input_line ic in
     if
       starts_with "GET " first || starts_with "HEAD " first
       || starts_with "POST " first
     then handle_http sv first ic oc
     else session_loop sv sess ic oc first
   with
  | End_of_file | Sys_error _ -> ()
  | Unix.Unix_error _ -> ());
  registry_close sv id

(* --- accept loop / lifecycle ----------------------------------------------- *)

let accept_loop sv =
  while not sv.stopping do
    match Unix.accept sv.listen_fd with
    | fd, _ ->
        if Fault.fire accept_site then begin
          (* injected accept failure: drop the connection on the floor *)
          Metrics.incr m_session_faults;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          Metrics.incr m_sessions;
          Mutex.lock sv.reg_mu;
          let id = sv.next_id in
          sv.next_id <- id + 1;
          (* registered before the thread starts so [stop] always sees it *)
          let th = Thread.create (fun () -> handle_conn sv id fd) () in
          Hashtbl.replace sv.reg id (fd, th);
          Metrics.set_gauge g_open_sessions
            (float_of_int (Hashtbl.length sv.reg));
          Mutex.unlock sv.reg_mu
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        (* the listener was closed under us (stop), or a transient accept
           failure: spin once more — the loop condition decides *)
        if not sv.stopping then Thread.yield ()
  done

let start cfg =
  match
    (* a server hosts concurrent evaluations: pin the capture's trace id
       so per-run Obs.set_trace_id calls can't flip the pid mid-span;
       requests are told apart by their req args, not by pid *)
    if Obs.on () then Obs.pin_trace_id 1;
    let open_log path =
      open_out_gen [ Open_append; Open_creat ] 0o644 path
    in
    let access_oc = Option.map open_log cfg.access_log in
    let slow_oc = Option.map open_log cfg.slow_log in
    let store =
      Store.open_store ~compact_bytes:cfg.compact_bytes ~seed:cfg.seed_db
        ~dir:cfg.store_dir ()
    in
    (* a client that vanishes mid-response must surface as EPIPE on the
       write, not kill the process *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
       Unix.listen fd 64
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       Store.close store;
       raise e);
    let bound_port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> cfg.port
    in
    let sv =
      {
        cfg;
        store;
        cache = Cache.create ~capacity:cfg.cache_capacity ();
        exec =
          Exec.create ~ceiling:cfg.ceiling ~max_queue:cfg.max_queue
            ~workers:cfg.workers ();
        listen_fd = fd;
        bound_port;
        accept_thread = None;
        reg_mu = Mutex.create ();
        reg = Hashtbl.create 32;
        next_id = 1;
        stopping = false;
        stopped = false;
        stop_mu = Mutex.create ();
        stop_cv = Condition.create ();
        role_mu = Mutex.create ();
        role = (match cfg.follow with None -> `Primary | Some _ -> `Follower);
        follower = None;
        next_req = Atomic.make 1;
        log_mu = Mutex.create ();
        access_oc;
        slow_oc;
      }
    in
    (match cfg.follow with
    | None -> Metrics.set_gauge g_role 1.
    | Some (h, p) ->
        Metrics.set_gauge g_role 0.;
        sv.follower <-
          Some (Repl.start ~store ~host:h ~port:p ~params:cfg.repl_params));
    sv.accept_thread <- Some (Thread.create (fun () -> accept_loop sv) ());
    sv
  with
  | sv -> Ok sv
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Bagdb.Db_error e ->
      Error ("store recovery failed: " ^ Bagdb.error_to_string e)
  | exception Sys_error msg -> Error msg

let port sv = sv.bound_port
let store sv = sv.store

let sessions_served sv =
  Mutex.lock sv.reg_mu;
  let n = sv.next_id - 1 in
  Mutex.unlock sv.reg_mu;
  n

let stop sv =
  Mutex.lock sv.stop_mu;
  let already = sv.stopped || sv.stopping in
  sv.stopping <- true;
  Mutex.unlock sv.stop_mu;
  if not already then begin
    (* wake the accept loop: on Linux a close alone does NOT interrupt a
       thread blocked in accept(2) — shutdown on the listening socket
       does, making the blocked accept return EINVAL *)
    (try Unix.shutdown sv.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close sv.listen_fd with Unix.Unix_error _ -> ());
    Option.iter Thread.join sv.accept_thread;
    (* close every client socket: blocked session reads fail, blocked
       submits drain through the executor shutdown below *)
    Mutex.lock sv.reg_mu;
    let ids = Hashtbl.fold (fun id _ acc -> id :: acc) sv.reg [] in
    let threads = Hashtbl.fold (fun _ (_, th) acc -> th :: acc) sv.reg [] in
    Mutex.unlock sv.reg_mu;
    List.iter (registry_close sv) ids;
    (* stop the follower before the store it writes into goes away *)
    Mutex.lock sv.role_mu;
    let f = sv.follower in
    sv.follower <- None;
    Mutex.unlock sv.role_mu;
    Option.iter Repl.stop f;
    Exec.shutdown sv.exec;
    List.iter Thread.join threads;
    Store.close sv.store;
    (* sessions are joined: the log channels have no writers left *)
    Option.iter close_out_noerr sv.access_oc;
    Option.iter close_out_noerr sv.slow_oc;
    Mutex.lock sv.stop_mu;
    sv.stopped <- true;
    Condition.broadcast sv.stop_cv;
    Mutex.unlock sv.stop_mu
  end

let wait sv =
  Mutex.lock sv.stop_mu;
  while not sv.stopped do
    Condition.wait sv.stop_cv sv.stop_mu
  done;
  Mutex.unlock sv.stop_mu
