(** [balgd]'s engine room: a concurrent bag-database server over one
    shared {!Store}, with per-session budgets, admission control, a shared
    result cache and a Prometheus endpoint.

    {b Threading model.}  One accept thread; one I/O thread per client
    connection (parsing, typechecking, protocol); evaluation happens only
    on the {!Exec} worker domains — the evaluator's domain-local memo
    tables and trace rings assume one evaluation at a time per domain, so
    session threads never evaluate.

    {b Wire protocol} (newline-delimited; one request line, one response):
    {v
    eval <query>          -> ok <value> : <type>
                           | verdict <structured budget verdict>
                           | err <kind>: <message>
    def bag N : TY = V    -> ok defined N       (WAL append + publish)
    drop N                -> ok dropped N
    set k=v [k=v ...]     -> ok                 (fuel, max-support,
                             max-size, max-count-digits, max-fix-steps,
                             timeout, engine, optimize)
    list                  -> ok <names...>
    ping                  -> ok pong
    compact               -> ok compacted
    role                  -> ok primary offset=N
                           | ok follower offset=N lag=N <state>
    promote               -> ok promoted | ok already primary
    sync <offset>         -> ok <offset>, then the connection becomes a
                             replication feed (see {!Repl})
    metrics               -> <Prometheus text>, terminated by a "." line
    dump                  -> <rendered store>,  terminated by a "." line
    trace                 -> <Chrome trace JSON>, terminated by a "."
                             line (tracing must be enabled, i.e. balgd
                             --trace-out; a live snapshot — the
                             authoritative artifact is the file written
                             at shutdown)
    quit                  -> ok bye             (connection closes)
    v}
    Error kinds: [parse], [type], [db], [eval], [proto], [busy]
    (admission rejection), [wal] (write failure / read-only store),
    [readonly] (this node is a follower; [promote] to accept writes),
    [internal].  A budget exhaustion is not an [err]: it is a [verdict]
    line carrying the same structured message [balgi eval] prints.

    A connection whose first line is an HTTP request method serves HTTP
    instead: [GET /metrics] returns the Prometheus snapshot (the
    per-server scrape endpoint, including role, log offset and
    replication lag), [GET /healthz] health: [200 ok role=... offset=...]
    when serving, [503 degraded: ...] when the store has gone read-only
    or a follower has lost its primary past the backoff horizon.

    {b Replication.}  With [config.follow = Some (host, port)] the server
    starts as a read-only follower of that primary: it bootstraps from
    the primary's snapshot, applies shipped records through the
    validating loader, reconnects with capped backoff, and answers
    [promote] (or SIGUSR1 in [balgd]) by sealing its WAL and becoming a
    writable primary.  See {!Repl}.

    {b Fault sites.}  [server.accept] (the just-accepted connection is
    dropped), [server.session] (the session dies mid-conversation; its
    socket closes, every other session keeps working), plus the
    [server.worker] and [wal.append] sites of {!Exec} and {!Store} and
    the [repl.ship]/[repl.connect]/[repl.apply] sites of {!Repl}.

    {b Request tracing.}  Every protocol command is minted a request id.
    When tracing is enabled the server pins the trace id
    ({!Balg.Obs.pin_trace_id}) and emits request-scoped spans carrying
    [("req", Int id)]: [session]/request on the session's own lane
    ({!Balg.Obs.lane_session}), a retro-dated [queue]/wait sub-span from
    the {!Exec} queue accounting, [worker]/request on the worker
    domain's lane, and [wal]/commit around a write's append+publish —
    one Perfetto trace shows the whole request lifecycle.  The JSONL
    access log ([config.access_log]) records one line per command; the
    slow-query log ([config.slow_log], gated by [config.slow_ms])
    records query text, chosen plan, optimizer decisions, engine
    labels, cache outcome, queue wait, fuel spent and verdict for every
    eval at or above the threshold. *)

open Balg

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  store_dir : string option;  (** persistence directory; [None] = memory *)
  seed_db : Baglang.Bagdb.t;  (** initial contents for a fresh store *)
  ceiling : int;  (** admission ceiling: max aggregate fuel in flight *)
  max_queue : int;  (** admission queue bound *)
  workers : int;  (** evaluation worker domains *)
  default_fuel : int;  (** per-request fuel unless the session sets one *)
  engine : Veval.engine;  (** default execution engine for new sessions *)
  optimize : Opt.mode;  (** default optimizer mode for new sessions *)
  cache_capacity : int;  (** result-cache entries *)
  compact_bytes : int;  (** WAL size triggering snapshot compaction *)
  follow : (string * int) option;
      (** replicate from this primary; the server starts as a read-only
          follower *)
  repl_params : Repl.params;  (** backoff / heartbeat / loss tuning *)
  access_log : string option;
      (** JSONL access log: one line per protocol command (session id,
          request id, command, duration µs, outcome), flushed per line *)
  slow_log : string option;  (** JSONL slow-query log; see {!config.slow_ms} *)
  slow_ms : float;
      (** slow-query threshold in milliseconds (default 100); evals at or
          above it are logged to [slow_log] with plan and analytics *)
}

val default_config : config

type t

val start : config -> (t, string) result
(** Open (and recover) the store, spawn the workers and the accept
    thread, bind and listen.  [Error] on bind failure or a corrupt
    snapshot file. *)

val port : t -> int
(** The bound port (useful with [config.port = 0]). *)

val store : t -> Store.t
val sessions_served : t -> int

val promote : t -> [ `Promoted | `Already_primary ]
(** Failover: stop the follower loop, seal the replicated WAL into a
    snapshot (best-effort) and start accepting writes.  Idempotent —
    promoting a primary reports [`Already_primary].  Also reachable as
    the wire command [promote] and, in [balgd], via SIGUSR1. *)

val stop : t -> unit
(** Graceful-enough shutdown: stop accepting, close every client socket,
    join session threads, drain-and-fail the executor, close the WAL.
    Idempotent. *)

val wait : t -> unit
(** Block until {!stop} is called (from a signal handler or another
    thread). *)
