(** [balgd]'s engine room: a concurrent bag-database server over one
    shared {!Store}, with per-session budgets, admission control, a shared
    result cache and a Prometheus endpoint.

    {b Threading model.}  One accept thread; one I/O thread per client
    connection (parsing, typechecking, protocol); evaluation happens only
    on the {!Exec} worker domains — the evaluator's domain-local memo
    tables and trace rings assume one evaluation at a time per domain, so
    session threads never evaluate.

    {b Wire protocol} (newline-delimited; one request line, one response):
    {v
    eval <query>          -> ok <value> : <type>
                           | verdict <structured budget verdict>
                           | err <kind>: <message>
    def bag N : TY = V    -> ok defined N       (WAL append + publish)
    drop N                -> ok dropped N
    set k=v [k=v ...]     -> ok                 (fuel, max-support,
                             max-size, max-count-digits, max-fix-steps,
                             timeout, engine, optimize)
    list                  -> ok <names...>
    ping                  -> ok pong
    compact               -> ok compacted
    metrics               -> <Prometheus text>, terminated by a "." line
    dump                  -> <rendered store>,  terminated by a "." line
    quit                  -> ok bye             (connection closes)
    v}
    Error kinds: [parse], [type], [db], [eval], [proto], [busy]
    (admission rejection), [wal] (write failure / read-only store),
    [internal].  A budget exhaustion is not an [err]: it is a [verdict]
    line carrying the same structured message [balgi eval] prints.

    A connection whose first line is an HTTP request method serves HTTP
    instead: [GET /metrics] returns the Prometheus snapshot (the
    per-server scrape endpoint), [GET /healthz] liveness.

    {b Fault sites.}  [server.accept] (the just-accepted connection is
    dropped), [server.session] (the session dies mid-conversation; its
    socket closes, every other session keeps working), plus the
    [server.worker] and [wal.append] sites of {!Exec} and {!Store}. *)

open Balg

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  store_dir : string option;  (** persistence directory; [None] = memory *)
  seed_db : Baglang.Bagdb.t;  (** initial contents for a fresh store *)
  ceiling : int;  (** admission ceiling: max aggregate fuel in flight *)
  max_queue : int;  (** admission queue bound *)
  workers : int;  (** evaluation worker domains *)
  default_fuel : int;  (** per-request fuel unless the session sets one *)
  engine : Veval.engine;  (** default execution engine for new sessions *)
  optimize : Opt.mode;  (** default optimizer mode for new sessions *)
  cache_capacity : int;  (** result-cache entries *)
  compact_bytes : int;  (** WAL size triggering snapshot compaction *)
}

val default_config : config

type t

val start : config -> (t, string) result
(** Open (and recover) the store, spawn the workers and the accept
    thread, bind and listen.  [Error] on bind failure or a corrupt
    snapshot file. *)

val port : t -> int
(** The bound port (useful with [config.port = 0]). *)

val store : t -> Store.t
val sessions_served : t -> int

val stop : t -> unit
(** Graceful-enough shutdown: stop accepting, close every client socket,
    join session threads, drain-and-fail the executor, close the WAL.
    Idempotent. *)

val wait : t -> unit
(** Block until {!stop} is called (from a signal handler or another
    thread). *)
