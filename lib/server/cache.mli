(** The shared cross-query result cache.

    Keys combine a {e plan fingerprint} (the query text, engine and
    optimizer mode) with the {!Balg.Value.hash}/size tags of every
    relation the query references, so a write to a relation changes the
    keys of every query that reads it — stale entries can never serve a
    fresh snapshot.  On top of the hash keying, {!invalidate} drops every
    entry touching a relation the moment a write to it is published,
    keeping the table from accumulating dead generations.  Because hash
    tags are not proofs, a lookup re-verifies the stored relation values
    against the caller's snapshot with {!Balg.Value.equal} (O(1) refute on
    tag mismatch) before reporting a hit.

    All operations are mutex-serialized: sessions on any thread and
    workers on any domain share one cache.  Hits, misses, invalidations
    and evictions feed the {!Balg.Metrics} registry. *)

open Balg
module Bagdb = Baglang.Bagdb

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 512) bounds the entry count; insertion beyond it
    evicts the oldest entry (FIFO). *)

val key :
  engine:Veval.engine ->
  mode:Opt.mode ->
  db:Bagdb.t ->
  Expr.t ->
  string * (string * Value.t) list
(** The cache key for a query over a store snapshot, plus the referenced
    relations (free variables of the query bound by the snapshot) the
    entry must be verified against. *)

val find :
  t -> key:string -> rels:(string * Value.t) list -> (Value.t * Ty.t) option

val add :
  t -> key:string -> rels:(string * Value.t) list -> Value.t -> Ty.t -> unit

val invalidate : t -> string -> unit
(** Drop every entry whose query references the given relation.  Counts
    are kept per relation (readable via {!invalidations_by_rel}) and
    mirrored into the metrics registry as
    [balg_server_cache_rel_invalidations_total_<relation>]. *)

val invalidations_by_rel : t -> (string * int) list
(** Entries dropped by {!invalidate} per relation since creation, sorted
    by relation name. *)

val length : t -> int
