(* The shared store: COW reads, write-ahead log, snapshot compaction.
   See store.mli for the model. *)

open Balg
module Bagdb = Baglang.Bagdb

type op = Def of string * Ty.t * Value.t | Drop of string

(* Injection site: a torn WAL append — the record is cut short at a
   deterministic, seed-derived offset, the write reports an error, and
   the store degrades to read-only (the posture a production log takes on
   ENOSPC or an I/O error). *)
let wal_site = Fault.register "wal.append"

let m_writes =
  Metrics.counter Metrics.default "balg_server_store_writes_total"
    ~help:"Store write operations applied (def + drop)"

let m_write_errors =
  Metrics.counter Metrics.default "balg_server_store_write_errors_total"
    ~help:"Store write operations rejected"

let m_wal_appends =
  Metrics.counter Metrics.default "balg_server_wal_appends_total"
    ~help:"WAL records appended and flushed"

let m_wal_faults =
  Metrics.counter Metrics.default "balg_server_wal_faults_total"
    ~help:"WAL appends torn by fault injection or I/O failure"

let m_compactions =
  Metrics.counter Metrics.default "balg_server_compactions_total"
    ~help:"Snapshot compactions (WAL folded into snapshot.bagdb)"

let m_recovered =
  Metrics.counter Metrics.default "balg_server_wal_recovered_records_total"
    ~help:"WAL records replayed during store recovery"

let m_truncated =
  Metrics.counter Metrics.default "balg_server_wal_truncated_bytes_total"
    ~help:"Torn/corrupt WAL tail bytes dropped during store recovery"

let g_wal_bytes =
  Metrics.gauge Metrics.default "balg_server_wal_bytes"
    ~help:"Current WAL size in bytes"

type t = {
  dir : string option;
  compact_bytes : int;
  mu : Mutex.t;
  mutable db : Bagdb.t;
  mutable revision : int;
  mutable wal : out_channel option;
  mutable wal_bytes : int;
  mutable wal_failed : bool;
  recovered : int;
  truncated : int;
}

let snapshot_path dir = Filename.concat dir "snapshot.bagdb"
let wal_path dir = Filename.concat dir "wal.log"

let render_op = function
  | Def (n, ty, v) ->
      Printf.sprintf "bag %s : %s = %s\n" n (Ty.to_string ty)
        (Value.to_string v)
  | Drop n -> Printf.sprintf "drop %s\n" n

(* Deterministic write semantics, shared by live applies and WAL replay:
   a def replaces in place (or appends at the end), so recovery rebuilds
   the exact relation order the live store had. *)
let apply_op db = function
  | Def (n, ty, v) ->
      if List.exists (fun (m, _, _) -> String.equal m n) db then
        List.map
          (fun (m, tym, vm) -> if String.equal m n then (n, ty, v) else (m, tym, vm))
          db
      else db @ [ (n, ty, v) ]
  | Drop n -> List.filter (fun (m, _, _) -> not (String.equal m n)) db

let validate db = function
  | Def _ -> Ok ()
  | Drop n ->
      if List.exists (fun (m, _, _) -> String.equal m n) db then Ok ()
      else Error (Printf.sprintf "no such relation %s" n)

(* One WAL record: a [drop NAME] line or a single [.bagdb] declaration,
   parsed by the same validating loader that guards database files — so
   every corruption shape it can reject, replay rejects too. *)
let parse_record ~path ~offset line =
  let db_err reason =
    raise (Bagdb.Db_error { path = Some path; offset; reason })
  in
  if String.length line >= 5 && String.equal (String.sub line 0 5) "drop " then begin
    let n = String.trim (String.sub line 5 (String.length line - 5)) in
    if String.equal n "" then db_err "drop record: missing relation name";
    Drop n
  end
  else
    match Bagdb.parse ~path line with
    | [ (n, ty, v) ] -> Def (n, ty, v)
    | _ -> db_err "WAL record is not a single declaration"

(* Replay complete, valid records in order; stop at the first torn or
   malformed one (including a final line with no terminator).  Returns
   the rebuilt contents, the surviving-prefix length and the record
   count. *)
let replay_wal ~path content db0 =
  let len = String.length content in
  let rec go db off n =
    if off >= len then (db, off, n)
    else
      match String.index_from_opt content off '\n' with
      | None -> (db, off, n) (* torn tail: record never terminated *)
      | Some nl -> (
          let line = String.sub content off (nl - off) in
          if String.equal (String.trim line) "" then go db (nl + 1) n
          else
            match parse_record ~path ~offset:off line with
            | op -> go (apply_op db op) (nl + 1) (n + 1)
            | exception Bagdb.Db_error _ -> (db, off, n))
  in
  go db0 0 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_snapshot_file dir db =
  let snap = snapshot_path dir in
  let tmp = snap ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Bagdb.render db);
      output_string oc "\n");
  Unix.rename tmp snap

let open_wal_channel ?(trunc = false) dir =
  let flags =
    if trunc then [ Open_wronly; Open_trunc; Open_creat; Open_binary ]
    else [ Open_wronly; Open_append; Open_creat; Open_binary ]
  in
  open_out_gen flags 0o644 (wal_path dir)

let open_store ?(compact_bytes = 1 lsl 20) ?(seed = []) ~dir () =
  match dir with
  | None ->
      {
        dir = None;
        compact_bytes;
        mu = Mutex.create ();
        db = seed;
        revision = 0;
        wal = None;
        wal_bytes = 0;
        wal_failed = false;
        recovered = 0;
        truncated = 0;
      }
  | Some d ->
      if not (Sys.file_exists d) then Unix.mkdir d 0o755;
      let snap = snapshot_path d in
      let db0 =
        if Sys.file_exists snap then Bagdb.load snap
        else begin
          (* a fresh store: persist the seed as the initial snapshot so a
             restart without the seed flag finds the same contents *)
          if seed <> [] then write_snapshot_file d seed;
          seed
        end
      in
      let wal_file = wal_path d in
      let content =
        if Sys.file_exists wal_file then read_file wal_file else ""
      in
      let db, keep, recs = replay_wal ~path:wal_file content db0 in
      let torn = String.length content - keep in
      if torn > 0 then begin
        (* drop the torn tail so the next append starts at a record
           boundary — the surviving prefix is exactly what replay used *)
        let fd = Unix.openfile wal_file [ Unix.O_WRONLY ] 0o644 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () -> Unix.ftruncate fd keep);
        Metrics.incr ~by:torn m_truncated
      end;
      Metrics.incr ~by:recs m_recovered;
      Metrics.set_gauge g_wal_bytes (float_of_int keep);
      {
        dir = Some d;
        compact_bytes;
        mu = Mutex.create ();
        db;
        revision = 0;
        wal = Some (open_wal_channel d);
        wal_bytes = keep;
        wal_failed = false;
        recovered = recs;
        truncated = torn;
      }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let snapshot t = locked t (fun () -> t.db)
let revision t = locked t (fun () -> t.revision)
let recovered_records t = t.recovered
let truncated_bytes t = t.truncated
let read_only t = locked t (fun () -> t.wal_failed)
let wal_size t = locked t (fun () -> t.wal_bytes)

(* Called with the store mutex held. *)
let compact_locked t =
  match t.dir with
  | None -> Ok ()
  | Some d -> (
      match
        write_snapshot_file d t.db;
        (match t.wal with Some oc -> close_out_noerr oc | None -> ());
        let oc = open_wal_channel ~trunc:true d in
        t.wal <- Some oc;
        t.wal_bytes <- 0
      with
      | () ->
          Metrics.incr m_compactions;
          Metrics.set_gauge g_wal_bytes 0.;
          if Obs.on () then Obs.emit Obs.I ~cat:"server" ~name:"store.compact" ~args:[ ("revision", Obs.Int t.revision) ];
          Ok ()
      | exception Sys_error m -> Error ("compaction failed: " ^ m)
      | exception Unix.Unix_error (e, _, _) ->
          Error ("compaction failed: " ^ Unix.error_message e))

(* Called with the store mutex held.  An [Error] from here leaves the
   published contents unchanged; a torn write additionally flips the
   store read-only — later appends would land after a record recovery
   cannot reach. *)
let append_locked t record =
  match t.wal with
  | None -> Ok ()
  | Some oc -> (
      match Fault.fire_payload wal_site with
      | Some cut ->
          let keep = cut mod String.length record in
          (try
             output_string oc (String.sub record 0 keep);
             flush oc
           with Sys_error _ -> ());
          t.wal_failed <- true;
          Metrics.incr m_wal_faults;
          if Obs.on () then Obs.emit Obs.I ~cat:"server" ~name:"wal.torn" ~args:[ ("kept", Obs.Int keep); ("of", Obs.Int (String.length record)) ];
          Error
            "injected wal.append fault: torn record; store is read-only \
             until restart"
      | None -> (
          match
            output_string oc record;
            flush oc
          with
          | () ->
              t.wal_bytes <- t.wal_bytes + String.length record;
              Metrics.incr m_wal_appends;
              Metrics.set_gauge g_wal_bytes (float_of_int t.wal_bytes);
              if Obs.on () then Obs.emit Obs.I ~cat:"server" ~name:"wal.append" ~args:[ ("bytes", Obs.Int (String.length record)) ];
              Ok ()
          | exception Sys_error m ->
              t.wal_failed <- true;
              Metrics.incr m_wal_faults;
              Error ("wal append failed: " ^ m ^ "; store is read-only")))

let apply t op =
  let result =
    locked t (fun () ->
        if t.wal_failed then
          Error "write-ahead log failed; store is read-only until restart"
        else
          match validate t.db op with
          | Error _ as e -> e
          | Ok () -> (
              match append_locked t (render_op op) with
              | Error _ as e -> e
              | Ok () ->
                  t.db <- apply_op t.db op;
                  t.revision <- t.revision + 1;
                  if t.wal_bytes >= t.compact_bytes then
                    (* best-effort: a failed compaction keeps the (intact)
                       longer WAL, it does not fail the write *)
                    ignore (compact_locked t);
                  Ok ()))
  in
  (match result with
  | Ok () -> Metrics.incr m_writes
  | Error _ -> Metrics.incr m_write_errors);
  result

let compact t = locked t (fun () -> compact_locked t)

let close t =
  locked t (fun () ->
      match t.wal with
      | Some oc ->
          (try flush oc with Sys_error _ -> ());
          close_out_noerr oc;
          t.wal <- None
      | None -> ())
