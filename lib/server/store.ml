(* The shared store: COW reads, checksummed write-ahead log, snapshot
   compaction, replication tail.  See store.mli for the model. *)

open Balg
module Bagdb = Baglang.Bagdb

type op = Def of string * Ty.t * Value.t | Drop of string

(* Injection site: a torn WAL append — the record is cut short at a
   deterministic, seed-derived offset, the write reports an error, and
   the store degrades to read-only (the posture a production log takes on
   ENOSPC or an I/O error). *)
let wal_site = Fault.register "wal.append"

let m_writes =
  Metrics.counter Metrics.default "balg_server_store_writes_total"
    ~help:"Store write operations applied (def + drop, local and replicated)"

let m_write_errors =
  Metrics.counter Metrics.default "balg_server_store_write_errors_total"
    ~help:"Store write operations rejected"

let m_wal_appends =
  Metrics.counter Metrics.default "balg_server_wal_appends_total"
    ~help:"WAL records appended and flushed"

let m_wal_faults =
  Metrics.counter Metrics.default "balg_server_wal_faults_total"
    ~help:"WAL appends torn by fault injection or I/O failure"

let m_compactions =
  Metrics.counter Metrics.default "balg_server_compactions_total"
    ~help:"Snapshot compactions (WAL folded into snapshot.bagdb)"

let m_recovered =
  Metrics.counter Metrics.default "balg_server_wal_recovered_records_total"
    ~help:"WAL records replayed during store recovery"

let m_truncated =
  Metrics.counter Metrics.default "balg_server_wal_truncated_bytes_total"
    ~help:"Torn/corrupt WAL tail bytes dropped during store recovery"

let m_corrupt =
  Metrics.counter Metrics.default "balg_server_wal_corrupt_frames_total"
    ~help:
      "WAL frames rejected by the CRC/length/sequence checks (silent \
       corruption, as opposed to a clean torn tail)"

let g_wal_bytes =
  Metrics.gauge Metrics.default "balg_server_wal_bytes"
    ~help:"Current WAL size in bytes"

let h_wal_flush_ns =
  Metrics.histogram Metrics.default "balg_server_wal_flush_ns"
    ~help:"WAL record write+flush time (nanoseconds)"

let g_log_seq =
  Metrics.gauge Metrics.default "balg_server_log_seq"
    ~help:"Durable log offset (global sequence of the last flushed record)"

type t = {
  dir : string option;
  compact_bytes : int;
  mu : Mutex.t;
  mutable db : Bagdb.t;
  mutable revision : int;
  mutable wal : out_channel option;
  mutable wal_bytes : int;
  mutable wal_failed : bool;
  mutable seq : int;  (* global log offset of the last durable record *)
  mutable base : int;  (* offset covered by the snapshot / tail start *)
  mutable tail : (int * string) list;  (* newest-first (seq, payload) *)
  recovered : int;
  truncated : int;
  corrupt : bool;
}

let snapshot_path dir = Filename.concat dir "snapshot.bagdb"
let wal_path dir = Filename.concat dir "wal.log"
let base_path dir = Filename.concat dir "wal.base"

let render_op = function
  | Def (n, ty, v) ->
      Printf.sprintf "bag %s : %s = %s" n (Ty.to_string ty) (Value.to_string v)
  | Drop n -> Printf.sprintf "drop %s" n

(* Deterministic write semantics, shared by live applies and WAL replay:
   a def replaces in place (or appends at the end), so recovery rebuilds
   the exact relation order the live store had. *)
let apply_op db = function
  | Def (n, ty, v) ->
      if List.exists (fun (m, _, _) -> String.equal m n) db then
        List.map
          (fun (m, tym, vm) -> if String.equal m n then (n, ty, v) else (m, tym, vm))
          db
      else db @ [ (n, ty, v) ]
  | Drop n -> List.filter (fun (m, _, _) -> not (String.equal m n)) db

let validate db = function
  | Def _ -> Ok ()
  | Drop n ->
      if List.exists (fun (m, _, _) -> String.equal m n) db then Ok ()
      else Error (Printf.sprintf "no such relation %s" n)

(* One WAL record payload: a [drop NAME] line or a single [.bagdb]
   declaration, parsed by the same validating loader that guards database
   files — so every corruption shape it can reject, replay rejects too. *)
let parse_record ~path ~offset line =
  let db_err reason =
    raise (Bagdb.Db_error { path = Some path; offset; reason })
  in
  if String.length line >= 5 && String.equal (String.sub line 0 5) "drop " then begin
    let n = String.trim (String.sub line 5 (String.length line - 5)) in
    if String.equal n "" then db_err "drop record: missing relation name";
    Drop n
  end
  else
    match Bagdb.parse ~path line with
    | [ (n, ty, v) ] -> Def (n, ty, v)
    | _ -> db_err "WAL record is not a single declaration"

let op_of_payload line =
  match parse_record ~path:"<repl>" ~offset:0 line with
  | op -> Ok op
  | exception Bagdb.Db_error e -> Error (Bagdb.error_to_string e)

(* Replay complete, valid frames in order; stop at the first torn or
   corrupt one.  Frames at or below [base] are stale leftovers of a crash
   between compaction's base update and its WAL truncate: the snapshot
   already contains them, and skipping is idempotent because records are
   absolute (def replaces, drop removes).  Returns the rebuilt contents,
   the surviving-prefix length, the last offset, the replayed count, the
   surviving tail (newest-first) and the corruption reason if any. *)
let replay_wal ~path content ~base db0 =
  let len = String.length content in
  let rec go db pos seq applied tail =
    if pos >= len then (db, pos, seq, applied, tail, None)
    else
      match Frame.decode_at content ~pos with
      | Error `Torn -> (db, pos, seq, applied, tail, None)
      | Error (`Corrupt why) -> (db, pos, seq, applied, tail, Some why)
      | Ok (r, next) ->
          if r.Frame.seq <= seq then go db next seq applied tail
          else if r.Frame.seq <> seq + 1 then
            ( db,
              pos,
              seq,
              applied,
              tail,
              Some
                (Printf.sprintf "sequence gap: frame %d after record %d"
                   r.Frame.seq seq) )
          else (
            match parse_record ~path ~offset:pos r.Frame.payload with
            | op ->
                go (apply_op db op) next r.Frame.seq (applied + 1)
                  ((r.Frame.seq, r.Frame.payload) :: tail)
            | exception Bagdb.Db_error e ->
                ( db,
                  pos,
                  seq,
                  applied,
                  tail,
                  Some ("unparseable record: " ^ Bagdb.error_to_string e) ))
  in
  go db0 0 base 0 []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Durability invariant for renames: [rename tmp final] makes the new
   contents atomic, but the {e directory entry} itself is only durable
   once the parent directory is fsynced — without it a power loss just
   after the rename can resurrect the old file (or lose the new one
   entirely), silently undoing a compaction the WAL truncate already
   assumed.  Every rename below is therefore followed by [fsync_dir]. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let fsync_out oc =
  try Unix.fsync (Unix.descr_of_out_channel oc) with
  | Unix.Unix_error _ -> ()
  | Sys_error _ -> ()

let write_snapshot_file dir db =
  let snap = snapshot_path dir in
  let tmp = snap ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Bagdb.render db);
      output_string oc "\n";
      flush oc;
      fsync_out oc);
  Unix.rename tmp snap;
  fsync_dir dir

let write_base_file dir seq =
  let p = base_path dir in
  let tmp = p ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (string_of_int seq);
      output_char oc '\n';
      flush oc;
      fsync_out oc);
  Unix.rename tmp p;
  fsync_dir dir

let read_base_file dir =
  let p = base_path dir in
  if not (Sys.file_exists p) then 0
  else
    match int_of_string_opt (String.trim (read_file p)) with
    | Some n when n >= 0 -> n
    | _ ->
        raise
          (Bagdb.Db_error
             {
               path = Some p;
               offset = 0;
               reason = "malformed wal.base: expected a non-negative integer";
             })

let open_wal_channel ?(trunc = false) dir =
  let flags =
    if trunc then [ Open_wronly; Open_trunc; Open_creat; Open_binary ]
    else [ Open_wronly; Open_append; Open_creat; Open_binary ]
  in
  open_out_gen flags 0o644 (wal_path dir)

let open_store ?(compact_bytes = 1 lsl 20) ?(seed = []) ~dir () =
  match dir with
  | None ->
      {
        dir = None;
        compact_bytes;
        mu = Mutex.create ();
        db = seed;
        revision = 0;
        wal = None;
        wal_bytes = 0;
        wal_failed = false;
        seq = 0;
        base = 0;
        tail = [];
        recovered = 0;
        truncated = 0;
        corrupt = false;
      }
  | Some d ->
      if not (Sys.file_exists d) then Unix.mkdir d 0o755;
      let snap = snapshot_path d in
      let db0 =
        if Sys.file_exists snap then Bagdb.load snap
        else begin
          (* a fresh store: persist the seed as the initial snapshot so a
             restart without the seed flag finds the same contents *)
          if seed <> [] then write_snapshot_file d seed;
          seed
        end
      in
      let base = read_base_file d in
      let wal_file = wal_path d in
      let content =
        if Sys.file_exists wal_file then read_file wal_file else ""
      in
      let db, keep, seq, recs, tail, corrupt =
        replay_wal ~path:wal_file content ~base db0
      in
      let torn = String.length content - keep in
      if torn > 0 then begin
        (* drop the torn/corrupt tail so the next append starts at a
           frame boundary — the surviving prefix is exactly what replay
           used *)
        let fd = Unix.openfile wal_file [ Unix.O_WRONLY ] 0o644 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () -> Unix.ftruncate fd keep);
        Metrics.incr ~by:torn m_truncated
      end;
      (match corrupt with
      | Some why ->
          Metrics.incr m_corrupt;
          if Obs.on () then Obs.emit Obs.I ~cat:"wal" ~name:"wal.corrupt" ~args:[ ("reason", Obs.Str why); ("offset", Obs.Int keep) ]
      | None -> ());
      Metrics.incr ~by:recs m_recovered;
      Metrics.set_gauge g_wal_bytes (float_of_int keep);
      Metrics.set_gauge g_log_seq (float_of_int seq);
      {
        dir = Some d;
        compact_bytes;
        mu = Mutex.create ();
        db;
        revision = 0;
        wal = Some (open_wal_channel d);
        wal_bytes = keep;
        wal_failed = false;
        seq;
        base;
        tail;
        recovered = recs;
        truncated = torn;
        corrupt = corrupt <> None;
      }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let snapshot t = locked t (fun () -> t.db)
let state t = locked t (fun () -> (t.db, t.seq))
let revision t = locked t (fun () -> t.revision)
let log_seq t = locked t (fun () -> t.seq)
let base_seq t = locked t (fun () -> t.base)
let recovered_records t = t.recovered
let truncated_bytes t = t.truncated
let corruption_detected t = t.corrupt
let read_only t = locked t (fun () -> t.wal_failed)
let wal_size t = locked t (fun () -> match t.dir with None -> 0 | Some _ -> t.wal_bytes)

(* Seal the log at [seq] with contents [db]: persist the snapshot and its
   base offset, truncate the WAL, drop the in-memory tail.  Called with
   the store mutex held.  The write order matters for crash safety:
   snapshot first (fsynced), then wal.base (fsynced), then the WAL
   truncate — a crash between any two steps leaves either a stale WAL
   whose low frames replay idempotently over the newer snapshot, or a
   fresh base with the old WAL whose low frames are skipped by the
   sequence check. *)
let seal_locked t db seq =
  match t.dir with
  | None ->
      t.base <- seq;
      t.tail <- [];
      t.wal_bytes <- 0;
      Ok ()
  | Some d -> (
      match
        write_snapshot_file d db;
        write_base_file d seq;
        (match t.wal with Some oc -> close_out_noerr oc | None -> ());
        let oc = open_wal_channel ~trunc:true d in
        t.wal <- Some oc;
        t.wal_bytes <- 0;
        t.base <- seq;
        t.tail <- []
      with
      | () ->
          Metrics.set_gauge g_wal_bytes 0.;
          Ok ()
      | exception Sys_error m -> Error ("compaction failed: " ^ m)
      | exception Unix.Unix_error (e, _, _) ->
          Error ("compaction failed: " ^ Unix.error_message e))

(* Called with the store mutex held. *)
let compact_locked t =
  match seal_locked t t.db t.seq with
  | Ok () ->
      Metrics.incr m_compactions;
      if Obs.on () then Obs.emit Obs.I ~cat:"server" ~name:"store.compact" ~args:[ ("revision", Obs.Int t.revision); ("seq", Obs.Int t.seq) ];
      Ok ()
  | Error _ as e -> e

(* Called with the store mutex held.  An [Error] from here leaves the
   published contents unchanged; a torn write additionally flips the
   store read-only — later appends would land after a record recovery
   cannot reach. *)
let append_locked t record =
  match t.wal with
  | None ->
      (* in-memory: no log, but the byte budget still drives tail trims *)
      t.wal_bytes <- t.wal_bytes + String.length record;
      Ok ()
  | Some oc -> (
      match Fault.fire_payload wal_site with
      | Some cut ->
          let keep = cut mod String.length record in
          (try
             output_string oc (String.sub record 0 keep);
             flush oc
           with Sys_error _ -> ());
          t.wal_failed <- true;
          Metrics.incr m_wal_faults;
          if Obs.on () then Obs.emit Obs.I ~cat:"wal" ~name:"wal.torn" ~args:[ ("kept", Obs.Int keep); ("of", Obs.Int (String.length record)) ];
          Error
            "injected wal.append fault: torn record; store is read-only \
             until restart"
      | None -> (
          let t_flush = Unix.gettimeofday () in
          match
            output_string oc record;
            flush oc
          with
          | () ->
              Metrics.observe h_wal_flush_ns
                (int_of_float ((Unix.gettimeofday () -. t_flush) *. 1e9));
              t.wal_bytes <- t.wal_bytes + String.length record;
              Metrics.incr m_wal_appends;
              Metrics.set_gauge g_wal_bytes (float_of_int t.wal_bytes);
              if Obs.on () then Obs.emit Obs.I ~cat:"wal" ~name:"wal.append" ~args:[ ("bytes", Obs.Int (String.length record)) ];
              Ok ()
          | exception Sys_error m ->
              t.wal_failed <- true;
              Metrics.incr m_wal_faults;
              Error ("wal append failed: " ^ m ^ "; store is read-only")))

(* Frame, append, publish one record at offset [seq].  Called with the
   mutex held, after validation/sequencing. *)
let commit_locked t seq op =
  let payload = render_op op in
  match append_locked t (Frame.encode ~seq payload) with
  | Error _ as e -> e
  | Ok () ->
      t.db <- apply_op t.db op;
      t.seq <- seq;
      t.tail <- (seq, payload) :: t.tail;
      t.revision <- t.revision + 1;
      Metrics.set_gauge g_log_seq (float_of_int seq);
      if t.wal_bytes >= t.compact_bytes then
        (* best-effort: a failed compaction keeps the (intact) longer
           WAL, it does not fail the write *)
        ignore (compact_locked t);
      Ok ()

let count_result result =
  (match result with
  | Ok () -> Metrics.incr m_writes
  | Error _ -> Metrics.incr m_write_errors);
  result

let ro_error = "write-ahead log failed; store is read-only until restart"

let apply t op =
  count_result
    (locked t (fun () ->
         if t.wal_failed then Error ro_error
         else
           match validate t.db op with
           | Error _ as e -> e
           | Ok () -> commit_locked t (t.seq + 1) op))

let apply_replicated t ~seq op =
  count_result
    (locked t (fun () ->
         if t.wal_failed then Error ro_error
         else if seq <= t.seq then Ok () (* duplicate delivery: applied *)
         else if seq <> t.seq + 1 then
           Error
             (Printf.sprintf "replication gap: record %d after offset %d" seq
                t.seq)
         else commit_locked t seq op))

let install_snapshot t db ~seq =
  locked t (fun () ->
      if t.wal_failed then Error ro_error
      else
        match seal_locked t db seq with
        | Error _ as e -> e
        | Ok () ->
            t.db <- db;
            t.seq <- seq;
            t.revision <- t.revision + 1;
            Metrics.set_gauge g_log_seq (float_of_int seq);
            Ok ())

let read_from ?(synced = false) t ~after =
  locked t (fun () ->
      (* An unsynced [after = 0] always bootstraps: offset 0 means "I
         have nothing", and the log's records apply on top of the
         offset-0 state — which is the seed snapshot, not the empty
         database, so records alone cannot reconstruct it.  Once the
         follower holds a shipped snapshot ([synced]) the rule lapses:
         only [after < base] (compaction folded the tail away) still
         forces a snapshot, otherwise the ship loop would bootstrap an
         empty primary forever. *)
      if after < t.base || ((not synced) && after = 0) then
        `Snapshot (t.db, t.seq)
      else
        `Records (List.filter (fun (s, _) -> s > after) (List.rev t.tail)))

(* Polling subscription: the stdlib [Condition] has no timed wait, and
   the ship loop needs one to interleave heartbeats and stop checks with
   its blocking.  20ms granularity keeps replication latency well under
   the heartbeat interval without measurable idle cost. *)
let wait_change t ~seen ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if log_seq t > seen then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let compact t = locked t (fun () -> compact_locked t)

let close t =
  locked t (fun () ->
      match t.wal with
      | Some oc ->
          (try flush oc with Sys_error _ -> ());
          close_out_noerr oc;
          t.wal <- None
      | None -> ())
