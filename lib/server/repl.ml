(* WAL-shipping replication; see repl.mli for the model and wire shape. *)

open Balg
module Bagdb = Baglang.Bagdb

(* Injection sites.  [repl.ship]: the primary cuts the feed before a
   batch (a dropped replication link); [repl.connect]: a follower connect
   attempt fails; [repl.apply]: a follower apply fails and forces a
   disconnect + resync.  All three exercise the same recovery path the
   real faults would: the follower reconnects with backoff and the
   sequence numbers make re-delivery idempotent. *)
let ship_site = Fault.register "repl.ship"
let connect_site = Fault.register "repl.connect"
let apply_site = Fault.register "repl.apply"

let m_shipped =
  Metrics.counter Metrics.default "balg_repl_shipped_records_total"
    ~help:"WAL records streamed to followers"

let m_snap_served =
  Metrics.counter Metrics.default "balg_repl_snapshots_served_total"
    ~help:"Snapshot bootstrap blocks streamed to followers"

let m_ship_faults =
  Metrics.counter Metrics.default "balg_repl_ship_faults_total"
    ~help:"Replication feeds cut by the repl.ship fault site"

let m_applied =
  Metrics.counter Metrics.default "balg_repl_applied_records_total"
    ~help:"Shipped WAL records applied by the follower"

let m_snap_installed =
  Metrics.counter Metrics.default "balg_repl_snapshots_installed_total"
    ~help:"Snapshot bootstraps installed by the follower"

let m_disconnects =
  Metrics.counter Metrics.default "balg_repl_disconnects_total"
    ~help:"Follower disconnects and failed connect attempts"

let g_lag =
  Metrics.gauge Metrics.default "balg_repl_lag"
    ~help:"Replication lag in records (primary offset - applied offset)"

let h_lag_records =
  Metrics.histogram Metrics.default "balg_repl_lag_records"
    ~help:"Replication lag in records, sampled at each primary-offset update"

type params = {
  backoff_min_s : float;
  backoff_max_s : float;
  lost_after : int;
  read_timeout_s : float;
  hb_interval_s : float;
}

let default_params =
  {
    backoff_min_s = 0.1;
    backoff_max_s = 5.0;
    lost_after = 8;
    read_timeout_s = 3.0;
    hb_interval_s = 0.5;
  }

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let after prefix s =
  String.sub s (String.length prefix) (String.length s - String.length prefix)

(* --- primary side: the ship loop ------------------------------------------- *)

let serve_sync ~store ~params ~stopping ~after oc =
  let send line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let cut () =
    Metrics.incr m_ship_faults;
    if Obs.on () then Obs.emit Obs.I ~tid:Obs.lane_repl ~cat:"repl" ~name:"repl.ship.cut" ~args:[];
    raise Exit
  in
  match
    send (Printf.sprintf "ok %d" (Store.log_seq store));
    (* [synced] flips once the follower provably holds a state our
       records extend — after the first shipped snapshot or batch.  It
       relaxes the store's bootstrap-at-offset-0 rule so resuming the
       stream at offset 0 ships the tail, not snapshots forever. *)
    let rec stream ~synced last =
      if not (stopping ()) then
        match Store.read_from ~synced store ~after:last with
        | `Snapshot (db, seq) ->
            if Fault.fire ship_site then cut ();
            (* the follower's position predates what our WAL still
               covers: ship current state wholesale, then resume the
               tail from its offset *)
            send (Printf.sprintf "snapshot %d" seq);
            let body = Bagdb.render db in
            if not (String.equal body "") then begin
              output_string oc body;
              output_char oc '\n'
            end;
            send ".";
            Metrics.incr m_snap_served;
            if Obs.on () then Obs.emit Obs.I ~tid:Obs.lane_repl ~cat:"repl" ~name:"repl.snapshot.served" ~args:[ ("seq", Obs.Int seq) ];
            stream ~synced:true seq
        | `Records [] ->
            if Store.wait_change store ~seen:last ~timeout_s:params.hb_interval_s
            then stream ~synced last
            else begin
              (* idle heartbeat: keeps the follower's read timeout fed
                 and tells it lag is zero, not that we died *)
              send (Printf.sprintf "hb %d" last);
              stream ~synced last
            end
        | `Records rs ->
            if Fault.fire ship_site then cut ();
            if Obs.on () then Obs.emit Obs.B ~tid:Obs.lane_repl ~cat:"repl" ~name:"ship" ~args:[ ("records", Obs.Int (List.length rs)) ];
            Fun.protect
              ~finally:(fun () -> if Obs.on () then Obs.emit Obs.E ~tid:Obs.lane_repl ~cat:"repl" ~name:"ship")
              (fun () ->
                List.iter
                  (fun (seq, payload) ->
                    output_string oc (Frame.encode ~seq payload))
                  rs;
                flush oc);
            Metrics.incr ~by:(List.length rs) m_shipped;
            stream ~synced:true (List.fold_left (fun _ (s, _) -> s) last rs)
    in
    stream ~synced:false after
  with
  | () -> ()
  | exception Exit -> () (* feed cut by the fault site; caller closes *)
  | exception Sys_error _ -> () (* follower went away *)
  | exception Unix.Unix_error _ -> ()

(* --- follower side ---------------------------------------------------------- *)

type follower = {
  f_store : Store.t;
  f_host : string;
  f_port : int;
  f_params : params;
  mu : Mutex.t;
  mutable conn : Client.t option;
  mutable stopping : bool;
  mutable connected : bool;
  mutable primary_seq : int;
  mutable reconnects : int;
  mutable failures : int;
  mutable thread : Thread.t option;
}

type status = {
  connected : bool;
  applied_seq : int;
  primary_seq : int;
  lag : int;
  reconnects : int;
  failures : int;
  lost : bool;
}

exception Repl_error of string

let set_primary_seq f seq =
  Mutex.lock f.mu;
  if seq > f.primary_seq then f.primary_seq <- seq;
  let p = f.primary_seq in
  Mutex.unlock f.mu;
  let lag = max 0 (p - Store.log_seq f.f_store) in
  Metrics.set_gauge g_lag (float_of_int lag);
  Metrics.observe h_lag_records lag

let note_failure f msg =
  Mutex.lock f.mu;
  f.connected <- false;
  f.failures <- f.failures + 1;
  let n = f.failures in
  Mutex.unlock f.mu;
  Metrics.incr m_disconnects;
  if Obs.on () then Obs.emit Obs.I ~tid:Obs.lane_repl ~cat:"repl" ~name:"repl.disconnect" ~args:[ ("reason", Obs.Str msg); ("failures", Obs.Int n) ]

let read_snapshot_block ic =
  let b = Buffer.create 256 in
  let rec go first =
    let line = strip_cr (input_line ic) in
    if String.equal line "." then Buffer.contents b
    else begin
      if not first then Buffer.add_char b '\n';
      Buffer.add_string b line;
      go false
    end
  in
  go true

(* One established sync stream: apply lines until the connection drops,
   a record fails its gate, or we are stopped.  Every rejection raises —
   the outer loop disconnects and resyncs from our durable offset, which
   is always safe (duplicate delivery is a no-op, a gap forces the
   primary to decide between tail and snapshot). *)
let run_session f c =
  let ic, oc = Client.raw c in
  output_string oc (Printf.sprintf "sync %d\n" (Store.log_seq f.f_store));
  flush oc;
  let hello = strip_cr (input_line ic) in
  (match String.split_on_char ' ' hello with
  | "ok" :: cur :: _ ->
      (match int_of_string_opt cur with
      | Some n -> set_primary_seq f n
      | None -> ())
  | _ -> raise (Repl_error ("unexpected sync reply: " ^ hello)));
  Mutex.lock f.mu;
  f.connected <- true;
  f.failures <- 0;
  Mutex.unlock f.mu;
  if Obs.on () then Obs.emit Obs.I ~tid:Obs.lane_repl ~cat:"repl" ~name:"repl.connected" ~args:[ ("seq", Obs.Int (Store.log_seq f.f_store)) ];
  while not f.stopping do
    let line = strip_cr (input_line ic) in
    if String.length line > 0 && line.[0] = '@' then begin
      (* a shipped record passes the same CRC/length gate recovery uses
         before it can touch the store *)
      match Frame.decode_line line with
      | Error why -> raise (Repl_error ("corrupt shipped frame: " ^ why))
      | Ok r -> (
          if Fault.fire apply_site then
            raise (Repl_error "injected repl.apply fault");
          match Store.op_of_payload r.Frame.payload with
          | Error e -> raise (Repl_error ("bad shipped record: " ^ e))
          | Ok op -> (
              match Store.apply_replicated f.f_store ~seq:r.Frame.seq op with
              | Ok () ->
                  Metrics.incr m_applied;
                  set_primary_seq f r.Frame.seq
              | Error e -> raise (Repl_error e)))
    end
    else if starts_with "hb " line then (
      match int_of_string_opt (String.trim (after "hb " line)) with
      | Some n -> set_primary_seq f n
      | None -> ())
    else if starts_with "snapshot " line then (
      match int_of_string_opt (String.trim (after "snapshot " line)) with
      | None -> raise (Repl_error "malformed snapshot header")
      | Some seq -> (
          let body = read_snapshot_block ic in
          match Bagdb.parse body with
          | exception Bagdb.Db_error e ->
              raise (Repl_error ("corrupt snapshot: " ^ Bagdb.error_to_string e))
          | db -> (
              match Store.install_snapshot f.f_store db ~seq with
              | Ok () ->
                  Metrics.incr m_snap_installed;
                  if Obs.on () then Obs.emit Obs.I ~tid:Obs.lane_repl ~cat:"repl" ~name:"repl.snapshot.installed" ~args:[ ("seq", Obs.Int seq) ];
                  set_primary_seq f seq
              | Error e -> raise (Repl_error e))))
    else raise (Repl_error ("unexpected line from primary: " ^ line))
  done

(* Backoff sleep in small slices so [stop] never waits for the cap. *)
let sleep_interruptible f total =
  let deadline = Unix.gettimeofday () +. total in
  while (not f.stopping) && Unix.gettimeofday () < deadline do
    Thread.delay 0.05
  done

let follower_loop f =
  while not f.stopping do
    (match
       if Fault.fire connect_site then Error "injected repl.connect fault"
       else
         Client.connect ~timeout_s:f.f_params.read_timeout_s ~host:f.f_host
           ~port:f.f_port ()
     with
    | Error msg -> note_failure f msg
    | Ok c ->
        Mutex.lock f.mu;
        if f.stopping then begin
          Mutex.unlock f.mu;
          Client.close c
        end
        else begin
          f.conn <- Some c;
          Mutex.unlock f.mu;
          (match run_session f c with
          | () -> () (* stopped *)
          | exception End_of_file -> note_failure f "primary closed the stream"
          | exception Sys_error m -> note_failure f m
          (* the read timeout tripping: no frame and no heartbeat for
             read_timeout_s means the primary is dead or partitioned *)
          | exception Sys_blocked_io -> note_failure f "read timed out"
          | exception Unix.Unix_error (e, _, _) ->
              note_failure f (Unix.error_message e)
          | exception Repl_error m -> note_failure f m);
          Mutex.lock f.mu;
          f.conn <- None;
          f.connected <- false;
          Mutex.unlock f.mu;
          Client.close c
        end);
    if not f.stopping then begin
      Mutex.lock f.mu;
      f.reconnects <- f.reconnects + 1;
      let att = max 1 f.failures in
      Mutex.unlock f.mu;
      sleep_interruptible f
        (Client.backoff_delay ~base_s:f.f_params.backoff_min_s
           ~cap_s:f.f_params.backoff_max_s ~attempt:att ())
    end
  done

let start ~store ~host ~port ~params =
  let f =
    {
      f_store = store;
      f_host = host;
      f_port = port;
      f_params = params;
      mu = Mutex.create ();
      conn = None;
      stopping = false;
      connected = false;
      primary_seq = Store.log_seq store;
      reconnects = 0;
      failures = 0;
      thread = None;
    }
  in
  f.thread <- Some (Thread.create (fun () -> follower_loop f) ());
  f

let status f =
  Mutex.lock f.mu;
  let connected = f.connected
  and primary_seq = f.primary_seq
  and reconnects = f.reconnects
  and failures = f.failures in
  Mutex.unlock f.mu;
  (* the store has its own lock; never read it while holding ours *)
  let applied_seq = Store.log_seq f.f_store in
  {
    connected;
    applied_seq;
    primary_seq = max primary_seq applied_seq;
    lag = max 0 (primary_seq - applied_seq);
    reconnects;
    failures;
    lost = failures >= f.f_params.lost_after;
  }

let stop f =
  Mutex.lock f.mu;
  f.stopping <- true;
  let c = f.conn in
  let th = f.thread in
  f.thread <- None;
  Mutex.unlock f.mu;
  (* wake a read blocked on the stream: shutdown surfaces as EOF there *)
  Option.iter Client.shutdown c;
  Option.iter Thread.join th
