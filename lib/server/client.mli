(** A small synchronous client for the [balgd] wire protocol, shared by
    [balgi client], the replication follower and the server tests.

    One {!t} is one connection / one server session.  {!request} sends a
    single command line and reads the response using the protocol's
    framing rules: [metrics] and [dump] responses are multi-line,
    terminated by a lone ["."] line (returned with the terminator
    stripped); everything else is a single line. *)

type t

val connect :
  ?timeout_s:float -> host:string -> port:int -> unit -> (t, string) result
(** TCP connect.  With [timeout_s] the connect itself is timed (a
    non-blocking connect polled with [select]) and the socket gets
    matching [SO_RCVTIMEO]/[SO_SNDTIMEO] timeouts, so a later
    {!request} against a stalled server surfaces a timeout [Error]
    instead of blocking forever.  [Error] carries a human-readable
    connect failure. *)

val request : t -> string -> (string, string) result
(** Send one command line, read one framed response.  [Ok] is the raw
    response text (which may itself be an ["err ..."] or ["verdict ..."]
    protocol line — classifying it is the caller's business); [Error] is
    a transport failure (connection reset, EOF mid-response, read
    timeout). *)

val raw : t -> in_channel * out_channel
(** The underlying channels, for protocol extensions that stream past
    the one-line framing (the replication [sync] feed).  The caller owns
    the read loop; {!close} still closes the connection. *)

val shutdown : t -> unit
(** [shutdown(2)] both directions without closing the descriptor: wakes
    any thread blocked reading this connection (it sees EOF).  Used to
    interrupt a streaming read from another thread; follow with
    {!close}. *)

val close : t -> unit
(** Best-effort [quit] then close.  Idempotent. *)

val http_get :
  ?timeout_s:float -> host:string -> port:int -> string -> (string, string) result
(** One-shot [GET path] against the same port (the server sniffs HTTP
    from the first line).  [Ok body] on a 200, [Error] otherwise — a
    non-200 error carries the status line, so callers can distinguish a
    503 health degradation from a transport failure. *)

(** {2 Retry policy}

    The client-side half of failover robustness: capped exponential
    backoff with {e deterministic} jitter (a pure function of the
    attempt number — reproducible under test, no global RNG), shared by
    [balgi client --retries] and the replication follower's reconnect
    loop. *)

val backoff_delay :
  ?base_s:float -> ?cap_s:float -> attempt:int -> unit -> float
(** Delay before retry number [attempt] (counting from 1):
    [min cap_s (base_s * 2^(attempt-1))], scaled by a deterministic
    jitter factor in [0.5, 1.0] derived from [attempt] alone.  Defaults:
    [base_s = 0.1], [cap_s = 5.0]. *)

val retrying :
  attempts:int ->
  ?base_s:float ->
  ?cap_s:float ->
  ?sleep:(float -> unit) ->
  (int -> ('a, string) result) ->
  ('a, string) result
(** [retrying ~attempts f] runs [f 0]; on [Error] it sleeps
    {!backoff_delay} and retries [f 1], [f 2], ... up to [attempts]
    retries, returning the first [Ok] or the last [Error].  [sleep]
    (default {!Unix.sleepf}) exists so tests can run the policy without
    waiting. *)
