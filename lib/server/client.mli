(** A small synchronous client for the [balgd] wire protocol, shared by
    [balgi client] and the server tests.

    One {!t} is one connection / one server session.  {!request} sends a
    single command line and reads the response using the protocol's
    framing rules: [metrics] and [dump] responses are multi-line,
    terminated by a lone ["."] line (returned with the terminator
    stripped); everything else is a single line. *)

type t

val connect : host:string -> port:int -> (t, string) result
(** TCP connect.  [Error] carries a human-readable connect failure. *)

val request : t -> string -> (string, string) result
(** Send one command line, read one framed response.  [Ok] is the raw
    response text (which may itself be an ["err ..."] or ["verdict ..."]
    protocol line — classifying it is the caller's business); [Error] is
    a transport failure (connection reset, EOF mid-response). *)

val close : t -> unit
(** Best-effort [quit] then close.  Idempotent. *)

val http_get : host:string -> port:int -> string -> (string, string) result
(** One-shot [GET path] against the same port (the server sniffs HTTP
    from the first line).  [Ok body] on a 200, [Error] otherwise. *)
