(** Checksummed WAL record framing, shared by the on-disk log and the
    replication wire.

    One frame is one line:
    {v @<seq> <len> <crc32> <payload>\n v}
    where [seq] is the record's {e global log offset} (1-based, monotone
    across compactions — the position in the logical log, not a byte
    offset in the current file), [len] is the byte length of [payload]
    and [crc32] is the IEEE CRC-32 of [payload], printed as 8 lowercase
    hex digits.  Payloads are single lines (a [.bagdb] declaration or a
    [drop NAME] record) and never contain a newline, so the frame's
    ['\n'] is the only one on the line.

    The header lets recovery — and a follower applying shipped frames —
    tell the two failure shapes apart:
    - a {e torn tail}: the final line has no terminator (a write was cut
      by a crash mid-record).  Normal; replay stops there and the tail is
      truncated.
    - {e corruption}: a terminated line whose header does not parse,
      whose payload length disagrees with [len], whose CRC disagrees
      with [crc32], or whose [seq] breaks the expected sequence.  Replay
      also stops there, but the store reports it as detected corruption
      rather than a clean torn tail. *)

val crc32 : string -> int
(** IEEE CRC-32 (polynomial 0xEDB88320) of the whole string, in
    [0, 2^32). *)

type record = { seq : int; payload : string }

val encode : seq:int -> string -> string
(** [encode ~seq payload] is the framed line, terminator included.
    @raise Invalid_argument if the payload contains a newline. *)

val decode_line : string -> (record, string) result
(** Decode one frame line (terminator already stripped).  [Error]
    describes the corruption (bad header, length mismatch, CRC
    mismatch). *)

val decode_at :
  string -> pos:int -> (record * int, [ `Torn | `Corrupt of string ]) result
(** Decode the frame starting at byte [pos] of a log buffer; [Ok]
    carries the record and the position just past its terminator.
    [`Torn] when the line never terminates (crash mid-append). *)
