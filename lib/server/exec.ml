(* The admission-controlled executor; see exec.mli for the model. *)

open Balg

type outcome =
  [ `Ok of Value.t * Ty.t | `Verdict of Budget.exhaustion | `Fail of string ]

(* Injection site: a worker domain dies at job pickup.  The job fails
   with a structured error and the dying worker spawns its replacement —
   the supervised-restart ladder a production executor needs. *)
let worker_site = Fault.register "server.worker"

let m_admitted =
  Metrics.counter Metrics.default "balg_server_admitted_total"
    ~help:"Requests admitted to a worker domain"

let m_queued =
  Metrics.counter Metrics.default "balg_server_queued_total"
    ~help:"Requests that waited in the admission queue before running"

let m_rejected =
  Metrics.counter Metrics.default "balg_server_rejected_total"
    ~help:"Requests rejected by admission control"

let m_worker_deaths =
  Metrics.counter Metrics.default "balg_server_worker_deaths_total"
    ~help:"Worker domains killed (injected) and respawned"

let g_inflight =
  Metrics.gauge Metrics.default "balg_server_inflight_fuel"
    ~help:"Aggregate fuel weight of requests currently evaluating"

let g_queue =
  Metrics.gauge Metrics.default "balg_server_queue_depth"
    ~help:"Requests waiting in the admission queue"

let h_queue_wait_ns =
  Metrics.histogram Metrics.default "balg_server_queue_wait_ns"
    ~help:"Admission-queue wait per request, submit to dequeue"

type stats = { s_queue_us : int; s_enq_us : float; s_arm_us : float }

type job = {
  j_weight : int;
  j_budget : Budget.t;
  j_run : unit -> outcome;
  j_enq_us : float;  (* Obs.now_us at submit, for queue-wait accounting *)
  j_mu : Mutex.t;
  j_cv : Condition.t;
  mutable j_result : (outcome * stats, string) result option;
}

type t = {
  ceiling : int;
  max_queue : int;
  mu : Mutex.t;
  cv : Condition.t;  (* signalled on: new job, fuel released, shutdown *)
  queue : job Queue.t;
  mutable inflight : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  mutable deaths : int;
}

let deliver j r =
  Mutex.lock j.j_mu;
  j.j_result <- Some r;
  Condition.signal j.j_cv;
  Mutex.unlock j.j_mu

(* Strict FIFO under the ceiling: only the head job is ever considered,
   and it runs only when its weight fits alongside the fuel already in
   flight — so a heavy request cannot be starved by a stream of light
   ones slipping past it, and aggregate admitted fuel never exceeds the
   ceiling. *)
let rec take_next t =
  if t.stopping then None
  else
    match Queue.peek_opt t.queue with
    | Some j when t.inflight + j.j_weight <= t.ceiling ->
        ignore (Queue.pop t.queue);
        t.inflight <- t.inflight + j.j_weight;
        Metrics.set_gauge g_inflight (float_of_int t.inflight);
        Metrics.set_gauge g_queue (float_of_int (Queue.length t.queue));
        Some j
    | _ ->
        Condition.wait t.cv t.mu;
        take_next t

let release t j =
  Mutex.lock t.mu;
  t.inflight <- t.inflight - j.j_weight;
  Metrics.set_gauge g_inflight (float_of_int t.inflight);
  Condition.broadcast t.cv;
  Mutex.unlock t.mu

let rec worker_loop t =
  Mutex.lock t.mu;
  let j = take_next t in
  Mutex.unlock t.mu;
  match j with
  | None -> () (* shutdown *)
  | Some j ->
      if Fault.fire worker_site then begin
        (* injected worker death: fail the job, hand the fuel back, spawn
           a replacement domain, and let this domain exit *)
        release t j;
        deliver j (Error "worker died (injected fault); request abandoned");
        Mutex.lock t.mu;
        t.deaths <- t.deaths + 1;
        Metrics.incr m_worker_deaths;
        if not t.stopping then
          t.domains <- Domain.spawn (fun () -> worker_loop t) :: t.domains;
        Mutex.unlock t.mu
      end
      else begin
        Metrics.incr m_admitted;
        (* the deadline clock starts here — at dequeue, not at parse — so
           time spent waiting for admission is never billed against the
           request's deadline (see Budget.create/arm) *)
        Budget.arm j.j_budget;
        let arm_us = Obs.now_us () in
        let queue_us = max 0 (int_of_float (arm_us -. j.j_enq_us)) in
        Metrics.observe h_queue_wait_ns (queue_us * 1000);
        let stats =
          { s_queue_us = queue_us; s_enq_us = j.j_enq_us; s_arm_us = arm_us }
        in
        if Obs.on () then Obs.emit Obs.I ~cat:"queue" ~name:"dequeue" ~args:[ ("wait_us", Obs.Int queue_us) ];
        let r =
          try Ok (j.j_run (), stats)
          with exn -> Ok (`Fail ("internal: " ^ Printexc.to_string exn), stats)
        in
        release t j;
        deliver j r;
        worker_loop t
      end

let create ~ceiling ~max_queue ~workers () =
  let t =
    {
      ceiling = max 1 ceiling;
      max_queue = max 1 max_queue;
      mu = Mutex.create ();
      cv = Condition.create ();
      queue = Queue.create ();
      inflight = 0;
      stopping = false;
      domains = [];
      deaths = 0;
    }
  in
  let workers = max 1 workers in
  t.domains <-
    List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t ~weight ~budget ~run =
  let weight = max 1 weight in
  Mutex.lock t.mu;
  if t.stopping then begin
    Mutex.unlock t.mu;
    Metrics.incr m_rejected;
    Error "server shutting down"
  end
  else if weight > t.ceiling then begin
    Mutex.unlock t.mu;
    Metrics.incr m_rejected;
    Error
      (Printf.sprintf
         "request fuel %d exceeds the admission ceiling %d (lower the \
          session fuel limit)"
         weight t.ceiling)
  end
  else if Queue.length t.queue >= t.max_queue then begin
    Mutex.unlock t.mu;
    Metrics.incr m_rejected;
    Error "admission queue full"
  end
  else begin
    if t.inflight + weight > t.ceiling || not (Queue.is_empty t.queue) then
      Metrics.incr m_queued;
    let j =
      {
        j_weight = weight;
        j_budget = budget;
        j_run = run;
        j_enq_us = Obs.now_us ();
        j_mu = Mutex.create ();
        j_cv = Condition.create ();
        j_result = None;
      }
    in
    Queue.push j t.queue;
    Metrics.set_gauge g_queue (float_of_int (Queue.length t.queue));
    Condition.broadcast t.cv;
    Mutex.unlock t.mu;
    Mutex.lock j.j_mu;
    while j.j_result = None do
      Condition.wait j.j_cv j.j_mu
    done;
    let r = Option.get j.j_result in
    Mutex.unlock j.j_mu;
    r
  end

let inflight t =
  Mutex.lock t.mu;
  let n = t.inflight in
  Mutex.unlock t.mu;
  n

let queue_depth t =
  Mutex.lock t.mu;
  let n = Queue.length t.queue in
  Mutex.unlock t.mu;
  n

let worker_deaths t =
  Mutex.lock t.mu;
  let n = t.deaths in
  Mutex.unlock t.mu;
  n

let shutdown t =
  Mutex.lock t.mu;
  t.stopping <- true;
  let abandoned = Queue.fold (fun acc j -> j :: acc) [] t.queue in
  Queue.clear t.queue;
  Metrics.set_gauge g_queue 0.;
  Condition.broadcast t.cv;
  let domains = t.domains in
  Mutex.unlock t.mu;
  List.iter (fun j -> deliver j (Error "server shutting down")) abandoned;
  List.iter Domain.join domains;
  (* a worker that died and respawned after the snapshot above: none can
     exist — respawn checks [stopping] under the same mutex *)
  Mutex.lock t.mu;
  let rest =
    List.filter (fun d -> not (List.memq d domains)) t.domains
  in
  Mutex.unlock t.mu;
  List.iter Domain.join rest
