(** Generic counted multisets (bags) over an ordered element type.

    This is the OCaml-level counterpart of the paper's bag datatype: a finite
    map from elements to positive {!Bignat.t} multiplicities.  The concrete
    nested-bag values of the interpreter live in [Core.Value]; this functor
    serves generators, statistics and tests that need bags of plain OCaml
    values. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) : sig
  type elt = Elt.t
  type t

  val empty : t
  val is_empty : t -> bool

  val singleton : elt -> t
  (** A bag in which the element 1-belongs. *)

  val add : ?count:Bignat.t -> elt -> t -> t
  (** [add ~count x b] increases the multiplicity of [x] by [count]
      (default 1).  Adding a zero count is the identity. *)

  val count : elt -> t -> Bignat.t
  (** Multiplicity of an element; {!Bignat.zero} when absent. *)

  val mem : elt -> t -> bool

  val support : t -> elt list
  (** Distinct elements in increasing order. *)

  val support_size : t -> int

  val cardinal : t -> Bignat.t
  (** Total number of occurrences (the paper's bag size). *)

  val of_list : elt list -> t

  val of_assoc : (elt * Bignat.t) list -> t
  (** Bulk constructor: counts of equal elements are summed, zero counts are
      dropped.  Sorts once and inserts each distinct element exactly once,
      so it is preferred over folding {!add} for large or duplicate-heavy
      input. *)

  val to_list : t -> (elt * Bignat.t) list

  val union_add : t -> t -> t
  (** Additive union: multiplicities are summed. *)

  val union_max : t -> t -> t
  (** Maximal union: multiplicities are maximised. *)

  val inter : t -> t -> t
  (** Intersection: multiplicities are minimised. *)

  val diff : t -> t -> t
  (** Monus difference: multiplicities are [sup (0, p - q)]. *)

  val subbag : t -> t -> bool
  (** [subbag b b'] iff every [n]-member of [b] [p]-belongs to [b'] with
      [p >= n]. *)

  val dedup : t -> t
  (** Duplicate elimination: every multiplicity collapses to one. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int

  val fold : (elt -> Bignat.t -> 'a -> 'a) -> t -> 'a -> 'a
  val iter : (elt -> Bignat.t -> unit) -> t -> unit

  val map : (elt -> elt) -> t -> t
  (** Restructuring in the MAP sense: images coalesce additively. *)

  val filter : (elt -> bool) -> t -> t

  val for_all : (elt -> Bignat.t -> bool) -> t -> bool
  val exists : (elt -> Bignat.t -> bool) -> t -> bool

  val partition : (elt -> bool) -> t -> t * t
  (** Elements satisfying the predicate, and the rest. *)

  val scale : Bignat.t -> t -> t
  (** Multiply every multiplicity; scaling by zero empties the bag. *)

  val remove : ?count:Bignat.t -> elt -> t -> t
  (** Decrease a multiplicity (monus); default removes one occurrence. *)

  val choose_opt : t -> (elt * Bignat.t) option
  (** Smallest element with its multiplicity, if any. *)
end
