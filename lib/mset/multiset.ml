module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) = struct
  module M = Map.Make (Elt)

  type elt = Elt.t

  (* Invariant: every stored multiplicity is strictly positive. *)
  type t = Bignat.t M.t

  let empty = M.empty
  let is_empty = M.is_empty

  let add ?(count = Bignat.one) x b =
    if Bignat.is_zero count then b
    else
      M.update x
        (function None -> Some count | Some c -> Some (Bignat.add c count))
        b

  let singleton x = add x empty
  let count x b = match M.find_opt x b with None -> Bignat.zero | Some c -> c
  let mem x b = M.mem x b
  let support b = List.map fst (M.bindings b)
  let support_size b = M.cardinal b
  let cardinal b = M.fold (fun _ c acc -> Bignat.add c acc) b Bignat.zero
  (* Bulk construction: one sort, then coalesce equal neighbours, so each
     distinct element is inserted into the map exactly once.  Much cheaper
     than repeated [add] on duplicate-heavy input. *)
  let of_assoc pairs =
    let sorted =
      List.sort
        (fun (x, _) (y, _) -> Elt.compare x y)
        (List.filter (fun (_, c) -> not (Bignat.is_zero c)) pairs)
    in
    let rec go acc = function
      | [] -> acc
      | (x, c) :: tl ->
          let rec take c = function
            | (y, d) :: rest when Elt.compare x y = 0 ->
                take (Bignat.add c d) rest
            | rest -> (c, rest)
          in
          let c, rest = take c tl in
          go (M.add x c acc) rest
    in
    go M.empty sorted

  let of_list l = of_assoc (List.map (fun x -> (x, Bignat.one)) l)
  let to_list b = M.bindings b

  let merge_counts f a b =
    M.merge
      (fun _ ca cb ->
        let ca = Option.value ca ~default:Bignat.zero
        and cb = Option.value cb ~default:Bignat.zero in
        let c = f ca cb in
        if Bignat.is_zero c then None else Some c)
      a b

  let union_add a b = merge_counts Bignat.add a b
  let union_max a b = merge_counts Bignat.max a b
  let inter a b = merge_counts Bignat.min a b
  let diff a b = merge_counts Bignat.monus a b

  let subbag a b =
    M.for_all (fun x c -> Bignat.compare c (count x b) <= 0) a

  let dedup b = M.map (fun _ -> Bignat.one) b
  let equal a b = M.equal Bignat.equal a b
  let compare a b = M.compare Bignat.compare a b
  let fold f b acc = M.fold f b acc
  let iter f b = M.iter f b

  let map f b =
    M.fold (fun x c acc -> add ~count:c (f x) acc) b empty

  let filter p b = M.filter (fun x _ -> p x) b
  let for_all p b = M.for_all p b
  let exists p b = M.exists p b
  let partition p b = M.partition (fun x _ -> p x) b

  let scale k b =
    if Bignat.is_zero k then empty else M.map (fun c -> Bignat.mul k c) b

  let remove ?(count = Bignat.one) x b =
    M.update x
      (function
        | None -> None
        | Some c ->
            let c' = Bignat.monus c count in
            if Bignat.is_zero c' then None else Some c')
      b

  let choose_opt b = M.min_binding_opt b
end
