(** The Lemma 5.4 construction: the star graphs [G{_k,T}] and [G'{_k,T}]
    (Fig. 1) whose nodes are sets of atomic constants.

    Atoms are integers [1..n] ([n] even); a set of atoms is a bit mask.  The
    central node [α] is the full set; the other nodes are the two families
    [In{_n}] and [Out{_n}] of (n/2)-subsets built inductively so that for
    every atom [i], exactly half the members of each family contain [i]
    (Property (1) of the proof).  In [G] every [In] node points at [α] and
    [α] points at every [Out] node; [G'] flips one [α → o] edge, making the
    in-degree of [α] exceed its out-degree. *)

type mask = int

let full_mask n = (1 lsl n) - 1
let mem_atom i (s : mask) = s land (1 lsl (i - 1)) <> 0
let set_cardinal (s : mask) =
  let rec go acc s = if s = 0 then acc else go (acc + (s land 1)) (s lsr 1) in
  go 0 s

let atoms_of_mask n (s : mask) =
  List.filter (fun i -> mem_atom i s) (List.init n (fun i -> i + 1))

(** [in_out n] is the pair [(In{_n}, Out{_n})] for even [n >= 4]. *)
let rec in_out n =
  if n < 4 || n mod 2 <> 0 then
    invalid_arg "Construction.in_out: n must be even and >= 4";
  if n = 4 then
    (* In_4 = { {1,2}, {3,4} },  Out_4 = { {1,3}, {2,4} } *)
    ([ 0b0011; 0b1100 ], [ 0b0101; 0b1010 ])
  else begin
    let inn, out = in_out (n - 2) in
    let bit_n1 = 1 lsl (n - 2) and bit_n2 = 1 lsl (n - 1) in
    ( List.map (fun s -> s lor bit_n1) inn @ List.map (fun s -> s lor bit_n2) out,
      List.map (fun s -> s lor bit_n1) out @ List.map (fun s -> s lor bit_n2) inn )
  end

(** Property (1): for every atom [i], exactly half of [In{_n}] (resp.
    [Out{_n}]) contains [i]. *)
let property_one n =
  let inn, out = in_out n in
  let holds family =
    List.for_all
      (fun i ->
        2 * List.length (List.filter (mem_atom i) family) = List.length family)
      (List.init n (fun i -> i + 1))
  in
  holds inn && holds out

type graph = {
  n : int;
  alpha : mask;
  in_nodes : mask list;
  out_nodes : mask list;
  edges : (mask * mask) list;
}

(** The graph [G{_n}]: balanced star. *)
let g_balanced n =
  let inn, out = in_out n in
  let alpha = full_mask n in
  {
    n;
    alpha;
    in_nodes = inn;
    out_nodes = out;
    edges =
      List.map (fun s -> (s, alpha)) inn @ List.map (fun s -> (alpha, s)) out;
  }

(** The graph [G'{_n}]: one [α → o] edge inverted, so
    indeg(α) = outdeg(α) + 2. *)
let g_flipped n =
  let g = g_balanced n in
  match g.out_nodes with
  | [] -> invalid_arg "Construction.g_flipped"
  | o :: _ ->
      let edges =
        List.map
          (fun (x, y) -> if x = g.alpha && y = o then (o, g.alpha) else (x, y))
          g.edges
      in
      { g with edges }

let nodes g = g.alpha :: (g.in_nodes @ g.out_nodes)

let in_degree g v = List.length (List.filter (fun (_, y) -> y = v) g.edges)
let out_degree g v = List.length (List.filter (fun (x, _) -> x = v) g.edges)

(** {1 Conversion to a nested-bag database}

    Nodes become set values (bags of atoms with multiplicity one); the edge
    relation is a bag of pairs, of type [{{< {{U}}, {{U}} >}}] — bag nesting
    two, the setting of Theorem 5.2. *)

open Balg

let atom_value i = Value.atom (Printf.sprintf "u%d" i)

let node_value n (s : mask) =
  Value.bag_of_list (List.map atom_value (atoms_of_mask n s))

let edge_ty = Ty.Bag (Ty.Tuple [ Ty.Bag Ty.Atom; Ty.Bag Ty.Atom ])

let edges_value g =
  Value.bag_of_list
    (List.map
       (fun (x, y) -> Value.tuple [ node_value g.n x; node_value g.n y ])
       g.edges)

(** The separating BALG{^2} query of Theorem 5.2: in-degree of [α] exceeds
    its out-degree.  Same shape as Example 4.1, one nesting level up. *)
let phi_query g =
  Derived.indeg_gt_outdeg (Expr.Var "G")
    (Expr.Lit (node_value g.n g.alpha, Ty.Bag Ty.Atom))

(** ASCII rendering of Fig. 1 (the star for a given [n]). *)
let render_figure ppf g =
  let show s = "{" ^ String.concat "," (List.map string_of_int (atoms_of_mask g.n s)) ^ "}" in
  Format.fprintf ppf "G_{k,T} for n=%d:  alpha = %s@\n" g.n (show g.alpha);
  List.iter
    (fun (x, y) -> Format.fprintf ppf "  %s -> %s@\n" (show x) (show y))
    g.edges
