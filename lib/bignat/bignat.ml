(* Base-10^9 little-endian limbs in an int array.  The canonical form has no
   leading (most-significant) zero limb, and zero is the empty array, so
   structural equality is numeric equality.  All limb products fit in OCaml's
   63-bit native ints (10^9 * 10^9 < 2^62). *)

let base = 1_000_000_000
let base_digits = 9

type t = int array

let zero : t = [||]
let is_zero n = Array.length n = 0

let normalize (a : int array) : t =
  let k = ref (Array.length a) in
  while !k > 0 && a.(!k - 1) = 0 do
    decr k
  done;
  if !k = Array.length a then a else Array.sub a 0 !k

let of_int n =
  if n < 0 then invalid_arg "Bignat.of_int: negative";
  if n = 0 then zero
  else if n < base then [| n |]
  else if n < base * base then [| n mod base; n / base |]
  else [| n mod base; n / base mod base; n / base / base |]

let one = of_int 1
let two = of_int 2

let is_one n = Array.length n = 1 && n.(0) = 1

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let hash (n : t) = Hashtbl.hash n

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la <= 1 && lb <= 1 then
    (* single-limb operands: the sum fits well within an int *)
    of_int ((if la = 0 then 0 else a.(0)) + if lb = 0 then 0 else b.(0))
  else
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s mod base;
    carry := s / base
  done;
  normalize r

let succ n = add n one

(* Exact subtraction assuming a >= b. *)
let sub_unchecked (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let sub_exn a b =
  if compare a b < 0 then invalid_arg "Bignat.sub_exn: negative result";
  sub_unchecked a b

let monus a b = if compare a b <= 0 then zero else sub_unchecked a b

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if la = 1 && lb = 1 then
    (* limb product < 10^18 < max_int *)
    of_int (a.(0) * b.(0))
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur mod base;
        carry := cur / base
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur mod base;
        carry := cur / base;
        incr k
      done
    done;
    normalize r
  end

(* Halving works limb-wise because the base is even. *)
let half (a : t) : t =
  let la = Array.length a in
  if la = 0 then zero
  else begin
    let r = Array.make la 0 in
    let carry = ref 0 in
    for i = la - 1 downto 0 do
      let cur = a.(i) + (!carry * base) in
      r.(i) <- cur / 2;
      carry := cur land 1
    done;
    normalize r
  end

let double a = add a a
let is_even (n : t) = Array.length n = 0 || n.(0) land 1 = 0

(* Shift-and-subtract long division.  [bits_upper] over-estimates the binary
   length, which only costs a few extra loop iterations. *)
let bits_upper (n : t) = 1 + (30 * Array.length n)

let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let shift = bits_upper a - bits_upper b + 31 in
    let d = ref b in
    for _ = 1 to shift do
      d := double !d
    done;
    let q = ref zero and r = ref a in
    for _ = 0 to shift do
      q := double !q;
      if compare !r !d >= 0 then begin
        r := sub_unchecked !r !d;
        q := succ !q
      end;
      d := half !d
    done;
    (!q, !r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow b e =
  if e < 0 then invalid_arg "Bignat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
  in
  go one b e

let pow2 k = pow two k

let to_int_opt (n : t) =
  match Array.length n with
  | 0 -> Some 0
  | 1 -> Some n.(0)
  | 2 -> Some (n.(0) + (base * n.(1)))
  | 3 ->
      let hi = n.(2) in
      (* max_int / base^2 = 9223372036 on 64-bit, so hi <= 9 is always
         safe and hi > 9 overflows. *)
      if hi <= 9 then
        let v = n.(0) + (base * n.(1)) + (base * base * hi) in
        if v >= 0 then Some v else None
      else None
  | _ -> None

let to_int_exn n =
  match to_int_opt n with
  | Some i -> i
  | None -> failwith "Bignat.to_int_exn: overflow"

let hyper i n =
  if i < 0 then invalid_arg "Bignat.hyper: negative height";
  if n < 0 then invalid_arg "Bignat.hyper: negative argument";
  let rec go i =
    if i = 0 then of_int n
    else
      let e = go (i - 1) in
      match to_int_opt e with
      | Some e when e <= 10_000_000 -> pow2 e
      | _ -> invalid_arg "Bignat.hyper: tower too tall to materialize"
  in
  go i

let binomial n k =
  if k < 0 || k > n then zero
  else begin
    (* C(n,k) = prod_{i=1..k} (n-k+i)/i, dividing as we go keeps every
       intermediate value an exact integer. *)
    let k = Stdlib.min k (n - k) in
    let acc = ref one in
    for i = 1 to k do
      acc := div (mul !acc (of_int (n - k + i))) (of_int i)
    done;
    !acc
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let lcm a b =
  if is_zero a || is_zero b then zero else mul (div a (gcd a b)) b

let factorial n =
  if n < 0 then invalid_arg "Bignat.factorial: negative";
  let acc = ref one in
  for i = 2 to n do
    acc := mul !acc (of_int i)
  done;
  !acc

let sum l = List.fold_left add zero l

let to_string (n : t) =
  let l = Array.length n in
  if l = 0 then "0"
  else begin
    let buf = Buffer.create (l * base_digits) in
    Buffer.add_string buf (string_of_int n.(l - 1));
    for i = l - 2 downto 0 do
      Buffer.add_string buf (Printf.sprintf "%09d" n.(i))
    done;
    Buffer.contents buf
  end

let of_string s =
  let s =
    String.concat "" (String.split_on_char '_' s)
  in
  let s =
    if String.length s > 0 && s.[0] = '+' then String.sub s 1 (String.length s - 1)
    else s
  in
  let len = String.length s in
  if len = 0 then invalid_arg "Bignat.of_string: empty";
  String.iter
    (fun c -> if c < '0' || c > '9' then invalid_arg "Bignat.of_string: not a digit")
    s;
  let nlimbs = (len + base_digits - 1) / base_digits in
  let r = Array.make nlimbs 0 in
  let pos = ref len in
  for i = 0 to nlimbs - 1 do
    let lo = Stdlib.max 0 (!pos - base_digits) in
    r.(i) <- int_of_string (String.sub s lo (!pos - lo));
    pos := lo
  done;
  normalize r

let to_float (n : t) =
  Array.to_list n
  |> List.rev
  |> List.fold_left (fun acc limb -> (acc *. float_of_int base) +. float_of_int limb) 0.

let digits n = String.length (to_string n)
let pp ppf n = Format.pp_print_string ppf (to_string n)
