(* The resource governor: a running account of evaluation work against a
   set of limits.  See budget.mli for the model. *)

type resource =
  | Fuel
  | Support
  | Size
  | Count_digits
  | Fix_steps
  | Deadline
  | Cancelled
  | Injected

let resource_to_string = function
  | Fuel -> "fuel"
  | Support -> "support"
  | Size -> "size"
  | Count_digits -> "count-digits"
  | Fix_steps -> "fix-steps"
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"
  | Injected -> "injected-fault"

type limits = {
  fuel : int;
  max_support : int;
  max_size : int;
  max_count_digits : int;
  max_fix_steps : int;
  deadline_s : float option;
}

let unlimited =
  {
    fuel = max_int;
    max_support = max_int;
    max_size = max_int;
    max_count_digits = max_int;
    max_fix_steps = max_int;
    deadline_s = None;
  }

let default =
  {
    unlimited with
    max_support = 2_000_000;
    max_count_digits = 10_000;
    max_fix_steps = 100_000;
  }

type exhaustion = {
  resource : resource;
  at_node : int;
  op : string;
  spent : int;
  limit : int;
}

exception Budget_exceeded of exhaustion

let pp_amount n = if n = max_int then "unbounded" else string_of_int n

let exhaustion_to_string x =
  match x.resource with
  | Cancelled ->
      Printf.sprintf "evaluation cancelled after %s fuel" (pp_amount x.spent)
  | Injected ->
      Printf.sprintf "injected fault (site %s) at node %d" x.op x.at_node
  | _ ->
      Printf.sprintf "budget exhausted: %s at node %d (%s): spent %s, limit %s"
        (resource_to_string x.resource)
        x.at_node x.op (pp_amount x.spent) (pp_amount x.limit)

type t = {
  limits : limits;
  mutable started : float;  (** wall-clock origin of the deadline *)
  mutable deadline : float;  (** absolute deadline, [infinity] when none *)
  mutable armed : bool;  (** {!arm} has started the deadline clock *)
  fuel_spent : int Atomic.t;
  ticks : int Atomic.t;  (** charge counter, paces the deadline probes *)
  tripped : exhaustion option Atomic.t;
      (** first verdict, kept at the minimum preorder node id so parallel
          evaluation reports deterministically no matter which domain
          exhausts first *)
}

(* Probe the wall clock only every [deadline_stride] charges: a
   gettimeofday per compiled-closure invocation would be measurable on the
   memo-hit fast path. *)
let deadline_stride = 32

(* Account creation and clock start are split so a request can sit in an
   admission queue without burning its deadline: an unarmed account has
   [deadline = infinity], so every deadline probe passes until {!arm}
   pins the clock to the dequeue instant.  [started] is still set here so
   [elapsed_ms] reports something sensible for never-armed accounts. *)
let create limits =
  {
    limits;
    started = Unix.gettimeofday ();
    deadline = infinity;
    armed = false;
    fuel_spent = Atomic.make 0;
    ticks = Atomic.make 0;
    tripped = Atomic.make None;
  }

let arm t =
  if not t.armed then begin
    t.armed <- true;
    let now = Unix.gettimeofday () in
    t.started <- now;
    t.deadline <-
      (match t.limits.deadline_s with None -> infinity | Some s -> now +. s)
  end

let armed t = t.armed

let start limits =
  let t = create limits in
  arm t;
  t

let limits t = t.limits
let fuel_spent t = Atomic.get t.fuel_spent
let verdict t = Atomic.get t.tripped

(* Publish the verdict before raising, keeping the smallest node id across
   domains: every domain that exhausts CASes its candidate in unless a
   strictly earlier (preorder) node already won. *)
let exceeded t resource ~node ~op ~spent ~limit =
  let x = { resource; at_node = node; op; spent; limit } in
  let rec publish () =
    match Atomic.get t.tripped with
    | Some y when y.at_node <= x.at_node -> ()
    | cur -> if not (Atomic.compare_and_set t.tripped cur (Some x)) then publish ()
  in
  publish ();
  if Obs.on () then Obs.emit Obs.I ~cat:"budget" ~name:(resource_to_string resource) ~args:[ ("node", Obs.Int node); ("op", Obs.Str op); ("spent", Obs.Int spent); ("limit", Obs.Int limit) ];
  raise (Budget_exceeded x)

let elapsed_ms t = int_of_float ((Unix.gettimeofday () -. t.started) *. 1e3)

let deadline_ms t =
  match t.limits.deadline_s with
  | None -> max_int
  | Some s -> int_of_float (s *. 1e3)

let check_deadline t ~node ~op =
  if t.deadline < infinity && Unix.gettimeofday () > t.deadline then
    exceeded t Deadline ~node ~op ~spent:(elapsed_ms t) ~limit:(deadline_ms t)

(* Cooperative cancellation: publish a [Cancelled] verdict into the shared
   [tripped] slot.  Every domain of a parallel evaluation already consults
   that slot on its next fuel charge, so the flag propagates to all workers
   at fuel-charge granularity with no cost added to the hot path.  At node
   id 0 the verdict outranks any real exhaustion that races in later (the
   smallest-node-id rule), while a verdict published {e before} the cancel
   stands — evaluation was already unwinding.

   No trace event here: [cancel] may run inside a signal handler, where
   taking the ring-registration mutex could deadlock against an
   interrupted emitter.  The evaluator's run-end instant records the
   Cancelled verdict instead. *)
let cancel t =
  let x =
    {
      resource = Cancelled;
      at_node = 0;
      op = "(cancelled)";
      spent = Atomic.get t.fuel_spent;
      limit = 0;
    }
  in
  ignore (Atomic.compare_and_set t.tripped None (Some x))

let cancelled t =
  match Atomic.get t.tripped with
  | Some { resource = Cancelled; _ } -> true
  | _ -> false

(* One fetch-and-add on the shared account; a wrap past [max_int] (only
   reachable with unlimited fuel after ~2^62 charges) is pinned back to
   [max_int] — the benign race on that correction cannot un-trip a finite
   limit, which is checked against the pre-wrap sum.

   The fuel is spent {e before} the tripped/cancelled consultation: the
   evaluator mirrors every charge into its telemetry span first, so
   raising after the fetch-and-add keeps the steps == fuel invariant exact
   even on the charge that observes a cancellation. *)
let charge t ~node ~op n =
  let spent = Atomic.fetch_and_add t.fuel_spent n + n in
  (match Atomic.get t.tripped with
  | Some x -> raise (Budget_exceeded x)
  | None -> ());
  let spent =
    if spent < 0 then begin
      Atomic.set t.fuel_spent max_int;
      max_int
    end
    else spent
  in
  if spent > t.limits.fuel then
    exceeded t Fuel ~node ~op ~spent ~limit:t.limits.fuel;
  if t.deadline < infinity then
    if Atomic.fetch_and_add t.ticks 1 land (deadline_stride - 1) = 0 then
      check_deadline t ~node ~op

let check_support t ~node ~op n =
  if n > t.limits.max_support then
    exceeded t Support ~node ~op ~spent:n ~limit:t.limits.max_support

let check_size t ~node ~op n =
  if n > t.limits.max_size then
    exceeded t Size ~node ~op ~spent:n ~limit:t.limits.max_size

let check_count_digits t ~node ~op n =
  if n > t.limits.max_count_digits then
    exceeded t Count_digits ~node ~op ~spent:n ~limit:t.limits.max_count_digits

let check_fix_steps t ~node ~op n =
  if n > t.limits.max_fix_steps then
    exceeded t Fix_steps ~node ~op ~spent:n ~limit:t.limits.max_fix_steps
