(** Cost-based plan optimisation.

    Sits between [check] and evaluation: {!optimize} rewrites an
    expression using the sound algebraic laws of {!Rewrite} plus three
    optimiser-specific families —

    - {e dead-column pruning}: projection-shaped [MAP]s narrow through
      [×] ([prune-map-product]) and collapse [nest]s whose groups are
      never read ([prune-nest-keys]);
    - {e join planning}: a cross-operand equality selection over a
      product becomes the keyed hash join {!Expr.Join}
      ([join-extract]), recursing down left-deep product chains;
    - {e pushdown through MAP}: selections slide under
      projection-shaped [MAP]s ([select-through-proj]) and
      cardinality-shaped [MAP]s skip their inner restructuring
      ([ones-pushdown], sound because MAP preserves total cardinality).

    In [Cost] mode every candidate rewrite is gated by a cost model over
    {!Props} estimates with per-engine kernel constants (the vectorized
    kernels of {!Vec} are charged less than the boxed tree walk); in
    [Rules] mode the families apply unconditionally; [Off] is the
    identity.  Every decision — applied or rejected — is recorded with
    both cost figures so [balgi explain] can show the chosen plan next to
    the roads not taken.

    The [opt.rewrite] fault site makes planning chaos-testable: a firing
    hit abandons the remaining rewrites and ships the expression as-is,
    so an armed optimiser can only lose speed, never correctness. *)

type mode = Off | Rules | Cost

let mode_to_string = function Off -> "off" | Rules -> "rules" | Cost -> "cost"

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" -> Some Off
  | "rules" -> Some Rules
  | "cost" -> Some Cost
  | _ -> None

(* Mirrors Veval.default_engine: the env var picks the CLI default, and
   unknown values silently mean "off" so a stale setting cannot wedge
   every invocation. *)
let default_mode () =
  match Sys.getenv_opt "BALG_OPT" with
  | Some s -> ( match mode_of_string s with Some m -> m | None -> Off)
  | None -> Off

let rewrite_site = Fault.register "opt.rewrite"

(* Bench-gate self-test knob: with the objective inverted the planner
   only accepts cost-increasing rewrites — i.e. none of the beneficial
   ones — so deliberately miscosted plans regress against the optimised
   baseline and must trip the gate.  Never set outside bench/tests. *)
let invert_cost = ref false

let m_applied =
  Metrics.counter ~help:"optimizer rewrites applied" Metrics.default
    "balg_opt_rewrites_applied_total"

let m_rejected =
  Metrics.counter ~help:"optimizer rewrites rejected by the cost model"
    Metrics.default "balg_opt_rewrites_rejected_total"

(* --- cost model ------------------------------------------------------------ *)

(* Per-row kernel constants: work the columnar engine does in flat array
   sweeps is cheaper than the boxed tree walk; shapes the vec engine
   cannot vectorize (general binder bodies) fall back to tree cost on
   either engine. *)
let kernel_constant engine ~vectorizable =
  match engine with
  | Veval.Vec when vectorizable -> 0.35
  | Veval.Vec | Veval.Tree -> 1.0

(* The per-row scalar fragment Vec can run column-wise: projections of
   the row variable, closed constants, tuple construction. *)
let rec scalar_shape x e =
  match e with
  | Expr.Var y -> String.equal x y
  | Expr.Proj (_, e0) -> scalar_shape x e0
  | Expr.Tuple es -> List.for_all (scalar_shape x) es
  | Expr.Lit _ -> true
  | _ -> not (Expr.Vars.mem x (Expr.free_vars e)) && Expr.size e <= 3

let clamp_rows r = float_of_int (min r 1_000_000_000)

let cost ?(vals = []) engine tenv e =
  let k ~vectorizable = kernel_constant engine ~vectorizable in
  let fr e = clamp_rows (Props.infer ~vals tenv e).Props.rows in
  let rec go e =
    match e with
    | Expr.Var _ | Expr.Lit _ -> 0.0
    | Expr.Tuple es -> List.fold_left (fun a c -> a +. go c) 1.0 es
    | Expr.Proj (_, e0) | Expr.Sing e0 -> 1.0 +. go e0
    | Expr.UnionAdd (a, b)
    | Expr.Diff (a, b)
    | Expr.UnionMax (a, b)
    | Expr.Inter (a, b) ->
        go a +. go b +. (k ~vectorizable:true *. (fr a +. fr b))
    | Expr.Product (a, b) ->
        (* materialises the full cross product *)
        go a +. go b +. (k ~vectorizable:true *. (fr a *. fr b))
    | Expr.Join (_, _, a, b) ->
        (* build + probe + emit only the matches *)
        go a +. go b +. (k ~vectorizable:true *. (fr a +. fr b +. fr e))
    | Expr.Powerset e0 | Expr.Powerbag e0 -> go e0 +. fr e
    | Expr.Destroy e0 -> go e0 +. (k ~vectorizable:true *. fr e)
    | Expr.Map (x, body, e0) ->
        let per_row =
          if scalar_shape x body then k ~vectorizable:true
          else 1.0 +. go body
        in
        go e0 +. (fr e0 *. per_row)
    | Expr.Select (x, l, r, e0) ->
        let per_row =
          if scalar_shape x l && scalar_shape x r then k ~vectorizable:true
          else 1.0 +. go l +. go r
        in
        go e0 +. (fr e0 *. per_row)
    | Expr.Dedup e0 -> go e0 +. (k ~vectorizable:true *. fr e0)
    | Expr.Nest (_, e0) ->
        (* grouping builds and canonicalises segment columns — several
           sweeps over the input, not one *)
        go e0 +. (3.0 *. k ~vectorizable:true *. fr e0)
    | Expr.Unnest (_, e0) -> go e0 +. (k ~vectorizable:true *. fr e)
    | Expr.Let (_, e0, body) -> go e0 +. go body
    | Expr.Fix (_, body, seed) -> go seed +. (8.0 *. (1.0 +. go body))
    | Expr.BFix (b, _, body, seed) ->
        go b +. go seed +. (8.0 *. (1.0 +. go body))
  in
  go e

(* --- the rewrite families -------------------------------------------------- *)

(* [Some ixs] when [body] is the projection tuple <x.i1, ..., x.in>. *)
let proj_body x body =
  match body with
  | Expr.Tuple es ->
      let rec collect acc = function
        | [] -> Some (List.rev acc)
        | Expr.Proj (i, Expr.Var y) :: rest when String.equal y x ->
            collect (i :: acc) rest
        | _ -> None
      in
      collect [] es
  | _ -> None

(* π over × splits when the projected columns partition left-before-right:
   multiplicities factor through the product, so projecting each side
   separately and re-crossing coalesces to the identical bag while the
   product materialises narrower (or, with an empty side, vanishingly
   small) tuples. *)
let rule_prune_map_product =
  {
    Rewrite.name = "prune-map-product";
    applies =
      (fun env -> function
        | Expr.Map (x, body, Expr.Product (a, b)) -> (
            match (proj_body x body, Rewrite.arity_of env a, Rewrite.arity_of env b)
            with
            | Some ixs, Some ka, Some kb
              when List.for_all (fun i -> i >= 1 && i <= ka + kb) ixs ->
                let rec split acc = function
                  | i :: rest when i <= ka -> split (i :: acc) rest
                  | rest -> (List.rev acc, rest)
                in
                let la, lb = split [] ixs in
                let identity =
                  la = List.init ka (fun i -> i + 1)
                  && lb = List.init kb (fun i -> ka + i + 1)
                in
                if List.for_all (fun i -> i > ka) lb && not identity then
                  Some
                    (Expr.Product
                       ( Expr.proj_attrs la a,
                         Expr.proj_attrs (List.map (fun i -> i - ka) lb) b ))
                else None
            | _ -> None)
        | _ -> None);
  }

(* A projection reading only the key columns of a nest never looks at the
   groups, and distinct groups have distinct full keys — so as long as
   every key position is kept the whole grouping is a dedup of the key
   projection over the raw input. *)
let rule_prune_nest_keys =
  {
    Rewrite.name = "prune-nest-keys";
    applies =
      (fun _env -> function
        | Expr.Map (x, body, Expr.Nest (ixs, e0)) -> (
            match proj_body x body with
            | Some ps ->
                let nkeys = List.length ixs in
                if
                  ps <> []
                  && List.for_all (fun p -> p >= 1 && p <= nkeys) ps
                  && List.for_all
                       (fun q -> List.mem q ps)
                       (List.init nkeys (fun i -> i + 1))
                then
                  Some
                    (Expr.Dedup
                       (Expr.proj_attrs
                          (List.map (fun p -> List.nth ixs (p - 1)) ps)
                          e0))
                else None
            | None -> None)
        | _ -> None);
  }

(* σ_{x.i = x.j} over a × b with the two attributes on opposite sides is
   exactly the keyed equijoin, and Bag.join_eq / Vec.join materialise only
   the matches.  Left-deep product chains plan bottom-up: the inner
   product extracts first, leaving the outer selection over
   (join × c) to extract in the next pass. *)
let rule_join_extract =
  {
    Rewrite.name = "join-extract";
    applies =
      (fun env -> function
        | Expr.Select
            ( x,
              Expr.Proj (i, Expr.Var x1),
              Expr.Proj (j, Expr.Var x2),
              Expr.Product (a, b) )
          when String.equal x1 x && String.equal x2 x -> (
            match (Rewrite.arity_of env a, Rewrite.arity_of env b) with
            | Some ka, Some kb ->
                if i >= 1 && i <= ka && j > ka && j <= ka + kb then
                  Some (Expr.Join (i, j - ka, a, b))
                else if j >= 1 && j <= ka && i > ka && i <= ka + kb then
                  Some (Expr.Join (j, i - ka, a, b))
                else None
            | _ -> None)
        | _ -> None);
  }

(* σ_P(MAP_f e) = MAP_f(σ_{P∘f} e) for any f — filtering images keeps
   exactly the rows whose image passes.  Restricted to projection-shaped
   maps and projection/closed condition operands so the pushed selection
   keeps the vectorizable select_eq shape. *)
let rule_select_through_proj =
  {
    Rewrite.name = "select-through-proj";
    applies =
      (fun _env -> function
        | Expr.Select (x, l, r, Expr.Map (y, body, e0)) -> (
            match proj_body y body with
            | Some ps ->
                let np = List.length ps in
                let translate op =
                  match op with
                  | Expr.Proj (i, Expr.Var z)
                    when String.equal z x && i >= 1 && i <= np ->
                      Some (fun x' -> Expr.Proj (List.nth ps (i - 1), Expr.Var x'))
                  | op when not (Expr.Vars.mem x (Expr.free_vars op)) ->
                      Some (fun _ -> op)
                  | _ -> None
                in
                (match (translate l, translate r) with
                | Some fl, Some fr ->
                    let x' = Expr.fresh_var x in
                    Some
                      (Expr.Map
                         (y, body, Expr.Select (x', fl x', fr x', e0)))
                | _ -> None)
            | None -> None)
        | _ -> None);
  }

(* MAP preserves total cardinality, so a map whose body ignores its row
   sees only *how many* elements the inner map produced — the inner
   restructuring is dead work. *)
let rule_ones_pushdown =
  {
    Rewrite.name = "ones-pushdown";
    applies =
      (fun _env -> function
        | Expr.Map (y, body, Expr.Map (_, _, e0))
          when not (Expr.Vars.mem y (Expr.free_vars body)) ->
            Some (Expr.Map (y, body, e0))
        | _ -> None);
  }

let rules =
  [
    rule_join_extract;
    rule_select_through_proj;
    rule_prune_map_product;
    rule_prune_nest_keys;
    rule_ones_pushdown;
  ]

(* --- driving --------------------------------------------------------------- *)

type decision = {
  d_rule : string;
  d_before : Expr.t;
  d_after : Expr.t;
  d_cost_before : float;
  d_cost_after : float;
  d_accepted : bool;
}

type report = {
  r_mode : mode;
  r_engine : Veval.engine;
  r_input : Expr.t;
  r_output : Expr.t;
  r_input_cost : float;
  r_output_cost : float;
  r_input_props : Props.t;
  r_output_props : Props.t;
  r_decisions : decision list;
  r_faulted : bool;
}

let max_passes = 8
let max_decisions = 200

let optimize ?(vals = []) ?(engine = Veval.Tree) mode tenv e0 =
  if Obs.on () then Obs.emit Obs.B ~cat:"opt" ~name:"optimize" ~args:[ ("size", Obs.Int (Expr.size e0)); ("mode", Obs.Str (mode_to_string mode)) ];
  let decisions = ref [] and ndec = ref 0 and faulted = ref false in
  let record d =
    if !ndec < max_decisions then begin
      decisions := d :: !decisions;
      incr ndec
    end
  in
  let accept cb ca =
    match mode with
    | Rules -> true
    | Cost -> if !invert_cost then ca > cb else ca < cb
    | Off -> false
  in
  let all_rules = Rewrite.sound_rules @ rules in
  let changed_in_pass = ref false in
  let try_node e =
    let rec fire e fuel =
      if fuel = 0 || !faulted then e
      else
        let chosen =
          List.fold_left
            (fun acc r ->
              match acc with
              | Some _ -> acc
              | None -> (
                  if !faulted then None
                  else
                    match r.Rewrite.applies tenv e with
                    | Some e' when Rewrite.expr_compare e' e <> 0 ->
                        if Fault.fire rewrite_site then begin
                          (* degrade: ship the plan as it stands *)
                          faulted := true;
                          None
                        end
                        else begin
                          let cb = cost ~vals engine tenv e
                          and ca = cost ~vals engine tenv e' in
                          let ok = accept cb ca in
                          record
                            {
                              d_rule = r.Rewrite.name;
                              d_before = e;
                              d_after = e';
                              d_cost_before = cb;
                              d_cost_after = ca;
                              d_accepted = ok;
                            };
                          Metrics.incr (if ok then m_applied else m_rejected);
                          if ok then Some e' else None
                        end
                    | _ -> None))
            None all_rules
        in
        match chosen with
        | Some e' ->
            changed_in_pass := true;
            if Obs.on () then Obs.emit Obs.I ~cat:"opt" ~name:"rewrite" ~args:[ ("size", Obs.Int (Expr.size e')) ];
            fire e' (fuel - 1)
        | None -> e
    in
    fire e 16
  in
  let rec bottom_up e =
    if !faulted then e else try_node (Rewrite.map_children bottom_up e)
  in
  let rec passes n e =
    if n = 0 || !faulted then e
    else begin
      changed_in_pass := false;
      let e' = bottom_up e in
      if !changed_in_pass then passes (n - 1) e' else e'
    end
  in
  let output = match mode with Off -> e0 | Rules | Cost -> passes max_passes e0 in
  let report =
    {
      r_mode = mode;
      r_engine = engine;
      r_input = e0;
      r_output = output;
      r_input_cost = cost ~vals engine tenv e0;
      r_output_cost = cost ~vals engine tenv output;
      r_input_props = Props.infer ~vals tenv e0;
      r_output_props = Props.infer ~vals tenv output;
      r_decisions = List.rev !decisions;
      r_faulted = !faulted;
    }
  in
  if Obs.on () then Obs.emit Obs.E ~cat:"opt" ~name:"optimize" ~args:[ ("size", Obs.Int (Expr.size output)); ("decisions", Obs.Int (List.length report.r_decisions)) ];
  (output, report)

(* The evaluation-path entry: planning failures must never take down a
   query that would have run fine unoptimised. *)
let prepare ?vals ?engine mode tenv e =
  match optimize ?vals ?engine mode tenv e with
  | e', _ -> e'
  | exception _ -> e

(* --- explain rendering ----------------------------------------------------- *)

let truncate_expr width e =
  let s = Expr.to_string e in
  if String.length s <= width then s else String.sub s 0 (width - 3) ^ "..."

let report_to_string r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "optimizer: mode=%s engine=%s%s\n" (mode_to_string r.r_mode)
       (match r.r_engine with Veval.Tree -> "tree" | Veval.Vec -> "vec")
       (if r.r_faulted then "  [degraded: opt.rewrite fault]" else ""));
  Buffer.add_string b
    (Printf.sprintf "  input  cost=%.0f  props=%s\n" r.r_input_cost
       (Props.to_string r.r_input_props));
  Buffer.add_string b
    (Printf.sprintf "  output cost=%.0f  props=%s\n" r.r_output_cost
       (Props.to_string r.r_output_props));
  if r.r_decisions = [] then
    Buffer.add_string b "  (no rewrite opportunities)\n"
  else
    List.iter
      (fun d ->
        Buffer.add_string b
          (Printf.sprintf "  %s %-22s cost %.0f -> %.0f  %s => %s\n"
             (if d.d_accepted then "applied " else "rejected")
             d.d_rule d.d_cost_before d.d_cost_after
             (truncate_expr 48 d.d_before)
             (truncate_expr 48 d.d_after)))
      r.r_decisions;
  Buffer.contents b
