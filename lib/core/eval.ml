(** The reference interpreter for BALG.

    Evaluation is exact: multiplicities are {!Bignat.t}s and every operator
    follows the §3 semantics literally.  Because the algebra can express
    queries of arbitrarily high hyper-exponential complexity (Prop 3.2,
    Thm 5.5), evaluation runs under a {!Budget} governor: step fuel,
    per-bag support, encoded-size and multiplicity-digit bounds, a fixpoint
    step bound and an optional wall-clock deadline, all checked at every
    compiled-closure boundary.  Exhaustion surfaces as a structured
    [Error (Budget.exhaustion)] from {!run}, locating the node where the
    account ran dry; the legacy {!eval} entry point converts it to the
    historical {!Resource_limit} exception.

    The expression is {e compiled} to a closure tree before evaluation:
    each node gets a stable preorder id (the attribution key shared by the
    governor and the {!Telemetry} span tree), and operator nodes whose
    free variables are all {e stable} (not bound by a MAP/σ binder applied
    per element, nor by a fixpoint binder that changes every iteration) are
    backed by a memo table keyed by (node id, fingerprint of the free-var
    bindings).  [Fix]/[BFix] iteration and repeated [Let]-bound subqueries
    then hit cache instead of re-evaluating; the meters record hit/miss
    counts.

    [P]/[Pb] are charged for their {e expected} output support — the
    product of (multiplicity + 1) over the input, computed in O(support) —
    before anything is materialised, so a hyper-exponential powerset
    nesting is cut off by the fuel or support budget without allocating
    the intermediate bag.

    The evaluator also carries {e meters} recording the largest
    intermediate bag support and multiplicity seen; the complexity
    experiments (E10, E11, E15) read the growth shapes claimed by Theorems
    4.4, 5.1 and 6.2 off these meters. *)

exception Eval_error of string
exception Resource_limit of string

let error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

type config = {
  max_support : int;  (** bound on distinct elements per bag *)
  max_count_digits : int;  (** bound on decimal digits of any multiplicity *)
  max_fix_steps : int;  (** bound on fixpoint iterations *)
}

let default_config =
  { max_support = 2_000_000; max_count_digits = 10_000; max_fix_steps = 100_000 }

let limits_of_config c =
  {
    Budget.unlimited with
    Budget.max_support = c.max_support;
    max_count_digits = c.max_count_digits;
    max_fix_steps = c.max_fix_steps;
  }

type meters = {
  mutable max_support_seen : int;
  mutable max_count_seen : Bignat.t;
  mutable max_cardinal_seen : Bignat.t;
  mutable ops : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
}

let fresh_meters () =
  {
    max_support_seen = 0;
    max_count_seen = Bignat.zero;
    max_cardinal_seen = Bignat.zero;
    ops = 0;
    memo_hits = 0;
    memo_misses = 0;
  }

module Env = Map.Make (String)

type env = Value.t Env.t

let env_of_list l = List.fold_left (fun m (x, v) -> Env.add x v m) Env.empty l

(* ------------------------------------------------------------------ *)
(* Compilation to closures: budget governance, telemetry spans, and
   memoisation of stable operator nodes. *)

type state = {
  budget : Budget.t;
  meters : meters;
  memo : (int * int, (Value.t option list * Value.t) list ref) Hashtbl.t;
      (** (node id, binding fingerprint) -> verified (bindings, result) *)
}

(* Attribution of one compiled node: its preorder id, operator label, and
   (when a sink is attached) its telemetry span. *)
type att = { id : int; op : string; sp : Telemetry.span option }

(* Every unit of fuel charged to the governor is mirrored into the node's
   span, so the span tree's total step count always equals the spent fuel
   (the --stats invariant, tested in test_budget.ml). *)
let spend st att n =
  (match att.sp with Some sp -> Telemetry.add_steps sp n | None -> ());
  Budget.charge st.budget ~node:att.id ~op:att.op n

(* Meter the result, enforce the per-value budgets, and charge fuel
   proportional to the materialised support. *)
let observe st att v =
  let m = st.meters in
  m.ops <- m.ops + 1;
  (match Value.view v with
  | Value.Bag pairs ->
      (* One walk for all three measures; the cardinal stays in machine
         arithmetic until a count (or the sum) leaves [int] range. *)
      let support = ref 0 in
      let mc = ref Bignat.zero in
      let icard = ref 0 in
      List.iter
        (fun (_, c) ->
          incr support;
          if Bignat.compare c !mc > 0 then mc := c;
          if !icard >= 0 then
            icard :=
              (match Bignat.to_int_opt c with
              | Some n ->
                  let s = !icard + n in
                  if s < 0 then -1 else s
              | None -> -1))
        pairs;
      let support = !support and mc = !mc in
      if support > m.max_support_seen then m.max_support_seen <- support;
      Budget.check_support st.budget ~node:att.id ~op:att.op support;
      if Bignat.compare mc m.max_count_seen > 0 then begin
        m.max_count_seen <- mc;
        Budget.check_count_digits st.budget ~node:att.id ~op:att.op
          (Bignat.digits mc)
      end;
      let card =
        if !icard >= 0 then Bignat.of_int !icard else Value.cardinal v
      in
      if Bignat.compare card m.max_cardinal_seen > 0 then
        m.max_cardinal_seen <- card;
      let size = Value.size_tag v in
      Budget.check_size st.budget ~node:att.id ~op:att.op size;
      (match att.sp with
      | Some sp -> Telemetry.record_result sp ~support ~size
      | None -> ());
      spend st att support
  | Value.Atom _ | Value.Tuple _ -> (
      let size = Value.size_tag v in
      Budget.check_size st.budget ~node:att.id ~op:att.op size;
      match att.sp with
      | Some sp -> Telemetry.record_result sp ~support:0 ~size
      | None -> ()));
  v

(* Keep the table from growing without bound inside huge fixpoints; a reset
   loses cached work but never correctness. *)
let memo_capacity = 1 lsl 16

let binding_equal a b =
  match (a, b) with
  | None, None -> true
  | Some v, Some w -> Value.equal v w
  | None, Some _ | Some _, None -> false

let bindings_equal xs ys = List.for_all2 binding_equal xs ys

let fingerprint vals =
  List.fold_left
    (fun h v ->
      match v with
      | None -> (h * 0x01000193) lxor 0x5bd1e995
      | Some v -> (h * 0x01000193) lxor Value.hash v)
    0x811c9dc5 vals

type compiled = state -> env -> Value.t

type reg = { ctr : int ref; telemetry : Telemetry.t option }

(* Expected powerset/powerbag output support: prod (m_i + 1), saturating at
   [max_int].  O(support of the input), allocation-free. *)
let expected_subbags b =
  List.fold_left
    (fun acc (_, c) ->
      if acc = max_int then max_int
      else
        match Bignat.to_int_opt c with
        | None -> max_int
        | Some m ->
            if m >= max_int - 1 || acc > max_int / (m + 1) then max_int
            else acc * (m + 1))
    1 (Value.as_bag b)

(* Charge a power operator for its expected output before materialising
   anything: a hyper-exponential [P(P(...))] tower dies here, on the fuel
   or support account, without allocating the intermediate bag. *)
let power_guard st att b =
  let n = expected_subbags b in
  Budget.check_deadline st.budget ~node:att.id ~op:att.op;
  Budget.check_support st.budget ~node:att.id ~op:att.op n;
  spend st att n

(* Residual [Bag.Too_large] cases (e.g. a multiplicity beyond [int] range)
   unify into the structured budget verdict. *)
let too_large st att =
  let limit = (Budget.limits st.budget).Budget.max_support in
  Budget.exceeded st.budget Budget.Support ~node:att.id ~op:att.op
    ~spent:max_int ~limit

(* [volatile] holds the binders whose bindings change per element or per
   fixpoint iteration; nodes mentioning them would only churn the table. *)
let rec compile reg ~parent volatile e : compiled =
  incr reg.ctr;
  let id = !(reg.ctr) in
  let op = Expr.op_name e in
  let sp =
    match reg.telemetry with
    | Some t -> Some (Telemetry.register t ~parent ~id ~op)
    | None -> None
  in
  let att = { id; op; sp } in
  let raw = compile_node reg ~att volatile e in
  let invoke =
    match sp with
    | None ->
        fun st env ->
          spend st att 1;
          observe st att (raw st env)
    | Some sp ->
        (* Inclusive wall time and allocation per span; only paid when a
           telemetry sink is attached. *)
        fun st env ->
          spend st att 1;
          sp.Telemetry.invocations <- sp.Telemetry.invocations + 1;
          let t0 = Unix.gettimeofday () in
          let a0 = Gc.allocated_bytes () in
          let finish () =
            sp.Telemetry.time_s <-
              sp.Telemetry.time_s +. (Unix.gettimeofday () -. t0);
            sp.Telemetry.alloc_words <-
              sp.Telemetry.alloc_words
              +. ((Gc.allocated_bytes () -. a0)
                 /. float (Sys.word_size / 8))
          in
          (match raw st env with
          | v ->
              finish ();
              observe st att v
          | exception exn ->
              finish ();
              raise exn)
  in
  let memoisable =
    match e with
    | Expr.Var _ | Expr.Lit _ | Expr.Tuple _ | Expr.Proj _ | Expr.Sing _ ->
        false
    | _ -> Expr.Vars.disjoint (Expr.free_vars e) volatile
  in
  if not memoisable then invoke
  else begin
    let fv = Expr.Vars.elements (Expr.free_vars e) in
    fun st env ->
      let vals = List.map (fun x -> Env.find_opt x env) fv in
      let key = (id, fingerprint vals) in
      let hit r =
        st.meters.memo_hits <- st.meters.memo_hits + 1;
        spend st att 1;
        (match sp with
        | Some sp ->
            sp.Telemetry.invocations <- sp.Telemetry.invocations + 1;
            Telemetry.record_memo_hit sp
        | None -> ());
        r
      in
      let compute () =
        st.meters.memo_misses <- st.meters.memo_misses + 1;
        (match sp with Some sp -> Telemetry.record_memo_miss sp | None -> ());
        invoke st env
      in
      match Hashtbl.find_opt st.memo key with
      | Some entries -> (
          match
            List.find_opt (fun (vs, _) -> bindings_equal vs vals) !entries
          with
          | Some (_, r) -> hit r
          | None ->
              let r = compute () in
              entries := (vals, r) :: !entries;
              r)
      | None ->
          let r = compute () in
          if Hashtbl.length st.memo >= memo_capacity then
            Hashtbl.reset st.memo;
          Hashtbl.add st.memo key (ref [ (vals, r) ]);
          r
  end

and compile_node reg ~att volatile e : compiled =
  let sub e = compile reg ~parent:att.id volatile e in
  let under x e = compile reg ~parent:att.id (Expr.Vars.add x volatile) e in
  let stable x e = compile reg ~parent:att.id (Expr.Vars.remove x volatile) e in
  match e with
  | Expr.Var x -> (
      fun _st env ->
        match Env.find_opt x env with
        | Some v -> v
        | None -> error "unbound variable %s" x)
  | Expr.Lit (v, _) -> fun _st _env -> v
  | Expr.Tuple es ->
      let cs = List.map sub es in
      fun st env -> Value.tuple (List.map (fun c -> c st env) cs)
  | Expr.Proj (i, e) -> (
      let c = sub e in
      fun st env ->
        let v = c st env in
        match Value.view v with
        | Value.Tuple vs when i >= 1 && i <= List.length vs ->
            List.nth vs (i - 1)
        | _ -> error "cannot project attribute %d of %s" i (Value.to_string v))
  | Expr.Sing e ->
      let c = sub e in
      fun st env -> Value.of_sorted_assoc [ (c st env, Bignat.one) ]
  | Expr.UnionAdd (a, b) ->
      let ca = sub a and cb = sub b in
      fun st env -> Bag.union_add (ca st env) (cb st env)
  | Expr.Diff (a, b) ->
      let ca = sub a and cb = sub b in
      fun st env -> Bag.diff (ca st env) (cb st env)
  | Expr.UnionMax (a, b) ->
      let ca = sub a and cb = sub b in
      fun st env -> Bag.union_max (ca st env) (cb st env)
  | Expr.Inter (a, b) ->
      let ca = sub a and cb = sub b in
      fun st env -> Bag.inter (ca st env) (cb st env)
  | Expr.Product (a, b) ->
      let ca = sub a and cb = sub b in
      fun st env -> Bag.product (ca st env) (cb st env)
  | Expr.Powerset e ->
      let c = sub e in
      fun st env ->
        let b = c st env in
        power_guard st att b;
        (try
           Bag.powerset ~max_support:(Budget.limits st.budget).Budget.max_support
             b
         with Bag.Too_large _ -> too_large st att)
  | Expr.Powerbag e ->
      let c = sub e in
      fun st env ->
        let b = c st env in
        power_guard st att b;
        (try
           Bag.powerbag ~max_support:(Budget.limits st.budget).Budget.max_support
             b
         with Bag.Too_large _ -> too_large st att)
  | Expr.Destroy e ->
      let c = sub e in
      fun st env -> Bag.destroy (c st env)
  (* Generalized projection MAP λx.<α_{i1}(x), ...> runs as the direct
     {!Bag.proj} kernel; on malformed data ([Invalid_argument]) the generic
     closure replays the bag so error behaviour is unchanged. *)
  | Expr.Map (x, (Expr.Tuple comps as body), e)
    when List.for_all
           (function Expr.Proj (_, Expr.Var y) -> y = x | _ -> false)
           comps ->
      let ixs =
        List.map (function Expr.Proj (i, _) -> i | _ -> assert false) comps
      in
      let cbody = under x body and c = sub e in
      fun st env ->
        let b = c st env in
        (try Bag.proj ixs b
         with Invalid_argument _ ->
           Bag.map (fun v -> cbody st (Env.add x v env)) b)
  | Expr.Map (x, body, e) ->
      let cbody = under x body and c = sub e in
      fun st env -> Bag.map (fun v -> cbody st (Env.add x v env)) (c st env)
  (* σ_{i=j}: positional-equality selection runs as {!Bag.select_eq}, with
     the same generic fallback on malformed data. *)
  | Expr.Select
      ( x,
        (Expr.Proj (i, Expr.Var x1) as l),
        (Expr.Proj (j, Expr.Var x2) as r),
        e )
    when x1 = x && x2 = x ->
      let cl = under x l and cr = under x r and c = sub e in
      fun st env ->
        let b = c st env in
        (try Bag.select_eq i j b
         with Invalid_argument _ ->
           Bag.select
             (fun v ->
               let env' = Env.add x v env in
               Value.equal (cl st env') (cr st env'))
             b)
  | Expr.Select (x, l, r, e) ->
      let cl = under x l and cr = under x r and c = sub e in
      fun st env ->
        Bag.select
          (fun v ->
            let env' = Env.add x v env in
            Value.equal (cl st env') (cr st env'))
          (c st env)
  | Expr.Dedup e ->
      let c = sub e in
      fun st env -> Bag.dedup (c st env)
  | Expr.Nest (ixs, e) ->
      let c = sub e in
      fun st env -> Bag.nest ixs (c st env)
  | Expr.Unnest (i, e) ->
      let c = sub e in
      fun st env -> Bag.unnest i (c st env)
  | Expr.Let (x, e, body) ->
      let c = sub e and cbody = stable x body in
      fun st env -> cbody st (Env.add x (c st env) env)
  | Expr.Fix (x, body, seed) ->
      let cbody = under x body and cseed = sub seed in
      fun st env -> iterate st att env ~x ~cbody ~bound:None (cseed st env)
  | Expr.BFix (bound, x, body, seed) ->
      let cbound = sub bound and cbody = under x body and cseed = sub seed in
      fun st env ->
        let bound = cbound st env in
        iterate st att env ~x ~cbody ~bound:(Some bound) (cseed st env)

(* Inflationary iteration: X ↦ (body(X) ∪ X) [∩ bound].  With a bound the
   chain is increasing and bounded, hence terminating; without one the step
   budget applies (BALG + IFP is Turing complete, Thm 6.6).  The stability
   check benefits from the hash tags: unequal iterates refute in O(1). *)
and iterate st att env ~x ~cbody ~bound current =
  let clamp v = match bound with None -> v | Some b -> Bag.inter v b in
  let rec go steps current =
    Budget.check_fix_steps st.budget ~node:att.id ~op:att.op steps;
    Budget.check_deadline st.budget ~node:att.id ~op:att.op;
    let stepped = cbody st (Env.add x current env) in
    let next = clamp (Bag.union_max stepped current) in
    if Value.equal next current then current else go (steps + 1) next
  in
  go 0 (clamp current)

(* ------------------------------------------------------------------ *)
(* Entry points. *)

let run ?budget ?limits ?meters ?telemetry env e =
  let budget =
    match (budget, limits) with
    | Some b, _ -> b
    | None, Some l -> Budget.start l
    | None, None -> Budget.start Budget.default
  in
  let meters = match meters with Some m -> m | None -> fresh_meters () in
  let compiled = compile { ctr = ref 0; telemetry } ~parent:0 Expr.Vars.empty e in
  match compiled { budget; meters; memo = Hashtbl.create 64 } env with
  | v -> Ok v
  | exception Budget.Budget_exceeded x -> Error x

let eval ?(config = default_config) ?meters env e =
  match run ~limits:(limits_of_config config) ?meters env e with
  | Ok v -> v
  | Error x -> raise (Resource_limit (Budget.exhaustion_to_string x))

(** Boolean convention for queries: a result is true when the output bag is
    nonempty (cf. Example 4.1's [≠ ∅] tests). *)
let truthy v =
  match Value.view v with
  | Value.Bag [] -> false
  | Value.Bag _ -> true
  | Value.Atom _ | Value.Tuple _ ->
      error "truthiness of a non-bag value %s" (Value.to_string v)
