(** The reference interpreter for BALG.

    Evaluation is exact: multiplicities are {!Bignat.t}s and every operator
    follows the §3 semantics literally.  Because the algebra can express
    queries of arbitrarily high hyper-exponential complexity (Prop 3.2,
    Thm 5.5), evaluation runs under a {!Budget} governor: step fuel,
    per-bag support, encoded-size and multiplicity-digit bounds, a fixpoint
    step bound and an optional wall-clock deadline, all checked at every
    compiled-closure boundary.  Exhaustion surfaces as a structured
    [Error (Budget.exhaustion)] from {!run}, locating the node where the
    account ran dry; the legacy {!eval} entry point converts it to the
    historical {!Resource_limit} exception.

    The expression is {e compiled} to a closure tree before evaluation:
    each node gets a stable preorder id (the attribution key shared by the
    governor and the {!Telemetry} span tree), and operator nodes whose
    free variables are all {e stable} (not bound by a MAP/σ binder applied
    per element, nor by a fixpoint binder that changes every iteration) are
    backed by a memo table keyed by (node id, fingerprint of the free-var
    bindings).  [Fix]/[BFix] iteration and repeated [Let]-bound subqueries
    then hit cache instead of re-evaluating; the meters record hit/miss
    counts.

    [P]/[Pb] are charged for their {e expected} output support — the
    product of (multiplicity + 1) over the input, computed in O(support) —
    before anything is materialised, so a hyper-exponential powerset
    nesting is cut off by the fuel or support budget without allocating
    the intermediate bag.

    The evaluator also carries {e meters} recording the largest
    intermediate bag support and multiplicity seen; the complexity
    experiments (E10, E11, E15) read the growth shapes claimed by Theorems
    4.4, 5.1 and 6.2 off these meters. *)

exception Eval_error of string
exception Resource_limit of string

let error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

type config = {
  max_support : int;  (** bound on distinct elements per bag *)
  max_count_digits : int;  (** bound on decimal digits of any multiplicity *)
  max_fix_steps : int;  (** bound on fixpoint iterations *)
}

let default_config =
  { max_support = 2_000_000; max_count_digits = 10_000; max_fix_steps = 100_000 }

let limits_of_config c =
  {
    Budget.unlimited with
    Budget.max_support = c.max_support;
    max_count_digits = c.max_count_digits;
    max_fix_steps = c.max_fix_steps;
  }

type meters = {
  mutable max_support_seen : int;
  mutable max_count_seen : Bignat.t;
  mutable max_cardinal_seen : Bignat.t;
  mutable ops : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
}

let fresh_meters () =
  {
    max_support_seen = 0;
    max_count_seen = Bignat.zero;
    max_cardinal_seen = Bignat.zero;
    ops = 0;
    memo_hits = 0;
    memo_misses = 0;
  }

module Env = Map.Make (String)

type env = Value.t Env.t

let env_of_list l = List.fold_left (fun m (x, v) -> Env.add x v m) Env.empty l

(* ------------------------------------------------------------------ *)
(* Compilation to closures: budget governance, telemetry spans,
   memoisation of stable operator nodes, and parallel execution. *)

type state = {
  budget : Budget.t;  (** shared across domains; accounts are atomic *)
  meters : meters;  (** owned by this state; merged at parallel joins *)
  run_id : int;  (** keys the per-domain memo tables *)
  telemetry : Telemetry.t option;  (** the sink, when one is attached *)
  shard : Telemetry.shard option;
      (** [Some] inside a parallel task: records land in the task's own
          shard and merge into the parent at the join *)
  pool : Pool.t option;
  mutable obs_cell : int ref;
      (** fuel charged to the {e currently executing} node, for the trace
          exporter: each traced node invocation installs a fresh cell and
          its end event reports the cell's total, so summing the [steps]
          arg over all end events reproduces the spent fuel exactly (the
          trace-side mirror of the telemetry steps == fuel invariant).
          The cell is dynamically scoped — states are domain-private, so
          a plain ref suffices. *)
}

(* Attribution of one compiled node: its preorder id, operator label, and
   (when a sink is attached) its telemetry span. *)
type att = { id : int; op : string; sp : Telemetry.span option }

(* The span to record into for this state: the registered tree span on the
   main domain, the task's shard span inside a parallel task. *)
let span_of st att sp_main =
  match st.shard with
  | None -> sp_main
  | Some sh -> Telemetry.shard_span sh ~id:att.id ~op:att.op

(* Injection site (see fault.mli): a fault at the evaluator's fuel-charge
   boundary — the finest-grained place evaluation can die — published as a
   located [Injected] verdict at the charging node.  The check precedes
   the telemetry mirror so a firing site records no steps it did not pay
   fuel for. *)
let step_site = Fault.register "eval.step"

(* Every unit of fuel charged to the governor is mirrored into the node's
   span (or its shard counterpart), so the span tree's total step count
   always equals the spent fuel after shards merge (the --stats invariant,
   tested in test_budget.ml and test_parallel.ml). *)
let spend st att n =
  if Fault.fire step_site then
    Budget.exceeded st.budget Budget.Injected ~node:att.id
      ~op:(Fault.name step_site)
      ~spent:(Budget.fuel_spent st.budget) ~limit:0;
  (match att.sp with
  | Some sp -> Telemetry.add_steps (span_of st att sp) n
  | None -> ());
  (* Mirror into the trace accumulator before [charge] can raise, for the
     same reason the telemetry mirror precedes it: the charge that trips
     the account must still appear in the exported steps. *)
  st.obs_cell := !(st.obs_cell) + n;
  Budget.charge st.budget ~node:att.id ~op:att.op n

(* Meter the result, enforce the per-value budgets, and charge fuel
   proportional to the materialised support. *)
let observe st att v =
  let m = st.meters in
  m.ops <- m.ops + 1;
  (match Value.view v with
  | Value.Bag pairs ->
      (* One walk for all three measures; the cardinal stays in machine
         arithmetic until a count (or the sum) leaves [int] range. *)
      let support = ref 0 in
      let mc = ref Bignat.zero in
      let icard = ref 0 in
      List.iter
        (fun (_, c) ->
          incr support;
          if Bignat.compare c !mc > 0 then mc := c;
          if !icard >= 0 then
            icard :=
              (match Bignat.to_int_opt c with
              | Some n ->
                  let s = !icard + n in
                  if s < 0 then -1 else s
              | None -> -1))
        pairs;
      let support = !support and mc = !mc in
      if support > m.max_support_seen then m.max_support_seen <- support;
      Budget.check_support st.budget ~node:att.id ~op:att.op support;
      if Bignat.compare mc m.max_count_seen > 0 then begin
        m.max_count_seen <- mc;
        Budget.check_count_digits st.budget ~node:att.id ~op:att.op
          (Bignat.digits mc)
      end;
      let card =
        if !icard >= 0 then Bignat.of_int !icard else Value.cardinal v
      in
      if Bignat.compare card m.max_cardinal_seen > 0 then
        m.max_cardinal_seen <- card;
      let size = Value.size_tag v in
      Budget.check_size st.budget ~node:att.id ~op:att.op size;
      (match att.sp with
      | Some sp -> Telemetry.record_result (span_of st att sp) ~support ~size
      | None -> ());
      spend st att support
  | Value.Atom _ | Value.Tuple _ -> (
      let size = Value.size_tag v in
      Budget.check_size st.budget ~node:att.id ~op:att.op size;
      match att.sp with
      | Some sp -> Telemetry.record_result (span_of st att sp) ~support:0 ~size
      | None -> ()));
  v

(* Keep the table from growing without bound inside huge fixpoints; a reset
   loses cached work but never correctness. *)
let memo_capacity = 1 lsl 16

(* Per-domain memo tables, keyed off domain-local storage: every domain —
   main or worker — reads and writes only its own table, so the lookup
   path needs no locks at all.  Tables are recycled across runs by tagging
   them with the run id: node ids restart at 1 for every compilation, so a
   stale entry from a previous run must never be visible. *)
type memo_tbl = (int * int, (Value.t option list * Value.t) list ref) Hashtbl.t

let memo_slot : (int ref * memo_tbl) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref (-1), Hashtbl.create 256))

let memo_table st : memo_tbl =
  let rid, tbl = Domain.DLS.get memo_slot in
  if !rid <> st.run_id then begin
    rid := st.run_id;
    Hashtbl.reset tbl (* domain-local: DLS table, never shared *)
  end;
  tbl

let binding_equal a b =
  match (a, b) with
  | None, None -> true
  | Some v, Some w -> Value.equal v w
  | None, Some _ | Some _, None -> false

let bindings_equal xs ys = List.for_all2 binding_equal xs ys

let fingerprint vals =
  List.fold_left
    (fun h v ->
      match v with
      | None -> (h * 0x01000193) lxor 0x5bd1e995
      | Some v -> (h * 0x01000193) lxor Value.hash v)
    0x811c9dc5 vals

type compiled = state -> env -> Value.t

type reg = { ctr : int ref; telemetry : Telemetry.t option }

(* ------------------------------------------------------------------ *)
(* Parallel regions. *)

let par_pool st =
  match st.pool with Some p when Pool.jobs p > 1 -> Some p | _ -> None

let merge_meters dst src =
  if src.max_support_seen > dst.max_support_seen then
    dst.max_support_seen <- src.max_support_seen;
  if Bignat.compare src.max_count_seen dst.max_count_seen > 0 then
    dst.max_count_seen <- src.max_count_seen;
  if Bignat.compare src.max_cardinal_seen dst.max_cardinal_seen > 0 then
    dst.max_cardinal_seen <- src.max_cardinal_seen;
  dst.ops <- dst.ops + src.ops;
  dst.memo_hits <- dst.memo_hits + src.memo_hits;
  dst.memo_misses <- dst.memo_misses + src.memo_misses

(* Run [tasks] (closures over a fresh child state each) on the pool and
   join.  Child meters and telemetry shards merge into [st] whether the
   task succeeded or not — fuel spent on a failed branch is still fuel
   spent, and the steps == fuel invariant must survive exhaustion.
   Failure combination is deterministic: a non-budget exception from the
   earliest task wins (sequential evaluation would have raised it), else
   the budget verdict with the smallest preorder node id. *)
let par_run (st : state) p (tasks : (state -> 'a) list) : 'a list =
  let children =
    List.map
      (fun task ->
        let c =
          {
            st with
            meters = fresh_meters ();
            obs_cell = ref 0;
            shard =
              (match st.telemetry with
              | None -> None
              | Some _ -> Some (Telemetry.shard ()));
          }
        in
        (* Bracket the task in its own trace span (it runs on whatever
           domain picks it up, so the events land in that domain's ring);
           the end event reports the child's root cell — fuel charged
           outside any node wrapper, e.g. by memo hits at the task's top
           node — keeping the exported steps sum equal to the fuel. *)
        let traced_task () =
          if not (Obs.on ()) then task c
          else begin
            if Obs.on () then Obs.emit Obs.B ~cat:"eval" ~name:"task" ~args:[];
            match task c with
            | v ->
                if Obs.on () then Obs.emit Obs.E ~cat:"eval" ~name:"task" ~args:[ ("steps", Obs.Int !(c.obs_cell)) ];
                v
            | exception exn ->
                if Obs.on () then Obs.emit Obs.E ~cat:"eval" ~name:"task" ~args:[ ("steps", Obs.Int !(c.obs_cell)) ];
                raise exn
          end
        in
        (c, traced_task))
      tasks
  in
  let results = Pool.run p (List.map snd children) in
  List.iter
    (fun (c, _) ->
      merge_meters st.meters c.meters;
      match c.shard with
      | None -> ()
      | Some src -> (
          match st.shard with
          | Some dst -> Telemetry.merge_shard_into_shard dst src
          | None -> (
              match st.telemetry with
              | Some t -> Telemetry.merge_shard t src
              | None -> ())))
    children;
  let reraise =
    List.fold_left
      (fun acc r ->
        match (acc, r) with
        | Some e, _ when not (match e with Budget.Budget_exceeded _ -> true | _ -> false) ->
            acc (* earliest non-budget exception is final *)
        | _, Ok _ -> acc
        | _, Error (Budget.Budget_exceeded x) -> (
            match acc with
            | None -> Some (Budget.Budget_exceeded x)
            | Some (Budget.Budget_exceeded y) ->
                if x.Budget.at_node < y.Budget.at_node then
                  Some (Budget.Budget_exceeded x)
                else acc
            | Some _ -> acc)
        | _, Error e -> Some e (* first non-budget error overrides *))
      None results
  in
  match reraise with
  | Some e -> raise e
  | None ->
      List.map (function Ok v -> v | Error _ -> assert false) results

(* An expected output beyond [int] range (reported as a saturated
   [max_int]) is impossible to materialise whatever the limits: a located
   [Support] verdict, the structured replacement for the old ad-hoc
   [Bag.Too_large] escape. *)
let too_large st att =
  let limit = (Budget.limits st.budget).Budget.max_support in
  Budget.exceeded st.budget Budget.Support ~node:att.id ~op:att.op
    ~spent:max_int ~limit

(* Charge a power operator for its expected output before materialising
   anything: a hyper-exponential [P(P(...))] tower dies here, on the fuel
   or support account, without allocating the intermediate bag.  After
   this guard passes, the (unguarded) kernel cannot overflow. *)
let power_guard st att b =
  let n = Bag.expected_subbags b in
  if n = max_int then too_large st att;
  Budget.check_deadline st.budget ~node:att.id ~op:att.op;
  Budget.check_support st.budget ~node:att.id ~op:att.op n;
  spend st att n

(* [volatile] holds the binders whose bindings change per element or per
   fixpoint iteration; nodes mentioning them would only churn the table. *)
let rec compile reg ~parent volatile e : compiled =
  incr reg.ctr;
  let id = !(reg.ctr) in
  let op = Expr.op_name e in
  let sp =
    match reg.telemetry with
    | Some t -> Some (Telemetry.register t ~parent ~id ~op)
    | None -> None
  in
  let att = { id; op; sp } in
  let raw = compile_node reg ~att volatile e in
  let invoke =
    match sp with
    | None ->
        fun st env ->
          spend st att 1;
          observe st att (raw st env)
    | Some sp_main ->
        (* Inclusive wall time and allocation per span; only paid when a
           telemetry sink is attached.  The span is resolved per call: the
           registered tree span on the main domain, the task shard inside
           a parallel region. *)
        fun st env ->
          spend st att 1;
          let sp = span_of st att sp_main in
          sp.Telemetry.invocations <- sp.Telemetry.invocations + 1;
          let t0 = Unix.gettimeofday () in
          let a0 = Gc.allocated_bytes () in
          let finish () =
            sp.Telemetry.time_s <-
              sp.Telemetry.time_s +. (Unix.gettimeofday () -. t0);
            sp.Telemetry.alloc_words <-
              sp.Telemetry.alloc_words
              +. ((Gc.allocated_bytes () -. a0)
                 /. float (Sys.word_size / 8))
          in
          (match raw st env with
          | v ->
              finish ();
              observe st att v
          | exception exn ->
              finish ();
              raise exn)
  in
  (* Trace events per invocation, only when capture is on: a begin event,
     a fresh self-steps cell for the duration, and an end event carrying
     the fuel this node (not its children) charged — balanced on the
     exception path too, so an exhausted or faulted run still exports a
     well-formed trace.  Disarmed cost: the one [Obs.on] load + branch. *)
  let invoke st env =
    if not (Obs.on ()) then invoke st env
    else begin
      if Obs.on () then Obs.emit Obs.B ~cat:"eval" ~name:op ~args:[ ("node", Obs.Int id) ];
      let saved = st.obs_cell in
      let cell = ref 0 in
      st.obs_cell <- cell;
      let close () =
        st.obs_cell <- saved;
        if Obs.on () then Obs.emit Obs.E ~cat:"eval" ~name:op ~args:[ ("node", Obs.Int id); ("steps", Obs.Int !cell) ]
      in
      match invoke st env with
      | v ->
          close ();
          v
      | exception exn ->
          close ();
          raise exn
    end
  in
  let memoisable =
    match e with
    | Expr.Var _ | Expr.Lit _ | Expr.Tuple _ | Expr.Proj _ | Expr.Sing _ ->
        false
    | _ -> Expr.Vars.disjoint (Expr.free_vars e) volatile
  in
  if not memoisable then invoke
  else begin
    let fv = Expr.Vars.elements (Expr.free_vars e) in
    fun st env ->
      let vals = List.map (fun x -> Env.find_opt x env) fv in
      let key = (id, fingerprint vals) in
      let hit r =
        st.meters.memo_hits <- st.meters.memo_hits + 1;
        spend st att 1;
        (match sp with
        | Some sp_main ->
            let sp = span_of st att sp_main in
            sp.Telemetry.invocations <- sp.Telemetry.invocations + 1;
            Telemetry.record_memo_hit sp
        | None -> ());
        r
      in
      let compute () =
        st.meters.memo_misses <- st.meters.memo_misses + 1;
        (match sp with
        | Some sp_main -> Telemetry.record_memo_miss (span_of st att sp_main)
        | None -> ());
        invoke st env
      in
      let memo = memo_table st in
      match Hashtbl.find_opt memo key with
      | Some entries -> (
          match
            List.find_opt (fun (vs, _) -> bindings_equal vs vals) !entries
          with
          | Some (_, r) -> hit r
          | None ->
              let r = compute () in
              entries := (vals, r) :: !entries;
              r)
      | None ->
          let r = compute () in
          if Hashtbl.length memo >= memo_capacity then
            Hashtbl.reset memo (* domain-local: DLS table, never shared *);
          Hashtbl.add memo key (ref [ (vals, r) ]) (* domain-local: DLS table *);
          r
  end

and compile_node reg ~att volatile e : compiled =
  let sub e = compile reg ~parent:att.id volatile e in
  let under x e = compile reg ~parent:att.id (Expr.Vars.add x volatile) e in
  let stable x e = compile reg ~parent:att.id (Expr.Vars.remove x volatile) e in
  (* Binary operators with two substantial operands fork their branches
     onto the pool: the operands are independent, so each evaluates in its
     own child state and the kernel combines the joined values.  Operand
     sizes are known at compile time; the sequential path keeps the
     historical right-then-left evaluation order. *)
  let bin a b kernel =
    let ca = sub a and cb = sub b in
    let sa = Expr.size a and sb = Expr.size b in
    fun st env ->
      match par_pool st with
      | Some p when sa >= Pool.fork_min p && sb >= Pool.fork_min p -> (
          match par_run st p [ (fun c -> ca c env); (fun c -> cb c env) ] with
          | [ va; vb ] -> kernel st va vb
          | _ -> assert false)
      | _ ->
          let vb = cb st env in
          let va = ca st env in
          kernel st va vb
  in
  match e with
  | Expr.Var x -> (
      fun _st env ->
        match Env.find_opt x env with
        | Some v -> v
        | None -> error "unbound variable %s" x)
  | Expr.Lit (v, _) -> fun _st _env -> v
  | Expr.Tuple es ->
      let cs = List.map sub es in
      fun st env -> Value.tuple (List.map (fun c -> c st env) cs)
  | Expr.Proj (i, e) -> (
      let c = sub e in
      fun st env ->
        let v = c st env in
        match Value.view v with
        | Value.Tuple vs when i >= 1 && i <= List.length vs ->
            List.nth vs (i - 1)
        | _ -> error "cannot project attribute %d of %s" i (Value.to_string v))
  | Expr.Sing e ->
      let c = sub e in
      fun st env -> Value.of_sorted_assoc [ (c st env, Bignat.one) ]
  | Expr.UnionAdd (a, b) -> bin a b (fun _st va vb -> Bag.union_add va vb)
  | Expr.Diff (a, b) -> bin a b (fun _st va vb -> Bag.diff va vb)
  | Expr.UnionMax (a, b) -> bin a b (fun _st va vb -> Bag.union_max va vb)
  | Expr.Inter (a, b) -> bin a b (fun _st va vb -> Bag.inter va vb)
  | Expr.Product (a, b) ->
      bin a b (fun st va vb -> Bag.product ?pool:st.pool va vb)
  | Expr.Join (i, j, a, b) ->
      bin a b (fun st va vb -> Bag.join_eq ?pool:st.pool i j va vb)
  | Expr.Powerset e ->
      let c = sub e in
      fun st env ->
        let b = c st env in
        power_guard st att b;
        Bag.powerset b
  | Expr.Powerbag e ->
      let c = sub e in
      fun st env ->
        let b = c st env in
        power_guard st att b;
        Bag.powerbag b
  | Expr.Destroy e ->
      let c = sub e in
      fun st env -> Bag.destroy (c st env)
  (* Generalized projection MAP λx.<α_{i1}(x), ...> runs as the direct
     {!Bag.proj} kernel; on malformed data ([Invalid_argument]) the generic
     closure replays the bag so error behaviour is unchanged. *)
  | Expr.Map (x, (Expr.Tuple comps as body), e)
    when List.for_all
           (function Expr.Proj (_, Expr.Var y) -> y = x | _ -> false)
           comps ->
      let ixs =
        List.map (function Expr.Proj (i, _) -> i | _ -> assert false) comps
      in
      let cbody = under x body and c = sub e in
      fun st env ->
        let b = c st env in
        (try Bag.proj ?pool:st.pool ixs b
         with Invalid_argument _ ->
           Bag.map (fun v -> cbody st (Env.add x v env)) b)
  | Expr.Map (x, body, e) ->
      let cbody = under x body and c = sub e in
      fun st env -> (
        let b = c st env in
        match par_pool st with
        | Some p when Value.is_bag b && Value.support_size b >= Pool.chunk_min p ->
            (* Chunk the support: each task maps its slice under a child
               state (per-element budget charges hit the shared atomic
               account) and locally coalesces; the per-chunk bags recombine
               with the additive sorted merge — exactly the coalescing the
               sequential [bag_of_assoc] performs. *)
            let chunks = Pool.chunks (4 * Pool.jobs p) (Value.as_bag b) in
            let parts =
              par_run st p
                (List.map
                   (fun chunk cst ->
                     Value.bag_of_assoc
                       (List.map
                          (fun (v, cnt) -> (cbody cst (Env.add x v env), cnt))
                          chunk))
                   chunks)
            in
            List.fold_left Bag.union_add Value.empty_bag parts
        | _ -> Bag.map (fun v -> cbody st (Env.add x v env)) b)
  (* σ_{i=j}: positional-equality selection runs as {!Bag.select_eq}, with
     the same generic fallback on malformed data. *)
  | Expr.Select
      ( x,
        (Expr.Proj (i, Expr.Var x1) as l),
        (Expr.Proj (j, Expr.Var x2) as r),
        e )
    when x1 = x && x2 = x ->
      let cl = under x l and cr = under x r and c = sub e in
      fun st env ->
        let b = c st env in
        (try Bag.select_eq ?pool:st.pool i j b
         with Invalid_argument _ ->
           Bag.select
             (fun v ->
               let env' = Env.add x v env in
               Value.equal (cl st env') (cr st env'))
             b)
  | Expr.Select (x, l, r, e) ->
      let cl = under x l and cr = under x r and c = sub e in
      fun st env -> (
        let b = c st env in
        let pred cst v =
          let env' = Env.add x v env in
          Value.equal (cl cst env') (cr cst env')
        in
        match par_pool st with
        | Some p when Value.is_bag b && Value.support_size b >= Pool.chunk_min p ->
            (* Filtered contiguous chunks of the sorted support concatenate
               back into one canonical list. *)
            let chunks = Pool.chunks (4 * Pool.jobs p) (Value.as_bag b) in
            let parts =
              par_run st p
                (List.map
                   (fun chunk cst ->
                     List.filter (fun (v, _) -> pred cst v) chunk)
                   chunks)
            in
            Value.of_sorted_assoc (List.concat parts)
        | _ -> Bag.select (pred st) b)
  | Expr.Dedup e ->
      let c = sub e in
      fun st env -> Bag.dedup (c st env)
  | Expr.Nest (ixs, e) ->
      let c = sub e in
      fun st env -> Bag.nest ixs (c st env)
  | Expr.Unnest (i, e) ->
      let c = sub e in
      fun st env -> Bag.unnest i (c st env)
  | Expr.Let (x, e, body) ->
      let c = sub e and cbody = stable x body in
      fun st env -> cbody st (Env.add x (c st env) env)
  | Expr.Fix (x, body, seed) ->
      let cbody = under x body and cseed = sub seed in
      fun st env -> iterate st att env ~x ~cbody ~bound:None (cseed st env)
  | Expr.BFix (bound, x, body, seed) ->
      let cbound = sub bound and cbody = under x body and cseed = sub seed in
      fun st env ->
        let bound = cbound st env in
        iterate st att env ~x ~cbody ~bound:(Some bound) (cseed st env)

(* Inflationary iteration: X ↦ (body(X) ∪ X) [∩ bound].  With a bound the
   chain is increasing and bounded, hence terminating; without one the step
   budget applies (BALG + IFP is Turing complete, Thm 6.6).  The stability
   check benefits from the hash tags: unequal iterates refute in O(1). *)
and iterate st att env ~x ~cbody ~bound current =
  let clamp v = match bound with None -> v | Some b -> Bag.inter v b in
  let rec go steps current =
    Budget.check_fix_steps st.budget ~node:att.id ~op:att.op steps;
    Budget.check_deadline st.budget ~node:att.id ~op:att.op;
    let stepped = cbody st (Env.add x current env) in
    let next = clamp (Bag.union_max stepped current) in
    if Value.equal next current then current else go (steps + 1) next
  in
  go 0 (clamp current)

(* ------------------------------------------------------------------ *)
(* Entry points. *)

(* Distinct run ids recycle the per-domain memo tables between runs. *)
let run_ids = Atomic.make 1

let m_runs = Metrics.counter Metrics.default "balg_eval_runs_total"
    ~help:"Evaluations started"

let m_ok = Metrics.counter Metrics.default "balg_eval_ok_total"
    ~help:"Evaluations that returned a value"

let m_verdicts = Metrics.counter Metrics.default "balg_eval_verdicts_total"
    ~help:"Evaluations that ended in a structured exhaustion verdict"

let m_fuel = Metrics.histogram Metrics.default "balg_eval_fuel"
    ~help:"Fuel spent per evaluation"

let m_run_ns = Metrics.histogram Metrics.default "balg_eval_run_ns"
    ~help:"Wall time per evaluation in nanoseconds"

let m_peak_support = Metrics.histogram Metrics.default
    "balg_eval_peak_support"
    ~help:"Largest intermediate bag support per evaluation"

(* Close the run's trace span and record its metrics — on every exit path,
   verdicts included: the final instant event carries the outcome and the
   spent fuel, which is what scripts/check_trace.sh reconciles against the
   per-node step counts. *)
let finish_run st t0 outcome_args =
  Metrics.observe m_fuel (Budget.fuel_spent st.budget);
  Metrics.observe m_run_ns
    (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
  Metrics.observe m_peak_support st.meters.max_support_seen;
  if Obs.on () then Obs.emit Obs.E ~cat:"eval" ~name:"run" ~args:[ ("steps", Obs.Int !(st.obs_cell)) ];
  if Obs.on () then Obs.emit Obs.I ~cat:"eval" ~name:"done" ~args:(("fuel", Obs.Int (Budget.fuel_spent st.budget)) :: outcome_args)

let verdict_args (x : Budget.exhaustion) =
  [
    ("outcome", Obs.Str "verdict");
    ("resource", Obs.Str (Budget.resource_to_string x.Budget.resource));
    ("node", Obs.Int x.Budget.at_node);
    ("op", Obs.Str x.Budget.op);
  ]

let run ?budget ?limits ?meters ?telemetry ?pool env e =
  let budget =
    match (budget, limits) with
    | Some b, _ -> b
    | None, Some l -> Budget.start l
    | None, None -> Budget.start Budget.default
  in
  let meters = match meters with Some m -> m | None -> fresh_meters () in
  let compiled = compile { ctr = ref 0; telemetry } ~parent:0 Expr.Vars.empty e in
  let st =
    {
      budget;
      meters;
      run_id = Atomic.fetch_and_add run_ids 1;
      telemetry;
      shard = None;
      pool;
      obs_cell = ref 0;
    }
  in
  Metrics.incr m_runs;
  let t0 = Unix.gettimeofday () in
  if Obs.on () then Obs.set_trace_id st.run_id;
  if Obs.on () then Obs.emit Obs.B ~cat:"eval" ~name:"run" ~args:[ ("run", Obs.Int st.run_id); ("size", Obs.Int (Expr.size e)) ];
  match compiled st env with
  | v ->
      Metrics.incr m_ok;
      finish_run st t0 [ ("outcome", Obs.Str "ok") ];
      Ok v
  | exception Budget.Budget_exceeded x ->
      (* Under parallel evaluation the propagated exception is whichever
         domain's raise won the race; the published verdict is kept at the
         smallest node id, so report that one. *)
      let x = match Budget.verdict budget with Some y -> y | None -> x in
      Metrics.incr m_verdicts;
      finish_run st t0 (verdict_args x);
      Error x
  | exception Fault.Injected site ->
      (* An injected failure below the evaluator's attribution (a kernel
         allocation point, a pool task): structured verdict at node 0 —
         "before/outside any node" — carrying the site name.  The faults
         the evaluator can locate (eval.step) arrive as Budget_exceeded
         above instead. *)
      let x =
        { Budget.resource = Budget.Injected; at_node = 0; op = site;
          spent = 0; limit = 0 }
      in
      Metrics.incr m_verdicts;
      finish_run st t0 (verdict_args x);
      Error x
  | exception exn ->
      (* A caller bug (Eval_error, ...) still closes the trace span before
         propagating, so the export stays balanced. *)
      finish_run st t0 [ ("outcome", Obs.Str "exception") ];
      raise exn

let eval ?(config = default_config) ?meters ?pool env e =
  match run ~limits:(limits_of_config config) ?meters ?pool env e with
  | Ok v -> v
  | Error x -> raise (Resource_limit (Budget.exhaustion_to_string x))

(** Boolean convention for queries: a result is true when the output bag is
    nonempty (cf. Example 4.1's [≠ ∅] tests). *)
let truthy v =
  match Value.view v with
  | Value.Bag [] -> false
  | Value.Bag _ -> true
  | Value.Atom _ | Value.Tuple _ ->
      error "truthiness of a non-bag value %s" (Value.to_string v)
