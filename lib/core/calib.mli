(** Estimator calibration: per-operator correction factors that close
    the loop between {!Props}' heuristic row estimates and the
    cardinalities {!Explain} actually measures.

    [explain --analyze] pairs every operator's measured output support
    with the estimate {!Props.infer} produced for the same subtree, and
    condenses the ratios into one multiplicative factor per operator
    (the geometric mean of actual/estimated — multiplicative errors
    compose along a plan, so the log-domain mean centres them).
    {!Props.infer} then multiplies its non-exact row estimates by the
    matching factor, which shifts {!Opt}'s costs — and possibly its
    plan choices — without touching any rewrite's soundness: calibration
    is plan-semantics-preserving by construction, because it only ever
    changes numbers the cost model reads.

    {b File format} (["# balg calibration v1"]): the version header
    followed by one [op factor samples] line per operator.  Plain text,
    diffable, parser round-trips via {!to_string}/{!of_string}.

    {b Ambient calibration.}  {!current} is what {!Props.infer} consults
    by default: set it programmatically with {!set_current}, or name a
    calibration file in the [BALG_CALIB] environment variable and it is
    loaded on first use (unreadable or malformed files are ignored — a
    stale calibration must never stop a query). *)

type entry = { c_factor : float; c_samples : int }

type t
(** A calibration table: operator name → correction factor. *)

val empty : t

val op_key : string -> string
(** The calibration key for an {!Expr.op_name} label: the operator
    family, i.e. the label up to its first space ("join 2=1" → "join"),
    so a factor measured on one query generalizes to any join. *)

val factor : t -> string -> float option
(** The correction factor for an operator, if calibrated. *)

val entries : t -> (string * entry) list
(** All entries, sorted by operator name. *)

val of_observations : (string * int * int) list -> t
(** [of_observations [(op, estimated, actual); ...]] condenses measured
    pairs into per-operator factors (geometric mean of actual/estimated,
    both clamped to at least 1). *)

(** {1 Persistence} *)

val to_string : t -> string
val of_string : string -> (t, string) result
val save : string -> t -> (unit, string) result
val load : string -> (t, string) result

(** {1 The ambient calibration} *)

val set_current : t option -> unit
(** Install (or clear) the process-wide calibration; suppresses any
    later [BALG_CALIB] load. *)

val current : unit -> t option
(** The installed calibration, loading [BALG_CALIB] on first call. *)

val lookup_current : string -> float option
(** [factor] against {!current} — the default lookup {!Props.infer}
    uses. *)
