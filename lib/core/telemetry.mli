(** Per-operator evaluation telemetry: a span tree mirroring the compiled
    expression.

    When an evaluation runs with a telemetry sink attached, every compiled
    node registers a {!span} (keyed by the same preorder node id the
    {!Budget} governor uses for attribution) and records per-invocation
    counters: invocations, governor steps charged, inclusive wall time,
    inclusive allocated words, peak result support / encoded-size tag, and
    memo hits/misses.  The tree is what [balgi --stats] / [--trace] print
    and what [bench/main.exe --json] folds into [BENCH_eval.json].

    Invariant (tested): {!total_steps} over a completed evaluation equals
    the governor's spent fuel — spans and the budget are charged by the
    same code path. *)

type span = {
  id : int;  (** compiled-closure node id (preorder, 1-based) *)
  op : string;  (** {!Expr.op_name} label *)
  mutable invocations : int;
  mutable steps : int;  (** governor fuel charged at this node *)
  mutable time_s : float;  (** inclusive wall time (children included) *)
  mutable alloc_words : float;  (** inclusive allocated words *)
  mutable peak_support : int;  (** largest result support seen *)
  mutable peak_size : int;  (** largest result {!Value.size_tag} seen *)
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable children : span list;  (** reverse registration order *)
}

type t

val create : unit -> t

val register : t -> parent:int -> id:int -> op:string -> span
(** Called by the evaluator while compiling; [parent = 0] marks a root. *)

val roots : t -> span list
(** Root spans in syntactic order. *)

val iter : t -> (span -> unit) -> unit

(** {1 Recording} (hot path; called from compiled closures) *)

val add_steps : span -> int -> unit
val record_result : span -> support:int -> size:int -> unit
val record_memo_hit : span -> unit
val record_memo_miss : span -> unit

(** {1 Shards — per-domain recording for parallel evaluation}

    A shard is a private table of counter spans keyed by node id.  Each
    task of a parallel region records into its own shard (domain-local:
    no locks, no contention) and the evaluator merges shards back into the
    enclosing shard — or the registered span tree at the top — when the
    region joins.  Additive counters add, peaks max, so {!total_steps}
    still equals the governor's spent fuel after any interleaving. *)

type shard

val shard : unit -> shard
val shard_span : shard -> id:int -> op:string -> span
(** Find-or-create the shard's counter span for a node. *)

val merge_shard_into_shard : shard -> shard -> unit
(** [merge_shard_into_shard dst src]: fold [src]'s counters into [dst]. *)

val merge_shard : t -> shard -> unit
(** Fold a shard into the registered span tree (top-level join). *)

(** {1 Aggregation} *)

val total_steps : t -> int
val total_invocations : t -> int

type agg = {
  a_op : string;
  a_spans : int;  (** distinct nodes with this operator *)
  a_invocations : int;
  a_steps : int;
  a_time_s : float;  (** inclusive wall time summed over the family *)
  a_alloc_words : float;
  a_peak_support : int;
  a_memo_hits : int;
  a_memo_misses : int;
}

type sort = By_steps | By_time | By_alloc

val per_op : ?sort:sort -> t -> agg list
(** One row per operator family, sorted descending by the chosen column
    (default {!By_steps}); ties break on the operator name. *)

(** {1 Rendering} *)

val pp_tree : ?trace:bool -> Format.formatter -> t -> unit
(** The span tree in evaluation (syntactic) order.  With [~trace:true],
    adds inclusive time, allocation and memo columns per span. *)

val to_string : ?trace:bool -> t -> string

val summary_json : t -> string
(** Compact one-line JSON object ({["{\"steps\": .., \"spans\": ..,
    \"peak_support\": ..}"]}) for embedding in BENCH_eval.json rows. *)
