(** Session-wide observability: a low-overhead trace-event core with
    Chrome/Perfetto and JSONL exporters.

    One event core feeds every surface.  When tracing is {e enabled},
    instrumented modules ({!Eval}, {!Rewrite}, {!Pool}, {!Budget},
    {!Fault}, [Bagdb], the balgd server stack) emit begin/end and instant
    events — operator name, node id, fuel steps, verdicts, fault hits,
    request lifecycle — into {e per-domain} ring-buffer sinks.  Each ring
    belongs to one domain; a per-ring mutex makes the append atomic for
    the systhreads (balgd sessions, the replication feed) that share
    domain 0's ring, and is uncontended on single-threaded worker
    domains.  Rings have fixed capacity and drop the {e oldest} events on
    overflow, counting what they dropped — the hot path never blocks on
    capacity and never allocates beyond the event itself.

    {b Disarmed cost.}  Every emission call site is guarded by {!on}
    (one [Atomic.get] + branch, the same discipline as {!Fault.armed});
    [scripts/lint.sh] rejects call sites without the same-line guard, so
    a run without [--trace-out] pays nothing for the instrumentation.

    {b Timestamps} are microseconds since {!enable}, clamped to be
    non-decreasing per ring — so per-[tid] monotonicity is an exported
    invariant ([scripts/check_trace.sh] verifies it), immune to the odd
    wall-clock step.

    {b Trace ids.}  Every evaluation gets a trace id ({!set_trace_id},
    wired to [Eval]'s run id); events record it as the Chrome [pid], and
    the emitting domain as the [tid] — in Perfetto a traced [--jobs N]
    run renders as one process with a lane per domain.  A long-lived
    server instead {e pins} one trace id ({!pin_trace_id}) so concurrent
    evaluations can't flip the process id mid-span, and distinguishes
    requests by a [("req", Int id)] argument on every request-scoped
    span; sessions claim synthetic lanes ({!lane_session},
    {!lane_repl}) via [emit ~tid] so each session renders as its own
    thread track.

    Exports read the rings {e after} the work has joined (the CLI writes
    files once the pool is shut down); reading while domains still emit
    is safe but can see a torn tail. *)

(** {1 The event core} *)

type ph = B  (** span begin *) | E  (** span end *) | I  (** instant *)

type arg = Int of int | Str of string | Float of float

type event = {
  ts : float;  (** microseconds since {!enable}, non-decreasing per tid *)
  pid : int;  (** trace id of the evaluation (Chrome "process") *)
  tid : int;  (** emitting domain id (Chrome "thread") *)
  ph : ph;
  cat : string;  (** subsystem: "eval", "rewrite", "pool", ... *)
  name : string;
  args : (string * arg) list;
}

val on : unit -> bool
(** True iff tracing is enabled.  One [Atomic.get]; guard every emission
    call site with it, on the same line. *)

val enable : ?capacity:int -> unit -> unit
(** Start capturing: discards previously captured events and installs
    fresh per-domain rings of [capacity] events each (default 65536,
    rounded up to a power of two). *)

val disable : unit -> unit
(** Stop capturing.  Captured events remain readable for export. *)

val reset : unit -> unit
(** Discard captured events without changing the enabled state. *)

val set_trace_id : int -> unit
(** Tag subsequent events with this trace (run) id.  A no-op while a
    trace id is pinned ({!pin_trace_id}). *)

val pin_trace_id : int -> unit
(** Set the trace id and make later {!set_trace_id} calls no-ops, so a
    server hosting concurrent evaluations keeps one stable Chrome [pid]
    for the whole capture.  {!enable} clears the pin. *)

val trace_id : unit -> int

val now_us : unit -> float
(** The current capture clock: microseconds since {!enable}.  Lets a
    caller note wall-clock points (enqueue, dequeue) and later emit a
    retro-dated span via [emit ~ts_us]. *)

val lane_session : int -> int
(** Synthetic [tid] for a server session's lane (10000 + session id). *)

val lane_repl : int
(** Synthetic [tid] for the replication feed's lane. *)

val emit :
  ?pid:int ->
  ?tid:int ->
  ?ts_us:float ->
  ?args:(string * arg) list ->
  cat:string ->
  name:string ->
  ph ->
  unit
(** Append one event to the calling domain's ring.  No-op when disabled
    (but call sites must still guard with {!on} so the args list is never
    built).  Never blocks on capacity; overwrites the oldest event when
    full.  [?pid]/[?tid] override the trace id and lane (the event still
    lands in the calling domain's ring); [?ts_us] supplies an explicit
    timestamp on the {!now_us} clock — still clamped to the ring's
    monotonic floor, so a retro-dated span stays ordered within its
    ring. *)

val json_escape : string -> string
(** JSON string-body escaping as used by the exporters, shared so other
    JSONL writers (balgd's access and slow-query logs) stay consistent. *)

val events : unit -> event list
(** Captured events, grouped by tid (ascending), in emission order within
    each tid; oldest-dropped events are gone. *)

val dropped : unit -> int
(** Total events lost to ring overflow since {!enable}/{!reset}. *)

(** {1 Exporters} *)

module Trace : sig
  val to_chrome : out_channel -> unit
  (** Chrome trace-event JSON (one event object per line, loadable in
      Perfetto / [chrome://tracing]): [ph] B/E/I, [ts] in microseconds,
      [pid] = trace id, [tid] = domain, plus [thread_name] metadata per
      (pid, tid) lane and an [otherData.droppedEvents] count. *)

  val to_chrome_json : unit -> string
end

module Log : sig
  val to_jsonl : out_channel -> unit
  (** The same captured events as structured JSONL: one flat JSON object
      per line ([ts_us], [pid], [tid], [ph], [cat], [name], then the
      event args), for [jq]-style processing and log shipping. *)

  val to_jsonl_string : unit -> string
end

module Metrics = Metrics
(** The metrics registry rides alongside the event core; see
    {!module:Metrics}. *)
