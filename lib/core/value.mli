(** Complex-object values: atoms, tuples, and bags with {!Bignat.t}
    multiplicities.

    Bags are kept canonical — elements strictly increasing in {!compare},
    multiplicities strictly positive and coalesced — so structural equality
    is bag equality.  An element [o] {e n-belongs} to a bag when its stored
    multiplicity is [n] (§2).

    The representation is {e tagged}: every node carries a precomputed
    structural hash and a saturating encoded-size tag, maintained by the
    smart constructors.  Tags give {!equal} an O(1) refutation fast path and
    let bag kernels bucket by hash instead of deep-comparing.  Because [t]
    is abstract, the tag invariants (hash and size always agree with the
    structure) cannot be broken from outside; inspect values through
    {!view}. *)

type t

type view =
  | Atom of string
  | Tuple of t list
  | Bag of (t * Bignat.t) list
      (** canonical: strictly increasing keys, positive counts. *)

val view : t -> view
(** One-level pattern-matching view of a value.  O(1). *)

val compare : t -> t -> int
(** Total order: atoms < tuples < bags; lexicographic within a kind.
    Physically equal (sub)values short-circuit to 0 without a walk. *)

val equal : t -> t -> bool
(** O(1) when the answer is [false] and the hash or size tags differ, and
    when the arguments are physically equal; a structural walk otherwise. *)

val hash : t -> int
(** Precomputed structural hash: [equal a b] implies [hash a = hash b].
    O(1) — use it to key hash tables over values. *)

val size_tag : t -> int
(** Saturating machine-int approximation of {!encoded_size}: exact whenever
    the encoded size fits an [int], [max_int] otherwise.  O(1). *)

val sat_add : int -> int -> int
val sat_mul : int -> int -> int
(** Saturating machine arithmetic on non-negative operands (the arithmetic
    of the size tags).  Overflow pins to [max_int] instead of wrapping —
    use these for any budget product that feeds a comparison, since a
    wrapped product can land back inside the allowed range. *)

(** {1 Constructors} *)

val atom : string -> t
val tuple : t list -> t

val bag_of_assoc : (t * Bignat.t) list -> t
(** Canonicalises: coalesces equal elements additively (bucketing by
    {!hash}, so only distinct elements are deep-compared), drops zero
    counts, sorts the distinct support. *)

val bag_of_list : t list -> t
(** Each occurrence counts once; duplicates in the list accumulate. *)

val of_sorted_assoc : (t * Bignat.t) list -> t
(** Trusted constructor for kernels: the input {b must} already be
    canonical (strictly increasing in {!compare}, counts positive).  Only
    the tags are computed; the list is not inspected for order.  Feeding it
    a non-canonical list silently breaks bag equality — use
    {!bag_of_assoc} unless you can prove the invariant. *)

val empty_bag : t

val replicate : Bignat.t -> t -> t
(** [replicate i t] is the paper's [B{^t}{_i}]: exactly [i] occurrences of
    [t]. *)

val nat : ?on:string -> int -> t
(** The §3 integer encoding: [nat n] is a bag of [n] occurrences of the
    unary tuple [<a>] (atom name configurable). *)

(** {1 Accessors} *)

val as_bag : t -> (t * Bignat.t) list
(** @raise Invalid_argument on non-bags. *)

val as_tuple : t -> t list
(** @raise Invalid_argument on non-tuples. *)

val is_bag : t -> bool
val is_empty_bag : t -> bool

val count_in : t -> t -> Bignat.t
(** [count_in v b]: multiplicity of [v] in bag [b] (zero when absent).
    Scans the sorted support and stops at the first element above [v]. *)

val cardinal : t -> Bignat.t
(** Total number of occurrences — the paper's size of a bag. *)

val support : t -> t list
(** Distinct elements, in increasing order. *)

val support_size : t -> int

(** {1 Structure measures} *)

val bag_nesting : t -> int

val encoded_size : t -> Bignat.t
(** Size of the §2 standard encoding, where duplicates are written out
    explicitly. *)

val atoms : t -> string list
(** All atomic constants occurring in the value, sorted. *)

(** {1 Typing} *)

val has_type : Ty.t -> t -> bool
(** The empty bag inhabits every bag type. *)

val infer : t -> Ty.t option
(** Best-effort inference; [None] on heterogeneous bags, [Bag Atom] for the
    empty bag. *)

(** {1 Rendering} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val nat_value : t -> Bignat.t
(** Decode an integer-as-bag back to its number (the cardinality). *)
