(* Deterministic, seeded fault injection; see fault.mli for the model. *)

exception Injected of string

type trigger =
  | Off
  | Always
  | Nth of int  (** fire exactly on the K-th hit *)
  | Every of int  (** fire on every K-th hit *)
  | Prob of float  (** fire on hit k iff hash (seed, name, k) < p *)

type site = {
  s_name : string;
  trigger : trigger Atomic.t;
  hits : int Atomic.t;
}

(* The registry is written under [lock] (module-init registration and
   harness configuration, both rare); the hot path never touches it — a
   caller holds its [site] directly and reads two atomics. *)
let lock = Mutex.create ()
let registry : (string, site) Hashtbl.t = Hashtbl.create 16
let armed_flag = Atomic.make false
let seed_ref = Atomic.make 0

let register n =
  Mutex.lock lock;
  let s =
    match Hashtbl.find_opt registry n with
    | Some s -> s
    | None ->
        let s = { s_name = n; trigger = Atomic.make Off; hits = Atomic.make 0 } in
        Hashtbl.add registry n s (* domain-local: guarded by [lock] *);
        s
  in
  Mutex.unlock lock;
  s

let name s = s.s_name
let armed () = Atomic.get armed_flag

(* The decision for hit [k] is a pure function of (seed, name, k):
   [Hashtbl.hash] is deterministic on immutable data, so the same seed
   replays the same failure. *)
let uniform key = float_of_int (Hashtbl.hash key land 0x3FFFFFFF) /. 1073741824.

let decide s k =
  match Atomic.get s.trigger with
  | Off -> false
  | Always -> true
  | Nth n -> k = n
  | Every n -> k mod n = 0
  | Prob p -> uniform (Atomic.get seed_ref, s.s_name, k) < p

let fires = Metrics.counter Metrics.default "balg_fault_fires_total"
    ~help:"Fault-injection sites that decided to fire"

let fire s =
  let fired =
    Atomic.get armed_flag
    && (match Atomic.get s.trigger with Off -> false | _ -> true)
    && decide s (Atomic.fetch_and_add s.hits 1 + 1)
  in
  if fired then begin
    Metrics.incr fires;
    if Obs.on () then Obs.emit Obs.I ~cat:"fault" ~name:s.s_name ~args:[ ("hit", Obs.Int (Atomic.get s.hits)) ]
  end;
  fired

let fire_payload s =
  if not (fire s) then None
  else
    Some
      (Hashtbl.hash (Atomic.get seed_ref, "payload", s.s_name, Atomic.get s.hits)
      land 0x3FFFFFFF)

let inject s = if fire s then raise (Injected s.s_name)

let reset_all () =
  Hashtbl.iter
    (fun _ s ->
      Atomic.set s.trigger Off;
      Atomic.set s.hits 0)
    registry

let disarm () =
  Mutex.lock lock;
  Atomic.set armed_flag false;
  reset_all ();
  Mutex.unlock lock

let parse_trigger spec =
  let pos_int v =
    match int_of_string_opt v with
    | Some k when k >= 1 -> Ok k
    | _ -> Error (Printf.sprintf "expected a positive integer, got %S" v)
  in
  match String.index_opt spec '=' with
  | None -> (
      match spec with
      | "always" -> Ok Always
      | "off" -> Ok Off
      | _ -> Error (Printf.sprintf "unknown trigger %S" spec))
  | Some i -> (
      let key = String.sub spec 0 i in
      let v = String.sub spec (i + 1) (String.length spec - i - 1) in
      match key with
      | "n" -> Result.map (fun k -> Nth k) (pos_int v)
      | "every" -> Result.map (fun k -> Every k) (pos_int v)
      | "p" -> (
          match float_of_string_opt v with
          | Some p when p >= 0. && p <= 1. -> Ok (Prob p)
          | _ -> Error (Printf.sprintf "expected a probability, got %S" v))
      | _ -> Error (Printf.sprintf "unknown trigger key %S" key))

let parse_clause clause =
  match String.index_opt clause ':' with
  | None -> Error (Printf.sprintf "clause %S is not site:trigger" clause)
  | Some i ->
      let site = String.trim (String.sub clause 0 i) in
      let spec = String.trim (String.sub clause (i + 1) (String.length clause - i - 1)) in
      if site = "" then Error (Printf.sprintf "clause %S names no site" clause)
      else Result.map (fun t -> (site, t)) (parse_trigger spec)

let parse_spec s =
  String.split_on_char ',' s
  |> List.filter (fun c -> String.trim c <> "")
  |> List.fold_left
       (fun acc c ->
         match (acc, parse_clause c) with
         | Error _, _ -> acc
         | Ok l, Ok kv -> Ok (kv :: l)
         | Ok _, Error e -> Error e)
       (Ok [])

let configure ?(seed = 0) spec =
  match parse_spec spec with
  | Error _ as e -> e
  | Ok clauses ->
      Mutex.lock lock;
      Atomic.set armed_flag false;
      reset_all ();
      Mutex.unlock lock;
      (* [register] retakes the lock, so arm outside the critical section *)
      List.iter
        (fun (n, t) -> Atomic.set (register n).trigger t)
        (List.rev clauses);
      Atomic.set seed_ref seed;
      if List.exists (fun (_, t) -> t <> Off) clauses then
        Atomic.set armed_flag true;
      Ok ()

let configure_exn ?seed spec =
  match configure ?seed spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Fault.configure: " ^ e)

let with_faults ?seed spec f =
  configure_exn ?seed spec;
  Fun.protect ~finally:disarm f

let init_from_env () =
  let seed =
    Option.bind (Sys.getenv_opt "BALG_FAULT_SEED") int_of_string_opt
  in
  match Sys.getenv_opt "BALG_FAULT" with
  | None -> ()
  | Some spec when String.trim spec = "" -> ()
  | Some spec -> (
      match configure ?seed spec with
      | Ok () -> ()
      | Error e -> Printf.eprintf "warning: ignoring BALG_FAULT: %s\n%!" e)

let sites () =
  Mutex.lock lock;
  let l = Hashtbl.fold (fun n _ acc -> n :: acc) registry [] in
  Mutex.unlock lock;
  List.sort String.compare l
