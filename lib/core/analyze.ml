(** Static complexity analysis of algebra expressions.

    The paper measures queries along two axes: the {e bag nesting} of the
    types used (the [k] of BALG{^ k}) and the {e power nesting} — the maximal
    number of powerset operations on a path from the root of the expression
    to a leaf (§6).  This module computes both, together with the feature
    flags (powerbag, fixpoints) that change the classification, and places
    the expression in the complexity class given by the paper's theorems:

    - BALG{^1} ⊆ LOGSPACE (Theorem 4.4),
    - BALG{^2} ⊆ PSPACE (Theorem 5.1),
    - BALG{^3}{_i} ⊆ hyper(⌊i/2⌋)-SPACE (Theorem 6.2) and more generally
      BALG{^k}{_((k−1)/(k−2))i} ⊆ hyper(i)-SPACE (Proposition 6.3),
    - BALG{^k}{_i} + Pb ⊆ hyper(i−1)-SPACE (Proposition 6.4),
    - BALG{^k} + IFP is Turing complete for k ≥ 2 (Theorem 6.6). *)

type cclass =
  | Logspace
  | Ptime_bounded_fix
      (** bounded fixpoint over BALG{^1}: inflationary iteration within a
          polynomial-size bound (§6 end; transitive closure lives here) *)
  | Pspace
  | Hyper_space of int  (** contained in hyper(i)-SPACE *)
  | Elementary
  | Turing_complete

let pp_cclass ppf = function
  | Logspace -> Format.pp_print_string ppf "LOGSPACE (Thm 4.4)"
  | Ptime_bounded_fix ->
      Format.pp_print_string ppf "PTIME via bounded fixpoint (§6)"
  | Pspace -> Format.pp_print_string ppf "PSPACE (Thm 5.1)"
  | Hyper_space i -> Format.fprintf ppf "hyper(%d)-SPACE (Thm 6.2/Prop 6.3-6.4)" i
  | Elementary -> Format.pp_print_string ppf "elementary (Thm 6.1/6.5)"
  | Turing_complete ->
      Format.pp_print_string ppf "Turing complete (Thm 6.6, IFP)"

let cclass_to_string c = Format.asprintf "%a" pp_cclass c

(** Maximal number of [P]/[Pb] operators on a root-to-leaf path — the
    paper's power nesting of an expression. *)
let rec power_nesting e =
  let here = match e with Expr.Powerset _ | Expr.Powerbag _ -> 1 | _ -> 0 in
  here
  + List.fold_left (fun acc c -> max acc (power_nesting c)) 0 (Expr.children e)

let rec exists_node p e =
  p e || List.exists (exists_node p) (Expr.children e)

let uses_powerbag e =
  exists_node (function Expr.Powerbag _ -> true | _ -> false) e

let uses_fix e = exists_node (function Expr.Fix _ -> true | _ -> false) e
let uses_bfix e = exists_node (function Expr.BFix _ -> true | _ -> false) e

(** Count occurrences of each operator family (for reports). *)
let op_census e =
  let tbl = Hashtbl.create 16 in
  let bump k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  let rec go e =
    (match e with
    | Expr.Var _ -> bump "var"
    | Expr.Lit _ -> bump "lit"
    | Expr.Tuple _ -> bump "tuple"
    | Expr.Proj _ -> bump "proj"
    | Expr.Sing _ -> bump "sing"
    | Expr.UnionAdd _ -> bump "union_add"
    | Expr.Diff _ -> bump "diff"
    | Expr.UnionMax _ -> bump "union_max"
    | Expr.Inter _ -> bump "inter"
    | Expr.Product _ -> bump "product"
    | Expr.Join _ -> bump "join"
    | Expr.Powerset _ -> bump "powerset"
    | Expr.Powerbag _ -> bump "powerbag"
    | Expr.Destroy _ -> bump "destroy"
    | Expr.Map _ -> bump "map"
    | Expr.Select _ -> bump "select"
    | Expr.Dedup _ -> bump "dedup"
    | Expr.Nest _ -> bump "nest"
    | Expr.Unnest _ -> bump "unnest"
    | Expr.Let _ -> bump "let"
    | Expr.Fix _ -> bump "fix"
    | Expr.BFix _ -> bump "bfix");
    List.iter go (Expr.children e)
  in
  go e;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

type report = {
  bag_nesting : int;  (** max bag nesting over all intermediate types *)
  power_nesting : int;
  powerbag : bool;
  fix : bool;
  bfix : bool;
  cclass : cclass;
  census : (string * int) list;
}

(* Space height for k >= 3 per Thm 6.2 / Prop 6.3: power nesting
   j = ((k-1)/(k-2)) * i fits in hyper(i)-SPACE, i.e. i = j(k-2)/(k-1). *)
let hyper_height ~k ~j = j * (k - 2) / (k - 1)

(* The returned class is an upper bound on the query's data complexity,
   except [Turing_complete] which records that no elementary bound is
   guaranteed (the paper proves completeness for k >= 2; for k <= 1 an
   unbounded IFP can still inflate multiplicities forever, so no bound is
   claimed either). *)
let classify ~bag_nesting ~power_nesting:j ~powerbag ~fix ~bfix =
  if fix then Turing_complete
  else if bag_nesting <= 1 then if bfix then Ptime_bounded_fix else Logspace
  else if powerbag then Hyper_space (max 0 (j - 1))
  else if bag_nesting = 2 then Pspace
  else Hyper_space (hyper_height ~k:bag_nesting ~j)

let analyze env e =
  let bag_nesting = Typecheck.max_nesting env e in
  let j = power_nesting e in
  let powerbag = uses_powerbag e in
  let fix = uses_fix e and bfix = uses_bfix e in
  {
    bag_nesting;
    power_nesting = j;
    powerbag;
    fix;
    bfix;
    cclass = classify ~bag_nesting ~power_nesting:j ~powerbag ~fix ~bfix;
    census = op_census e;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "bag nesting (BALG^k):  k = %d@\n\
     power nesting:         i = %d@\n\
     uses powerbag:         %b@\n\
     uses fixpoint:         ifp=%b bfix=%b@\n\
     complexity class:      %a@\n\
     operator census:       %s"
    r.bag_nesting r.power_nesting r.powerbag r.fix r.bfix pp_cclass r.cclass
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.census))

let report_to_string r = Format.asprintf "%a" pp_report r
