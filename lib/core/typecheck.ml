(** Typing of algebra expressions.

    The paper assumes all operations are typed polymorphically, with input
    restrictions guaranteeing homogeneous output bags (§3); this module makes
    those restrictions explicit.  It also exposes the measurements the
    restricted algebras are defined by: the maximal bag nesting of any
    intermediate type (the [k] of BALG{^ k}). *)

exception Type_error of string

let error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

module Env = Map.Make (String)

type env = Ty.t Env.t

let env_of_list l = List.fold_left (fun m (x, t) -> Env.add x t m) Env.empty l

(* [infer ~record env e] infers the type of [e]; [record] is called on the
   type of every subexpression (used for nesting analysis). *)
let rec infer_rec ~record env e =
  let ty = infer_node ~record env e in
  record ty;
  ty

and infer_node ~record env e =
  let infer env e = infer_rec ~record env e in
  match e with
  | Expr.Var x -> (
      match Env.find_opt x env with
      | Some t -> t
      | None -> error "unbound variable %s" x)
  | Expr.Lit (v, ty) ->
      if Value.has_type ty v then ty
      else error "literal %s does not have declared type %s"
        (Value.to_string v) (Ty.to_string ty)
  | Expr.Tuple es -> Ty.Tuple (List.map (infer env) es)
  | Expr.Proj (i, e) -> (
      match infer env e with
      | Ty.Tuple ts when i >= 1 && i <= List.length ts -> List.nth ts (i - 1)
      | Ty.Tuple ts ->
          error "projection index %d out of range (arity %d)" i (List.length ts)
      | t -> error "projection of a non-tuple of type %s" (Ty.to_string t))
  | Expr.Sing e -> Ty.Bag (infer env e)
  | Expr.UnionAdd (a, b) | Expr.Diff (a, b) | Expr.UnionMax (a, b)
  | Expr.Inter (a, b) ->
      let ta = infer env a and tb = infer env b in
      let bagly = function
        | Ty.Bag _ -> ()
        | t -> error "bag operation applied to non-bag of type %s" (Ty.to_string t)
      in
      bagly ta;
      bagly tb;
      if Ty.equal ta tb then ta
      else error "bag operation on incompatible types %s and %s"
        (Ty.to_string ta) (Ty.to_string tb)
  | Expr.Product (a, b) -> (
      match (infer env a, infer env b) with
      | Ty.Bag (Ty.Tuple ts), Ty.Bag (Ty.Tuple us) -> Ty.Bag (Ty.Tuple (ts @ us))
      | ta, tb ->
          error "product requires bags of tuples, got %s and %s"
            (Ty.to_string ta) (Ty.to_string tb))
  | Expr.Join (i, j, a, b) -> (
      match (infer env a, infer env b) with
      | Ty.Bag (Ty.Tuple ts), Ty.Bag (Ty.Tuple us) ->
          if i < 1 || i > List.length ts then
            error "join: left attribute %d out of range (arity %d)" i
              (List.length ts);
          if j < 1 || j > List.length us then
            error "join: right attribute %d out of range (arity %d)" j
              (List.length us);
          let ti = List.nth ts (i - 1) and tj = List.nth us (j - 1) in
          if not (Ty.equal ti tj) then
            error "join compares %s with %s" (Ty.to_string ti)
              (Ty.to_string tj);
          Ty.Bag (Ty.Tuple (ts @ us))
      | ta, tb ->
          error "join requires bags of tuples, got %s and %s"
            (Ty.to_string ta) (Ty.to_string tb))
  | Expr.Powerset e | Expr.Powerbag e -> (
      match infer env e with
      | Ty.Bag t -> Ty.Bag (Ty.Bag t)
      | t -> error "powerset of a non-bag of type %s" (Ty.to_string t))
  | Expr.Destroy e -> (
      match infer env e with
      | Ty.Bag (Ty.Bag t) -> Ty.Bag t
      | t -> error "bag-destroy of type %s (needs a bag of bags)" (Ty.to_string t))
  | Expr.Map (x, body, e) -> (
      match infer env e with
      | Ty.Bag t -> Ty.Bag (infer (Env.add x t env) body)
      | t -> error "MAP over a non-bag of type %s" (Ty.to_string t))
  | Expr.Select (x, l, r, e) -> (
      match infer env e with
      | Ty.Bag t as tb ->
          let env' = Env.add x t env in
          let tl = infer env' l and tr = infer env' r in
          if Ty.equal tl tr then tb
          else error "selection compares %s with %s" (Ty.to_string tl)
            (Ty.to_string tr)
      | t -> error "selection over a non-bag of type %s" (Ty.to_string t))
  | Expr.Dedup e -> (
      match infer env e with
      | Ty.Bag _ as t -> t
      | t -> error "dedup of a non-bag of type %s" (Ty.to_string t))
  | Expr.Nest (ixs, e) -> (
      match infer env e with
      | Ty.Bag (Ty.Tuple ts) ->
          let arity = List.length ts in
          if ixs = [] then error "nest needs at least one grouping attribute";
          if List.length (List.sort_uniq compare ixs) <> List.length ixs then
            error "nest: duplicate grouping attribute";
          List.iter
            (fun i ->
              if i < 1 || i > arity then
                error "nest attribute %d out of range (arity %d)" i arity)
            ixs;
          let keep = List.map (fun i -> List.nth ts (i - 1)) ixs in
          let rest =
            List.filteri (fun j _ -> not (List.mem (j + 1) ixs)) ts
          in
          Ty.Bag (Ty.Tuple (keep @ [ Ty.Bag (Ty.Tuple rest) ]))
      | t -> error "nest over a non-tuple-bag of type %s" (Ty.to_string t))
  | Expr.Unnest (i, e) -> (
      match infer env e with
      | Ty.Bag (Ty.Tuple ts) when i >= 1 && i <= List.length ts -> (
          match List.nth ts (i - 1) with
          | Ty.Bag (Ty.Tuple us) ->
              let prefix = List.filteri (fun j _ -> j < i - 1) ts in
              let suffix = List.filteri (fun j _ -> j > i - 1) ts in
              Ty.Bag (Ty.Tuple (prefix @ us @ suffix))
          | t ->
              error "unnest attribute %d has type %s (needs a bag of tuples)" i
                (Ty.to_string t))
      | t -> error "unnest over %s (attribute %d)" (Ty.to_string t) i)
  | Expr.Let (x, e, body) -> infer (Env.add x (infer env e) env) body
  | Expr.Fix (x, body, seed) -> (
      match infer env seed with
      | Ty.Bag _ as t ->
          let tb = infer (Env.add x t env) body in
          if Ty.equal t tb then t
          else error "fixpoint body has type %s, seed has type %s"
            (Ty.to_string tb) (Ty.to_string t)
      | t -> error "fixpoint seed must be a bag, got %s" (Ty.to_string t))
  | Expr.BFix (bound, x, body, seed) -> (
      match infer env seed with
      | Ty.Bag _ as t ->
          let tbound = infer env bound in
          if not (Ty.equal tbound t) then
            error "bounded fixpoint bound has type %s, seed has type %s"
              (Ty.to_string tbound) (Ty.to_string t);
          let tb = infer (Env.add x t env) body in
          if Ty.equal t tb then t
          else error "bounded fixpoint body has type %s, seed has type %s"
            (Ty.to_string tb) (Ty.to_string t)
      | t -> error "bounded fixpoint seed must be a bag, got %s" (Ty.to_string t))

let infer env e = infer_rec ~record:(fun _ -> ()) env e

(** Result type together with the types of {e all} subexpressions. *)
let infer_all env e =
  let acc = ref [] in
  let t = infer_rec ~record:(fun ty -> acc := ty :: !acc) env e in
  (t, List.rev !acc)

(** Maximal bag nesting over every intermediate type — the [k] such that the
    expression lives in BALG{^ k} (given the environment's types). *)
let max_nesting env e =
  let _, tys = infer_all env e in
  List.fold_left (fun acc t -> max acc (Ty.bag_nesting t)) 0 tys

(** Enforce the BALG{^ k} restriction: every intermediate type has bag
    nesting at most [k]. *)
let check_nesting k env e =
  let n = max_nesting env e in
  if n > k then
    error "expression uses bag nesting %d, exceeding the BALG^%d restriction" n k

let well_typed env e =
  match infer env e with _ -> true | exception Type_error _ -> false
