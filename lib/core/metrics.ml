(* Counters, gauges and log-bucketed histograms; see metrics.mli. *)

(* Values below 16 get exact buckets; from 16 up, each power-of-two octave
   splits into 8 sub-buckets keyed by the next 3 bits below the msb, for
   ~12.5% relative resolution.  60 octaves cover the whole positive [int]
   range in a fixed table. *)
let nbuckets = 16 + (8 * 60)

let msb v =
  let r = ref 0 and v = ref v in
  while !v > 1 do
    incr r;
    v := !v lsr 1
  done;
  !r

let bucket_of v =
  if v < 16 then max 0 v
  else
    let o = msb v in
    let sub = (v lsr (o - 3)) land 7 in
    16 + (8 * (o - 4)) + sub

(* Upper bound (largest value) of a bucket, as a float: the value a
   percentile query reports. *)
let bucket_upper i =
  if i < 16 then float_of_int i
  else
    let o = 4 + ((i - 16) / 8) and sub = (i - 16) mod 8 in
    Int64.to_float
      (Int64.sub (Int64.shift_left (Int64.of_int (9 + sub)) (o - 3)) 1L)

(* Instrument names live only as registry keys; the records carry the
   help text and the cells. *)
type counter = { c_help : string; c : int Atomic.t }
type gauge = { g_help : string; g : float Atomic.t }

type histogram = {
  h_help : string;
  buckets : int Atomic.t array;  (* length [nbuckets] *)
  count : int Atomic.t;
  sum : int Atomic.t;
}

type instrument = C of counter | G of gauge | H of histogram

type t = {
  lock : Mutex.t;  (* guards [tbl]: registration only, never updates *)
  tbl : (string, instrument) Hashtbl.t;
}

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 16 }
let default = create ()

let find_or_add t name make =
  Mutex.lock t.lock;
  let i =
    match Hashtbl.find_opt t.tbl name with
    | Some i -> i
    | None ->
        let i = make () in
        Hashtbl.add t.tbl name i;
        i
  in
  Mutex.unlock t.lock;
  i

let counter ?(help = "") t name =
  match
    find_or_add t name (fun () ->
        C { c_help = help; c = Atomic.make 0 })
  with
  | C c -> c
  | G _ | H _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c by)
let counter_value c = Atomic.get c.c

let gauge ?(help = "") t name =
  match
    find_or_add t name (fun () ->
        G { g_help = help; g = Atomic.make 0. })
  with
  | G g -> g
  | C _ | H _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")

let set_gauge g v = Atomic.set g.g v
let gauge_value g = Atomic.get g.g

let histogram ?(help = "") t name =
  match
    find_or_add t name (fun () ->
        H
          {
            h_help = help;
            buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
            count = Atomic.make 0;
            sum = Atomic.make 0;
          })
  with
  | H h -> h
  | C _ | G _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")

let observe h v =
  let v = max 0 v in
  ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.count 1);
  ignore (Atomic.fetch_and_add h.sum v)

let hist_count h = Atomic.get h.count
let hist_sum h = Atomic.get h.sum

let percentile h q =
  let total = Atomic.get h.count in
  if total = 0 then 0.
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let target = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let acc = ref 0 and i = ref 0 and ans = ref 0. in
    (try
       while !i < nbuckets do
         acc := !acc + Atomic.get h.buckets.(!i);
         if !acc >= target then begin
           ans := bucket_upper !i;
           raise Exit
         end;
         i := !i + 1
       done
     with Exit -> ());
    !ans
  end

let merge_histogram ~into src =
  Array.iteri
    (fun i b -> ignore (Atomic.fetch_and_add into.buckets.(i) (Atomic.get b)))
    src.buckets;
  ignore (Atomic.fetch_and_add into.count (Atomic.get src.count));
  ignore (Atomic.fetch_and_add into.sum (Atomic.get src.sum))

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition. *)

let instruments t =
  Mutex.lock t.lock;
  let l = Hashtbl.fold (fun n i acc -> (n, i) :: acc) t.tbl [] in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

let pp_float buf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%g" v)

let render_header buf name help kind =
  if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

let to_prometheus t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, i) ->
      match i with
      | C c ->
          render_header buf name c.c_help "counter";
          Buffer.add_string buf (Printf.sprintf "%s %d\n" name (Atomic.get c.c))
      | G g ->
          render_header buf name g.g_help "gauge";
          Buffer.add_string buf (Printf.sprintf "%s " name);
          pp_float buf (Atomic.get g.g);
          Buffer.add_char buf '\n'
      | H h ->
          render_header buf name h.h_help "histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i b ->
              let n = Atomic.get b in
              if n > 0 then begin
                cum := !cum + n;
                Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"" name);
                pp_float buf (bucket_upper i);
                Buffer.add_string buf (Printf.sprintf "\"} %d\n" !cum)
              end)
            h.buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name
               (Atomic.get h.count));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %d\n" name (Atomic.get h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" name (Atomic.get h.count));
          if Atomic.get h.count > 0 then begin
            Buffer.add_string buf (Printf.sprintf "# percentiles %s p50=" name);
            pp_float buf (percentile h 0.50);
            Buffer.add_string buf " p90=";
            pp_float buf (percentile h 0.90);
            Buffer.add_string buf " p99=";
            pp_float buf (percentile h 0.99);
            Buffer.add_char buf '\n'
          end)
    (instruments t);
  Buffer.contents buf

let reset t =
  List.iter
    (fun (_, i) ->
      match i with
      | C c -> Atomic.set c.c 0
      | G g -> Atomic.set g.g 0.
      | H h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.count 0;
          Atomic.set h.sum 0)
    (instruments t)
