(* Injection site (see fault.mli): fires at the kernels' pre-materialisation
   points — the places a real allocation failure would strike — so the
   chaos suite can prove an allocation death inside a kernel surfaces as a
   structured verdict, not a crash. *)
let alloc_site = Fault.register "bag.alloc"

let pairs = Value.as_bag

(* Hash table over values, keyed by the precomputed structural hash. *)
module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Merge two sorted association lists, combining multiplicities with [f]
   (absent elements count zero) and dropping zero results.  Both inputs are
   canonical, so the output is too.  Tail-recursive: bags with hundreds of
   thousands of distinct elements come out of the Prop 3.2 workloads. *)
let merge f a b =
  let rec go acc xs ys =
    match (xs, ys) with
    | [], [] -> List.rev acc
    | (v, c) :: xs', [] -> go (push v (f c Bignat.zero) acc) xs' []
    | [], (w, d) :: ys' -> go (push w (f Bignat.zero d) acc) [] ys'
    | (v, c) :: xs', (w, d) :: ys' ->
        let cv = Value.compare v w in
        if cv < 0 then go (push v (f c Bignat.zero) acc) xs' ys
        else if cv > 0 then go (push w (f Bignat.zero d) acc) xs ys'
        else go (push v (f c d) acc) xs' ys'
  and push v c acc = if Bignat.is_zero c then acc else (v, c) :: acc in
  Value.of_sorted_assoc (go [] (pairs a) (pairs b))

let union_add a b = merge Bignat.add a b
let diff a b = merge Bignat.monus a b
let union_max a b = merge Bignat.max a b
let inter a b = merge Bignat.min a b

(* One linear co-walk of the two sorted supports instead of a count_in probe
   per element. *)
let subbag a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _ :: _, [] -> false
    | (v, c) :: xs', (w, d) :: ys' ->
        let cv = Value.compare v w in
        if cv < 0 then false
        else if cv > 0 then go xs ys'
        else Bignat.compare c d <= 0 && go xs' ys'
  in
  go (pairs a) (pairs b)

(* Run [tasks] on the pool (when one is attached and the work is large
   enough) and re-raise the first captured exception; kernels are pure, so
   any exception is equivalent to the sequential one. *)
let pool_run pool tasks =
  List.map
    (function Ok v -> v | Error e -> raise e)
    (Pool.run pool tasks)

(* Cartesian product.  When every element of [a] is a tuple of one fixed
   arity, nested-loop order over the two sorted supports already yields the
   concatenated tuples in canonical order: distinct [(v, w)] pairs
   concatenate to distinct tuples, and because all prefixes have the same
   length the first component dominates the comparison.  The result then
   goes through the trusted constructor — no re-sort, no coalescing.

   With a pool attached and enough rows, the outer support is chunked
   across domains.  Chunks cover contiguous, strictly increasing ranges of
   the sorted outer support, so in the uniform-arity case the per-chunk row
   lists concatenate back into one canonical list; otherwise the per-chunk
   bags recombine with the sorted [merge] (additive union), which is
   exactly the coalescing [bag_of_assoc] would have done. *)
let product ?pool a b =
  Fault.inject alloc_site;
  let pa = pairs a in
  let bs = List.map (fun (w, d) -> (Value.as_tuple w, d)) (pairs b) in
  (* rows for one slice of the outer support, in reverse canonical order *)
  let rows_of_slice slice =
    List.fold_left
      (fun acc (v, c) ->
        let vt = Value.as_tuple v in
        List.fold_left
          (fun acc (wt, d) -> (Value.tuple (vt @ wt), Bignat.mul c d) :: acc)
          acc bs)
      [] slice
  in
  let uniform_arity =
    match pa with
    | [] -> true
    | (v0, _) :: rest ->
        let k = List.length (Value.as_tuple v0) in
        List.for_all (fun (v, _) -> List.length (Value.as_tuple v) = k) rest
  in
  let la = List.length pa and lb = List.length bs in
  match pool with
  | Some p
    when Pool.jobs p > 1
         && la >= 2
         && Value.sat_mul la lb >= Pool.chunk_min p ->
      let slices = Pool.chunks (4 * Pool.jobs p) pa in
      if uniform_arity then
        let parts =
          pool_run p
            (List.map (fun s () -> List.rev (rows_of_slice s)) slices)
        in
        Value.of_sorted_assoc (List.concat parts)
      else
        let parts =
          pool_run p
            (List.map (fun s () -> Value.bag_of_assoc (rows_of_slice s)) slices)
        in
        List.fold_left union_add Value.empty_bag parts
  | _ ->
      let rows = rows_of_slice pa in
      if uniform_arity then Value.of_sorted_assoc (List.rev rows)
      else Value.bag_of_assoc rows

let scale k b =
  if Bignat.is_zero k then Value.empty_bag
  else
    Value.of_sorted_assoc
      (List.map (fun (v, c) -> (v, Bignat.mul k c)) (pairs b))

let destroy b =
  List.fold_left
    (fun acc (inner, c) -> union_add acc (scale c inner))
    Value.empty_bag (pairs b)

let dedup b =
  Value.of_sorted_assoc (List.map (fun (v, _) -> (v, Bignat.one)) (pairs b))

let map f b =
  Value.bag_of_assoc (List.map (fun (v, c) -> (f v, c)) (pairs b))

let select p b =
  Value.of_sorted_assoc (List.filter (fun (v, _) -> p v) (pairs b))

(* Generalized projection — MAP λx.<α_{i1}(x), ..., α_{ik}(x)> as a direct
   kernel; the evaluator compiles that Map shape straight to this.  With a
   pool, support chunks project (and locally coalesce) in parallel and the
   per-chunk bags recombine additively with the sorted [merge]. *)
let proj ?pool ixs b =
  let ixs = Array.of_list ixs in
  let project (v, c) =
    let vs = Array.of_list (Value.as_tuple v) in
    let n = Array.length vs in
    ( Value.tuple
        (Array.to_list
           (Array.map
              (fun i ->
                if i < 1 || i > n then
                  invalid_arg "Bag.proj: attribute out of range"
                else vs.(i - 1))
              ixs)),
      c )
  in
  let prs = pairs b in
  match pool with
  | Some p when Pool.jobs p > 1 && List.length prs >= Pool.chunk_min p ->
      let parts =
        pool_run p
          (List.map
             (fun s () -> Value.bag_of_assoc (List.map project s))
             (Pool.chunks (4 * Pool.jobs p) prs))
      in
      List.fold_left union_add Value.empty_bag parts
  | _ -> Value.bag_of_assoc (List.map project prs)

(* σ_{i=j} — positional-equality selection as a direct kernel; filtering a
   canonical bag preserves canonicity, and filtered contiguous chunks of
   the sorted support concatenate back into a canonical list. *)
let select_eq ?pool i j b =
  let keep (v, _) =
    let vs = Value.as_tuple v in
    match (List.nth_opt vs (i - 1), List.nth_opt vs (j - 1)) with
    | Some x, Some y -> Value.equal x y
    | _ -> invalid_arg "Bag.select_eq: attribute out of range"
  in
  let prs = pairs b in
  match pool with
  | Some p when Pool.jobs p > 1 && List.length prs >= Pool.chunk_min p ->
      let parts =
        pool_run p
          (List.map
             (fun s () -> List.filter keep s)
             (Pool.chunks (4 * Pool.jobs p) prs))
      in
      Value.of_sorted_assoc (List.concat parts)
  | _ -> Value.of_sorted_assoc (List.filter keep prs)

(* Keyed equijoin: [join_eq i j a b] is σ_{i = ka+j}(a × b) — the fused
   form the optimizer emits for Select_eq-over-Product — computed as a
   hash join instead of materialising the product.  [b]'s support is
   bucketed by its [j]-th component (structural hash, Value.equal probes),
   then [a]'s support streams through the table; matching pairs
   concatenate with multiplied counts, exactly the rows the unfused plan
   keeps, and [bag_of_assoc] restores canonical order — so the result is
   bit-identical to [select_eq i (ka + j) (product a b)].  With a pool,
   the probe side chunks across domains against the shared (frozen,
   read-only after build) table. *)
let join_eq ?pool i j a b =
  Fault.inject alloc_site;
  let table : (Value.t list * Bignat.t) list ref VH.t = VH.create 64 in
  List.iter
    (fun (w, d) ->
      let wt = Value.as_tuple w in
      match List.nth_opt wt (j - 1) with
      | None -> invalid_arg "Bag.join_eq: right attribute out of range"
      | Some key -> (
          match VH.find_opt table key with
          | Some members -> members := (wt, d) :: !members
          | None -> VH.add table key (ref [ (wt, d) ]) (* domain-local: fresh table per call, read-only after build *)))
    (pairs b);
  let rows_of_slice slice =
    List.fold_left
      (fun acc (v, c) ->
        let vt = Value.as_tuple v in
        match List.nth_opt vt (i - 1) with
        | None -> invalid_arg "Bag.join_eq: left attribute out of range"
        | Some key -> (
            match VH.find_opt table key with
            | None -> acc
            | Some members ->
                List.fold_left
                  (fun acc (wt, d) ->
                    (Value.tuple (vt @ wt), Bignat.mul c d) :: acc)
                  acc !members))
      [] slice
  in
  let pa = pairs a in
  match pool with
  | Some p when Pool.jobs p > 1 && List.length pa >= Pool.chunk_min p ->
      let parts =
        pool_run p
          (List.map
             (fun s () -> Value.bag_of_assoc (rows_of_slice s))
             (Pool.chunks (4 * Pool.jobs p) pa))
      in
      List.fold_left union_add Value.empty_bag parts
  | _ -> Value.bag_of_assoc (rows_of_slice pa)

(* Nest: group by the listed attributes; the remaining attributes keep
   their multiplicities inside the per-group bag, each group occurs once.
   Groups are keyed by the key-tuple's structural hash — values that are
   [Value.equal] land in the same group no matter how they were built — and
   each tuple is split through an array, not repeated [List.nth]. *)
let nest ixs b =
  Fault.inject alloc_site;
  let ixs_arr = Array.of_list ixs in
  let split v =
    let vs = Array.of_list (Value.as_tuple v) in
    let n = Array.length vs in
    let kept = Array.make n false in
    Array.iter
      (fun i ->
        if i < 1 || i > n then invalid_arg "Bag.nest: attribute out of range"
        else kept.(i - 1) <- true)
      ixs_arr;
    let keep = Array.to_list (Array.map (fun i -> vs.(i - 1)) ixs_arr) in
    let rest = ref [] in
    for j = n - 1 downto 0 do
      if not kept.(j) then rest := vs.(j) :: !rest
    done;
    (keep, Value.tuple !rest)
  in
  let groups : (Value.t * Bignat.t) list ref VH.t = VH.create 16 in
  let order = ref [] in
  List.iter
    (fun (v, c) ->
      let keep, rest = split v in
      let key = Value.tuple keep in
      match VH.find_opt groups key with
      | None ->
          order := key :: !order;
          VH.add groups key (ref [ (rest, c) ]) (* domain-local: fresh table per call *)
      | Some members -> members := (rest, c) :: !members)
    (pairs b);
  Value.bag_of_assoc
    (List.rev_map
       (fun key ->
         let members = !(VH.find groups key) in
         ( Value.tuple (Value.as_tuple key @ [ Value.bag_of_assoc members ]),
           Bignat.one ))
       !order)

(* Unnest: expand the bag-valued attribute [i] in place, multiplying
   multiplicities. *)
let unnest i b =
  Fault.inject alloc_site;
  let expanded =
    List.fold_left
      (fun acc (v, c) ->
        let vs = Array.of_list (Value.as_tuple v) in
        let n = Array.length vs in
        if i < 1 || i > n then invalid_arg "Bag.unnest: attribute out of range";
        let prefix = Array.to_list (Array.sub vs 0 (i - 1)) in
        let suffix = Array.to_list (Array.sub vs i (n - i)) in
        List.fold_left
          (fun acc (member, d) ->
            ( Value.tuple (prefix @ Value.as_tuple member @ suffix),
              Bignat.mul c d )
            :: acc)
          acc
          (pairs vs.(i - 1)))
      [] (pairs b)
  in
  Value.bag_of_assoc expanded

let max_count b =
  List.fold_left (fun acc (_, c) -> Bignat.max acc c) Bignat.zero (pairs b)

(* Expected powerset/powerbag output support: for every distinct element
   with multiplicity m there are m+1 choices, so the total number of
   subbags is prod (m_i + 1).  O(support), allocation-free, and
   {e saturating} at [max_int]: a wrapping [acc * (m + 1)] can land back
   inside a caller's bound (e.g. 16 * 2^60 ≡ 0 mod 2^64) and silence the
   guard right before the enumeration OOMs.  A multiplicity beyond [int]
   range also saturates.  This is the {e only} size guard for the power
   operators — callers (the evaluator's budget pre-charge, [Explain]'s
   config cap) decide the bound and own the structured verdict. *)
let expected_subbags b =
  List.fold_left
    (fun acc (_, c) ->
      if acc = max_int then max_int
      else
        match Bignat.to_int_opt c with
        | None -> max_int
        | Some m -> Value.sat_mul acc (Value.sat_add m 1))
    1 (pairs b)

(* All ways to keep 0..m_i copies of each element.  [weight] computes the
   multiplicity contributed by keeping k of m copies: 1 for the powerset,
   C(m, k) for the powerbag.  Because the support is processed in sorted
   order and smaller elements are consed onto tails drawn from the rest of
   the support, every generated content list is itself canonical — the
   trusted constructor applies — and the k = 0 choice reuses the tail
   as-is, so common suffixes are physically shared across subbags.  Weights
   and small counts are computed once per distinct element, not once per
   subbag. *)
let enumerate_subbags weight b =
  Fault.inject alloc_site;
  let rec go = function
    | [] -> [ ([], Bignat.one) ]
    | (v, c) :: rest ->
        let tails = go rest in
        let m =
          match Bignat.to_int_opt c with
          | Some m -> m
          | None ->
              invalid_arg
                "Bag.powerset/powerbag: multiplicity exceeds int range \
                 (guard with expected_subbags)"
        in
        let wts = Array.init (m + 1) (fun k -> weight m k) in
        let counts = Array.init m (fun k -> Bignat.of_int (k + 1)) in
        List.fold_left
          (fun acc (tail, w) ->
            let acc = ref ((tail, Bignat.mul w wts.(0)) :: acc) in
            for k = 1 to m do
              acc := ((v, counts.(k - 1)) :: tail, Bignat.mul w wts.(k)) :: !acc
            done;
            !acc)
          [] tails
  in
  Value.bag_of_assoc
    (List.rev_map
       (fun (content, w) -> (Value.of_sorted_assoc content, w))
       (go (pairs b)))

let powerset b = enumerate_subbags (fun _ _ -> Bignat.one) b
let powerbag b = enumerate_subbags (fun m k -> Bignat.binomial m k) b
