(** Bottom-up static properties of algebra expressions — the analysis pass
    behind the cost-based optimiser ({!Opt}).

    [infer] walks an expression once and produces, per root, a record of
    facts the planner consumes: the tuple arity when the result is a flat
    bag of tuples, a saturating support estimate (exact where provable),
    a distinctness fact, and — where the expression lives in the
    BALG{^1}(+ε) fragment over at most one bag input — the total
    cardinality as an occurrence polynomial via {!Polyab}
    (Proposition 4.1), evaluated at the input's actual cardinality to
    tighten the heuristic estimate. *)

type t = {
  arity : int option;  (** tuple width when the node is a flat bag of tuples *)
  rows : int;  (** saturating estimate of the output support *)
  exact : bool;  (** [rows] is exact, not a heuristic *)
  distinct : bool;  (** every multiplicity is provably one *)
  card : Poly.t option;
      (** total-cardinality polynomial in the input cardinality, present
          when the BALG{^1}+ε fragment applies *)
}

val default_rows : int
(** Support assumed for relations with no supplied binding. *)

val infer :
  ?vals:(string * Value.t) list ->
  ?calib:(string -> float option) ->
  Typecheck.env ->
  Expr.t ->
  t
(** Infer properties bottom-up.  [vals] supplies actual relation contents
    (e.g. the loaded database) for exact leaf supports and distinctness;
    unbound relations fall back to {!default_rows}.  [calib] maps an
    operator name ({!Expr.op_name}) to a measured correction factor that
    scales the node's heuristic row estimate (exact and saturated
    estimates are never touched); it defaults to the ambient
    {!Calib.current} table, so a [BALG_CALIB] file calibrates every
    inference in the process.  Pass [~calib:(fun _ -> None)] for raw
    uncalibrated estimates (what [explain --analyze] measures against).
    Never raises: nodes that defeat the analysis degrade to conservative
    estimates. *)

val of_value : Value.t -> t
(** Exact properties of a concrete value. *)

val to_string : t -> string
(** One-line rendering for [balgi explain] and debugging. *)
