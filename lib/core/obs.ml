(* The trace-event core: per-domain ring-buffer sinks and the
   Chrome/Perfetto and JSONL exporters.  See obs.mli for the model. *)

type ph = B | E | I
type arg = Int of int | Str of string | Float of float

type event = {
  ts : float;
  pid : int;
  tid : int;
  ph : ph;
  cat : string;
  name : string;
  args : (string * arg) list;
}

let dummy_event =
  { ts = 0.; pid = 0; tid = 0; ph = I; cat = ""; name = ""; args = [] }

(* A ring belongs to one domain, but several systhreads of that domain
   (balgd session threads, the replication feed) may emit into it
   concurrently, and systhreads can be preempted between the clamp and
   the store.  A per-ring mutex keeps the multi-word append atomic; for
   the single-threaded worker domains it is always uncontended (one
   CAS), which is noise next to the gettimeofday call.  Rings are tagged
   with the capture epoch — [enable]/[reset] bump it, which retires
   every existing ring without touching other domains. *)
type ring = {
  r_tid : int;
  r_epoch : int;
  r_mu : Mutex.t;
  buf : event array;  (* capacity, a power of two *)
  mask : int;
  mutable head : int;  (* total events ever written to this ring *)
  mutable last_ts : float;  (* per-ring monotonic clamp *)
}

let enabled = Atomic.make false
let epoch = Atomic.make 0
let ring_capacity = Atomic.make (1 lsl 16)
let t0 = Atomic.make 0.
let current_pid = Atomic.make 0
let pid_pinned = Atomic.make false

(* Synthetic lanes for threads that share domain 0's ring but deserve
   their own Perfetto track: balgd gives each session its own lane so
   concurrent requests don't visually nest, and the replication feed
   gets a fixed lane.  Chosen far above any plausible domain id. *)
let lane_repl = 9999
let session_lane_base = 10000
let lane_session sid = session_lane_base + sid

(* The ring registry: locked only when a domain creates its ring (rare);
   emission never touches it.  Rings outlive their domains so a joined
   worker's events remain exportable. *)
let rings_lock = Mutex.create ()
let rings : ring list ref = ref []

let ring_slot : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let on () = Atomic.get enabled

let round_pow2 n =
  let rec go c = if c >= n then c else go (c * 2) in
  go 1

let new_ring () =
  let cap = Atomic.get ring_capacity in
  let r =
    {
      r_tid = (Domain.self () :> int);
      r_epoch = Atomic.get epoch;
      r_mu = Mutex.create ();
      buf = Array.make cap dummy_event;
      mask = cap - 1;
      head = 0;
      last_ts = 0.;
    }
  in
  Mutex.lock rings_lock;
  rings := r :: !rings;
  Mutex.unlock rings_lock;
  r

let my_ring () =
  let slot = Domain.DLS.get ring_slot in
  match !slot with
  | Some r when r.r_epoch = Atomic.get epoch -> r
  | _ ->
      let r = new_ring () in
      slot := Some r;
      r

let now_us () = (Unix.gettimeofday () -. Atomic.get t0) *. 1e6

let emit ?pid ?tid ?ts_us ?(args = []) ~cat ~name ph =
  if Atomic.get enabled then begin
    let r = my_ring () in
    Mutex.lock r.r_mu;
    let now = match ts_us with Some t -> t | None -> now_us () in
    let ts = if now >= r.last_ts then now else r.last_ts in
    r.last_ts <- ts;
    let pid = match pid with Some p -> p | None -> Atomic.get current_pid in
    let tid = match tid with Some t -> t | None -> r.r_tid in
    r.buf.(r.head land r.mask) <- { ts; pid; tid; ph; cat; name; args };
    r.head <- r.head + 1;
    Mutex.unlock r.r_mu
  end

let reset () = ignore (Atomic.fetch_and_add epoch 1)

let enable ?(capacity = 1 lsl 16) () =
  Atomic.set t0 (Unix.gettimeofday ());
  Atomic.set ring_capacity (round_pow2 (max 16 capacity));
  reset ();
  Atomic.set pid_pinned false;
  Atomic.set enabled true

let disable () = Atomic.set enabled false

let set_trace_id id =
  if not (Atomic.get pid_pinned) then Atomic.set current_pid id

let pin_trace_id id =
  Atomic.set current_pid id;
  Atomic.set pid_pinned true

let trace_id () = Atomic.get current_pid

let live_rings () =
  Mutex.lock rings_lock;
  let l = !rings in
  Mutex.unlock rings_lock;
  let e = Atomic.get epoch in
  List.filter (fun r -> r.r_epoch = e) l
  |> List.sort (fun a b -> compare a.r_tid b.r_tid)

let ring_events r =
  let cap = Array.length r.buf in
  let n = min r.head cap in
  let first = r.head - n in
  List.init n (fun i -> r.buf.((first + i) land r.mask))

let events () = List.concat_map ring_events (live_rings ())

let dropped () =
  List.fold_left
    (fun acc r -> acc + max 0 (r.head - Array.length r.buf))
    0 (live_rings ())

(* ------------------------------------------------------------------ *)
(* Exporters. *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_arg buf (k, v) =
  Buffer.add_string buf (Printf.sprintf "\"%s\":" (json_escape k));
  match v with
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.3f" f)
  | Str s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape s))

let render_args buf args =
  Buffer.add_char buf '{';
  List.iteri
    (fun i kv ->
      if i > 0 then Buffer.add_char buf ',';
      render_arg buf kv)
    args;
  Buffer.add_char buf '}'

let ph_to_string = function B -> "B" | E -> "E" | I -> "I"

module Trace = struct
  (* Chrome trace-event format, one event object per line so line-oriented
     tools (scripts/check_trace.sh) can validate the stream without a JSON
     parser. *)

  let render_event buf ev =
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":"
         (json_escape ev.name) (json_escape ev.cat) (ph_to_string ev.ph) ev.ts
         ev.pid ev.tid);
    render_args buf ev.args;
    Buffer.add_char buf '}'

  let to_buffer buf =
    let evs = events () in
    let lanes =
      List.sort_uniq compare (List.map (fun ev -> (ev.pid, ev.tid)) evs)
    in
    Buffer.add_string buf "{\"traceEvents\":[\n";
    let first = ref true in
    let line render x =
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      render x
    in
    let lane_label tid =
      if tid >= session_lane_base then
        Printf.sprintf "session %d" (tid - session_lane_base)
      else if tid = lane_repl then "repl"
      else Printf.sprintf "domain %d" tid
    in
    List.iter
      (line (fun (pid, tid) ->
           Buffer.add_string buf
             (Printf.sprintf
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
                pid tid (json_escape (lane_label tid)))))
      lanes;
    List.iter (line (fun ev -> render_event buf ev)) evs;
    Buffer.add_string buf
      (Printf.sprintf
         "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{\"droppedEvents\":%d}}\n"
         (dropped ()))

  let to_chrome_json () =
    let buf = Buffer.create 4096 in
    to_buffer buf;
    Buffer.contents buf

  let to_chrome oc =
    let buf = Buffer.create 4096 in
    to_buffer buf;
    Buffer.output_buffer oc buf
end

module Log = struct
  (* Structured JSONL: one flat object per event, args inlined. *)

  let render_line buf ev =
    Buffer.add_string buf
      (Printf.sprintf
         "{\"ts_us\":%.3f,\"pid\":%d,\"tid\":%d,\"ph\":\"%s\",\"cat\":\"%s\",\"name\":\"%s\""
         ev.ts ev.pid ev.tid (ph_to_string ev.ph) (json_escape ev.cat)
         (json_escape ev.name));
    List.iter
      (fun kv ->
        Buffer.add_char buf ',';
        render_arg buf kv)
      ev.args;
    Buffer.add_string buf "}\n"

  let to_buffer buf = List.iter (render_line buf) (events ())

  let to_jsonl_string () =
    let buf = Buffer.create 4096 in
    to_buffer buf;
    Buffer.contents buf

  let to_jsonl oc =
    let buf = Buffer.create 4096 in
    to_buffer buf;
    Buffer.output_buffer oc buf
end

module Metrics = Metrics
