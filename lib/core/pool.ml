(* Work-sharing domain pool; see pool.mli for the model. *)

(* Injection sites (see fault.mli): [pool.task] makes a task fail as if
   its worker died mid-execution — the result-capturing wrapper turns it
   into a per-thunk [Error], so the batch still completes and the caller
   decides; [pool.spawn] makes [Domain.spawn] fail at pool creation — the
   pool degrades to fewer workers (the helping caller guarantees progress
   even with zero). *)
let task_site = Fault.register "pool.task"
let spawn_site = Fault.register "pool.spawn"

let m_batches = Metrics.counter Metrics.default "balg_pool_batches_total"
    ~help:"Parallel task batches submitted to the domain pool"

let m_task_failures = Metrics.counter Metrics.default
    "balg_pool_task_failures_total"
    ~help:"Pool tasks that completed with an Error (exception captured)"

let m_live = Metrics.gauge Metrics.default "balg_pool_live_domains"
    ~help:"Worker domains alive in the most recently created pool"

type t = {
  jobs : int;
  chunk_min : int;
  fork_min : int;
  queue : (unit -> unit) Queue.t;  (* guarded by [lock] *)
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs
let chunk_min t = t.chunk_min
let fork_min t = t.fork_min

(* Workers block on [nonempty] until a task arrives or the pool closes.
   Tasks are result-capturing wrappers built by [run]; they never raise. *)
let worker t () =
  let rec next () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.closing then None
    else begin
      Condition.wait t.nonempty t.lock;
      next ()
    end
  in
  let rec loop () =
    Mutex.lock t.lock;
    let task = next () in
    Mutex.unlock t.lock;
    match task with
    | None -> ()
    | Some task ->
        task ();
        loop ()
  in
  loop ()

let create ?(chunk_min = 512) ?(fork_min = 24) ~jobs () =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      chunk_min;
      fork_min;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      closing = false;
      workers = [];
    }
  in
  (* A failed spawn — injected, or a real out-of-resources condition —
     degrades the pool instead of killing it: with fewer (even zero)
     workers every batch still completes because the caller helps. *)
  t.workers <-
    List.filter_map
      (fun _ ->
        match
          Fault.inject spawn_site;
          Domain.spawn (worker t)
        with
        | d -> Some d
        | exception _ -> None)
      (List.init (jobs - 1) Fun.id);
  Metrics.set_gauge m_live (float_of_int (List.length t.workers));
  if Obs.on () then Obs.emit Obs.I ~cat:"pool" ~name:"create" ~args:[ ("jobs", Obs.Int jobs); ("workers", Obs.Int (List.length t.workers)) ];
  t

let live t = List.length t.workers

let shutdown t =
  Mutex.lock t.lock;
  t.closing <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let protect f =
  try
    Fault.inject task_site;
    Ok (f ())
  with e ->
    Metrics.incr m_task_failures;
    if Obs.on () then Obs.emit Obs.I ~cat:"pool" ~name:"task-fail" ~args:[ ("exn", Obs.Str (Printexc.to_string e)) ];
    Error e

let run t thunks =
  match thunks with
  | [] -> []
  | [ f ] -> [ protect f ]
  | _ when t.jobs <= 1 -> List.map protect thunks
  | _ ->
      Metrics.incr m_batches;
      let thunks = Array.of_list thunks in
      let n = Array.length thunks in
      if Obs.on () then Obs.emit Obs.B ~cat:"pool" ~name:"batch" ~args:[ ("tasks", Obs.Int n) ];
      let results = Array.make n None in
      let remaining = Atomic.make n in
      (* Per-batch completion signal; [remaining] is the ground truth and is
         always rechecked under [fin_lock], so a broadcast between the
         queue-empty check and the wait cannot be missed. *)
      let fin_lock = Mutex.create () in
      let fin = Condition.create () in
      let run_one i =
        results.(i) <- Some (protect thunks.(i));
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock fin_lock;
          Condition.broadcast fin;
          Mutex.unlock fin_lock
        end
      in
      Mutex.lock t.lock;
      for i = 0 to n - 1 do
        Queue.push (fun () -> run_one i) t.queue
      done;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.lock;
      (* The caller helps: drain whatever is queued (our tasks or, from a
         nested region, someone else's — both make global progress), then
         wait for the stragglers running on other domains. *)
      let rec help () =
        if Atomic.get remaining <> 0 then begin
          Mutex.lock t.lock;
          let task =
            if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)
          in
          Mutex.unlock t.lock;
          match task with
          | Some task ->
              task ();
              help ()
          | None ->
              Mutex.lock fin_lock;
              while Atomic.get remaining <> 0 do
                Condition.wait fin fin_lock
              done;
              Mutex.unlock fin_lock
        end
      in
      help ();
      if Obs.on () then Obs.emit Obs.E ~cat:"pool" ~name:"batch" ~args:[];
      Array.to_list
        (Array.map
           (function Some r -> r | None -> assert false (* all completed *))
           results)

let with_pool ?chunk_min ?fork_min ~jobs f =
  if jobs <= 1 then f None
  else begin
    let t = create ?chunk_min ?fork_min ~jobs () in
    match f (Some t) with
    | v ->
        shutdown t;
        v
    | exception e ->
        shutdown t;
        raise e
  end

(* Contiguous near-equal chunks, order preserved: chunk i gets one extra
   element while i < n mod k.  Tail-recursive over the input. *)
let chunks k l =
  let n = List.length l in
  if n = 0 then []
  else begin
    let k = max 1 (min k n) in
    let base = n / k and extra = n mod k in
    let rec take acc m l =
      if m = 0 then (List.rev acc, l)
      else
        match l with
        | [] -> (List.rev acc, [])
        | x :: tl -> take (x :: acc) (m - 1) tl
    in
    let rec go i l acc =
      if i = k then List.rev acc
      else
        let m = base + if i < extra then 1 else 0 in
        let chunk, rest = take [] m l in
        go (i + 1) rest (chunk :: acc)
    in
    go 0 l []
  end
