(** Complex-object values: atoms, tuples, and bags with {!Bignat.t}
    multiplicities.

    Bags are kept in a canonical form — elements sorted by {!compare},
    strictly positive coalesced counts — so that structural operations on the
    representation implement bag equality and the subbag order directly.  An
    element [o] {e n-belongs} to a bag when its stored count is [n] (§2).

    Every node is tagged with a precomputed structural hash and a saturating
    encoded-size, so equality can refute in O(1) and the bag kernels can
    bucket by hash instead of deep-comparing.  The tags are maintained
    exclusively by the smart constructors; [t] is abstract in the interface
    so the invariants cannot be broken from outside. *)

type t = {
  node : view;
  hash : int;  (** structural: equal values have equal hashes *)
  size : int;  (** {!encoded_size} saturated to [int] ([max_int] = too big) *)
}

and view =
  | Atom of string
  | Tuple of t list
  | Bag of (t * Bignat.t) list
      (** invariant: strictly increasing in {!compare}, counts > 0 *)

let view v = v.node
let hash v = v.hash
let size_tag v = v.size

(* Saturating machine arithmetic for the size tags.  Both operands are
   non-negative, so overflow shows up as a sign flip or a divide check. *)
let sat_add a b =
  let s = a + b in
  if s < 0 then max_int else s

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a > max_int / b then max_int
  else a * b

let count_tag c = match Bignat.to_int_opt c with Some n -> n | None -> max_int

(* FNV-1a-style mixing; the per-kind seeds keep [Atom x], [Tuple [x]] and
   [Bag [x, 1]] apart. *)
let mix h k = (h * 0x01000193) lxor (k land max_int)
let seed_atom = 0x2f0b13
let seed_tuple = 0x3a9d25
let seed_bag = 0x511e47

let rec compare a b =
  if a == b then 0
  else
    match (a.node, b.node) with
    | Atom x, Atom y -> String.compare x y
    | Atom _, (Tuple _ | Bag _) -> -1
    | Tuple _, Atom _ -> 1
    | Tuple xs, Tuple ys -> List.compare compare xs ys
    | Tuple _, Bag _ -> -1
    | Bag xs, Bag ys ->
        List.compare
          (fun (v, c) (w, d) ->
            let cv = compare v w in
            if cv <> 0 then cv else Bignat.compare c d)
          xs ys
    | Bag _, (Atom _ | Tuple _) -> 1

let equal a b =
  a == b || (a.hash = b.hash && a.size = b.size && compare a b = 0)

(** {1 Constructors} *)

let atom s = { node = Atom s; hash = mix seed_atom (Hashtbl.hash s); size = 1 }

let tuple vs =
  let rec go h sz = function
    | [] -> { node = Tuple vs; hash = h; size = sz }
    | v :: rest -> go (mix h v.hash) (sat_add sz v.size) rest
  in
  go seed_tuple 1 vs

(* Trusted: [pairs] must already be canonical; only the tags are computed. *)
let of_sorted_assoc pairs =
  let rec go h sz = function
    | [] -> { node = Bag pairs; hash = h; size = sz }
    | (v, c) :: rest ->
        go
          (mix (mix h v.hash) (Bignat.hash c))
          (sat_add sz (sat_mul (count_tag c) v.size))
          rest
  in
  go seed_bag 1 pairs

let empty_bag = of_sorted_assoc []

(* Hash-keyed table over values: O(1) expected lookup, with the stored hash
   so membership never walks distinct structures. *)
module VH = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash v = v.hash
end)

(* Canonicalisation strategies.  For shallow elements an ordinary sort is
   fastest: adjacent-duplicate detection goes through {!equal}, whose hash
   tags refute distinct neighbours in O(1).  For deep elements (nested
   bags), duplicates are coalesced through a hash table first, so equal
   elements are never deep-compared against each other and the sort only
   ever sees the distinct support.  Every loop is tail-recursive —
   multi-hundred-thousand-element inputs come out of the Prop 3.2
   experiments. *)

let sort_coalesce pairs =
  let sorted = List.sort (fun (v, _) (w, _) -> compare v w) pairs in
  let rec go acc = function
    | [] -> List.rev acc
    | [ p ] -> List.rev (p :: acc)
    | (v, c) :: ((w, d) :: rest as tl) ->
        if equal v w then go acc ((v, Bignat.add c d) :: rest)
        else go ((v, c) :: acc) tl
  in
  of_sorted_assoc (go [] sorted)

let hash_coalesce pairs =
  let tbl = VH.create 64 in
  let distinct = ref [] in
  List.iter
    (fun (v, c) ->
      match VH.find_opt tbl v with
      | None ->
          let r = ref c in
          VH.add tbl v r;
          distinct := (v, r) :: !distinct
      | Some r -> r := Bignat.add !r c)
    pairs;
  let sorted = List.sort (fun (v, _) (w, _) -> compare v w) !distinct in
  of_sorted_assoc (List.map (fun (v, r) -> (v, !r)) sorted)

(* Canonicalise an arbitrary association list into a bag: drop zeros,
   coalesce counts additively, sort. *)
let bag_of_assoc (pairs : (t * Bignat.t) list) : t =
  let pairs = List.filter (fun (_, c) -> not (Bignat.is_zero c)) pairs in
  match pairs with
  | [] -> empty_bag
  | [ p ] -> of_sorted_assoc [ p ]
  | _ ->
      let deep =
        let rec probe budget = function
          | (v, _) :: rest when budget > 0 ->
              v.size >= 16 || probe (budget - 1) rest
          | _ -> false
        in
        probe 4 pairs
      in
      if deep then hash_coalesce pairs else sort_coalesce pairs

let bag_of_list vs = bag_of_assoc (List.map (fun v -> (v, Bignat.one)) vs)

(** The bag [B{^t}{_i}]: exactly [i] occurrences of [t] and nothing else. *)
let replicate count v =
  if Bignat.is_zero count then empty_bag else of_sorted_assoc [ (v, count) ]

(** Integer-as-bag encoding of §3: [n] occurrences of the unary tuple
    [<a>]. *)
let nat ?(on = "a") n = replicate (Bignat.of_int n) (tuple [ atom on ])

(** {1 Accessors} *)

let as_bag v =
  match v.node with
  | Bag pairs -> pairs
  | Atom _ | Tuple _ -> invalid_arg "Value.as_bag: not a bag"

let as_tuple v =
  match v.node with
  | Tuple vs -> vs
  | Atom _ | Bag _ -> invalid_arg "Value.as_tuple: not a tuple"

let is_bag v = match v.node with Bag _ -> true | Atom _ | Tuple _ -> false
let is_empty_bag v = match v.node with Bag [] -> true | _ -> false

(** Multiplicity with which [v] belongs to bag [b] (zero if absent).  The
    support is sorted, so the scan stops at the first element above [v]. *)
let count_in v b =
  let rec go = function
    | [] -> Bignat.zero
    | (w, c) :: rest ->
        let cv = compare w v in
        if cv < 0 then go rest else if cv = 0 then c else Bignat.zero
  in
  go (as_bag b)

(** Total number of occurrences — the paper's size of a bag. *)
let cardinal b =
  List.fold_left (fun acc (_, c) -> Bignat.add acc c) Bignat.zero (as_bag b)

let support b = List.map fst (as_bag b)
let support_size b = List.length (as_bag b)

(** {1 Structure measures} *)

let rec bag_nesting v =
  match v.node with
  | Atom _ -> 0
  | Tuple vs -> List.fold_left (fun acc v -> max acc (bag_nesting v)) 0 vs
  | Bag pairs ->
      1 + List.fold_left (fun acc (v, _) -> max acc (bag_nesting v)) 0 pairs

(** Size of the standard encoding (§2): duplicates are counted explicitly.
    Returned as a {!Bignat.t} because sizes can themselves explode.  When the
    size tag did not saturate it is already the answer. *)
let rec encoded_size v =
  if v.size < max_int then Bignat.of_int v.size
  else
    match v.node with
    | Atom _ -> Bignat.one
    | Tuple vs ->
        List.fold_left (fun acc v -> Bignat.add acc (encoded_size v)) Bignat.one vs
    | Bag pairs ->
        List.fold_left
          (fun acc (v, c) -> Bignat.add acc (Bignat.mul c (encoded_size v)))
          Bignat.one pairs

(** All atomic constants occurring in a value. *)
let atoms v =
  let module S = Set.Make (String) in
  let rec go acc v =
    match v.node with
    | Atom s -> S.add s acc
    | Tuple vs -> List.fold_left go acc vs
    | Bag pairs -> List.fold_left (fun acc (v, _) -> go acc v) acc pairs
  in
  S.elements (go S.empty v)

(** {1 Typing} *)

(** [has_type ty v] checks [v] against [ty]; an empty bag inhabits every bag
    type. *)
let rec has_type ty v =
  match (ty, v.node) with
  | Ty.Atom, Atom _ -> true
  | Ty.Tuple ts, Tuple vs ->
      List.length ts = List.length vs && List.for_all2 has_type ts vs
  | Ty.Bag t, Bag pairs -> List.for_all (fun (v, _) -> has_type t v) pairs
  | (Ty.Atom | Ty.Tuple _ | Ty.Bag _), _ -> false

(** Best-effort type inference.  Returns [None] for heterogeneous bags; an
    empty bag infers as a bag of atoms (the least informative choice —
    prefer {!has_type} when a type is known). *)
let rec infer v =
  match v.node with
  | Atom _ -> Some Ty.Atom
  | Tuple vs ->
      let tys = List.map infer vs in
      if List.exists Option.is_none tys then None
      else Some (Ty.Tuple (List.map Option.get tys))
  | Bag [] -> Some (Ty.Bag Ty.Atom)
  | Bag ((v0, _) :: rest) -> (
      match infer v0 with
      | None -> None
      | Some t ->
          if List.for_all (fun (v, _) -> has_type t v) rest then Some (Ty.Bag t)
          else None)

(** {1 Rendering} *)

let rec pp ppf v =
  match v.node with
  | Atom s -> Format.fprintf ppf "'%s" s
  | Tuple vs ->
      Format.fprintf ppf "<%a>"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        vs
  | Bag pairs ->
      let pp_pair ppf (v, c) =
        if Bignat.is_one c then pp ppf v
        else Format.fprintf ppf "%a:%a" pp v Bignat.pp c
      in
      Format.fprintf ppf "{{%a}}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_pair)
        pairs

let to_string v = Format.asprintf "%a" pp v

(** Decode an integer-as-bag value back to its count (total cardinality). *)
let nat_value b = cardinal b
