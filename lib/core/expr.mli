(** Abstract syntax of BALG (§3) with the fixpoint (§6) and nesting (§7)
    extensions.

    Object-level constructors (tupling, bagging, projection) and bag-level
    operators share one expression language with explicit binders: [Map (x,
    body, e)] is MAP{_λx.body}(e), and [Select (x, l, r, e)] is
    σ{_λx.l=r}(e).  λ bodies may mention outer bags, which the paper's own
    derived forms require. *)

type var = string

type t =
  | Var of var
  | Lit of Value.t * Ty.t  (** literal constant with its declared type *)
  | Tuple of t list  (** tupling [τ] *)
  | Proj of int * t  (** attribute projection [α{_i}], 1-based *)
  | Sing of t  (** bagging [β] *)
  | UnionAdd of t * t  (** additive union [∪+] *)
  | Diff of t * t  (** subtraction (monus) [−] *)
  | UnionMax of t * t  (** maximal union [∪] *)
  | Inter of t * t  (** intersection [∩] *)
  | Product of t * t  (** Cartesian product [×] *)
  | Join of int * int * t * t
      (** keyed equijoin [σ{_a.i=b.j}(a × b)], concatenated tuples — a
          derived form produced by the {!Opt} planner; both engines run
          it as a hash join, bit-identical to select-over-product *)
  | Powerset of t  (** [P] *)
  | Powerbag of t  (** [Pb] (Definition 5.1) *)
  | Destroy of t  (** bag-destroy [δ] *)
  | Map of var * t * t  (** restructuring MAP *)
  | Select of var * t * t * t  (** selection σ{_φ=φ'} *)
  | Dedup of t  (** duplicate elimination [ε] *)
  | Let of var * t * t
  | Fix of var * t * t  (** inflationary fixpoint (Thm 6.6) *)
  | BFix of t * var * t * t  (** bounded fixpoint: bound, binder, body, seed *)
  | Nest of int list * t  (** §7 nest: group by the listed attributes *)
  | Unnest of int * t  (** expand a bag-valued attribute in place *)

(** {1 Constructors} *)

val var : var -> t
val lit : Value.t -> Ty.t -> t
val atom : string -> t

val empty : Ty.t -> t
(** Typed empty-bag literal. *)

val tuple : t list -> t
val proj : int -> t -> t
val sing : t -> t
val ( ++ ) : t -> t -> t
val ( -- ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( &&& ) : t -> t -> t
val ( *** ) : t -> t -> t

val join : int -> int -> t -> t -> t
(** [join i j a b] is σ{_x.i = x.(ka+j)}(a × b) as one keyed operator. *)

val powerset : t -> t
val powerbag : t -> t
val destroy : t -> t
val map : var -> t -> t -> t
val select : var -> t -> t -> t -> t
val dedup : t -> t
val let_ : var -> t -> t -> t
val fix : var -> t -> t -> t
val bfix : t -> var -> t -> t -> t

val proj_attrs : int list -> t -> t
(** Generalized projection [π{_i1..in}] as a MAP; indices may repeat. *)

val ones : ?on:string -> t -> t
(** [MAP{_λx.<a>}(e)]: the cardinality of [e] as an integer-bag. *)

(** {1 Traversal} *)

val children : t -> t list
val size : t -> int

val op_name : t -> string
(** Short operator label ("powerset", "let x", ...): the attribution name
    shared by {!Explain}, the {!Telemetry} span tree, and budget-exhaustion
    reports. *)

module Vars : Set.S with type elt = string

val free_vars : t -> Vars.t

val fresh_var : string -> var
(** Fresh names contain [%], which user programs cannot clash with
    accidentally (the lexer accepts it, so printing round-trips). *)

val subst : var -> t -> t -> t
(** [subst x r e]: capture-avoiding substitution of [r] for [x] in [e]. *)

(** {1 Rendering}

    The printed form is exactly the surface syntax accepted by
    [Baglang.Parser]. *)

val pp : Format.formatter -> t -> unit
val pp_atomic : Format.formatter -> t -> unit
val to_string : t -> string
