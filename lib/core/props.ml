(** Bottom-up static properties of algebra expressions: the analysis side
    of the cost-based optimiser ({!Opt}).

    For every node we infer a small property record — tuple arity where
    the type is a flat bag, a saturating estimate (and, where possible, an
    exact figure) of the output {e support}, and a distinctness fact (all
    multiplicities equal one).  Distinctness is what makes several of the
    optimiser's rewrites sound to {e prefer} (e.g. keyed joins over
    distinct operands stay distinct, so later [dedup]s are free), and
    support estimates are what the cost model multiplies kernel constants
    against.

    Cardinality bounds come from two sources, mirroring the paper's
    stratification: where the expression falls in the BALG{^1}(+ε)
    fragment over a single bag input, {!Polyab} gives the {e exact}
    occurrence-count polynomial of Proposition 4.1, which we evaluate at
    the input's actual cardinality; everywhere else we fall back to
    structural support heuristics (products multiply, selections shrink,
    [nest]/[dedup] bound by their input).  The polynomial, when present,
    is kept on the record so [balgi explain] can show the paper-native
    bound alongside the heuristic one. *)

module Env = Map.Make (String)

type t = {
  arity : int option;  (** tuple width when the node is a flat bag of tuples *)
  rows : int;  (** saturating estimate of the output support *)
  exact : bool;  (** [rows] is exact, not a heuristic *)
  distinct : bool;  (** every multiplicity is provably one *)
  card : Poly.t option;
      (** total-cardinality polynomial in the input cardinality, via
          {!Polyab} when the BALG{^1}+ε fragment applies *)
}

(* Support estimate used for relations whose contents are unknown (a free
   variable with no binding supplied): the 300-row bench relations and the
   QCheck instances both live within an order of magnitude of this. *)
let default_rows = 64

let sat_add = Value.sat_add
let sat_mul = Value.sat_mul

let sat_pow2 n = if n >= 62 then max_int else 1 lsl n

(* Halving-style guesses never drop to zero: an empty estimate would make
   the cost model treat whole subplans as free. *)
let shrink n d = max 1 (n / d)

let arity_of tenv e =
  match Typecheck.infer tenv e with
  | Ty.Bag (Ty.Tuple ts) -> Some (List.length ts)
  | _ -> None
  | exception Typecheck.Type_error _ -> None

(* Polyab tracks literal bags concretely, entry by entry — fine for the
   small relations of the paper's examples, quadratic blowup on the
   multi-hundred-row bench literals.  The abstraction only pays for
   itself on small inputs anyway; past this the heuristics take over. *)
let polyab_literal_cap = 32

let literals_small e =
  let small = ref true in
  let rec go e =
    (match e with
    | Expr.Lit (v, _)
      when Value.is_bag v && Value.support_size v > polyab_literal_cap ->
        small := false
    | _ -> ());
    if !small then List.iter go (Expr.children e)
  in
  go e;
  !small

(* The Proposition 4.1 path: a closed-or-single-input expression analysed
   over the family B_n yields one occurrence polynomial per output tuple;
   their sum is the total cardinality as a polynomial in n.  Outside the
   fragment Polyab refuses and we return None. *)
let polyab_card e =
  if not (literals_small e) then None
  else
  match Expr.Vars.elements (Expr.free_vars e) with
  | [] | [ _ ] -> (
      let input =
        match Expr.Vars.elements (Expr.free_vars e) with
        | [ x ] -> x
        | _ -> "__polyab_input"
      in
      try
        let a = Polyab.analyze ~input e in
        Some
          (List.fold_left
             (fun p (_, q) -> Poly.add p q)
             Poly.zero a.Polyab.entries)
      with Polyab.Unsupported _ -> None)
  | _ -> None

(* Evaluate a cardinality polynomial at the (known) input cardinality,
   saturating into the support-estimate domain. *)
let poly_rows p ~n =
  let v = Poly.eval_int p n in
  if Bigint.sign v <= 0 then 0
  else
    match Bigint.to_bignat_opt v with
    | None -> max_int
    | Some b -> ( match Bignat.to_int_opt b with None -> max_int | Some k -> k)

let all_unit_counts v =
  Value.is_bag v
  && List.for_all (fun (_, c) -> Bignat.is_one c) (Value.as_bag v)

let of_value v =
  if Value.is_bag v then
    {
      arity =
        (match Value.view v with
        | Value.Bag ((t, _) :: _) -> (
            match Value.view t with
            | Value.Tuple ts -> Some (List.length ts)
            | _ -> None)
        | _ -> None);
      rows = Value.support_size v;
      exact = true;
      distinct = all_unit_counts v;
      card = None;
    }
  else { arity = None; rows = 1; exact = true; distinct = true; card = None }

let scalar = { arity = None; rows = 1; exact = true; distinct = true; card = None }

let unknown_bag =
  { arity = None; rows = default_rows; exact = false; distinct = false; card = None }

(* Measured correction factors (Calib) scale the heuristic estimates;
   exact figures and saturated estimates are left alone.  Factors apply
   per node inside the recursion, so a calibrated child feeds its
   corrected rows to the parent's formula — multiplicative errors
   compose the same way they were measured. *)
let apply_calib calib e p =
  if p.exact || p.rows = max_int then p
  else
    match calib (Calib.op_key (Expr.op_name e)) with
    | None -> p
    | Some f when f = 1.0 -> p
    | Some f ->
        let r = float_of_int p.rows *. f in
        let rows =
          if r >= 4.6e18 then max_int else max 1 (int_of_float (r +. 0.5))
        in
        { p with rows }

let infer ?(vals = []) ?calib (tenv : Typecheck.env) e =
  let calib =
    match calib with Some f -> f | None -> Calib.lookup_current
  in
  (* Known input cardinality for the Polyab path: only meaningful when the
     expression reads a single relation. *)
  let input_card x =
    match List.assoc_opt x vals with
    | Some v when Value.is_bag v ->
        Option.bind (Bignat.to_int_opt (Value.cardinal v)) Option.some
    | _ -> None
  in
  let rec go (penv : t Env.t) e : t =
    let p =
      match e with
      | Expr.Var x -> (
          match Env.find_opt x penv with
          | Some p -> p
          | None -> (
              match List.assoc_opt x vals with
              | Some v -> of_value v
              | None -> (
                  match Typecheck.Env.find_opt x tenv with
                  | Some (Ty.Bag (Ty.Tuple ts)) ->
                      { unknown_bag with arity = Some (List.length ts) }
                  | Some (Ty.Bag _) -> unknown_bag
                  | _ -> scalar)))
      | Expr.Lit (v, _) -> of_value v
      | Expr.Tuple _ | Expr.Proj _ -> scalar
      | Expr.Sing _ -> { scalar with arity = None; rows = 1 }
      | Expr.UnionAdd (a, b) ->
          let pa = go penv a and pb = go penv b in
          {
            arity = pa.arity;
            rows = sat_add pa.rows pb.rows;
            exact = false;
            distinct = false;
            card = None;
          }
      | Expr.Diff (a, b) ->
          let pa = go penv a in
          ignore (go penv b);
          { pa with exact = false; card = None }
      | Expr.UnionMax (a, b) ->
          let pa = go penv a and pb = go penv b in
          {
            arity = pa.arity;
            rows = sat_add pa.rows pb.rows;
            exact = false;
            distinct = pa.distinct && pb.distinct;
            card = None;
          }
      | Expr.Inter (a, b) ->
          let pa = go penv a and pb = go penv b in
          {
            arity = pa.arity;
            rows = min pa.rows pb.rows;
            exact = false;
            distinct = pa.distinct || pb.distinct;
            card = None;
          }
      | Expr.Product (a, b) ->
          let pa = go penv a and pb = go penv b in
          {
            arity =
              (match (pa.arity, pb.arity) with
              | Some i, Some j -> Some (i + j)
              | _ -> None);
            rows = sat_mul pa.rows pb.rows;
            (* distinct × distinct pairs stay pairwise distinct, so the
               product of exact supports is itself exact *)
            exact = pa.exact && pb.exact && pa.distinct && pb.distinct;
            distinct = pa.distinct && pb.distinct;
            card = None;
          }
      | Expr.Join (i, j, a, b) ->
          ignore (i, j);
          let pa = go penv a and pb = go penv b in
          {
            arity =
              (match (pa.arity, pb.arity) with
              | Some i, Some j -> Some (i + j)
              | _ -> None);
            (* near-unique key heuristic: each row of the larger side meets
               about one partner, so the match count tracks max, not the
               product *)
            rows = max pa.rows pb.rows;
            exact = false;
            distinct = pa.distinct && pb.distinct;
            card = None;
          }
      | Expr.Powerset e0 ->
          let p0 = go penv e0 in
          {
            arity = None;
            rows = sat_pow2 p0.rows;
            exact = false;
            distinct = true;
            card = None;
          }
      | Expr.Powerbag e0 ->
          let p0 = go penv e0 in
          {
            arity = None;
            rows = sat_pow2 (sat_add p0.rows 2);
            exact = false;
            distinct = false;
            card = None;
          }
      | Expr.Destroy e0 ->
          let p0 = go penv e0 in
          {
            arity = None;
            rows = sat_mul 8 p0.rows;
            exact = false;
            distinct = false;
            card = None;
          }
      | Expr.Map (x, body, e0) ->
          let p0 = go penv e0 in
          let pb = go (Env.add x scalar penv) body in
          ignore pb;
          (* MAP coalesces images, so the input support is an upper bound;
             projections typically keep most rows apart *)
          {
            arity = None;
            rows = p0.rows;
            exact = false;
            distinct = false;
            card = None;
          }
      | Expr.Select (x, l, r, e0) ->
          let p0 = go penv e0 in
          ignore (go (Env.add x scalar penv) l);
          ignore (go (Env.add x scalar penv) r);
          {
            p0 with
            rows = shrink p0.rows 3 (* equality predicates are selective *);
            exact = false;
            card = None;
          }
      | Expr.Dedup e0 ->
          let p0 = go penv e0 in
          { p0 with distinct = true; card = None }
      | Expr.Nest (ixs, e0) ->
          let p0 = go penv e0 in
          ignore ixs;
          {
            arity = Option.map (fun _ -> List.length ixs + 1) p0.arity;
            rows = shrink p0.rows 2 (* groups merge rows sharing a key *);
            exact = false;
            distinct = true;
            card = None;
          }
      | Expr.Unnest (_, e0) ->
          let p0 = go penv e0 in
          {
            arity = Option.map (fun k -> k) p0.arity;
            rows = sat_mul 4 p0.rows;
            exact = false;
            distinct = false;
            card = None;
          }
      | Expr.Let (x, e0, body) ->
          let p0 = go penv e0 in
          go (Env.add x p0 penv) body
      | Expr.Fix (x, body, seed) ->
          let ps = go penv seed in
          let pb = go (Env.add x { ps with exact = false } penv) body in
          {
            arity = ps.arity;
            rows = sat_mul 8 (max ps.rows pb.rows);
            exact = false;
            distinct = false;
            card = None;
          }
      | Expr.BFix (bound, x, body, seed) ->
          let pbound = go penv bound in
          let ps = go penv seed in
          ignore (go (Env.add x { ps with exact = false } penv) body);
          (* the inflationary iteration is clamped inside the bound *)
          {
            arity = pbound.arity;
            rows = pbound.rows;
            exact = false;
            distinct = false;
            card = None;
          }
    in
    apply_calib calib e p
  in
  let p = go Env.empty e in
  let arity = match p.arity with Some _ as a -> a | None -> arity_of tenv e in
  (* Refine with the paper-native bound where the fragment applies: the
     polynomial evaluated at the input's cardinality bounds the output
     cardinality, hence the support. *)
  match polyab_card e with
  | None -> { p with arity }
  | Some poly ->
      let rows =
        match Expr.Vars.elements (Expr.free_vars e) with
        | [ x ] -> (
            match input_card x with
            | Some n -> min p.rows (poly_rows poly ~n)
            | None -> p.rows)
        | [] -> min p.rows (poly_rows poly ~n:0)
        | _ -> p.rows
      in
      { p with arity; rows; card = Some poly }

let to_string p =
  Printf.sprintf "{arity=%s; rows%s%s%s%s}"
    (match p.arity with Some k -> string_of_int k | None -> "?")
    (if p.exact then "=" else "~")
    (if p.rows = max_int then "inf" else string_of_int p.rows)
    (if p.distinct then "; distinct" else "")
    (match p.card with
    | Some poly -> "; card=" ^ Poly.to_string poly
    | None -> "")
