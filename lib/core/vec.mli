(** Segmented flat vectors: the columnar value representation behind the
    vectorized execution engine ({!Veval}).

    A {!t} is a bag laid out column-wise: atoms become arrays of interned
    integer codes, tuples become a struct-of-arrays (one column per
    component), and nested bags become {e segment descriptors} — an offset
    array delimiting each row's slice of a flattened element column.
    Multiplicities live in a dedicated count column of small machine ints
    with a sparse {!Bignat} spill table for counts beyond [int] range, so
    kernels run loop-free over flat arrays while exactness is preserved.

    Rows need {e not} be distinct: kernels are free to leave duplicate
    rows behind (e.g. {!union_add} is a plain append) because
    {!to_value} — and any kernel that needs per-distinct-row totals —
    coalesces by hashing interned codes, never by comparing boxed
    values.  Conversion back to {!Value.t} therefore always yields the
    canonical bag: [to_value (of_value b)] is {!Value.equal} to [b] with
    an equal hash tag, whatever kernels ran in between.

    {b Segment invariant.}  Inner bag segments are kept {e canonical}
    (sorted by the {!Value.compare} order, coalesced, positive counts),
    exactly like [Value]'s own bags: segments enter canonical through
    {!of_value}, and the only kernel that builds new segments ({!nest})
    sorts and coalesces them — so nested-bag cell equality is a flat
    segment walk, never a normalisation.

    {b Unsupported data.}  Columnar layout needs a uniform element shape;
    heterogeneous bags (and non-bag values) raise {!Unsupported}, which
    {!Veval} catches to fall back to the tree evaluator for that subtree.

    {b Safety.}  This is the only module allowed to use
    [Array.unsafe_get]/[unsafe_set] (enforced by [scripts/lint.sh]);
    every use carries a same-line [bounds:] justification and the
    enclosing kernel guards the index range with an assertion at entry. *)

type t

exception Unsupported of string
(** The value or operation does not fit the columnar layout; callers fall
    back to the tree evaluator. *)

val rows : t -> int
(** Number of rows (an upper bound on the distinct support: kernels may
    leave duplicate rows for {!to_value} to coalesce). *)

val max_count_digits : t -> int
(** Decimal digits of the largest top-level multiplicity — O(rows) over
    the count column, for the budget's count-digit account. *)

(** {1 Boundary conversions} *)

val of_value : Value.t -> t
(** Flatten a canonical bag into columns.
    @raise Unsupported on non-bag values and heterogeneous bags. *)

val to_value : t -> Value.t
(** Coalesce duplicate rows (by interned-code hashing), decode, and
    rebuild the canonical {!Value.t} bag. *)

(** {1 Scalar programs}

    The per-row fragment of MAP bodies and σ operands the engine can
    vectorize: the row itself, positional projection, closed literals,
    tuple construction, and the cardinality-as-bag [MAP λy.<a>] idiom
    behind the derived aggregates.  Evaluated column-wise, one array op
    per node, never per row. *)

type scalar =
  | SRow  (** the bound row variable *)
  | SField of int * scalar  (** 1-based attribute projection *)
  | SConst of Value.t  (** closed literal, broadcast *)
  | SRecord of scalar list  (** tuple construction *)
  | SOnes of string * scalar
      (** [MAP λy.<atom>] over a bag-valued operand: its cardinality as an
          integer-bag (the paper's [ones]) *)

(** {1 Kernels}

    All kernels are pure; [?pool] chunks contiguous row ranges across
    domains and the slices recombine by concatenation, so results are
    bit-identical to the sequential run.
    @raise Unsupported when operand shapes do not line up. *)

val expected_product_rows : t -> t -> int
(** Saturating [rows a * rows b] — the pre-materialisation guard. *)

val product : ?pool:Pool.t -> t -> t -> t

val join : ?pool:Pool.t -> int -> int -> t -> t -> t
(** [join i j a b] is the keyed equijoin σ_{i = ka+j}(a × b) as one hash
    join: [b]'s rows are bucketed by their [j]-th cell, [a]'s rows probe,
    and only matching pairs are materialised.  [to_value] of the result is
    bit-identical to the unfused product-then-select plan.  With [?pool],
    contiguous probe ranges run across domains against the shared
    read-only table. *)

val map_scalar : scalar -> t -> t
val select_scalar : ?pool:Pool.t -> scalar -> scalar -> t -> t

val union_add : t -> t -> t
(** Additive union as a column append (no coalescing). *)

val monus : t -> t -> t
val union_max : t -> t -> t
val inter : t -> t -> t
val dedup : t -> t

val coalesce : t -> t
(** Merge duplicate rows, summing counts; rows come out in first-seen
    order (canonical order is restored by {!to_value}). *)

val nest : int list -> t -> t
(** Group by the listed 1-based attributes into a canonical segmented bag
    column appended as the last component; each group occurs once. *)

val unnest : int -> t -> t
val destroy : t -> t
