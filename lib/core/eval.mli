(** The reference interpreter: exact §3 semantics under a tractability
    guard.

    The algebra deliberately contains queries of arbitrarily high
    hyper-exponential complexity (Prop 3.2, Thm 5.5), so evaluation runs
    under configurable bounds and raises {!Resource_limit} instead of
    diverging.  {!meters} record the largest intermediate support,
    multiplicity and cardinality seen — the observable the complexity
    experiments measure. *)

exception Eval_error of string
exception Resource_limit of string

type config = {
  max_support : int;  (** bound on distinct elements per bag *)
  max_count_digits : int;  (** bound on decimal digits of any multiplicity *)
  max_fix_steps : int;  (** bound on fixpoint iterations *)
}

val default_config : config

type meters = {
  mutable max_support_seen : int;
  mutable max_count_seen : Bignat.t;
  mutable max_cardinal_seen : Bignat.t;
  mutable ops : int;
  mutable memo_hits : int;
      (** stable subexpressions answered from the memo table *)
  mutable memo_misses : int;
      (** memoisable subexpressions that had to be computed *)
}

val fresh_meters : unit -> meters

module Env : Map.S with type key = string

type env = Value.t Env.t

val env_of_list : (string * Value.t) list -> env

val eval : ?config:config -> ?meters:meters -> env -> Expr.t -> Value.t
(** @raise Eval_error on dynamic type errors or unbound variables.
    @raise Resource_limit when the guard trips. *)

val truthy : Value.t -> bool
(** The boolean convention of the paper's example queries: a bag result is
    true iff nonempty.  @raise Eval_error on non-bag values. *)
