(** The reference interpreter: exact §3 semantics under a {!Budget}
    governor.

    The algebra deliberately contains queries of arbitrarily high
    hyper-exponential complexity (Prop 3.2, Thm 5.5), so evaluation runs
    under configurable resource limits — step fuel, per-bag support,
    encoded size, multiplicity digits, fixpoint steps, wall-clock deadline
    — checked at every compiled-closure boundary.  {!run} reports
    exhaustion as a structured [Error] locating the node that ran dry;
    the legacy {!eval} raises {!Resource_limit} instead.  {!meters} record
    the largest intermediate support, multiplicity and cardinality seen —
    the observable the complexity experiments measure — and an optional
    {!Telemetry.t} sink collects a per-operator span tree. *)

exception Eval_error of string

exception Resource_limit of string
(** Raised by the legacy {!eval} wrapper; {!run} never raises it. *)

type config = {
  max_support : int;  (** bound on distinct elements per bag *)
  max_count_digits : int;  (** bound on decimal digits of any multiplicity *)
  max_fix_steps : int;  (** bound on fixpoint iterations *)
}

val default_config : config

val limits_of_config : config -> Budget.limits
(** The legacy three-knob guard as governor limits (fuel, size and
    deadline unlimited). *)

type meters = {
  mutable max_support_seen : int;
  mutable max_count_seen : Bignat.t;
  mutable max_cardinal_seen : Bignat.t;
  mutable ops : int;
  mutable memo_hits : int;
      (** stable subexpressions answered from the memo table *)
  mutable memo_misses : int;
      (** memoisable subexpressions that had to be computed *)
}

val fresh_meters : unit -> meters

module Env : Map.S with type key = string

type env = Value.t Env.t

val env_of_list : (string * Value.t) list -> env

val run :
  ?budget:Budget.t ->
  ?limits:Budget.limits ->
  ?meters:meters ->
  ?telemetry:Telemetry.t ->
  ?pool:Pool.t ->
  env ->
  Expr.t ->
  (Value.t, Budget.exhaustion) result
(** Governed evaluation.  A pre-started [?budget] takes precedence over
    [?limits] (pass one to inspect {!Budget.fuel_spent} afterwards);
    with neither, {!Budget.default} applies.  Budget exhaustion — including
    what used to surface as the ad-hoc [Bag.Too_large] — returns as a
    located [Error]; no budget-related exception escapes.  The same holds
    for the two adversity channels: {!Budget.cancel} during evaluation
    returns a [Cancelled] verdict (checked at every fuel charge, on every
    domain), and a firing {!Fault} injection site — [eval.step],
    [bag.alloc], [pool.task] — returns an [Injected] verdict naming the
    site, located at the charging node when the evaluator can attribute
    it.  The only exception [run] raises is {!Eval_error} (a dynamic type
    error or unbound variable: caller bugs, not resource adversity).

    With [?pool], large kernels chunk their support across the pool's
    domains and substantial independent binary-operator branches fork:
    results are identical to sequential evaluation (chunks of a canonical
    bag recombine canonically), the shared budget still cuts off at the
    same total spend, telemetry shards merge at every join (preserving the
    steps == fuel invariant), and an exhaustion verdict is reported at the
    smallest exhausting node id for determinism.
    @raise Eval_error on dynamic type errors or unbound variables. *)

val eval :
  ?config:config -> ?meters:meters -> ?pool:Pool.t -> env -> Expr.t -> Value.t
(** Legacy entry point: {!run} under {!limits_of_config}.
    @raise Eval_error on dynamic type errors or unbound variables.
    @raise Resource_limit when the governor trips. *)

val truthy : Value.t -> bool
(** The boolean convention of the paper's example queries: a bag result is
    true iff nonempty.  @raise Eval_error on non-bag values. *)
