(** A work-sharing pool of OCaml 5 domains for data-parallel kernels.

    The evaluator's hot paths — per-element MAP bodies, σ predicates,
    Cartesian products — are embarrassingly parallel over the sorted
    support of a canonical bag.  A {!t} owns [jobs - 1] persistent worker
    domains plus the calling domain: {!run} enqueues a batch of thunks on a
    shared queue and the caller {e helps} drain it, so nested parallel
    regions (a parallel product inside a parallel MAP body) never deadlock
    — a blocked owner is always either executing queued work or waiting on
    tasks that some other domain is executing.

    Thresholds live here so every call site agrees on when parallelism
    pays: {!chunk_min} is the minimum number of support elements (or
    product rows) worth chunking, {!fork_min} the minimum {!Expr.size} of
    {e both} operands of a binary operator worth forking.  Tests set both
    to 1 to force the parallel paths onto tiny inputs. *)

type t

val create : ?chunk_min:int -> ?fork_min:int -> jobs:int -> unit -> t
(** Spawn [jobs - 1] worker domains ([jobs <= 1] spawns none and {!run}
    degenerates to sequential iteration).  Defaults: [chunk_min = 512],
    [fork_min = 24].  A failed spawn — the [pool.spawn] {!Fault} site, or
    a real resource failure — degrades the pool to fewer workers rather
    than raising: the helping caller keeps every batch completing. *)

val jobs : t -> int
val chunk_min : t -> int
val fork_min : t -> int

val live : t -> int
(** Worker domains spawned and not yet joined; [0] after {!shutdown}
    (the no-leaked-domains postcondition the chaos tests assert). *)

val run : t -> (unit -> 'a) list -> ('a, exn) result list
(** Execute the thunks, possibly in parallel, returning per-thunk results
    in input order.  Exceptions are captured per thunk, never re-raised
    here — the caller decides how to combine failures (the evaluator picks
    the budget verdict with the smallest node id).  Safe to call from
    inside a running task (the nested call shares the queue).  The
    [pool.task] {!Fault} site fires here: an injected worker death
    surfaces as that thunk's [Error], never as a lost task or a hung
    batch. *)

val shutdown : t -> unit
(** Join the worker domains.  The pool must not be used afterwards. *)

val with_pool :
  ?chunk_min:int -> ?fork_min:int -> jobs:int -> (t option -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f (Some pool)] with a fresh pool and shuts it
    down afterwards (also on exceptions); [jobs <= 1] runs [f None]. *)

val chunks : int -> 'a list -> 'a list list
(** [chunks k l]: split [l] into at most [k] contiguous chunks of
    near-equal length, in order.  [chunks k [] = []]. *)
