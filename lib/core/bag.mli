(** The primitive bag operations of §3, as functions on bag {!Value.t}s.

    Every function expects its bag arguments to be [Value.Bag] and raises
    [Invalid_argument] otherwise; the typechecker rules this out for
    well-typed algebra expressions.  Multiplicity arithmetic follows the
    paper exactly: additive union sums counts, subtraction is truncated
    ([sup (0, p - q)]), maximal union and intersection take sup and inf, the
    Cartesian product multiplies counts, and the powerset yields {e one}
    occurrence of every subbag whereas the powerbag distinguishes occurrences
    ([prod C(m_i, k_i)] copies of each sub-multiset). *)

(** {1 Boolean structure} *)

val subbag : Value.t -> Value.t -> bool
(** [subbag b b'] is the paper's [b ⊑ b']: every [n]-member of [b]
    [p]-belongs to [b'] for some [p >= n]. *)

(** {1 Basic bag operations} *)

val union_add : Value.t -> Value.t -> Value.t
val diff : Value.t -> Value.t -> Value.t
val union_max : Value.t -> Value.t -> Value.t
val inter : Value.t -> Value.t -> Value.t

(** {1 Constructive operations} *)

val product : ?pool:Pool.t -> Value.t -> Value.t -> Value.t
(** Cartesian product of bags of tuples; concatenates tuple components and
    multiplies multiplicities.  With [?pool] and enough rows, the outer
    support is chunked across domains; the result is identical to the
    sequential one (chunks cover contiguous ranges of the sorted support,
    so their partial results recombine canonically). *)

val expected_subbags : Value.t -> int
(** The number of distinct subbags {!powerset}/{!powerbag} would
    materialise — [prod (m_i + 1)] over the support, {e saturating} at
    [max_int] (including when a multiplicity exceeds [int] range).
    O(support), allocation-free.  This is the guard callers consult
    {e before} invoking a power operator: the evaluator pre-charges it
    against the budget and reports overflow as a located [Support]
    verdict; no unstructured size exception exists any more (the old
    [Too_large] escape is gone). *)

val powerset : Value.t -> Value.t
(** [powerset b] is the bag of {e distinct} subbags of [b], each occurring
    once (the operator chosen for BALG "for tractability reasons").
    Unguarded: callers bound the output via {!expected_subbags} first.
    @raise Invalid_argument if some multiplicity does not fit an [int]
    (a case {!expected_subbags} reports as [max_int]). *)

val powerbag : Value.t -> Value.t
(** [powerbag b] is [Pb] (Definition 5.1): occurrences are distinguished, so
    the sub-multiset choosing [k_i] of [m_i] copies appears
    [prod C(m_i, k_i)] times.  Same resource behaviour as {!powerset}. *)

val destroy : Value.t -> Value.t
(** [destroy b] is [δ]: additive union of the member bags, respecting outer
    multiplicities ([δ {{x1, ..., xn}} = x1 ∪+ ... ∪+ xn]). *)

(** {1 Filters} *)

val map : (Value.t -> Value.t) -> Value.t -> Value.t
(** Restructuring (MAP): images coalesce additively. *)

val select : (Value.t -> bool) -> Value.t -> Value.t

val dedup : Value.t -> Value.t
(** Duplicate elimination [ε]. *)

val proj : ?pool:Pool.t -> int list -> Value.t -> Value.t
(** [proj ixs b] is the generalized projection
    [MAP λx.<α_{i1}(x), ..., α_{ik}(x)>] over a bag of tuples — the direct
    kernel behind the evaluator's compiled fast path for that Map shape.
    With [?pool], support chunks project in parallel and recombine with the
    sorted additive merge.
    @raise Invalid_argument on non-tuple elements or out-of-range
    attributes. *)

val select_eq : ?pool:Pool.t -> int -> int -> Value.t -> Value.t
(** [select_eq i j b] is [σ_{i=j} b]: keep the tuples whose [i]-th and
    [j]-th components are equal.  Direct kernel behind the compiled fast
    path for [Select (x, Proj (i, Var x), Proj (j, Var x), e)].  With
    [?pool], support chunks filter in parallel.
    @raise Invalid_argument on non-tuple elements or out-of-range
    attributes. *)

val join_eq : ?pool:Pool.t -> int -> int -> Value.t -> Value.t -> Value.t
(** [join_eq i j a b] is the keyed equijoin
    [σ_{i = ka+j} (a × b)] (with [ka] the arity of [a]'s tuples) as one
    hash-join kernel: [b] is bucketed by its [j]-th component, [a] streams
    through the table, and matching tuples concatenate with multiplied
    counts.  Bit-identical to [select_eq i (ka + j) (product a b)] without
    materialising the product.  With [?pool], the probe side chunks across
    domains against the shared read-only table.
    @raise Invalid_argument on non-tuple elements or out-of-range
    attributes. *)

val nest : int list -> Value.t -> Value.t
(** The set-nesting operator of §7 ([PG88, Won93]): group a bag of tuples by
    the listed 1-based attributes; the remaining attributes — with their
    multiplicities — form a bag appended as the last component, and every
    group occurs once. *)

val unnest : int -> Value.t -> Value.t
(** Expand a bag-valued attribute in place; multiplicities multiply. *)

(** {1 Helpers} *)

val scale : Bignat.t -> Value.t -> Value.t
(** Multiply every multiplicity by a constant (used by [destroy]). *)

val max_count : Value.t -> Bignat.t
(** Largest multiplicity occurring in the bag (zero for the empty bag);
    powers the evaluator's growth meters. *)
