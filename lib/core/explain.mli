(** Evaluation profiling: an EXPLAIN ANALYZE for bag-algebra queries.

    Evaluates exactly like {!Eval} while recording, per AST node, how many
    times it was evaluated (binder bodies run once per bag member, fixpoint
    bodies once per iteration) and the largest result support / cardinality
    seen — showing {e where} a query explodes. *)

type profile = {
  op : string;
  mutable calls : int;
  mutable max_support : int;
  mutable max_cardinal : Bignat.t;
  children : profile list;  (** in {!Expr.children} order *)
}

val run :
  ?config:Eval.config -> ?env:Eval.env -> Expr.t -> Value.t * profile
(** @raise Eval.Eval_error / Eval.Resource_limit like the evaluator. *)

val run_vec :
  ?config:Eval.config -> ?env:Eval.env -> Expr.t -> Value.t * Veval.plan
(** Evaluate under the vectorized engine and return its executed plan,
    labelling which engine — a [vec:<kernel>] or the tree data path — ran
    each subtree ([balgi explain --engine vec]).
    @raise Eval.Eval_error / Eval.Resource_limit like the evaluator. *)

val pp_profile : ?indent:int -> Format.formatter -> profile -> unit
val profile_to_string : profile -> string
