(** Evaluation profiling: an EXPLAIN ANALYZE for bag-algebra queries.

    Evaluates exactly like {!Eval} while recording, per AST node, how many
    times it was evaluated (binder bodies run once per bag member, fixpoint
    bodies once per iteration) and the largest result support / cardinality
    seen — showing {e where} a query explodes. *)

type profile = {
  op : string;
  mutable calls : int;
  mutable max_support : int;
  mutable max_cardinal : Bignat.t;
  children : profile list;  (** in {!Expr.children} order *)
}

val run :
  ?config:Eval.config -> ?env:Eval.env -> Expr.t -> Value.t * profile
(** @raise Eval.Eval_error / Eval.Resource_limit like the evaluator. *)

val run_vec :
  ?config:Eval.config -> ?env:Eval.env -> Expr.t -> Value.t * Veval.plan
(** Evaluate under the vectorized engine and return its executed plan,
    labelling which engine — a [vec:<kernel>] or the tree data path — ran
    each subtree ([balgi explain --engine vec]).
    @raise Eval.Eval_error / Eval.Resource_limit like the evaluator. *)

val pp_profile : ?indent:int -> Format.formatter -> profile -> unit
val profile_to_string : profile -> string

(** {1 EXPLAIN ANALYZE}

    Measured-vs-estimated cardinalities per operator, and the
    calibration table ({!Calib}) the comparison induces. *)

type annotated = {
  an_op : string;
  an_est : int;  (** {!Props.infer}'s (uncalibrated) row estimate *)
  an_exact : bool;  (** the estimate was exact, not heuristic *)
  an_actual : int;  (** measured max output support *)
  an_calls : int;
  an_engine : string option;  (** vec plan label under [--engine vec] *)
  an_children : annotated list;  (** in {!Expr.children} order *)
}

val analyze :
  ?config:Eval.config ->
  ?env:Eval.env ->
  ?vals:(string * Value.t) list ->
  tenv:Typecheck.env ->
  engine:Veval.engine ->
  Expr.t ->
  Value.t * annotated
(** Evaluate and annotate every operator with its measured output
    support next to the raw {!Props.infer} estimate (ambient calibration
    deliberately bypassed — this measures the estimator).  Under
    [engine = Vec] the vec engine supplies the result value and
    per-subtree engine labels while the instrumented tree walk supplies
    the per-node measurements; results are bit-identical across engines.
    [vals] should carry the database bindings so leaf estimates are
    exact.
    @raise Eval.Eval_error / Eval.Resource_limit like the evaluator. *)

val calibration_of : annotated -> Calib.t
(** Condense an analysis into per-operator correction factors over the
    heuristic operators actually exercised. *)

val pp_analysis : Format.formatter -> annotated -> unit
(** The estimation-error table: one row per operator (tree-indented)
    with estimate, measurement, q-error, call count and engine label,
    then a median/max q-error summary. *)

val analysis_to_string : annotated -> string
