(** Derived operators and the paper's worked encodings.

    Everything here is a {e builder}: an OCaml function assembling a BALG
    expression ({!Expr.t}).  Each builder corresponds to a construction the
    paper gives in prose — aggregate functions (§3), the operator
    inter-definability identities (§3, Prop 3.1), the separating example
    queries of §4, and the integer/domain machinery of §5–6. *)

open Expr

(** {1 Integers as bags (§3)}

    An integer [i] is a bag containing [i] occurrences of the unary tuple
    [<a>]. *)

let nat_ty = Ty.nat

let nat_lit ?(on = "a") n = Lit (Value.nat ~on n, nat_ty)

(** [ones e]: the cardinality of [e] as an integer-bag — [MAP{_λx.<a>}(e)].
    Works on bags of any element type. *)
let ones = Expr.ones

(** [count e] — the paper's [count(B) = π1({{<a>}} × B)]; requires a bag of
    tuples. *)
let count e =
  proj_attrs [ 1 ] (Product (nat_lit 1, e))

(** [sum e] — the paper's [sum(B) = δ(B)] on a bag of integer-bags. *)
let sum e = Destroy e

(** [average e]: on a bag of integer-bags, returns the integer-bag
    [sum/count] when the division is exact, and the empty bag otherwise.
    Built exactly in the spirit of the paper's [average] formula: powerset
    the sum to generate all candidate integers [j], keep those with
    [j * count = sum], and unwrap with [δ]. *)
let average e =
  let b = fresh_var "avg_in" and x = fresh_var "avg_cand" in
  Let
    ( b,
      e,
      Destroy
        (Select
           ( x,
             proj_attrs [ 1 ] (Product (Var x, ones (Var b))),
             sum (Var b),
             Powerset (sum (Var b)) )) )

(** [floor_average e]: like {!average} but rounding down — selects the
    unique [j] with [j*c <= s < (j+1)*c] using two monus tests. *)
let floor_average e =
  let b = fresh_var "favg_in" and x = fresh_var "favg_cand" in
  let c = ones (Var b) and s = sum (Var b) in
  let j_times_c = proj_attrs [ 1 ] (Product (Var x, c)) in
  let empty_nat = Lit (Value.bag_of_assoc [], nat_ty) in
  (* j*c <= s  and  (s - j*c) - (c - 1) = 0, i.e. s - j*c < c *)
  let le_test = Select (x, Diff (j_times_c, s), empty_nat, Powerset s) in
  let lt_test =
    Select
      ( x,
        Diff (Diff (s, j_times_c), Diff (c, nat_lit 1)),
        empty_nat,
        le_test )
  in
  Let (b, e, Destroy lt_test)

(** {1 The data definition language (§3)}

    "All bags can be defined with atomic constants, and the four operations:
    tupling τ, bagging β, additive union ∪+, and Cartesian product ×." *)

(** [value_expr v]: an expression denoting [v] built from atom literals and
    [τ]/[β]/[∪+] only (multiplicities by binary doubling, so the expression
    is polylogarithmic in the counts). *)
let rec value_expr (v : Value.t) : Expr.t =
  match Value.view v with
  | Value.Atom a -> Expr.atom a
  | Value.Tuple vs -> Tuple (List.map value_expr vs)
  | Value.Bag pairs ->
      let scaled (x, count) =
        (* count * {{x}} via doubling *)
        let sing = Sing (value_expr x) in
        let rec go count =
          if Bignat.is_one count then sing
          else
            let half_doubled =
              let h = go (Bignat.div count Bignat.two) in
              UnionAdd (h, h)
            in
            if Bignat.is_even count then half_doubled
            else UnionAdd (sing, half_doubled)
        in
        go count
      in
      (match List.map scaled pairs with
      | [] ->
          (* the empty bag needs a type; β then − of itself is the only
             DDL-adjacent form, so fall back to a typed literal *)
          Expr.Lit (v, Option.value (Value.infer v) ~default:(Ty.Bag Ty.Atom))
      | first :: rest -> List.fold_left (fun acc e -> UnionAdd (acc, e)) first rest)

(** {1 Cardinality comparison and generalized quantifiers (§4)} *)

(** Example 4.2 verbatim: [π1(R×R) − π1(R×S)] is nonempty iff [|R| > |S|]
    (for unary [R], [S]). *)
let card_gt_paper r s =
  Diff (proj_attrs [ 1 ] (Product (r, r)), proj_attrs [ 1 ] (Product (r, s)))

(** Cardinality comparison for bags of any element type:
    nonempty iff [card r > card s]. *)
let card_gt r s = Diff (ones r, ones s)

(** Empty iff [card r = card s] (the Härtig quantifier, negated). *)
let card_neq r s = UnionAdd (Diff (ones r, ones s), Diff (ones s, ones r))

(** Nonempty iff [card e >= k] (the counting quantifier "there exist at
    least k"). *)
let has_at_least k e =
  if k <= 0 then invalid_arg "Derived.has_at_least: k must be positive";
  Diff (ones e, nat_lit (k - 1))

(** Example 4.1 verbatim: nonempty iff the in-degree of node [a] in the
    binary edge relation [g] exceeds its out-degree. *)
let indeg_gt_outdeg g node =
  let x = fresh_var "deg" and y = fresh_var "deg" in
  Diff
    ( proj_attrs [ 2 ] (Select (x, Proj (2, Var x), node, g)),
      proj_attrs [ 1 ] (Select (y, Proj (1, Var y), node, g)) )

(** {1 Parity in the presence of an order (§4)}

    [parity_even r leq] is nonempty iff the unary relation [r] (a set) has
    even cardinality, given [leq], the reflexive total order on the elements
    of [r] as a binary relation.  It is the paper's expression: there is an
    [x] such that #[{y <= x}] = #[{y > x}]. *)
let parity_even r leq =
  let rv = fresh_var "par_r" and lv = fresh_var "par_leq" in
  let x = fresh_var "par_x" and p = fresh_var "par_p" and u = fresh_var "par_u" in
  let id_rel = Map (u, Tuple [ Proj (1, Var u); Proj (1, Var u) ], Var rv) in
  let lt = Diff (Var lv, id_rel) in
  let smaller_eq =
    ones (Select (p, Proj (2, Var p), Proj (1, Var x), Var lv))
  in
  let greater = ones (Select (p, Proj (1, Var p), Proj (1, Var x), lt)) in
  Let (rv, r, Let (lv, leq, Select (x, smaller_eq, greater, Var rv)))

(** {1 Operator inter-definability (§3)} *)

(** Additive union from maximal union (needs two atoms absent from the
    data): [π1..k((B1 × {{<t1>}}) ∪ (B2 × {{<t2>}}))]. *)
let unionadd_via_max ~arity b1 b2 =
  let tag s =
    Lit
      ( Value.bag_of_assoc [ (Value.tuple [ Value.atom s ], Bignat.one) ],
        Ty.Bag (Ty.Tuple [ Ty.Atom ]) )
  in
  let keep = List.init arity (fun i -> i + 1) in
  proj_attrs keep
    (UnionMax (Product (b1, tag "%tag1"), Product (b2, tag "%tag2")))

(** Subtraction from powerset (§3): [B1 − B2 = δ(σ{_λx. x ∪+ (B1∩B2) = B1}
    (P(B1)))].  Note the intermediate bag nesting one level above the
    input's — the §4 results show this increase is unavoidable in BALG{^1}. *)
let diff_via_powerset b1 b2 =
  let v1 = fresh_var "dp1" and v2 = fresh_var "dp2" and x = fresh_var "dpx" in
  Let
    ( v1,
      b1,
      Let
        ( v2,
          b2,
          Destroy
            (Select
               ( x,
                 UnionAdd (Var x, Inter (Var v1, Var v2)),
                 Var v1,
                 Powerset (Var v1) )) ) )

(** Duplicate elimination from powerset, flat-tuple-bag case (Prop 3.1):
    [ε(B) = δ(P(B) ∩ MAP{_β}(B))]. *)
let dedup_via_powerset_flat b =
  let v = fresh_var "epf" and x = fresh_var "epx" in
  Let
    ( v,
      b,
      Destroy (Inter (Powerset (Var v), Map (x, Sing (Var x), Var v))) )

(** Duplicate elimination from powerset, nested-bag case (Prop 3.1):
    [ε(B) = P(δ(B)) ∩ B] for [B : {{{{T}}}}]. *)
let dedup_via_powerset_nested b =
  let v = fresh_var "epn" in
  Let (v, b, Inter (Powerset (Destroy (Var v)), Var v))

(** {1 Exponentiation and quantification domains (§5, §6)} *)

(** [exp2_via_powerset e]: an integer-bag of cardinality [2^(n+1)] where
    [n = card e] — the paper's [E(B) = N(P(P(N(B))))] (Theorem 6.1); the
    doubling is exponential in shape, the +1 in the exponent is harmless for
    the constructions that iterate it. *)
let exp2_via_powerset e = ones (Powerset (Powerset (ones e)))

(** [exp2_via_powerbag e]: exactly [2^n] occurrences, the Lemma 5.7 variant
    [E(B)] built from the powerbag. *)
let exp2_via_powerbag e = ones (Powerbag (ones e))

let rec iter_expr k f e = if k = 0 then e else iter_expr (k - 1) f (f e)

(** [domain ~via_powerbag i e]: the paper's [D(B) = P(E{^i}(B))] — a bag
    (set) of integer-bags representing [0 .. E^i(card e)], the bounded
    quantification domain of Theorem 5.5 / 6.1. *)
let domain ?(via_powerbag = false) i e =
  let exp2 = if via_powerbag then exp2_via_powerbag else exp2_via_powerset in
  Powerset (iter_expr i exp2 (ones e))

(** {1 Miscellaneous query builders} *)

(** Nonempty iff the (closed) value of [t] occurs in bag [b]. *)
let mem_expr t b =
  let z = fresh_var "mem" in
  Select (z, Var z, t, b)

(** The §4 self-join example [Q(B) = π{_1,4}(σ{_2=3}(B×B))] (binary [B]). *)
let selfjoin b =
  let w = fresh_var "sj" in
  proj_attrs [ 1; 4 ] (Select (w, Proj (2, Var w), Proj (3, Var w), Product (b, b)))

(** Distinct endpoints of a binary edge relation, as a unary relation. *)
let graph_nodes g =
  Dedup (UnionMax (proj_attrs [ 1 ] g, proj_attrs [ 2 ] g))

(** Relational composition [π{_1,4}(σ{_2=3}(x × g))]. *)
let compose x g =
  let w = fresh_var "cmp" in
  proj_attrs [ 1; 4 ] (Select (w, Proj (2, Var w), Proj (3, Var w), Product (x, g)))

(** {1 Nesting (§7)} *)

(** [nest_via_map ixs ~arity e]: the nest operator expressed with MAP,
    selection and duplicate elimination only — witnessing §7's remark that
    [nest] is a {e weaker} primitive than the powerset (it is definable
    without any nesting-increasing operator beyond the output type itself).
    Used as the oracle for the built-in {!Expr.Nest}. *)
let nest_via_map ixs ~arity e =
  let rest =
    List.filter (fun i -> not (List.mem i ixs)) (List.init arity (fun i -> i + 1))
  in
  let ev = fresh_var "nv_in" and x = fresh_var "nv_key" and y = fresh_var "nv_m" in
  let key_of v = Tuple (List.map (fun i -> Proj (i, Var v)) ixs) in
  let group =
    proj_attrs rest (Select (y, key_of y, Var x, Var ev))
  in
  Let
    ( ev,
      e,
      Map
        ( x,
          Tuple (List.mapi (fun j _ -> Proj (j + 1, Var x)) ixs @ [ group ]),
          Dedup (proj_attrs ixs (Var ev)) ) )

(** GROUP BY with COUNT: [group_count ixs e] maps each group key to the
    integer-bag of its group size (duplicates included) — the SQL
    GROUP-BY/COUNT shape from the paper's introduction. *)
let group_count ixs e =
  let g = fresh_var "gc" in
  let n = List.length ixs in
  Map
    ( g,
      Tuple (List.init n (fun j -> Proj (j + 1, Var g)) @ [ ones (Proj (n + 1, Var g)) ]),
      Nest (ixs, e) )

(** GROUP BY with SUM: [group_sum ixs ~of_ ~arity e] groups the
    [arity]-ary bag [e] by the attributes [ixs] and, per group, sums the
    integer-bag-valued attribute [of_] with [δ] — SQL's
    GROUP-BY/SUM, duplicates contributing multiplicatively as they must. *)
let group_sum ixs ~of_ ~arity e =
  if List.mem of_ ixs then invalid_arg "Derived.group_sum: summing a group key";
  let g = fresh_var "gs" and y = fresh_var "gsm" in
  let n = List.length ixs in
  (* position of [of_] inside the group's residual tuple *)
  let rest =
    List.filter (fun i -> not (List.mem i ixs)) (List.init arity (fun i -> i + 1))
  in
  let j' =
    match List.find_index (fun i -> i = of_) rest with
    | Some j -> j + 1
    | None -> invalid_arg "Derived.group_sum: attribute out of range"
  in
  Map
    ( g,
      Tuple
        (List.init n (fun j -> Proj (j + 1, Var g))
        @ [ Destroy (Map (y, Proj (j', Var y), Proj (n + 1, Var g))) ]),
      Nest (ixs, e) )

(** Transitive closure of a binary relation via the bounded fixpoint (§6
    end): iterates edge composition inside the bound [nodes × nodes].  Lives
    in BALG{^1} + bfix, witnessing that bounded fixpoints add expressive
    power at bounded complexity. *)
let transitive_closure g =
  let gv = fresh_var "tc_g" and x = fresh_var "tc_x" in
  Let
    ( gv,
      g,
      BFix
        ( Product (graph_nodes (Var gv), graph_nodes (Var gv)),
          x,
          Dedup (UnionMax (Var x, compose (Var x) (Var gv))),
          Dedup (Var gv) ) )
