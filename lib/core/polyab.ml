(** The polynomial abstract interpreter of Propositions 4.1 and 4.5.

    The inexpressibility proofs of §4 rest on one claim: for every BALG{^1}
    expression [e] (with duplicate elimination allowed, Prop 4.5) over a bag
    variable [B], and every tuple [t], there are a threshold [N{_t}] and a
    polynomial [P{_t}] such that on the family [B{_n}] (n occurrences of the
    single tuple [<a>]) the multiplicity of [t] in [e(B{_n})] is exactly
    [P{_t}(n)] for every [n > N{_t}].  Since such polynomials are eventually
    monotone, no BALG{^1} expression computes [bag-even], [ε] or [−] is not
    redundant, etc.

    This module {e mechanizes the claim's inductive construction}: it
    abstract-interprets an expression into the finite map
    [tuple ↦ polynomial] plus a single validity threshold, following the
    induction of the proof case by case (additive union adds polynomials,
    difference takes the eventually-positive part, products multiply,
    MAP sums over preimages, selection filters statically, ε clamps to 0/1).
    The result is validated against the concrete interpreter in the tests
    and in experiment E6. *)

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

type entries = (Value.t * Poly.t) list
(** tuple ↦ occurrence-count polynomial, no zero polynomials stored *)

type analysis = { entries : entries; threshold : int }

(* During interpretation, a variable is bound either to a concrete value
   (tuple binders of MAP / selection) or to an abstract bag. *)
type binding = Conc of Value.t | Abs of entries

type ctx = {
  input : Expr.var;  (* the bag variable interpreted as B_n *)
  mutable threshold : int;
  env : binding Eval.Env.t;
}

let bump ctx n = if n > ctx.threshold then ctx.threshold <- n

let input_tuple = Value.tuple [ Value.atom "a" ]

let merge_entries f (a : entries) (b : entries) : entries =
  let keys =
    List.sort_uniq Value.compare (List.map fst a @ List.map fst b)
  in
  List.filter_map
    (fun k ->
      let pa = Option.value ~default:Poly.zero (List.assoc_opt k a)
      and pb = Option.value ~default:Poly.zero (List.assoc_opt k b) in
      let p = f pa pb in
      if Poly.is_zero p then None else Some (k, p))
    keys

(* Eventually-positive part: the abstract counterpart of monus on counts. *)
let monus_poly ctx pa pb =
  let d = Poly.sub pa pb in
  bump ctx (Poly.sign_stable_from d);
  if Poly.limit_sign d > 0 then d else Poly.zero

let min_poly ctx pa pb =
  let s, n = Poly.compare_eventually pa pb in
  bump ctx n;
  if s <= 0 then pa else pb

let max_poly ctx pa pb =
  let s, n = Poly.compare_eventually pa pb in
  bump ctx n;
  if s >= 0 then pa else pb

type res = Abag of entries | Cval of Value.t

let as_entries = function
  | Abag e -> e
  | Cval v -> (
      match Value.view v with
      | Value.Bag pairs ->
          (* a concrete bag literal: constant polynomials *)
          List.map (fun (v, c) -> (v, Poly.const (Bigint.of_bignat c))) pairs
      | Value.Atom _ | Value.Tuple _ ->
          unsupported "expected a bag, found concrete value %s"
            (Value.to_string v))

let as_conc = function
  | Cval v -> v
  | Abag _ -> unsupported "bag-valued expression used in object position"

let rec ainterp ctx (e : Expr.t) : res =
  match e with
  | Expr.Var x when String.equal x ctx.input -> Abag [ (input_tuple, Poly.x) ]
  | Expr.Var x -> (
      match Eval.Env.find_opt x ctx.env with
      | Some (Conc v) -> Cval v
      | Some (Abs entries) -> Abag entries
      | None -> unsupported "unbound variable %s" x)
  | Expr.Lit (v, _) -> Cval v
  | Expr.Tuple es -> Cval (Value.tuple (List.map (fun e -> as_conc (ainterp ctx e)) es))
  | Expr.Proj (i, e) -> (
      let v = as_conc (ainterp ctx e) in
      match Value.view v with
      | Value.Tuple vs when i >= 1 && i <= List.length vs -> Cval (List.nth vs (i - 1))
      | _ -> unsupported "projection %d of %s" i (Value.to_string v))
  | Expr.UnionAdd (a, b) ->
      Abag (merge_entries Poly.add (as_entries (ainterp ctx a)) (as_entries (ainterp ctx b)))
  | Expr.Diff (a, b) ->
      Abag
        (merge_entries (monus_poly ctx) (as_entries (ainterp ctx a))
           (as_entries (ainterp ctx b)))
  | Expr.UnionMax (a, b) ->
      Abag
        (merge_entries (max_poly ctx) (as_entries (ainterp ctx a))
           (as_entries (ainterp ctx b)))
  | Expr.Inter (a, b) ->
      Abag
        (merge_entries (min_poly ctx) (as_entries (ainterp ctx a))
           (as_entries (ainterp ctx b)))
  | Expr.Product (a, b) ->
      let ea = as_entries (ainterp ctx a) and eb = as_entries (ainterp ctx b) in
      let cross =
        List.concat_map
          (fun (t1, p1) ->
            List.map
              (fun (t2, p2) ->
                (Value.tuple (Value.as_tuple t1 @ Value.as_tuple t2), Poly.mul p1 p2))
              eb)
          ea
      in
      (* distinct tuple pairs produce distinct concatenations only when
         arities are fixed, which typing guarantees; still coalesce. *)
      Abag
        (List.fold_left
           (fun acc (t, p) -> merge_entries Poly.add acc [ (t, p) ])
           [] cross)
  | Expr.Join (i, j, a, b) ->
      (* the Product case restricted to matching key components — exactly
         σ_{i = ka+j} applied to the abstract cross product *)
      let ea = as_entries (ainterp ctx a) and eb = as_entries (ainterp ctx b) in
      let key k t =
        match List.nth_opt (Value.as_tuple t) (k - 1) with
        | Some v -> v
        | None -> unsupported "join attribute %d of %s" k (Value.to_string t)
      in
      let cross =
        List.concat_map
          (fun (t1, p1) ->
            List.filter_map
              (fun (t2, p2) ->
                if Value.equal (key i t1) (key j t2) then
                  Some
                    ( Value.tuple (Value.as_tuple t1 @ Value.as_tuple t2),
                      Poly.mul p1 p2 )
                else None)
              eb)
          ea
      in
      Abag
        (List.fold_left
           (fun acc (t, p) -> merge_entries Poly.add acc [ (t, p) ])
           [] cross)
  | Expr.Map (x, body, e) ->
      let entries = as_entries (ainterp ctx e) in
      let images =
        List.map
          (fun (t, p) ->
            let ctx' = { ctx with env = Eval.Env.add x (Conc t) ctx.env } in
            (as_conc (ainterp ctx' body), p))
          entries
      in
      Abag
        (List.fold_left
           (fun acc (t, p) -> merge_entries Poly.add acc [ (t, p) ])
           [] images)
  | Expr.Select (x, l, r, e) ->
      let entries = as_entries (ainterp ctx e) in
      Abag
        (List.filter
           (fun (t, _) ->
             let ctx' = { ctx with env = Eval.Env.add x (Conc t) ctx.env } in
             Value.equal (as_conc (ainterp ctx' l)) (as_conc (ainterp ctx' r)))
           entries)
  | Expr.Dedup e ->
      let entries = as_entries (ainterp ctx e) in
      Abag
        (List.filter_map
           (fun (t, p) ->
             bump ctx (Poly.sign_stable_from p);
             if Poly.limit_sign p > 0 then Some (t, Poly.one) else None)
           entries)
  | Expr.Let (x, e, body) -> (
      match ainterp ctx e with
      | Cval v -> ainterp { ctx with env = Eval.Env.add x (Conc v) ctx.env } body
      | Abag entries ->
          ainterp { ctx with env = Eval.Env.add x (Abs entries) ctx.env } body)
  | Expr.Sing _ -> unsupported "bagging creates nested bags (not BALG^1)"
  | Expr.Powerset _ | Expr.Powerbag _ | Expr.Destroy _ ->
      unsupported "powerset/destroy change bag nesting (not BALG^1)"
  | Expr.Nest _ | Expr.Unnest _ ->
      unsupported "nest/unnest change bag nesting (not BALG^1)"
  | Expr.Fix _ | Expr.BFix _ -> unsupported "fixpoints are outside Prop 4.1"

(** Analyse expression [e] over the input family [B{_n} = {{<a>:n}}] named
    by [input].  @raise Unsupported outside the BALG{^1}+ε fragment. *)
let analyze ~input e =
  let ctx = { input; threshold = 0; env = Eval.Env.empty } in
  let entries = as_entries (ainterp ctx e) in
  { entries; threshold = ctx.threshold }

(** Predicted multiplicity of tuple [t] at input size [n] (valid for
    [n > threshold]). *)
let predicted_count analysis t ~n =
  match List.assoc_opt t analysis.entries with
  | None -> Bignat.zero
  | Some p -> (
      match Bigint.to_bignat_opt (Poly.eval_int p n) with
      | Some c -> c
      | None ->
          (* negative prediction inside the validity region would be a bug *)
          invalid_arg "Polyab.predicted_count: negative count")

(** Compare the abstract prediction against the concrete evaluator on
    [B{_n}]; sound only for [n > analysis.threshold]. *)
let agrees_with_eval ~input e analysis ~n =
  let bn = Value.replicate (Bignat.of_int n) input_tuple in
  let v = Eval.eval (Eval.env_of_list [ (input, bn) ]) e in
  let concrete = Value.as_bag v in
  let predicted =
    List.filter_map
      (fun (t, p) ->
        let c = Poly.eval_int p n in
        match Bigint.to_bignat_opt c with
        | Some c when not (Bignat.is_zero c) -> Some (t, c)
        | Some _ -> None
        | None -> None)
      analysis.entries
  in
  Value.equal (Value.bag_of_assoc concrete) (Value.bag_of_assoc predicted)

(** The structural consequence used by Prop 4.5: every output count is a
    polynomial, hence eventually monotone; [bag-even] (count alternating
    between [n] and [0]) is therefore not expressible.  For a given analysis
    and tuple, report the polynomial. *)
let polynomial_of analysis t = List.assoc_opt t analysis.entries
