(** Cost-based plan optimisation: property-driven rewrites between
    [check] and evaluation.

    Three optimiser-specific rewrite families — dead-column pruning
    through [MAP]/π/[nest], extraction of keyed hash joins
    ({!Expr.Join}) from selection-over-product shapes, and
    selection/aggregate pushdown through [MAP] — run together with the
    sound laws of {!Rewrite}.  In {!Cost} mode each candidate is gated by
    a cost model over {!Props} estimates with per-engine kernel
    constants; {!Rules} applies everything unconditionally; {!Off} is the
    identity.  Optimised plans are bit-identical to the originals on both
    engines (property-tested in [test/test_opt.ml]).

    The [opt.rewrite] fault site aborts the remaining planning work when
    it fires, shipping the expression as-is: an armed optimiser can lose
    speed but never correctness. *)

type mode = Off | Rules | Cost

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

val default_mode : unit -> mode
(** [BALG_OPT] env var ([off]/[rules]/[cost]); unknown values and an
    unset variable mean {!Off}. *)

val invert_cost : bool ref
(** Test-only: invert the cost objective so only cost-{e increasing}
    rewrites are accepted.  The bench gate's self-test uses this to prove
    a deliberately-miscosted planner trips the regression gate. *)

val rules : Rewrite.rule list
(** The optimiser-specific families, each named for the decision log:
    [join-extract], [select-through-proj], [prune-map-product],
    [prune-nest-keys], [ones-pushdown]. *)

val cost : ?vals:(string * Value.t) list -> Veval.engine -> Typecheck.env -> Expr.t -> float
(** Estimated execution cost: per-node kernel work charged against
    {!Props} row estimates, with cheaper constants for shapes the
    vectorized engine runs as flat-array kernels.  Row estimates consult
    the ambient {!Calib.current} correction factors (fed by
    [explain --analyze] via [BALG_CALIB]), so a measured calibration
    shifts costs — and possibly plan choices — while every candidate
    rewrite stays sound: results are bit-identical with or without
    calibration. *)

(** One candidate rewrite considered by the planner. *)
type decision = {
  d_rule : string;
  d_before : Expr.t;
  d_after : Expr.t;
  d_cost_before : float;
  d_cost_after : float;
  d_accepted : bool;
}

(** What the planner did, for [balgi explain]. *)
type report = {
  r_mode : mode;
  r_engine : Veval.engine;
  r_input : Expr.t;
  r_output : Expr.t;
  r_input_cost : float;
  r_output_cost : float;
  r_input_props : Props.t;
  r_output_props : Props.t;
  r_decisions : decision list;
  r_faulted : bool;  (** the [opt.rewrite] fault cut planning short *)
}

val optimize :
  ?vals:(string * Value.t) list ->
  ?engine:Veval.engine ->
  mode ->
  Typecheck.env ->
  Expr.t ->
  Expr.t * report
(** Rewrite to a (bounded) fixpoint, recording every accepted and
    rejected candidate.  [vals] feeds actual relation contents to the
    property inference for exact leaf cardinalities. *)

val prepare :
  ?vals:(string * Value.t) list ->
  ?engine:Veval.engine ->
  mode ->
  Typecheck.env ->
  Expr.t ->
  Expr.t
(** {!optimize} for the evaluation path: never raises — any planning
    failure returns the expression unchanged. *)

val report_to_string : report -> string
