(** The resource governor for evaluation.

    The algebra contains queries of arbitrarily high hyper-exponential
    complexity (Prop 3.2, Thm 6.2), so a production evaluator must {e govern}
    resources rather than hope a guard fires in time.  A {!t} is a running
    account against a set of {!limits}: step fuel (abstract work units —
    one per compiled-closure invocation plus one per distinct element of
    every materialised intermediate bag, with [P]/[Pb] charged for their
    expected output {e before} materialisation), a bound on the encoded
    size of any intermediate value (via the O(1) {!Value.size_tag}), a
    bound on materialised support, a bound on multiplicity digits, a
    fixpoint step bound, and an optional wall-clock deadline.

    Exhaustion is reported as a structured {!exhaustion} record naming the
    resource, the evaluator node (id and operator label) where the account
    ran dry, and the spent/limit figures — the evaluator's [run] entry
    point returns it as an [Error], replacing the ad-hoc [Bag.Too_large]
    guard with a located, machine-readable verdict. *)

type resource =
  | Fuel  (** step fuel: closure invocations + materialised support *)
  | Support  (** distinct elements of a single intermediate bag *)
  | Size  (** encoded-size tag of an intermediate value *)
  | Count_digits  (** decimal digits of a single multiplicity *)
  | Fix_steps  (** iterations of one [Fix]/[BFix] loop *)
  | Deadline  (** wall-clock milliseconds since {!start} *)
  | Cancelled  (** {!cancel} was called (Ctrl-C, a client gone away) *)
  | Injected  (** a {!Fault} injection site fired; [op] names the site *)

val resource_to_string : resource -> string

type limits = {
  fuel : int;  (** total step fuel; [max_int] = unlimited *)
  max_support : int;  (** bound on distinct elements per bag *)
  max_size : int;  (** bound on {!Value.size_tag} of any result *)
  max_count_digits : int;  (** bound on decimal digits of any multiplicity *)
  max_fix_steps : int;  (** bound on fixpoint iterations *)
  deadline_s : float option;  (** wall-clock seconds from {!start} *)
}

val unlimited : limits
(** Every bound at [max_int], no deadline. *)

val default : limits
(** The evaluator's historical tractability guard: support 2,000,000,
    10,000 multiplicity digits, 100,000 fixpoint steps; fuel, size and
    deadline unlimited. *)

type exhaustion = {
  resource : resource;
  at_node : int;  (** compiled-closure node id (preorder, 1-based) *)
  op : string;  (** {!Expr.op_name} of that node *)
  spent : int;  (** account balance when the limit was crossed *)
  limit : int;
}

exception Budget_exceeded of exhaustion
(** Internal control-flow signal; the evaluator catches it at the API
    boundary and returns the payload as an [Error].  Never escapes
    [Eval.run]. *)

val exhaustion_to_string : exhaustion -> string

type t
(** A running account.  One [t] governs one evaluation.  The accounts are
    {!Atomic.t} counters: domains of a parallel evaluation charge the same
    shared account, and the fuel limit cuts the whole computation off at
    the same total spend as a sequential run. *)

val create : limits -> t
(** Open the account with the deadline clock {e unarmed}: fuel, support
    and the other bounds are live immediately, but every deadline probe
    passes until {!arm} starts the clock.  This is the constructor for
    work that may {e wait} before it runs — a request parked in an
    admission queue must not burn wall-clock deadline it never got to
    spend on evaluation. *)

val arm : t -> unit
(** Start the deadline clock now ([deadline_s] counts from this call).
    Idempotent; the first call wins.  Must happen-before evaluation on
    the domain that will charge the account (the same discipline as
    handing the account to a pool). *)

val armed : t -> bool

val start : limits -> t
(** [create] + [arm]: open the account with the deadline clock already
    running — the right constructor when evaluation begins immediately. *)

val limits : t -> limits
val fuel_spent : t -> int

val verdict : t -> exhaustion option
(** The published exhaustion verdict, if any domain has tripped the
    account.  Under parallel evaluation several domains can exhaust
    concurrently; the stored verdict is kept at the {e smallest} preorder
    node id, so the reported location is deterministic. *)

val cancel : t -> unit
(** Cooperatively cancel the evaluation this account governs: publishes a
    {!Cancelled} verdict (unless a verdict already exists) that every
    domain observes at its next fuel charge and unwinds from — the hook a
    SIGINT handler or a disconnecting client calls.  Safe from a signal
    handler or another domain; idempotent. *)

val cancelled : t -> bool
(** True iff the published verdict is a {!Cancelled} one. *)

val exceeded : t -> resource -> node:int -> op:string -> spent:int -> limit:int -> 'a
(** Publish the verdict (minimum node id wins) and raise
    {!Budget_exceeded} for this account. *)

val charge : t -> node:int -> op:string -> int -> unit
(** Spend [n] fuel units attributed to the given node.  Saturating; checks
    the wall-clock deadline every few dozen charges, and consults the
    published verdict — so a {!cancel} (or another domain's exhaustion)
    unwinds this domain at its next charge.
    @raise Budget_exceeded on fuel exhaustion, a passed deadline, or an
    already-published verdict. *)

val check_deadline : t -> node:int -> op:string -> unit
(** Unconditional deadline check (used at fixpoint iterations and before
    powerset materialisation, where single steps can be long). *)

val check_support : t -> node:int -> op:string -> int -> unit
val check_size : t -> node:int -> op:string -> int -> unit
val check_count_digits : t -> node:int -> op:string -> int -> unit
val check_fix_steps : t -> node:int -> op:string -> int -> unit
