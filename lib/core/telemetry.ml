(* Per-operator evaluation telemetry; see telemetry.mli. *)

type span = {
  id : int;
  op : string;
  mutable invocations : int;
  mutable steps : int;
  mutable time_s : float;
  mutable alloc_words : float;
  mutable peak_support : int;
  mutable peak_size : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable children : span list;
}

type t = {
  tbl : (int, span) Hashtbl.t;
  mutable rev_roots : span list;
}

let create () = { tbl = Hashtbl.create 64; rev_roots = [] }

let fresh_span id op =
  {
    id;
    op;
    invocations = 0;
    steps = 0;
    time_s = 0.;
    alloc_words = 0.;
    peak_support = 0;
    peak_size = 0;
    memo_hits = 0;
    memo_misses = 0;
    children = [];
  }

let register t ~parent ~id ~op =
  let sp = fresh_span id op in
  Hashtbl.replace t.tbl id sp;
  (match Hashtbl.find_opt t.tbl parent with
  | Some p -> p.children <- sp :: p.children
  | None -> t.rev_roots <- sp :: t.rev_roots);
  sp

let roots t = List.rev t.rev_roots
let iter t f = Hashtbl.iter (fun _ sp -> f sp) t.tbl

let add_steps sp n = sp.steps <- sp.steps + n

let record_result sp ~support ~size =
  if support > sp.peak_support then sp.peak_support <- support;
  if size > sp.peak_size then sp.peak_size <- size

let record_memo_hit sp = sp.memo_hits <- sp.memo_hits + 1
let record_memo_miss sp = sp.memo_misses <- sp.memo_misses + 1

(* ------------------------------------------------------------------ *)
(* Shards: per-domain counter tables for parallel evaluation.  A task
   running on a worker domain records into its own shard (domain-local, no
   locks); the evaluator merges shards into the parent shard — or, at the
   top, into the registered span tree — when the parallel region joins.
   Merging adds the additive counters and maxes the peaks, so the
   steps == fuel invariant survives any interleaving. *)

type shard = (int, span) Hashtbl.t

let shard () : shard = Hashtbl.create 16

let shard_span (sh : shard) ~id ~op =
  match Hashtbl.find_opt sh id with
  | Some sp -> sp
  | None ->
      let sp = fresh_span id op in
      Hashtbl.add sh id sp;
      sp

let merge_counters ~into:dst src =
  dst.invocations <- dst.invocations + src.invocations;
  dst.steps <- dst.steps + src.steps;
  dst.time_s <- dst.time_s +. src.time_s;
  dst.alloc_words <- dst.alloc_words +. src.alloc_words;
  if src.peak_support > dst.peak_support then dst.peak_support <- src.peak_support;
  if src.peak_size > dst.peak_size then dst.peak_size <- src.peak_size;
  dst.memo_hits <- dst.memo_hits + src.memo_hits;
  dst.memo_misses <- dst.memo_misses + src.memo_misses

let merge_shard_into_shard (dst : shard) (src : shard) =
  Hashtbl.iter
    (fun id sp -> merge_counters ~into:(shard_span dst ~id ~op:sp.op) sp)
    src

let merge_shard t (sh : shard) =
  Hashtbl.iter
    (fun id sp ->
      match Hashtbl.find_opt t.tbl id with
      | Some main -> merge_counters ~into:main sp
      | None -> () (* span not registered: compile ran without this sink *))
    sh

let fold t f init =
  Hashtbl.fold (fun _ sp acc -> f acc sp) t.tbl init

let total_steps t = fold t (fun acc sp -> acc + sp.steps) 0
let total_invocations t = fold t (fun acc sp -> acc + sp.invocations) 0

type agg = {
  a_op : string;
  a_spans : int;
  a_invocations : int;
  a_steps : int;
  a_time_s : float;
  a_alloc_words : float;
  a_peak_support : int;
  a_memo_hits : int;
  a_memo_misses : int;
}

type sort = By_steps | By_time | By_alloc

(* Collapse "var x" / "let x" / "nest [..]" labels to their family for the
   per-operator table; the span tree keeps the full label. *)
let family op =
  match String.index_opt op ' ' with
  | Some i -> String.sub op 0 i
  | None -> op

let per_op ?(sort = By_steps) t =
  let tbl = Hashtbl.create 16 in
  iter t (fun sp ->
      let key = family sp.op in
      let a =
        match Hashtbl.find_opt tbl key with
        | Some a -> a
        | None ->
            let a =
              ref
                {
                  a_op = key;
                  a_spans = 0;
                  a_invocations = 0;
                  a_steps = 0;
                  a_time_s = 0.;
                  a_alloc_words = 0.;
                  a_peak_support = 0;
                  a_memo_hits = 0;
                  a_memo_misses = 0;
                }
            in
            Hashtbl.add tbl key a;
            a
      in
      a :=
        {
          !a with
          a_spans = !a.a_spans + 1;
          a_invocations = !a.a_invocations + sp.invocations;
          a_steps = !a.a_steps + sp.steps;
          a_time_s = !a.a_time_s +. sp.time_s;
          a_alloc_words = !a.a_alloc_words +. sp.alloc_words;
          a_peak_support = max !a.a_peak_support sp.peak_support;
          a_memo_hits = !a.a_memo_hits + sp.memo_hits;
          a_memo_misses = !a.a_memo_misses + sp.memo_misses;
        });
  let key a =
    match sort with
    | By_steps -> float_of_int a.a_steps
    | By_time -> a.a_time_s
    | By_alloc -> a.a_alloc_words
  in
  Hashtbl.fold (fun _ a acc -> !a :: acc) tbl []
  |> List.sort (fun a b ->
         match Float.compare (key b) (key a) with
         | 0 -> compare a.a_op b.a_op
         | c -> c)

let pp_time ppf s =
  if s < 1e-6 then Format.fprintf ppf "%.0fns" (s *. 1e9)
  else if s < 1e-3 then Format.fprintf ppf "%.1fus" (s *. 1e6)
  else if s < 1. then Format.fprintf ppf "%.1fms" (s *. 1e3)
  else Format.fprintf ppf "%.2fs" s

let rec pp_span ?(trace = false) ~indent ppf sp =
  Format.fprintf ppf "%s%-16s #%-3d calls=%-6d steps=%-8d peak support=%d"
    (String.make indent ' ') sp.op sp.id sp.invocations sp.steps
    sp.peak_support;
  if trace then begin
    Format.fprintf ppf "  time=%a  alloc=%.0fw" pp_time sp.time_s
      sp.alloc_words;
    if sp.memo_hits + sp.memo_misses > 0 then
      Format.fprintf ppf "  memo=%d/%d" sp.memo_hits
        (sp.memo_hits + sp.memo_misses)
  end;
  Format.pp_print_newline ppf ();
  List.iter (pp_span ~trace ~indent:(indent + 2) ppf) (List.rev sp.children)

let pp_tree ?(trace = false) ppf t =
  List.iter (pp_span ~trace ~indent:0 ppf) (roots t)

let to_string ?trace t = Format.asprintf "%a" (pp_tree ?trace) t

let summary_json t =
  let peak = fold t (fun acc sp -> max acc sp.peak_support) 0 in
  let hits = fold t (fun acc sp -> acc + sp.memo_hits) 0 in
  let misses = fold t (fun acc sp -> acc + sp.memo_misses) 0 in
  Printf.sprintf
    "{\"steps\": %d, \"invocations\": %d, \"spans\": %d, \"peak_support\": \
     %d, \"memo_hits\": %d, \"memo_misses\": %d}"
    (total_steps t) (total_invocations t) (Hashtbl.length t.tbl) peak hits
    misses
