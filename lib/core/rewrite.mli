(** Algebraic rewriting: the §3 laws as bag-sound rules, plus the [CV93]
    set-only rules that the paper warns about.

    Rules are applied bottom-up to a fixpoint by {!normalize}.  Soundness of
    the default rule set is property-tested against the interpreter; the
    {!set_only_rules} preserve set semantics but change multiplicities —
    experiment E18 shows the randomized equivalence checker catching them. *)

type rule = {
  name : string;
  applies : Typecheck.env -> Expr.t -> Expr.t option;
      (** [Some e'] when the rule rewrites the given node *)
}

val expr_compare : Expr.t -> Expr.t -> int
(** Structural total order on expressions (used to orient AC operators). *)

val arity_of : Typecheck.env -> Expr.t -> int option
(** Tuple width of a flat bag-of-tuples expression, [None] when the type
    is something else or does not infer (e.g. under an unrecorded binder). *)

val map_children : (Expr.t -> Expr.t) -> Expr.t -> Expr.t
(** Rebuild a node with [f] applied to each immediate subexpression
    (binders untouched) — the traversal step shared with {!Opt}. *)

(** {1 Bag-sound rules} *)

val rule_comm_unionadd : rule
val rule_comm_unionmax : rule
val rule_comm_inter : rule
val rule_assoc_unionadd : rule

val rule_idempotent : rule
(** [e ∩ e → e], [e ∪ e → e], [ε ε → ε], [ε P → P]. *)

val rule_self_difference : rule
val rule_empty_units : rule
val rule_destroy_sing : rule

val rule_unnest_nest : rule
(** [unnest(nest)] with prefix keys is the identity. *)

val rule_map_identity : rule
val rule_map_fusion : rule

val rule_select_pushdown : rule
(** Push a selection into the product operand its condition touches —
    sound for bags because multiplicities factor through the product. *)

val sound_rules : rule list

(** {1 Set-only rules (deliberately bag-unsound, [CV93])} *)

val rule_selfproduct_elim_setonly : rule
(** [π{_1..k}(R × R) → R]: conjunctive-query minimisation, an identity on
    sets, wrong on bags. *)

val rule_dedup_elim_setonly : rule

val set_only_rules : rule list

(** {1 Driving} *)

val normalize :
  ?rules:rule list ->
  ?max_passes:int ->
  Typecheck.env ->
  Expr.t ->
  Expr.t * string list
(** Rewrite to a fixpoint (bounded); returns the normal form and the names
    of the rule applications performed, in order. *)
