(* Segmented flat vectors: bags laid out column-wise for the vectorized
   engine (see vec.mli for the representation contract).

   Design rules that keep the kernels simple and bit-compatible with the
   tree evaluator:

   - Atoms are interned to dense integer codes in one global table, so
     equality and hashing of atom cells are machine-int operations and a
     code from one vector compares meaningfully against any other.
   - Rows are NOT kept distinct or sorted.  Every kernel is free to emit
     duplicate rows in any order; [to_value] (and the kernels that need
     per-distinct-row totals) coalesce by hashing codes.  Canonical order
     is restored exactly once, by [Value.bag_of_assoc] at the boundary,
     which is why chunked parallel slices recombine bit-identically.
   - Inner bag segments ARE kept canonical (Value.compare order, coalesced,
     positive counts): [of_value] imports canonical bags and [nest] — the
     only kernel that builds new segments — sorts and coalesces, so
     nested-bag cells compare by an aligned segment walk. *)

exception Unsupported of string

let unsupported msg = raise (Unsupported msg)

(* Pre-materialisation injection point: every kernel that allocates output
   columns passes through here (the vectorized sibling of [bag.alloc]). *)
let alloc_site = Fault.register "vec.alloc"

(* ------------------------------------------------------------------ *)
(* Atom interning.  Writers serialise on [intern_mu]; [decode] reads the
   current array snapshot without the lock — a code only becomes visible
   to another domain through a synchronising hand-off (Pool.run join), by
   which point the slot it names is published. *)

let intern_mu = Mutex.create ()
let intern_tbl : (string, int) Hashtbl.t = Hashtbl.create 1024
let intern_names : string array ref = ref (Array.make 1024 "")
let intern_n = ref 0

let intern s =
  Mutex.protect intern_mu (fun () ->
      match Hashtbl.find_opt intern_tbl s with
      | Some c -> c
      | None ->
          let c = !intern_n in
          let cap = Array.length !intern_names in
          if c = cap then begin
            let bigger = Array.make (2 * cap) "" in
            Array.blit !intern_names 0 bigger 0 cap;
            intern_names := bigger
          end;
          !intern_names.(c) <- s;
          incr intern_n;
          Hashtbl.add intern_tbl s c (* domain-local: writes serialised on intern_mu *);
          c)

let decode c = !intern_names.(c)

(* A per-conversion memo in front of the global table: repeated atoms in
   one bag pay the mutex once. *)
let memo_interner () =
  let local = Hashtbl.create 64 in
  fun s ->
    match Hashtbl.find_opt local s with
    | Some c -> c
    | None ->
        let c = intern s in
        Hashtbl.add local s c (* domain-local: fresh memo per conversion *);
        c

(* ------------------------------------------------------------------ *)
(* Count columns: small machine ints with a sparse Bignat spill.  A slot
   holds the multiplicity when >= 0; [spilled] marks an entry whose exact
   value lives in the spill table.  A count is spilled iff it does not fit
   an [int], so representation is a function of the value — equal counts
   always have equal representations. *)

type counts = { small : int array; spill : (int, Bignat.t) Hashtbl.t }

let spilled = -1

let cnt_make n = { small = Array.make n 0; spill = Hashtbl.create 0 }
let cnt_ones n = { small = Array.make n 1; spill = Hashtbl.create 0 }

let cnt_get c i =
  let m = c.small.(i) in
  if m >= 0 then Bignat.of_int m else Hashtbl.find c.spill i

let cnt_set c i b =
  match Bignat.to_int_opt b with
  | Some m -> c.small.(i) <- m
  | None ->
      c.small.(i) <- spilled;
      Hashtbl.replace c.spill i b (* domain-local: spill of a fresh counts value *)

let cnt_hash c i =
  let m = c.small.(i) in
  if m >= 0 then m else Bignat.hash (Hashtbl.find c.spill i)

let cnt_eq ca i cb j =
  let a = ca.small.(i) and b = cb.small.(j) in
  if a >= 0 then a = b
  else b < 0 && Bignat.equal (Hashtbl.find ca.spill i) (Hashtbl.find cb.spill j)

(* Mirrors Bignat.compare; a spilled count exceeds every small one. *)
let cnt_compare ca i cb j =
  let a = ca.small.(i) and b = cb.small.(j) in
  if a >= 0 && b >= 0 then compare a b
  else if a >= 0 then -1
  else if b >= 0 then 1
  else Bignat.compare (Hashtbl.find ca.spill i) (Hashtbl.find cb.spill j)

let gather_counts (c : counts) (idx : int array) : counts =
  let n = Array.length idx in
  let small = Array.make n 0 in
  let spill = Hashtbl.create 0 in
  for k = 0 to n - 1 do
    let i = idx.(k) in
    let m = c.small.(i) in
    small.(k) <- m;
    if m < 0 then
      Hashtbl.replace spill k (Hashtbl.find c.spill i) (* domain-local: fresh counts *)
  done;
  { small; spill }

let concat_counts (parts : counts list) : counts =
  match parts with
  | [ c ] -> c
  | _ ->
      let total = List.fold_left (fun acc c -> acc + Array.length c.small) 0 parts in
      let small = Array.make total 0 in
      let spill = Hashtbl.create 0 in
      let pos = ref 0 in
      List.iter
        (fun c ->
          let n = Array.length c.small in
          Array.blit c.small 0 small !pos n;
          Hashtbl.iter
            (fun i b ->
              Hashtbl.replace spill (!pos + i) b (* domain-local: fresh counts *))
            c.spill;
          pos := !pos + n)
        parts;
      { small; spill }

(* dst_small/dst_spill assembly slot: the write side of [cnt_set] for
   arrays still under construction. *)
let set_slot small spill k (b : Bignat.t) =
  match Bignat.to_int_opt b with
  | Some m -> small.(k) <- m
  | None ->
      small.(k) <- spilled;
      Hashtbl.replace spill k b (* domain-local: fresh counts under construction *)

(* Pairwise products cnt_a(ia.(k)) * cnt_b(ib.(k)), int fast path. *)
let mul_counts ca ia cb ib : counts =
  let n = Array.length ia in
  assert (Array.length ib = n);
  let small = Array.make n 0 in
  let spill = Hashtbl.create 0 in
  for k = 0 to n - 1 do
    let i = ia.(k) and j = ib.(k) in
    let a = ca.small.(i) and b = cb.small.(j) in
    if a >= 0 && b >= 0 then begin
      let m =
        if a = 1 then b
        else if b = 1 then a
        else if a = 0 || b = 0 then 0
        else if a <= max_int / b then a * b
        else spilled (* overflow: recompute exactly below *)
      in
      if m >= 0 then small.(k) <- m
      else set_slot small spill k (Bignat.mul (Bignat.of_int a) (Bignat.of_int b))
    end
    else set_slot small spill k (Bignat.mul (cnt_get ca i) (cnt_get cb j))
  done;
  { small; spill }

(* ------------------------------------------------------------------ *)
(* Columns.  Row counts are threaded by the owner ([t.rows] at top level,
   the segment offsets inside a bag column): a [CTuple [||]] column cannot
   recover its own length. *)

type col =
  | CAtom of int array  (** interned atom codes *)
  | CTuple of col array  (** struct-of-arrays; all columns share the rows *)
  | CBag of seg

and seg = {
  off : int array;  (** rows+1 monotone offsets into [elems] *)
  elems : col;
  ecnt : counts;  (** one multiplicity per element slot *)
}

type t = { rows : int; data : col; cnts : counts }

let rows t = t.rows

let max_count_digits t =
  let msmall = ref 0 in
  Array.iter (fun m -> if m > !msmall then msmall := m) t.cnts.small;
  let d = ref (String.length (string_of_int !msmall)) in
  Hashtbl.iter
    (fun _ b ->
      let db = Bignat.digits b in
      if db > !d then d := db)
    t.cnts.spill;
  !d

(* --- structural shape (for building and for merge compatibility) --- *)

type shape = SAny | SAtom | STuple of shape list | SBag of shape

let rec unify a b =
  match (a, b) with
  | SAny, s | s, SAny -> s
  | SAtom, SAtom -> a
  | STuple x, STuple y when List.length x = List.length y ->
      STuple (List.map2 unify x y)
  | SBag x, SBag y -> SBag (unify x y)
  | _ -> unsupported "heterogeneous bag"

let rec shape_of v =
  match Value.view v with
  | Value.Atom _ -> SAtom
  | Value.Tuple vs -> STuple (List.map shape_of vs)
  | Value.Bag pairs ->
      SBag (List.fold_left (fun acc (w, _) -> unify acc (shape_of w)) SAny pairs)

(* Same column representation: required before cross-vector merges so the
   per-cell walks line up.  (Value-level equality still decides matches —
   an all-empty-segments bag column compares equal to an empty segment of
   any element shape by the length check.) *)
let rec same_rep c1 c2 =
  match (c1, c2) with
  | CAtom _, CAtom _ -> true
  | CTuple a, CTuple b ->
      Array.length a = Array.length b
      && (let k = Array.length a in
          let rec go i = i = k || (same_rep a.(i) b.(i) && go (i + 1)) in
          go 0)
  | CBag a, CBag b -> same_rep a.elems b.elems
  | _ -> false

(* --- per-cell operations ------------------------------------------- *)

let mix h k = (h * 0x01000193) lxor k

(* Structural hash of one cell; equal cells (same or different vectors)
   hash equal because atom codes are global and segments are canonical. *)
let rec cell_hash (c : col) (i : int) : int =
  match c with
  | CAtom a -> (a.(i) + 1) * 0x9e3779b1 land max_int
  | CTuple cs ->
      let h = ref 0x811c9dc5 in
      Array.iter (fun comp -> h := mix !h (cell_hash comp i)) cs;
      !h land max_int
  | CBag { off; elems; ecnt } ->
      let h = ref 0x5bd1e995 in
      for k = off.(i) to off.(i + 1) - 1 do
        h := mix !h (cell_hash elems k);
        h := mix !h (cnt_hash ecnt k)
      done;
      !h land max_int

let rec cell_eq (c1 : col) (i : int) (c2 : col) (j : int) : bool =
  match (c1, c2) with
  | CAtom a, CAtom b -> a.(i) = b.(j)
  | CTuple xs, CTuple ys ->
      let k = Array.length xs in
      Array.length ys = k
      && (let rec go p = p = k || (cell_eq xs.(p) i ys.(p) j && go (p + 1)) in
          go 0)
  | CBag s1, CBag s2 ->
      (* canonical segments: equality is an aligned walk *)
      let b1 = s1.off.(i) and b2 = s2.off.(j) in
      let l = s1.off.(i + 1) - b1 in
      s2.off.(j + 1) - b2 = l
      && (let rec go p =
            p = l
            || (cell_eq s1.elems (b1 + p) s2.elems (b2 + p)
               && cnt_eq s1.ecnt (b1 + p) s2.ecnt (b2 + p)
               && go (p + 1))
          in
          go 0)
  | _ -> false

(* Total order on cells of one column, mirroring [Value.compare] exactly
   (atoms by name, tuples lexicographic, bags lexicographic on
   (element, count) pairs with length as final tiebreak) — this is the
   order [nest] sorts fresh segments into. *)
let rec cell_compare (c : col) (i : int) (j : int) : int =
  match c with
  | CAtom a -> String.compare (decode a.(i)) (decode a.(j))
  | CTuple cs ->
      let k = Array.length cs in
      let rec go p =
        if p = k then 0
        else
          let cv = cell_compare cs.(p) i j in
          if cv <> 0 then cv else go (p + 1)
      in
      go 0
  | CBag { off; elems; ecnt } ->
      let bi = off.(i) and bj = off.(j) in
      let li = off.(i + 1) - bi and lj = off.(j + 1) - bj in
      let rec go p =
        if p = li && p = lj then 0
        else if p = li then -1
        else if p = lj then 1
        else
          let cv = cell_compare elems (bi + p) (bj + p) in
          if cv <> 0 then cv
          else
            let cc = cnt_compare ecnt (bi + p) ecnt (bj + p) in
            if cc <> 0 then cc else go (p + 1)
      in
      go 0

(* --- gather / concat ----------------------------------------------- *)

let rec gather_col (c : col) (idx : int array) : col =
  match c with
  | CAtom a -> CAtom (Array.map (fun i -> a.(i)) idx)
  | CTuple cs -> CTuple (Array.map (fun comp -> gather_col comp idx) cs)
  | CBag { off; elems; ecnt } ->
      let n = Array.length idx in
      let off' = Array.make (n + 1) 0 in
      for k = 0 to n - 1 do
        let i = idx.(k) in
        off'.(k + 1) <- off'.(k) + off.(i + 1) - off.(i)
      done;
      let total = off'.(n) in
      let sub = Array.make total 0 in
      let pos = ref 0 in
      for k = 0 to n - 1 do
        let i = idx.(k) in
        for p = off.(i) to off.(i + 1) - 1 do
          sub.(!pos) <- p;
          incr pos
        done
      done;
      CBag { off = off'; elems = gather_col elems sub; ecnt = gather_counts ecnt sub }

let rec concat_cols (parts : col list) : col =
  match parts with
  | [] -> CAtom [||]
  | [ c ] -> c
  | proto :: _ -> (
      match proto with
      | CAtom _ ->
          CAtom
            (Array.concat
               (List.map
                  (function CAtom a -> a | _ -> unsupported "concat: shape")
                  parts))
      | CTuple cs ->
          let k = Array.length cs in
          CTuple
            (Array.init k (fun ci ->
                 concat_cols
                   (List.map
                      (function
                        | CTuple xs when Array.length xs = k -> xs.(ci)
                        | _ -> unsupported "concat: shape")
                      parts)))
      | CBag _ ->
          let segs =
            List.map
              (function CBag s -> s | _ -> unsupported "concat: shape")
              parts
          in
          let nrows =
            List.fold_left (fun acc s -> acc + Array.length s.off - 1) 0 segs
          in
          let off = Array.make (nrows + 1) 0 in
          let row = ref 0 and shift = ref 0 in
          List.iter
            (fun s ->
              let n = Array.length s.off - 1 in
              for i = 1 to n do
                off.(!row + i) <- !shift + s.off.(i)
              done;
              row := !row + n;
              shift := !shift + s.off.(n))
            segs;
          CBag
            {
              off;
              elems = concat_cols (List.map (fun s -> s.elems) segs);
              ecnt = concat_counts (List.map (fun s -> s.ecnt) segs);
            })

let concat_vecs (parts : t list) : t =
  match parts with
  | [ v ] -> v
  | _ ->
      {
        rows = List.fold_left (fun acc v -> acc + v.rows) 0 parts;
        data = concat_cols (List.map (fun v -> v.data) parts);
        cnts = concat_counts (List.map (fun v -> v.cnts) parts);
      }

(* ------------------------------------------------------------------ *)
(* Coalescing: group equal rows by cell hash, summing counts (machine
   ints until a sum leaves [int] range).  Returns representative row
   indices in first-seen order plus the merged counts, indexed by
   representative slot. *)

let distinct_rows (t : t) : int array * counts =
  let n = t.rows in
  let tbl : (int, int list) Hashtbl.t = Hashtbl.create ((2 * n) + 1) in
  let reps = Array.make (max n 1) 0 in
  let acc_small = Array.make (max n 1) 0 in
  let acc_spill = Hashtbl.create 0 in
  let nreps = ref 0 in
  let add_into j i =
    let a = acc_small.(j) and b = t.cnts.small.(i) in
    if a >= 0 && b >= 0 && a + b >= 0 then acc_small.(j) <- a + b
    else begin
      let cur = if a >= 0 then Bignat.of_int a else Hashtbl.find acc_spill j in
      acc_small.(j) <- spilled;
      Hashtbl.replace acc_spill j (* domain-local: fresh accumulator *)
        (Bignat.add cur (cnt_get t.cnts i))
    end
  in
  for i = 0 to n - 1 do
    let h = cell_hash t.data i in
    let bucket = match Hashtbl.find_opt tbl h with Some b -> b | None -> [] in
    match List.find_opt (fun j -> cell_eq t.data reps.(j) t.data i) bucket with
    | Some j -> add_into j i
    | None ->
        let j = !nreps in
        incr nreps;
        reps.(j) <- i;
        acc_small.(j) <- t.cnts.small.(i);
        if t.cnts.small.(i) < 0 then
          Hashtbl.replace acc_spill j (* domain-local: fresh accumulator *)
            (Hashtbl.find t.cnts.spill i);
        Hashtbl.replace tbl h (j :: bucket) (* domain-local: fresh table per call *)
  done;
  let m = !nreps in
  (Array.sub reps 0 m, { small = Array.sub acc_small 0 m; spill = acc_spill })

let coalesce t =
  let reps, cnts = distinct_rows t in
  { rows = Array.length reps; data = gather_col t.data reps; cnts }

(* ------------------------------------------------------------------ *)
(* Boundary conversions. *)

(* Build a column for [vals] of the given unified shape. *)
let rec build_shaped im shape (vals : Value.t array) (n : int) : col =
  match shape with
  | SAny -> CAtom [||] (* only reachable with n = 0 *)
  | SAtom ->
      CAtom
        (Array.map
           (fun v ->
             match Value.view v with
             | Value.Atom s -> im s
             | _ -> unsupported "shape: expected atom")
           vals)
  | STuple shs ->
      CTuple
        (Array.of_list
           (List.mapi
              (fun ci sh ->
                let comp =
                  Array.map (fun v -> List.nth (Value.as_tuple v) ci) vals
                in
                build_shaped im sh comp n)
              shs))
  | SBag esh ->
      let off = Array.make (n + 1) 0 in
      Array.iteri
        (fun i v ->
          match Value.view v with
          | Value.Bag pairs -> off.(i + 1) <- off.(i) + List.length pairs
          | _ -> unsupported "shape: expected bag")
        vals;
      let total = off.(n) in
      let evals = Array.make total Value.empty_bag in
      let ecnt = cnt_make total in
      Array.iteri
        (fun i v ->
          match Value.view v with
          | Value.Bag pairs ->
              List.iteri
                (fun k (w, c) ->
                  let p = off.(i) + k in
                  evals.(p) <- w;
                  cnt_set ecnt p c)
                pairs
          | _ -> assert false)
        vals;
      CBag { off; elems = build_shaped im esh evals total; ecnt }

let of_value v =
  Fault.inject alloc_site;
  match Value.view v with
  | Value.Bag pairs ->
      let n = List.length pairs in
      let vals = Array.make (max n 1) Value.empty_bag in
      let cnts = cnt_make n in
      List.iteri
        (fun i (w, c) ->
          vals.(i) <- w;
          cnt_set cnts i c)
        pairs;
      let vals = if n = Array.length vals then vals else Array.sub vals 0 n in
      let shape =
        Array.fold_left (fun acc w -> unify acc (shape_of w)) SAny vals
      in
      { rows = n; data = build_shaped (memo_interner ()) shape vals n; cnts }
  | _ -> unsupported "of_value: not a bag"

(* Decode one cell back to a boxed value.  [cache] maps atom codes to their
   (hash-tagged) Value so repeated atoms share one allocation; segments are
   canonical by invariant, so the trusted constructor applies. *)
let rec cell_value cache (c : col) (i : int) : Value.t =
  match c with
  | CAtom a -> (
      let code = a.(i) in
      match Hashtbl.find_opt cache code with
      | Some v -> v
      | None ->
          let v = Value.atom (decode code) in
          Hashtbl.add cache code v (* domain-local: fresh decode cache *);
          v)
  | CTuple cs ->
      Value.tuple (Array.to_list (Array.map (fun comp -> cell_value cache comp i) cs))
  | CBag { off; elems; ecnt } ->
      Value.of_sorted_assoc
        (List.init
           (off.(i + 1) - off.(i))
           (fun k ->
             let p = off.(i) + k in
             (cell_value cache elems p, cnt_get ecnt p)))

let to_value t =
  let reps, cnts = distinct_rows t in
  let cache = Hashtbl.create 64 in
  Value.bag_of_assoc
    (List.init (Array.length reps) (fun j ->
         (cell_value cache t.data reps.(j), cnt_get cnts j)))

(* ------------------------------------------------------------------ *)
(* Scalar programs (vectorized MAP bodies / σ operands). *)

type scalar =
  | SRow
  | SField of int * scalar
  | SConst of Value.t
  | SRecord of scalar list
  | SOnes of string * scalar

(* Replicate a closed value across [n] rows. *)
let broadcast v n : col =
  let vals = Array.make (max n 1) v in
  let vals = if n = Array.length vals then vals else Array.sub vals 0 n in
  let shape = if n = 0 then SAny else shape_of v in
  build_shaped (memo_interner ()) shape vals n

(* Per-row segment cardinality as a one-element bag of <atom> — the
   vectorized [ones] aggregate.  Sums stay machine ints until they leave
   [int] range. *)
let ones_col code ({ off; elems = _; ecnt } : seg) (nrows : int) : col =
  assert (Array.length off = nrows + 1);
  let sum_small = Array.make (max nrows 1) 0 in
  let sum_spill = Hashtbl.create 0 in
  for i = 0 to nrows - 1 do
    for k = off.(i) to off.(i + 1) - 1 do
      let a = sum_small.(i) and b = ecnt.small.(k) in
      if a >= 0 && b >= 0 && a + b >= 0 then sum_small.(i) <- a + b
      else begin
        let cur =
          if a >= 0 then Bignat.of_int a else Hashtbl.find sum_spill i
        in
        sum_small.(i) <- spilled;
        Hashtbl.replace sum_spill i (* domain-local: fresh accumulator *)
          (Bignat.add cur (cnt_get ecnt k))
      end
    done
  done;
  let off' = Array.make (nrows + 1) 0 in
  let m = ref 0 in
  for i = 0 to nrows - 1 do
    if sum_small.(i) <> 0 then incr m;
    off'.(i + 1) <- !m
  done;
  let m = !m in
  let small = Array.make m 0 in
  let spill = Hashtbl.create 0 in
  let p = ref 0 in
  for i = 0 to nrows - 1 do
    if sum_small.(i) <> 0 then begin
      small.(!p) <- sum_small.(i);
      if sum_small.(i) < 0 then
        Hashtbl.replace spill !p (* domain-local: fresh counts *)
          (Hashtbl.find sum_spill i);
      incr p
    end
  done;
  CBag
    {
      off = off';
      elems = CTuple [| CAtom (Array.make m code) |];
      ecnt = { small; spill };
    }

let rec eval_scalar (t : t) (s : scalar) : col =
  match s with
  | SRow -> t.data
  | SField (i, s') -> (
      match eval_scalar t s' with
      | CTuple cs when i >= 1 && i <= Array.length cs -> cs.(i - 1)
      | _ -> unsupported "projection out of range")
  | SConst v -> broadcast v t.rows
  | SRecord ss -> CTuple (Array.of_list (List.map (eval_scalar t) ss))
  | SOnes (name, s') -> (
      match eval_scalar t s' with
      | CBag seg -> ones_col (intern name) seg t.rows
      | _ -> unsupported "ones over a non-bag column")

(* ------------------------------------------------------------------ *)
(* Kernels. *)

(* Re-raise a captured task exception (kernels are pure, so the first
   error is equivalent to the sequential one). *)
let pool_run pool tasks =
  List.map (function Ok v -> v | Error e -> raise e) (Pool.run pool tasks)

(* At most [k] contiguous [lo, hi) ranges covering [0, n). *)
let ranges k n =
  if n <= 0 then []
  else begin
    let k = max 1 (min k n) in
    let q = n / k and r = n mod k in
    let rec go lo i acc =
      if i = k then List.rev acc
      else
        let len = q + if i < r then 1 else 0 in
        go (lo + len) (i + 1) ((lo, lo + len) :: acc)
    in
    go 0 0 []
  end

let tuple_cols = function
  | CTuple cs -> cs
  | _ -> unsupported "not a bag of tuples"

let expected_product_rows a b = Value.sat_mul a.rows b.rows

(* Cartesian product: two index vectors in nested-loop order, one gather
   per column, counts multiplied pairwise.  Chunks cover contiguous outer
   ranges, so the parts concatenate in sequential order. *)
let product ?pool a b =
  Fault.inject alloc_site;
  if expected_product_rows a b = max_int then
    unsupported "product: expected rows exceed int range";
  let acols = tuple_cols a.data and bcols = tuple_cols b.data in
  let rb = b.rows in
  (* Block fast path for all-atom operands: a left column repeats each
     cell [rb] times ([Array.fill] per outer row) and a right column
     tiles whole-column copies ([Array.blit] per outer row) — straight
     memset/memcpy instead of two index vectors plus per-cell gathers. *)
  let is_atom = function CAtom _ -> true | _ -> false in
  let all_atoms =
    Array.for_all is_atom acols && Array.for_all is_atom bcols
  in
  let atom_cells = function CAtom xs -> xs | _ -> assert false in
  let fast_slice (lo, hi) =
    let n = (hi - lo) * rb in
    let left c =
      let xa = atom_cells c in
      let out = Array.make (max n 1) 0 in
      for i = lo to hi - 1 do
        Array.fill out ((i - lo) * rb) rb xa.(i)
      done;
      CAtom out
    in
    let right c =
      let xb = atom_cells c in
      let out = Array.make (max n 1) 0 in
      for i = lo to hi - 1 do
        Array.blit xb 0 out ((i - lo) * rb) rb
      done;
      CAtom out
    in
    (* Pairwise count products on the (i, j) grid, without index vectors:
       a unit left count over a spill-free right block is one blit. *)
    let small = Array.make (max n 1) 0 in
    let spill = Hashtbl.create 0 in
    let b_spill_free = Hashtbl.length b.cnts.spill = 0 in
    let k = ref 0 in
    for i = lo to hi - 1 do
      let ai = a.cnts.small.(i) in
      if ai = 1 && b_spill_free then begin
        Array.blit b.cnts.small 0 small !k rb;
        k := !k + rb
      end
      else
        for j = 0 to rb - 1 do
          let bj = b.cnts.small.(j) in
          (if ai >= 0 && bj >= 0 then begin
             let m =
               if ai = 1 then bj
               else if bj = 1 then ai
               else if ai = 0 || bj = 0 then 0
               else if ai <= max_int / bj then ai * bj
               else spilled (* overflow: recompute exactly below *)
             in
             if m >= 0 then small.(!k) <- m
             else
               set_slot small spill !k
                 (Bignat.mul (Bignat.of_int ai) (Bignat.of_int bj))
           end
           else
             set_slot small spill !k
               (Bignat.mul (cnt_get a.cnts i) (cnt_get b.cnts j)));
          incr k
        done
    done;
    {
      rows = n;
      data = CTuple (Array.append (Array.map left acols) (Array.map right bcols));
      cnts = { small; spill };
    }
  in
  let slow_slice (lo, hi) =
    let n = (hi - lo) * rb in
    let ia = Array.make (max n 1) 0 and ib = Array.make (max n 1) 0 in
    (* bounds: k counts lo*rb..hi*rb-1 rebased to 0..n-1; both arrays have
       at least n slots by construction three lines up *)
    let k = ref 0 in
    for i = lo to hi - 1 do
      for j = 0 to rb - 1 do
        Array.unsafe_set ia !k i; (* bounds: !k < n, see loop note above *)
        Array.unsafe_set ib !k j; (* bounds: !k < n, same index *)
        incr k
      done
    done;
    assert (!k = n);
    let ia = if n = Array.length ia then ia else Array.sub ia 0 n in
    let ib = if n = Array.length ib then ib else Array.sub ib 0 n in
    {
      rows = n;
      data =
        CTuple
          (Array.append
             (Array.map (fun c -> gather_col c ia) acols)
             (Array.map (fun c -> gather_col c ib) bcols));
      cnts = mul_counts a.cnts ia b.cnts ib;
    }
  in
  let slice r = if all_atoms then fast_slice r else slow_slice r in
  match pool with
  | Some p
    when Pool.jobs p > 1 && a.rows >= 2
         && expected_product_rows a b >= Pool.chunk_min p ->
      let parts =
        pool_run p
          (List.map (fun r () -> slice r) (ranges (4 * Pool.jobs p) a.rows))
      in
      concat_vecs parts
  | _ -> slice (0, a.rows)

(* Keyed equijoin: σ_{i = ka+j}(a × b) without the product.  [b]'s rows
   are bucketed by the hash of their [j]-th cell (cell_hash works across
   vectors: atom codes are global, segments canonical); [a]'s rows probe
   the table and matched (left, right) index pairs drive one gather per
   column plus a pairwise count product — the same output rows the product
   kernel would build and select_scalar would keep, so [to_value] coalesces
   them to the identical canonical bag.  With a pool, probe slices cover
   contiguous ranges of [a]'s rows against the shared table, frozen
   (read-only) after the build. *)
let join ?pool i j a b =
  Fault.inject alloc_site;
  let acols = tuple_cols a.data and bcols = tuple_cols b.data in
  if i < 1 || i > Array.length acols then
    unsupported "join: left attribute out of range";
  if j < 1 || j > Array.length bcols then
    unsupported "join: right attribute out of range";
  let ka = acols.(i - 1) and kb = bcols.(j - 1) in
  let tbl : (int, int list) Hashtbl.t = Hashtbl.create ((2 * b.rows) + 1) in
  for r = b.rows - 1 downto 0 do
    let h = cell_hash kb r in
    let bucket = match Hashtbl.find_opt tbl h with Some l -> l | None -> [] in
    Hashtbl.replace tbl h (r :: bucket) (* domain-local: fresh table per call, read-only after the build loop *)
  done;
  let probe_slice (lo, hi) =
    let ia = ref [] and ib = ref [] in
    for r = lo to hi - 1 do
      match Hashtbl.find_opt tbl (cell_hash ka r) with
      | None -> ()
      | Some bucket ->
          List.iter
            (fun rb ->
              if cell_eq ka r kb rb then begin
                ia := r :: !ia;
                ib := rb :: !ib
              end)
            bucket
    done;
    let ia = Array.of_list (List.rev !ia)
    and ib = Array.of_list (List.rev !ib) in
    {
      rows = Array.length ia;
      data =
        CTuple
          (Array.append
             (Array.map (fun c -> gather_col c ia) acols)
             (Array.map (fun c -> gather_col c ib) bcols));
      cnts = mul_counts a.cnts ia b.cnts ib;
    }
  in
  match pool with
  | Some p when Pool.jobs p > 1 && a.rows >= Pool.chunk_min p ->
      let parts =
        pool_run p
          (List.map (fun r () -> probe_slice r) (ranges (4 * Pool.jobs p) a.rows))
      in
      concat_vecs parts
  | _ -> probe_slice (0, a.rows)

let map_scalar s t =
  Fault.inject alloc_site;
  { rows = t.rows; data = eval_scalar t s; cnts = t.cnts }

(* Kept row indices of [lo, hi) where the two operand columns agree.  The
   atom/atom case is two-pass — count, then fill an exactly-sized array —
   because selections are usually sparse and a [hi - lo]-slot scratch
   array would be a large major-heap allocation per kernel call. *)
let select_keep (cl : col) (cr : col) lo hi : int array =
  match (cl, cr) with
  | CAtom xa, CAtom xb ->
      assert (hi <= Array.length xa && hi <= Array.length xb && lo >= 0);
      let n = ref 0 in
      for i = lo to hi - 1 do
        if Array.unsafe_get xa i = Array.unsafe_get xb i (* bounds: lo <= i < hi <= length xa, xb by the assertion above *)
        then incr n
      done;
      let keep = Array.make (max !n 1) 0 in
      let k = ref 0 in
      for i = lo to hi - 1 do
        if Array.unsafe_get xa i = Array.unsafe_get xb i (* bounds: i as above *)
        then begin
          Array.unsafe_set keep !k i; (* bounds: !k < n, both passes see the same rows *)
          incr k
        end
      done;
      if !n = 0 then [||] else keep
  | _ ->
      let keep = Array.make (max (hi - lo) 1) 0 in
      let k = ref 0 in
      for i = lo to hi - 1 do
        if cell_eq cl i cr i then begin
          keep.(!k) <- i;
          incr k
        end
      done;
      Array.sub keep 0 !k

let select_scalar ?pool l r t =
  Fault.inject alloc_site;
  let cl = eval_scalar t l and cr = eval_scalar t r in
  let keep =
    match pool with
    | Some p when Pool.jobs p > 1 && t.rows >= Pool.chunk_min p ->
        Array.concat
          (pool_run p
             (List.map
                (fun (lo, hi) () -> select_keep cl cr lo hi)
                (ranges (4 * Pool.jobs p) t.rows)))
    | _ -> select_keep cl cr 0 t.rows
  in
  { rows = Array.length keep; data = gather_col t.data keep; cnts = gather_counts t.cnts keep }

let union_add a b =
  Fault.inject alloc_site;
  if a.rows = 0 then b
  else if b.rows = 0 then a
  else if not (same_rep a.data b.data) then unsupported "union: shape mismatch"
  else concat_vecs [ a; b ]

(* Generic count merge over the distinct supports of both sides (diff,
   intersection, maximum union).  Matched rows take f(ca, cb); unmatched
   a-rows take f(ca, 0) and unmatched b-rows f(0, cb); zero results are
   dropped.  Output counts go through Bignat (these kernels run on
   post-coalesce supports, not on the hot row path). *)
let merge_op ~f a b =
  Fault.inject alloc_site;
  if a.rows > 0 && b.rows > 0 && not (same_rep a.data b.data) then
    unsupported "merge: shape mismatch";
  let ra, ca = distinct_rows a and rb, cb = distinct_rows b in
  let na = Array.length ra and nb = Array.length rb in
  let btbl : (int, int list) Hashtbl.t = Hashtbl.create ((2 * nb) + 1) in
  for jb = 0 to nb - 1 do
    let h = cell_hash b.data rb.(jb) in
    let bucket = match Hashtbl.find_opt btbl h with Some l -> l | None -> [] in
    Hashtbl.replace btbl h (jb :: bucket) (* domain-local: fresh table per call *)
  done;
  let matched = Array.make (max nb 1) false in
  let keep_a = Array.make (max na 1) 0 in
  let cnt_a = Array.make (max na 1) Bignat.zero in
  let na' = ref 0 in
  for j = 0 to na - 1 do
    let i = ra.(j) in
    let mb =
      match Hashtbl.find_opt btbl (cell_hash a.data i) with
      | None -> None
      | Some bucket ->
          List.find_opt (fun jb -> cell_eq a.data i b.data rb.(jb)) bucket
    in
    let cbv =
      match mb with
      | Some jb ->
          matched.(jb) <- true;
          cnt_get cb jb
      | None -> Bignat.zero
    in
    let c = f (cnt_get ca j) cbv in
    if not (Bignat.is_zero c) then begin
      keep_a.(!na') <- i;
      cnt_a.(!na') <- c;
      incr na'
    end
  done;
  let keep_b = Array.make (max nb 1) 0 in
  let cnt_b = Array.make (max nb 1) Bignat.zero in
  let nb' = ref 0 in
  for jb = 0 to nb - 1 do
    if not matched.(jb) then begin
      let c = f Bignat.zero (cnt_get cb jb) in
      if not (Bignat.is_zero c) then begin
        keep_b.(!nb') <- rb.(jb);
        cnt_b.(!nb') <- c;
        incr nb'
      end
    end
  done;
  let part src keep cnt n =
    let keep = Array.sub keep 0 n in
    let cnts = cnt_make n in
    for k = 0 to n - 1 do
      cnt_set cnts k cnt.(k)
    done;
    { rows = n; data = gather_col src.data keep; cnts }
  in
  let pa = part a keep_a cnt_a !na' and pb = part b keep_b cnt_b !nb' in
  if pa.rows = 0 then pb
  else if pb.rows = 0 then pa
  else concat_vecs [ pa; pb ]

let monus a b = merge_op ~f:Bignat.monus a b
let inter a b = merge_op ~f:Bignat.min a b
let union_max a b = merge_op ~f:Bignat.max a b

let dedup t =
  Fault.inject alloc_site;
  let reps, _ = distinct_rows t in
  let n = Array.length reps in
  { rows = n; data = gather_col t.data reps; cnts = cnt_ones n }

(* Group by the key attributes (in the order given, mirroring Bag.nest):
   each group becomes one output row carrying the key columns plus a
   canonical segment of the rest-tuples.  The fresh segments are coalesced
   and sorted into Value order — the invariant every other kernel's cell
   walks depend on. *)
let nest ixs t =
  Fault.inject alloc_site;
  match t.data with
  | CTuple cs ->
      let nattr = Array.length cs in
      let ixa = Array.of_list ixs in
      Array.iter
        (fun i -> if i < 1 || i > nattr then unsupported "nest: attribute out of range")
        ixa;
      let keycols = Array.map (fun i -> cs.(i - 1)) ixa in
      let kept = Array.make (max nattr 1) false in
      Array.iter (fun i -> kept.(i - 1) <- true) ixa;
      let restcols =
        let acc = ref [] in
        for j = nattr - 1 downto 0 do
          if not kept.(j) then acc := cs.(j) :: !acc
        done;
        Array.of_list !acc
      in
      let n = t.rows in
      let tbl : (int, int list) Hashtbl.t = Hashtbl.create ((2 * n) + 1) in
      let grp = Array.make (max n 1) 0 in
      let reps = Array.make (max n 1) 0 in
      let ng = ref 0 in
      let key_hash i =
        Array.fold_left (fun h c -> mix h (cell_hash c i)) 0x811c9dc5 keycols
        land max_int
      in
      let key_eq i j =
        Array.for_all (fun c -> cell_eq c i c j) keycols
      in
      for i = 0 to n - 1 do
        let h = key_hash i in
        let bucket =
          match Hashtbl.find_opt tbl h with Some b -> b | None -> []
        in
        match List.find_opt (fun g -> key_eq reps.(g) i) bucket with
        | Some g -> grp.(i) <- g
        | None ->
            let g = !ng in
            incr ng;
            reps.(g) <- i;
            grp.(i) <- g;
            Hashtbl.replace tbl h (g :: bucket) (* domain-local: fresh table per call *)
      done;
      let ng = !ng in
      let sizes = Array.make (max ng 1) 0 in
      for i = 0 to n - 1 do
        sizes.(grp.(i)) <- sizes.(grp.(i)) + 1
      done;
      let members = Array.init ng (fun g -> Array.make sizes.(g) 0) in
      let fill = Array.make (max ng 1) 0 in
      for i = 0 to n - 1 do
        let g = grp.(i) in
        members.(g).(fill.(g)) <- i;
        fill.(g) <- fill.(g) + 1
      done;
      let segs =
        Array.map
          (fun midx ->
            let inner =
              {
                rows = Array.length midx;
                data = CTuple (Array.map (fun c -> gather_col c midx) restcols);
                cnts = gather_counts t.cnts midx;
              }
            in
            let ireps, icnts = distinct_rows inner in
            let order = Array.init (Array.length ireps) (fun k -> k) in
            Array.sort
              (fun x y -> cell_compare inner.data ireps.(x) ireps.(y))
              order;
            let rows_sorted = Array.map (fun k -> ireps.(k)) order in
            ( Array.length rows_sorted,
              gather_col inner.data rows_sorted,
              gather_counts icnts order ))
          members
      in
      let off = Array.make (ng + 1) 0 in
      Array.iteri (fun g (len, _, _) -> off.(g + 1) <- off.(g) + len) segs;
      let elems = concat_cols (Array.to_list (Array.map (fun (_, c, _) -> c) segs)) in
      let ecnt = concat_counts (Array.to_list (Array.map (fun (_, _, c) -> c) segs)) in
      let gidx = Array.sub reps 0 ng in
      {
        rows = ng;
        data =
          CTuple
            (Array.append
               (Array.map (fun c -> gather_col c gidx) keycols)
               [| CBag { off; elems; ecnt } |]);
        cnts = cnt_ones ng;
      }
  | _ -> unsupported "nest: not a bag of tuples"

(* Source row of every element slot of a segment column. *)
let seg_src_rows (off : int array) nrows total : int array =
  assert (Array.length off = nrows + 1 && off.(nrows) = total);
  let src = Array.make (max total 1) 0 in
  for i = 0 to nrows - 1 do
    for k = off.(i) to off.(i + 1) - 1 do
      src.(k) <- i
    done
  done;
  if total = Array.length src then src else Array.sub src 0 total

let identity n = Array.init n (fun i -> i)

(* Unnest: splice the members of bag attribute [ix] in place.  Element
   order inside segments is already row-major, so the output row index IS
   the element slot — only the sibling attributes need gathering. *)
let unnest ix t =
  Fault.inject alloc_site;
  match t.data with
  | CTuple cs when ix >= 1 && ix <= Array.length cs -> (
      match cs.(ix - 1) with
      | CBag { off; elems; ecnt } ->
          let total = off.(t.rows) in
          let src = seg_src_rows off t.rows total in
          let mids =
            match elems with
            | CTuple ecols -> ecols
            | _ when total = 0 -> [||]
            | _ -> unsupported "unnest: members are not tuples"
          in
          let gath c = gather_col c src in
          let prefix = Array.map gath (Array.sub cs 0 (ix - 1)) in
          let suffix =
            Array.map gath (Array.sub cs ix (Array.length cs - ix))
          in
          {
            rows = total;
            data = CTuple (Array.concat [ prefix; mids; suffix ]);
            cnts = mul_counts t.cnts src ecnt (identity total);
          }
      | _ -> unsupported "unnest: attribute is not a bag column")
  | CTuple _ -> unsupported "unnest: attribute out of range"
  | _ -> unsupported "unnest: not a bag of tuples"

(* Destroy: flatten one level of bag nesting, multiplying outer counts
   into the member counts. *)
let destroy t =
  Fault.inject alloc_site;
  match t.data with
  | CBag { off; elems; ecnt } ->
      let total = off.(t.rows) in
      let src = seg_src_rows off t.rows total in
      {
        rows = total;
        data = elems;
        cnts = mul_counts t.cnts src ecnt (identity total);
      }
  | _ -> unsupported "destroy: not a bag of bags"
