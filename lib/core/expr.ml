(** Abstract syntax of the bag algebra BALG (§3), plus the fixpoint
    extensions of §6.

    The paper separates object-level constructors (tupling [τ], bagging [β],
    attribute projection [α{_i}]) from bag-level operators and uses λ
    notation for the functions passed to MAP and selection.  We fold both
    levels into a single expression language with explicit binders: [Map
    (x, body, e)] is [MAP{_λx.body}(e)] and [Select (x, l, r, e)] is
    [σ{_λx. l = r}(e)].  This is exactly the algebra — the binders never
    iterate, they are applied pointwise to bag members — but it lets λ bodies
    mention outer bags, which the paper's own derived forms require (e.g. the
    definition of [−] from [P] in §3). *)

type var = string

type t =
  | Var of var
  | Lit of Value.t * Ty.t  (** literal constant with its type *)
  | Tuple of t list  (** tupling [τ] *)
  | Proj of int * t  (** attribute projection [α{_i}], 1-based *)
  | Sing of t  (** bagging [β]: the singleton bag *)
  | UnionAdd of t * t  (** additive union [∪+] *)
  | Diff of t * t  (** subtraction [−] (monus on counts) *)
  | UnionMax of t * t  (** maximal union [∪] *)
  | Inter of t * t  (** intersection [∩] *)
  | Product of t * t  (** Cartesian product [×] *)
  | Join of int * int * t * t
      (** keyed equijoin [σ{_a.i=b.j}(a × b)] with concatenated tuples —
          a derived form (it abbreviates select-over-product, same
          multiplicities), produced by the {!Opt} planner so both engines
          can run it as a hash join instead of materialising the product *)
  | Powerset of t  (** [P] — one occurrence of each subbag *)
  | Powerbag of t  (** [Pb] (Definition 5.1) *)
  | Destroy of t  (** bag-destroy [δ] *)
  | Map of var * t * t  (** restructuring [MAP] *)
  | Select of var * t * t * t  (** selection [σ{_φ=φ'}] *)
  | Dedup of t  (** duplicate elimination [ε] *)
  | Let of var * t * t  (** local binding (syntactic sugar) *)
  | Fix of var * t * t
      (** inflationary fixpoint (Theorem 6.6): iterate
          [X ↦ body(X) ∪ X] from the seed until stable *)
  | BFix of t * var * t * t
      (** bounded fixpoint ([Suc93], §6): like {!Fix} but every iterate is
          intersected with the bound, guaranteeing termination *)
  | Nest of int list * t
      (** the set-nesting operator discussed in §7 ([PG88, Won93]): group a
          bag of tuples by the listed (1-based) attributes, collecting the
          remaining attributes — with their multiplicities — into a bag
          appended as a last component; each group occurs once *)
  | Unnest of int * t
      (** inverse restructuring: expand the bag-valued attribute [i],
          multiplying multiplicities *)

(** {1 Convenience constructors} *)

let var x = Var x
let lit v ty = Lit (v, ty)
let atom s = Lit (Value.atom s, Ty.Atom)
let empty ty = Lit (Value.empty_bag, ty)
let tuple es = Tuple es
let proj i e = Proj (i, e)
let sing e = Sing e
let ( ++ ) a b = UnionAdd (a, b)
let ( -- ) a b = Diff (a, b)
let ( |||) a b = UnionMax (a, b)
let ( &&& ) a b = Inter (a, b)
let ( *** ) a b = Product (a, b)
let join i j a b = Join (i, j, a, b)
let powerset e = Powerset e
let powerbag e = Powerbag e
let destroy e = Destroy e
let map x body e = Map (x, body, e)
let select x l r e = Select (x, l, r, e)
let dedup e = Dedup e
let let_ x e body = Let (x, e, body)
let fix x body seed = Fix (x, body, seed)
let bfix bound x body seed = BFix (bound, x, body, seed)

(** [proj_attrs [i1; ...; in] e] is the generalized projection
    [π{_i1,...,in}], i.e. [MAP{_λx.<α_i1 x, ..., α_in x>}]. *)
let proj_attrs ixs e =
  let x = "%pi" in
  Map (x, Tuple (List.map (fun i -> Proj (i, Var x)) ixs), e)

(** [ones e] is [MAP{_λx.<a>}(e)]: a bag of [card e] copies of the unary
    tuple [<a>] — the integer-as-bag image of the cardinality of [e]. *)
let ones ?(on = "a") e =
  Map ("%one", Tuple [ Lit (Value.atom on, Ty.Atom) ], e)

(** {1 Traversal} *)

(** Immediate subexpressions, in syntactic order. *)
let children = function
  | Var _ | Lit _ -> []
  | Tuple es -> es
  | Proj (_, e) | Sing e | Powerset e | Powerbag e | Destroy e | Dedup e
  | Nest (_, e) | Unnest (_, e) ->
      [ e ]
  | UnionAdd (a, b) | Diff (a, b) | UnionMax (a, b) | Inter (a, b)
  | Product (a, b)
  | Join (_, _, a, b) ->
      [ a; b ]
  | Map (_, body, e) -> [ body; e ]
  | Select (_, l, r, e) -> [ l; r; e ]
  | Let (_, e, body) -> [ e; body ]
  | Fix (_, body, seed) -> [ body; seed ]
  | BFix (bound, _, body, seed) -> [ bound; body; seed ]

let rec size e = 1 + List.fold_left (fun acc c -> acc + size c) 0 (children e)

(** Short operator label for a node — the attribution name shared by the
    profiler, the telemetry span tree and budget-exhaustion reports. *)
let op_name : t -> string = function
  | Var x -> "var " ^ x
  | Lit _ -> "lit"
  | Tuple _ -> "tuple"
  | Proj (i, _) -> Printf.sprintf "proj %d" i
  | Sing _ -> "sing"
  | UnionAdd _ -> "union_add"
  | Diff _ -> "diff"
  | UnionMax _ -> "union_max"
  | Inter _ -> "inter"
  | Product _ -> "product"
  | Join (i, j, _, _) -> Printf.sprintf "join %d=%d" i j
  | Powerset _ -> "powerset"
  | Powerbag _ -> "powerbag"
  | Destroy _ -> "destroy"
  | Map _ -> "map"
  | Select _ -> "select"
  | Dedup _ -> "dedup"
  | Let (x, _, _) -> "let " ^ x
  | Fix _ -> "fix"
  | BFix _ -> "bfix"
  | Nest (ixs, _) ->
      Printf.sprintf "nest [%s]" (String.concat "," (List.map string_of_int ixs))
  | Unnest (i, _) -> Printf.sprintf "unnest %d" i

module Vars = Set.Make (String)

let rec free_vars = function
  | Var x -> Vars.singleton x
  | Lit _ -> Vars.empty
  | Tuple es -> List.fold_left (fun s e -> Vars.union s (free_vars e)) Vars.empty es
  | Proj (_, e) | Sing e | Powerset e | Powerbag e | Destroy e | Dedup e
  | Nest (_, e) | Unnest (_, e) ->
      free_vars e
  | UnionAdd (a, b) | Diff (a, b) | UnionMax (a, b) | Inter (a, b)
  | Product (a, b)
  | Join (_, _, a, b) ->
      Vars.union (free_vars a) (free_vars b)
  | Map (x, body, e) -> Vars.union (Vars.remove x (free_vars body)) (free_vars e)
  | Select (x, l, r, e) ->
      Vars.union
        (Vars.remove x (Vars.union (free_vars l) (free_vars r)))
        (free_vars e)
  | Let (x, e, body) -> Vars.union (free_vars e) (Vars.remove x (free_vars body))
  | Fix (x, body, seed) ->
      Vars.union (Vars.remove x (free_vars body)) (free_vars seed)
  | BFix (bound, x, body, seed) ->
      Vars.union (free_vars bound)
        (Vars.union (Vars.remove x (free_vars body)) (free_vars seed))

(* Atomic: the optimizer alpha-renames concurrently on server worker
   domains, and a torn increment could hand two domains the same name.
   Capture-freshness is per-expression, but unique names keep decision
   logs and traces unambiguous too. *)
let fresh_counter = Atomic.make 0

let fresh_var hint =
  Printf.sprintf "%%%s%d" hint (Atomic.fetch_and_add fresh_counter 1 + 1)

(** Capture-avoiding substitution of [replacement] for free occurrences of
    [x]. *)
let rec subst x replacement e =
  let s e = subst x replacement e in
  let under y body =
    if String.equal x y then (y, body)
    else if Vars.mem y (free_vars replacement) then begin
      let y' = fresh_var "r" in
      (y', subst x replacement (subst y (Var y') body))
    end
    else (y, s body)
  in
  match e with
  | Var y -> if String.equal x y then replacement else e
  | Lit _ -> e
  | Tuple es -> Tuple (List.map s es)
  | Proj (i, e) -> Proj (i, s e)
  | Sing e -> Sing (s e)
  | UnionAdd (a, b) -> UnionAdd (s a, s b)
  | Diff (a, b) -> Diff (s a, s b)
  | UnionMax (a, b) -> UnionMax (s a, s b)
  | Inter (a, b) -> Inter (s a, s b)
  | Product (a, b) -> Product (s a, s b)
  | Join (i, j, a, b) -> Join (i, j, s a, s b)
  | Powerset e -> Powerset (s e)
  | Powerbag e -> Powerbag (s e)
  | Destroy e -> Destroy (s e)
  | Dedup e -> Dedup (s e)
  | Nest (ixs, e) -> Nest (ixs, s e)
  | Unnest (i, e) -> Unnest (i, s e)
  | Map (y, body, e) ->
      let y, body = under y body in
      Map (y, body, s e)
  | Select (y, l, r, e) ->
      if String.equal x y then Select (y, l, r, s e)
      else if Vars.mem y (free_vars replacement) then begin
        let y' = fresh_var "r" in
        let l' = subst x replacement (subst y (Var y') l)
        and r' = subst x replacement (subst y (Var y') r) in
        Select (y', l', r', s e)
      end
      else Select (y, s l, s r, s e)
  | Let (y, e, body) ->
      let e = s e in
      let y, body = under y body in
      Let (y, e, body)
  | Fix (y, body, seed) ->
      let seed = s seed in
      let y, body = under y body in
      Fix (y, body, seed)
  | BFix (bound, y, body, seed) ->
      let bound = s bound and seed = s seed in
      let y, body = under y body in
      BFix (bound, y, body, seed)

(** {1 Rendering} *)

let rec pp ppf e =
  let list = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp in
  match e with
  | Var x -> Format.pp_print_string ppf x
  | Lit (v, ty) when Value.is_empty_bag v -> Format.fprintf ppf "empty(%a)" Ty.pp ty
  | Lit (v, _) -> Value.pp ppf v
  | Tuple es -> Format.fprintf ppf "<%a>" list es
  | Proj (i, e) -> Format.fprintf ppf "%a.%d" pp_atomic e i
  | Sing e -> Format.fprintf ppf "sing(%a)" pp e
  | UnionAdd (a, b) -> Format.fprintf ppf "(%a ++ %a)" pp a pp b
  | Diff (a, b) -> Format.fprintf ppf "(%a -- %a)" pp a pp b
  | UnionMax (a, b) -> Format.fprintf ppf "(%a \\/ %a)" pp a pp b
  | Inter (a, b) -> Format.fprintf ppf "(%a /\\ %a)" pp a pp b
  | Product (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Join (i, j, a, b) -> Format.fprintf ppf "join[%d,%d](%a, %a)" i j pp a pp b
  | Powerset e -> Format.fprintf ppf "powerset(%a)" pp e
  | Powerbag e -> Format.fprintf ppf "powerbag(%a)" pp e
  | Destroy e -> Format.fprintf ppf "destroy(%a)" pp e
  | Map (x, body, e) -> Format.fprintf ppf "map(%s -> %a, %a)" x pp body pp e
  | Select (x, l, r, e) ->
      Format.fprintf ppf "select(%s -> %a == %a, %a)" x pp l pp r pp e
  | Dedup e -> Format.fprintf ppf "dedup(%a)" pp e
  | Let (x, e, body) -> Format.fprintf ppf "let %s = %a in %a" x pp e pp body
  | Fix (x, body, seed) -> Format.fprintf ppf "fix(%s -> %a, %a)" x pp body pp seed
  | BFix (bound, x, body, seed) ->
      Format.fprintf ppf "bfix(%a, %s -> %a, %a)" pp bound x pp body pp seed
  | Nest (ixs, e) ->
      Format.fprintf ppf "nest[%s](%a)"
        (String.concat ", " (List.map string_of_int ixs))
        pp e
  | Unnest (i, e) -> Format.fprintf ppf "unnest[%d](%a)" i pp e

and pp_atomic ppf e =
  match e with
  | Var _ | Lit _ | Tuple _ | Proj _ -> pp ppf e
  | _ -> Format.fprintf ppf "(%a)" pp e

let to_string e = Format.asprintf "%a" pp e
