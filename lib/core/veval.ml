(** The vectorized execution engine.

    Compilation mirrors {!Eval}: every AST node becomes a closure with a
    stable preorder id (the attribution key shared with the governor and
    the telemetry span tree), charged one unit of fuel per invocation plus
    the materialised support of its result.  The difference is the value
    representation: nodes exchange {e hybrid} values that are lazily
    convertible between the boxed {!Value.t} world and the columnar
    {!Vec.t} world, each direction memoised so a representation is built
    at most once per node result.  Kernel-capable nodes run the {!Vec}
    kernel when both operands convert; otherwise (or when a kernel raises
    {!Vec.Unsupported} on an awkward shape) they demote to the exact tree
    data path for that subtree — recorded in the execution plan as
    [tree (fallback)] so coverage is visible in [balgi explain].

    Budget parity: the support, count-digit, fixpoint and deadline
    accounts are enforced on vec results too (support against the
    coalesced row count, digits against the count column), so tight
    budgets exhaust under either engine; only the fuel {e amounts} differ
    because vec charges per row batch.  The steps == fuel trace invariant
    is preserved: every unit charged lands in the innermost traced node's
    cell exactly as in {!Eval}.

    Parallelism lives {e inside} the kernels ({!Vec.product} /
    {!Vec.select_scalar} chunk contiguous row ranges over the pool);
    the compiled closures themselves run on the calling domain, so hybrid
    values are never shared across domains and their memoising mutation
    needs no locks. *)

type engine = Tree | Vec

let engine_to_string = function Tree -> "tree" | Vec -> "vec"

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "tree" -> Some Tree
  | "vec" -> Some Vec
  | _ -> None

let default_engine () =
  match Sys.getenv_opt "BALG_ENGINE" with
  | Some s -> ( match engine_of_string s with Some e -> e | None -> Tree)
  | None -> Tree

type plan = {
  p_id : int;
  p_op : string;
  mutable p_engine : string;
  mutable p_children : plan list;
}

let plan_to_string p =
  let buf = Buffer.create 256 in
  let rec go indent p =
    Buffer.add_string buf
      (Printf.sprintf "%s%-14s [%s]\n" indent p.p_op p.p_engine);
    List.iter (go (indent ^ "  ")) p.p_children
  in
  go "" p;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Hybrid values: a node result living in either representation, with
   both conversion directions memoised.  States are domain-private (see
   the module comment), so plain mutation suffices. *)

type vec_state = VUnknown | VNo | VYes of Vec.t

type hv = { mutable hval : Value.t option; mutable hvec : vec_state }

let of_val v = { hval = Some v; hvec = VUnknown }
let of_vec x = { hval = None; hvec = VYes x }

let as_value h =
  match h.hval with
  | Some v -> v
  | None ->
      let v =
        match h.hvec with VYes x -> Vec.to_value x | VNo | VUnknown -> assert false
      in
      h.hval <- Some v;
      v

(* [None] when the value does not fit the columnar layout; the verdict is
   cached so a scalar or heterogeneous binding is probed only once. *)
let as_vec h =
  match h.hvec with
  | VYes x -> Some x
  | VNo -> None
  | VUnknown ->
      let r =
        match h.hval with
        | Some v when Value.is_bag v -> (
            match Vec.of_value v with
            | x -> VYes x
            | exception Vec.Unsupported _ -> VNo)
        | Some _ | None -> VNo
      in
      h.hvec <- r;
      (match r with VYes x -> Some x | VNo | VUnknown -> None)

module Env = Eval.Env

type henv = hv Env.t

let lift_env (env : Eval.env) : henv = Env.map of_val env

(* ------------------------------------------------------------------ *)
(* Governance: the same fuel / observation discipline as Eval, minus the
   machinery this engine does not use (shards, memo tables). *)

type state = {
  budget : Budget.t;
  meters : Eval.meters;
  pool : Pool.t option;
  mutable obs_cell : int ref;
      (** fuel charged to the currently executing node, mirrored into the
          trace end events exactly as in {!Eval} *)
}

type att = { id : int; op : string; sp : Telemetry.span option }

(* Shared with Eval: one registered site, one chaos knob for both
   engines' fuel-charge boundary ([Fault.register] is idempotent). *)
let step_site = Fault.register "eval.step"

let spend st att n =
  if Fault.fire step_site then
    Budget.exceeded st.budget Budget.Injected ~node:att.id
      ~op:(Fault.name step_site)
      ~spent:(Budget.fuel_spent st.budget) ~limit:0;
  (match att.sp with
  | Some sp -> Telemetry.add_steps sp n
  | None -> ());
  (* Mirror into the trace accumulator before [charge] can raise: the
     charge that trips the account must still appear in exported steps. *)
  st.obs_cell := !(st.obs_cell) + n;
  Budget.charge st.budget ~node:att.id ~op:att.op n

(* Boxed results: Eval's observation verbatim — one walk for support /
   max count / cardinal, the per-value budget checks, fuel proportional
   to the materialised support. *)
let observe_value st att v =
  let m = st.meters in
  (match Value.view v with
  | Value.Bag pairs ->
      let support = ref 0 in
      let mc = ref Bignat.zero in
      let icard = ref 0 in
      List.iter
        (fun (_, c) ->
          incr support;
          if Bignat.compare c !mc > 0 then mc := c;
          if !icard >= 0 then
            icard :=
              (match Bignat.to_int_opt c with
              | Some n ->
                  let s = !icard + n in
                  if s < 0 then -1 else s
              | None -> -1))
        pairs;
      let support = !support and mc = !mc in
      if support > m.Eval.max_support_seen then m.Eval.max_support_seen <- support;
      Budget.check_support st.budget ~node:att.id ~op:att.op support;
      if Bignat.compare mc m.Eval.max_count_seen > 0 then begin
        m.Eval.max_count_seen <- mc;
        Budget.check_count_digits st.budget ~node:att.id ~op:att.op
          (Bignat.digits mc)
      end;
      let card =
        if !icard >= 0 then Bignat.of_int !icard else Value.cardinal v
      in
      if Bignat.compare card m.Eval.max_cardinal_seen > 0 then
        m.Eval.max_cardinal_seen <- card;
      let size = Value.size_tag v in
      Budget.check_size st.budget ~node:att.id ~op:att.op size;
      (match att.sp with
      | Some sp -> Telemetry.record_result sp ~support ~size
      | None -> ());
      spend st att support
  | Value.Atom _ | Value.Tuple _ -> (
      let size = Value.size_tag v in
      Budget.check_size st.budget ~node:att.id ~op:att.op size;
      match att.sp with
      | Some sp -> Telemetry.record_result sp ~support:0 ~size
      | None -> ()))

(* Columnar results: the row count bounds the distinct support from
   above, so it stands in for the support account; when it alone would
   trip the limit the vector is coalesced first and the exact distinct
   count re-checked, keeping verdicts aligned with the tree engine.  The
   count-digit account is enforced against the count column; the
   encoded-size account is not (no cheap columnar analogue) — size-bound
   workloads run the tree engine. *)
let observe_vec st att x =
  let m = st.meters in
  let lim = (Budget.limits st.budget).Budget.max_support in
  let x = if Vec.rows x > lim then Vec.coalesce x else x in
  let support = Vec.rows x in
  if support > m.Eval.max_support_seen then m.Eval.max_support_seen <- support;
  Budget.check_support st.budget ~node:att.id ~op:att.op support;
  if support > 0 then
    Budget.check_count_digits st.budget ~node:att.id ~op:att.op
      (Vec.max_count_digits x);
  (match att.sp with
  | Some sp -> Telemetry.record_result sp ~support ~size:0
  | None -> ());
  spend st att support;
  x

let observe_hv st att h =
  st.meters.Eval.ops <- st.meters.Eval.ops + 1;
  (match (h.hval, h.hvec) with
  | None, VYes x ->
      (* vec-resident result: observe columns, keep any coalescing *)
      h.hvec <- VYes (observe_vec st att x)
  | _ -> observe_value st att (as_value h));
  h

(* Eval's pre-materialisation escapes, verbatim. *)
let too_large st att =
  let limit = (Budget.limits st.budget).Budget.max_support in
  Budget.exceeded st.budget Budget.Support ~node:att.id ~op:att.op
    ~spent:max_int ~limit

let power_guard st att b =
  let n = Bag.expected_subbags b in
  if n = max_int then too_large st att;
  Budget.check_deadline st.budget ~node:att.id ~op:att.op;
  Budget.check_support st.budget ~node:att.id ~op:att.op n;
  spend st att n

(* ------------------------------------------------------------------ *)
(* Scalar-program extraction: the MAP/σ bodies the kernels can run
   column-wise.  Anything else — references to outer variables, nested
   binders, bag operators — returns [None] and the node keeps the tree
   data path. *)

let rec scalar_of x (e : Expr.t) : Vec.scalar option =
  match e with
  | Expr.Var y when y = x -> Some Vec.SRow
  | Expr.Proj (i, e') -> (
      match scalar_of x e' with
      | Some s -> Some (Vec.SField (i, s))
      | None -> None)
  | Expr.Lit (v, _) -> Some (Vec.SConst v)
  | Expr.Tuple es ->
      let ss = List.filter_map (scalar_of x) es in
      if List.length ss = List.length es then Some (Vec.SRecord ss) else None
  (* MAP λy.<a> e' — the [ones] idiom behind the derived aggregates:
     the cardinality of e' as an integer-bag, one array sum per row. *)
  | Expr.Map (_, Expr.Tuple [ Expr.Lit (a, _) ], e') -> (
      match (Value.view a, scalar_of x e') with
      | Value.Atom name, Some s -> Some (Vec.SOnes (name, s))
      | _ -> None)
  | _ -> None

(* A pure positional projection <α_{i1}(x), ...> — worth its own label so
   plans distinguish the proj kernel from a general map. *)
let is_proj = function
  | Vec.SRecord ss ->
      ss <> []
      && List.for_all
           (function Vec.SField (_, Vec.SRow) -> true | _ -> false)
           ss
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Compilation. *)

type compiled = state -> henv -> hv

type reg = { ctr : int ref; telemetry : Telemetry.t option }

let demote pn = pn.p_engine <- "tree (fallback)"

let rec compile reg ~parent e : compiled * plan =
  incr reg.ctr;
  let id = !(reg.ctr) in
  let op = Expr.op_name e in
  let sp =
    match reg.telemetry with
    | Some t -> Some (Telemetry.register t ~parent ~id ~op)
    | None -> None
  in
  let att = { id; op; sp } in
  let pn = { p_id = id; p_op = op; p_engine = "tree"; p_children = [] } in
  let kids = ref [] in
  let sub e =
    let c, k = compile reg ~parent:id e in
    kids := k :: !kids;
    c
  in
  let raw = compile_node ~att ~pn ~sub e in
  pn.p_children <- List.rev !kids;
  let invoke =
    match sp with
    | None ->
        fun st env ->
          spend st att 1;
          observe_hv st att (raw st env)
    | Some sp ->
        (* Inclusive wall time and allocation per span, as in Eval. *)
        fun st env ->
          spend st att 1;
          sp.Telemetry.invocations <- sp.Telemetry.invocations + 1;
          let t0 = Unix.gettimeofday () in
          let a0 = Gc.allocated_bytes () in
          let finish () =
            sp.Telemetry.time_s <-
              sp.Telemetry.time_s +. (Unix.gettimeofday () -. t0);
            sp.Telemetry.alloc_words <-
              sp.Telemetry.alloc_words
              +. ((Gc.allocated_bytes () -. a0) /. float (Sys.word_size / 8))
          in
          (match raw st env with
          | h ->
              finish ();
              observe_hv st att h
          | exception exn ->
              finish ();
              raise exn)
  in
  (* Per-invocation trace events with a fresh self-steps cell, balanced on
     the exception path — Eval's discipline, so a traced vec run satisfies
     check_trace.sh's steps == fuel reconciliation. *)
  let invoke st env =
    if not (Obs.on ()) then invoke st env
    else begin
      if Obs.on () then Obs.emit Obs.B ~cat:"eval" ~name:op ~args:[ ("node", Obs.Int id) ];
      let saved = st.obs_cell in
      let cell = ref 0 in
      st.obs_cell <- cell;
      let close () =
        st.obs_cell <- saved;
        if Obs.on () then Obs.emit Obs.E ~cat:"eval" ~name:op ~args:[ ("node", Obs.Int id); ("steps", Obs.Int !cell) ]
      in
      match invoke st env with
      | h ->
          close ();
          h
      | exception exn ->
          close ();
          raise exn
    end
  in
  (invoke, pn)

and compile_node ~att ~pn ~sub (e : Expr.t) : compiled =
  let error fmt =
    Format.kasprintf (fun s -> raise (Eval.Eval_error s)) fmt
  in
  (* Binary bag operators: sequential right-then-left operand order (the
     tree engine's historical order), vec kernel when both operands
     convert, sticky runtime demotion otherwise. *)
  let vbin label a b vkernel tkernel =
    let ca = sub a in
    let cb = sub b in
    pn.p_engine <- label;
    fun st env ->
      let hb = cb st env in
      let ha = ca st env in
      match (as_vec ha, as_vec hb) with
      | Some xa, Some xb -> (
          match vkernel st xa xb with
          | x -> of_vec x
          | exception Vec.Unsupported _ ->
              demote pn;
              of_val (tkernel st (as_value ha) (as_value hb)))
      | _ ->
          demote pn;
          of_val (tkernel st (as_value ha) (as_value hb))
  in
  (* Unary bag operators, same shape. *)
  let vun label e0 vkernel tkernel =
    let c = sub e0 in
    pn.p_engine <- label;
    fun st env ->
      let h = c st env in
      match as_vec h with
      | Some x -> (
          match vkernel st x with
          | r -> of_vec r
          | exception Vec.Unsupported _ ->
              demote pn;
              of_val (tkernel (as_value h)))
      | None ->
          demote pn;
          of_val (tkernel (as_value h))
  in
  match e with
  | Expr.Var x -> (
      fun _st env ->
        match Env.find_opt x env with
        | Some h -> h
        | None -> error "unbound variable %s" x)
  | Expr.Lit (v, _) ->
      (* One hybrid cell per compiled literal: its columnar conversion is
         memoised across invocations of this run. *)
      let h = of_val v in
      fun _st _env -> h
  | Expr.Tuple es ->
      let cs = List.map sub es in
      fun st env ->
        of_val (Value.tuple (List.map (fun c -> as_value (c st env)) cs))
  | Expr.Proj (i, e0) -> (
      let c = sub e0 in
      fun st env ->
        let v = as_value (c st env) in
        match Value.view v with
        | Value.Tuple vs when i >= 1 && i <= List.length vs ->
            of_val (List.nth vs (i - 1))
        | _ -> error "cannot project attribute %d of %s" i (Value.to_string v))
  | Expr.Sing e0 ->
      let c = sub e0 in
      fun st env ->
        of_val (Value.of_sorted_assoc [ (as_value (c st env), Bignat.one) ])
  | Expr.UnionAdd (a, b) ->
      vbin "vec:union_add" a b
        (fun _st xa xb -> Vec.union_add xa xb)
        (fun _st va vb -> Bag.union_add va vb)
  | Expr.Diff (a, b) ->
      vbin "vec:monus" a b
        (fun _st xa xb -> Vec.monus xa xb)
        (fun _st va vb -> Bag.diff va vb)
  | Expr.UnionMax (a, b) ->
      vbin "vec:union_max" a b
        (fun _st xa xb -> Vec.union_max xa xb)
        (fun _st va vb -> Bag.union_max va vb)
  | Expr.Inter (a, b) ->
      vbin "vec:inter" a b
        (fun _st xa xb -> Vec.inter xa xb)
        (fun _st va vb -> Bag.inter va vb)
  | Expr.Product (a, b) ->
      (* Pre-materialisation guard: charge and bound the expected row
         count before the kernel allocates.  Duplicate rows inflate the
         estimate, so coalesce first when the raw product of row counts
         would trip the support account — the verdict then matches what
         the tree engine would reach after materialising. *)
      vbin "vec:product" a b
        (fun st xa xb ->
          let lim = (Budget.limits st.budget).Budget.max_support in
          let xa, xb =
            if Vec.expected_product_rows xa xb > lim then
              (Vec.coalesce xa, Vec.coalesce xb)
            else (xa, xb)
          in
          let n = Vec.expected_product_rows xa xb in
          if n = max_int then too_large st att;
          Budget.check_support st.budget ~node:att.id ~op:att.op n;
          Vec.product ?pool:st.pool xa xb)
        (fun st va vb -> Bag.product ?pool:st.pool va vb)
  | Expr.Join (i, j, a, b) ->
      (* Hash join: output rows are bounded by the raw product, but the
         kernel only materialises matches, so no pre-charge beyond the
         support check the kernel's result gets from [observe_hv]. *)
      vbin "vec:join" a b
        (fun st xa xb -> Vec.join ?pool:st.pool i j xa xb)
        (fun st va vb -> Bag.join_eq ?pool:st.pool i j va vb)
  | Expr.Powerset e0 ->
      let c = sub e0 in
      fun st env ->
        let b = as_value (c st env) in
        power_guard st att b;
        of_val (Bag.powerset b)
  | Expr.Powerbag e0 ->
      let c = sub e0 in
      fun st env ->
        let b = as_value (c st env) in
        power_guard st att b;
        of_val (Bag.powerbag b)
  | Expr.Destroy e0 ->
      vun "vec:destroy" e0 (fun _st x -> Vec.destroy x) Bag.destroy
  | Expr.Map (x, body, e0) -> (
      let cbody = sub body in
      let c = sub e0 in
      let tree_map st env h =
        Bag.map
          (fun v -> as_value (cbody st (Env.add x (of_val v) env)))
          (as_value h)
      in
      match scalar_of x body with
      | Some s ->
          pn.p_engine <- (if is_proj s then "vec:proj" else "vec:map");
          fun st env -> (
            let h = c st env in
            match as_vec h with
            | Some xv -> (
                match Vec.map_scalar s xv with
                | r -> of_vec r
                | exception Vec.Unsupported _ ->
                    demote pn;
                    of_val (tree_map st env h))
            | None ->
                demote pn;
                of_val (tree_map st env h))
      | None -> fun st env -> of_val (tree_map st env (c st env)))
  | Expr.Select (x, l, r, e0) -> (
      let cl = sub l in
      let cr = sub r in
      let c = sub e0 in
      let tree_select st env h =
        Bag.select
          (fun v ->
            let env' = Env.add x (of_val v) env in
            Value.equal (as_value (cl st env')) (as_value (cr st env')))
          (as_value h)
      in
      match (scalar_of x l, scalar_of x r) with
      | Some sl, Some sr ->
          pn.p_engine <- "vec:select";
          fun st env -> (
            let h = c st env in
            match as_vec h with
            | Some xv -> (
                match Vec.select_scalar ?pool:st.pool sl sr xv with
                | r -> of_vec r
                | exception Vec.Unsupported _ ->
                    demote pn;
                    of_val (tree_select st env h))
            | None ->
                demote pn;
                of_val (tree_select st env h))
      | _ -> fun st env -> of_val (tree_select st env (c st env)))
  | Expr.Dedup e0 -> vun "vec:dedup" e0 (fun _st x -> Vec.dedup x) Bag.dedup
  | Expr.Nest (ixs, e0) ->
      vun "vec:nest" e0 (fun _st x -> Vec.nest ixs x) (Bag.nest ixs)
  | Expr.Unnest (i, e0) ->
      vun "vec:unnest" e0 (fun _st x -> Vec.unnest i x) (Bag.unnest i)
  | Expr.Let (x, e0, body) ->
      let c = sub e0 in
      let cbody = sub body in
      fun st env -> cbody st (Env.add x (c st env) env)
  | Expr.Fix (x, body, seed) ->
      let cbody = sub body in
      let cseed = sub seed in
      fun st env ->
        of_val
          (iterate st att env ~x ~cbody ~bound:None
             (as_value (cseed st env)))
  | Expr.BFix (bound, x, body, seed) ->
      let cbound = sub bound in
      let cbody = sub body in
      let cseed = sub seed in
      fun st env ->
        let b = as_value (cbound st env) in
        of_val
          (iterate st att env ~x ~cbody ~bound:(Some b)
             (as_value (cseed st env)))

(* Inflationary iteration on boxed iterates (the stability check needs
   canonical values); the body itself still vectorizes internally. *)
and iterate st att env ~x ~cbody ~bound current =
  let clamp v = match bound with None -> v | Some b -> Bag.inter v b in
  let rec go steps current =
    Budget.check_fix_steps st.budget ~node:att.id ~op:att.op steps;
    Budget.check_deadline st.budget ~node:att.id ~op:att.op;
    let stepped = as_value (cbody st (Env.add x (of_val current) env)) in
    let next = clamp (Bag.union_max stepped current) in
    if Value.equal next current then current else go (steps + 1) next
  in
  go 0 (clamp current)

(* ------------------------------------------------------------------ *)
(* Entry points. *)

let run_ids = Atomic.make 1

let m_runs =
  Metrics.counter Metrics.default "balg_veval_runs_total"
    ~help:"Vectorized evaluations started"

let m_ok =
  Metrics.counter Metrics.default "balg_veval_ok_total"
    ~help:"Vectorized evaluations that returned a value"

let m_verdicts =
  Metrics.counter Metrics.default "balg_veval_verdicts_total"
    ~help:"Vectorized evaluations that ended in an exhaustion verdict"

let m_fuel =
  Metrics.histogram Metrics.default "balg_veval_fuel"
    ~help:"Fuel spent per vectorized evaluation"

let m_run_ns =
  Metrics.histogram Metrics.default "balg_veval_run_ns"
    ~help:"Wall time per vectorized evaluation in nanoseconds"

let finish_run st t0 outcome_args =
  Metrics.observe m_fuel (Budget.fuel_spent st.budget);
  Metrics.observe m_run_ns (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
  if Obs.on () then Obs.emit Obs.E ~cat:"eval" ~name:"run" ~args:[ ("steps", Obs.Int !(st.obs_cell)) ];
  if Obs.on () then Obs.emit Obs.I ~cat:"eval" ~name:"done" ~args:(("fuel", Obs.Int (Budget.fuel_spent st.budget)) :: outcome_args)

let verdict_args (x : Budget.exhaustion) =
  [
    ("outcome", Obs.Str "verdict");
    ("resource", Obs.Str (Budget.resource_to_string x.Budget.resource));
    ("node", Obs.Int x.Budget.at_node);
    ("op", Obs.Str x.Budget.op);
  ]

let run ?budget ?limits ?meters ?telemetry ?pool ?report env e =
  let budget =
    match (budget, limits) with
    | Some b, _ -> b
    | None, Some l -> Budget.start l
    | None, None -> Budget.start Budget.default
  in
  let meters = match meters with Some m -> m | None -> Eval.fresh_meters () in
  let compiled, plan = compile { ctr = ref 0; telemetry } ~parent:0 e in
  let st = { budget; meters; pool; obs_cell = ref 0 } in
  let report_plan () = match report with Some f -> f plan | None -> () in
  let rid = Atomic.fetch_and_add run_ids 1 in
  Metrics.incr m_runs;
  let t0 = Unix.gettimeofday () in
  if Obs.on () then Obs.set_trace_id rid;
  if Obs.on () then Obs.emit Obs.B ~cat:"eval" ~name:"run" ~args:[ ("run", Obs.Int rid); ("size", Obs.Int (Expr.size e)); ("engine", Obs.Str "vec") ];
  match as_value (compiled st (lift_env env)) with
  | v ->
      Metrics.incr m_ok;
      finish_run st t0 [ ("outcome", Obs.Str "ok") ];
      report_plan ();
      Ok v
  | exception Budget.Budget_exceeded x ->
      (* Keep the published verdict (smallest node id) as Eval does. *)
      let x = match Budget.verdict budget with Some y -> y | None -> x in
      Metrics.incr m_verdicts;
      finish_run st t0 (verdict_args x);
      report_plan ();
      Error x
  | exception Fault.Injected site ->
      (* An injected failure below node attribution — vec.alloc at a
         kernel or boundary allocation: structured verdict at node 0
         carrying the site name, as in Eval. *)
      let x =
        {
          Budget.resource = Budget.Injected;
          at_node = 0;
          op = site;
          spent = 0;
          limit = 0;
        }
      in
      Metrics.incr m_verdicts;
      finish_run st t0 (verdict_args x);
      report_plan ();
      Error x
  | exception exn ->
      finish_run st t0 [ ("outcome", Obs.Str "exception") ];
      report_plan ();
      raise exn

let eval ?(config = Eval.default_config) ?meters ?pool env e =
  match run ~limits:(Eval.limits_of_config config) ?meters ?pool env e with
  | Ok v -> v
  | Error x -> raise (Eval.Resource_limit (Budget.exhaustion_to_string x))

let run_engine engine ?budget ?limits ?meters ?telemetry ?pool env e =
  match engine with
  | Tree -> Eval.run ?budget ?limits ?meters ?telemetry ?pool env e
  | Vec -> run ?budget ?limits ?meters ?telemetry ?pool env e

let eval_engine engine ?config ?meters ?pool env e =
  match engine with
  | Tree -> Eval.eval ?config ?meters ?pool env e
  | Vec -> eval ?config ?meters ?pool env e
