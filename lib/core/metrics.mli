(** A process-wide metrics registry: counters, gauges and log-bucketed
    latency histograms, with a Prometheus-text snapshot.

    Metrics are the {e aggregated} observability surface next to the
    {!Obs} event stream: an event tells you what happened once, a metric
    tells you the distribution over a whole run (or a whole service
    lifetime).  All instruments are safe to update from any domain — a
    counter bump is one [Atomic.fetch_and_add], a histogram observation
    two — so the evaluator, the pool and the fault registry update them
    directly from parallel regions, exactly like the {!Telemetry} shard
    counters merge across domains.

    {b Buckets.}  Histograms are log-bucketed with eight sub-buckets per
    octave (values below 16 are exact), giving ~12.5% relative resolution
    over the full [int] range with a fixed 512-slot table.  Percentiles
    (p50/p90/p99, any quantile) are read back as the upper bound of the
    bucket holding that rank — the standard HDR-style approximation, and
    mergeable across registries/shards by adding bucket counts.

    {b Naming.}  Follow Prometheus conventions: [snake_case], a unit
    suffix ([_ns], [_total]), a [balg_] prefix for the engine's own
    instruments.  Registration is idempotent: asking twice for the same
    name returns the same instrument (like {!Fault.register}). *)

type t
(** A registry: a named collection of instruments. *)

val create : unit -> t

val default : t
(** The engine's shared registry; [balgi eval --metrics] snapshots it. *)

(** {1 Counters} *)

type counter

val counter : ?help:string -> t -> string -> counter
(** Find-or-create.  A counter only goes up. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : ?help:string -> t -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : ?help:string -> t -> string -> histogram

val observe : histogram -> int -> unit
(** Record one (non-negative) observation, e.g. nanoseconds or fuel
    steps.  Negative values clamp to 0. *)

val hist_count : histogram -> int
val hist_sum : histogram -> int

val percentile : histogram -> float -> float
(** [percentile h q] for [q] in [0,1]: the upper bound of the bucket
    containing the [ceil (q * count)]-th smallest observation; [0.] when
    empty.  [q] outside [0,1] clamps. *)

val merge_histogram : into:histogram -> histogram -> unit
(** Fold [src]'s bucket counts and sum into [into] (shard-merge). *)

(** {1 Snapshots} *)

val to_prometheus : t -> string
(** Prometheus text exposition: [# HELP]/[# TYPE] headers, counters and
    gauges as single samples, histograms as cumulative [_bucket{le=..}]
    series (non-empty buckets only) plus [_sum]/[_count], and a
    [# percentiles] comment line with p50/p90/p99 per histogram.
    Instruments print in name order, so snapshots diff cleanly. *)

val reset : t -> unit
(** Zero every instrument (tests; a long-lived registry never resets). *)
