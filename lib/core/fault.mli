(** Deterministic, seeded fault injection.

    BALG's operators are hyper-exponential (Prop 3.2), so resource
    exhaustion, worker failure and corrupted input are {e normal} outcomes
    for a production service, not edge cases.  This registry lets tests and
    CI prove every failure path degrades to a structured verdict: modules
    {!register} named {e injection sites} at the places that can actually
    fail in production (worker-task execution, pre-materialisation
    allocation points, evaluator step boundaries, database I/O), and a
    harness arms a subset of them with a trigger spec.

    {b Determinism.}  Whether a site fires on its [k]-th hit is a pure
    function of [(seed, site name, k)] — no wall clock, no global RNG.
    The same seed and spec replay the same failure on a sequential run;
    under parallel evaluation the set of firing hits is still determined,
    only which domain performs hit [k] races.

    {b Zero-cost when disabled.}  Armed state is one {!Atomic.t} read:
    a disarmed {!fire} is a load and a branch, cheap enough for the
    evaluator's per-invocation fuel path (guarded by the bench gate).

    {b Spec grammar} ([BALG_FAULT] env var / [balgi --fault]):
    {v site:spec[,site:spec...]
       spec ::= always | off | n=K (K-th hit, once) | every=K | p=F v} *)

exception Injected of string
(** Carries the site name.  Raised by {!inject}; the evaluator catches it
    at the [Eval.run] boundary and returns a structured verdict. *)

type site

val register : string -> site
(** Idempotent: registering the same name twice returns the same site. *)

val name : site -> string

val armed : unit -> bool
(** True iff some site has a trigger spec installed. *)

val fire : site -> bool
(** Count one hit of the site and decide — deterministically from
    [(seed, name, hit#)] — whether the fault fires.  Always [false] (and
    does not count) when disarmed. *)

val fire_payload : site -> int option
(** Like {!fire}, but a firing hit also yields a deterministic 30-bit
    payload (e.g. a truncation offset for a short-read fault). *)

val inject : site -> unit
(** @raise Injected when {!fire} decides this hit fails. *)

val configure : ?seed:int -> string -> (unit, string) result
(** Install a spec string (see grammar above), replacing the current
    arming and resetting all hit counters.  Unknown site names are
    registered on the fly (the module owning them may not have run yet).
    [Error] describes the first malformed clause; nothing is armed then. *)

val configure_exn : ?seed:int -> string -> unit
(** @raise Invalid_argument on a malformed spec. *)

val disarm : unit -> unit
(** Turn every site off and reset hit counters; {!armed} becomes false. *)

val with_faults : ?seed:int -> string -> (unit -> 'a) -> 'a
(** [with_faults ~seed spec f] runs [f] with the spec armed and disarms
    afterwards, also on exceptions — the harness entry point for tests. *)

val init_from_env : unit -> unit
(** Arm from [BALG_FAULT] / [BALG_FAULT_SEED] when set (malformed specs
    print a warning to stderr rather than failing startup).  Called by
    executable entry points, never by the library itself: a process that
    does not opt in runs with injection disarmed no matter the
    environment. *)

val sites : unit -> string list
(** All registered site names, sorted. *)
