(* Estimator calibration: per-operator correction factors measured by
   [explain --analyze] and consumed by Props.infer.  See calib.mli. *)

type entry = { c_factor : float; c_samples : int }
type t = (string * entry) list

let empty = []

(* Calibration keys by operator family, not the fully parameterized node
   label: "join 2=1" and "join 1=3" share one "join" factor, so a
   calibration measured on one query generalizes to others (and the
   single-token key keeps the file format whitespace-delimited). *)
let op_key op =
  match String.index_opt op ' ' with
  | Some i -> String.sub op 0 i
  | None -> op

let factor t op =
  match List.assoc_opt op t with
  | Some e when e.c_factor > 0. -> Some e.c_factor
  | _ -> None

let entries t = t

let of_observations obs =
  (* Geometric mean of actual/estimated per operator: multiplicative
     errors compose along a plan tree, so the log-domain mean is the
     factor that centres them. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (op, est, actual) ->
      let ratio = float_of_int (max 1 actual) /. float_of_int (max 1 est) in
      let sum, n =
        match Hashtbl.find_opt tbl op with Some p -> p | None -> (0., 0)
      in
      Hashtbl.replace tbl op (sum +. log ratio, n + 1))
    obs;
  Hashtbl.fold
    (fun op (sum, n) acc ->
      (op, { c_factor = exp (sum /. float_of_int n); c_samples = n }) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* The file format: a versioned header then one 'op factor samples'
   line per operator.  Plain text, diffable, no JSON dependency. *)

let header = "# balg calibration v1"

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun (op, e) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %.6g %d\n" op e.c_factor e.c_samples))
    t;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go acc seen_header = function
    | [] ->
        if seen_header then Ok (List.rev acc)
        else Error "calibration: missing '# balg calibration v1' header"
    | line :: rest -> (
        let line = String.trim line in
        if String.length line = 0 then go acc seen_header rest
        else if String.length line > 0 && line.[0] = '#' then
          if String.equal line header then go acc true rest
          else if not seen_header then
            Error (Printf.sprintf "calibration: unknown header %S" line)
          else go acc seen_header rest
        else if not seen_header then
          Error "calibration: data before the version header"
        else
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ op; f; n ] -> (
              match (float_of_string_opt f, int_of_string_opt n) with
              | Some f, Some n when f > 0. && n > 0 ->
                  go ((op, { c_factor = f; c_samples = n }) :: acc) true rest
              | _ ->
                  Error (Printf.sprintf "calibration: bad line %S" line))
          | _ -> Error (Printf.sprintf "calibration: bad line %S" line))
  in
  go [] false lines

let save path t =
  match open_out path with
  | exception Sys_error e -> Error e
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (to_string t);
          Ok ())

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          of_string (really_input_string ic n))

(* ------------------------------------------------------------------ *)
(* The ambient calibration consumed by Props.infer when no explicit
   lookup is passed: set programmatically, or loaded once from the file
   named by BALG_CALIB.  A mutex guards the lazy load — Props.infer runs
   on worker domains. *)

let mu = Mutex.create ()
let current_v : t option ref = ref None
let env_loaded = ref false

let set_current c =
  Mutex.lock mu;
  current_v := c;
  env_loaded := true;
  Mutex.unlock mu

let current () =
  Mutex.lock mu;
  if not !env_loaded then begin
    env_loaded := true;
    match Sys.getenv_opt "BALG_CALIB" with
    | None | Some "" -> ()
    | Some path -> (
        match load path with Ok c -> current_v := Some c | Error _ -> ())
  end;
  let c = !current_v in
  Mutex.unlock mu;
  c

let lookup_current op =
  match current () with None -> None | Some t -> factor t op
