(** Algebraic rewriting for BALG expressions.

    §3 notes that the operations satisfy the classical laws (associativity
    and commutativity of [∪+], [∪], [∩]; selections commute with products …)
    and that these can drive optimisation "in the same spirit as
    optimization of queries over sets".  It also warns, citing [CV93], that
    classical {e set} techniques do not carry over: equivalences that hold
    under set semantics can change multiplicities.

    This module implements both sides: a library of {e bag-sound} rules
    (used by the normaliser and the E18 experiment) and a library of
    {e set-only} rules that are deliberately unsound for bags — the
    experiment shows the randomized equivalence checker catching them. *)

type rule = {
  name : string;
  applies : Typecheck.env -> Expr.t -> Expr.t option;
      (** [Some e'] when the rule rewrites the given node *)
}

(* Expressions contain only atoms, ints, strings and arrays, so the
   polymorphic comparison is a legitimate total order for normalising the
   operand order of AC operators. *)
let expr_compare : Expr.t -> Expr.t -> int = Stdlib.compare

let arity_of env e =
  match Typecheck.infer env e with
  | Ty.Bag (Ty.Tuple ts) -> Some (List.length ts)
  | _ -> None
  | exception Typecheck.Type_error _ -> None

(* Projection indices mentioned by a selection condition that only touches
   its tuple variable through projections; None when the variable is used
   some other way.  Occurrences of [x] under a binder that rebinds the same
   name are a *different* variable and must not be counted: walking through
   shadowing binders used to misattribute inner uses to the outer tuple
   variable, letting select-pushdown fire (and shift) on conditions it does
   not actually understand. *)
let proj_indices_of x e =
  let exception Other_use in
  let acc = ref [] in
  let rec go e =
    match e with
    | Expr.Proj (i, Expr.Var y) when String.equal x y -> acc := i :: !acc
    | Expr.Var y when String.equal x y -> raise Other_use
    | Expr.Map (y, body, src) ->
        if not (String.equal x y) then go body;
        go src
    | Expr.Select (y, l, r, src) ->
        if not (String.equal x y) then begin
          go l;
          go r
        end;
        go src
    | Expr.Let (y, bound, body) ->
        go bound;
        if not (String.equal x y) then go body
    | Expr.Fix (y, body, seed) ->
        if not (String.equal x y) then go body;
        go seed
    | Expr.BFix (bound, y, body, seed) ->
        go bound;
        if not (String.equal x y) then go body;
        go seed
    | _ -> List.iter go (Expr.children e)
  in
  match go e with () -> Some !acc | exception Other_use -> None

(* Shift every free Proj on [x] by [-k] (used when pushing a selection to
   the right operand of a product).  Subterms under a binder that rebinds
   [x] are left untouched — their [x] is bound locally, and shifting it
   used to silently change what a shadowed projection computed. *)
let rec shift_projs x k e =
  match e with
  | Expr.Proj (i, Expr.Var y) when String.equal x y -> Expr.Proj (i - k, Expr.Var y)
  | Expr.Var _ | Expr.Lit _ -> e
  | Expr.Map (y, body, src) when String.equal x y ->
      Expr.Map (y, body, shift_projs x k src)
  | Expr.Select (y, l, r, src) when String.equal x y ->
      Expr.Select (y, l, r, shift_projs x k src)
  | Expr.Let (y, bound, body) when String.equal x y ->
      Expr.Let (y, shift_projs x k bound, body)
  | Expr.Fix (y, body, seed) when String.equal x y ->
      Expr.Fix (y, body, shift_projs x k seed)
  | Expr.BFix (bound, y, body, seed) when String.equal x y ->
      Expr.BFix (shift_projs x k bound, y, body, shift_projs x k seed)
  | _ -> map_children (shift_projs x k) e

and map_children f e =
  match e with
  | Expr.Var _ | Expr.Lit _ -> e
  | Expr.Tuple es -> Expr.Tuple (List.map f es)
  | Expr.Proj (i, e) -> Expr.Proj (i, f e)
  | Expr.Sing e -> Expr.Sing (f e)
  | Expr.UnionAdd (a, b) -> Expr.UnionAdd (f a, f b)
  | Expr.Diff (a, b) -> Expr.Diff (f a, f b)
  | Expr.UnionMax (a, b) -> Expr.UnionMax (f a, f b)
  | Expr.Inter (a, b) -> Expr.Inter (f a, f b)
  | Expr.Product (a, b) -> Expr.Product (f a, f b)
  | Expr.Join (i, j, a, b) -> Expr.Join (i, j, f a, f b)
  | Expr.Powerset e -> Expr.Powerset (f e)
  | Expr.Powerbag e -> Expr.Powerbag (f e)
  | Expr.Destroy e -> Expr.Destroy (f e)
  | Expr.Map (x, body, e) -> Expr.Map (x, f body, f e)
  | Expr.Select (x, l, r, e) -> Expr.Select (x, f l, f r, f e)
  | Expr.Dedup e -> Expr.Dedup (f e)
  | Expr.Nest (ixs, e) -> Expr.Nest (ixs, f e)
  | Expr.Unnest (i, e) -> Expr.Unnest (i, f e)
  | Expr.Let (x, e, body) -> Expr.Let (x, f e, f body)
  | Expr.Fix (x, body, seed) -> Expr.Fix (x, f body, f seed)
  | Expr.BFix (bound, x, body, seed) -> Expr.BFix (f bound, x, f body, f seed)

let is_empty_lit = function
  | Expr.Lit (v, _) -> Value.is_empty_bag v
  | _ -> false

(** {1 Bag-sound rules} *)

let commute name ctor =
  {
    name;
    applies =
      (fun _ e ->
        match ctor e with
        | Some (a, b, rebuild) when expr_compare a b > 0 -> Some (rebuild b a)
        | _ -> None);
  }

let rule_comm_unionadd =
  commute "comm-union-add" (function
    | Expr.UnionAdd (a, b) -> Some (a, b, fun x y -> Expr.UnionAdd (x, y))
    | _ -> None)

let rule_comm_unionmax =
  commute "comm-union-max" (function
    | Expr.UnionMax (a, b) -> Some (a, b, fun x y -> Expr.UnionMax (x, y))
    | _ -> None)

let rule_comm_inter =
  commute "comm-inter" (function
    | Expr.Inter (a, b) -> Some (a, b, fun x y -> Expr.Inter (x, y))
    | _ -> None)

let rule_assoc_unionadd =
  {
    name = "assoc-union-add";
    applies =
      (fun _ -> function
        | Expr.UnionAdd (Expr.UnionAdd (a, b), c) ->
            Some (Expr.UnionAdd (a, Expr.UnionAdd (b, c)))
        | _ -> None);
  }

let rule_idempotent =
  {
    name = "idempotence";
    applies =
      (fun _ -> function
        | Expr.Inter (a, b) when expr_compare a b = 0 -> Some a
        | Expr.UnionMax (a, b) when expr_compare a b = 0 -> Some a
        | Expr.Dedup (Expr.Dedup e) -> Some (Expr.Dedup e)
        | Expr.Dedup (Expr.Powerset e) -> Some (Expr.Powerset e)
        | _ -> None);
  }

let rule_self_difference =
  {
    name = "self-difference";
    applies =
      (fun env -> function
        | Expr.Diff (a, b) when expr_compare a b = 0 -> (
            match Typecheck.infer env a with
            | ty -> Some (Expr.Lit (Value.bag_of_assoc [], ty))
            | exception Typecheck.Type_error _ -> None)
        | _ -> None);
  }

let rule_empty_units =
  {
    name = "empty-units";
    applies =
      (fun env -> function
        | Expr.UnionAdd (a, b) when is_empty_lit b -> Some a
        | Expr.UnionAdd (a, b) when is_empty_lit a -> Some b
        | Expr.UnionMax (a, b) when is_empty_lit b -> Some a
        | Expr.UnionMax (a, b) when is_empty_lit a -> Some b
        | Expr.Diff (a, b) when is_empty_lit b -> Some a
        | Expr.Inter (a, b) when is_empty_lit a || is_empty_lit b -> (
            match Typecheck.infer env a with
            | ty -> Some (Expr.Lit (Value.bag_of_assoc [], ty))
            | exception Typecheck.Type_error _ -> None)
        | _ -> None);
  }

let rule_destroy_sing =
  {
    name = "destroy-sing";
    applies =
      (fun env -> function
        | Expr.Destroy (Expr.Sing e) -> (
            match Typecheck.infer env e with
            | Ty.Bag _ -> Some e
            | _ -> None
            | exception Typecheck.Type_error _ -> None)
        | _ -> None);
  }

(** [unnest(nest)] with prefix keys is the identity: grouping on the first
    [k] attributes and immediately expanding the appended group reproduces
    the input bag, multiplicities included. *)
let rule_unnest_nest =
  {
    name = "unnest-nest";
    applies =
      (fun _ -> function
        | Expr.Unnest (i, Expr.Nest (ixs, e))
          when i = List.length ixs + 1
               && List.mapi (fun j _ -> j + 1) ixs = ixs ->
            Some e
        | _ -> None);
  }

let rule_map_identity =
  {
    name = "map-identity";
    applies =
      (fun _ -> function
        | Expr.Map (x, Expr.Var y, e) when String.equal x y -> Some e
        | _ -> None);
  }

(** [MAP λx.outer (MAP λy.inner e) → MAP λy.outer[inner/x] e].  Fusing puts
    [outer] under the inner binder, so a free [y] in [outer] (reaching past
    [x] to an enclosing binder) would be captured and silently re-pointed at
    the inner element — the substitution itself is capture-avoiding, the
    rule's re-binding was not.  α-rename the inner binder first when that
    would happen. *)
let rule_map_fusion =
  {
    name = "map-fusion";
    applies =
      (fun _ -> function
        | Expr.Map (x, outer, Expr.Map (y, inner, e)) ->
            if Expr.Vars.mem y (Expr.Vars.remove x (Expr.free_vars outer)) then
              let z = Expr.fresh_var y in
              let inner' = Expr.subst y (Expr.Var z) inner in
              Some (Expr.Map (z, Expr.subst x inner' outer, e))
            else Some (Expr.Map (y, Expr.subst x inner outer, e))
        | _ -> None);
  }

(** Selection pushdown through a product (the "push selections" of §3):
    when the condition only touches attributes of one operand, filter that
    operand before multiplying.  Sound for bags — multiplicities factor
    through the product. *)
let rule_select_pushdown =
  {
    name = "select-pushdown";
    applies =
      (fun env -> function
        | Expr.Select (x, l, r, Expr.Product (a, b)) -> (
            match (arity_of env a, proj_indices_of x l, proj_indices_of x r) with
            | Some ka, Some il, Some ir ->
                let ixs = il @ ir in
                if ixs <> [] && List.for_all (fun i -> i <= ka) ixs then
                  Some (Expr.Product (Expr.Select (x, l, r, a), b))
                else if List.for_all (fun i -> i > ka) ixs && ixs <> [] then
                  Some
                    (Expr.Product
                       ( a,
                         Expr.Select (x, shift_projs x ka l, shift_projs x ka r, b)
                       ))
                else None
            | _ -> None)
        | _ -> None);
  }

let sound_rules =
  [
    rule_empty_units;
    rule_idempotent;
    rule_self_difference;
    rule_destroy_sing;
    rule_unnest_nest;
    rule_map_identity;
    rule_map_fusion;
    rule_select_pushdown;
    rule_assoc_unionadd;
    rule_comm_unionadd;
    rule_comm_unionmax;
    rule_comm_inter;
  ]

(** {1 Set-only rules — deliberately unsound for bags (CV93)} *)

(** [π{_1..k}(R × R) → R]: a classical conjunctive-query minimisation step.
    Under sets it is an identity; under bags the left side has every tuple
    with multiplicity [|R|] times its own. *)
let rule_selfproduct_elim_setonly =
  {
    name = "self-product-projection (set-only)";
    applies =
      (fun env -> function
        | Expr.Map (x, Expr.Tuple body, Expr.Product (a, b))
          when expr_compare a b = 0 -> (
            match arity_of env a with
            | Some k
              when List.length body = k
                   && List.for_all2
                        (fun i e ->
                          match e with
                          | Expr.Proj (j, Expr.Var y) ->
                              j = i && String.equal y x
                          | _ -> false)
                        (List.init k (fun i -> i + 1))
                        body ->
                Some a
            | _ -> None)
        | _ -> None);
  }

(** [ε(e) → e]: the identity on sets, rarely on bags. *)
let rule_dedup_elim_setonly =
  {
    name = "dedup-elimination (set-only)";
    applies = (fun _ -> function Expr.Dedup e -> Some e | _ -> None);
  }

let set_only_rules = [ rule_selfproduct_elim_setonly; rule_dedup_elim_setonly ]

(** {1 Driving} *)

(* One bottom-up pass: rewrite children first, then try rules at the node
   until none applies. *)
let rewrite_pass env rules e =
  let applied = ref [] in
  let rec at_node e =
    let rec fire e fuel =
      if fuel = 0 then e
      else
        match
          List.find_map
            (fun r ->
              match r.applies env e with
              | Some e' when expr_compare e' e <> 0 -> Some (r.name, e')
              | _ -> None)
            rules
        with
        | Some (name, e') ->
            applied := name :: !applied;
            if Obs.on () then Obs.emit Obs.I ~cat:"rewrite" ~name ~args:[ ("size", Obs.Int (Expr.size e')) ];
            fire e' (fuel - 1)
        | None -> e
    in
    fire (map_children at_node e) 16
  in
  let e' = at_node e in
  (e', List.rev !applied)

(** Rewrite to a fixpoint of the sound rules (bounded number of passes).
    Returns the normal form and the rule applications performed. *)
let normalize ?(rules = sound_rules) ?(max_passes = 8) env e =
  if Obs.on () then Obs.emit Obs.B ~cat:"rewrite" ~name:"normalize" ~args:[ ("size", Obs.Int (Expr.size e)) ];
  let rec go passes e log =
    if passes = 0 then (e, log)
    else
      let e', applied = rewrite_pass env rules e in
      if applied = [] then (e, log) else go (passes - 1) e' (log @ applied)
  in
  match go max_passes e [] with
  | e', log ->
      if Obs.on () then Obs.emit Obs.E ~cat:"rewrite" ~name:"normalize" ~args:[ ("rules", Obs.Int (List.length log)); ("size", Obs.Int (Expr.size e')) ];
      (e', log)
  | exception exn ->
      if Obs.on () then Obs.emit Obs.E ~cat:"rewrite" ~name:"normalize" ~args:[];
      raise exn
