(** The vectorized execution engine: compiles BALG expressions to
    loop-free kernels over {!Vec} segmented flat vectors, falling back to
    the tree evaluator's data path per subtree when a node or a value does
    not fit the columnar layout ([Powerset]/[Powerbag], [Fix]/[BFix],
    heterogeneous bags) — so every query runs end-to-end under either
    engine.

    The engine threads the same production machinery as {!Eval}: budget
    fuel charged per kernel batch (the steps == fuel invariant holds per
    run, checked by [scripts/check_trace.sh] on traces), {!Obs} spans per
    node invocation, {!Telemetry} per-op counters, a [vec.alloc] {!Fault}
    site at kernel allocation points, and {!Pool} chunking over contiguous
    column slices.  Results are bit-identical to {!Eval} — same canonical
    {!Value.t} including multiplicities and hash tags (the differential
    suite in [test/test_veval.ml]).

    Fuel differs from the tree engine in {e amount} (vec charges per
    materialised row batch, tree per distinct element), but both engines
    enforce the same support / count-digit / fixpoint budgets, so a query
    that exhausts a tight budget under one engine exhausts it under the
    other. *)

(** {1 Engine selection} *)

type engine = Tree | Vec

val engine_to_string : engine -> string

val engine_of_string : string -> engine option
(** Recognises ["tree"] and ["vec"] (case-insensitive). *)

val default_engine : unit -> engine
(** [Vec] when the [BALG_ENGINE] environment variable is set to [vec],
    [Tree] otherwise — the override honoured by the test suite's CI leg. *)

(** {1 Execution plans}

    Which engine ran each subtree: every compiled node carries a label —
    [vec:<kernel>] when the columnar kernel ran, [tree] when the node
    compiles to the tree data path, and [tree (fallback)] when a vec
    kernel was planned but demoted at runtime (unsupported shape). *)

type plan = {
  p_id : int;  (** preorder node id, shared with telemetry/budget *)
  p_op : string;  (** operator label ({!Expr.op_name}) *)
  mutable p_engine : string;
  mutable p_children : plan list;  (** in syntactic order *)
}

val plan_to_string : plan -> string

(** {1 Entry points}

    Mirrors of {!Eval.run} / {!Eval.eval}: same optional machinery, same
    result and exception contract. *)

val run :
  ?budget:Budget.t ->
  ?limits:Budget.limits ->
  ?meters:Eval.meters ->
  ?telemetry:Telemetry.t ->
  ?pool:Pool.t ->
  ?report:(plan -> unit) ->
  Eval.env ->
  Expr.t ->
  (Value.t, Budget.exhaustion) result
(** [?report] receives the executed plan on every exit path — ok,
    verdict, or exception — after engine labels are final. *)

val eval :
  ?config:Eval.config ->
  ?meters:Eval.meters ->
  ?pool:Pool.t ->
  Eval.env ->
  Expr.t ->
  Value.t
(** @raise Eval.Resource_limit on exhaustion, like {!Eval.eval}. *)

(** {1 Dispatch}

    One call site for both engines, so tests and tools honour
    [BALG_ENGINE] / [--engine] with a single switch. *)

val run_engine :
  engine ->
  ?budget:Budget.t ->
  ?limits:Budget.limits ->
  ?meters:Eval.meters ->
  ?telemetry:Telemetry.t ->
  ?pool:Pool.t ->
  Eval.env ->
  Expr.t ->
  (Value.t, Budget.exhaustion) result

val eval_engine :
  engine ->
  ?config:Eval.config ->
  ?meters:Eval.meters ->
  ?pool:Pool.t ->
  Eval.env ->
  Expr.t ->
  Value.t
