(** Evaluation profiling: an EXPLAIN ANALYZE for bag-algebra queries.

    [run] evaluates an expression exactly like {!Eval} while building a
    profile tree: per AST node, the number of evaluations (binder bodies run
    once per bag member), the largest result support/cardinality seen, and
    the operator name.  This is how a user sees {e where} a query explodes —
    the practical face of the paper's complexity results, and the
    observable behind the optimiser experiments. *)

type profile = {
  op : string;
  mutable calls : int;
  mutable max_support : int;
  mutable max_cardinal : Bignat.t;
  children : profile list;
}

(* Node labels are shared with the evaluator's telemetry spans and budget
   reports, so a profile row and a --stats row for the same node agree. *)
let op_name = Expr.op_name

(* Build the profile skeleton following the AST, so repeated evaluations of
   the same node (binder bodies, fixpoint bodies) accumulate in one cell. *)
let rec skeleton e =
  {
    op = op_name e;
    calls = 0;
    max_support = 0;
    max_cardinal = Bignat.zero;
    children = List.map skeleton (Expr.children e);
  }

(* Pre-materialisation cap for the power operators, mirroring the
   evaluator's budget pre-charge: the expected output is bounded before
   the (unguarded) kernel runs, so overflow surfaces as the profiler's
   structured [Resource_limit], never an unstructured size exception. *)
let power_guard config op b =
  let n = Bag.expected_subbags b in
  if n > config.Eval.max_support then
    raise
      (Eval.Resource_limit
         (Printf.sprintf "%s: %s expected subbags exceed limit %d" op
            (if n = max_int then "over 2^62" else string_of_int n)
            config.Eval.max_support))

let observe p (v : Value.t) =
  p.calls <- p.calls + 1;
  match Value.view v with
  | Value.Bag pairs ->
      let support = List.length pairs in
      if support > p.max_support then p.max_support <- support;
      let card = Value.cardinal v in
      if Bignat.compare card p.max_cardinal > 0 then p.max_cardinal <- card
  | Value.Atom _ | Value.Tuple _ -> ()

(** Evaluate while profiling.  Returns the result and the profile tree. *)
let run ?config ?(env = Eval.Env.empty) e =
  let root = skeleton e in
  let config = Option.value config ~default:Eval.default_config in
  let meters = Eval.fresh_meters () in
  (* Mirror the evaluator's recursion, pairing each AST node with its
     profile cell.  Evaluation itself is delegated to Eval for binder-free
     leaves via direct construction, and re-implemented structurally here
     for the traversal (kept in lockstep with Eval's semantics through the
     shared Bag primitives). *)
  let rec go env (e : Expr.t) (p : profile) : Value.t =
    let child i = List.nth p.children i in
    let result =
      match e with
      | Expr.Var x -> (
          match Eval.Env.find_opt x env with
          | Some v -> v
          | None -> raise (Eval.Eval_error ("unbound variable " ^ x)))
      | Expr.Lit (v, _) -> v
      | Expr.Tuple es -> Value.tuple (List.mapi (fun i e -> go env e (child i)) es)
      | Expr.Proj (i, e0) -> (
          let v = go env e0 (child 0) in
          match Value.view v with
          | Value.Tuple vs when i >= 1 && i <= List.length vs -> List.nth vs (i - 1)
          | _ ->
              raise (Eval.Eval_error ("cannot project " ^ Value.to_string v)))
      | Expr.Sing e0 -> Value.bag_of_assoc [ (go env e0 (child 0), Bignat.one) ]
      | Expr.UnionAdd (a, b) -> Bag.union_add (go env a (child 0)) (go env b (child 1))
      | Expr.Diff (a, b) -> Bag.diff (go env a (child 0)) (go env b (child 1))
      | Expr.UnionMax (a, b) -> Bag.union_max (go env a (child 0)) (go env b (child 1))
      | Expr.Inter (a, b) -> Bag.inter (go env a (child 0)) (go env b (child 1))
      | Expr.Product (a, b) -> Bag.product (go env a (child 0)) (go env b (child 1))
      | Expr.Join (i, j, a, b) ->
          Bag.join_eq i j (go env a (child 0)) (go env b (child 1))
      | Expr.Powerset e0 ->
          let b = go env e0 (child 0) in
          power_guard config "powerset" b;
          Bag.powerset b
      | Expr.Powerbag e0 ->
          let b = go env e0 (child 0) in
          power_guard config "powerbag" b;
          Bag.powerbag b
      | Expr.Destroy e0 -> Bag.destroy (go env e0 (child 0))
      | Expr.Map (x, body, e0) ->
          Bag.map
            (fun v -> go (Eval.Env.add x v env) body (child 0))
            (go env e0 (child 1))
      | Expr.Select (x, l, r, e0) ->
          Bag.select
            (fun v ->
              let env' = Eval.Env.add x v env in
              Value.equal (go env' l (child 0)) (go env' r (child 1)))
            (go env e0 (child 2))
      | Expr.Dedup e0 -> Bag.dedup (go env e0 (child 0))
      | Expr.Nest (ixs, e0) -> Bag.nest ixs (go env e0 (child 0))
      | Expr.Unnest (i, e0) -> Bag.unnest i (go env e0 (child 0))
      | Expr.Let (x, e0, body) ->
          let v = go env e0 (child 0) in
          go (Eval.Env.add x v env) body (child 1)
      | Expr.Fix (x, body, seed) ->
          iterate env ~x ~body ~pbody:(child 0) ~bound:None (go env seed (child 1))
      | Expr.BFix (bound, x, body, seed) ->
          let b = go env bound (child 0) in
          iterate env ~x ~body ~pbody:(child 1) ~bound:(Some b)
            (go env seed (child 2))
    in
    observe p result;
    (* also keep the global guard honest *)
    (match Value.view result with
    | Value.Bag pairs when List.length pairs > config.Eval.max_support ->
        raise
          (Eval.Resource_limit
             (Printf.sprintf "bag support %d exceeds limit %d"
                (List.length pairs) config.Eval.max_support))
    | _ -> ());
    result
  and iterate env ~x ~body ~pbody ~bound current =
    let clamp v = match bound with None -> v | Some b -> Bag.inter v b in
    let rec loop steps current =
      if steps > config.Eval.max_fix_steps then
        raise (Eval.Resource_limit "fixpoint did not converge");
      let stepped = go (Eval.Env.add x current env) body pbody in
      let next = clamp (Bag.union_max stepped current) in
      if Value.equal next current then current else loop (steps + 1) next
    in
    loop 0 (clamp current)
  in
  ignore meters;
  let v = go env e root in
  (v, root)

(* The vec engine already reports its executed plan — the profile of
   interest here is which engine ran each subtree, so surface that plan
   instead of re-instrumenting the walk. *)
let run_vec ?(config = Eval.default_config) ?(env = Eval.Env.empty) e =
  let plan = ref None in
  match
    Veval.run
      ~limits:(Eval.limits_of_config config)
      ~report:(fun p -> plan := Some p)
      env e
  with
  | Ok v -> (
      match !plan with
      | Some p -> (v, p)
      | None -> assert false (* report fires on every exit path *))
  | Error x -> raise (Eval.Resource_limit (Budget.exhaustion_to_string x))

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE: measured output rows next to the Props estimate,
   per operator, plus the calibration table the comparison induces. *)

type annotated = {
  an_op : string;
  an_est : int;
  an_exact : bool;
  an_actual : int;
  an_calls : int;
  an_engine : string option;
  an_children : annotated list;
}

let analyze ?config ?(env = Eval.Env.empty) ?(vals = []) ~tenv ~engine e =
  (* Measured rows always come from the instrumented tree walk; when the
     vec engine is selected we additionally run it for the result value
     and its per-subtree engine labels.  Both engines are bit-identical
     by the differential suite, so the double evaluation only costs
     time, never changes the answer. *)
  let value_tree, prof = run ?config ~env e in
  let value, plan =
    match engine with
    | Veval.Tree -> (value_tree, None)
    | Veval.Vec ->
        let v, p = run_vec ?config ~env e in
        (v, Some p)
  in
  (* Estimates are the raw uncalibrated heuristics: analyze measures the
     estimator itself, so an ambient calibration must not contaminate
     the baseline. *)
  let raw = Props.infer ~vals ~calib:(fun _ -> None) tenv in
  let rec annot e (p : profile) plan =
    let est = raw e in
    let child_plans =
      match plan with
      | Some pl when List.length pl.Veval.p_children = List.length p.children
        ->
          List.map Option.some pl.Veval.p_children
      | _ -> List.map (fun _ -> None) p.children
    in
    let rec zip3 es ps pls =
      match (es, ps, pls) with
      | [], [], [] -> []
      | e :: es, p :: ps, pl :: pls -> annot e p pl :: zip3 es ps pls
      | _ -> []
    in
    {
      an_op = p.op;
      an_est = est.Props.rows;
      an_exact = est.Props.exact;
      an_actual = p.max_support;
      an_calls = p.calls;
      an_engine = Option.map (fun pl -> pl.Veval.p_engine) plan;
      an_children = zip3 (Expr.children e) p.children child_plans;
    }
  in
  (value, annot e prof plan)

let rec fold_annotated f acc a =
  List.fold_left (fold_annotated f) (f acc a) a.an_children

(* Operators whose estimate is a heuristic and was actually exercised:
   the population both the error table's summary and the calibration
   table draw from. *)
let calibratable a =
  a.an_calls > 0 && (not a.an_exact) && a.an_est < max_int

let calibration_of a =
  fold_annotated
    (fun acc n ->
      if calibratable n then (Calib.op_key n.an_op, n.an_est, n.an_actual) :: acc
      else acc)
    [] a
  |> List.rev |> Calib.of_observations

let q_error est actual =
  let e = float_of_int (max 1 est) and a = float_of_int (max 1 actual) in
  if a >= e then a /. e else e /. a

let pp_analysis ppf a =
  let fmt_rows n = if n = max_int then "inf" else string_of_int n in
  Format.fprintf ppf "%-32s %12s %12s %8s %6s  %s@\n" "operator" "est rows"
    "actual" "err" "calls" "engine";
  let rec row indent a =
    let err =
      if a.an_calls = 0 then "-"
      else Format.sprintf "%.2fx" (q_error a.an_est a.an_actual)
    in
    Format.fprintf ppf "%-32s %12s %12s %8s %6d  %s@\n"
      (String.make indent ' ' ^ a.an_op)
      (fmt_rows a.an_est ^ if a.an_exact then "=" else "~")
      (fmt_rows a.an_actual) err a.an_calls
      (Option.value a.an_engine ~default:"tree");
    List.iter (row (indent + 2)) a.an_children
  in
  row 0 a;
  let errs =
    fold_annotated
      (fun acc n ->
        if calibratable n then q_error n.an_est n.an_actual :: acc else acc)
      [] a
    |> List.sort compare
  in
  match errs with
  | [] -> Format.fprintf ppf "q-error: no heuristic operators exercised@\n"
  | _ ->
      let n = List.length errs in
      let median = List.nth errs (n / 2) in
      let worst = List.nth errs (n - 1) in
      Format.fprintf ppf
        "q-error over %d heuristic operator%s: median=%.2fx max=%.2fx@\n" n
        (if n = 1 then "" else "s")
        median worst

let analysis_to_string a = Format.asprintf "%a" (fun ppf -> pp_analysis ppf) a

let rec pp_profile ?(indent = 0) ppf p =
  Format.fprintf ppf "%s%-14s calls=%d  max support=%d  max cardinality=%s@\n"
    (String.make indent ' ') p.op p.calls p.max_support
    (Bignat.to_string p.max_cardinal);
  List.iter (pp_profile ~indent:(indent + 2) ppf) p.children

let profile_to_string p = Format.asprintf "%a" (fun ppf -> pp_profile ppf) p
