(** Lemma 5.7: compiling bounded arithmetic into the bag algebra.

    An integer [i] is the bag with [i] occurrences of [<a>]; addition is
    [∪+], multiplication is Cartesian product followed by restructuring, and
    bounded quantification ranges over a domain bag [D] of integer-bags
    (the paper builds [D(b{_n}) = P(E{^i}(b{_n}))] with the powerbag-based
    doubling [E]).  A formula with its quantified variables in scope compiles
    to the bag of satisfying assignments — a (duplicate-free) subbag of
    [D{^d}] — and a sentence compiles to a bag of empty tuples, nonempty iff
    the sentence is true.

    Variables are numbered by quantifier nesting from the outside in:
    [TVar 1] is the outermost quantified variable. *)

open Balg

type term =
  | TVar of int  (** 1-based, outermost quantifier first *)
  | TConst of int
  | TInput  (** the input integer [n], i.e. the bag [b{_n}] *)
  | TAdd of term * term
  | TMul of term * term

type formula =
  | Eq of term * term
  | Le of term * term
  | And of formula * formula
  | Or of formula * formula
  | Not of formula
  | Exists of formula  (** binds variable [d+1] where [d] is the depth *)
  | Forall of formula

(** {1 Reference semantics} (bounded quantification over [0..bound]) *)

let rec eval_term env ~input = function
  | TVar i -> List.nth env (i - 1)
  | TConst c -> c
  | TInput -> input
  | TAdd (s, t) -> eval_term env ~input s + eval_term env ~input t
  | TMul (s, t) -> eval_term env ~input s * eval_term env ~input t

let rec eval_formula ?(env = []) ~bound ~input = function
  | Eq (s, t) -> eval_term env ~input s = eval_term env ~input t
  | Le (s, t) -> eval_term env ~input s <= eval_term env ~input t
  | And (f, g) ->
      eval_formula ~env ~bound ~input f && eval_formula ~env ~bound ~input g
  | Or (f, g) ->
      eval_formula ~env ~bound ~input f || eval_formula ~env ~bound ~input g
  | Not f -> not (eval_formula ~env ~bound ~input f)
  | Exists f ->
      List.exists
        (fun v -> eval_formula ~env:(env @ [ v ]) ~bound ~input f)
        (List.init (bound + 1) Fun.id)
  | Forall f ->
      List.for_all
        (fun v -> eval_formula ~env:(env @ [ v ]) ~bound ~input f)
        (List.init (bound + 1) Fun.id)

(** {1 Compilation to BALG} *)

(* Multiplication of integer-bags: card(b1 × b2) = i*j, collapsed back onto
   <a> by the restructuring MAP. *)
let mul_nat e1 e2 = Derived.ones (Expr.Product (e1, e2))

(* A term, as an expression over the assignment tuple [w] of arity d. *)
let rec compile_term ~input w = function
  | TVar i -> Expr.Proj (i, Expr.Var w)
  | TConst c -> Derived.nat_lit c
  | TInput -> input
  | TAdd (s, t) ->
      Expr.UnionAdd (compile_term ~input w s, compile_term ~input w t)
  | TMul (s, t) -> mul_nat (compile_term ~input w s) (compile_term ~input w t)

let rec depth_of = function
  | Eq _ | Le _ -> 0
  | And (f, g) | Or (f, g) -> max (depth_of f) (depth_of g)
  | Not f -> depth_of f
  | Exists f | Forall f -> depth_of f

(* D^d as a bag of d-tuples of integer-bags; d = 0 gives the boolean unit
   {{<>}}. *)
let domain_power domain1 d =
  if d = 0 then
    Expr.Lit (Value.bag_of_list [ Value.tuple [] ], Ty.Bag (Ty.Tuple []))
  else
    let rec go k = if k = 1 then domain1 else Expr.Product (go (k - 1), domain1) in
    go d

(** [compile ~domain1 ~input ~depth f]: the bag of satisfying assignments of
    [f] under quantification domain [domain1] (a bag of 1-tuples of
    integer-bags), with [depth] variables in scope. *)
let rec compile ~domain1 ~input ~depth f =
  let dd = domain_power domain1 depth in
  match f with
  | Eq (s, t) ->
      let w = Expr.fresh_var "ar_w" in
      Expr.Select (w, compile_term ~input w s, compile_term ~input w t, dd)
  | Le (s, t) ->
      (* s <= t  iff  s -- t = 0 *)
      let w = Expr.fresh_var "ar_w" in
      Expr.Select
        ( w,
          Expr.Diff (compile_term ~input w s, compile_term ~input w t),
          Expr.Lit (Value.empty_bag, Ty.nat),
          dd )
  | And (f, g) ->
      Expr.Inter
        (compile ~domain1 ~input ~depth f, compile ~domain1 ~input ~depth g)
  | Or (f, g) ->
      Expr.UnionMax
        (compile ~domain1 ~input ~depth f, compile ~domain1 ~input ~depth g)
  | Not f -> Expr.Diff (dd, compile ~domain1 ~input ~depth f)
  | Exists f ->
      let inner = compile ~domain1 ~input ~depth:(depth + 1) f in
      if depth = 0 then
        (* project onto the empty tuple *)
        let w = Expr.fresh_var "ar_e" in
        Expr.Dedup (Expr.Map (w, Expr.Tuple [], inner))
      else
        Expr.Dedup (Expr.proj_attrs (List.init depth (fun i -> i + 1)) inner)
  | Forall f -> compile ~domain1 ~input ~depth (Not (Exists (Not f)))

(** Compile a sentence: the result is a bag of empty tuples, nonempty iff
    the sentence holds under quantification bounded by the domain. *)
let compile_sentence ~domain1 ~input f =
  if depth_of f <> 0 then invalid_arg "Arith.compile_sentence: open formula";
  compile ~domain1 ~input ~depth:0 f

(** Literal quantification domain [0..bound], for tests and experiments. *)
let literal_domain1 bound =
  Expr.Lit
    ( Value.bag_of_list (List.init (bound + 1) (fun i -> Value.tuple [ Value.nat i ])),
      Ty.Bag (Ty.Tuple [ Ty.nat ]) )

(** The paper's domain over the input bag: wraps
    [D(b) = P(E{^i}(b))] (powerbag-based doubling) into 1-tuples. *)
let paper_domain1 ~i b =
  let d = Expr.fresh_var "ar_d" in
  Expr.Map (d, Expr.Tuple [ Expr.Var d ], Derived.domain ~via_powerbag:true i b)

(** Truth through the algebra, with quantifiers bounded by [0..bound]. *)
let holds_via_algebra ?config ~bound ~input f =
  let e =
    compile_sentence ~domain1:(literal_domain1 bound)
      ~input:(Derived.nat_lit input) f
  in
  Eval.truthy (Eval.eval ?config (Eval.env_of_list []) e)
