(** Theorem 6.1: simulating a Turing machine inside BALG{^3} with the
    powerset.

    The construction follows the proof: a candidate computation is a bag of
    4-tuples [<t, j, sym, st>] (time index, cell index, cell content, state
    or the marker [g]); the expression powersets the space of all such
    tuples, [P(D × D × A × Q)], and keeps exactly the bags that encode an
    accepting run:

    - [phi1]: the time-1 layer equals the encoded input tape ([enc(B)]);
    - [phi2]: every pair of consecutive layers differs by a legal move —
      realised, as in the paper, with a move-window relation [M(B)] built by
      mapping over the index domain [D(B)];
    - [phi_contig] (implicit in the paper's indexing discipline): every
      later layer has a predecessor, so layers form a contiguous run;
    - [phi3]: some cell carries the accepting state.

    The paper's index domain [D(B) = P(E{^i}(B))] makes the expression
    hyper-exponential by design; the builder therefore takes the domain as a
    parameter.  With the literal domain [1..m] the whole expression is {e
    evaluable} for a one-move machine (experiment E14 runs it end to end);
    with {!paper_domain} it is the verbatim Theorem 6.1 shape, which we
    typecheck and classify but do not run. *)

open Balg

let marker = "g"

let nat1 = Derived.nat_lit 1
let succ_nat e = Expr.UnionAdd (e, nat1)

let window_ty = Ty.Bag (Ty.Tuple [ Ty.nat; Ty.Atom; Ty.Atom ])

(** A bag of 1-tuples wrapping the integer-bags [1..m]. *)
let literal_domain m =
  Expr.Lit
    ( Value.bag_of_list (List.init m (fun i -> Value.tuple [ Value.nat (i + 1) ])),
      Ty.Bag (Ty.Tuple [ Ty.nat ]) )

(** The paper's domain: all subbags of [E^i(B)] wrapped into 1-tuples
    (hyper-exponentially large; for typechecking the verbatim shape). *)
let paper_domain i b =
  let d = Expr.fresh_var "t61_d" in
  Expr.Map
    (d, Expr.Tuple [ Expr.Var d ],
     Derived.domain ~via_powerbag:false i b)

let atoms_bag_of names =
  Expr.Lit
    ( Value.bag_of_list (List.map (fun s -> Value.tuple [ Value.atom s ]) names),
      Ty.Bag (Ty.Tuple [ Ty.Atom ]) )

(** [space_expr ~domain tm]: the bag of all candidate cells
    [D × D × A × Q∪{g}]. *)
let space_expr ~domain tm =
  Expr.Product
    ( Expr.Product (domain, domain),
      Expr.Product
        ( atoms_bag_of tm.Turing.Tm.alphabet,
          atoms_bag_of (marker :: tm.Turing.Tm.states) ) )

(** The encoded input: the single legal time-1 tape as a bag-of-bags
    literal, [<j, sym, st>] cells with the head on cell 1. *)
let enc_value tm ~space input =
  let sym_at j =
    match List.nth_opt input (j - 1) with Some s -> s | None -> tm.Turing.Tm.blank
  in
  let tape =
    Value.bag_of_list
      (List.init space (fun i ->
           let j = i + 1 in
           Value.tuple
             [
               Value.nat j;
               Value.atom (sym_at j);
               Value.atom (if j = 1 then tm.Turing.Tm.start else marker);
             ]))
  in
  Expr.Lit (Value.bag_of_list [ tape ], Ty.Bag window_ty)

(** [move_windows ~domain tm]: the relation [M(B)] — one
    [<before-window, after-window>] pair per legal move and head position,
    built by MAPping over the domain exactly as in the proof. *)
let move_windows ~domain tm =
  let open Expr in
  let window_pair (q1, a1, q2, a2, dir) =
    let p = fresh_var "t61_p" in
    (* p = <j, b>: head-window position and bystander symbol *)
    let j = Proj (1, Var p) in
    let cell pos sym st = Sing (Tuple [ pos; sym; st ]) in
    let b = Proj (2, Var p) in
    let wb, wa =
      match dir with
      | Turing.Tm.Right ->
          ( UnionAdd (cell j (atom a1) (atom q1), cell (succ_nat j) b (atom marker)),
            UnionAdd (cell j (atom a2) (atom marker), cell (succ_nat j) b (atom q2)) )
      | Turing.Tm.Left ->
          ( UnionAdd (cell j b (atom marker), cell (succ_nat j) (atom a1) (atom q1)),
            UnionAdd (cell j b (atom q2), cell (succ_nat j) (atom a2) (atom marker)) )
    in
    Map (p, Tuple [ wb; wa ],
         Product (domain, atoms_bag_of tm.Turing.Tm.alphabet))
  in
  let moves =
    List.concat_map
      (fun q ->
        List.filter_map
          (fun a ->
            match tm.Turing.Tm.delta (q, a) with
            | Some (q2, a2, dir) -> Some (q, a, q2, a2, dir)
            | None -> None)
          tm.Turing.Tm.alphabet)
      tm.Turing.Tm.states
  in
  match List.map window_pair moves with
  | [] ->
      Expr.Lit (Value.empty_bag, Ty.Bag (Ty.Tuple [ window_ty; window_ty ]))
  | first :: rest ->
      Expr.Dedup (List.fold_left (fun acc m -> Expr.UnionMax (acc, m)) first rest)

(* The time-t layer of candidate x, as <j, sym, st> cells. *)
let layer x t =
  let u = Expr.fresh_var "t61_l" in
  Expr.proj_attrs [ 2; 3; 4 ]
    (Expr.Select (u, Expr.Proj (1, Expr.Var u), t, x))

(* Times having a successor layer inside x. *)
let times_with_succ x =
  let w = Expr.fresh_var "t61_w" in
  Expr.Dedup
    (Expr.proj_attrs [ 1 ]
       (Expr.Select
          (w, succ_nat (Expr.Proj (1, Expr.Var w)), Expr.Proj (5, Expr.Var w),
           Expr.Product (x, x))))

let all_times x = Expr.Dedup (Expr.proj_attrs [ 1 ] x)

(** The full Theorem 6.1 expression.  [domain] must contain at least the
    indices [1..space] for time and tape positions. *)
let tm_expr ~domain tm ~space input =
  let open Expr in
  let enc = enc_value tm ~space input in
  let m_rel = move_windows ~domain tm in
  let x = fresh_var "t61_x" in
  let xv = Var x in
  (* phi1: the time-1 layer is the encoded input *)
  let phi1 e =
    Select (x, Inter (Sing (layer xv nat1), enc), Sing (layer xv nat1), e)
  in
  (* phi_contig: every time is 1 or a successor of a present time *)
  let phi_contig e =
    let w = fresh_var "t61_s" in
    let one_tuple =
      Lit (Value.bag_of_list [ Value.tuple [ Value.nat 1 ] ], Ty.Bag (Ty.Tuple [ Ty.nat ]))
    in
    let succs = Map (w, Tuple [ succ_nat (Proj (1, Var w)) ], all_times xv) in
    Select
      ( x,
        Diff (all_times xv, UnionMax (one_tuple, Dedup succs)),
        empty (Ty.Bag (Ty.Tuple [ Ty.nat ])),
        e )
  in
  (* phi2: every consecutive pair of layers is a legal move *)
  let phi2 e =
    let w = fresh_var "t61_j" in
    let t = Proj (1, Var w) and wb = Proj (2, Var w) and wa = Proj (3, Var w) in
    let at = layer xv t and bt = layer xv (succ_nat t) in
    let legal =
      Expr.Dedup
        (Expr.proj_attrs [ 1 ]
           (Select
              ( w, Diff (at, wb), Diff (bt, wa),
                Select
                  ( w, Inter (bt, wa), wa,
                    Select
                      ( w, Inter (at, wb), wb,
                        Product (times_with_succ xv, m_rel) ) ) )))
    in
    Select
      ( x,
        Diff (times_with_succ xv, legal),
        empty (Ty.Bag (Ty.Tuple [ Ty.nat ])),
        e )
  in
  (* phi3: the accepting state appears *)
  let phi3 e =
    let u = fresh_var "t61_f" in
    Select
      ( x,
        Dedup
          (Derived.ones
             (Select (u, Proj (4, Var u), atom tm.Turing.Tm.accept, xv))),
        Lit
          ( Value.bag_of_list [ Value.tuple [ Value.atom "a" ] ],
            Ty.Bag (Ty.Tuple [ Ty.Atom ]) ),
        e )
  in
  phi3 (phi2 (phi_contig (phi1 (Powerset (space_expr ~domain tm)))))

(** Evaluable instance: literal domain [1..m]. *)
let tm_expr_literal tm ~space input = tm_expr ~domain:(literal_domain space) tm ~space input

(** Verbatim paper shape over a free input bag [B] with domain
    [P(E{^i}(B))]; for static analysis only. *)
let tm_expr_paper ~i tm ~space input =
  tm_expr ~domain:(paper_domain i (Expr.Var "B")) tm ~space input

(** Decide acceptance by evaluating the literal-domain expression. *)
let accepts ?config tm ~space input =
  let e = tm_expr_literal tm ~space input in
  Eval.truthy (Eval.eval ?config (Eval.env_of_list []) e)
