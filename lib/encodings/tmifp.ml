(** Theorem 6.6, executably: BALG{^2} + IFP simulates Turing machines.

    A machine configuration history is a bag of 4-tuples
    [<t, j, sym, st>] where [t] and [j] are integer-bags (time and cell
    index), [sym] is the cell content and [st] is either the machine state
    (on the head cell) or the marker [g].  The inflationary fixpoint grows
    the bag one time layer per iteration: each algebra iteration derives the
    time-[t+1] layer from the time-[t] layer by joining the head cell with
    its neighbour and carrying every other cell across unchanged — exactly
    the (a)–(c) clauses in the proof.  The iteration reaches a fixpoint when
    the machine halts (no move applies), which is how the paper's IFP
    terminates. *)

open Balg

let marker = "g"

let cell_ty = Ty.Tuple [ Ty.nat; Ty.nat; Ty.Atom; Ty.Atom ]
let conf_ty = Ty.Bag cell_ty

let nat1 = Derived.nat_lit 1
let succ_nat e = Expr.UnionAdd (e, nat1)

(** The literal initial configuration: time 1, the input written from cell 1
    on, blanks up to [space], head on cell 1 in the start state. *)
let seed_value (tm : Turing.Tm.t) ~space input =
  let cell j sym st =
    Value.tuple [ Value.nat 1; Value.nat j; Value.atom sym; Value.atom st ]
  in
  let sym_at j =
    match List.nth_opt input (j - 1) with Some s -> s | None -> tm.Turing.Tm.blank
  in
  Value.bag_of_list
    (List.init space (fun i ->
         let j = i + 1 in
         cell j (sym_at j)
           (if j = 1 then tm.Turing.Tm.start else marker)))

(* One move rule: derive the successor layer contributions of the move
   (q1, a1) -> (q2, a2, dir) from the history [x]. *)
let move_expr (x : Expr.t) ~(q1 : string) ~(a1 : string) ~(q2 : string)
    ~(a2 : string) ~(dir : Turing.Tm.move) =
  let open Expr in
  let u = fresh_var "tm_u" and w = fresh_var "tm_w" in
  (* head cells of any time layer carrying (a1, q1) *)
  let heads =
    Select (u, Proj (3, Var u), atom a1,
      Select (u, Proj (4, Var u), atom q1, x))
  in
  let head_tj = proj_attrs [ 1; 2 ] heads in
  (* every cell paired with the head of its own time layer:
     <t, i, sym, st, t', j> with t = t' *)
  let same_time =
    Select (w, Proj (1, Var w), Proj (5, Var w), Product (x, head_tj))
  in
  (* cells not under the head (marker g) at those layers *)
  let bystanders = Select (w, Proj (4, Var w), atom marker, same_time) in
  (* the cell the head moves onto *)
  let neighbour_sel =
    match dir with
    | Turing.Tm.Right ->
        Select (w, Proj (2, Var w), succ_nat (Proj (6, Var w)), bystanders)
    | Turing.Tm.Left ->
        Select (w, succ_nat (Proj (2, Var w)), Proj (6, Var w), bystanders)
  in
  let bump_time body e = Map (w, body, e) in
  let new_head =
    (* the written cell loses the head marker *)
    bump_time
      (Tuple [ succ_nat (Proj (1, Var w)); Proj (2, Var w); atom a2; atom marker ])
      heads
  in
  let new_neighbour =
    bump_time
      (Tuple [ succ_nat (Proj (1, Var w)); Proj (2, Var w); Proj (3, Var w); atom q2 ])
      neighbour_sel
  in
  let frame =
    bump_time
      (Tuple
         [ succ_nat (Proj (1, Var w)); Proj (2, Var w); Proj (3, Var w); Proj (4, Var w) ])
      (Diff (bystanders, neighbour_sel))
  in
  UnionMax (new_head, UnionMax (new_neighbour, frame))

let moves_of tm =
  List.concat_map
    (fun q ->
      List.filter_map
        (fun a ->
          match tm.Turing.Tm.delta (q, a) with
          | Some (q2, a2, dir) -> Some (q, a, q2, a2, dir)
          | None -> None)
        tm.Turing.Tm.alphabet)
    tm.Turing.Tm.states

(** The fixpoint body: all applicable move rules, deduplicated. *)
let step_expr tm x =
  let contributions =
    List.map
      (fun (q1, a1, q2, a2, dir) -> move_expr x ~q1 ~a1 ~q2 ~a2 ~dir)
      (moves_of tm)
  in
  match contributions with
  | [] -> x
  | first :: rest ->
      Expr.Dedup (List.fold_left (fun acc c -> Expr.UnionMax (acc, c)) first rest)

(** The full history of the computation as one IFP expression over the seed
    variable [B0]. *)
let history_expr tm = Expr.Fix ("X", step_expr tm (Expr.Var "X"), Expr.Var "B0")

(** Nonempty iff the machine reaches its accepting state. *)
let accept_expr tm =
  let u = Expr.fresh_var "tm_acc" in
  Expr.Select
    (u, Expr.Proj (4, Expr.Var u), Expr.atom tm.Turing.Tm.accept, history_expr tm)

(** The final (fixpoint) time layer, projected to [<j, sym, st>] — the
    output tape decoding step of the proof. *)
let final_tape_expr tm =
  let open Expr in
  let h = fresh_var "tm_h" and w = fresh_var "tm_w" and u = fresh_var "tm_u" in
  Let
    ( h,
      history_expr tm,
      let times = Dedup (proj_attrs [ 1 ] (Var h)) in
      (* times having a successor layer *)
      let with_succ =
        Dedup
          (proj_attrs [ 1 ]
             (Select (w, succ_nat (Proj (1, Var w)), Proj (2, Var w),
                Product (times, times))))
      in
      let final_t = Diff (times, with_succ) in
      (* join the history with the final time on the time component *)
      proj_attrs [ 2; 3; 4 ]
        (Select (u, Proj (1, Var u), Proj (5, Var u), Product (Var h, final_t))) )

(** Count of [1] symbols on the final tape, as an integer-bag — used to read
    off the result of the unary-successor machine. *)
let ones_output_expr tm =
  let u = Expr.fresh_var "tm_o" in
  Derived.ones
    (Expr.Select (u, Expr.Proj (2, Expr.Var u), Expr.atom "1", final_tape_expr tm))

(** Run a machine through the algebra.  Returns the truthiness of
    {!accept_expr} on the given unary/symbol input. *)
let simulate ?config tm ~space input =
  let env = Eval.env_of_list [ ("B0", seed_value tm ~space input) ] in
  Eval.eval ?config env (accept_expr tm)

let accepts ?config tm ~space input = Eval.truthy (simulate ?config tm ~space input)

let output_ones ?config tm ~space input =
  let env = Eval.env_of_list [ ("B0", seed_value tm ~space input) ] in
  Bignat.to_int_exn
    (Value.nat_value (Eval.eval ?config env (ones_output_expr tm)))

(** Typing environment for the expressions above. *)
let type_env = Typecheck.env_of_list [ ("B0", conf_ty) ]
