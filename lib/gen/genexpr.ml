(** Random BALG{^1} expression generators.

    Used by the Prop 4.2 simulation test (BALG{^1} without subtraction has
    the same membership behaviour as the relational algebra without
    difference) and by the randomized equivalence checks of the rewriting
    engine.  Expressions are generated type-directed: every generated
    expression denotes a bag of flat tuples of a known arity over the given
    environment. *)

open Balg

type env_spec = (string * int) list
(** database bag names with their tuple arities *)

let pick rng l = List.nth l (Random.State.int rng (List.length l))

(** [flat ~allow_diff ~allow_dedup rng env depth arity] generates a BALG{^1}
    expression of type [{{U{^arity}}}] over [env]. *)
let rec flat ?(allow_diff = true) ?(allow_dedup = true) rng (env : env_spec)
    depth arity =
  let recur = flat ~allow_diff ~allow_dedup rng env in
  let base () =
    let candidates = List.filter (fun (_, a) -> a = arity) env in
    match candidates with
    | [] ->
        (* No database bag of this arity: project one down or build a
           constant bag. *)
        let wider = List.filter (fun (_, a) -> a > arity) env in
        (match wider with
        | [] ->
            Expr.Lit
              ( Value.bag_of_list
                  [ Value.tuple (List.init arity (fun i -> Value.atom (Genval.atom_name i))) ],
                Ty.relation arity )
        | _ ->
            let name, a = pick rng wider in
            let ixs = List.init arity (fun _ -> 1 + Random.State.int rng a) in
            Expr.proj_attrs ixs (Expr.Var name))
    | _ -> Expr.Var (fst (pick rng candidates))
  in
  if depth <= 0 then base ()
  else
    let choice = Random.State.int rng 10 in
    match choice with
    | 0 | 1 -> Expr.UnionAdd (recur (depth - 1) arity, recur (depth - 1) arity)
    | 2 -> Expr.UnionMax (recur (depth - 1) arity, recur (depth - 1) arity)
    | 3 -> Expr.Inter (recur (depth - 1) arity, recur (depth - 1) arity)
    | 4 when allow_diff ->
        Expr.Diff (recur (depth - 1) arity, recur (depth - 1) arity)
    | 5 when arity >= 2 ->
        (* split the arity across a product *)
        let left = 1 + Random.State.int rng (arity - 1) in
        Expr.Product (recur (depth - 1) left, recur (depth - 1) (arity - left))
    | 6 ->
        (* select on equality of two attributes *)
        let e = recur (depth - 1) arity in
        let i = 1 + Random.State.int rng arity
        and j = 1 + Random.State.int rng arity in
        let x = Expr.fresh_var "gsel" in
        Expr.Select (x, Expr.Proj (i, Expr.Var x), Expr.Proj (j, Expr.Var x), e)
    | 7 ->
        (* projection / attribute duplication from a wider expression *)
        let wide = arity + Random.State.int rng 2 in
        let e = recur (depth - 1) wide in
        let ixs = List.init arity (fun _ -> 1 + Random.State.int rng wide) in
        Expr.proj_attrs ixs e
    | 8 when allow_dedup -> Expr.Dedup (recur (depth - 1) arity)
    | _ -> base ()

(** [nested rng env depth arity]: a small BALG{^2} expression of type
    [{{U{^arity}}}] — like {!flat} but allowed to detour through one level
    of bag nesting (powerset/destroy, nest/unnest, singleton/destroy).
    Sizes are kept small so powersets stay materialisable. *)
let rec nested rng (env : env_spec) depth arity =
  if depth <= 0 then flat rng env 0 arity
  else
    match Random.State.int rng 8 with
    | 0 ->
        (* destroy of a powerset: back to the same type *)
        Expr.Destroy (Expr.Powerset (nested rng env (depth - 1) arity))
    | 1 ->
        (* destroy of a singleton *)
        Expr.Destroy (Expr.Sing (nested rng env (depth - 1) arity))
    | 2 when arity >= 2 ->
        (* nest then unnest on a prefix key: the identity, exercised *)
        let keys = 1 + Random.State.int rng (arity - 1) in
        Expr.Unnest
          (keys + 1, Expr.Nest (List.init keys (fun i -> i + 1),
                                nested rng env (depth - 1) arity))
    | 3 ->
        Expr.Dedup (nested rng env (depth - 1) arity)
    | 4 ->
        Expr.UnionAdd (nested rng env (depth - 1) arity, nested rng env (depth - 1) arity)
    | 5 ->
        Expr.Inter (nested rng env (depth - 1) arity, nested rng env (depth - 1) arity)
    | _ -> flat rng env depth arity

let env_types (env : env_spec) : (string * Ty.t) list =
  List.map (fun (name, a) -> (name, Ty.relation a)) env

(** Random instance for an environment spec: every bag gets random flat
    tuples. *)
let instance rng ?(n_atoms = 4) ?(size = 6) ?(max_count = 3) (env : env_spec) =
  List.map
    (fun (name, arity) ->
      (name, Genval.flat_bag rng ~n_atoms ~arity ~size ~max_count))
    env
