(** Random nested-bag databases and workloads.

    All generators are deterministic functions of an explicit
    [Random.State.t], so experiments are reproducible from a seed. *)

open Balg

let alphabet = [| "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h"; "i"; "j" |]

let atom_name i =
  if i < Array.length alphabet then alphabet.(i) else Printf.sprintf "c%d" i

(** A random atom among [n_atoms] constants. *)
let atom rng ~n_atoms = Value.atom (atom_name (Random.State.int rng n_atoms))

(** A random flat tuple of the given arity. *)
let flat_tuple rng ~n_atoms ~arity =
  Value.tuple (List.init arity (fun _ -> atom rng ~n_atoms))

(** A random bag of flat tuples: [size] draws with multiplicities in
    [1..max_count]. *)
let flat_bag rng ~n_atoms ~arity ~size ~max_count =
  Value.bag_of_assoc
    (List.init size (fun _ ->
         ( flat_tuple rng ~n_atoms ~arity,
           Bignat.of_int (1 + Random.State.int rng max_count) )))

(** A random value of an arbitrary type (bags get supports of at most
    [width]). *)
let rec of_type rng ~n_atoms ~width ~max_count (ty : Ty.t) =
  match ty with
  | Ty.Atom -> atom rng ~n_atoms
  | Ty.Tuple ts -> Value.tuple (List.map (of_type rng ~n_atoms ~width ~max_count) ts)
  | Ty.Bag t ->
      let n = Random.State.int rng (width + 1) in
      Value.bag_of_assoc
        (List.init n (fun _ ->
             ( of_type rng ~n_atoms ~width ~max_count t,
               Bignat.of_int (1 + Random.State.int rng max_count) )))

(** A random directed graph on [n] named nodes with edge probability [p],
    as a binary relation (set). *)
let graph rng ~n ~p =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Random.State.float rng 1.0 < p then
        edges :=
          Value.tuple [ Value.atom (atom_name i); Value.atom (atom_name j) ]
          :: !edges
    done
  done;
  Value.bag_of_list !edges

(** A random unary relation (set) over [n_atoms] constants: each constant is
    included independently with probability [p]. *)
let unary_relation rng ~n_atoms ~p =
  let members = ref [] in
  for i = 0 to n_atoms - 1 do
    if Random.State.float rng 1.0 < p then
      members := Value.tuple [ Value.atom (atom_name i) ] :: !members
  done;
  Value.bag_of_list !members

(** The reflexive total order (by atom name index) over the first [n_atoms]
    constants, restricted to the members of unary relation [r]. *)
let leq_relation r =
  let members =
    List.map
      (fun v -> match Value.view v with Value.Tuple [ a ] -> a | _ -> v)
      (Value.support r)
  in
  let pairs =
    List.concat_map
      (fun x ->
        List.filter_map
          (fun y ->
            if Value.compare x y <= 0 then Some (Value.tuple [ x; y ]) else None)
          members)
      members
  in
  Value.bag_of_list pairs

(** Reference transitive closure of a binary relation (set semantics), used
    as the oracle for the algebra's bounded-fixpoint TC. *)
let transitive_closure_ref g =
  let module VS = Set.Make (struct
    type t = Value.t * Value.t

    let compare (a, b) (c, d) =
      let cv = Value.compare a c in
      if cv <> 0 then cv else Value.compare b d
  end) in
  let edges =
    List.filter_map
      (fun v ->
        match Value.view v with Value.Tuple [ x; y ] -> Some (x, y) | _ -> None)
      (Value.support g)
  in
  let rec saturate acc =
    let next =
      VS.fold
        (fun (a, b) acc ->
          VS.fold
            (fun (c, d) acc -> if Value.equal b c then VS.add (a, d) acc else acc)
            acc acc)
        acc acc
    in
    if VS.cardinal next = VS.cardinal acc then acc else saturate next
  in
  let closed = saturate (VS.of_list edges) in
  Value.bag_of_list
    (List.map (fun (a, b) -> Value.tuple [ a; b ]) (VS.elements closed))
