(** The [.bagdb] database file format: named, typed bags.

    {v
    # comment
    bag G : {{<U, U>}} = {{ <'a,'b>, <'b,'a>:2 }}
    v}

    The loader is {e validating}: every malformed-input shape — broken
    syntax, a truncated or bit-flipped file, a value that does not have
    its declared type, duplicate bag names, an oversized multiplicity —
    surfaces as a located {!Db_error}, never as an uncaught lexer/parser
    exception or a crash (the corrupted-database fuzz suite,
    [test_bagdb_fuzz.ml], holds the loader to exactly that contract). *)

open Balg

type error = {
  path : string option;  (** the file, when loading one *)
  offset : int;  (** byte offset of the offending input, 0 for I/O errors *)
  reason : string;
}

exception Db_error of error

val error_to_string : error -> string

type t = (string * Ty.t * Value.t) list

val parse : ?path:string -> ?max_count_digits:int -> string -> t
(** Values are checked against their declared types; duplicate bag names
    are rejected; multiplicities over [max_count_digits] decimal digits
    (default 10,000 — {!Budget.default}'s bound) are rejected before any
    big-number arithmetic touches them.  @raise Db_error, and nothing
    else, on every malformed input. *)

val load : ?max_count_digits:int -> string -> t
(** Read and {!parse} a file.  I/O failures (missing file, permission,
    short read) raise {!Db_error} too.  The [bagdb.load] {!Fault} site
    fires here: an injected short read truncates the content at a
    deterministic offset, which the validating parser then rejects (or,
    for a truncation at a declaration boundary, loads as a prefix). *)

val type_env : t -> Typecheck.env
val value_env : t -> Eval.env

val render : t -> string
(** Re-parseable textual form. *)
