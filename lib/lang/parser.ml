(** Recursive-descent parser for the BALG surface syntax.

    Grammar (loosest to tightest):
    {v
    expr     ::= "let" IDENT "=" expr "in" expr | add
    add      ::= vee (("++" | "--") vee)*          additive union / monus
    vee      ::= wedge (\/ wedge)*                 maximal union
    wedge    ::= prod (/\ prod)*                   intersection
    prod     ::= postfix ("*" postfix)*            Cartesian product
    postfix  ::= primary ("." INT)*                attribute projection
    primary  ::= "(" expr ")" | "<" exprs ">" | bag-literal | 'atom
               | "pi" "[" ints "]" "(" expr ")"
               | "nest" "[" ints "]" "(" expr ")" | "unnest" "[" INT "]" "(" expr ")"
               | "join" "[" INT "," INT "]" "(" expr "," expr ")"
               | "map" "(" IDENT "->" expr "," expr ")"
               | "select" "(" IDENT "->" expr "==" expr "," expr ")"
               | "fix" "(" IDENT "->" expr "," expr ")"
               | "bfix" "(" expr "," IDENT "->" expr "," expr ")"
               | ("powerset"|"powerbag"|"destroy"|"dedup"|"sing") "(" expr ")"
               | "empty" "(" type ")" | IDENT
    type     ::= "U" | "<" types ">" | "{{" type "}}"
    value    ::= 'atom | "<" values ">" | "{{" (value (":" INT)?),* "}}"
    v}

    Bag literals appearing in expressions are parsed as values and must have
    an inferable type; write [empty({{T}})] for empty bags. *)

open Balg

exception Parse_error of string * int

let error msg pos = raise (Parse_error (msg, pos))

type stream = { mutable toks : (Lexer.token * int) list }

let peek st = match st.toks with [] -> (Lexer.EOF, 0) | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  let t, pos = peek st in
  if t = tok then advance st
  else
    error
      (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string t))
      pos

let expect_ident st =
  match peek st with
  | Lexer.IDENT x, _ ->
      advance st;
      x
  | t, pos ->
      error
        (Printf.sprintf "expected an identifier, found %s" (Lexer.token_to_string t))
        pos

let expect_int st =
  match peek st with
  | Lexer.INT s, _ ->
      advance st;
      s
  | t, pos ->
      error
        (Printf.sprintf "expected an integer, found %s" (Lexer.token_to_string t))
        pos

(* --- types ---------------------------------------------------------------- *)

let rec parse_ty st : Ty.t =
  match peek st with
  | Lexer.IDENT "U", _ ->
      advance st;
      Ty.Atom
  | Lexer.LANGLE, _ ->
      advance st;
      let rec items acc =
        match peek st with
        | Lexer.RANGLE, _ ->
            advance st;
            List.rev acc
        | Lexer.COMMA, _ ->
            advance st;
            items acc
        | _ -> items (parse_ty st :: acc)
      in
      Ty.Tuple (items [])
  | Lexer.LBAG, _ ->
      advance st;
      let t = parse_ty st in
      expect st Lexer.RBAG;
      Ty.Bag t
  | t, pos ->
      error (Printf.sprintf "expected a type, found %s" (Lexer.token_to_string t)) pos

(* --- values ---------------------------------------------------------------- *)

let rec parse_value st : Value.t =
  match peek st with
  | Lexer.ATOM a, _ ->
      advance st;
      Value.atom a
  | Lexer.LANGLE, _ ->
      advance st;
      let rec items acc =
        match peek st with
        | Lexer.RANGLE, _ ->
            advance st;
            List.rev acc
        | Lexer.COMMA, _ ->
            advance st;
            items acc
        | _ -> items (parse_value st :: acc)
      in
      Value.tuple (items [])
  | Lexer.LBAG, _ ->
      advance st;
      let rec items acc =
        match peek st with
        | Lexer.RBAG, _ ->
            advance st;
            List.rev acc
        | Lexer.COMMA, _ ->
            advance st;
            items acc
        | _ ->
            let v = parse_value st in
            let count =
              match peek st with
              | Lexer.COLON, _ ->
                  advance st;
                  Bignat.of_string (expect_int st)
              | _ -> Bignat.one
            in
            items ((v, count) :: acc)
      in
      Value.bag_of_assoc (items [])
  | t, pos ->
      error (Printf.sprintf "expected a value, found %s" (Lexer.token_to_string t)) pos

(* --- expressions ------------------------------------------------------------ *)

let rec parse_expr st : Expr.t =
  match peek st with
  | Lexer.IDENT "let", _ ->
      advance st;
      let x = expect_ident st in
      expect st Lexer.EQUAL;
      let e = parse_expr st in
      (match peek st with
      | Lexer.IDENT "in", _ -> advance st
      | t, pos ->
          error
            (Printf.sprintf "expected 'in', found %s" (Lexer.token_to_string t))
            pos);
      Expr.Let (x, e, parse_expr st)
  | _ -> parse_add st

and parse_add st =
  let rec go acc =
    match peek st with
    | Lexer.PLUSPLUS, _ ->
        advance st;
        go (Expr.UnionAdd (acc, parse_vee st))
    | Lexer.MINUSMINUS, _ ->
        advance st;
        go (Expr.Diff (acc, parse_vee st))
    | _ -> acc
  in
  go (parse_vee st)

and parse_vee st =
  let rec go acc =
    match peek st with
    | Lexer.VEE, _ ->
        advance st;
        go (Expr.UnionMax (acc, parse_wedge st))
    | _ -> acc
  in
  go (parse_wedge st)

and parse_wedge st =
  let rec go acc =
    match peek st with
    | Lexer.WEDGE, _ ->
        advance st;
        go (Expr.Inter (acc, parse_prod st))
    | _ -> acc
  in
  go (parse_prod st)

and parse_prod st =
  let rec go acc =
    match peek st with
    | Lexer.STAR, _ ->
        advance st;
        go (Expr.Product (acc, parse_postfix st))
    | _ -> acc
  in
  go (parse_postfix st)

and parse_postfix st =
  let rec go acc =
    match peek st with
    | Lexer.DOT, _ ->
        advance st;
        go (Expr.Proj (int_of_string (expect_int st), acc))
    | _ -> acc
  in
  go (parse_primary st)

and parse_unary_call st ctor =
  expect st Lexer.LPAREN;
  let e = parse_expr st in
  expect st Lexer.RPAREN;
  ctor e

and parse_binder st =
  expect st Lexer.LPAREN;
  let x = expect_ident st in
  expect st Lexer.ARROW;
  (x, ())

and parse_primary st =
  match peek st with
  | Lexer.LPAREN, _ ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.LANGLE, _ ->
      advance st;
      let rec items acc =
        match peek st with
        | Lexer.RANGLE, _ ->
            advance st;
            List.rev acc
        | Lexer.COMMA, _ ->
            advance st;
            items acc
        | _ -> items (parse_expr st :: acc)
      in
      Expr.Tuple (items [])
  | Lexer.ATOM a, _ ->
      advance st;
      Expr.atom a
  | Lexer.LBAG, pos ->
      let v = parse_value st in
      (match Value.infer v with
      | Some ty when not (Value.is_empty_bag v) -> Expr.Lit (v, ty)
      | Some _ | None ->
          error "bag literal has no inferable type (use empty({{T}}) or a \
                 homogeneous bag)" pos)
  | Lexer.IDENT "nest", _ ->
      advance st;
      expect st Lexer.LBRACKET;
      let rec ints acc =
        match peek st with
        | Lexer.RBRACKET, _ ->
            advance st;
            List.rev acc
        | Lexer.COMMA, _ ->
            advance st;
            ints acc
        | _ -> ints (int_of_string (expect_int st) :: acc)
      in
      let ixs = ints [] in
      parse_unary_call st (fun e -> Expr.Nest (ixs, e))
  | Lexer.IDENT "unnest", _ ->
      advance st;
      expect st Lexer.LBRACKET;
      let i = int_of_string (expect_int st) in
      expect st Lexer.RBRACKET;
      parse_unary_call st (fun e -> Expr.Unnest (i, e))
  | Lexer.IDENT "join", _ ->
      advance st;
      expect st Lexer.LBRACKET;
      let i = int_of_string (expect_int st) in
      expect st Lexer.COMMA;
      let j = int_of_string (expect_int st) in
      expect st Lexer.RBRACKET;
      expect st Lexer.LPAREN;
      let a = parse_expr st in
      expect st Lexer.COMMA;
      let b = parse_expr st in
      expect st Lexer.RPAREN;
      Expr.Join (i, j, a, b)
  | Lexer.IDENT "pi", _ ->
      advance st;
      expect st Lexer.LBRACKET;
      let rec ints acc =
        match peek st with
        | Lexer.RBRACKET, _ ->
            advance st;
            List.rev acc
        | Lexer.COMMA, _ ->
            advance st;
            ints acc
        | _ -> ints (int_of_string (expect_int st) :: acc)
      in
      let ixs = ints [] in
      parse_unary_call st (Expr.proj_attrs ixs)
  | Lexer.IDENT "map", _ ->
      advance st;
      let x, () = parse_binder st in
      let body = parse_expr st in
      expect st Lexer.COMMA;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      Expr.Map (x, body, e)
  | Lexer.IDENT "select", _ ->
      advance st;
      let x, () = parse_binder st in
      let l = parse_expr st in
      expect st Lexer.EQEQ;
      let r = parse_expr st in
      expect st Lexer.COMMA;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      Expr.Select (x, l, r, e)
  | Lexer.IDENT "fix", _ ->
      advance st;
      let x, () = parse_binder st in
      let body = parse_expr st in
      expect st Lexer.COMMA;
      let seed = parse_expr st in
      expect st Lexer.RPAREN;
      Expr.Fix (x, body, seed)
  | Lexer.IDENT "bfix", _ ->
      advance st;
      expect st Lexer.LPAREN;
      let bound = parse_expr st in
      expect st Lexer.COMMA;
      let x = expect_ident st in
      expect st Lexer.ARROW;
      let body = parse_expr st in
      expect st Lexer.COMMA;
      let seed = parse_expr st in
      expect st Lexer.RPAREN;
      Expr.BFix (bound, x, body, seed)
  | Lexer.IDENT "powerset", _ ->
      advance st;
      parse_unary_call st Expr.powerset
  | Lexer.IDENT "powerbag", _ ->
      advance st;
      parse_unary_call st Expr.powerbag
  | Lexer.IDENT "destroy", _ ->
      advance st;
      parse_unary_call st Expr.destroy
  | Lexer.IDENT "dedup", _ ->
      advance st;
      parse_unary_call st Expr.dedup
  | Lexer.IDENT "sing", _ ->
      advance st;
      parse_unary_call st Expr.sing
  | Lexer.IDENT "empty", _ ->
      advance st;
      expect st Lexer.LPAREN;
      let ty = parse_ty st in
      expect st Lexer.RPAREN;
      (match ty with
      | Ty.Bag _ -> Expr.empty ty
      | _ -> error "empty(T) requires a bag type" 0)
  | Lexer.IDENT x, _ ->
      advance st;
      Expr.Var x
  | t, pos ->
      error
        (Printf.sprintf "expected an expression, found %s" (Lexer.token_to_string t))
        pos

(* --- entry points ------------------------------------------------------------ *)

let of_tokens parse s =
  let st = { toks = Lexer.tokenize s } in
  let result = parse st in
  (match peek st with
  | Lexer.EOF, _ -> ()
  | t, pos ->
      error (Printf.sprintf "trailing input: %s" (Lexer.token_to_string t)) pos);
  result

let expr_of_string s = of_tokens parse_expr s
let value_of_string s = of_tokens parse_value s
let ty_of_string s = of_tokens parse_ty s
