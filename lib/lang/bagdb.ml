(* The [.bagdb] loader; see bagdb.mli for the validation contract. *)

open Balg

type error = { path : string option; offset : int; reason : string }

exception Db_error of error

let error_to_string e =
  match e.path with
  | Some p -> Printf.sprintf "%s: offset %d: %s" p e.offset e.reason
  | None -> Printf.sprintf "offset %d: %s" e.offset e.reason

type t = (string * Ty.t * Value.t) list

(* Injection site (see fault.mli): simulates the I/O failures a production
   loader meets — a short read truncates the content at a deterministic,
   seed-derived offset before parsing. *)
let load_site = Fault.register "bagdb.load"

let m_loads = Metrics.counter Metrics.default "balg_bagdb_loads_total"
    ~help:"Database files loaded successfully"

let m_load_errors = Metrics.counter Metrics.default "balg_bagdb_errors_total"
    ~help:"Database loads rejected with a located Db_error"

let db_error ?path ~offset fmt =
  Printf.ksprintf (fun reason -> raise (Db_error { path; offset; reason })) fmt

(* Reject absurd multiplicities before any Bignat arithmetic is asked to
   chew on them: a count with millions of digits is a corruption (or an
   attack), not data.  One walk over the parsed value. *)
let rec check_counts ?path ~offset ~max_digits v =
  match Value.view v with
  | Value.Atom _ -> ()
  | Value.Tuple vs -> List.iter (check_counts ?path ~offset ~max_digits) vs
  | Value.Bag pairs ->
      List.iter
        (fun (w, c) ->
          if Bignat.digits c > max_digits then
            db_error ?path ~offset
              "multiplicity has %d digits (limit %d)" (Bignat.digits c)
              max_digits;
          check_counts ?path ~offset ~max_digits w)
        pairs

let parse ?path ?(max_count_digits = 10_000) (source : string) : t =
  (* Every way the lexer/parser/typechecker can reject the input funnels
     into a located Db_error; the final catch-all keeps the "nothing but
     Db_error" contract even for failure shapes we did not anticipate
     (fuzzing's job is to find those). *)
  let wrap ~offset f =
    try f () with
    | Db_error _ as e -> raise e
    | Lexer.Lex_error (msg, pos) -> db_error ?path ~offset:pos "lex error: %s" msg
    | Parser.Parse_error (msg, pos) ->
        db_error ?path ~offset:pos "parse error: %s" msg
    | Typecheck.Type_error msg -> db_error ?path ~offset "type error: %s" msg
    | Stack_overflow -> db_error ?path ~offset "nesting too deep"
    | e -> db_error ?path ~offset "malformed input: %s" (Printexc.to_string e)
  in
  let st = { Parser.toks = wrap ~offset:0 (fun () -> Lexer.tokenize source) } in
  let rec decls acc seen =
    match Parser.peek st with
    | Lexer.EOF, _ -> List.rev acc
    | Lexer.IDENT "bag", offset ->
        let decl =
          wrap ~offset (fun () ->
              Parser.advance st;
              (* The duplicate diagnostic must point {e into} the second,
                 offending definition — at the repeated name itself, not at
                 the original declaration (or merely at this record's [bag]
                 keyword): peek the identifier's own offset before
                 consuming it. *)
              let name_offset = snd (Parser.peek st) in
              let name = Parser.expect_ident st in
              if List.mem name seen then
                db_error ?path ~offset:name_offset "duplicate bag name %s"
                  name;
              Parser.expect st Lexer.COLON;
              let ty = Parser.parse_ty st in
              Parser.expect st Lexer.EQUAL;
              let v = Parser.parse_value st in
              check_counts ?path ~offset ~max_digits:max_count_digits v;
              if not (Value.has_type ty v) then
                db_error ?path ~offset
                  "bag %s: value %s does not have declared type %s" name
                  (Value.to_string v) (Ty.to_string ty);
              (name, ty, v))
        in
        let n, _, _ = decl in
        decls (decl :: acc) (n :: seen)
    | t, offset ->
        db_error ?path ~offset "expected 'bag', found %s"
          (Lexer.token_to_string t)
  in
  decls [] []

let load ?max_count_digits path =
  if Obs.on () then Obs.emit Obs.B ~cat:"bagdb" ~name:"load" ~args:[ ("path", Obs.Str path) ];
  match
    let content =
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | Sys_error msg -> db_error ~path ~offset:0 "cannot read: %s" msg
      | End_of_file -> db_error ~path ~offset:0 "short read (file truncated?)"
    in
    let content =
      match Fault.fire_payload load_site with
      | None -> content
      | Some cut -> String.sub content 0 (cut mod (String.length content + 1))
    in
    parse ~path ?max_count_digits content
  with
  | db ->
      Metrics.incr m_loads;
      if Obs.on () then Obs.emit Obs.E ~cat:"bagdb" ~name:"load" ~args:[ ("bags", Obs.Int (List.length db)) ];
      db
  | exception (Db_error e as exn) ->
      Metrics.incr m_load_errors;
      if Obs.on () then Obs.emit Obs.E ~cat:"bagdb" ~name:"load" ~args:[ ("error", Obs.Str e.reason); ("offset", Obs.Int e.offset) ];
      raise exn

let type_env (db : t) = Typecheck.env_of_list (List.map (fun (n, ty, _) -> (n, ty)) db)
let value_env (db : t) = Eval.env_of_list (List.map (fun (n, _, v) -> (n, v)) db)

let render (db : t) =
  String.concat "\n"
    (List.map
       (fun (n, ty, v) ->
         Printf.sprintf "bag %s : %s = %s" n (Ty.to_string ty) (Value.to_string v))
       db)
