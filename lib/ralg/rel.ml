(** Nested relations: the set-semantics baseline (RALG / RALG{^k}).

    A relation is a finite {e set} of complex objects.  We reuse
    {!Balg.Value.t} for object representation — a set is a bag in which every
    multiplicity is one, recursively — but all operations here are genuine
    set operations, implemented independently of the bag interpreter, so the
    baseline can be compared against BALG rather than being derived from
    it. *)

open Balg

type t = Value.t list
(** strictly increasing in [Value.compare] *)

let of_list vs = List.sort_uniq Value.compare vs
let to_list (r : t) : Value.t list = r
let empty : t = []
let is_empty r = r = []
let mem v (r : t) = List.exists (Value.equal v) r
let cardinal = List.length

(** Deep conversion: forgets multiplicities at every level. *)
let rec set_value_of (v : Value.t) : Value.t =
  match Value.view v with
  | Value.Atom _ -> v
  | Value.Tuple vs -> Value.tuple (List.map set_value_of vs)
  | Value.Bag pairs ->
      Value.bag_of_assoc
        (List.map (fun (x, _) -> (set_value_of x, Bignat.one)) pairs)

let of_value v = List.map set_value_of (Value.support v)
let to_value (r : t) : Value.t = Value.bag_of_list r

(** [is_set_value v] checks the recursive all-multiplicities-one
    invariant. *)
let rec is_set_value (v : Value.t) =
  match Value.view v with
  | Value.Atom _ -> true
  | Value.Tuple vs -> List.for_all is_set_value vs
  | Value.Bag pairs ->
      List.for_all (fun (x, c) -> Bignat.is_one c && is_set_value x) pairs

let rec merge_union a b =
  match (a, b) with
  | [], r | r, [] -> r
  | x :: xs, y :: ys ->
      let c = Value.compare x y in
      if c < 0 then x :: merge_union xs b
      else if c > 0 then y :: merge_union a ys
      else x :: merge_union xs ys

let union = merge_union

let rec inter a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | x :: xs, y :: ys ->
      let c = Value.compare x y in
      if c < 0 then inter xs b
      else if c > 0 then inter a ys
      else x :: inter xs ys

let rec diff a b =
  match (a, b) with
  | [], _ -> []
  | r, [] -> r
  | x :: xs, y :: ys ->
      let c = Value.compare x y in
      if c < 0 then x :: diff xs b
      else if c > 0 then diff a ys
      else diff xs ys

let subset a b = List.for_all (fun x -> mem x b) a

let product (a : t) (b : t) : t =
  of_list
    (List.concat_map
       (fun x ->
         List.map (fun y -> Value.tuple (Value.as_tuple x @ Value.as_tuple y)) b)
       a)

let map f (r : t) : t = of_list (List.map f r)
let select p (r : t) : t = List.filter p r

(** All subsets, as set values. *)
let powerset (r : t) : t =
  let subsets =
    List.fold_left
      (fun acc x -> acc @ List.map (fun s -> x :: s) acc)
      [ [] ] r
  in
  of_list (List.map (fun s -> Value.bag_of_list s) subsets)

(** Set-flatten a set of sets. *)
let destroy (r : t) : t =
  of_list (List.concat_map (fun v -> List.map fst (Value.as_bag v)) r)
