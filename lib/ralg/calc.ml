(** CALC{_1}: the calculus with quantification over sets of tuples of atoms
    (§5, after [HS91] and [AB87]).

    CALC{_1} is the logic whose expressive power Theorem 5.3 ties to the
    pebble game and to RALG{^2}: a typed calculus over the constructible
    types [U], [<U,...,U>] and [{<U,...,U>}], with the logical predicates
    [∈], [⊆] and [=], evaluated under {e active-domain} semantics — each
    quantified variable of type [T] ranges over [dom(T, A)], the objects of
    type [T] built from the atomic constants of the input structure.

    This module evaluates CALC{_1} formulas directly (the domains are
    exponential in the input, which is the point: RALG{^2} is PSPACE).  The
    tests use it to cross-check the algebra on concrete queries, completing
    the [AB87] correspondence exercised by Theorem 5.2's separation. *)

open Balg

exception Calc_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Calc_error s)) fmt

(** The CALC{_1} types: atoms, tuples of atoms, sets of tuples of atoms. *)
type vty = VAtom | VTuple of int | VSet of int

let pp_vty ppf = function
  | VAtom -> Format.pp_print_string ppf "U"
  | VTuple k -> Format.fprintf ppf "U^%d" k
  | VSet k -> Format.fprintf ppf "{U^%d}" k

type term =
  | TVar of string
  | TConst of string  (** an atom *)
  | TComp of term * int  (** tuple component, 1-based *)

type formula =
  | Rel of string * term  (** [R(t)]: membership in a named database set *)
  | Eq of term * term
  | Mem of term * term  (** [t ∈ S] *)
  | Sub of term * term  (** [S ⊆ S'] *)
  | True
  | And of formula * formula
  | Or of formula * formula
  | Not of formula
  | Exists of string * vty * formula
  | Forall of string * vty * formula

(** A structure: named sets of flat tuples (set semantics). *)
type structure = (string * Rel.t) list

let active_atoms (db : structure) : Value.t list =
  let atoms =
    List.concat_map
      (fun (_, r) -> List.concat_map Value.atoms (Rel.to_list r))
      db
  in
  List.map (fun a -> Value.atom a)
    (List.sort_uniq String.compare atoms)

(* dom(T, A): all objects of type T over the active atoms. *)
let rec tuples_of atoms k =
  if k = 0 then [ [] ]
  else
    List.concat_map
      (fun rest -> List.map (fun a -> a :: rest) atoms)
      (tuples_of atoms (k - 1))

let domain_of (db : structure) : vty -> Value.t list =
  let atoms = active_atoms db in
  fun vty ->
    match vty with
    | VAtom -> atoms
    | VTuple k -> List.map (fun vs -> Value.tuple vs) (tuples_of atoms k)
    | VSet k ->
        let members = List.map (fun vs -> Value.tuple vs) (tuples_of atoms k) in
        if List.length members > 20 then
          err "set domain over %d tuples is too large to enumerate"
            (List.length members);
        List.fold_left
          (fun acc m -> acc @ List.map (fun s -> m :: s) acc)
          [ [] ] members
        |> List.map Value.bag_of_list

type env = (string * Value.t) list

let rec eval_term (env : env) = function
  | TVar x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> err "unbound variable %s" x)
  | TConst a -> Value.atom a
  | TComp (t, i) -> (
      let v = eval_term env t in
      match Value.view v with
      | Value.Tuple vs when i >= 1 && i <= List.length vs -> List.nth vs (i - 1)
      | _ -> err "component %d of non-tuple %s" i (Value.to_string v))

let rec holds (db : structure) (env : env) = function
  | True -> true
  | Rel (r, t) -> (
      match List.assoc_opt r db with
      | Some rel -> Rel.mem (eval_term env t) rel
      | None -> err "unknown relation %s" r)
  | Eq (t1, t2) -> Value.equal (eval_term env t1) (eval_term env t2)
  | Mem (t, s) ->
      let b = eval_term env s in
      if Value.is_bag b then
        not (Bignat.is_zero (Value.count_in (eval_term env t) b))
      else err "∈ on non-set %s" (Value.to_string b)
  | Sub (s1, s2) ->
      let b1 = eval_term env s1 and b2 = eval_term env s2 in
      if Value.is_bag b1 && Value.is_bag b2 then Bag.subbag b1 b2
      else err "⊆ on non-sets"
  | And (f, g) -> holds db env f && holds db env g
  | Or (f, g) -> holds db env f || holds db env g
  | Not f -> not (holds db env f)
  | Exists (x, vty, f) ->
      List.exists (fun v -> holds db ((x, v) :: env) f) (domain_of db vty)
  | Forall (x, vty, f) ->
      List.for_all (fun v -> holds db ((x, v) :: env) f) (domain_of db vty)

(** [query db (x, vty) phi]: the set of objects of type [vty] satisfying
    the formula with free variable [x] — the CALC{_1} query semantics. *)
let query (db : structure) ((x, vty) : string * vty) (phi : formula) : Rel.t =
  Rel.of_list
    (List.filter (fun v -> holds db [ (x, v) ] phi) (domain_of db vty))

(** A closed formula as a boolean query. *)
let sentence (db : structure) (phi : formula) : bool = holds db [] phi

(** {1 Rendering} *)

let rec pp_term ppf = function
  | TVar x -> Format.pp_print_string ppf x
  | TConst a -> Format.fprintf ppf "'%s" a
  | TComp (t, i) -> Format.fprintf ppf "%a.%d" pp_term t i

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Rel (r, t) -> Format.fprintf ppf "%s(%a)" r pp_term t
  | Eq (t1, t2) -> Format.fprintf ppf "%a = %a" pp_term t1 pp_term t2
  | Mem (t, s) -> Format.fprintf ppf "%a ∈ %a" pp_term t pp_term s
  | Sub (s1, s2) -> Format.fprintf ppf "%a ⊆ %a" pp_term s1 pp_term s2
  | And (f, g) -> Format.fprintf ppf "(%a ∧ %a)" pp f pp g
  | Or (f, g) -> Format.fprintf ppf "(%a ∨ %a)" pp f pp g
  | Not f -> Format.fprintf ppf "¬%a" pp f
  | Exists (x, vty, f) -> Format.fprintf ppf "∃%s:%a. %a" x pp_vty vty pp f
  | Forall (x, vty, f) -> Format.fprintf ppf "∀%s:%a. %a" x pp_vty vty pp f
