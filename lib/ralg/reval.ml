(** Set-semantics (nested relational algebra) evaluation of BALG syntax.

    This is the baseline the paper compares BALG against.  The operators of
    the nested relation algebra carry the same names as the bag operators and
    "when applied to bags where each element occurs at most once, behave
    exactly as the corresponding relational operations" (§3) — here they are
    interpreted over genuine sets via {!Rel}:

    - [∪+] and [∪] both become set union;
    - [−], [∩], [×], [P], [σ] become their set versions;
    - [MAP] is the relational restructuring (image set);
    - [ε] is the identity;
    - [Pb] is rejected: distinguishing duplicates is meaningless on sets.

    Together with {!Balg.Eval} this gives the two sides of Proposition 4.2
    (BALG{^1} without [−] ≡ RALG without [−] on set inputs) and of the
    separation theorems (Prop 4.3, Thm 5.2). *)

open Balg

exception Ralg_error of string

let error fmt = Format.kasprintf (fun s -> raise (Ralg_error s)) fmt

module Env = Map.Make (String)

type env = Value.t Env.t

let env_of_list l =
  List.fold_left (fun m (x, v) -> Env.add x (Rel.set_value_of v) m) Env.empty l

let as_rel v = Rel.of_value v

let rec eval (env : env) (e : Expr.t) : Value.t =
  match e with
  | Expr.Var x -> (
      match Env.find_opt x env with
      | Some v -> v
      | None -> error "unbound variable %s" x)
  | Expr.Lit (v, _) -> Rel.set_value_of v
  | Expr.Tuple es -> Value.tuple (List.map (eval env) es)
  | Expr.Proj (i, e) -> (
      let v = eval env e in
      match Value.view v with
      | Value.Tuple vs when i >= 1 && i <= List.length vs -> List.nth vs (i - 1)
      | _ -> error "cannot project attribute %d of %s" i (Value.to_string v))
  | Expr.Sing e -> Value.bag_of_list [ eval env e ]
  | Expr.UnionAdd (a, b) | Expr.UnionMax (a, b) ->
      Rel.to_value (Rel.union (as_rel (eval env a)) (as_rel (eval env b)))
  | Expr.Diff (a, b) ->
      Rel.to_value (Rel.diff (as_rel (eval env a)) (as_rel (eval env b)))
  | Expr.Inter (a, b) ->
      Rel.to_value (Rel.inter (as_rel (eval env a)) (as_rel (eval env b)))
  | Expr.Product (a, b) ->
      Rel.to_value (Rel.product (as_rel (eval env a)) (as_rel (eval env b)))
  | Expr.Join (i, j, a, b) ->
      (* set operands carry unit counts, so the bag hash join is already
         the relational equijoin *)
      Rel.set_value_of (Bag.join_eq i j (eval env a) (eval env b))
  | Expr.Powerset e -> Rel.to_value (Rel.powerset (as_rel (eval env e)))
  | Expr.Powerbag _ -> error "powerbag has no set semantics"
  | Expr.Destroy e -> Rel.to_value (Rel.destroy (as_rel (eval env e)))
  | Expr.Map (x, body, e) ->
      Rel.to_value
        (Rel.map (fun v -> eval (Env.add x v env) body) (as_rel (eval env e)))
  | Expr.Select (x, l, r, e) ->
      Rel.to_value
        (Rel.select
           (fun v ->
             let env' = Env.add x v env in
             Value.equal (eval env' l) (eval env' r))
           (as_rel (eval env e)))
  | Expr.Dedup e -> eval env e
  | Expr.Nest (ixs, e) ->
      (* set semantics: nested groups are sets *)
      Rel.set_value_of (Bag.nest ixs (eval env e))
  | Expr.Unnest (i, e) -> Rel.set_value_of (Bag.unnest i (eval env e))
  | Expr.Let (x, e, body) -> eval (Env.add x (eval env e) env) body
  | Expr.Fix (x, body, seed) -> iterate env ~x ~body ~bound:None (eval env seed)
  | Expr.BFix (bound, x, body, seed) ->
      let bound = as_rel (eval env bound) in
      iterate env ~x ~body ~bound:(Some bound) (eval env seed)

and iterate env ~x ~body ~bound current =
  let clamp r = match bound with None -> r | Some b -> Rel.inter r b in
  let rec go steps current =
    if steps > 100_000 then error "fixpoint did not converge";
    let stepped = as_rel (eval (Env.add x (Rel.to_value current) env) body) in
    let next = clamp (Rel.union stepped current) in
    if Rel.to_list next = Rel.to_list current then current else go (steps + 1) next
  in
  Rel.to_value (go 0 (clamp (as_rel current)))

(** Membership test used by the Proposition 4.2 comparison. *)
let member env e v = Rel.mem (Rel.set_value_of v) (as_rel (eval env e))
