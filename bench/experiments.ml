(* The experiment harness: regenerates every table, the figure, and every
   quantitative claim of the paper (see DESIGN.md §4 and EXPERIMENTS.md).
   Each experiment prints a self-contained section with the paper's value
   next to the measured one. *)

open Balg
module B = Bignat
module Tm = Turing.Tm

let section id title source =
  Printf.printf "\n=== %s — %s (%s) ===\n" id title source

let check_mark ok = if ok then "ok" else "MISMATCH"

let ev ?config ?(env = []) e = Eval.eval ?config (Eval.env_of_list env) e

let rel1 l = Value.bag_of_list (List.map (fun x -> Value.tuple [ Value.atom x ]) l)

(* ------------------------------------------------------------------ E1 *)

let e01_powerset_vs_powerbag () =
  section "E1" "powerset vs powerbag cardinality" "§1/§5";
  Printf.printf "%4s | %12s %12s | %18s %18s\n" "n" "card P(b_n)" "paper: n+1"
    "card Pb(b_n)" "paper: 2^n";
  List.iter
    (fun n ->
      let bn = Value.replicate (B.of_int n) (Value.atom "a") in
      let p = Value.cardinal (Bag.powerset bn) in
      let pb = Value.cardinal (Bag.powerbag bn) in
      Printf.printf "%4d | %12s %12d | %18s %18s  %s\n" n (B.to_string p) (n + 1)
        (B.to_string pb)
        (B.to_string (B.pow2 n))
        (check_mark (B.equal p (B.of_int (n + 1)) && B.equal pb (B.pow2 n))))
    [ 0; 1; 2; 4; 8; 12; 16 ]

(* ------------------------------------------------------------------ E2 *)

let e02_duplicate_explosion () =
  section "E2" "duplicate creation by P and delta" "Prop 3.2";
  Printf.printf "per-constant occurrences in delta(P(B)), B = k constants x m \
                 copies\n";
  Printf.printf "%3s %3s | %16s | %16s\n" "k" "m" "measured" "m(m+1)^k/2";
  List.iter
    (fun (k, m) ->
      let b =
        Value.bag_of_assoc
          (List.init k (fun i -> (Value.atom (Printf.sprintf "x%d" i), B.of_int m)))
      in
      let dp = Bag.destroy (Bag.powerset b) in
      let measured = Value.count_in (Value.atom "x0") dp in
      let formula = B.div (B.mul (B.of_int m) (B.pow (B.of_int (m + 1)) k)) B.two in
      Printf.printf "%3d %3d | %16s | %16s  %s\n" k m (B.to_string measured)
        (B.to_string formula)
        (check_mark (B.equal measured formula)))
    [ (1, 1); (1, 4); (2, 2); (2, 4); (3, 2); (4, 1); (3, 3) ];
  Printf.printf "\nper-constant occurrences in delta(delta(P(P(B))))\n";
  Printf.printf "%3s %3s | %28s | %28s\n" "k" "m" "measured"
    "2^((m+1)^k - 2) (m+1)^k m";
  List.iter
    (fun (k, m) ->
      let b =
        Value.bag_of_assoc
          (List.init k (fun i -> (Value.atom (Printf.sprintf "x%d" i), B.of_int m)))
      in
      let v = Bag.destroy (Bag.destroy (Bag.powerset (Bag.powerset b))) in
      let measured = Value.count_in (Value.atom "x0") v in
      let n = B.to_int_exn (B.pow (B.of_int (m + 1)) k) in
      let formula = B.mul (B.pow2 (n - 2)) (B.mul (B.of_int n) (B.of_int m)) in
      Printf.printf "%3d %3d | %28s | %28s  %s\n" k m (B.to_string measured)
        (B.to_string formula)
        (check_mark (B.equal measured formula)))
    [ (1, 1); (1, 2); (2, 1); (1, 3); (2, 2) ]

(* ------------------------------------------------------------------ E3 *)

let e03_aggregates () =
  section "E3" "aggregate functions through the algebra" "§3";
  let rng = Random.State.make [| 31 |] in
  Printf.printf "%20s | %8s %8s | %s\n" "bag of integers" "algebra" "direct" "";
  let trials =
    List.init 6 (fun _ ->
        List.init (1 + Random.State.int rng 5) (fun _ -> Random.State.int rng 9))
  in
  List.iter
    (fun ints ->
      let bag = Expr.lit (Value.bag_of_list (List.map Value.nat ints)) (Ty.Bag Ty.nat) in
      let alg_sum = B.to_int_exn (Value.nat_value (ev (Derived.sum bag))) in
      let direct_sum = List.fold_left ( + ) 0 ints in
      let alg_cnt = B.to_int_exn (Value.nat_value (ev (Derived.ones bag))) in
      let alg_favg = B.to_int_exn (Value.nat_value (ev (Derived.floor_average bag))) in
      let direct_favg =
        if ints = [] then 0 else direct_sum / List.length ints
      in
      Printf.printf "%20s | sum %4d %4d avg %2d %2d count %d %d  %s\n"
        (String.concat "," (List.map string_of_int ints))
        alg_sum direct_sum alg_favg direct_favg alg_cnt (List.length ints)
        (check_mark
           (alg_sum = direct_sum && alg_favg = direct_favg
           && alg_cnt = List.length ints)))
    trials

(* ------------------------------------------------------------------ E4 *)

let e04_identities () =
  section "E4" "operator inter-definability" "§3 / Prop 3.1";
  let rng = Random.State.make [| 17 |] in
  let trials = 300 in
  let rate name f =
    let ok = ref 0 in
    for _ = 1 to trials do
      if f rng then incr ok
    done;
    Printf.printf "  %-44s %4d/%d  %s\n" name !ok trials
      (check_mark (!ok = trials))
  in
  let rand_bag ?(arity = 1) rng =
    Baggen.Genval.flat_bag rng ~n_atoms:4 ~arity ~size:5 ~max_count:3
  in
  rate "union-add from max-union" (fun rng ->
      let x = rand_bag ~arity:2 rng and y = rand_bag ~arity:2 rng in
      let l v = Expr.lit v (Ty.relation 2) in
      Value.equal (ev (Derived.unionadd_via_max ~arity:2 (l x) (l y))) (Bag.union_add x y));
  rate "subtraction from powerset" (fun rng ->
      let x = rand_bag rng and y = rand_bag rng in
      let l v = Expr.lit v (Ty.relation 1) in
      Value.equal (ev (Derived.diff_via_powerset (l x) (l y))) (Bag.diff x y));
  rate "dedup from powerset (flat)" (fun rng ->
      let x = rand_bag ~arity:2 rng in
      Value.equal
        (ev (Derived.dedup_via_powerset_flat (Expr.lit x (Ty.relation 2))))
        (Bag.dedup x));
  rate "dedup from powerset (nested)" (fun rng ->
      let x = rand_bag rng and y = rand_bag rng in
      let nested = Value.bag_of_assoc [ (x, B.of_int 2); (y, B.one) ] in
      Value.equal
        (ev (Derived.dedup_via_powerset_nested (Expr.lit nested (Ty.Bag (Ty.relation 1)))))
        (Bag.dedup nested))

(* ------------------------------------------------------------------ E5 *)

let e05_selfjoin_table () =
  section "E5" "the worked occurrence-count table" "§4";
  Printf.printf "Q(B) = pi_{1,4}(sigma_{2=3}(B x B)), B = n x <a,b> ++ m x <b,a>\n";
  Printf.printf "%3s %3s | %6s %6s %6s %6s | paper: ab,ba -> 0; aa,bb -> nm\n"
    "n" "m" "ab" "ba" "aa" "bb";
  List.iter
    (fun (n, m) ->
      let b =
        Value.bag_of_assoc
          [
            (Value.tuple [ Value.atom "a"; Value.atom "b" ], B.of_int n);
            (Value.tuple [ Value.atom "b"; Value.atom "a" ], B.of_int m);
          ]
      in
      let q = ev (Derived.selfjoin (Expr.lit b (Ty.relation 2))) in
      let c x y =
        B.to_int_exn (Value.count_in (Value.tuple [ Value.atom x; Value.atom y ]) q)
      in
      Printf.printf "%3d %3d | %6d %6d %6d %6d | %s\n" n m (c "a" "b") (c "b" "a")
        (c "a" "a") (c "b" "b")
        (check_mark
           (c "a" "b" = 0 && c "b" "a" = 0 && c "a" "a" = n * m && c "b" "b" = n * m)))
    [ (1, 1); (2, 3); (5, 4); (7, 7); (10, 3) ];
  Printf.printf "\nintermediate multiplicities at n=2, m=3 (the full table):\n";
  let b =
    Value.bag_of_assoc
      [
        (Value.tuple [ Value.atom "a"; Value.atom "b" ], B.of_int 2);
        (Value.tuple [ Value.atom "b"; Value.atom "a" ], B.of_int 3);
      ]
  in
  let prod = ev Expr.(lit b (Ty.relation 2) *** lit b (Ty.relation 2)) in
  let sel =
    ev
      (Expr.select "w" (Expr.Proj (2, Expr.Var "w")) (Expr.Proj (3, Expr.Var "w"))
         (Expr.lit prod (Ty.relation 4)))
  in
  let c bag x =
    B.to_string (Value.count_in (Value.tuple (List.map (fun s -> Value.atom s) x)) bag)
  in
  Printf.printf "  BxB:  abab=%s (n^2)  baba=%s (m^2)  baab=%s abba=%s (nm)\n"
    (c prod [ "a"; "b"; "a"; "b" ])
    (c prod [ "b"; "a"; "b"; "a" ])
    (c prod [ "b"; "a"; "a"; "b" ])
    (c prod [ "a"; "b"; "b"; "a" ]);
  Printf.printf "  after sigma_{2=3}: abab=%s baba=%s baab=%s abba=%s\n"
    (c sel [ "a"; "b"; "a"; "b" ])
    (c sel [ "b"; "a"; "b"; "a" ])
    (c sel [ "b"; "a"; "a"; "b" ])
    (c sel [ "a"; "b"; "b"; "a" ])

(* ------------------------------------------------------------------ E6 *)

let e06_polynomial_counts () =
  section "E6" "polynomial abstraction of BALG^1" "Prop 4.1 / 4.5";
  let cases =
    [
      ("B", Expr.Var "B");
      ("B ++ B", Expr.(Var "B" ++ Var "B"));
      ("pi1(B x B)", Expr.proj_attrs [ 1 ] Expr.(Var "B" *** Var "B"));
      ("pi1(BxB) -- B", Expr.(Expr.proj_attrs [ 1 ] (Var "B" *** Var "B") -- Var "B"));
      ("dedup(B ++ B)", Expr.Dedup Expr.(Var "B" ++ Var "B"));
      ("B /\\ dedup(B)", Expr.(Var "B" &&& Dedup (Var "B")));
    ]
  in
  Printf.printf "%-18s | %-24s | agreement with eval at n in {N+1..N+5}\n"
    "expression" "P_t(n) for t = <a>";
  List.iter
    (fun (name, e) ->
      let a = Polyab.analyze ~input:"B" e in
      let poly =
        match Polyab.polynomial_of a (Value.tuple [ Value.atom "a" ]) with
        | Some p -> Poly.to_string p
        | None -> "0"
      in
      let agree =
        List.for_all
          (fun d -> Polyab.agrees_with_eval ~input:"B" e a ~n:(a.Polyab.threshold + d))
          [ 1; 2; 3; 4; 5 ]
      in
      Printf.printf "%-18s | %-24s | %s\n" name poly (check_mark agree))
    cases;
  Printf.printf
    "\nconsequence (Prop 4.5): counts are eventually monotone, so bag-even\n\
     (count alternating n / 0) is not expressible in BALG^1.  Reference\n\
     bag-even on B_n for n = 1..6: %s\n"
    (String.concat " "
       (List.map (fun n -> if n mod 2 = 0 then "B_n" else "{}") [ 1; 2; 3; 4; 5; 6 ]))

(* ------------------------------------------------------------------ E7 *)

let e07_degree_compare () =
  section "E7" "in-degree > out-degree on random graphs" "Example 4.1";
  let rng = Random.State.make [| 23 |] in
  let trials = 200 in
  let ok = ref 0 in
  for _ = 1 to trials do
    let g = Baggen.Genval.graph rng ~n:6 ~p:0.4 in
    let node = Baggen.Genval.atom_name (Random.State.int rng 6) in
    let direct =
      let count f =
        List.length
          (List.filter
             (fun v ->
               match Value.view v with
               | Value.Tuple [ x; y ] -> f x y
               | _ -> false)
             (Value.support g))
      in
      count (fun _ y -> Value.equal y (Value.atom node))
      > count (fun x _ -> Value.equal x (Value.atom node))
    in
    let algebra =
      Eval.truthy
        (ev (Derived.indeg_gt_outdeg (Expr.lit g (Ty.relation 2)) (Expr.atom node)))
    in
    if direct = algebra then incr ok
  done;
  Printf.printf "agreement with direct degree counting: %d/%d  %s\n" !ok trials
    (check_mark (!ok = trials))

(* ------------------------------------------------------------------ E8 *)

let e08_zero_one_law () =
  section "E8" "no 0-1 law: mu_n(|R| > |S|) tends to 1/2" "Example 4.2 / [FGT93]";
  let rng = Random.State.make [| 41 |] in
  Printf.printf "%6s | %8s | %s\n" "n" "mu_n" "stderr";
  List.iter
    (fun n ->
      let p, se =
        Baggen.Stats.bernoulli ~trials:3000 rng (fun rng ->
            let r = Baggen.Genval.unary_relation rng ~n_atoms:n ~p:0.5 in
            let s = Baggen.Genval.unary_relation rng ~n_atoms:n ~p:0.5 in
            Eval.truthy
              (ev
                 (Derived.card_gt
                    (Expr.lit r (Ty.relation 1))
                    (Expr.lit s (Ty.relation 1)))))
      in
      Printf.printf "%6d | %8.3f | %.3f\n" n p se)
    [ 2; 4; 8; 16; 32; 64; 128 ];
  print_endline "paper: the asymptotic probability is 1/2 (so neither 0 nor 1)"

(* ------------------------------------------------------------------ E9 *)

let e09_parity_order () =
  section "E9" "parity of |R| with an order" "§4 / [LW93a]";
  Printf.printf "%4s | %8s | %8s\n" "|R|" "algebra" "truth";
  let all_ok = ref true in
  List.iter
    (fun n ->
      let names = List.init n (fun i -> Printf.sprintf "e%02d" i) in
      let r = rel1 names in
      let leq = Baggen.Genval.leq_relation r in
      let got =
        Eval.truthy
          (ev
             (Derived.parity_even
                (Expr.lit r (Ty.relation 1))
                (Expr.lit leq (Ty.relation 2))))
      in
      let want = n mod 2 = 0 && n > 0 in
      if got <> want then all_ok := false;
      Printf.printf "%4d | %8s | %8s\n" n
        (if got then "even" else "odd")
        (if n mod 2 = 0 then "even" else "odd"))
    [ 1; 2; 3; 4; 5; 6; 9; 12 ];
  Printf.printf "all agree (n >= 1): %s\n" (check_mark !all_ok);
  print_endline
    "paper: definable with order (shown); not definable without [LW94];\n\
     not first-order definable even with order (Ehrenfeucht-Fraisse)"

(* ------------------------------------------------------------------ E10 *)

let e10_balg1_growth () =
  section "E10" "BALG^1 multiplicities grow polynomially" "Thm 4.4 (LOGSPACE)";
  (* a 3-fold product with selections: the worst polynomial in the query *)
  let q =
    Expr.proj_attrs [ 1 ]
      Expr.(Var "B" *** Var "B" *** Var "B")
  in
  Printf.printf "query: pi1(B x B x B) on B_n; max multiplicity should be n^3\n";
  Printf.printf "%6s | %16s | %16s\n" "n" "max count" "n^3";
  List.iter
    (fun n ->
      let meters = Eval.fresh_meters () in
      let bn = Value.replicate (B.of_int n) (Value.tuple [ Value.atom "a" ]) in
      ignore (Eval.eval ~meters (Eval.env_of_list [ ("B", bn) ]) q);
      Printf.printf "%6d | %16s | %16d  %s\n" n
        (B.to_string meters.Eval.max_count_seen)
        (n * n * n)
        (check_mark (B.equal meters.Eval.max_count_seen (B.of_int (n * n * n)))))
    [ 2; 4; 8; 16; 32; 64 ];
  print_endline
    "polynomial counts fit in O(log n) bits as pointers+counters: the\n\
     LOGSPACE bound of Thm 4.4"

(* ------------------------------------------------------------------ E11 *)

let e11_balg2_growth () =
  section "E11" "BALG^2: one exponential, then polynomial" "Thm 5.1 / Prop 3.2";
  Printf.printf "max multiplicity in (delta P)^i (B_n), n = 3:\n";
  Printf.printf "%3s | %-30s\n" "i" "max count";
  let v = ref (Value.replicate (B.of_int 3) (Value.atom "a")) in
  let prev = ref B.one in
  List.iter
    (fun i ->
      v := Bag.destroy (Bag.powerset !v);
      let mc = Bag.max_count !v in
      let ratio =
        if B.is_zero !prev then "-"
        else B.to_string (B.div mc !prev)
      in
      prev := mc;
      Printf.printf "%3d | %-30s (x%s)\n" i (B.to_string mc) ratio)
    [ 1; 2; 3; 4 ];
  print_endline
    "paper: the first delta-P step is exponential, later steps only\n\
     polynomial — multiplicities stay below 2^poly(n), giving PSPACE (Thm 5.1)"

(* ------------------------------------------------------------------ E12 *)

let e12_pebble_game () =
  section "E12" "the Theorem 5.2 separation and Fig. 1" "Thm 5.2 / Lemma 5.4";
  let module C = Pebble.Construction in
  let module G = Pebble.Game in
  let g6 = C.g_balanced 6 in
  Format.printf "%a" C.render_figure g6;
  Printf.printf "\nProperty (1) of In_n/Out_n: %s (n = 4..12)\n"
    (check_mark (List.for_all C.property_one [ 4; 6; 8; 10; 12 ]));
  List.iter
    (fun n ->
      let g = C.g_balanced n and g' = C.g_flipped n in
      let run graph =
        Eval.truthy
          (Eval.eval
             (Eval.env_of_list [ ("G", C.edges_value graph) ])
             (C.phi_query graph))
      in
      Printf.printf
        "n=%2d: indeg(alpha): G %d/%d, G' %d/%d; BALG^2 query: G=%b G'=%b  %s\n" n
        (C.in_degree g g.C.alpha) (C.out_degree g g.C.alpha)
        (C.in_degree g' g'.C.alpha) (C.out_degree g' g'.C.alpha) (run g) (run g')
        (check_mark ((not (run g)) && run g')))
    [ 4; 6 ];
  let g4 = C.g_balanced 4 and g4' = C.g_flipped 4 in
  Printf.printf "game (exhaustive) k=1, n=4 > 2^1: duplicator wins: %b\n"
    (G.duplicator_wins_exhaustive ~k:1 g4 g4');
  Printf.printf "game (proof strategy) k=1, n=4: duplicator wins: %b\n"
    (G.duplicator_strategy_wins ~k:1 g4 g4');
  let g6' = C.g_flipped 6 in
  Printf.printf "game (proof strategy) k=2, n=6 > 2^2: duplicator wins: %b\n"
    (G.duplicator_strategy_wins ~k:2 g6 g6');
  print_endline
    "so no fixed RALG^2 (CALC_1) sentence separates G from G' for all n,\n\
     while one BALG^2 query does: RALG^2 is strictly inside BALG^2 (Thm 5.2)"

(* ------------------------------------------------------------------ E13 *)

let e13_arith_compiler () =
  section "E13" "bounded arithmetic compiled to BALG + Pb" "Thm 5.5 / Lemma 5.7";
  let module A = Encodings.Arith in
  let formulas =
    [
      ("even(n)", A.Exists (A.Eq (A.TAdd (A.TVar 1, A.TVar 1), A.TInput)));
      ( "composite(n)",
        A.Exists
          (A.Exists
             (A.And
                ( A.And (A.Le (A.TConst 2, A.TVar 1), A.Le (A.TConst 2, A.TVar 2)),
                  A.Eq (A.TMul (A.TVar 1, A.TVar 2), A.TInput) ))) );
      ("square(n)", A.Exists (A.Eq (A.TMul (A.TVar 1, A.TVar 1), A.TInput)));
      ( "triangular(n)",
        A.Exists
          (A.Eq
             ( A.TAdd (A.TMul (A.TVar 1, A.TVar 1), A.TVar 1),
               A.TAdd (A.TInput, A.TInput) )) );
    ]
  in
  Printf.printf "%-14s |" "n =";
  List.iter (fun n -> Printf.printf " %2d" n) (List.init 10 Fun.id);
  print_newline ();
  let all_ok = ref true in
  List.iter
    (fun (name, f) ->
      Printf.printf "%-14s |" name;
      List.iter
        (fun n ->
          let direct = A.eval_formula ~bound:n ~input:n f in
          let algebra = A.holds_via_algebra ~bound:n ~input:n f in
          if direct <> algebra then all_ok := false;
          Printf.printf " %2s" (if algebra then "T" else "."))
        (List.init 10 Fun.id);
      print_newline ())
    formulas;
  Printf.printf "algebra agrees with the reference semantics everywhere: %s\n"
    (check_mark !all_ok);
  let pd = Encodings.Arith.paper_domain1 ~i:1 (Derived.nat_lit 2) in
  Printf.printf
    "paper-faithful domain D(b_2) = P(E(b_2)) via Pb has %d members (0..2^2)\n"
    (Value.support_size (ev pd))

(* ------------------------------------------------------------------ E14 *)

let e14_tm_balg3 () =
  section "E14" "Theorem 6.1 end to end" "Thm 6.1";
  let module Tm3 = Encodings.Tm3 in
  Printf.printf
    "one-move machine, input '1 1', full P(DxDxAxQ) selection:\n";
  Printf.printf "  accepting machine -> query nonempty: %b\n"
    (Tm3.accepts Tm.tiny_step ~space:2 [ "1"; "1" ]);
  let stuck = { Tm.tiny_step with Tm.delta = (fun _ -> None) } in
  Printf.printf "  machine without moves -> query empty: %b\n"
    (not (Tm3.accepts stuck ~space:2 [ "1"; "1" ]));
  let paper = Tm3.tm_expr_paper ~i:1 Tm.tiny_step ~space:2 [ "1"; "1" ] in
  let env = Typecheck.env_of_list [ ("B", Ty.nat) ] in
  let r = Analyze.analyze env paper in
  Printf.printf
    "verbatim paper shape with D(B) = P(E^1(B)): bag nesting %d, power \
     nesting %d,\nclass %s (evaluation is hyper-exponential by design — not \
     run)\n"
    r.Analyze.bag_nesting r.Analyze.power_nesting
    (Analyze.cclass_to_string r.Analyze.cclass)

(* ------------------------------------------------------------------ E15 *)

let e15_power_hierarchy () =
  section "E15" "the power-nesting hierarchy" "Thm 6.2 / Prop 6.3-6.4";
  Printf.printf
    "growth of card((delta delta P P)^i (b_n)) vs the hyper scale, n = 2:\n";
  let v = ref (Value.replicate B.two (Value.atom "a")) in
  (let rec go i =
     if i <= 2 then begin
       v := Bag.destroy (Bag.destroy (Bag.powerset (Bag.powerset !v)));
       let c = Value.cardinal !v in
       Printf.printf "  i = %d : card = %s (digits: %d; hyper(%d)(2) = %s)\n" i
         (B.to_string c) (B.digits c) (i + 1)
         (B.to_string (B.hyper (i + 1) 2));
       if B.digits c < 40 then go (i + 1)
     end
   in
   go 1);
  Printf.printf "\npowerbag doubling E(b) = ones(Pb(ones b)) iterated from 1:\n";
  let w = ref (Value.nat 1) in
  List.iter
    (fun i ->
      let e = Derived.exp2_via_powerbag (Expr.lit !w Ty.nat) in
      w := ev e;
      Printf.printf "  E^%d(b_1) has cardinality %s\n" i
        (B.to_string (Value.cardinal !w)))
    [ 1; 2; 3 ];
  print_endline
    "each Pb application doubles exponentially (Prop 6.4): every level of\n\
     power nesting buys one level of the hyper-exponential hierarchy"

(* ------------------------------------------------------------------ E16 *)

let e16_ifp_turing () =
  section "E16" "Turing machines via BALG + IFP" "Thm 6.6";
  let module Tmifp = Encodings.Tmifp in
  Printf.printf "%12s %6s | %8s | %8s\n" "machine" "input" "algebra" "direct";
  let all_ok = ref true in
  List.iter
    (fun n ->
      let a = Tmifp.accepts Tm.parity_even ~space:(n + 2) (Tm.unary n) in
      let d = Tm.accepts Tm.parity_even (Tm.unary n) in
      if a <> d then all_ok := false;
      Printf.printf "%12s %6d | %8b | %8b\n" "parity" n a d)
    [ 0; 1; 2; 3; 4; 5 ];
  List.iter
    (fun n ->
      let out = Tmifp.output_ones Tm.unary_successor ~space:(n + 2) (Tm.unary n) in
      if out <> n + 1 then all_ok := false;
      Printf.printf "%12s %6d | succ = %d (expected %d)\n" "successor" n out (n + 1))
    [ 0; 2; 5 ];
  Printf.printf "%12s %6d | %8b | %8b\n" "bouncer" 3
    (Tmifp.accepts Tm.bouncer ~space:5 (Tm.unary 3))
    (Tm.accepts Tm.bouncer (Tm.unary 3));
  Printf.printf "all simulations agree with the reference machine: %s\n"
    (check_mark !all_ok)

(* ------------------------------------------------------------------ E17 *)

let e17_transitive_closure () =
  section "E17" "transitive closure via bounded fixpoint" "§6 end / [Suc93]";
  let rng = Random.State.make [| 57 |] in
  Printf.printf "%4s %6s | %10s | %s\n" "n" "edges" "TC pairs" "matches reference";
  List.iter
    (fun n ->
      let g = Baggen.Genval.graph rng ~n ~p:0.3 in
      let tc = ev (Derived.transitive_closure (Expr.lit g (Ty.relation 2))) in
      let ref_tc = Baggen.Genval.transitive_closure_ref g in
      Printf.printf "%4d %6d | %10d | %s\n" n (Value.support_size g)
        (Value.support_size tc)
        (check_mark (Value.equal tc ref_tc)))
    [ 3; 5; 7; 9; 12 ];
  print_endline
    "bounded fixpoints add recursion at bounded cost (the paper's closing\n\
     remark); the unbounded IFP is Turing complete instead (Thm 6.6)"

(* ------------------------------------------------------------------ E18 *)

let e18_optimizer () =
  section "E18" "rewriting: bag-sound vs set-only rules" "§3 / [CV93]";
  let tenv =
    Typecheck.env_of_list [ ("R", Ty.relation 1); ("S", Ty.relation 2) ]
  in
  let rng = Random.State.make [| 77 |] in
  let equivalent e1 e2 =
    List.for_all
      (fun _ ->
        let inst = Baggen.Genexpr.instance rng [ ("R", 1); ("S", 2) ] in
        Value.equal
          (Eval.eval (Eval.env_of_list inst) e1)
          (Eval.eval (Eval.env_of_list inst) e2))
      (List.init 40 Fun.id)
  in
  (* sound rules on a random corpus *)
  let sound_ok = ref 0 and total = 100 in
  for _ = 1 to total do
    let e = Baggen.Genexpr.flat rng [ ("R", 1); ("S", 2) ] 4 (1 + Random.State.int rng 2) in
    let e', _ = Rewrite.normalize tenv e in
    if equivalent e e' then incr sound_ok
  done;
  Printf.printf "sound rules preserve bag semantics: %d/%d  %s\n" !sound_ok total
    (check_mark (!sound_ok = total));
  (* the CV93 counterexamples *)
  let q1 = Expr.proj_attrs [ 1 ] Expr.(Var "R" *** Var "R") in
  let q1', log1 = Rewrite.normalize ~rules:Rewrite.set_only_rules tenv q1 in
  Printf.printf "set-only rule %s:\n"
    (match log1 with r :: _ -> r | [] -> "(none)");
  Printf.printf "  pi1(R x R) --> %s ; bag-equivalent: %b (set-equivalent: true)\n"
    (Expr.to_string q1') (equivalent q1 q1');
  let q2 = Expr.Dedup (Expr.proj_attrs [ 1 ] (Expr.Var "S")) in
  let q2', _ =
    Rewrite.normalize ~rules:[ List.nth Rewrite.set_only_rules 1 ] tenv q2
  in
  Printf.printf "  dedup(pi1(S)) --> %s ; bag-equivalent: %b\n"
    (Expr.to_string q2') (equivalent q2 q2');
  print_endline
    "paper/[CV93]: set-semantics optimisation does not carry over to bags —\n\
     the randomized checker flags exactly the set-only rules"

(* ------------------------------------------------------------------ E19 *)

let e19_classifier () =
  section "E19" "the static classifier on a query corpus" "Thm 4.4/5.1/6.1-6.6";
  let tenv =
    Typecheck.env_of_list
      [ ("R", Ty.relation 1); ("G", Ty.relation 2); ("NS", Ty.Bag Ty.nat) ]
  in
  let corpus =
    [
      ("self-join (E5)", Derived.selfjoin (Expr.Var "G"));
      ("degrees (Ex 4.1)", Derived.indeg_gt_outdeg (Expr.Var "G") (Expr.atom "a"));
      ("card compare (Ex 4.2)", Derived.card_gt_paper (Expr.Var "R") (Expr.Var "R"));
      ("average (§3)", Derived.average (Expr.Var "NS"));
      ("diff via P (§3)", Derived.diff_via_powerset (Expr.Var "R") (Expr.Var "R"));
      ("TC via bfix (§6)", Derived.transitive_closure (Expr.Var "G"));
      ("P(P(R))", Expr.Powerset (Expr.Powerset (Expr.Var "R")));
      ("delta(Pb(R))", Expr.Destroy (Expr.Powerbag (Expr.Var "R")));
      ( "IFP step (Thm 6.6)",
        Expr.Fix ("X", Expr.Dedup (Expr.UnionMax (Expr.Var "X", Expr.Var "G")),
                  Expr.Var "G") );
    ]
  in
  Printf.printf "%-24s | %2s %2s %-3s | %s\n" "query" "k" "i" "Pb" "class";
  List.iter
    (fun (name, e) ->
      let r = Analyze.analyze tenv e in
      Printf.printf "%-24s | %2d %2d %-3s | %s\n" name r.Analyze.bag_nesting
        r.Analyze.power_nesting
        (if r.Analyze.powerbag then "yes" else "no")
        (Analyze.cclass_to_string r.Analyze.cclass))
    corpus

(* ------------------------------------------------------------------ E20 *)

let e20_nest () =
  section "E20" "nest vs powerset" "§7 / [PG88, Won93]";
  let rng = Random.State.make [| 93 |] in
  (* nest agrees with its MAP-based definition (no powerset involved) *)
  let trials = 200 in
  let ok = ref 0 in
  for _ = 1 to trials do
    let arity = 2 + Random.State.int rng 2 in
    let bag = Baggen.Genval.flat_bag rng ~n_atoms:3 ~arity ~size:6 ~max_count:3 in
    let n_keys = 1 + Random.State.int rng (arity - 1) in
    let ixs = List.init n_keys (fun i -> i + 1) in
    let e = Expr.lit bag (Ty.relation arity) in
    if
      Value.equal
        (ev (Expr.Nest (ixs, e)))
        (ev (Derived.nest_via_map ixs ~arity e))
    then incr ok
  done;
  Printf.printf "nest definable without powerset (vs MAP oracle): %d/%d  %s\n"
    !ok trials (check_mark (!ok = trials));
  (* the Example 4.1-style separation carries over to the nest fragment:
     the degree query uses neither P nor nest, so
     RALG^2+nest-P < BALG^2+nest-P (§7's closing claim) *)
  let tenv = Typecheck.env_of_list [ ("G", Ty.relation 2) ] in
  let q = Derived.indeg_gt_outdeg (Expr.Var "G") (Expr.atom "a") in
  let r = Analyze.analyze tenv q in
  Printf.printf
    "separating query uses no powerset (power nesting %d) and no nest:\n\
    \  it lives in BALG^2 ∪ {nest} − {P}, but not in RALG^2 ∪ {nest} − {P}\n"
    r.Analyze.power_nesting;
  (* grouping aggregates: the SQL GROUP BY shape via nest *)
  let t2 x y = Value.tuple [ Value.atom x; Value.atom y ] in
  let sales =
    Value.bag_of_assoc
      [
        (t2 "ada" "widget", B.of_int 3);
        (t2 "ada" "gadget", B.one);
        (t2 "bob" "widget", B.of_int 2);
      ]
  in
  let counts = ev (Derived.group_count [ 1 ] (Expr.lit sales (Ty.relation 2))) in
  Printf.printf "GROUP BY customer / COUNT via nest: %s\n" (Value.to_string counts)

(* ------------------------------------------------------------------ E21 *)

let e21_calculus () =
  section "E21" "CALC1 and the algebra agree" "§5 / [AB87] / Thm 5.3";
  let module Calc = Ralg.Calc in
  let module Rel = Ralg.Rel in
  let module Reval = Ralg.Reval in
  let t2 x y = Value.tuple [ Value.atom x; Value.atom y ] in
  let g_rel = Rel.of_list [ t2 "x" "y"; t2 "y" "z"; t2 "x" "x"; t2 "z" "x" ] in
  let db = [ ("G", g_rel) ] in
  let comp t i = Calc.TComp (t, i) in
  (* the calculus query { u | exists v. G(v) and v.1 = u.1 } vs dedup(pi1 G) *)
  let calc_proj =
    Calc.query db ("u", Calc.VTuple 1)
      (Calc.Exists
         ( "v",
           Calc.VTuple 2,
           Calc.And
             ( Calc.Rel ("G", Calc.TVar "v"),
               Calc.Eq (comp (Calc.TVar "v") 1, comp (Calc.TVar "u") 1) ) ))
  in
  let alg_proj =
    Reval.eval
      (Reval.env_of_list [ ("G", Rel.to_value g_rel) ])
      (Expr.Dedup (Expr.proj_attrs [ 1 ] (Expr.Var "G")))
  in
  Printf.printf "projection:   calculus == algebra: %s\n"
    (check_mark (Value.equal (Rel.to_value calc_proj) alg_proj));
  (* composition join *)
  let calc_join =
    Calc.query db ("u", Calc.VTuple 2)
      (Calc.Exists
         ( "v",
           Calc.VTuple 2,
           Calc.Exists
             ( "w",
               Calc.VTuple 2,
               Calc.And
                 ( Calc.And (Calc.Rel ("G", Calc.TVar "v"), Calc.Rel ("G", Calc.TVar "w")),
                   Calc.And
                     ( Calc.Eq (comp (Calc.TVar "v") 2, comp (Calc.TVar "w") 1),
                       Calc.And
                         ( Calc.Eq (comp (Calc.TVar "u") 1, comp (Calc.TVar "v") 1),
                           Calc.Eq (comp (Calc.TVar "u") 2, comp (Calc.TVar "w") 2) ) ) ) ) ))
  in
  let alg_join =
    Reval.eval
      (Reval.env_of_list [ ("G", Rel.to_value g_rel) ])
      (Derived.selfjoin (Expr.Var "G"))
  in
  Printf.printf "join:         calculus == algebra: %s\n"
    (check_mark (Value.equal (Rel.to_value calc_join) alg_join));
  (* a second-order (set-quantified) sentence of CALC1 *)
  let independent_set =
    (* exists a set S of atoms-as-1-tuples with no G-edge inside S *)
    Calc.Exists
      ( "S",
        Calc.VSet 1,
        Calc.Forall
          ( "v",
            Calc.VTuple 2,
            Calc.Not
              (Calc.And
                 ( Calc.Rel ("G", Calc.TVar "v"),
                   Calc.Exists
                     ( "a",
                       Calc.VTuple 1,
                       Calc.Exists
                         ( "b",
                           Calc.VTuple 1,
                           Calc.And
                             ( Calc.And
                                 ( Calc.Mem (Calc.TVar "a", Calc.TVar "S"),
                                   Calc.Mem (Calc.TVar "b", Calc.TVar "S") ),
                               Calc.And
                                 ( Calc.Eq (comp (Calc.TVar "a") 1, comp (Calc.TVar "v") 1),
                                   Calc.Eq (comp (Calc.TVar "b") 1, comp (Calc.TVar "v") 2) )
                             ) ) ) )) ) )
  in
  Printf.printf
    "set quantification over the completion domain (independent set): %b\n"
    (Calc.sentence db independent_set);
  print_endline
    "CALC1 = RALG^2 [AB87]; its pebble game (E12) shows the degree query\n\
     escapes it, while BALG^2 expresses it: the Thm 5.2 separation";
  (* and the nesting-2 pieces stay in PSPACE: domains are exponential *)
  let atoms = List.length (Calc.active_atoms db) in
  Printf.printf "active domain: %d atoms; set domain: 2^%d objects\n" atoms atoms

let run_all () =
  print_endline "==========================================================";
  print_endline " Reproduction harness: Grumbach & Milo, 'Towards Tractable";
  print_endline " Algebras for Bags' — every table, figure and claim";
  print_endline "==========================================================";
  e01_powerset_vs_powerbag ();
  e02_duplicate_explosion ();
  e03_aggregates ();
  e04_identities ();
  e05_selfjoin_table ();
  e06_polynomial_counts ();
  e07_degree_compare ();
  e08_zero_one_law ();
  e09_parity_order ();
  e10_balg1_growth ();
  e11_balg2_growth ();
  e12_pebble_game ();
  e13_arith_compiler ();
  e14_tm_balg3 ();
  e15_power_hierarchy ();
  e16_ifp_turing ();
  e17_transitive_closure ();
  e18_optimizer ();
  e19_classifier ();
  e20_nest ();
  e21_calculus ()
