(* bench/main.exe — runs the full experiment harness (every table and figure
   of the paper, sections E1..E19) and then a Bechamel timing suite with one
   benchmark per experiment family. *)

open Balg
open Bechamel
open Toolkit

let staged = Staged.stage

(* Pre-built workloads, shared by the timing closures. *)

let rng = Random.State.make [| 20260705 |]

let bag12 =
  Value.bag_of_list
    (List.init 12 (fun i -> Value.tuple [ Value.atom (Printf.sprintf "t%02d" i) ]))

let binary20 = Baggen.Genval.flat_bag rng ~n_atoms:6 ~arity:2 ~size:20 ~max_count:3

let graph8 = Baggen.Genval.graph rng ~n:8 ~p:0.3

let rel10 =
  Value.bag_of_list
    (List.init 10 (fun i -> Value.tuple [ Value.atom (Printf.sprintf "e%02d" i) ]))

let leq10 = Baggen.Genval.leq_relation rel10

let eval_closed e = Eval.eval (Eval.env_of_list []) e

let selfjoin_q = Derived.selfjoin (Expr.lit binary20 (Ty.relation 2))
let tc_q = Derived.transitive_closure (Expr.lit graph8 (Ty.relation 2))

let parity_q =
  Derived.parity_even (Expr.lit rel10 (Ty.relation 1)) (Expr.lit leq10 (Ty.relation 2))

let card_q =
  Derived.card_gt_paper (Expr.lit rel10 (Ty.relation 1)) (Expr.lit rel10 (Ty.relation 1))

let even_formula =
  Encodings.Arith.(Exists (Eq (TAdd (TVar 1, TVar 1), TInput)))

let pushdown_env = Typecheck.env_of_list [ ("R", Ty.relation 1); ("S", Ty.relation 2) ]

let pushdown_raw =
  Expr.Select
    ( "x",
      Expr.Proj (1, Expr.Var "x"),
      Expr.atom "a",
      Expr.Product (Expr.Var "R", Expr.Var "S") )

let pushdown_opt = fst (Rewrite.normalize pushdown_env pushdown_raw)

let pushdown_inst =
  Eval.env_of_list
    [
      ("R", Baggen.Genval.flat_bag rng ~n_atoms:8 ~arity:1 ~size:30 ~max_count:2);
      ("S", Baggen.Genval.flat_bag rng ~n_atoms:8 ~arity:2 ~size:30 ~max_count:2);
    ]

let polyab_expr = Expr.(Expr.proj_attrs [ 1 ] (Var "B" *** Var "B") -- Var "B")

let parse_input = Expr.to_string tc_q

(* Large workloads for the parallel kernels: a 300-row binary relation whose
   self-product materialises 90k rows — big enough that chunking the support
   across domains pays for the fork/join.  Built lazily so the default
   experiment run doesn't pay for them. *)

let binary300 =
  lazy (Baggen.Genval.flat_bag rng ~n_atoms:40 ~arity:2 ~size:300 ~max_count:2)

let product300 = lazy (Bag.product (Lazy.force binary300) (Lazy.force binary300))

let selfjoin300_q =
  lazy (Derived.selfjoin (Expr.lit (Lazy.force binary300) (Ty.relation 2)))

(* Optimizer workloads: the same 300-row kernels phrased as unoptimized
   algebra (selection over a product *expression*, not a pre-materialised
   literal), so `_opt` rows measure what `balgi eval --optimize cost`
   actually does — plan (inside the timed closure) and evaluate. *)

let lit300 = lazy (Expr.lit (Lazy.force binary300) (Ty.relation 2))

let select_product300_q =
  lazy
    (let b = Lazy.force lit300 in
     Expr.Select
       ( "x",
         Expr.Proj (2, Expr.Var "x"),
         Expr.Proj (3, Expr.Var "x"),
         Expr.Product (b, b) ))

let proj_product300_expr_q =
  lazy
    (let b = Lazy.force lit300 in
     Expr.proj_attrs [ 1; 4 ] (Expr.Product (b, b)))

(* σ_{4=5}(σ_{2=3}(B×B) × B): the product+select_eq chain the planner
   turns into two stacked hash joins. *)
let join_chain300_q =
  lazy
    (let b = Lazy.force lit300 in
     Expr.Select
       ( "y",
         Expr.Proj (4, Expr.Var "y"),
         Expr.Proj (5, Expr.Var "y"),
         Expr.Product (Lazy.force select_product300_q, b) ))

let tests =
  Test.make_grouped ~name:"balg" ~fmt:"%s/%s"
    [
      Test.make ~name:"e01 powerset (12 distinct)"
        (staged (fun () -> ignore (Bag.powerset bag12)));
      Test.make ~name:"e02 destroy-powerset"
        (staged (fun () -> ignore (Bag.destroy (Bag.powerset bag12))));
      Test.make ~name:"e05 self-join eval (20 tuples)"
        (staged (fun () -> ignore (eval_closed selfjoin_q)));
      Test.make ~name:"e06 polynomial abstraction"
        (staged (fun () -> ignore (Polyab.analyze ~input:"B" polyab_expr)));
      Test.make ~name:"e08 cardinality comparison"
        (staged (fun () -> ignore (eval_closed card_q)));
      Test.make ~name:"e09 parity with order (card 10)"
        (staged (fun () -> ignore (eval_closed parity_q)));
      Test.make ~name:"e13 arith compile+eval (bound 6)"
        (staged (fun () ->
             ignore
               (Encodings.Arith.holds_via_algebra ~bound:6 ~input:6 even_formula)));
      Test.make ~name:"e16 tm-ifp parity (n=3)"
        (staged (fun () ->
             ignore
               (Encodings.Tmifp.accepts Turing.Tm.parity_even ~space:5
                  (Turing.Tm.unary 3))));
      Test.make ~name:"e17 transitive closure (n=8)"
        (staged (fun () -> ignore (eval_closed tc_q)));
      Test.make ~name:"e18 selection raw"
        (staged (fun () -> ignore (Eval.eval pushdown_inst pushdown_raw)));
      Test.make ~name:"e18 selection pushed down"
        (staged (fun () -> ignore (Eval.eval pushdown_inst pushdown_opt)));
      Test.make ~name:"lang parse (TC query)"
        (staged (fun () -> ignore (Baglang.Parser.expr_of_string parse_input)));
      Test.make ~name:"e20 group-by via nest (20 tuples)"
        (staged (fun () ->
             ignore (eval_closed (Derived.group_count [ 1 ] (Expr.lit binary20 (Ty.relation 2))))));
      Test.make ~name:"explain profiler overhead (self-join)"
        (staged (fun () -> ignore (Explain.run selfjoin_q)));
    ]

let run_benchmarks () =
  print_endline "\n==========================================================";
  print_endline " Bechamel timing suite (OLS estimate on the monotonic clock)";
  print_endline "==========================================================";
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some [ e ] -> e
          | _ -> nan
        in
        (name, est) :: acc)
      results []
  in
  List.iter
    (fun (name, est) ->
      if est < 1_000. then Printf.printf "  %-48s %12.1f ns/run\n" name est
      else if est < 1_000_000. then
        Printf.printf "  %-48s %12.2f us/run\n" name (est /. 1_000.)
      else Printf.printf "  %-48s %12.2f ms/run\n" name (est /. 1_000_000.))
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* --json: a machine-readable run for CI.  Hand-rolled measurement — a
   calibrated batch size, the median over repeated batches, allocation
   words from [Gc.allocated_bytes], and the evaluator's memo meters. *)

type jbench = {
  jname : string;
  jengine : string;  (** "tree" or "vec" — the engine column of the report *)
  jrun : unit -> unit;
  jmeters : Eval.meters option;  (** shared by every run of this bench *)
  jquery : Expr.t option;
      (** evaluator benches keep their query so one extra governed run can
          collect a telemetry summary for the report *)
}

let json_benches ?pool () =
  let metered ?pool name q =
    let m = Eval.fresh_meters () in
    {
      jname = name;
      jengine = "tree";
      jrun =
        (fun () -> ignore (Eval.eval ?pool ~meters:m (Eval.env_of_list []) q));
      jmeters = Some m;
      jquery = Some q;
    }
  in
  let metered_vec ?pool name q =
    let m = Eval.fresh_meters () in
    {
      jname = name;
      jengine = "vec";
      jrun =
        (fun () -> ignore (Veval.eval ?pool ~meters:m (Eval.env_of_list []) q));
      jmeters = Some m;
      jquery = Some q;
    }
  in
  (* `_opt` rows run the cost-based planner *inside* the timed closure and
     evaluate its plan: the row prices the end-to-end `--optimize cost`
     experience, planning overhead included.  With --miscost the planner's
     objective is inverted (Opt.invert_cost), no beneficial rewrite is
     accepted, and these rows regress against the optimised baseline —
     the gate's self-test. *)
  let metered_opt ?pool name q =
    let m = Eval.fresh_meters () in
    let tenv = Typecheck.env_of_list [] in
    {
      jname = name;
      jengine = "tree";
      jrun =
        (fun () ->
          ignore
            (Eval.eval ?pool ~meters:m (Eval.env_of_list [])
               (Opt.prepare Opt.Cost tenv q)));
      jmeters = Some m;
      jquery = Some (Opt.prepare Opt.Cost tenv q);
    }
  in
  (* Kernel benches time the raw [Bag] entry point, but each carries the
     algebra query computing the same thing, so the telemetry column of
     BENCH_eval.json is never null — one governed run per row. *)
  let plain ?(engine = "tree") ~query name f =
    { jname = name; jengine = engine; jrun = f; jmeters = None; jquery = Some query }
  in
  let powerset12_q = Expr.Powerset (Expr.lit bag12 (Ty.relation 1)) in
  let product20_q =
    Expr.Product
      (Expr.lit binary20 (Ty.relation 2), Expr.lit binary20 (Ty.relation 2))
  in
  let product300_q =
    lazy
      (Expr.Product
         ( Expr.lit (Lazy.force binary300) (Ty.relation 2),
           Expr.lit (Lazy.force binary300) (Ty.relation 2) ))
  in
  let select300_q =
    lazy
      (Expr.Select
         ( "x",
           Expr.Proj (2, Expr.Var "x"),
           Expr.Proj (3, Expr.Var "x"),
           Expr.lit (Lazy.force product300) (Ty.relation 4) ))
  in
  let proj300_q =
    lazy
      (Expr.proj_attrs [ 1; 4 ]
         (Expr.lit (Lazy.force product300) (Ty.relation 4)))
  in
  (* Columnar counterparts of the 300-row kernel benches: inputs converted
     once outside the timing loop (the tree rows likewise pre-materialise
     [product300]).  [product]/[select] stay columnar — each engine
     produces its native representation, and in a vec pipeline the output
     feeds the next kernel without ever being boxed — while [proj] keeps
     the [Vec.to_value] boundary so one row per report prices the full
     kernel-plus-boxing round trip. *)
  let vec300 = lazy (Vec.of_value (Lazy.force binary300)) in
  let vecprod300 = lazy (Vec.of_value (Lazy.force product300)) in
  let sel_l = Vec.SField (2, Vec.SRow) and sel_r = Vec.SField (3, Vec.SRow) in
  let proj14 = Vec.SRecord [ Vec.SField (1, Vec.SRow); Vec.SField (4, Vec.SRow) ] in
  let base =
    [
      plain ~query:powerset12_q "powerset_12" (fun () ->
          ignore (Bag.powerset bag12));
      plain ~query:(Expr.Destroy powerset12_q) "destroy_powerset_12"
        (fun () -> ignore (Bag.destroy (Bag.powerset bag12)));
      metered "selfjoin_binary20" selfjoin_q;
      metered "transitive_closure_graph8" tc_q;
      metered "parity_card10" parity_q;
      metered "card_compare_10" card_q;
      metered "group_count_binary20"
        (Derived.group_count [ 1 ] (Expr.lit binary20 (Ty.relation 2)));
      plain ~query:product20_q "product_binary20" (fun () ->
          ignore (Bag.product binary20 binary20));
      plain ~query:tc_q "parse_tc_query" (fun () ->
          ignore (Baglang.Parser.expr_of_string parse_input));
      plain ~query:(Lazy.force product300_q) "product_binary300" (fun () ->
          ignore (Bag.product (Lazy.force binary300) (Lazy.force binary300)));
      plain ~query:(Lazy.force select300_q) "select_eq_product300" (fun () ->
          ignore (Bag.select_eq 2 3 (Lazy.force product300)));
      plain ~query:(Lazy.force proj300_q) "proj_product300" (fun () ->
          ignore (Bag.proj [ 1; 4 ] (Lazy.force product300)));
      metered "selfjoin_binary300" (Lazy.force selfjoin300_q);
      metered "join_chain300" (Lazy.force join_chain300_q);
      metered_opt "product_binary300_opt" (Lazy.force product300_q);
      metered_opt "select_eq_product300_opt" (Lazy.force select_product300_q);
      metered_opt "proj_product300_opt" (Lazy.force proj_product300_expr_q);
      metered_opt "selfjoin_binary300_opt" (Lazy.force selfjoin300_q);
      metered_opt "join_chain300_opt" (Lazy.force join_chain300_q);
      plain ~engine:"vec" ~query:(Lazy.force product300_q)
        "product_binary300_vec" (fun () ->
          ignore (Vec.product (Lazy.force vec300) (Lazy.force vec300)));
      plain ~engine:"vec" ~query:(Lazy.force select300_q)
        "select_eq_product300_vec" (fun () ->
          ignore (Vec.select_scalar sel_l sel_r (Lazy.force vecprod300)));
      plain ~engine:"vec" ~query:(Lazy.force proj300_q) "proj_product300_vec"
        (fun () ->
          ignore (Vec.to_value (Vec.map_scalar proj14 (Lazy.force vecprod300))));
      metered_vec "selfjoin_binary300_vec" (Lazy.force selfjoin300_q);
    ]
  in
  (* With [--jobs N], the parallelizable benches also run as [_jobsN] rows so
     BENCH_eval.json records sequential and parallel medians side by side.
     The regression gate measures without a pool, so [_jobsN] rows in an
     older baseline are simply skipped. *)
  match pool with
  | None -> base
  | Some p ->
      let j = Pool.jobs p in
      let tag name = Printf.sprintf "%s_jobs%d" name j in
      base
      @ [
          plain ~query:(Lazy.force product300_q) (tag "product_binary300")
            (fun () ->
              ignore
                (Bag.product ~pool:p (Lazy.force binary300)
                   (Lazy.force binary300)));
          plain ~query:(Lazy.force select300_q) (tag "select_eq_product300")
            (fun () ->
              ignore (Bag.select_eq ~pool:p 2 3 (Lazy.force product300)));
          plain ~query:(Lazy.force proj300_q) (tag "proj_product300")
            (fun () ->
              ignore (Bag.proj ~pool:p [ 1; 4 ] (Lazy.force product300)));
          metered ~pool:p (tag "selfjoin_binary300") (Lazy.force selfjoin300_q);
          plain ~engine:"vec" ~query:(Lazy.force product300_q)
            (tag "product_binary300_vec") (fun () ->
              ignore
                (Vec.product ~pool:p (Lazy.force vec300) (Lazy.force vec300)));
          plain ~engine:"vec" ~query:(Lazy.force select300_q)
            (tag "select_eq_product300_vec") (fun () ->
              ignore
                (Vec.select_scalar ~pool:p sel_l sel_r
                   (Lazy.force vecprod300)));
          (* the proj kernel is a pure column gather — pool-independent —
             but the row exists so the report carries all four benches in
             both modes *)
          plain ~engine:"vec" ~query:(Lazy.force proj300_q)
            (tag "proj_product300_vec") (fun () ->
              ignore
                (Vec.to_value (Vec.map_scalar proj14 (Lazy.force vecprod300))));
          metered_vec ~pool:p (tag "selfjoin_binary300_vec")
            (Lazy.force selfjoin300_q);
        ]

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Kernel rows allocate multi-megabyte arrays straight into the major
   heap; under default GC pacing their measured cost is dominated by the
   sweep debt of whatever row ran before them rather than their own work
   (observed 4-15x swings run to run).  A larger minor heap and a lazier
   major slice, plus a compaction between rows, make each row pay for its
   own allocations.  Benchmark process only — the library never touches
   GC knobs. *)
let pace_gc () =
  Gc.set
    {
      (Gc.get ()) with
      Gc.minor_heap_size = 4 * 1024 * 1024;
      space_overhead = 200;
    }

let measure b =
  b.jrun ();
  (* warmup *)
  Gc.compact ();
  let rec calibrate k =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to k do
      b.jrun ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= 1e-3 || k >= 1_000_000 then k else calibrate (k * 4)
  in
  let k = calibrate 1 in
  let samples =
    List.init 15 (fun _ ->
        (* Reset the collector to the same phase before every sample
           (untimed): each sample then pays only the slices its own
           allocation triggers, instead of marking debt left by the
           previous sample — the one-sample-per-batch rows otherwise
           swing 4-15x with the phase they happen to land on. *)
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        for _ = 1 to k do
          b.jrun ()
        done;
        (Unix.gettimeofday () -. t0) /. float k *. 1e9)
  in
  let median =
    let sorted = List.sort Float.compare samples in
    List.nth sorted (List.length sorted / 2)
  in
  (* Fold the samples through a log-bucketed histogram so the report
     carries the same p50/p90/p99 shape the metrics registry exports —
     bucket upper bounds, hence p50 >= the exact median. *)
  let percentiles =
    let reg = Metrics.create () in
    let h = Metrics.histogram reg "samples_ns" in
    List.iter (fun ns -> Metrics.observe h (int_of_float ns)) samples;
    ( Metrics.percentile h 0.50,
      Metrics.percentile h 0.90,
      Metrics.percentile h 0.99 )
  in
  (* The multicore runtime buffers allocation stats per domain and merges
     them at minor collections, so flush with [Gc.minor] on both sides of
     the counted loop — otherwise a large minor heap undercounts badly. *)
  Gc.minor ();
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to k do
    b.jrun ()
  done;
  Gc.minor ();
  let alloc_words =
    (Gc.allocated_bytes () -. a0) /. float k /. float (Sys.word_size / 8)
  in
  (median, alloc_words, percentiles)

(* One governed run per evaluator bench, outside the timing loops, to fold
   a per-query telemetry summary (steps, spans, peak support, memo counts)
   into the report. *)
let telemetry_field b =
  match b.jquery with
  | None -> "null"
  | Some q ->
      let t = Telemetry.create () in
      (if b.jengine = "vec" then
         match Veval.run ~telemetry:t (Eval.env_of_list []) q with
         | Ok _ | Error _ -> ()
       else
         match Eval.run ~telemetry:t (Eval.env_of_list []) q with
         | Ok _ | Error _ -> ());
      Telemetry.summary_json t

let run_json ?pool () =
  let out = "BENCH_eval.json" in
  let rows =
    List.map
      (fun b ->
        let median, alloc, (p50, p90, p99) = measure b in
        Printf.printf "  %-28s %12.0f ns/run  %10.0f words/run\n%!" b.jname
          median alloc;
        (* null means "this bench has no memo table at all"; a bench that
           has one but never consulted it reports an honest 0.0000. *)
        let memo =
          match b.jmeters with
          | None -> "null"
          | Some m ->
              let total = m.Eval.memo_hits + m.Eval.memo_misses in
              if total = 0 then "0.0000"
              else
                Printf.sprintf "%.4f" (float m.Eval.memo_hits /. float total)
        in
        Printf.sprintf
          "    {\"name\": \"%s\", \"engine\": \"%s\", \"median_ns\": %.1f, \
           \"p50_ns\": %.0f, \
           \"p90_ns\": %.0f, \"p99_ns\": %.0f, \
           \"alloc_words_per_run\": %.1f, \"memo_hit_rate\": %s, \
           \"telemetry\": %s}"
          (json_escape b.jname) (json_escape b.jengine) median p50 p90 p99
          alloc memo (telemetry_field b))
      (json_benches ?pool ())
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"schema\": \"balg-bench-v1\",\n  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" rows);
  close_out oc;
  Printf.printf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* --gate BASELINE: the benchmark-regression gate.  Re-measures every
   json bench three times and keeps the best median (cold-cache noise only
   ever slows a run down), reads the committed baseline back with a
   hand-rolled scanner for our own one-row-per-line schema, and compares
   *calibrated* ratios: each bench's current/baseline ratio is divided by
   the median ratio across all benches, so a uniformly faster or slower CI
   machine cancels out and only relative regressions remain.  Any bench
   whose calibrated ratio exceeds the threshold fails the gate. *)

let gate_threshold = 1.25

let arg_values flag =
  let n = Array.length Sys.argv in
  let rec go i acc =
    if i >= n then List.rev acc
    else if Sys.argv.(i) = flag && i + 1 < n then
      go (i + 2) (Sys.argv.(i + 1) :: acc)
    else go (i + 1) acc
  in
  go 1 []

let arg_value flag = match arg_values flag with v :: _ -> Some v | [] -> None

(* [--handicap NAME=FACTOR] multiplies NAME's measured median, simulating a
   regression in exactly one bench — the self-test that the gate actually
   fires.  (A uniform slowdown would be cancelled by calibration; a
   single-bench one cannot be.) *)
let handicaps () =
  List.map
    (fun spec ->
      match String.index_opt spec '=' with
      | Some i ->
          ( String.sub spec 0 i,
            float_of_string
              (String.sub spec (i + 1) (String.length spec - i - 1)) )
      | None -> failwith ("bad --handicap (want NAME=FACTOR): " ^ spec))
    (arg_values "--handicap")

(* baseline scanner: rows are written one per line by [run_json], so
   extracting ["name"]/["median_ns"] per line is a full parse of our own
   schema *)
let scan_field line key =
  let n = String.length line and m = String.length key in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = key then Some (i + m)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let rec skip i =
        if i < n && (line.[i] = ':' || line.[i] = ' ' || line.[i] = '"') then
          skip (i + 1)
        else i
      in
      let start = skip i in
      let rec stop i =
        if
          i < n
          && (match line.[i] with
             | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
             | c -> not (c = '"' || c = ',' || c = '}'))
        then stop (i + 1)
        else i
      in
      let fin = stop start in
      if fin > start then Some (String.sub line start (fin - start)) else None

let parse_baseline path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match (scan_field line "\"name\"", scan_field line "\"median_ns\"") with
       | Some name, Some med -> rows := (name, float_of_string med) :: !rows
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let median_of xs =
  let sorted = List.sort Float.compare xs in
  List.nth sorted (List.length sorted / 2)

let best_of_3 b =
  List.fold_left min infinity
    (List.init 3 (fun _ ->
         let median, _, _ = measure b in
         median))

let run_gate baseline_path =
  let baseline = parse_baseline baseline_path in
  if baseline = [] then begin
    Printf.eprintf "gate: no benchmarks found in %s\n" baseline_path;
    exit 1
  end;
  let hc = handicaps () in
  let current =
    List.map
      (fun b ->
        Printf.printf "  measuring %-28s ...%!" b.jname;
        let med = best_of_3 b in
        let med =
          match List.assoc_opt b.jname hc with
          | Some f ->
              Printf.printf " (handicap x%g)" f;
              med *. f
          | None -> med
        in
        Printf.printf " %12.0f ns\n%!" med;
        (b.jname, med))
      (json_benches ())
  in
  let joined =
    List.filter_map
      (fun (name, cur) ->
        match List.assoc_opt name baseline with
        | Some base when base > 0. -> Some (name, base, cur, cur /. base)
        | _ ->
            Printf.printf "  note: %s has no baseline entry, skipped\n" name;
            None)
      current
  in
  if joined = [] then begin
    Printf.eprintf "gate: no benchmarks in common with the baseline\n";
    exit 1
  end;
  let cal = median_of (List.map (fun (_, _, _, r) -> r) joined) in
  Printf.printf "calibration: median current/baseline ratio = %.3f\n" cal;
  let rows =
    List.map
      (fun (name, base, cur, r) ->
        let adj = r /. cal in
        (name, base, cur, adj, adj > gate_threshold))
      joined
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "## Benchmark gate\n\n";
  Buffer.add_string buf
    (Printf.sprintf
       "Calibration factor %.3f (median raw ratio); threshold %.2fx.\n\n" cal
       gate_threshold);
  Buffer.add_string buf
    "| benchmark | baseline ns | current ns | calibrated ratio | status |\n";
  Buffer.add_string buf "|---|---:|---:|---:|---|\n";
  List.iter
    (fun (name, base, cur, adj, failed) ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %.0f | %.0f | %.2fx | %s |\n" name base cur adj
           (if failed then "**FAIL**" else "ok")))
    rows;
  let table = Buffer.contents buf in
  print_newline ();
  print_string table;
  let summary_file =
    match arg_value "--summary" with
    | Some f -> Some f
    | None -> Sys.getenv_opt "GITHUB_STEP_SUMMARY"
  in
  (match summary_file with
  | Some f ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 f in
      output_string oc table;
      close_out oc
  | None -> ());
  let failures = List.filter (fun (_, _, _, _, failed) -> failed) rows in
  if failures <> [] then begin
    Printf.eprintf "gate: %d benchmark(s) regressed beyond %.0f%%\n"
      (List.length failures)
      ((gate_threshold -. 1.) *. 100.);
    exit 1
  end;
  Printf.printf "gate: all %d benchmarks within %.0f%% of baseline\n"
    (List.length rows)
    ((gate_threshold -. 1.) *. 100.)

let () =
  pace_gc ();
  (* --miscost: invert the planner's objective so `_opt` rows run their
     deliberately-miscosted (unoptimized) plans — used by CI to prove the
     gate catches an optimizer regression. *)
  if Array.exists (( = ) "--miscost") Sys.argv then Opt.invert_cost := true;
  let pool =
    match arg_value "--jobs" with
    | Some s ->
        let j = try int_of_string s with _ -> 1 in
        if j > 1 then Some (Pool.create ~jobs:j ()) else None
    | None -> None
  in
  (match arg_value "--gate" with
  | Some baseline -> run_gate baseline
  | None ->
      if Array.exists (( = ) "--json") Sys.argv then run_json ?pool ()
      else begin
        Experiments.run_all ();
        run_benchmarks ();
        print_endline "\nAll experiments completed."
      end);
  Option.iter Pool.shutdown pool
