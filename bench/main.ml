(* bench/main.exe — runs the full experiment harness (every table and figure
   of the paper, sections E1..E19) and then a Bechamel timing suite with one
   benchmark per experiment family. *)

open Balg
open Bechamel
open Toolkit

let staged = Staged.stage

(* Pre-built workloads, shared by the timing closures. *)

let rng = Random.State.make [| 20260705 |]

let bag12 =
  Value.bag_of_list
    (List.init 12 (fun i -> Value.tuple [ Value.atom (Printf.sprintf "t%02d" i) ]))

let binary20 = Baggen.Genval.flat_bag rng ~n_atoms:6 ~arity:2 ~size:20 ~max_count:3

let graph8 = Baggen.Genval.graph rng ~n:8 ~p:0.3

let rel10 =
  Value.bag_of_list
    (List.init 10 (fun i -> Value.tuple [ Value.atom (Printf.sprintf "e%02d" i) ]))

let leq10 = Baggen.Genval.leq_relation rel10

let eval_closed e = Eval.eval (Eval.env_of_list []) e

let selfjoin_q = Derived.selfjoin (Expr.lit binary20 (Ty.relation 2))
let tc_q = Derived.transitive_closure (Expr.lit graph8 (Ty.relation 2))

let parity_q =
  Derived.parity_even (Expr.lit rel10 (Ty.relation 1)) (Expr.lit leq10 (Ty.relation 2))

let card_q =
  Derived.card_gt_paper (Expr.lit rel10 (Ty.relation 1)) (Expr.lit rel10 (Ty.relation 1))

let even_formula =
  Encodings.Arith.(Exists (Eq (TAdd (TVar 1, TVar 1), TInput)))

let pushdown_env = Typecheck.env_of_list [ ("R", Ty.relation 1); ("S", Ty.relation 2) ]

let pushdown_raw =
  Expr.Select
    ( "x",
      Expr.Proj (1, Expr.Var "x"),
      Expr.atom "a",
      Expr.Product (Expr.Var "R", Expr.Var "S") )

let pushdown_opt = fst (Rewrite.normalize pushdown_env pushdown_raw)

let pushdown_inst =
  Eval.env_of_list
    [
      ("R", Baggen.Genval.flat_bag rng ~n_atoms:8 ~arity:1 ~size:30 ~max_count:2);
      ("S", Baggen.Genval.flat_bag rng ~n_atoms:8 ~arity:2 ~size:30 ~max_count:2);
    ]

let polyab_expr = Expr.(Expr.proj_attrs [ 1 ] (Var "B" *** Var "B") -- Var "B")

let parse_input = Expr.to_string tc_q

let tests =
  Test.make_grouped ~name:"balg" ~fmt:"%s/%s"
    [
      Test.make ~name:"e01 powerset (12 distinct)"
        (staged (fun () -> ignore (Bag.powerset bag12)));
      Test.make ~name:"e02 destroy-powerset"
        (staged (fun () -> ignore (Bag.destroy (Bag.powerset bag12))));
      Test.make ~name:"e05 self-join eval (20 tuples)"
        (staged (fun () -> ignore (eval_closed selfjoin_q)));
      Test.make ~name:"e06 polynomial abstraction"
        (staged (fun () -> ignore (Polyab.analyze ~input:"B" polyab_expr)));
      Test.make ~name:"e08 cardinality comparison"
        (staged (fun () -> ignore (eval_closed card_q)));
      Test.make ~name:"e09 parity with order (card 10)"
        (staged (fun () -> ignore (eval_closed parity_q)));
      Test.make ~name:"e13 arith compile+eval (bound 6)"
        (staged (fun () ->
             ignore
               (Encodings.Arith.holds_via_algebra ~bound:6 ~input:6 even_formula)));
      Test.make ~name:"e16 tm-ifp parity (n=3)"
        (staged (fun () ->
             ignore
               (Encodings.Tmifp.accepts Turing.Tm.parity_even ~space:5
                  (Turing.Tm.unary 3))));
      Test.make ~name:"e17 transitive closure (n=8)"
        (staged (fun () -> ignore (eval_closed tc_q)));
      Test.make ~name:"e18 selection raw"
        (staged (fun () -> ignore (Eval.eval pushdown_inst pushdown_raw)));
      Test.make ~name:"e18 selection pushed down"
        (staged (fun () -> ignore (Eval.eval pushdown_inst pushdown_opt)));
      Test.make ~name:"lang parse (TC query)"
        (staged (fun () -> ignore (Baglang.Parser.expr_of_string parse_input)));
      Test.make ~name:"e20 group-by via nest (20 tuples)"
        (staged (fun () ->
             ignore (eval_closed (Derived.group_count [ 1 ] (Expr.lit binary20 (Ty.relation 2))))));
      Test.make ~name:"explain profiler overhead (self-join)"
        (staged (fun () -> ignore (Explain.run selfjoin_q)));
    ]

let run_benchmarks () =
  print_endline "\n==========================================================";
  print_endline " Bechamel timing suite (OLS estimate on the monotonic clock)";
  print_endline "==========================================================";
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some [ e ] -> e
          | _ -> nan
        in
        (name, est) :: acc)
      results []
  in
  List.iter
    (fun (name, est) ->
      if est < 1_000. then Printf.printf "  %-48s %12.1f ns/run\n" name est
      else if est < 1_000_000. then
        Printf.printf "  %-48s %12.2f us/run\n" name (est /. 1_000.)
      else Printf.printf "  %-48s %12.2f ms/run\n" name (est /. 1_000_000.))
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* --json: a machine-readable run for CI.  Hand-rolled measurement — a
   calibrated batch size, the median over repeated batches, allocation
   words from [Gc.allocated_bytes], and the evaluator's memo meters. *)

type jbench = {
  jname : string;
  jrun : unit -> unit;
  jmeters : Eval.meters option;  (** shared by every run of this bench *)
}

let json_benches () =
  let metered name q =
    let m = Eval.fresh_meters () in
    {
      jname = name;
      jrun = (fun () -> ignore (Eval.eval ~meters:m (Eval.env_of_list []) q));
      jmeters = Some m;
    }
  in
  let plain name f = { jname = name; jrun = f; jmeters = None } in
  [
    plain "powerset_12" (fun () -> ignore (Bag.powerset bag12));
    plain "destroy_powerset_12" (fun () -> ignore (Bag.destroy (Bag.powerset bag12)));
    metered "selfjoin_binary20" selfjoin_q;
    metered "transitive_closure_graph8" tc_q;
    metered "parity_card10" parity_q;
    metered "card_compare_10" card_q;
    metered "group_count_binary20"
      (Derived.group_count [ 1 ] (Expr.lit binary20 (Ty.relation 2)));
    plain "product_binary20" (fun () -> ignore (Bag.product binary20 binary20));
    plain "parse_tc_query" (fun () ->
        ignore (Baglang.Parser.expr_of_string parse_input));
  ]

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let measure b =
  b.jrun ();
  (* warmup *)
  let rec calibrate k =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to k do
      b.jrun ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= 1e-3 || k >= 1_000_000 then k else calibrate (k * 4)
  in
  let k = calibrate 1 in
  let samples =
    List.init 15 (fun _ ->
        let t0 = Unix.gettimeofday () in
        for _ = 1 to k do
          b.jrun ()
        done;
        (Unix.gettimeofday () -. t0) /. float k *. 1e9)
  in
  let median =
    let sorted = List.sort Float.compare samples in
    List.nth sorted (List.length sorted / 2)
  in
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to k do
    b.jrun ()
  done;
  let alloc_words =
    (Gc.allocated_bytes () -. a0) /. float k /. float (Sys.word_size / 8)
  in
  (median, alloc_words)

let run_json () =
  let out = "BENCH_eval.json" in
  let rows =
    List.map
      (fun b ->
        let median, alloc = measure b in
        Printf.printf "  %-28s %12.0f ns/run  %10.0f words/run\n%!" b.jname
          median alloc;
        let memo =
          match b.jmeters with
          | None -> "null"
          | Some m ->
              let total = m.Eval.memo_hits + m.Eval.memo_misses in
              if total = 0 then "null"
              else
                Printf.sprintf "%.4f" (float m.Eval.memo_hits /. float total)
        in
        Printf.sprintf
          "    {\"name\": \"%s\", \"median_ns\": %.1f, \
           \"alloc_words_per_run\": %.1f, \"memo_hit_rate\": %s}"
          (json_escape b.jname) median alloc memo)
      (json_benches ())
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"schema\": \"balg-bench-v1\",\n  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" rows);
  close_out oc;
  Printf.printf "wrote %s\n" out

let () =
  if Array.exists (( = ) "--json") Sys.argv then run_json ()
  else begin
    Experiments.run_all ();
    run_benchmarks ();
    print_endline "\nAll experiments completed."
  end
