#!/bin/sh
# Traced-server smoke test, run as CI's obs job: start balgd with
# request tracing, the JSONL access log and a zero-threshold slow-query
# log, load it with 8 concurrent clients over 4 worker domains, and
# validate the trace written at shutdown with check_trace.sh — per-lane
# B/E balance, monotonic timestamps, the steps==fuel accounting, and the
# presence of every request-lifecycle category (session, queue, worker,
# wal, eval).  A second, chaos leg replicates under an armed repl.ship
# fault site and asserts the injected cuts surface as fault instants in
# the primary's trace while the trace invariants still hold.
set -eu
cd "$(dirname "$0")/.."

dune build bin/balgd.exe bin/balgi.exe
BALGD=_build/default/bin/balgd.exe
BALGI=_build/default/bin/balgi.exe
CHECK=scripts/check_trace.sh

tmp=$(mktemp -d)
pid=
fpid=
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  [ -n "$fpid" ] && kill -9 "$fpid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
  echo "trace-smoke: FAIL: $1" >&2
  [ -f "$tmp/balgd.out" ] && sed 's/^/  balgd: /' "$tmp/balgd.out" >&2
  [ -f "$tmp/follower.out" ] && sed 's/^/  follower: /' "$tmp/follower.out" >&2
  exit 1
}

await_port() {
  out=$1
  who=$2
  i=0
  while [ $i -lt 100 ]; do
    p=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*$/\1/p' "$out")
    if [ -n "$p" ]; then
      echo "$p"
      return 0
    fi
    sleep 0.1
    i=$((i + 1))
  done
  fail "$who never announced its port"
}

# SIGTERM and wait for exit — the trace file is written at shutdown
stop_balgd() {
  kill -TERM "$1" 2>/dev/null || true
  i=0
  while kill -0 "$1" 2>/dev/null && [ $i -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
  done
  kill -0 "$1" 2>/dev/null && fail "balgd ignored SIGTERM"
  return 0
}

# --- leg 1: a loaded, traced server ----------------------------------------

"$BALGD" --port 0 --workers 4 -d examples/data/network.bagdb \
  --trace-out "$tmp/trace.json" --log-json "$tmp/access.jsonl" \
  --slow-log "$tmp/slow.jsonl" --slow-ms 0 >"$tmp/balgd.out" 2>&1 &
pid=$!
port=$(await_port "$tmp/balgd.out" balgd)
echo "trace-smoke: traced balgd up on port $port"

# a write, so the trace carries wal/commit spans
"$BALGI" client --port "$port" -e "def bag R : {{<U>}} = {{ <'a>, <'b>:2 }}" \
  | grep -q "ok defined R" || fail "def not acknowledged"

# 8 concurrent clients with distinct queries: every one is a cache miss,
# so they contend for the 4 workers and the queue-wait spans are real
cpids=
for i in 1 2 3 4 5 6 7 8; do
  q="R"
  j=0
  while [ $j -lt "$i" ]; do
    q="$q ++ R"
    j=$((j + 1))
  done
  "$BALGI" client --port "$port" -e "eval $q" >"$tmp/c$i.out" 2>&1 &
  cpids="$cpids $!"
done
for p in $cpids; do
  wait "$p" || fail "a concurrent client exited non-zero"
done
for i in 1 2 3 4 5 6 7 8; do
  grep -q "^ok " "$tmp/c$i.out" || fail "client $i: $(cat "$tmp/c$i.out")"
done
echo "trace-smoke: 8 concurrent clients served"

# a repeated query exercises the cache-hit path in the slow log
"$BALGI" client --port "$port" -e "eval R ++ R ++ R" >/dev/null || fail "warm eval"
"$BALGI" client --port "$port" -e "eval R ++ R ++ R" >/dev/null || fail "cached eval"

# the live trace snapshot over the wire
"$BALGI" client --port "$port" -e trace >"$tmp/wire-trace.out" \
  || fail "trace command failed"
grep -q '"traceEvents"' "$tmp/wire-trace.out" \
  || fail "trace command returned no trace"

# healthz carries the WAL size (and, on a follower, the lag)
"$BALGI" client --port "$port" --http-get /healthz >"$tmp/healthz.txt" \
  || fail "GET /healthz failed"
grep -q "wal_bytes=" "$tmp/healthz.txt" || fail "healthz is missing wal_bytes"

# the expanded /metrics: queue-wait and WAL-flush histograms, cache
# hit-rate, per-command latency, per-relation invalidation counters
"$BALGI" client --port "$port" -e "def bag R : {{<U>}} = {{ <'c> }}" \
  >/dev/null || fail "redef not acknowledged"
"$BALGI" client --port "$port" --http-get /metrics >"$tmp/metrics.txt" \
  || fail "GET /metrics failed"
for m in balg_server_queue_wait_ns balg_server_wal_flush_ns \
  balg_server_cache_hit_rate balg_server_cmd_eval_ns \
  balg_server_cache_rel_invalidations_total_R; do
  grep -q "$m" "$tmp/metrics.txt" || fail "/metrics is missing $m"
done
echo "trace-smoke: metrics ok"

stop_balgd "$pid"
pid=
[ -s "$tmp/trace.json" ] || fail "no trace written at shutdown"
sh "$CHECK" "$tmp/trace.json" session queue worker wal eval \
  || fail "trace invariants do not hold"
grep -q '"req":' "$tmp/trace.json" || fail "trace carries no request ids"
grep -q '"cmd":"eval"' "$tmp/access.jsonl" || fail "access log has no evals"
grep -q '"req":' "$tmp/access.jsonl" || fail "access log has no request ids"
grep -q '"query":' "$tmp/slow.jsonl" || fail "slow log has no queries"
grep -q '"cache":"hit"' "$tmp/slow.jsonl" || fail "slow log saw no cache hit"
grep -q '"plan":' "$tmp/slow.jsonl" || fail "slow log has no plans"
echo "trace-smoke: trace + access log + slow log validated"

# --- leg 2: chaos — repl.ship faults must surface in the trace -------------

"$BALGD" --port 0 --store "$tmp/pstore" --fault "repl.ship:p=0.5" \
  --fault-seed 42 --trace-out "$tmp/chaos-trace.json" \
  >"$tmp/balgd.out" 2>&1 &
pid=$!
pport=$(await_port "$tmp/balgd.out" primary)
"$BALGD" --port 0 --store "$tmp/fstore" --follow "127.0.0.1:$pport" \
  >"$tmp/follower.out" 2>&1 &
fpid=$!
fport=$(await_port "$tmp/follower.out" follower)
echo "trace-smoke: chaos primary $pport, follower $fport"

"$BALGI" client --port "$pport" -e "def bag R : {{<U>}} = {{ <'a> }}" \
  | grep -q "ok defined R" || fail "chaos def not acknowledged"
for i in 1 2 3 4 5 6 7 8 9 10; do
  "$BALGI" client --port "$pport" -e "def bag W$i : {{<U>}} = {{ <'w>:$i }}" \
    >/dev/null || fail "chaos write W$i failed"
done
# one governed eval so the trace carries a run-end (done) instant
"$BALGI" client --port "$pport" -e "eval R ++ R" >/dev/null \
  || fail "chaos eval failed"

# wait until the follower has applied everything despite the cut feeds
i=0
while [ $i -lt 100 ]; do
  line=$("$BALGI" client --port "$fport" -e role 2>/dev/null || true)
  case "$line" in
  "ok follower "*"lag=0"*) break ;;
  esac
  sleep 0.1
  i=$((i + 1))
done
[ $i -lt 100 ] || fail "follower never caught up under repl.ship faults"
echo "trace-smoke: follower caught up through the cut feeds"

stop_balgd "$fpid"
fpid=
stop_balgd "$pid"
pid=
grep -q '"name":"repl.ship.cut"' "$tmp/chaos-trace.json" \
  || fail "no repl.ship.cut fault instants in the chaos trace"
sh "$CHECK" "$tmp/chaos-trace.json" session wal repl \
  || fail "chaos trace invariants do not hold"
echo "trace-smoke: ok"
