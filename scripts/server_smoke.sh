#!/bin/sh
# End-to-end smoke test for balgd, run as CI's server-smoke job: start a
# server over a persistent store, hammer it with concurrent clients,
# scrape /metrics, kill -9 it mid-load, restart, and assert that every
# acknowledged write survived WAL recovery.
set -eu
cd "$(dirname "$0")/.."

dune build bin/balgd.exe bin/balgi.exe
BALGD=_build/default/bin/balgd.exe
BALGI=_build/default/bin/balgi.exe

tmp=$(mktemp -d)
pid=
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
  echo "smoke: FAIL: $1" >&2
  [ -f "$tmp/balgd.out" ] && sed 's/^/  balgd: /' "$tmp/balgd.out" >&2
  exit 1
}

# start the server on an ephemeral port and wait for the announce line
start_server() {
  : >"$tmp/balgd.out"
  "$BALGD" --port 0 --store "$tmp/store" >"$tmp/balgd.out" 2>&1 &
  pid=$!
  port=
  i=0
  while [ $i -lt 100 ]; do
    port=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\)$/\1/p' "$tmp/balgd.out")
    [ -n "$port" ] && return 0
    kill -0 "$pid" 2>/dev/null || fail "balgd exited during startup"
    sleep 0.1
    i=$((i + 1))
  done
  fail "balgd never announced its port"
}

start_server
echo "smoke: balgd up on port $port"

# a seed relation, acknowledged
"$BALGI" client --port "$port" -e "def bag R : {{<U>}} = {{ <'a>, <'b>:2 }}" \
  | grep -q "ok defined R" || fail "def not acknowledged"

# 8 concurrent clients evaluating the same query must all get the
# bit-identical answer the first client got
want=$("$BALGI" client --port "$port" -e "eval R ++ R")
case "$want" in ok\ *) ;; *) fail "reference eval failed: $want" ;; esac
cpids=
for i in 1 2 3 4 5 6 7 8; do
  "$BALGI" client --port "$port" -e "eval R ++ R" >"$tmp/c$i.out" 2>&1 &
  cpids="$cpids $!"
done
for p in $cpids; do
  wait "$p" || fail "a concurrent client exited non-zero"
done
for i in 1 2 3 4 5 6 7 8; do
  [ "$(cat "$tmp/c$i.out")" = "$want" ] \
    || fail "client $i diverged: $(cat "$tmp/c$i.out") != $want"
done
echo "smoke: 8 concurrent clients agree: $want"

# the Prometheus endpoint answers on the same port
"$BALGI" client --port "$port" --http-get /metrics >"$tmp/metrics.txt" \
  || fail "GET /metrics failed"
grep -q "balg_server_sessions_total" "$tmp/metrics.txt" \
  || fail "/metrics is missing server counters"
grep -q "balg_server_wal_appends_total" "$tmp/metrics.txt" \
  || fail "/metrics is missing WAL counters"
echo "smoke: /metrics scrape ok"

# five acknowledged writes: after the kill -9 below, each MUST survive
# (the WAL is appended and flushed before the ok is sent)
for i in 1 2 3 4 5; do
  "$BALGI" client --port "$port" -e "def bag W$i : {{<U>}} = {{ <'w>:$i }}" \
    | grep -q "ok defined W$i" || fail "write W$i not acknowledged"
done

# kill -9 mid-load: a background writer is re-defining a bag when the
# server dies; its in-flight write may or may not survive, the five
# acknowledged ones must
(
  j=0
  while [ $j -lt 200 ]; do
    "$BALGI" client --port "$port" -e "def bag K : {{<U>}} = {{ <'k>:$((j + 1)) }}" \
      >/dev/null 2>&1 || exit 0
    j=$((j + 1))
  done
) &
writer=$!
sleep 0.3
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=
wait "$writer" 2>/dev/null || true
echo "smoke: killed balgd mid-load"

# restart over the same store: recovery must replay the surviving WAL
# prefix through the validating loader
start_server
echo "smoke: balgd restarted on port $port"
names=$("$BALGI" client --port "$port" -e list) || fail "list after restart"
for i in 1 2 3 4 5; do
  case " $names " in
  *" W$i "* | *" W$i") ;;
  *) fail "acknowledged write W$i lost across kill -9 (have: $names)" ;;
  esac
done
got=$("$BALGI" client --port "$port" -e "eval R ++ R") \
  || fail "eval after restart"
[ "$got" = "$want" ] || fail "recovered store diverged: $got != $want"
echo "smoke: all acknowledged writes survived recovery"

# graceful shutdown on SIGTERM
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null && [ $i -lt 50 ]; do
  sleep 0.1
  i=$((i + 1))
done
kill -0 "$pid" 2>/dev/null && fail "balgd ignored SIGTERM"
pid=
echo "smoke: ok"
