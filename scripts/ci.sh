#!/bin/sh
# CI build+test entry point.  Benchmarks live in scripts/bench.sh and the
# regression gate in scripts/bench_gate.sh so the workflow can run them as
# separate, individually-reported steps.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
