#!/bin/sh
# CI entry point: build, run the test suite, then emit the machine-readable
# benchmark report (BENCH_eval.json, uploaded as an artifact by the
# workflow).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/main.exe -- --json

echo "--- BENCH_eval.json ---"
cat BENCH_eval.json
