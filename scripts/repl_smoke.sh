#!/bin/sh
# End-to-end replication smoke test for balgd, run as CI's repl-smoke
# job: start a primary and a follower, load data, verify the follower
# serves a bit-identical dump, kill -9 the primary mid-load, promote the
# follower with SIGUSR1, and assert that a retrying client's writes
# survive the failover window.
set -eu
cd "$(dirname "$0")/.."

dune build bin/balgd.exe bin/balgi.exe
BALGD=_build/default/bin/balgd.exe
BALGI=_build/default/bin/balgi.exe

tmp=$(mktemp -d)
ppid=
fpid=
cleanup() {
  [ -n "$ppid" ] && kill -9 "$ppid" 2>/dev/null || true
  [ -n "$fpid" ] && kill -9 "$fpid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
  echo "repl-smoke: FAIL: $1" >&2
  [ -f "$tmp/primary.out" ] && sed 's/^/  primary: /' "$tmp/primary.out" >&2
  [ -f "$tmp/follower.out" ] && sed 's/^/  follower: /' "$tmp/follower.out" >&2
  exit 1
}

# wait for a balgd's announce line and echo the port it chose
await_port() {
  out=$1
  who=$2
  i=0
  while [ $i -lt 100 ]; do
    p=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*$/\1/p' "$out")
    if [ -n "$p" ]; then
      echo "$p"
      return 0
    fi
    sleep 0.1
    i=$((i + 1))
  done
  fail "$who never announced its port"
}

# wait until the follower reports zero lag at the given primary offset
await_caught_up() {
  want_off=$1
  i=0
  while [ $i -lt 100 ]; do
    line=$("$BALGI" client --port "$fport" -e role 2>/dev/null || true)
    case "$line" in
    "ok follower offset=$want_off lag=0"*) return 0 ;;
    esac
    sleep 0.1
    i=$((i + 1))
  done
  fail "follower never caught up to offset $want_off (last: $line)"
}

# --- primary + follower come up --------------------------------------------

"$BALGD" --port 0 --store "$tmp/pstore" >"$tmp/primary.out" 2>&1 &
ppid=$!
pport=$(await_port "$tmp/primary.out" primary)
echo "repl-smoke: primary up on port $pport"

"$BALGD" --port 0 --store "$tmp/fstore" --follow "127.0.0.1:$pport" \
  >"$tmp/follower.out" 2>&1 &
fpid=$!
fport=$(await_port "$tmp/follower.out" follower)
echo "repl-smoke: follower up on port $fport"

# --- load data, verify bit-identical replicas ------------------------------

"$BALGI" client --port "$pport" -e "def bag R : {{<U>}} = {{ <'a>, <'b>:2 }}" \
  | grep -q "ok defined R" || fail "def R not acknowledged"
for i in 1 2 3 4 5; do
  "$BALGI" client --port "$pport" -e "def bag W$i : {{<U>}} = {{ <'w>:$i }}" \
    | grep -q "ok defined W$i" || fail "write W$i not acknowledged"
done

# six applied writes = log offset 6
await_caught_up 6
pdump=$("$BALGI" client --port "$pport" -e dump) || fail "dump on primary"
fdump=$("$BALGI" client --port "$fport" -e dump) || fail "dump on follower"
[ "$pdump" = "$fdump" ] || fail "follower dump diverged from primary"
echo "repl-smoke: follower serves a bit-identical dump"

# the follower refuses writes until promoted (balgi exits non-zero on
# an err reply and echoes it to stderr — both are expected here)
ro=$("$BALGI" client --port "$fport" -e "def bag X : {{<U>}} = {{ <'x> }}" 2>&1) || true
case "$ro" in
err\ readonly*) ;;
*) fail "unpromoted follower accepted a write: $ro" ;;
esac

# --- failover: kill -9 the primary mid-load, promote the follower ----------

# a background writer is mid-stream on the primary when it dies; its
# in-flight write may or may not replicate, the six acknowledged must
(
  j=0
  while [ $j -lt 200 ]; do
    "$BALGI" client --port "$pport" -e "def bag K : {{<U>}} = {{ <'k>:$((j + 1)) }}" \
      >/dev/null 2>&1 || exit 0
    j=$((j + 1))
  done
) &
writer=$!
sleep 0.3
kill -9 "$ppid" 2>/dev/null || true
wait "$ppid" 2>/dev/null || true
ppid=
wait "$writer" 2>/dev/null || true
echo "repl-smoke: killed primary mid-load"

# a retrying client starts writing against the follower BEFORE the
# promotion lands: every attempt until then answers "err readonly",
# which the retry policy treats as retryable — the write must succeed
# once the follower becomes primary
"$BALGI" client --port "$fport" --retries 30 --timeout 2 \
  -e "def bag F : {{<U>}} = {{ <'f>:7 }}" >"$tmp/retry.out" 2>&1 &
retrier=$!
sleep 0.3
kill -USR1 "$fpid"
i=0
while [ $i -lt 50 ]; do
  grep -q "promoted to primary" "$tmp/follower.out" && break
  sleep 0.1
  i=$((i + 1))
done
grep -q "promoted to primary" "$tmp/follower.out" \
  || fail "follower did not announce promotion on SIGUSR1"
wait "$retrier" || fail "retrying client failed across the failover window"
grep -q "ok defined F" "$tmp/retry.out" \
  || fail "retrying write not acknowledged: $(cat "$tmp/retry.out")"
echo "repl-smoke: retrying client survived the failover window"

# --- the promoted follower is a real primary -------------------------------

"$BALGI" client --port "$fport" -e role | grep -q "ok primary" \
  || fail "promoted follower does not report primary role"
names=$("$BALGI" client --port "$fport" -e list) || fail "list after failover"
for n in R W1 W2 W3 W4 W5 F; do
  case " $names " in
  *" $n "* | *" $n") ;;
  *) fail "acknowledged bag $n missing after failover (have: $names)" ;;
  esac
done
got=$("$BALGI" client --port "$fport" -e "eval R ++ R") \
  || fail "eval after failover"
case "$got" in ok\ *) ;; *) fail "eval after failover answered: $got" ;; esac
echo "repl-smoke: all acknowledged writes survived failover"

# graceful shutdown on SIGTERM
kill -TERM "$fpid"
i=0
while kill -0 "$fpid" 2>/dev/null && [ $i -lt 50 ]; do
  sleep 0.1
  i=$((i + 1))
done
kill -0 "$fpid" 2>/dev/null && fail "promoted balgd ignored SIGTERM"
fpid=
echo "repl-smoke: ok"
