#!/bin/sh
# Emit the machine-readable benchmark report (BENCH_eval.json, uploaded as
# an artifact by the workflow).
set -eu
cd "$(dirname "$0")/.."

dune build bench/main.exe
# extra flags pass straight through (e.g. --jobs 4 adds parallel _jobs4
# rows next to the sequential ones)
dune exec bench/main.exe -- --json "$@"

echo "--- BENCH_eval.json ---"
cat BENCH_eval.json
