#!/bin/sh
# Validate a Chrome trace-event file written by Obs.Trace.to_chrome:
#   - every B has a matching E in its (pid,tid) lane: nesting depth never
#     goes negative and every lane ends at depth 0 (faulted and cancelled
#     runs included — the evaluator closes spans on the unwind path)
#   - timestamps are non-decreasing within each lane
#   - the trace-side accounting invariant: the sum of "steps" over all
#     eval end events equals the sum of "fuel" over the run-end "done"
#     instants (one per governed run in the file)
#   - the ring buffers never overflowed (otherData.droppedEvents == 0)
#   - every category named after the trace argument is present (the
#     server smoke passes session/queue/worker/wal to prove a request's
#     whole lifecycle was captured)
#   - the file is well-formed JSON (when python3 is available)
# The exporter writes one event object per line precisely so this check
# needs nothing beyond awk.
set -eu

trace=${1:?usage: check_trace.sh TRACE.json [required-category ...]}
shift

awk '
function field_num(line, name,    r) {
  if (match(line, "\"" name "\":-?[0-9.eE+-]+")) {
    r = substr(line, RSTART, RLENGTH)
    sub("\"" name "\":", "", r)
    return r + 0
  }
  return -1
}
function field_str(line, name,    r) {
  if (match(line, "\"" name "\":\"[^\"]*\"")) {
    r = substr(line, RSTART, RLENGTH)
    sub("\"" name "\":\"", "", r)
    sub("\"$", "", r)
    return r
  }
  return ""
}
/"ph":"M"/ { next }
/"ph":"[BEI]"/ {
  ph = field_str($0, "ph")
  lane = field_num($0, "pid") ":" field_num($0, "tid")
  ts = field_num($0, "ts")
  if (lane in last_ts && ts < last_ts[lane]) {
    printf "check_trace: non-monotonic ts in lane %s: %s after %s\n", \
      lane, ts, last_ts[lane]
    bad = 1
  }
  last_ts[lane] = ts
  if (ph == "B") depth[lane]++
  if (ph == "E") {
    depth[lane]--
    if (depth[lane] < 0) {
      printf "check_trace: E without matching B in lane %s\n", lane
      bad = 1
    }
    if (field_str($0, "cat") == "eval") {
      s = field_num($0, "steps")
      if (s >= 0) steps += s
    }
  }
  if (ph == "I" && field_str($0, "name") == "done") {
    fu = field_num($0, "fuel")
    if (fu >= 0) fuel += fu
    runs++
  }
  events++
}
/"droppedEvents"/ { dropped = field_num($0, "droppedEvents") }
END {
  for (lane in depth)
    if (depth[lane] != 0) {
      printf "check_trace: lane %s ends at depth %d (unclosed spans)\n", \
        lane, depth[lane]
      bad = 1
    }
  if (events == 0) { print "check_trace: no events"; bad = 1 }
  if (runs == 0)   { print "check_trace: no run-end (done) instant"; bad = 1 }
  if (steps != fuel) {
    printf "check_trace: accounting broken: sum E.steps=%d, done fuel=%d\n", \
      steps, fuel
    bad = 1
  }
  if (dropped != 0) {
    printf "check_trace: ring dropped %d events (raise the capacity)\n", dropped
    bad = 1
  }
  if (bad) exit 1
  printf "check_trace: ok (%d events, %d run(s), steps == fuel == %d)\n", \
    events, runs, steps
}
' "$trace"

for cat in "$@"; do
  if ! grep -q "\"cat\":\"$cat\"" "$trace"; then
    echo "check_trace: required category '$cat' absent from $trace"
    exit 1
  fi
done

if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$trace" >/dev/null
fi
