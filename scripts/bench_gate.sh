#!/bin/sh
# Benchmark-regression gate.  Re-measures every json bench (best-of-3
# medians), compares machine-calibrated ratios against the committed
# BENCH_baseline.json, and fails if any bench regressed beyond 25%.
# Extra arguments are passed through, e.g.
#   scripts/bench_gate.sh --handicap selfjoin_binary20=2.0   # self-test
set -eu
cd "$(dirname "$0")/.."

dune build bench/main.exe
dune exec bench/main.exe -- --gate BENCH_baseline.json "$@"
