#!/bin/sh
# Repository hygiene checks, run as CI's lint job alongside the
# warnings-as-errors build (dune build @check).
set -eu
cd "$(dirname "$0")/.."

fail=0

# no trailing whitespace in tracked sources (SNIPPETS.md is verbatim
# reference material and exempt)
if git grep -lI ' $' -- . ':!SNIPPETS.md' >/dev/null 2>&1; then
  echo "lint: trailing whitespace in:"
  git grep -lI ' $' -- . ':!SNIPPETS.md' | sed 's/^/  /'
  fail=1
fi

# no build products tracked
if git ls-files | grep -E '^_build/|\.install$' >/dev/null; then
  echo "lint: build products are tracked:"
  git ls-files | grep -E '^_build/|\.install$' | sed 's/^/  /'
  fail=1
fi

# ignore hygiene: _build and the generated bench report must stay ignored
for pat in '_build/' 'BENCH_eval.json'; do
  if ! grep -qxF "$pat" .gitignore; then
    echo "lint: .gitignore is missing '$pat'"
    fail=1
  fi
done

# parallel-safety: code reachable from pool tasks must not mutate hash
# tables that could be shared across domains.  Any raw mutation in the
# pool/kernel/evaluator sources needs a same-line 'domain-local'
# annotation saying why the table cannot be shared (DLS slot, fresh per
# call, ...).
for f in lib/core/pool.ml lib/core/bag.ml lib/core/eval.ml lib/core/vec.ml lib/core/veval.ml; do
  bad=$(grep -nE '(Hashtbl|VH)\.(add|replace|remove|reset|clear|filter_map_inplace)' "$f" | grep -v 'domain-local' || true)
  if [ -n "$bad" ]; then
    echo "lint: unannotated hash-table mutation in $f (justify with 'domain-local:'):"
    echo "$bad" | sed 's/^/  /'
    fail=1
  fi
done

# exit-discipline: only a CLI's top-level command dispatch may call exit.
# Library, test and example code must return errors (result values,
# structured verdicts, Db_error) instead — a stray exit in an error path
# is how a REPL dies and a harness loses its report.  Each CLI
# (bin/balgi.ml, bin/balgd.ml) gets exactly one exit: its Cmdliner
# dispatch line; bench/main.ml runs its own dispatch and is exempt.
bad=$(grep -rnE '(^|[^._[:alnum:]])exit[[:space:]]*([0-9]|\()' lib test examples --include='*.ml' | grep -v 'lint-exit-ok' || true)
if [ -n "$bad" ]; then
  echo "lint: exit called outside a CLI dispatch:"
  echo "$bad" | sed 's/^/  /'
  fail=1
fi
for cli in bin/balgi.ml bin/balgd.ml; do
  cli_exits=$(grep -cE '(^|[^._[:alnum:]])exit[[:space:]]*([0-9]|\()' "$cli" || true)
  if [ "$cli_exits" != "1" ]; then
    echo "lint: $cli must contain exactly one exit (the Cmd.eval' dispatch), found $cli_exits"
    fail=1
  fi
done

# observability: every trace-emission call site outside the sink itself
# must keep the disarmed fast path on the same line
# ('if Obs.on () then Obs.emit ...') so a run without --trace-out pays one
# atomic read and a branch — never argument construction or a ring write.
bad=$(grep -rn 'Obs\.emit' lib bin bench test --include='*.ml' | grep -v '^lib/core/obs\.ml:' | grep -v 'Obs\.on ()' || true)
if [ -n "$bad" ]; then
  echo "lint: Obs.emit call sites must be guarded by 'if Obs.on () then' on the same line:"
  echo "$bad" | sed 's/^/  /'
  fail=1
fi

# bounds-safety: unchecked array access is confined to the columnar
# kernels (lib/core/vec.ml), and every unsafe_get/unsafe_set there must
# justify its bounds on the same line ('bounds: ...') next to an
# enclosing assertion.  Everywhere else the checked accessors are fast
# enough and the checks have caught real bugs.
bad=$(grep -rn 'Array\.unsafe_\(get\|set\)' lib bin bench test examples --include='*.ml' | grep -v '^lib/core/vec\.ml:' || true)
if [ -n "$bad" ]; then
  echo "lint: Array.unsafe_get/unsafe_set outside lib/core/vec.ml:"
  echo "$bad" | sed 's/^/  /'
  fail=1
fi
bad=$(grep -n 'Array\.unsafe_\(get\|set\)' lib/core/vec.ml | grep -v 'bounds:' || true)
if [ -n "$bad" ]; then
  echo "lint: unsafe array access in lib/core/vec.ml without a same-line 'bounds:' justification:"
  echo "$bad" | sed 's/^/  /'
  fail=1
fi

# rewrite coverage: every named rule in the rewriter and the optimizer
# must be exercised by a differential/witness test — a rule whose
# 'applies' never fires under test is an unsound-rewrite time bomb.  A
# rule counts as covered when its name literal appears in
# test/test_rewrite.ml or test/test_opt.ml.
uncovered=$({ grep -hoE 'name = "[^"]+"' lib/core/rewrite.ml lib/core/opt.ml \
    | sed 's/^.*name = "\(.*\)"$/\1/';
    grep -hoE 'commute "[^"]+"' lib/core/rewrite.ml \
    | sed 's/^commute "\(.*\)"$/\1/'; } \
  | sort -u \
  | while IFS= read -r r; do
      grep -qF -- "$r" test/test_rewrite.ml test/test_opt.ml || echo "$r"
    done)
if [ -n "$uncovered" ]; then
  echo "lint: rewrite/optimizer rules with no covering test (add a witness to test/test_rewrite.ml or test/test_opt.ml):"
  echo "$uncovered" | sed 's/^/  /'
  fail=1
fi

# scripts stay executable-safe: every scripts/*.sh must pass a syntax check
for s in scripts/*.sh; do
  if ! sh -n "$s"; then
    echo "lint: $s fails sh -n"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "lint: ok"
fi
exit "$fail"
