#!/bin/sh
# Repository hygiene checks, run as CI's lint job alongside the
# warnings-as-errors build (dune build @check).
set -eu
cd "$(dirname "$0")/.."

fail=0

# no trailing whitespace in tracked sources (SNIPPETS.md is verbatim
# reference material and exempt)
if git grep -lI ' $' -- . ':!SNIPPETS.md' >/dev/null 2>&1; then
  echo "lint: trailing whitespace in:"
  git grep -lI ' $' -- . ':!SNIPPETS.md' | sed 's/^/  /'
  fail=1
fi

# no build products tracked
if git ls-files | grep -E '^_build/|\.install$' >/dev/null; then
  echo "lint: build products are tracked:"
  git ls-files | grep -E '^_build/|\.install$' | sed 's/^/  /'
  fail=1
fi

# ignore hygiene: _build and the generated bench report must stay ignored
for pat in '_build/' 'BENCH_eval.json'; do
  if ! grep -qxF "$pat" .gitignore; then
    echo "lint: .gitignore is missing '$pat'"
    fail=1
  fi
done

# scripts stay executable-safe: every scripts/*.sh must pass a syntax check
for s in scripts/*.sh; do
  if ! sh -n "$s"; then
    echo "lint: $s fails sh -n"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "lint: ok"
fi
exit "$fail"
