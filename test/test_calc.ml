(* Tests for the CALC1 calculus evaluator and its correspondence with the
   set-semantics algebra ([AB87], §5). *)

open Balg
module Calc = Ralg.Calc
module Rel = Ralg.Rel
module Reval = Ralg.Reval

let a x = Value.atom x
let t1 x = Value.tuple [ a x ]
let t2 x y = Value.tuple [ a x; a y ]

let g_rel = Rel.of_list [ t2 "x" "y"; t2 "y" "z"; t2 "x" "x" ]
let r_rel = Rel.of_list [ t1 "x"; t1 "y" ]
let db = [ ("G", g_rel); ("R", r_rel) ]

let test_terms () =
  Alcotest.(check bool) "component access" true
    (Calc.holds db
       [ ("t", t2 "x" "y") ]
       (Calc.Eq (Calc.TComp (Calc.TVar "t", 2), Calc.TConst "y")));
  match Calc.holds db [] (Calc.Eq (Calc.TComp (Calc.TConst "x", 1), Calc.TConst "x")) with
  | exception Calc.Calc_error _ -> ()
  | _ -> Alcotest.fail "component of atom must fail"

let test_relation_atoms () =
  Alcotest.(check bool) "G(<x,y>)" true
    (Calc.holds db [ ("v", t2 "x" "y") ] (Calc.Rel ("G", Calc.TVar "v")));
  Alcotest.(check bool) "not G(<z,z>)" false
    (Calc.holds db [ ("v", t2 "z" "z") ] (Calc.Rel ("G", Calc.TVar "v")))

let test_quantifiers () =
  (* ∃v : U^2. G(v) ∧ v.1 = v.2  — the self-loop *)
  let selfloop =
    Calc.Exists
      ( "v",
        Calc.VTuple 2,
        Calc.And
          ( Calc.Rel ("G", Calc.TVar "v"),
            Calc.Eq (Calc.TComp (Calc.TVar "v", 1), Calc.TComp (Calc.TVar "v", 2)) ) )
  in
  Alcotest.(check bool) "self-loop exists" true (Calc.sentence db selfloop);
  (* ∀u : U. ∃v : U^2. G(v) ∧ v.1 = u — false: z has no outgoing edge *)
  let all_sources =
    Calc.Forall
      ( "u",
        Calc.VAtom,
        Calc.Exists
          ( "v",
            Calc.VTuple 2,
            Calc.And
              ( Calc.Rel ("G", Calc.TVar "v"),
                Calc.Eq (Calc.TComp (Calc.TVar "v", 1), Calc.TVar "u") ) ) )
  in
  Alcotest.(check bool) "not every atom is a source" false
    (Calc.sentence db all_sources)

let test_set_quantifier () =
  (* ∃S : {U^1}. ∀u : U. (u ∈ S-as-tuples ↔ R(<u>)) — S = R exists *)
  let phi =
    Calc.Exists
      ( "S",
        Calc.VSet 1,
        Calc.Forall
          ( "u",
            Calc.VAtom,
            Calc.And
              ( Calc.Or
                  ( Calc.Not (Calc.Mem (Calc.TVar "ut", Calc.TVar "S")),
                    Calc.Rel ("R", Calc.TVar "ut") ),
                Calc.Or
                  ( Calc.Not (Calc.Rel ("R", Calc.TVar "ut")),
                    Calc.Mem (Calc.TVar "ut", Calc.TVar "S") ) ) ) )
  in
  (* bind ut := <u> via an inner exists-with-equality *)
  let phi =
    match phi with
    | Calc.Exists (s, vty, Calc.Forall (u, uty, body)) ->
        Calc.Exists
          ( s,
            vty,
            Calc.Forall
              ( u,
                uty,
                Calc.Exists
                  ( "ut",
                    Calc.VTuple 1,
                    Calc.And
                      ( Calc.Eq (Calc.TComp (Calc.TVar "ut", 1), Calc.TVar u),
                        body ) ) ) )
    | _ -> assert false
  in
  Alcotest.(check bool) "the set R is in the completion domain" true
    (Calc.sentence db phi)

let test_subset_predicate () =
  (* every set quantified below is a subset of the full tuple domain *)
  let phi =
    Calc.Forall
      ( "S",
        Calc.VSet 1,
        Calc.Exists
          ( "T",
            Calc.VSet 1,
            Calc.And (Calc.Sub (Calc.TVar "S", Calc.TVar "T"), Calc.True) ) )
  in
  Alcotest.(check bool) "⊆ with the full set witness" true (Calc.sentence db phi)

(* CALC1 query ≡ algebra query on concrete cases (the AB87 correspondence,
   spot-checked) *)
let test_calc_vs_algebra_projection () =
  (* { u : U^1 | ∃v : U^2. G(v) ∧ v.1 = u.1 } == dedup(pi1(G)) *)
  let calc_result =
    Calc.query db ("u", Calc.VTuple 1)
      (Calc.Exists
         ( "v",
           Calc.VTuple 2,
           Calc.And
             ( Calc.Rel ("G", Calc.TVar "v"),
               Calc.Eq (Calc.TComp (Calc.TVar "v", 1), Calc.TComp (Calc.TVar "u", 1)) ) ))
  in
  let algebra_result =
    Reval.eval
      (Reval.env_of_list [ ("G", Rel.to_value g_rel) ])
      (Expr.Dedup (Expr.proj_attrs [ 1 ] (Expr.Var "G")))
  in
  Alcotest.(check bool) "projection agrees" true
    (Value.equal (Rel.to_value calc_result) algebra_result)

let test_calc_vs_algebra_join () =
  (* { u : U^2 | ∃v ∃w. G(v) ∧ G(w) ∧ v.2 = w.1 ∧ u = <v.1, w.2> } == pi_{1,4} sigma_{2=3} (G x G) *)
  let comp t i = Calc.TComp (t, i) in
  let calc_result =
    Calc.query db ("u", Calc.VTuple 2)
      (Calc.Exists
         ( "v",
           Calc.VTuple 2,
           Calc.Exists
             ( "w",
               Calc.VTuple 2,
               Calc.And
                 ( Calc.And (Calc.Rel ("G", Calc.TVar "v"), Calc.Rel ("G", Calc.TVar "w")),
                   Calc.And
                     ( Calc.Eq (comp (Calc.TVar "v") 2, comp (Calc.TVar "w") 1),
                       Calc.And
                         ( Calc.Eq (comp (Calc.TVar "u") 1, comp (Calc.TVar "v") 1),
                           Calc.Eq (comp (Calc.TVar "u") 2, comp (Calc.TVar "w") 2) ) ) ) ) ))
  in
  let algebra_result =
    Reval.eval
      (Reval.env_of_list [ ("G", Rel.to_value g_rel) ])
      (Derived.selfjoin (Expr.Var "G"))
  in
  Alcotest.(check bool) "join agrees" true
    (Value.equal (Rel.to_value calc_result) algebra_result)

let test_domain_guard () =
  (* set domains over too many tuples are refused, not diverging *)
  let big_db =
    [ ("B", Rel.of_list (List.map (fun i -> t2 (string_of_int i) (string_of_int i)) (List.init 5 Fun.id))) ]
  in
  match Calc.sentence big_db (Calc.Exists ("S", Calc.VSet 2, Calc.True)) with
  | exception Calc.Calc_error _ -> ()
  | _ -> Alcotest.fail "expected Calc_error on huge set domain"

let () =
  Alcotest.run "calc"
    [
      ( "calculus",
        [
          Alcotest.test_case "terms" `Quick test_terms;
          Alcotest.test_case "relations" `Quick test_relation_atoms;
          Alcotest.test_case "quantifiers" `Quick test_quantifiers;
          Alcotest.test_case "set quantifier" `Quick test_set_quantifier;
          Alcotest.test_case "subset predicate" `Quick test_subset_predicate;
          Alcotest.test_case "domain guard" `Quick test_domain_guard;
        ] );
      ( "AB87 correspondence",
        [
          Alcotest.test_case "projection" `Quick test_calc_vs_algebra_projection;
          Alcotest.test_case "join" `Quick test_calc_vs_algebra_join;
        ] );
    ]
