(* Tests for the multicore evaluation engine: the work-sharing pool itself,
   bit-identical sequential-vs-parallel results on random expressions, the
   steps == fuel telemetry invariant across domain joins, and deterministic
   exhaustion verdicts under concurrent budget charging.

   The pool under test uses [chunk_min = 1] and [fork_min = 1] so the
   parallel code paths fire even on the tiny inputs a test can afford;
   [BALG_TEST_JOBS] (default 4) sets the domain count so CI can pin it. *)

open Balg

let jobs =
  match Sys.getenv_opt "BALG_TEST_JOBS" with
  | Some s -> ( try max 2 (int_of_string s) with _ -> 4)
  | None -> 4

let with_test_pool f =
  let p = Pool.create ~chunk_min:1 ~fork_min:1 ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let value = Alcotest.testable Value.pp Value.equal

(* --- the pool itself ------------------------------------------------------- *)

let test_pool_ordering () =
  with_test_pool (fun p ->
      let results =
        Pool.run p (List.init 40 (fun i () -> i * i))
        |> List.map (function Ok n -> n | Error e -> raise e)
      in
      Alcotest.(check (list int))
        "results come back in input order"
        (List.init 40 (fun i -> i * i))
        results)

let test_pool_exceptions () =
  with_test_pool (fun p ->
      let results =
        Pool.run p
          [
            (fun () -> 1);
            (fun () -> failwith "boom");
            (fun () -> 3);
          ]
      in
      match results with
      | [ Ok 1; Error (Failure msg); Ok 3 ] when msg = "boom" -> ()
      | _ -> Alcotest.fail "per-thunk results or captured exception wrong")

let test_pool_nested () =
  (* a task that itself calls [Pool.run] on the same pool: the owner helps
     drain the queue, so this must not deadlock even with jobs = 2 *)
  with_test_pool (fun p ->
      let inner i =
        Pool.run p (List.init 5 (fun j () -> (10 * i) + j))
        |> List.map (function Ok n -> n | Error e -> raise e)
        |> List.fold_left ( + ) 0
      in
      let results =
        Pool.run p (List.init 8 (fun i () -> inner i))
        |> List.map (function Ok n -> n | Error e -> raise e)
      in
      Alcotest.(check (list int))
        "nested batches complete"
        (List.init 8 (fun i -> (50 * i) + 10))
        results)

let test_chunks () =
  Alcotest.(check (list (list int))) "empty" [] (Pool.chunks 4 []);
  Alcotest.(check (list (list int)))
    "fewer elements than chunks"
    [ [ 1 ]; [ 2 ] ]
    (Pool.chunks 4 [ 1; 2 ]);
  let l = List.init 23 Fun.id in
  let cs = Pool.chunks 4 l in
  Alcotest.(check int) "at most k chunks" 4 (List.length cs);
  Alcotest.(check (list int)) "concat restores the list" l (List.concat cs);
  List.iter
    (fun c ->
      Alcotest.(check bool) "near-equal sizes" true
        (List.length c >= 5 && List.length c <= 6))
    cs

(* --- sequential vs parallel differential ----------------------------------- *)

let env_spec = [ ("R", 1); ("S", 2) ]

(* Generous limits: the point here is comparing *values*, so (almost)
   nothing should exhaust.  The two sides may spend different amounts of
   fuel — domain-local memo tables see different subsets of the work — so
   exhaustion equivalence is not part of this property. *)
let roomy_limits =
  {
    Budget.default with
    Budget.fuel = 20_000_000;
    max_support = 200_000;
    max_size = 5_000_000;
  }

let differential gen gen_name =
  QCheck.Test.make
    ~name:(Printf.sprintf "parallel eval is bit-identical (%s)" gen_name)
    ~count:60
    QCheck.(make Gen.int)
    (fun seed ->
      with_test_pool (fun p ->
          let rng = Random.State.make [| seed |] in
          let e = gen rng env_spec 4 (1 + Random.State.int rng 2) in
          List.for_all
            (fun _ ->
              let inst = Baggen.Genexpr.instance rng env_spec in
              let env = Eval.env_of_list inst in
              let seq = Eval.run ~limits:roomy_limits env e in
              let par = Eval.run ~limits:roomy_limits ~pool:p env e in
              match (seq, par) with
              | Ok v, Ok v' -> Value.equal v v'
              | Error _, _ | _, Error _ -> true)
            (List.init 6 Fun.id)))

let differential_flat =
  differential (Baggen.Genexpr.flat ?allow_diff:None ?allow_dedup:None) "flat"

let differential_nested = differential Baggen.Genexpr.nested "nested"

let test_differential_kernels () =
  (* deterministic spot checks straight at the chunked kernels, with
     supports big enough to split across every domain *)
  let rng = Random.State.make [| 42 |] in
  let big = Baggen.Genval.flat_bag rng ~n_atoms:12 ~arity:2 ~size:120 ~max_count:3 in
  with_test_pool (fun p ->
      Alcotest.check value "product"
        (Bag.product big big)
        (Bag.product ~pool:p big big);
      let prod = Bag.product big big in
      Alcotest.check value "proj"
        (Bag.proj [ 2; 1; 4 ] prod)
        (Bag.proj ~pool:p [ 2; 1; 4 ] prod);
      Alcotest.check value "select_eq"
        (Bag.select_eq 2 3 prod)
        (Bag.select_eq ~pool:p 2 3 prod))

(* --- telemetry: steps == fuel survives domain joins ------------------------ *)

let selfjoin_query rng =
  let bag = Baggen.Genval.flat_bag rng ~n_atoms:10 ~arity:2 ~size:60 ~max_count:2 in
  Derived.selfjoin (Expr.lit bag (Ty.relation 2))

let test_steps_equal_fuel () =
  let q = selfjoin_query (Random.State.make [| 7 |]) in
  with_test_pool (fun p ->
      let budget = Budget.start roomy_limits in
      let t = Telemetry.create () in
      (match Eval.run ~budget ~telemetry:t ~pool:p (Eval.env_of_list []) q with
      | Ok _ -> ()
      | Error x -> Alcotest.failf "unexpected exhaustion: %s" (Budget.exhaustion_to_string x));
      Alcotest.(check int)
        "every shard-merged telemetry step is a governor fuel unit"
        (Budget.fuel_spent budget)
        (Telemetry.total_steps t))

(* --- deterministic exhaustion ---------------------------------------------- *)

let test_deterministic_exhaustion () =
  (* a product whose materialisation exceeds max_support: every chunk
     charges the same node, and concurrent trips must publish one verdict —
     the smallest exhausting node id — run after run *)
  let q = selfjoin_query (Random.State.make [| 13 |]) in
  let limits = { Budget.default with Budget.fuel = 1_000_000; max_support = 100 } in
  with_test_pool (fun p ->
      let verdict () =
        match Eval.run ~limits ~pool:p (Eval.env_of_list []) q with
        | Ok _ -> Alcotest.fail "expected exhaustion"
        | Error x -> (x.Budget.resource, x.Budget.at_node, x.Budget.op)
      in
      let first = verdict () in
      List.iter
        (fun _ ->
          let again = verdict () in
          Alcotest.(check bool)
            "same structured verdict on every parallel run" true
            (first = again))
        (List.init 5 Fun.id))

(* --- chaos differential ----------------------------------------------------- *)

(* CI's chaos leg sweeps BALG_FAULT / BALG_FAULT_SEED over several seeds;
   locally the defaults below apply.  Only this suite arms the spec — the
   library never reads the environment on its own, so the rest of the test
   binary runs fault-free even under the sweep. *)
let chaos_spec =
  Option.value
    (Sys.getenv_opt "BALG_FAULT")
    ~default:"pool.task:p=0.05,bag.alloc:p=0.05,eval.step:p=0.01"

let chaos_seed =
  match Sys.getenv_opt "BALG_FAULT_SEED" with
  | Some s -> ( try int_of_string s with _ -> 42)
  | None -> 42

let chaos_differential =
  (* worker-death / allocation / step faults during a parallel run: the
     result is the clean sequential value, bit-identical, or a structured
     verdict — never a raw exception, never a wrong value *)
  QCheck.Test.make
    ~name:"chaos: faulted parallel run is bit-identical or a verdict"
    ~count:40
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = Baggen.Genexpr.nested rng env_spec 4 (1 + Random.State.int rng 2) in
      let inst = Baggen.Genexpr.instance rng env_spec in
      let env = Eval.env_of_list inst in
      let oracle = Eval.run ~limits:roomy_limits env e in
      let chaotic =
        Fault.with_faults ~seed:(chaos_seed + seed) chaos_spec (fun () ->
            with_test_pool (fun p ->
                Eval.run ~limits:roomy_limits ~pool:p env e))
      in
      match (oracle, chaotic) with
      | Ok v, Ok v' -> Value.equal v v'
      | _, Error _ -> true (* structured verdict: acceptable under faults *)
      | Error _, Ok _ -> true)

let test_chaos_pool_shutdown () =
  (* spawn faults degrade the pool (fewer workers, helping caller keeps
     progress); task faults surface as per-thunk Injected errors; and
     shutdown must still leave zero live domains *)
  Fault.with_faults ~seed:7 "pool.spawn:every=2,pool.task:p=0.2" (fun () ->
      let p = Pool.create ~chunk_min:1 ~fork_min:1 ~jobs () in
      let results = Pool.run p (List.init 40 (fun i () -> i)) in
      Alcotest.(check int) "every thunk answered" 40 (List.length results);
      List.iteri
        (fun i -> function
          | Ok v -> Alcotest.(check int) "in-order value" i v
          | Error (Fault.Injected _) -> ()
          | Error e ->
              Alcotest.failf "unexpected error: %s" (Printexc.to_string e))
        results;
      Pool.shutdown p;
      Alcotest.(check int) "zero live domains" 0 (Pool.live p))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "ordering" `Quick test_pool_ordering;
          Alcotest.test_case "exception capture" `Quick test_pool_exceptions;
          Alcotest.test_case "nested batches" `Quick test_pool_nested;
          Alcotest.test_case "chunks" `Quick test_chunks;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest differential_flat;
          QCheck_alcotest.to_alcotest differential_nested;
          Alcotest.test_case "chunked kernels" `Quick test_differential_kernels;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "steps == fuel across joins" `Quick
            test_steps_equal_fuel;
          Alcotest.test_case "deterministic exhaustion verdict" `Quick
            test_deterministic_exhaustion;
        ] );
      ( "chaos",
        [
          QCheck_alcotest.to_alcotest chaos_differential;
          Alcotest.test_case "degraded pool still shuts down clean" `Quick
            test_chaos_pool_shutdown;
        ] );
    ]
