(* Tests for values, canonicalisation, typing and type measures. *)

open Balg
module B = Bignat

let value = Alcotest.testable Value.pp Value.equal
let ty = Alcotest.testable Ty.pp Ty.equal

let a = Value.atom "a"
let b = Value.atom "b"
let t2 x y = Value.tuple [ x; y ]

let test_bag_canonical () =
  let b1 = Value.bag_of_assoc [ (b, B.of_int 2); (a, B.one); (b, B.one) ] in
  let b2 = Value.bag_of_assoc [ (a, B.one); (b, B.of_int 3) ] in
  Alcotest.check value "coalesced and sorted" b2 b1;
  let b3 = Value.bag_of_assoc [ (a, B.zero) ] in
  Alcotest.check value "zero counts dropped" Value.empty_bag b3;
  Alcotest.check value "of_list" b2
    (Value.bag_of_list [ Value.atom "b"; a; Value.atom "b"; Value.atom "b" ])

let test_counts () =
  let bag = Value.bag_of_list [ a; a; b ] in
  Alcotest.(check string) "count a" "2" (B.to_string (Value.count_in a bag));
  Alcotest.(check string) "count absent" "0"
    (B.to_string (Value.count_in (Value.atom "z") bag));
  Alcotest.(check string) "cardinal" "3" (B.to_string (Value.cardinal bag));
  Alcotest.(check int) "support" 2 (Value.support_size bag)

let test_nat_encoding () =
  let n5 = Value.nat 5 in
  Alcotest.(check string) "nat 5 cardinal" "5" (B.to_string (Value.nat_value n5));
  Alcotest.(check int) "single distinct element" 1 (Value.support_size n5);
  Alcotest.check value "nat 0 is empty" Value.empty_bag (Value.nat 0)

let test_bag_nesting () =
  Alcotest.(check int) "atom" 0 (Value.bag_nesting a);
  Alcotest.(check int) "flat bag" 1 (Value.bag_nesting (Value.bag_of_list [ a ]));
  Alcotest.(check int) "bag of bags" 2
    (Value.bag_nesting (Value.bag_of_list [ Value.bag_of_list [ a ] ]));
  Alcotest.(check int) "tuple mixes" 2
    (Value.bag_nesting
       (Value.tuple [ a; Value.bag_of_list [ Value.bag_of_list [ b ] ] ]))

let test_encoded_size () =
  (* duplicates are counted explicitly, per the paper's standard encoding *)
  let bag = Value.replicate (B.of_int 10) (t2 a b) in
  Alcotest.(check string) "10 copies of a 3-node tuple + bag node" "31"
    (B.to_string (Value.encoded_size bag))

let test_typing () =
  let bag = Value.bag_of_list [ t2 a b ] in
  Alcotest.(check bool) "has_type ok" true (Value.has_type (Ty.relation 2) bag);
  Alcotest.(check bool) "arity mismatch" false (Value.has_type (Ty.relation 3) bag);
  Alcotest.(check bool) "empty bag inhabits every bag type" true
    (Value.has_type (Ty.Bag (Ty.Bag Ty.Atom)) Value.empty_bag);
  (match Value.infer bag with
  | Some t -> Alcotest.check ty "infer" (Ty.relation 2) t
  | None -> Alcotest.fail "expected inferable");
  (match Value.infer (Value.bag_of_list [ a; t2 a b ]) with
  | None -> ()
  | Some _ -> Alcotest.fail "heterogeneous bag must not infer")

let test_ty_measures () =
  Alcotest.(check int) "nesting of U" 0 (Ty.bag_nesting Ty.Atom);
  Alcotest.(check int) "nesting of rel" 1 (Ty.bag_nesting (Ty.relation 2));
  Alcotest.(check int) "nesting of {{ {{U}} }}" 2
    (Ty.bag_nesting (Ty.Bag (Ty.Bag Ty.Atom)));
  Alcotest.(check bool) "BALG^1 type" true (Ty.is_unnested (Ty.relation 3));
  Alcotest.(check bool) "not BALG^1" false (Ty.is_unnested (Ty.Bag (Ty.Bag Ty.Atom)));
  Alcotest.(check string) "pp" "{{<U, U>}}" (Ty.to_string (Ty.relation 2))

let test_atoms () =
  let v = Value.tuple [ a; Value.bag_of_list [ b; Value.atom "c" ] ] in
  Alcotest.(check (list string)) "atoms" [ "a"; "b"; "c" ] (Value.atoms v)

let test_pp () =
  let bag = Value.bag_of_assoc [ (t2 a b, B.of_int 3); (a, B.one) ] in
  Alcotest.(check string) "rendering" "{{'a, <'a, 'b>:3}}" (Value.to_string bag)

(* --- order properties -------------------------------------------------- *)

let rng = Random.State.make [| 42 |]

let gen_value =
  QCheck.Gen.map
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let tys = [ Ty.Atom; Ty.relation 2; Ty.Bag (Ty.Bag Ty.Atom) ] in
      let ty = List.nth tys (Random.State.int rng 3) in
      Baggen.Genval.of_type rng ~n_atoms:3 ~width:3 ~max_count:2 ty)
    QCheck.Gen.int

let arb_value = QCheck.make ~print:Value.to_string gen_value

let prop_compare_refl =
  QCheck.Test.make ~name:"compare is reflexive" ~count:300 arb_value (fun v ->
      Value.compare v v = 0)

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare is antisymmetric" ~count:300
    QCheck.(pair arb_value arb_value)
    (fun (v, w) -> Stdlib.compare (Value.compare v w) 0 = -Stdlib.compare (Value.compare w v) 0)

let prop_compare_trans =
  QCheck.Test.make ~name:"compare is transitive" ~count:300
    QCheck.(triple arb_value arb_value arb_value)
    (fun (u, v, w) ->
      let l = List.sort Value.compare [ u; v; w ] in
      match l with
      | [ x; y; z ] -> Value.compare x y <= 0 && Value.compare y z <= 0 && Value.compare x z <= 0
      | _ -> false)

let prop_canonical_order_insensitive =
  QCheck.Test.make ~name:"bag_of_assoc is order-insensitive" ~count:300
    QCheck.(list_of_size (Gen.int_bound 8) (pair arb_value (int_range 0 3)))
    (fun pairs ->
      let pairs = List.map (fun (v, c) -> (v, B.of_int c)) pairs in
      let shuffled =
        List.sort (fun _ _ -> if Random.State.bool rng then 1 else -1) pairs
      in
      Value.equal (Value.bag_of_assoc pairs) (Value.bag_of_assoc shuffled))

let props = List.map QCheck_alcotest.to_alcotest
  [
    prop_compare_refl;
    prop_compare_antisym;
    prop_compare_trans;
    prop_canonical_order_insensitive;
  ]

let () =
  Alcotest.run "value"
    [
      ( "unit",
        [
          Alcotest.test_case "bag canonicalisation" `Quick test_bag_canonical;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "integer-as-bag" `Quick test_nat_encoding;
          Alcotest.test_case "bag nesting" `Quick test_bag_nesting;
          Alcotest.test_case "standard encoding size" `Quick test_encoded_size;
          Alcotest.test_case "typing" `Quick test_typing;
          Alcotest.test_case "type measures" `Quick test_ty_measures;
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "pretty printing" `Quick test_pp;
        ] );
      ("order properties", props);
    ]
