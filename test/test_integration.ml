(* Integration tests: full pipelines (bagdb text -> parse -> typecheck ->
   analyze -> normalize -> eval), evaluator edge cases, and resource-guard
   behaviour under tight configurations. *)

open Balg
module Parser = Baglang.Parser
module Bagdb = Baglang.Bagdb

let value = Alcotest.testable Value.pp Value.equal

let db_text =
  {|
    # a small social network
    bag Follows : {{<U, U>}} =
      {{ <'ada,'bob>, <'bob,'cleo>, <'cleo,'ada>, <'ada,'cleo>, <'bob,'cleo> }}
    bag Celebs : {{<U>}} = {{ <'cleo> }}
  |}

let db = Bagdb.parse db_text
let tenv = Bagdb.type_env db
let venv = Bagdb.value_env db

(* Evaluation goes through the engine dispatcher, so the CI vec leg
   (BALG_ENGINE=vec) drives these full pipelines through the vectorized
   engine as well. *)
let engine = Veval.default_engine ()

let pipeline query =
  let e = Parser.expr_of_string query in
  let ty = Typecheck.infer tenv e in
  let e', _rules = Rewrite.normalize tenv e in
  let ty' = Typecheck.infer tenv e' in
  Alcotest.(check bool) "normalization preserves type" true (Ty.equal ty ty');
  let v = Veval.eval_engine engine venv e
  and v' = Veval.eval_engine engine venv e' in
  Alcotest.check value "normalization preserves value" v v';
  (* the CI optimizer leg (BALG_OPT=cost) drives every pipeline through
     the cost-based planner as well *)
  let e_opt = Opt.prepare (Opt.default_mode ()) tenv e in
  Alcotest.check value "optimization preserves value" v
    (Veval.eval_engine engine venv e_opt);
  v

let test_follower_counts () =
  (* bob->cleo is recorded twice; projection must keep the duplicate *)
  let v = pipeline "pi[2](Follows)" in
  Alcotest.(check string) "cleo followed 3 times (with duplicate)" "3"
    (Bignat.to_string (Value.count_in (Value.tuple [ Value.atom "cleo" ]) v))

let test_popularity_query () =
  (* who has strictly more inbound than outbound edges? *)
  let q node =
    Printf.sprintf
      "pi[2](select(x -> x.2 == '%s, Follows)) -- pi[1](select(x -> x.1 == \
       '%s, Follows))"
      node node
  in
  Alcotest.(check bool) "cleo is popular" true (Eval.truthy (pipeline (q "cleo")));
  Alcotest.(check bool) "ada is not" false (Eval.truthy (pipeline (q "ada")))

let test_reachability_pipeline () =
  let v =
    pipeline
      "bfix(dedup(pi[1](Follows) \\/ pi[2](Follows)) * dedup(pi[1](Follows) \
       \\/ pi[2](Follows)), X -> dedup(X \\/ pi[1,4](select(w -> w.2 == w.3, \
       X * Follows))), dedup(Follows))"
  in
  (* the 3-cycle makes everyone reach everyone *)
  Alcotest.(check int) "9 reachability pairs" 9 (Value.support_size v)

let test_group_by_pipeline () =
  let v = pipeline "nest[1](Follows)" in
  Alcotest.(check int) "three followers" 3 (Value.support_size v)

let test_nested_powerset_pipeline () =
  let v = pipeline "powerset(Celebs)" in
  Alcotest.(check int) "2 subbags of a singleton" 2 (Value.support_size v)

(* --- evaluator edge cases -------------------------------------------------- *)

let ev ?config ?(env = []) e = Eval.eval ?config (Eval.env_of_list env) e

let test_empty_bag_ops () =
  let e1 = Expr.empty (Ty.relation 1) in
  Alcotest.check value "product with empty" (Value.bag_of_assoc [])
    (ev Expr.(e1 *** e1));
  Alcotest.check value "powerset of empty has one member"
    (Value.bag_of_list [ Value.empty_bag ])
    (ev (Expr.Powerset e1));
  Alcotest.check value "destroy of powerset of empty" (Value.bag_of_assoc [])
    (ev (Expr.Destroy (Expr.Powerset e1)));
  Alcotest.check value "ones of empty" (Value.bag_of_assoc []) (ev (Derived.ones e1))

let test_deeply_nested_values () =
  (* bag of bags of bags: nesting 3 round-trips through powerset/destroy *)
  let v3 =
    Value.bag_of_list
      [ Value.bag_of_list [ Value.bag_of_list [ Value.atom "a" ] ] ]
  in
  let t3 = Ty.Bag (Ty.Bag (Ty.Bag Ty.Atom)) in
  let e = Expr.Destroy (Expr.Sing (Expr.lit v3 t3)) in
  Alcotest.check value "destroy . sing = id at nesting 3" v3 (ev e);
  Alcotest.(check int) "value nesting" 3 (Value.bag_nesting v3)

let test_map_over_nested () =
  (* MAP whose body rebuilds a nested bag *)
  let v = Value.bag_of_list [ Value.nat 2; Value.nat 3 ] in
  let e =
    Expr.Map ("x", Expr.UnionAdd (Expr.Var "x", Expr.Var "x"),
              Expr.lit v (Ty.Bag Ty.nat))
  in
  Alcotest.check value "pointwise doubling"
    (Value.bag_of_list [ Value.nat 4; Value.nat 6 ])
    (ev e)

let test_select_with_bag_conditions () =
  (* conditions comparing bag-valued expressions (used by Tm3's phis) *)
  let v = Value.bag_of_list [ Value.nat 1; Value.nat 2; Value.nat 3 ] in
  let e =
    Expr.Select
      ( "x",
        Expr.Diff (Expr.Var "x", Derived.nat_lit 2),
        Expr.empty Ty.nat,
        Expr.lit v (Ty.Bag Ty.nat) )
  in
  (* keeps integers <= 2 *)
  Alcotest.check value "bag-valued condition"
    (Value.bag_of_list [ Value.nat 1; Value.nat 2 ])
    (ev e)

(* --- resource guards -------------------------------------------------------- *)

let test_support_guard () =
  let config = { Eval.default_config with Eval.max_support = 10 } in
  let big =
    Value.bag_of_list
      (List.init 20 (fun i -> Value.tuple [ Value.atom (string_of_int i) ]))
  in
  match ev ~config Expr.(Expr.lit big (Ty.relation 1) *** Expr.lit big (Ty.relation 1)) with
  | exception Eval.Resource_limit _ -> ()
  | _ -> Alcotest.fail "expected Resource_limit on support"

let test_digit_guard () =
  let config = { Eval.default_config with Eval.max_count_digits = 5 } in
  (* repeated squaring of multiplicities: 10 -> 100 -> 10^4 -> 10^8 *)
  let b = Expr.lit (Value.replicate (Bignat.of_int 10) (Value.tuple [ Value.atom "a" ])) (Ty.relation 1) in
  let rec squared k e = if k = 0 then e else squared (k - 1) (Expr.proj_attrs [ 1 ] Expr.(e *** e)) in
  match ev ~config (squared 3 b) with
  | exception Eval.Resource_limit _ -> ()
  | _ -> Alcotest.fail "expected Resource_limit on digits"

let test_powerset_guard_through_eval () =
  (* the powerset guard is unified into the budget governor: what used to
     escape as the ad-hoc [Bag.Too_large] is now a located budget verdict
     (Resource_limit through the legacy wrapper, Error through Eval.run) *)
  let config = { Eval.default_config with Eval.max_support = 100 } in
  let b = Expr.lit (Value.replicate (Bignat.of_int 500) (Value.atom "a")) (Ty.Bag Ty.Atom) in
  (match ev ~config (Expr.Powerset b) with
  | exception Eval.Resource_limit _ -> ()
  | _ -> Alcotest.fail "expected Resource_limit");
  match
    Eval.run
      ~limits:{ Budget.default with Budget.max_support = 100 }
      (Eval.env_of_list []) (Expr.Powerset b)
  with
  | Error { Budget.resource = Budget.Support; op = "powerset"; _ } -> ()
  | Error x -> Alcotest.fail ("wrong verdict: " ^ Budget.exhaustion_to_string x)
  | Ok _ -> Alcotest.fail "expected Budget_exceeded"

let test_meters_cardinal () =
  let meters = Eval.fresh_meters () in
  let b = Expr.lit (Value.replicate (Bignat.of_int 7) (Value.tuple [ Value.atom "a" ])) (Ty.relation 1) in
  ignore (Eval.eval ~meters (Eval.env_of_list []) Expr.(b *** b));
  Alcotest.(check string) "cardinal meter sees 49" "49"
    (Bignat.to_string meters.Eval.max_cardinal_seen);
  Alcotest.(check bool) "ops counted" true (meters.Eval.ops > 0)

(* --- CLI-facing behaviours through the library ----------------------------- *)

let test_analyze_of_parsed () =
  let e = Parser.expr_of_string "destroy(powerset(Celebs))" in
  let r = Analyze.analyze tenv e in
  Alcotest.(check bool) "PSPACE" true (r.Analyze.cclass = Analyze.Pspace)

let test_bagdb_load_file () =
  (* the file-loading path, via a temporary file *)
  let path = Filename.temp_file "balg" ".bagdb" in
  let oc = open_out path in
  output_string oc (Bagdb.render db);
  close_out oc;
  let db2 = Bagdb.load path in
  Sys.remove path;
  Alcotest.(check int) "same size through the filesystem" (List.length db)
    (List.length db2);
  List.iter2
    (fun (n1, _, v1) (n2, _, v2) ->
      Alcotest.(check string) "name" n1 n2;
      Alcotest.check value "value" v1 v2)
    db db2

let test_render_parse_db () =
  let db2 = Bagdb.parse (Bagdb.render db) in
  Alcotest.(check int) "same size" (List.length db) (List.length db2)

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "follower counts" `Quick test_follower_counts;
          Alcotest.test_case "popularity (Ex 4.1 shape)" `Quick test_popularity_query;
          Alcotest.test_case "reachability via bfix" `Quick test_reachability_pipeline;
          Alcotest.test_case "group by" `Quick test_group_by_pipeline;
          Alcotest.test_case "powerset" `Quick test_nested_powerset_pipeline;
          Alcotest.test_case "analyze parsed query" `Quick test_analyze_of_parsed;
          Alcotest.test_case "db render roundtrip" `Quick test_render_parse_db;
          Alcotest.test_case "db file loading" `Quick test_bagdb_load_file;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "empty bags" `Quick test_empty_bag_ops;
          Alcotest.test_case "deep nesting" `Quick test_deeply_nested_values;
          Alcotest.test_case "map over nested" `Quick test_map_over_nested;
          Alcotest.test_case "bag-valued conditions" `Quick test_select_with_bag_conditions;
        ] );
      ( "guards",
        [
          Alcotest.test_case "support bound" `Quick test_support_guard;
          Alcotest.test_case "digit bound" `Quick test_digit_guard;
          Alcotest.test_case "powerset bound" `Quick test_powerset_guard_through_eval;
          Alcotest.test_case "meters" `Quick test_meters_cardinal;
        ] );
    ]
