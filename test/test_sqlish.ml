(* Tests for the SQL-like frontend: bag-correct projections, DISTINCT,
   joins, and GROUP BY aggregates compiled onto the algebra. *)

open Balg
module Sql = Baglang.Sqlish
module B = Bignat

let value = Alcotest.testable Value.pp Value.equal

let orders_table =
  Sql.table "Orders"
    [ ("customer", Ty.Atom); ("product", Ty.Atom); ("qty", Ty.nat) ]

let products_table = Sql.table "Products" [ ("product", Ty.Atom); ("colour", Ty.Atom) ]

let row c p q = Value.tuple [ Value.atom c; Value.atom p; Value.nat q ]

let orders =
  Value.bag_of_assoc
    [
      (row "ada" "widget" 5, B.of_int 2);
      (row "ada" "gadget" 1, B.one);
      (row "bob" "widget" 7, B.one);
    ]

let products =
  Value.bag_of_list
    [
      Value.tuple [ Value.atom "widget"; Value.atom "red" ];
      Value.tuple [ Value.atom "gadget"; Value.atom "blue" ];
    ]

let tables = [ orders_table; products_table ]
let env = Eval.env_of_list [ ("Orders", orders); ("Products", products) ]

let run q =
  let e = Sql.compile ~tables q in
  ignore (Typecheck.infer (Sql.type_env tables) e);
  Eval.eval env e

let test_projection_keeps_duplicates () =
  let q =
    Sql.select [ Sql.Column ("o", "customer") ] ~from:[ ("Orders", "o") ] ()
  in
  let v = run q in
  Alcotest.(check string) "ada appears thrice" "3"
    (B.to_string (Value.count_in (Value.tuple [ Value.atom "ada" ]) v))

let test_distinct () =
  let q =
    Sql.select ~distinct:true
      [ Sql.Column ("o", "customer") ]
      ~from:[ ("Orders", "o") ] ()
  in
  let v = run q in
  Alcotest.(check int) "two customers" 2 (Value.support_size v);
  Alcotest.(check string) "each once" "1" (B.to_string (Bag.max_count v))

let test_where () =
  let q =
    Sql.select
      [ Sql.Column ("o", "product") ]
      ~from:[ ("Orders", "o") ]
      ~where:[ Sql.Const_eq (("o", "customer"), Value.atom "ada") ]
      ()
  in
  let v = run q in
  Alcotest.(check string) "ada's widgets (x2)" "2"
    (B.to_string (Value.count_in (Value.tuple [ Value.atom "widget" ]) v))

let test_join () =
  let q =
    Sql.select
      [ Sql.Column ("o", "customer"); Sql.Column ("p", "colour") ]
      ~from:[ ("Orders", "o"); ("Products", "p") ]
      ~where:[ Sql.Col_eq (("o", "product"), ("p", "product")) ]
      ()
  in
  let v = run q in
  Alcotest.(check string) "ada buys red twice" "2"
    (B.to_string (Value.count_in (Value.tuple [ Value.atom "ada"; Value.atom "red" ]) v))

let test_count_star () =
  let q = Sql.select [ Sql.Count_star ] ~from:[ ("Orders", "o") ] () in
  Alcotest.(check string) "4 rows (duplicates counted)" "4"
    (B.to_string (Value.nat_value (run q)))

let test_sum_avg () =
  let q = Sql.select [ Sql.Sum_of ("o", "qty") ] ~from:[ ("Orders", "o") ] () in
  (* 5*2 + 1 + 7 = 18 *)
  Alcotest.(check string) "sum respects duplicates" "18"
    (B.to_string (Value.nat_value (run q)));
  let q2 = Sql.select [ Sql.Avg_of ("o", "qty") ] ~from:[ ("Orders", "o") ] () in
  (* floor(18/4) = 4 *)
  Alcotest.(check string) "floor average" "4"
    (B.to_string (Value.nat_value (run q2)))

let test_group_by () =
  let q =
    Sql.select
      [ Sql.Column ("o", "customer"); Sql.Count_star; Sql.Sum_of ("o", "qty") ]
      ~from:[ ("Orders", "o") ]
      ~group_by:[ ("o", "customer") ]
      ()
  in
  let v = run q in
  Alcotest.check value "per-customer count and sum"
    (Value.bag_of_list
       [
         Value.tuple [ Value.atom "ada"; Value.nat 3; Value.nat 11 ];
         Value.tuple [ Value.atom "bob"; Value.nat 1; Value.nat 7 ];
       ])
    v

let test_errors () =
  let expect_err name f =
    match f () with
    | exception Sql.Sql_error _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Sql_error")
  in
  expect_err "unknown table" (fun () ->
      Sql.compile ~tables (Sql.select [ Sql.Count_star ] ~from:[ ("Nope", "n") ] ()));
  expect_err "unknown column" (fun () ->
      Sql.compile ~tables
        (Sql.select [ Sql.Column ("o", "nope") ] ~from:[ ("Orders", "o") ] ()));
  expect_err "sum of non-integer column" (fun () ->
      Sql.compile ~tables
        (Sql.select [ Sql.Sum_of ("o", "customer") ] ~from:[ ("Orders", "o") ] ()));
  expect_err "bare column with group" (fun () ->
      Sql.compile ~tables
        (Sql.select
           [ Sql.Column ("o", "product") ]
           ~from:[ ("Orders", "o") ]
           ~group_by:[ ("o", "customer") ]
           ()));
  expect_err "empty from" (fun () ->
      Sql.compile ~tables (Sql.select [ Sql.Count_star ] ~from:[] ()))

(* The CV93 point again, now at the SQL level: dropping DISTINCT changes
   results under bag semantics. *)
let test_distinct_matters () =
  let base distinct =
    Sql.select ~distinct [ Sql.Column ("o", "customer") ] ~from:[ ("Orders", "o") ] ()
  in
  let with_d = run (base true) in
  let without = run (base false) in
  Alcotest.(check bool) "results differ" false (Value.equal with_d without);
  Alcotest.check value "dedup closes the gap" with_d (Bag.dedup without)

let () =
  Alcotest.run "sqlish"
    [
      ( "queries",
        [
          Alcotest.test_case "projection keeps duplicates" `Quick
            test_projection_keeps_duplicates;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "where" `Quick test_where;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "count(*)" `Quick test_count_star;
          Alcotest.test_case "sum and avg" `Quick test_sum_avg;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "distinct matters (CV93)" `Quick test_distinct_matters;
        ] );
    ]
