(* Tests for the derived operators: the paper's aggregate encodings, the §3
   inter-definability identities, and the §4 example queries. *)

open Balg
module B = Bignat

let value = Alcotest.testable Value.pp Value.equal

let ev ?(env = []) e = Eval.eval (Eval.env_of_list env) e
let truthy ?env e = Eval.truthy (ev ?env e)

let rel1 l = Value.bag_of_list (List.map (fun x -> Value.tuple [ Value.atom x ]) l)

let rel2 l =
  Value.bag_of_list
    (List.map (fun (x, y) -> Value.tuple [ Value.atom x; Value.atom y ]) l)

let nat_of e = B.to_int_exn (Value.nat_value (ev e))

(* bag of integer-bags *)
let nats_lit ints =
  Expr.lit
    (Value.bag_of_list (List.map Value.nat ints))
    (Ty.Bag Ty.nat)

(* --- aggregates --------------------------------------------------------- *)

let test_count () =
  let r = rel2 [ ("a", "b"); ("b", "c"); ("c", "a") ] in
  Alcotest.(check int) "count via paper formula" 3
    (nat_of (Derived.count (Expr.lit r (Ty.relation 2))));
  Alcotest.(check int) "count of empty" 0
    (nat_of (Derived.count (Expr.empty (Ty.relation 2))));
  (* counts duplicates *)
  let dup = Value.bag_of_assoc [ (Value.tuple [ Value.atom "a" ], B.of_int 5) ] in
  Alcotest.(check int) "count respects duplicates" 5
    (nat_of (Derived.count (Expr.lit dup (Ty.relation 1))))

let test_sum () =
  Alcotest.(check int) "sum 1+2+3" 6 (nat_of (Derived.sum (nats_lit [ 1; 2; 3 ])));
  Alcotest.(check int) "sum empty" 0 (nat_of (Derived.sum (nats_lit [])))

let test_average () =
  Alcotest.(check int) "avg {2,4} = 3" 3
    (nat_of (Derived.average (nats_lit [ 2; 4 ])));
  Alcotest.(check int) "avg {5} = 5" 5 (nat_of (Derived.average (nats_lit [ 5 ])));
  (* not divisible -> empty *)
  Alcotest.check value "avg {1,2} inexact" Value.empty_bag
    (ev (Derived.average (nats_lit [ 1; 2 ])));
  Alcotest.(check int) "floor avg {1,2} = 1" 1
    (nat_of (Derived.floor_average (nats_lit [ 1; 2 ])));
  Alcotest.(check int) "floor avg {2,4} = 3" 3
    (nat_of (Derived.floor_average (nats_lit [ 2; 4 ])));
  Alcotest.(check int) "floor avg {1,1,7} = 3" 3
    (nat_of (Derived.floor_average (nats_lit [ 1; 1; 7 ])));
  Alcotest.(check int) "floor avg empty = 0" 0
    (nat_of (Derived.floor_average (nats_lit [])))

(* --- cardinality comparisons ------------------------------------------- *)

let test_card_compare () =
  let r = Expr.lit (rel1 [ "a"; "b"; "c" ]) (Ty.relation 1)
  and s = Expr.lit (rel1 [ "x"; "y" ]) (Ty.relation 1) in
  Alcotest.(check bool) "3 > 2 (paper)" true (truthy (Derived.card_gt_paper r s));
  Alcotest.(check bool) "2 > 3 false (paper)" false (truthy (Derived.card_gt_paper s r));
  Alcotest.(check bool) "3 > 2" true (truthy (Derived.card_gt r s));
  Alcotest.(check bool) "not 3 > 3" false (truthy (Derived.card_gt r r));
  Alcotest.(check bool) "card_neq" true (truthy (Derived.card_neq r s));
  Alcotest.(check bool) "card_eq" false (truthy (Derived.card_neq r r));
  Alcotest.(check bool) "at least 3" true (truthy (Derived.has_at_least 3 r));
  Alcotest.(check bool) "not at least 4" false (truthy (Derived.has_at_least 4 r))

let test_indeg_outdeg () =
  (* node a: in-degree 2, out-degree 1 *)
  let g = rel2 [ ("b", "a"); ("c", "a"); ("a", "b") ] in
  let lg = Expr.lit g (Ty.relation 2) in
  Alcotest.(check bool) "indeg(a) > outdeg(a)" true
    (truthy (Derived.indeg_gt_outdeg lg (Expr.atom "a")));
  Alcotest.(check bool) "indeg(b) > outdeg(b) is false" false
    (truthy (Derived.indeg_gt_outdeg lg (Expr.atom "b")))

(* --- parity with order -------------------------------------------------- *)

let parity_query names =
  let r = rel1 names in
  let leq = Baggen.Genval.leq_relation r in
  Derived.parity_even (Expr.lit r (Ty.relation 1)) (Expr.lit leq (Ty.relation 2))

let test_parity () =
  Alcotest.(check bool) "4 elements even" true
    (truthy (parity_query [ "a"; "b"; "c"; "d" ]));
  Alcotest.(check bool) "3 elements odd" false
    (truthy (parity_query [ "a"; "b"; "c" ]));
  Alcotest.(check bool) "2 even" true (truthy (parity_query [ "a"; "b" ]));
  Alcotest.(check bool) "1 odd" false (truthy (parity_query [ "a" ]));
  Alcotest.(check bool) "0 even (vacuously empty select)" false
    (truthy (parity_query []))
(* note: the paper's expression answers "exists a median", which is empty on
   the empty relation — the conventional reading treats 0 via the complement *)

(* --- identities (§3, Prop 3.1) ------------------------------------------ *)

let gen_bag arity =
  QCheck.Gen.map
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      Baggen.Genval.flat_bag rng ~n_atoms:4 ~arity ~size:5 ~max_count:3)
    QCheck.Gen.int

let arb_bag arity = QCheck.make ~print:Value.to_string (gen_bag arity)

let lit2 v = Expr.lit v (Ty.relation 2)

let prop_unionadd_via_max =
  QCheck.Test.make ~name:"∪+ definable from ∪max (§3)" ~count:200
    QCheck.(pair (arb_bag 2) (arb_bag 2))
    (fun (x, y) ->
      Value.equal
        (ev (Derived.unionadd_via_max ~arity:2 (lit2 x) (lit2 y)))
        (Bag.union_add x y))

let prop_diff_via_powerset =
  QCheck.Test.make ~name:"− definable from P (§3)" ~count:100
    QCheck.(pair (arb_bag 1) (arb_bag 1))
    (fun (x, y) ->
      let l1 v = Expr.lit v (Ty.relation 1) in
      Value.equal (ev (Derived.diff_via_powerset (l1 x) (l1 y))) (Bag.diff x y))

let prop_dedup_via_powerset_flat =
  QCheck.Test.make ~name:"ε definable from P, flat case (Prop 3.1)" ~count:100
    (arb_bag 2)
    (fun x ->
      Value.equal (ev (Derived.dedup_via_powerset_flat (lit2 x))) (Bag.dedup x))

let prop_dedup_via_powerset_nested =
  QCheck.Test.make ~name:"ε definable from P, nested case (Prop 3.1)" ~count:60
    QCheck.(pair (arb_bag 1) (arb_bag 1))
    (fun (x, y) ->
      (* a nested bag {{x:2, y}} *)
      let nested = Value.bag_of_assoc [ (x, B.of_int 2); (y, B.one) ] in
      let l = Expr.lit nested (Ty.Bag (Ty.relation 1)) in
      Value.equal (ev (Derived.dedup_via_powerset_nested l)) (Bag.dedup nested))

(* --- exponentiation and domains ----------------------------------------- *)

let test_exp2 () =
  List.iter
    (fun n ->
      let e = Expr.lit (Value.nat n) Ty.nat in
      Alcotest.(check int)
        (Printf.sprintf "powerbag doubling at %d" n)
        (1 lsl n)
        (B.to_int_exn (Value.nat_value (ev (Derived.exp2_via_powerbag e))));
      Alcotest.(check int)
        (Printf.sprintf "powerset doubling at %d" n)
        (1 lsl (n + 1))
        (B.to_int_exn (Value.nat_value (ev (Derived.exp2_via_powerset e)))))
    [ 0; 1; 2; 4 ]

let test_domain () =
  (* D(b_2) with i = 0: integer bags 0..2, as a set of bags *)
  let e = Expr.lit (Value.nat 2) Ty.nat in
  let d = ev (Derived.domain 0 e) in
  Alcotest.(check int) "0,1,2" 3 (Value.support_size d);
  let d1 = ev (Derived.domain ~via_powerbag:true 1 e) in
  (* E(b_2) = 4, so D = 0..4 *)
  Alcotest.(check int) "0..4" 5 (Value.support_size d1)

(* --- misc ---------------------------------------------------------------- *)

let test_mem_expr () =
  let r = Expr.lit (rel1 [ "a"; "b" ]) (Ty.relation 1) in
  Alcotest.(check bool) "member" true
    (truthy (Derived.mem_expr (Expr.Tuple [ Expr.atom "a" ]) r));
  Alcotest.(check bool) "not member" false
    (truthy (Derived.mem_expr (Expr.Tuple [ Expr.atom "z" ]) r))

let test_transitive_closure_random =
  QCheck.Test.make ~name:"bfix TC agrees with reference closure" ~count:60
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let g = Baggen.Genval.graph rng ~n:5 ~p:0.3 in
      let algebra = ev (Derived.transitive_closure (Expr.lit g (Ty.relation 2))) in
      Value.equal algebra (Baggen.Genval.transitive_closure_ref g))

let prop_ddl_completeness =
  QCheck.Test.make ~name:"§3 DDL: every value from atoms + τ/β/∪+" ~count:150
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let tys = [ Ty.relation 2; Ty.Bag (Ty.Bag Ty.Atom); Ty.Bag Ty.Atom ] in
      let ty = List.nth tys (Random.State.int rng 3) in
      let v = Baggen.Genval.of_type rng ~n_atoms:3 ~width:3 ~max_count:9 ty in
      let e = Derived.value_expr v in
      (* only DDL constructors (plus typed empty-bag leaves) appear *)
      let rec ddl_only e =
        (match e with
        | Expr.Lit (v, _) -> (
            match Value.view v with
            | Value.Atom _ -> true
            | Value.Bag [] -> true
            | _ -> false)
        | Expr.Tuple _ | Expr.Sing _ | Expr.UnionAdd _ -> true
        | _ -> false)
        && List.for_all ddl_only (Expr.children e)
      in
      ddl_only e && Value.equal (ev e) v)

let props = List.map QCheck_alcotest.to_alcotest
  [
    prop_unionadd_via_max;
    prop_diff_via_powerset;
    prop_dedup_via_powerset_flat;
    prop_dedup_via_powerset_nested;
    test_transitive_closure_random;
    prop_ddl_completeness;
  ]

let () =
  Alcotest.run "derived"
    [
      ( "aggregates",
        [
          Alcotest.test_case "count" `Quick test_count;
          Alcotest.test_case "sum" `Quick test_sum;
          Alcotest.test_case "average" `Quick test_average;
        ] );
      ( "comparisons",
        [
          Alcotest.test_case "cardinality" `Quick test_card_compare;
          Alcotest.test_case "degrees (Ex 4.1)" `Quick test_indeg_outdeg;
          Alcotest.test_case "parity with order" `Quick test_parity;
        ] );
      ( "exponentiation",
        [
          Alcotest.test_case "exp2" `Quick test_exp2;
          Alcotest.test_case "domains" `Quick test_domain;
          Alcotest.test_case "membership" `Quick test_mem_expr;
        ] );
      ("identities", props);
    ]
