(* Tests for the typechecker and the evaluator: operator semantics, binder
   behaviour, fixpoints, guards, meters. *)

open Balg
module B = Bignat

let value = Alcotest.testable Value.pp Value.equal
let ty = Alcotest.testable Ty.pp Ty.equal

let a = Value.atom "a"
let b = Value.atom "b"
let bagc l = Value.bag_of_assoc (List.map (fun (v, n) -> (v, B.of_int n)) l)
let rel1 l = Value.bag_of_list (List.map (fun x -> Value.tuple [ Value.atom x ]) l)

let rel2 l =
  Value.bag_of_list
    (List.map (fun (x, y) -> Value.tuple [ Value.atom x; Value.atom y ]) l)

(* Routed through the engine dispatcher so the CI vec leg (BALG_ENGINE=vec)
   runs these semantics tests under the vectorized engine too, and through
   the planner so the optimizer leg (BALG_OPT=cost) evaluates optimized
   plans.  The type env is empty here, so only type-agnostic rules fire —
   prepare never raises either way. *)
let ev ?(env = []) e =
  let e = Opt.prepare ~vals:env (Opt.default_mode ()) Typecheck.Env.empty e in
  Veval.eval_engine (Veval.default_engine ()) (Eval.env_of_list env) e
let tc ?(env = []) e = Typecheck.infer (Typecheck.env_of_list env) e

(* --- typechecker -------------------------------------------------------- *)

let test_typecheck_ok () =
  let env = [ ("G", Ty.relation 2) ] in
  Alcotest.check ty "product" (Ty.relation 4) (tc ~env Expr.(Var "G" *** Var "G"));
  Alcotest.check ty "powerset"
    (Ty.Bag (Ty.Bag (Ty.Tuple [ Ty.Atom; Ty.Atom ])))
    (tc ~env (Expr.Powerset (Expr.Var "G")));
  Alcotest.check ty "destroy . powerset" (Ty.relation 2)
    (tc ~env (Expr.Destroy (Expr.Powerset (Expr.Var "G"))));
  Alcotest.check ty "map to narrower tuple" (Ty.relation 1)
    (tc ~env (Expr.proj_attrs [ 2 ] (Expr.Var "G")));
  Alcotest.check ty "select preserves type" (Ty.relation 2)
    (tc ~env
       (Expr.select "x" (Expr.Proj (1, Expr.Var "x")) (Expr.Proj (2, Expr.Var "x"))
          (Expr.Var "G")));
  Alcotest.check ty "let" Ty.Atom (tc (Expr.Let ("x", Expr.atom "a", Expr.Var "x")))

let expect_type_error name f =
  match f () with
  | exception Typecheck.Type_error _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Type_error")

let test_typecheck_errors () =
  let env = [ ("G", Ty.relation 2); ("H", Ty.relation 3) ] in
  expect_type_error "unbound" (fun () -> tc (Expr.Var "nope"));
  expect_type_error "union arity clash" (fun () ->
      tc ~env Expr.(Var "G" ++ Var "H"));
  expect_type_error "product of non-tuples" (fun () ->
      tc ~env Expr.(Powerset (Var "G") *** Var "G"));
  expect_type_error "destroy flat bag" (fun () -> tc ~env (Expr.Destroy (Expr.Var "G")));
  expect_type_error "projection out of range" (fun () ->
      tc ~env (Expr.proj_attrs [ 5 ] (Expr.Var "G")));
  expect_type_error "select type clash" (fun () ->
      tc ~env
        (Expr.select "x" (Expr.Proj (1, Expr.Var "x")) (Expr.Var "x") (Expr.Var "G")));
  expect_type_error "bad literal" (fun () ->
      tc (Expr.Lit (Value.atom "a", Ty.relation 1)))

let test_nesting_measure () =
  let env = Typecheck.env_of_list [ ("G", Ty.relation 2) ] in
  Alcotest.(check int) "flat query" 1
    (Typecheck.max_nesting env (Derived.selfjoin (Expr.Var "G")));
  Alcotest.(check int) "powerset raises nesting" 2
    (Typecheck.max_nesting env (Expr.Destroy (Expr.Powerset (Expr.Var "G"))));
  Typecheck.check_nesting 1 env (Derived.selfjoin (Expr.Var "G"));
  expect_type_error "nesting violation" (fun () ->
      Typecheck.check_nesting 1 env (Expr.Destroy (Expr.Powerset (Expr.Var "G")));
      Ty.Atom)

(* --- evaluator ---------------------------------------------------------- *)

let test_eval_basics () =
  Alcotest.check value "atom" a (ev (Expr.atom "a"));
  Alcotest.check value "tuple" (Value.tuple [ a; b ])
    (ev (Expr.Tuple [ Expr.atom "a"; Expr.atom "b" ]));
  Alcotest.check value "proj" b
    (ev (Expr.Proj (2, Expr.Tuple [ Expr.atom "a"; Expr.atom "b" ])));
  Alcotest.check value "sing" (bagc [ (a, 1) ]) (ev (Expr.Sing (Expr.atom "a")));
  Alcotest.check value "let shadowing" b
    (ev (Expr.Let ("x", Expr.atom "a", Expr.Let ("x", Expr.atom "b", Expr.Var "x"))))

let test_eval_bag_ops () =
  let x = bagc [ (a, 2); (b, 1) ] and y = bagc [ (a, 1) ] in
  let lx = Expr.lit x (Ty.Bag Ty.Atom) and ly = Expr.lit y (Ty.Bag Ty.Atom) in
  Alcotest.check value "++" (bagc [ (a, 3); (b, 1) ]) (ev Expr.(lx ++ ly));
  Alcotest.check value "--" (bagc [ (a, 1); (b, 1) ]) (ev Expr.(lx -- ly));
  Alcotest.check value "max" (bagc [ (a, 2); (b, 1) ]) (ev Expr.(lx ||| ly));
  Alcotest.check value "inter" (bagc [ (a, 1) ]) (ev Expr.(lx &&& ly));
  Alcotest.check value "dedup" (bagc [ (a, 1); (b, 1) ]) (ev (Expr.Dedup lx))

let test_eval_map_select () =
  let g = rel2 [ ("a", "b"); ("b", "c"); ("a", "a") ] in
  let lg = Expr.lit g (Ty.relation 2) in
  Alcotest.check value "map swap"
    (rel2 [ ("b", "a"); ("c", "b"); ("a", "a") ])
    (ev
       (Expr.map "x"
          (Expr.Tuple [ Expr.Proj (2, Expr.Var "x"); Expr.Proj (1, Expr.Var "x") ])
          lg));
  Alcotest.check value "select diagonal" (rel2 [ ("a", "a") ])
    (ev
       (Expr.select "x" (Expr.Proj (1, Expr.Var "x")) (Expr.Proj (2, Expr.Var "x")) lg));
  (* map coalesces: project first column *)
  Alcotest.check value "projection merges duplicates"
    (Value.bag_of_assoc
       [ (Value.tuple [ a ], B.of_int 2); (Value.tuple [ b ], B.one) ])
    (ev (Expr.proj_attrs [ 1 ] lg))

let test_eval_product_powerset () =
  let r = rel1 [ "a"; "b" ] in
  let lr = Expr.lit r (Ty.relation 1) in
  Alcotest.check value "product"
    (rel2 [ ("a", "a"); ("a", "b"); ("b", "a"); ("b", "b") ])
    (ev Expr.(lr *** lr));
  Alcotest.(check int) "powerset support" 4
    (Value.support_size (ev (Expr.Powerset lr)));
  Alcotest.check value "destroy . powerset counts"
    (Value.bag_of_assoc
       [ (Value.tuple [ a ], B.of_int 2); (Value.tuple [ b ], B.of_int 2) ])
    (ev (Expr.Destroy (Expr.Powerset lr)))

let test_binder_scoping () =
  (* The binder of an inner Map must not capture the outer variable. *)
  let r = rel1 [ "a"; "b" ] in
  let lr = Expr.lit r (Ty.relation 1) in
  let inner = Expr.map "x" (Expr.Var "y") lr in
  let outer = Expr.map "y" (Expr.Tuple [ Expr.Proj (1, Expr.Var "y") ]) inner in
  (* y bound outside is unbound inside the inner map's evaluation context
     only if scoping is wrong; with correct scoping the outer binder is not
     in scope here, so this should fail to typecheck. *)
  expect_type_error "y unbound at top" (fun () -> tc outer)

let test_subst_capture () =
  (* subst x -> (Var y) into map(y -> ... x ...) must rename the binder *)
  let e = Expr.map "y" (Expr.Tuple [ Expr.Proj (1, Expr.Var "x") ]) (Expr.Var "R") in
  let e' = Expr.subst "x" (Expr.Var "y") e in
  (* after substitution, the free variables must be {y, R} *)
  let fv = Expr.free_vars e' in
  Alcotest.(check bool) "y free" true (Expr.Vars.mem "y" fv);
  Alcotest.(check bool) "R free" true (Expr.Vars.mem "R" fv);
  Alcotest.(check int) "only two free vars" 2 (Expr.Vars.cardinal fv)

let test_fixpoint () =
  let g = rel2 [ ("a", "b"); ("b", "c"); ("c", "d") ] in
  let expected =
    rel2
      [ ("a", "b"); ("b", "c"); ("c", "d"); ("a", "c"); ("b", "d"); ("a", "d") ]
  in
  Alcotest.check value "transitive closure via bfix" expected
    (ev (Derived.transitive_closure (Expr.lit g (Ty.relation 2))));
  (* unbounded Fix on the same body also converges here *)
  let gv = Expr.lit g (Ty.relation 2) in
  let body = Expr.Dedup (Expr.UnionMax (Expr.Var "X", Derived.compose (Expr.Var "X") gv)) in
  Alcotest.check value "IFP agrees" expected
    (ev (Expr.Fix ("X", body, Expr.Dedup gv)))

let test_fix_divergence_guard () =
  (* X ↦ X ∪+ X grows forever; the guard must stop it.  Note ∪+ is not
     inflationary-stable: max-union with previous keeps doubling. *)
  let seed = Expr.lit (rel1 [ "a" ]) (Ty.relation 1) in
  let body = Expr.(Var "X" ++ Var "X") in
  let config = { Eval.default_config with max_fix_steps = 50 } in
  match Eval.eval ~config (Eval.env_of_list []) (Expr.Fix ("X", body, seed)) with
  | exception Eval.Resource_limit _ -> ()
  | _ -> Alcotest.fail "expected Resource_limit"

let test_meters () =
  let meters = Eval.fresh_meters () in
  let r = Value.replicate (B.of_int 8) (Value.tuple [ a ]) in
  let e = Expr.Powerset (Expr.lit r (Ty.relation 1)) in
  ignore (Eval.eval ~meters (Eval.env_of_list []) e);
  Alcotest.(check int) "support meter" 9 meters.Eval.max_support_seen;
  Alcotest.(check string) "count meter" "8" (B.to_string meters.Eval.max_count_seen)

let test_truthy () =
  Alcotest.(check bool) "empty false" false (Eval.truthy Value.empty_bag);
  Alcotest.(check bool) "nonempty true" true (Eval.truthy (bagc [ (a, 1) ]));
  match Eval.truthy a with
  | exception Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected Eval_error on atom"

let test_unbound_variable () =
  match ev (Expr.Var "missing") with
  | exception Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected Eval_error"

(* Evaluation agrees with typing: a well-typed expression evaluates to a
   value of its type (on random BALG^1 expressions). *)
let prop_type_soundness =
  QCheck.Test.make ~name:"type soundness on random BALG^1 expressions"
    ~count:300 QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let env_spec = [ ("R", 1); ("S", 2) ] in
      let e = Baggen.Genexpr.flat rng env_spec 4 (1 + Random.State.int rng 2) in
      let tenv = Typecheck.env_of_list (Baggen.Genexpr.env_types env_spec) in
      let ty = Typecheck.infer tenv e in
      let inst = Baggen.Genexpr.instance rng env_spec in
      let v = Eval.eval (Eval.env_of_list inst) e in
      Value.has_type ty v)

let () =
  Alcotest.run "eval"
    [
      ( "typecheck",
        [
          Alcotest.test_case "accepts well-typed" `Quick test_typecheck_ok;
          Alcotest.test_case "rejects ill-typed" `Quick test_typecheck_errors;
          Alcotest.test_case "nesting measure" `Quick test_nesting_measure;
        ] );
      ( "eval",
        [
          Alcotest.test_case "basics" `Quick test_eval_basics;
          Alcotest.test_case "bag operators" `Quick test_eval_bag_ops;
          Alcotest.test_case "map and select" `Quick test_eval_map_select;
          Alcotest.test_case "product and powerset" `Quick test_eval_product_powerset;
          Alcotest.test_case "binder scoping" `Quick test_binder_scoping;
          Alcotest.test_case "substitution avoids capture" `Quick test_subst_capture;
          Alcotest.test_case "fixpoints" `Quick test_fixpoint;
          Alcotest.test_case "divergence guard" `Quick test_fix_divergence_guard;
          Alcotest.test_case "meters" `Quick test_meters;
          Alcotest.test_case "truthy" `Quick test_truthy;
          Alcotest.test_case "unbound variable" `Quick test_unbound_variable;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_type_soundness ]);
    ]
