(* The resource governor and the telemetry span tree: structured verdicts
   with node attribution, pre-materialisation cut-off of powerset towers,
   every budget resource, and the --stats invariant (span steps == spent
   fuel). *)

open Balg
module B = Bignat

let rel1 n =
  Value.bag_of_list
    (List.init n (fun i -> Value.tuple [ Value.atom (Printf.sprintf "e%02d" i) ]))

let rel2 n =
  Value.bag_of_list
    (List.init n (fun i ->
         Value.tuple
           [
             Value.atom (Printf.sprintf "n%d" (i mod 5));
             Value.atom (Printf.sprintf "n%d" ((i + 1) mod 5));
           ]))

let run ?budget ?limits ?telemetry e =
  Eval.run ?budget ?limits ?telemetry (Eval.env_of_list []) e

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let expect_exhaustion name resource r =
  match r with
  | Error x when x.Budget.resource = resource -> x
  | Error x ->
      Alcotest.fail
        (Printf.sprintf "%s: wrong resource in %s" name
           (Budget.exhaustion_to_string x))
  | Ok _ -> Alcotest.fail (name ^ ": expected Budget_exceeded")

(* P(P(Q)) over a 20-element bag with a 10^6-step fuel budget: the inner
   powerset's expected output (2^20 subbags) is charged before anything is
   materialised, so the governor answers immediately — structured error,
   correct node id, no OOM, well under a second. *)
let test_fuel_mid_powerset () =
  let q = Expr.lit (rel1 20) (Ty.relation 1) in
  (* preorder ids: 1 = outer P, 2 = inner P, 3 = the literal *)
  let e = Expr.Powerset (Expr.Powerset q) in
  let t0 = Unix.gettimeofday () in
  let x =
    expect_exhaustion "fuel" Budget.Fuel
      (run ~limits:{ Budget.unlimited with Budget.fuel = 1_000_000 } e)
  in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check string) "trips at the inner powerset" "powerset" x.Budget.op;
  Alcotest.(check int) "node id" 2 x.Budget.at_node;
  Alcotest.(check int) "limit reported" 1_000_000 x.Budget.limit;
  Alcotest.(check bool) "spent crossed the limit" true
    (x.Budget.spent > 1_000_000);
  Alcotest.(check bool) "answers fast (<1s)" true (dt < 1.0)

(* A deep P(P(...P(Q)...)) tower is cut off by the pre-charge without
   materialising anything — bounded memory, immediate answer. *)
let test_deep_tower_no_oom () =
  let rec tower k e = if k = 0 then e else tower (k - 1) (Expr.Powerset e) in
  let e = tower 6 (Expr.lit (rel1 30) (Ty.relation 1)) in
  let t0 = Unix.gettimeofday () in
  ignore
    (expect_exhaustion "tower" Budget.Fuel
       (run ~limits:{ Budget.unlimited with Budget.fuel = 1_000_000 } e));
  Alcotest.(check bool) "fast" true (Unix.gettimeofday () -. t0 < 1.0)

(* With no fuel limit the same tower still dies on the support account —
   the unified replacement for the old Bag.Too_large escape. *)
let test_tower_support_verdict () =
  (* 2^24 expected subbags exceeds the default 2M support cap, so the
     verdict lands before anything is materialised *)
  let e = Expr.Powerset (Expr.Powerset (Expr.lit (rel1 24) (Ty.relation 1))) in
  let x = expect_exhaustion "support" Budget.Support (run e) in
  Alcotest.(check string) "at a powerset" "powerset" x.Budget.op

let test_size_limit () =
  let e = Expr.lit (rel1 20) (Ty.relation 1) in
  let x =
    expect_exhaustion "size" Budget.Size
      (run ~limits:{ Budget.unlimited with Budget.max_size = 10 } e)
  in
  Alcotest.(check int) "limit" 10 x.Budget.limit;
  Alcotest.(check bool) "spent is the size tag" true (x.Budget.spent > 10)

let test_deadline () =
  (* the deadline is probed at every fixpoint iteration, so an already
     expired deadline trips at the fix node deterministically *)
  let g =
    Value.bag_of_list
      [
        Value.tuple [ Value.atom "a"; Value.atom "b" ];
        Value.tuple [ Value.atom "b"; Value.atom "c" ];
      ]
  in
  let e = Derived.transitive_closure (Expr.lit g (Ty.relation 2)) in
  let x =
    expect_exhaustion "deadline" Budget.Deadline
      (run ~limits:{ Budget.unlimited with Budget.deadline_s = Some 0.0 } e)
  in
  Alcotest.(check bool) "attributed to a node" true (x.Budget.at_node >= 1)

let test_fix_steps () =
  let seed = Expr.lit (rel1 1) (Ty.relation 1) in
  let body = Expr.(Var "X" ++ Var "X") in
  let x =
    expect_exhaustion "fix" Budget.Fix_steps
      (run
         ~limits:{ Budget.unlimited with Budget.max_fix_steps = 50 }
         (Expr.Fix ("X", body, seed)))
  in
  Alcotest.(check string) "at the fix node" "fix" x.Budget.op;
  Alcotest.(check int) "limit" 50 x.Budget.limit

let test_count_digits () =
  (* repeated squaring of multiplicities: 10 -> 100 -> 10^4 -> 10^8 *)
  let b =
    Expr.lit
      (Value.replicate (B.of_int 10) (Value.tuple [ Value.atom "a" ]))
      (Ty.relation 1)
  in
  let rec squared k e =
    if k = 0 then e else squared (k - 1) (Expr.proj_attrs [ 1 ] Expr.(e *** e))
  in
  ignore
    (expect_exhaustion "digits" Budget.Count_digits
       (run
          ~limits:{ Budget.unlimited with Budget.max_count_digits = 5 }
          (squared 3 b)))

(* The --stats invariant: the telemetry span tree's total step count equals
   the governor's spent fuel, on queries exercising kernels, binders, the
   memo table and fixpoints — and also on runs that end in exhaustion. *)
let check_steps_match name e limits =
  let budget = Budget.start limits in
  let t = Telemetry.create () in
  ignore (run ~budget ~telemetry:t e);
  Alcotest.(check int)
    (name ^ ": span steps == spent fuel")
    (Budget.fuel_spent budget) (Telemetry.total_steps t)

let test_steps_match_fuel () =
  let g = rel2 12 in
  check_steps_match "self-join"
    (Derived.selfjoin (Expr.lit g (Ty.relation 2)))
    Budget.unlimited;
  check_steps_match "transitive closure"
    (Derived.transitive_closure (Expr.lit g (Ty.relation 2)))
    Budget.unlimited;
  check_steps_match "powerset"
    (Expr.Destroy (Expr.Powerset (Expr.lit (rel1 8) (Ty.relation 1))))
    Budget.unlimited;
  check_steps_match "exhausted run"
    (Expr.Powerset (Expr.Powerset (Expr.lit (rel1 20) (Ty.relation 1))))
    { Budget.unlimited with Budget.fuel = 1_000 }

let test_telemetry_tree () =
  let e = Derived.selfjoin (Expr.lit (rel2 6) (Ty.relation 2)) in
  let t = Telemetry.create () in
  (match run ~telemetry:t e with
  | Ok _ -> ()
  | Error x -> Alcotest.fail (Budget.exhaustion_to_string x));
  (match Telemetry.roots t with
  | [ root ] ->
      Alcotest.(check int) "root id" 1 root.Telemetry.id;
      Alcotest.(check bool) "root has children" true
        (root.Telemetry.children <> [])
  | _ -> Alcotest.fail "expected a single root span");
  let rendered = Telemetry.to_string ~trace:true t in
  Alcotest.(check bool) "rendering mentions steps" true
    (contains rendered "steps=");
  Alcotest.(check bool) "per-op table nonempty" true (Telemetry.per_op t <> [])

(* Budget verdicts pretty-print with resource, node and figures. *)
let test_verdict_rendering () =
  let x =
    expect_exhaustion "rendering" Budget.Fuel
      (run
         ~limits:{ Budget.unlimited with Budget.fuel = 10 }
         (Derived.selfjoin (Expr.lit (rel2 6) (Ty.relation 2))))
  in
  let s = Budget.exhaustion_to_string x in
  Alcotest.(check bool) "names the resource" true
    (contains s "fuel");
  Alcotest.(check bool) "names the node" true (contains s "node")

(* The create/arm seam: an unarmed account's deadline clock is not
   running, so wall-clock time spent waiting (an admission queue, a
   parked request) is never billed against the deadline.  The regression
   scenario: an account with a 50ms deadline waits 120ms before arming —
   it must still evaluate successfully, while an account armed at
   creation (Budget.start) over the same wait correctly trips. *)
let test_create_arm_deadline_seam () =
  (* a fixpoint probes the deadline at every iteration, deterministically *)
  let e = Derived.transitive_closure (Expr.lit (rel2 6) (Ty.relation 2)) in
  let limits = { Budget.unlimited with Budget.deadline_s = Some 0.05 } in
  let queued = Budget.create limits in
  Alcotest.(check bool) "created unarmed" false (Budget.armed queued);
  Unix.sleepf 0.12;
  (* the queue wait is over: the worker arms the account and evaluates *)
  Budget.arm queued;
  Alcotest.(check bool) "armed" true (Budget.armed queued);
  (match run ~budget:queued e with
  | Ok _ -> ()
  | Error x ->
      Alcotest.fail
        ("queued request must not be billed for its wait: "
        ^ Budget.exhaustion_to_string x));
  (* counter-case: the clock armed at creation over the same wait trips *)
  let eager = Budget.start limits in
  Alcotest.(check bool) "start arms immediately" true (Budget.armed eager);
  Unix.sleepf 0.12;
  ignore (expect_exhaustion "armed-at-create" Budget.Deadline (run ~budget:eager e))

(* arm is idempotent and the first call wins: re-arming after the
   deadline passed must not grant a fresh allowance. *)
let test_arm_idempotent () =
  let limits = { Budget.unlimited with Budget.deadline_s = Some 0.05 } in
  let b = Budget.create limits in
  Budget.arm b;
  Unix.sleepf 0.12;
  Budget.arm b (* must NOT restart the clock *);
  ignore
    (expect_exhaustion "re-arm" Budget.Deadline
       (run ~budget:b
          (Derived.transitive_closure (Expr.lit (rel2 6) (Ty.relation 2)))))

(* The legacy eval wrapper converts every verdict into Resource_limit. *)
let test_legacy_wrapper () =
  let e = Expr.Powerset (Expr.Powerset (Expr.lit (rel1 24) (Ty.relation 1))) in
  match Eval.eval (Eval.env_of_list []) e with
  | exception Eval.Resource_limit _ -> ()
  | _ -> Alcotest.fail "expected Resource_limit"

let () =
  Alcotest.run "budget"
    [
      ( "governor",
        [
          Alcotest.test_case "fuel mid-powerset" `Quick test_fuel_mid_powerset;
          Alcotest.test_case "deep tower no OOM" `Quick test_deep_tower_no_oom;
          Alcotest.test_case "tower support verdict" `Quick
            test_tower_support_verdict;
          Alcotest.test_case "size limit" `Quick test_size_limit;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "fix steps" `Quick test_fix_steps;
          Alcotest.test_case "count digits" `Quick test_count_digits;
          Alcotest.test_case "legacy wrapper" `Quick test_legacy_wrapper;
          Alcotest.test_case "create/arm deadline seam" `Quick
            test_create_arm_deadline_seam;
          Alcotest.test_case "arm idempotent" `Quick test_arm_idempotent;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "steps match fuel" `Quick test_steps_match_fuel;
          Alcotest.test_case "span tree" `Quick test_telemetry_tree;
          Alcotest.test_case "verdict rendering" `Quick test_verdict_rendering;
        ] );
    ]
