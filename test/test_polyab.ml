(* Tests for Poly and for the Prop 4.1 / 4.5 polynomial abstract
   interpreter. *)

open Balg
module BI = Bigint

let poly = Alcotest.testable Poly.pp Poly.equal

(* --- Poly --------------------------------------------------------------- *)

let p_of_ints l = Array.of_list (List.map BI.of_int l)

let test_poly_arith () =
  let p = p_of_ints [ 1; 2 ] (* 1 + 2n *) and q = p_of_ints [ 0; 1; 3 ] in
  Alcotest.check poly "add" (p_of_ints [ 1; 3; 3 ]) (Poly.add p q);
  Alcotest.check poly "sub to lower degree"
    (p_of_ints [ 1; 1; -3 ])
    (Poly.sub p q);
  Alcotest.check poly "mul" (p_of_ints [ 0; 1; 5; 6 ]) (Poly.mul p q);
  Alcotest.check poly "cancellation normalizes" Poly.zero (Poly.sub p p);
  Alcotest.(check int) "degree" 2 (Poly.degree q);
  Alcotest.(check int) "degree zero poly" (-1) (Poly.degree Poly.zero)

let test_poly_eval () =
  let p = p_of_ints [ 1; 2; 1 ] (* (n+1)^2 *) in
  Alcotest.(check string) "eval 4" "25" (BI.to_string (Poly.eval_int p 4));
  Alcotest.(check string) "eval 0" "1" (BI.to_string (Poly.eval_int p 0));
  let q = p_of_ints [ 0; -1; 1 ] (* n^2 - n *) in
  Alcotest.(check string) "negative-coeff eval" "6" (BI.to_string (Poly.eval_int q 3))

let test_sign_analysis () =
  let p = p_of_ints [ -100; 1 ] (* n - 100 *) in
  Alcotest.(check int) "limit sign" 1 (Poly.limit_sign p);
  let n0 = Poly.sign_stable_from p in
  Alcotest.(check bool) "bound past root" true (n0 >= 100);
  Alcotest.(check bool) "sign stable beyond bound" true
    (BI.sign (Poly.eval_int p (n0 + 1)) = 1);
  Alcotest.(check int) "zero poly sign" 0 (Poly.limit_sign Poly.zero);
  let s, _ = Poly.compare_eventually (p_of_ints [ 5; 1 ]) (p_of_ints [ 0; 2 ]) in
  Alcotest.(check int) "n+5 < 2n eventually" (-1) s

(* --- Polyab ------------------------------------------------------------- *)

let b = "B"
let input_ty = [ (b, Ty.relation 1) ]
let t_a = Value.tuple [ Value.atom "a" ]

let analyze e =
  (* every analysed expression must also typecheck *)
  ignore (Typecheck.infer (Typecheck.env_of_list input_ty) e);
  Polyab.analyze ~input:b e

let check_agreement ?(ns = [ 1; 2; 3; 5; 9 ]) e =
  let a = analyze e in
  List.iter
    (fun n ->
      let n = n + a.Polyab.threshold in
      Alcotest.(check bool)
        (Printf.sprintf "prediction matches eval at n=%d" n)
        true
        (Polyab.agrees_with_eval ~input:b e a ~n))
    ns

let test_identity () =
  let a = analyze (Expr.Var b) in
  (match Polyab.polynomial_of a t_a with
  | Some p -> Alcotest.check poly "P_(a) = n" Poly.x p
  | None -> Alcotest.fail "missing entry");
  check_agreement (Expr.Var b)

let test_union_product () =
  check_agreement Expr.(Var b ++ Var b);
  check_agreement Expr.(Var b *** Var b);
  let a = analyze Expr.(Var b *** Var b) in
  (match Polyab.polynomial_of a (Value.tuple [ Value.atom "a"; Value.atom "a" ]) with
  | Some p -> Alcotest.check poly "product squares" (Poly.mul Poly.x Poly.x) p
  | None -> Alcotest.fail "missing tuple")

let test_diff () =
  (* B×B − B on the doubled arity... use π1(B×B) − B: n^2 - n, eventually
     positive *)
  let e = Expr.(Derived.count (Var b *** Var b) -- Derived.count (Var b)) in
  check_agreement e;
  (* eventually-zero branch: B − B×B projected *)
  let e2 = Expr.(Derived.count (Var b) -- Derived.count (Var b *** Var b)) in
  let a2 = analyze e2 in
  List.iter
    (fun n ->
      Alcotest.(check bool) "eventually empty" true
        (Polyab.agrees_with_eval ~input:b e2 a2 ~n:(n + a2.Polyab.threshold)))
    [ 1; 2; 4 ]

let test_max_inter_dedup () =
  check_agreement Expr.(Var b ||| (Var b ++ Var b));
  check_agreement Expr.(Var b &&& (Var b ++ Var b));
  check_agreement (Expr.Dedup (Expr.Var b));
  let a = analyze (Expr.Dedup Expr.(Var b ++ Var b)) in
  match Polyab.polynomial_of a t_a with
  | Some p -> Alcotest.check poly "dedup clamps to 1" Poly.one p
  | None -> Alcotest.fail "missing entry"

let test_map_select () =
  (* map to a constant: all n occurrences collapse onto <c> *)
  let e = Expr.map "x" (Expr.Tuple [ Expr.atom "c" ]) (Expr.Var b) in
  let a = analyze e in
  (match Polyab.polynomial_of a (Value.tuple [ Value.atom "c" ]) with
  | Some p -> Alcotest.check poly "collapse onto constant" Poly.x p
  | None -> Alcotest.fail "missing entry");
  check_agreement e;
  (* selection with a statically-false condition empties the bag *)
  let e2 =
    Expr.select "x" (Expr.Proj (1, Expr.Var "x")) (Expr.atom "z") (Expr.Var b)
  in
  let a2 = analyze e2 in
  Alcotest.(check int) "no entries survive" 0 (List.length a2.Polyab.entries)

let test_bag_even_shape () =
  (* Prop 4.5's conclusion, observed mechanically: every analysable
     expression yields polynomial counts, which are eventually monotone; so
     no expression's truthiness can alternate with n forever.  We verify the
     monotonicity consequence on a sample of derived expressions. *)
  let candidates =
    [
      Expr.Var b;
      Expr.(Var b ++ Var b);
      Expr.(Var b *** Var b);
      Expr.Dedup (Expr.Var b);
      Expr.(Derived.count (Var b *** Var b) -- Derived.count (Var b));
    ]
  in
  List.iter
    (fun e ->
      let a = analyze e in
      List.iter
        (fun (_, p) ->
          let n0 = max (Poly.sign_stable_from p) a.Polyab.threshold in
          let v1 = Poly.eval_int p (n0 + 1)
          and v2 = Poly.eval_int p (n0 + 2)
          and v3 = Poly.eval_int p (n0 + 3) in
          let increasing = BI.compare v1 v2 <= 0 && BI.compare v2 v3 <= 0 in
          let decreasing = BI.compare v1 v2 >= 0 && BI.compare v2 v3 >= 0 in
          Alcotest.(check bool) "eventually monotone" true
            (increasing || decreasing))
        a.Polyab.entries)
    candidates

let test_unsupported () =
  (match Polyab.analyze ~input:b (Expr.Powerset (Expr.Var b)) with
  | exception Polyab.Unsupported _ -> ()
  | _ -> Alcotest.fail "powerset must be rejected");
  match Polyab.analyze ~input:b (Expr.Sing (Expr.Var b)) with
  | exception Polyab.Unsupported _ -> ()
  | _ -> Alcotest.fail "bagging must be rejected"

(* random BALG^1 expressions over the single input: prediction always
   agrees with the evaluator beyond the threshold *)
let prop_agreement =
  QCheck.Test.make ~name:"abstract = concrete beyond threshold" ~count:150
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = Baggen.Genexpr.flat rng [ (b, 1) ] 3 1 in
      match Polyab.analyze ~input:b e with
      | exception Polyab.Unsupported _ -> QCheck.assume_fail ()
      | a ->
          List.for_all
            (fun dn ->
              Polyab.agrees_with_eval ~input:b e a ~n:(a.Polyab.threshold + dn))
            [ 1; 2; 5 ])

let () =
  Alcotest.run "polyab"
    [
      ( "poly",
        [
          Alcotest.test_case "arithmetic" `Quick test_poly_arith;
          Alcotest.test_case "evaluation" `Quick test_poly_eval;
          Alcotest.test_case "sign analysis" `Quick test_sign_analysis;
        ] );
      ( "abstract interpretation",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "union and product" `Quick test_union_product;
          Alcotest.test_case "difference" `Quick test_diff;
          Alcotest.test_case "max/inter/dedup" `Quick test_max_inter_dedup;
          Alcotest.test_case "map and select" `Quick test_map_select;
          Alcotest.test_case "eventual monotonicity (Prop 4.5)" `Quick
            test_bag_even_shape;
          Alcotest.test_case "rejects non-BALG^1" `Quick test_unsupported;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_agreement ]);
    ]
