(* Differential tests for the optimized bag kernels: every kernel is checked
   against a naive list-based reference implementation on random nested
   values, plus regression tests for the large-support tail-recursive paths
   and for hash-keyed grouping. *)

open Balg
module B = Bignat
module G = Baggen.Genval

let value = Alcotest.testable Value.pp Value.equal

(* --- naive reference bags ------------------------------------------------ *)
(* A reference bag is a sorted assoc list built with quadratic coalescing and
   [Value.compare] only — no hash tags, no trusted constructors. *)

let rec ref_add v c = function
  | [] -> [ (v, c) ]
  | (w, d) :: rest ->
      if Value.compare v w = 0 then (w, B.add c d) :: rest
      else (w, d) :: ref_add v c rest

let ref_of_assoc pairs =
  let coalesced =
    List.fold_left
      (fun acc (v, c) -> if B.is_zero c then acc else ref_add v c acc)
      [] pairs
  in
  List.sort (fun (v, _) (w, _) -> Value.compare v w) coalesced

let ref_count v pairs =
  match List.find_opt (fun (w, _) -> Value.compare v w = 0) pairs with
  | Some (_, c) -> c
  | None -> B.zero

(* Compare a reference assoc list against an optimized bag value, element by
   element. *)
let same_bag reference optimized =
  let opt = Value.as_bag optimized in
  List.length reference = List.length opt
  && List.for_all2
       (fun (v, c) (w, d) -> Value.compare v w = 0 && B.equal c d)
       reference opt

let ref_merge f a b =
  let pa = Value.as_bag a and pb = Value.as_bag b in
  let keys =
    ref_of_assoc (List.map (fun (v, _) -> (v, B.one)) (pa @ pb))
  in
  List.filter_map
    (fun (v, _) ->
      let c = f (ref_count v pa) (ref_count v pb) in
      if B.is_zero c then None else Some (v, c))
    keys

let ref_product a b =
  ref_of_assoc
    (List.concat_map
       (fun (v, c) ->
         List.map
           (fun (w, d) ->
             (Value.tuple (Value.as_tuple v @ Value.as_tuple w), B.mul c d))
           (Value.as_bag b))
       (Value.as_bag a))

let ref_proj ixs b =
  ref_of_assoc
    (List.map
       (fun (v, c) ->
         let vs = Value.as_tuple v in
         (Value.tuple (List.map (fun i -> List.nth vs (i - 1)) ixs), c))
       (Value.as_bag b))

let ref_select_eq i j b =
  List.filter
    (fun (v, _) ->
      let vs = Value.as_tuple v in
      Value.compare (List.nth vs (i - 1)) (List.nth vs (j - 1)) = 0)
    (Value.as_bag b)

(* All sub-multisets by explicit recursion over per-element choices;
   [weight] is as in the optimized enumerator. *)
let ref_subbags weight b =
  let rec go = function
    | [] -> [ ([], B.one) ]
    | (v, c) :: rest ->
        let m = B.to_int_exn c in
        List.concat_map
          (fun (tail, w) ->
            List.init (m + 1) (fun k ->
                let tail =
                  if k = 0 then tail else (v, B.of_int k) :: tail
                in
                (tail, B.mul w (weight m k))))
          (go rest)
  in
  ref_of_assoc
    (List.map
       (fun (content, w) -> (Value.of_sorted_assoc (ref_of_assoc content), w))
       (go (Value.as_bag b)))

(* --- random nested inputs ------------------------------------------------ *)

let rec random_ty rng depth =
  match Random.State.int rng (if depth = 0 then 2 else 4) with
  | 0 -> Ty.Atom
  | 1 -> Ty.Tuple [ Ty.Atom; Ty.Atom ]
  | 2 -> Ty.Bag (random_ty rng (depth - 1))
  | _ -> Ty.Tuple [ Ty.Atom; random_ty rng (depth - 1) ]

let random_bag rng ety = G.of_type rng ~n_atoms:3 ~width:4 ~max_count:3 (Ty.Bag ety)

(* Rebuild [b] through a different construction path: counts split into unit
   contributions, pair order reversed, all re-coalesced by [bag_of_assoc]. *)
let rebuilt b =
  Value.bag_of_assoc
    (List.rev
       (List.concat_map
          (fun (v, c) ->
            match B.to_int_opt c with
            | Some n when n <= 8 -> List.init n (fun _ -> (v, B.one))
            | _ -> [ (v, c) ])
          (Value.as_bag b)))

(* --- properties ---------------------------------------------------------- *)

(* ISSUE acceptance: >= 1000 random nested bags of depth <= 3. Each QCheck
   case draws two bags, so 500 cases per property x several properties. *)
let count = 500

let prop_merge_ops =
  QCheck.Test.make ~name:"union/diff/inter kernels == naive reference"
    ~count QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let ety = random_ty rng 2 in
      let a = random_bag rng ety and b = random_bag rng ety in
      same_bag (ref_merge B.add a b) (Bag.union_add a b)
      && same_bag (ref_merge B.monus a b) (Bag.diff a b)
      && same_bag (ref_merge B.max a b) (Bag.union_max a b)
      && same_bag (ref_merge B.min a b) (Bag.inter a b)
      && List.for_all
           (fun (v, _) ->
             B.equal (ref_count v (Value.as_bag b)) (Value.count_in v b))
           (Value.as_bag a))

let prop_canonicalise =
  QCheck.Test.make ~name:"bag_of_assoc == naive coalesce, any build path"
    ~count QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let ety = random_ty rng 2 in
      let a = random_bag rng ety and b = random_bag rng ety in
      let scrambled = List.rev (Value.as_bag a) @ Value.as_bag b in
      same_bag (ref_of_assoc scrambled) (Value.bag_of_assoc scrambled)
      (* a value rebuilt along a different path is equal and hashes equal *)
      && Value.equal a (rebuilt a)
      && Value.hash a = Value.hash (rebuilt a))

let prop_product_proj_select =
  QCheck.Test.make ~name:"product/proj/select_eq kernels == naive reference"
    ~count QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      (* tuple elements, possibly with nested-bag components *)
      let ety = Ty.Tuple [ Ty.Atom; random_ty rng 1 ] in
      let a = random_bag rng ety and b = random_bag rng ety in
      (* mixed arities force the generic product path *)
      let mixed =
        Bag.union_add a
          (G.of_type rng ~n_atoms:3 ~width:3 ~max_count:2
             (Ty.Bag (Ty.Tuple [ Ty.Atom; Ty.Atom; Ty.Atom ])))
      in
      let p = Bag.product a b in
      same_bag (ref_product a b) p
      && same_bag (ref_product mixed b) (Bag.product mixed b)
      && same_bag (ref_proj [ 2; 1 ] p) (Bag.proj [ 2; 1 ] p)
      && same_bag (ref_select_eq 1 3 p) (Bag.select_eq 1 3 p))

let prop_powers =
  QCheck.Test.make ~name:"powerset/powerbag == naive enumeration" ~count:200
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let b =
        G.of_type rng ~n_atoms:2 ~width:3 ~max_count:2 (Ty.Bag (random_ty rng 1))
      in
      same_bag (ref_subbags (fun _ _ -> B.one) b) (Bag.powerset b)
      && same_bag (ref_subbags B.binomial b) (Bag.powerbag b))

(* --- regressions --------------------------------------------------------- *)

(* Tail-recursive coalesce/merge survive half-million-element supports. *)
let test_large_support () =
  let n = 500_000 in
  let pairs =
    List.init n (fun i ->
        (Value.tuple [ Value.atom (Printf.sprintf "a%06d" (n - 1 - i)) ], B.one))
  in
  let b = Value.bag_of_assoc pairs in
  Alcotest.(check int) "distinct support" n (Value.support_size b);
  let u = Bag.union_add b b in
  Alcotest.(check int) "merged support" n (Value.support_size u);
  Alcotest.(check bool) "counts doubled" true
    (B.equal
       (Value.count_in (Value.tuple [ Value.atom "a000000" ]) u)
       B.two);
  Alcotest.check value "u - b = b" b (Bag.diff u b);
  Alcotest.check value "dedup u = b" b (Bag.dedup u)

(* Nest groups by value equality, not by construction path: the same key
   built two different ways must land in one group. *)
let test_nest_groups_by_value () =
  let k_direct = Value.bag_of_list [ Value.atom "x"; Value.atom "y" ] in
  let k_union =
    Bag.union_add
      (Value.bag_of_list [ Value.atom "y" ])
      (Value.bag_of_list [ Value.atom "x" ])
  in
  Alcotest.(check bool) "keys equal, not identical" true
    (Value.equal k_direct k_union && not (k_direct == k_union));
  let rows =
    Value.bag_of_list
      [
        Value.tuple [ k_direct; Value.atom "1" ];
        Value.tuple [ k_union; Value.atom "2" ];
      ]
  in
  let nested = Bag.nest [ 1 ] rows in
  Alcotest.(check int) "one group" 1 (Value.support_size nested);
  match Value.view (List.hd (Value.support nested)) with
  | Value.Tuple [ k; members ] ->
      Alcotest.check value "group key" k_direct k;
      Alcotest.check value "members pooled"
        (Value.bag_of_list
           [ Value.tuple [ Value.atom "1" ]; Value.tuple [ Value.atom "2" ] ])
        members
  | _ -> Alcotest.fail "expected <key, bag> group"

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_merge_ops; prop_canonicalise; prop_product_proj_select; prop_powers ]

let () =
  Alcotest.run "bag_ref"
    [
      ("kernels vs reference", props);
      ( "regressions",
        [
          Alcotest.test_case "500k-element support" `Quick test_large_support;
          Alcotest.test_case "nest groups by value" `Quick
            test_nest_groups_by_value;
        ] );
    ]
